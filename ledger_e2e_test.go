// End-to-end acceptance of the run ledger through the public facade: a
// session-driven run must trace byte-identically to the seed's hand-wired
// sink stack, and an archived run must come back out of the ledger with a
// verifying manifest, a report, and usable list/diff/trend queries.
package senkf

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// sessionQuickSuite runs the same quick-scale S-EnKF simulation as
// tracedQuickSuite, but through a RunSession built from the shared
// observability flags, and returns the session plus its flag set's
// -trace output path.
func sessionQuickSuite(t *testing.T, np int, args ...string) *RunSession {
	t.Helper()
	fs := flag.NewFlagSet("senkf-bench", flag.ContinueOnError)
	obs := RegisterRunFlags(fs, "senkf-bench")
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	sess, err := obs.Start()
	if err != nil {
		t.Fatal(err)
	}
	o := QuickFigureOptions()
	o.Cfg.Tracer = sess.Tracer
	o.Cfg.Obs = sess.Observer()
	s := NewFigureSuite(o)
	if _, _, err := s.SEnKFAt(np); err != nil {
		t.Fatal(err)
	}
	return sess
}

// TestSessionTraceMatchesSeedWiring pins that an unarchived, unmonitored
// session-driven run writes the byte-identical Chrome trace the original
// hand-wired binaries produced: the run ledger must not perturb the
// primary sink path. The simulated substrate stamps virtual timestamps,
// so the comparison is exact.
func TestSessionTraceMatchesSeedWiring(t *testing.T) {
	// Seed wiring: plain buffer + wall tracer, exactly as the binaries
	// did before the session existed.
	events := tracedQuickSuite(t, 180)
	var want bytes.Buffer
	if err := WriteChromeTrace(&want, events); err != nil {
		t.Fatal(err)
	}

	// Session wiring: -trace only — no archive, no monitor.
	out := filepath.Join(t.TempDir(), "trace.json")
	sess := sessionQuickSuite(t, 180, "-trace", out)
	if err := sess.Finish(nil); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("session trace differs from seed wiring: %d vs %d bytes", len(got), want.Len())
	}
}

// TestArchivedRunEndToEnd drives the tentpole loop through the facade:
// archive a monitored simulated run, load it back with a verifying
// manifest, and query it via list/diff/trend.
func TestArchivedRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	sessA := sessionQuickSuite(t, 180, "-archive", dir)
	sessA.Describe("senkf", "simulated", nil)
	if err := sessA.Finish(nil); err != nil {
		t.Fatal(err)
	}
	sessB := sessionQuickSuite(t, 180, "-archive", dir, "-monitor")
	sessB.Describe("senkf", "simulated", nil)
	if err := sessB.Finish(nil); err != nil {
		t.Fatal(err)
	}
	if sessA.RunID == sessB.RunID {
		t.Fatalf("two sessions share run ID %s", sessA.RunID)
	}

	a, err := OpenRunArchive(dir)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := a.List(RunFilter{Binary: "senkf-bench"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("List = %+v", rows)
	}
	for _, row := range rows {
		if row.Runtime <= 0 {
			t.Errorf("run %s has no runtime headline", row.RunID)
		}
	}

	// The archived record must verify and carry a parsable report whose
	// runtime matches the manifest headline.
	rec, err := a.Load(sessB.RunID)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := rec.Report()
	if err != nil {
		t.Fatal(err)
	}
	if rep == nil || rep.Runtime != rec.Manifest.Runtime {
		t.Fatalf("report runtime %v vs manifest %v", rep, rec.Manifest.Runtime)
	}
	if !rec.Has("monitor.json") {
		t.Error("monitored run archived no monitor.json")
	}
	var mon struct {
		RunID string `json:"run_id"`
	}
	monData, err := rec.ReadFile("monitor.json")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(monData, &mon); err != nil {
		t.Fatal(err)
	}
	if mon.RunID != sessB.RunID {
		t.Errorf("monitor status names run %q, session was %q", mon.RunID, sessB.RunID)
	}

	// Diff by unique prefix; the two runs executed the identical virtual
	// schedule, so runtimes agree and the trend gate stays quiet.
	d, err := a.DiffRuns(sessA.RunID, sessB.RunID)
	if err != nil {
		t.Fatal(err)
	}
	if d.RuntimeA != d.RuntimeB {
		t.Errorf("deterministic suite runtimes differ: %g vs %g", d.RuntimeA, d.RuntimeB)
	}
	var cfgDelta []string
	for _, c := range d.Config {
		cfgDelta = append(cfgDelta, c.Key)
	}
	if !strings.Contains(strings.Join(cfgDelta, ","), "monitor") {
		t.Errorf("config delta should include the monitor flag: %v", cfgDelta)
	}

	tr, err := a.TrendMetric("runtime", RunFilter{}, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Points) != 2 || tr.Regressed {
		t.Errorf("trend = %+v", tr)
	}
}

// TestArchivedBenchRecordCarriesRunIDs pins the bench collector's
// ledger view: every BENCH cell names an archived run whose record
// round-trips to the same runtime.
func TestArchivedBenchRecordCarriesRunIDs(t *testing.T) {
	dir := t.TempDir()
	a, err := OpenRunArchive(dir)
	if err != nil {
		t.Fatal(err)
	}
	suite := QuickFigures()
	rec, err := CollectBenchRecordArchived(suite, "quick", a, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Runs) == 0 {
		t.Fatal("empty bench record")
	}
	for _, run := range rec.Runs {
		if run.RunID == "" {
			t.Fatalf("cell %s/np%d has no run ID", run.Algorithm, run.NP)
		}
		cell, err := a.Load(run.RunID)
		if err != nil {
			t.Fatal(err)
		}
		if cell.Manifest.Runtime != run.Runtime {
			t.Errorf("cell %s: archived runtime %g vs record %g",
				run.RunID, cell.Manifest.Runtime, run.Runtime)
		}
	}
	// The archived collection must agree with the direct one cell for
	// cell (the ledger is a view, not a different measurement).
	direct, err := CollectBenchRecord(QuickFigures(), "quick")
	if err != nil {
		t.Fatal(err)
	}
	if len(direct.Runs) != len(rec.Runs) {
		t.Fatalf("cell count %d vs %d", len(rec.Runs), len(direct.Runs))
	}
	for i := range direct.Runs {
		if direct.Runs[i].Runtime != rec.Runs[i].Runtime {
			t.Errorf("cell %d runtime %g vs %g", i, rec.Runs[i].Runtime, direct.Runs[i].Runtime)
		}
	}
}
