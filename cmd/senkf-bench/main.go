// Command senkf-bench regenerates every figure of the paper's evaluation
// (Figures 1, 5, 9, 10, 11, 12, 13) by running the P-EnKF, L-EnKF and
// S-EnKF schedules on the simulated 12,000-processor machine, and prints
// each as a text table with the headline observations the paper reports.
//
// Usage:
//
//	senkf-bench                 # all figures at paper scale
//	senkf-bench -quick          # reduced scale (seconds instead of minutes)
//	senkf-bench -figure 13      # one figure only
//	senkf-bench -quick -faults  # fault-injection resilience sweep
//
// The bench pipeline writes versioned records and gates regressions:
//
//	senkf-bench -quick -record bench   # write bench/BENCH_<n>.json
//	senkf-bench -quick -check bench    # fail if wall time regressed >15%
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"senkf"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("senkf-bench: ")
	var (
		quick     = flag.Bool("quick", false, "run the reduced-scale suite")
		figure    = flag.Int("figure", 0, "regenerate only this figure number (1, 5, 9, 10, 11, 12, 13)")
		ablations = flag.Bool("ablations", false, "run the co-design ablation ladder instead of the figures")
		epsSweep  = flag.Bool("eps-sweep", false, "run the auto-tuner ε-sensitivity sweep instead of the figures")
		csvDir    = flag.String("csv", "", "also write each figure as CSV into this directory")
		traceNP   = flag.Int("trace-np", 0, "processor budget for the traced run (default: largest configured count)")
		detail    = flag.Bool("trace-detail", false, "include high-volume detail events (park/wake, queue depths) in the trace")
		faultsRun = flag.Bool("faults", false, "run the fault-injection resilience sweep instead of the figures")
		faultSeed = flag.Uint64("fault-seed", 42, "seed for the generated fault plans (with -faults)")
		ostOutage = flag.String("ost-outage", "", "inject a full storage-target outage window ost:start:end in virtual seconds into the traced run (e.g. 3:0:0.5; needs -trace/-counters/-monitor)")
		record    = flag.String("record", "", "run the bench suite and write the next versioned BENCH_<n>.json into this directory")
		recordVer = flag.Int("record-version", 0, "with -record: force the record's version number (0 = latest+1)")
		check     = flag.String("check", "", "run the bench suite and compare against the latest BENCH_<n>.json in this directory; exit 1 on regression")
		benchTol  = flag.Float64("bench-tol", 0.15, "relative wall-time regression tolerance for -check")
	)
	obs := senkf.RegisterRunFlags(flag.CommandLine, "senkf-bench")
	flag.Parse()

	sess, err := obs.Start()
	if err != nil {
		log.Fatal(err)
	}

	suite := senkf.PaperFigures()
	scale := "paper"
	if *quick {
		suite = senkf.QuickFigures()
		scale = "quick"
	}
	traced := obs.TraceOut() != "" || obs.CountersOn() || obs.CountersCSV() != "" || obs.MonitorOn()
	if *ostOutage != "" && (!traced || *record != "" || *check != "") {
		sess.Fatal(fmt.Errorf("-ost-outage applies only to the traced run (-trace/-counters/-monitor, without -record/-check)"))
	}
	if *record != "" || *check != "" {
		benchPipeline(sess, suite, scale, *record, *recordVer, *check, *benchTol)
		return
	}
	if traced {
		tracedRun(sess, suite, *traceNP, *detail, *ostOutage)
		return
	}
	if *faultsRun {
		sess.Describe("resilience-sweep", "simulated", nil)
		f, err := suite.Resilience(*faultSeed, nil)
		if err != nil {
			sess.Fatal(fmt.Errorf("resilience sweep: %w", err))
		}
		if err := f.WriteTable(os.Stdout); err != nil {
			sess.Fatal(err)
		}
		finish(sess)
		return
	}
	if *epsSweep {
		sess.Describe("eps-sweep", "simulated", nil)
		np := suite.O.ProcCounts[len(suite.O.ProcCounts)-1]
		f, err := suite.EpsilonSweep(np, []float64{1e-6, 1e-4, 1e-3, 1e-2, 1e-1})
		if err != nil {
			sess.Fatal(err)
		}
		if err := f.WriteTable(os.Stdout); err != nil {
			sess.Fatal(err)
		}
		finish(sess)
		return
	}
	if *ablations {
		sess.Describe("ablations", "simulated", nil)
		np := suite.O.ProcCounts[len(suite.O.ProcCounts)-1]
		abs, err := suite.Ablations(np)
		if err != nil {
			sess.Fatal(err)
		}
		if err := senkf.WriteAblations(os.Stdout, np, abs); err != nil {
			sess.Fatal(err)
		}
		finish(sess)
		return
	}
	sess.Describe("figures", "simulated", nil)
	type job struct {
		id int
		fn func() (senkf.Figure, error)
	}
	jobs := []job{
		{1, suite.Fig01}, {5, suite.Fig05}, {9, suite.Fig09}, {10, suite.Fig10},
		{11, suite.Fig11}, {12, suite.Fig12}, {13, suite.Fig13},
	}
	ran := 0
	for _, j := range jobs {
		if *figure != 0 && *figure != j.id {
			continue
		}
		f, err := j.fn()
		if err != nil {
			sess.Fatal(fmt.Errorf("figure %d: %w", j.id, err))
		}
		if err := f.WriteTable(os.Stdout); err != nil {
			sess.Fatal(err)
		}
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				sess.Fatal(err)
			}
			path := filepath.Join(*csvDir, fmt.Sprintf("fig%02d.csv", j.id))
			cf, err := os.Create(path)
			if err != nil {
				sess.Fatal(err)
			}
			if err := f.WriteCSV(cf); err != nil {
				cf.Close()
				sess.Fatal(err)
			}
			if err := cf.Close(); err != nil {
				sess.Fatal(err)
			}
		}
		fmt.Println()
		ran++
	}
	if ran == 0 {
		sess.Fatal(fmt.Errorf("unknown figure %d (have 1, 5, 9, 10, 11, 12, 13)", *figure))
	}
	finish(sess)
}

// parseOSTOutage parses the -ost-outage value "ost:start:end" into a
// single-window fault plan: a full outage (service factor 0) on one
// storage target over [start, end) virtual seconds.
func parseOSTOutage(s string) (*senkf.FaultPlan, error) {
	var ost int
	var start, end float64
	if _, err := fmt.Sscanf(s, "%d:%g:%g", &ost, &start, &end); err != nil {
		return nil, fmt.Errorf("-ost-outage %q: want ost:start:end (e.g. 3:0:0.5)", s)
	}
	if ost < 0 || end <= start {
		return nil, fmt.Errorf("-ost-outage %q: ost must be >= 0 and end > start", s)
	}
	return &senkf.FaultPlan{OSTWindows: []senkf.OSTWindow{
		{OST: ost, Start: start, End: end, Factor: 0},
	}}, nil
}

func finish(sess *senkf.RunSession) {
	if err := sess.Finish(nil); err != nil {
		log.Fatal(err)
	}
}

// benchPipeline runs the deterministic bench suite and either records it
// as the next BENCH_<n>.json version or checks it against the latest
// committed record, exiting non-zero when any run's wall time regressed
// beyond the tolerance. With -archive, the record is collected through
// the run ledger: every suite cell lands as its own archived run and the
// BENCH_<n>.json cells carry their run IDs.
func benchPipeline(sess *senkf.RunSession, suite *senkf.FigureSuite, scale, record string, recordVer int, check string, tol float64) {
	sess.Describe("bench-suite", "simulated", nil)
	var rec senkf.BenchRecord
	var err error
	if a := sess.Archive(); a != nil {
		rec, err = senkf.CollectBenchRecordArchived(suite, scale, a, sess.Log)
	} else {
		rec, err = senkf.CollectBenchRecord(suite, scale)
	}
	if err != nil {
		sess.Fatal(fmt.Errorf("bench suite: %w", err))
	}
	rec.Version = recordVer
	if record != "" {
		path, err := senkf.WriteBenchRecord(record, rec)
		if err != nil {
			sess.Fatal(err)
		}
		fmt.Printf("wrote %s (%d runs at %s scale)\n", path, len(rec.Runs), scale)
	}
	if check == "" {
		finish(sess)
		return
	}
	prev, path, ok, err := senkf.LatestBenchRecord(check)
	if err != nil {
		sess.Fatal(err)
	}
	if !ok {
		sess.Fatal(fmt.Errorf("no BENCH_<n>.json in %s to check against (record one with -record)", check))
	}
	deltas, err := senkf.CompareBenchRecords(prev, rec, tol)
	if err != nil {
		sess.Fatal(err)
	}
	fmt.Printf("checked against %s (tolerance %.0f%%):\n", path, 100*tol)
	for _, d := range deltas {
		verdict := "ok"
		if d.Regressed {
			verdict = "REGRESSED"
		}
		fmt.Printf("  %-8s np=%-6d %10.4gs -> %10.4gs  %+7.2f%%  %s\n",
			d.Algorithm, d.NP, d.Prev, d.Cur, 100*d.Delta, verdict)
	}
	if reg := senkf.BenchRegressions(deltas); len(reg) > 0 {
		sess.Fatal(fmt.Errorf("%d run(s) regressed beyond %.0f%% vs %s", len(reg), 100*tol, path))
	}
	fmt.Println("no regressions")
	finish(sess)
}

// tracedRun auto-tunes and simulates one S-EnKF run at np processors with
// tracing attached, writes the Chrome trace JSON, and/or prints the
// simulation counters. The trace is stamped with the simulation's virtual
// clock, so track timelines line up with the reported runtime. With
// -monitor, the run is additionally watched live: the monitor tees off the
// event stream, checks plan conformance against the compiled plan, and
// judges every stage against the Eq. 7–10 model budgets (the simulated
// substrate streams them as model/t_* counters).
func tracedRun(sess *senkf.RunSession, suite *senkf.FigureSuite, np int, detail bool, outage string) {
	if np == 0 {
		np = suite.O.ProcCounts[len(suite.O.ProcCounts)-1]
	}
	sess.Describe("senkf", "simulated", nil)
	if outage != "" {
		fp, err := parseOSTOutage(outage)
		if err != nil {
			sess.Fatal(err)
		}
		suite.O.Cfg.Faults = fp
		sess.SetFaults(fp)
		w := fp.OSTWindows[0]
		sess.Note("ost-outage", fmt.Sprintf("ost%d down [%gs, %gs)", w.OST, w.Start, w.End))
	}
	// The simulated schedules stamp every event with explicit virtual
	// timestamps; the tracer's own clock is never consulted.
	sess.Tracer.SetDetail(detail)
	suite.O.Cfg.Tracer = sess.Tracer
	suite.O.Cfg.Obs = sess.Observer()
	suite.O.Cfg.Msgs = sess.MsgObserver()
	if sess.Wire != nil {
		suite.O.Cfg.Reads = sess.Wire
	}

	res, tuned, err := suite.SEnKFAt(np)
	if err != nil {
		sess.Fatal(err)
	}
	sess.Note("tuned", fmt.Sprintf("nsdx=%d nsdy=%d L=%d ncg=%d",
		tuned.Choice.NSdx, tuned.Choice.NSdy, tuned.Choice.L, tuned.Choice.NCg))
	fmt.Printf("S-EnKF at %d processors: nsdx=%d nsdy=%d L=%d ncg=%d\n",
		np, tuned.Choice.NSdx, tuned.Choice.NSdy, tuned.Choice.L, tuned.Choice.NCg)
	fmt.Printf("runtime %.3fs, first stage %.3fs, overlapped share of I/O+comm %.1f%%\n",
		res.Runtime, res.FirstStage, 100*res.OverlapFraction)
	finish(sess)
}
