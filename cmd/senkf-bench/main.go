// Command senkf-bench regenerates every figure of the paper's evaluation
// (Figures 1, 5, 9, 10, 11, 12, 13) by running the P-EnKF, L-EnKF and
// S-EnKF schedules on the simulated 12,000-processor machine, and prints
// each as a text table with the headline observations the paper reports.
//
// Usage:
//
//	senkf-bench                 # all figures at paper scale
//	senkf-bench -quick          # reduced scale (seconds instead of minutes)
//	senkf-bench -figure 13      # one figure only
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"senkf"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("senkf-bench: ")
	var (
		quick     = flag.Bool("quick", false, "run the reduced-scale suite")
		figure    = flag.Int("figure", 0, "regenerate only this figure number (1, 5, 9, 10, 11, 12, 13)")
		ablations = flag.Bool("ablations", false, "run the co-design ablation ladder instead of the figures")
		epsSweep  = flag.Bool("eps-sweep", false, "run the auto-tuner ε-sensitivity sweep instead of the figures")
		csvDir    = flag.String("csv", "", "also write each figure as CSV into this directory")
	)
	flag.Parse()

	suite := senkf.PaperFigures()
	if *quick {
		suite = senkf.QuickFigures()
	}
	if *epsSweep {
		np := suite.O.ProcCounts[len(suite.O.ProcCounts)-1]
		f, err := suite.EpsilonSweep(np, []float64{1e-6, 1e-4, 1e-3, 1e-2, 1e-1})
		if err != nil {
			log.Fatal(err)
		}
		if err := f.WriteTable(os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *ablations {
		np := suite.O.ProcCounts[len(suite.O.ProcCounts)-1]
		abs, err := suite.Ablations(np)
		if err != nil {
			log.Fatal(err)
		}
		if err := senkf.WriteAblations(os.Stdout, np, abs); err != nil {
			log.Fatal(err)
		}
		return
	}
	type job struct {
		id int
		fn func() (senkf.Figure, error)
	}
	jobs := []job{
		{1, suite.Fig01}, {5, suite.Fig05}, {9, suite.Fig09}, {10, suite.Fig10},
		{11, suite.Fig11}, {12, suite.Fig12}, {13, suite.Fig13},
	}
	ran := 0
	for _, j := range jobs {
		if *figure != 0 && *figure != j.id {
			continue
		}
		f, err := j.fn()
		if err != nil {
			log.Fatalf("figure %d: %v", j.id, err)
		}
		if err := f.WriteTable(os.Stdout); err != nil {
			log.Fatal(err)
		}
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				log.Fatal(err)
			}
			path := filepath.Join(*csvDir, fmt.Sprintf("fig%02d.csv", j.id))
			cf, err := os.Create(path)
			if err != nil {
				log.Fatal(err)
			}
			if err := f.WriteCSV(cf); err != nil {
				cf.Close()
				log.Fatal(err)
			}
			if err := cf.Close(); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Println()
		ran++
	}
	if ran == 0 {
		log.Fatalf("unknown figure %d (have 1, 5, 9, 10, 11, 12, 13)", *figure)
	}
}
