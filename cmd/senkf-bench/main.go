// Command senkf-bench regenerates every figure of the paper's evaluation
// (Figures 1, 5, 9, 10, 11, 12, 13) by running the P-EnKF, L-EnKF and
// S-EnKF schedules on the simulated 12,000-processor machine, and prints
// each as a text table with the headline observations the paper reports.
//
// Usage:
//
//	senkf-bench                 # all figures at paper scale
//	senkf-bench -quick          # reduced scale (seconds instead of minutes)
//	senkf-bench -figure 13      # one figure only
//	senkf-bench -quick -faults  # fault-injection resilience sweep
//
// The bench pipeline writes versioned records and gates regressions:
//
//	senkf-bench -quick -record bench   # write bench/BENCH_<n>.json
//	senkf-bench -quick -check bench    # fail if wall time regressed >15%
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"senkf"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("senkf-bench: ")
	var (
		quick     = flag.Bool("quick", false, "run the reduced-scale suite")
		figure    = flag.Int("figure", 0, "regenerate only this figure number (1, 5, 9, 10, 11, 12, 13)")
		ablations = flag.Bool("ablations", false, "run the co-design ablation ladder instead of the figures")
		epsSweep  = flag.Bool("eps-sweep", false, "run the auto-tuner ε-sensitivity sweep instead of the figures")
		csvDir    = flag.String("csv", "", "also write each figure as CSV into this directory")
		traceOut  = flag.String("trace", "", "trace one simulated S-EnKF run into this Chrome trace JSON file (open in Perfetto) instead of the figures")
		traceNP   = flag.Int("trace-np", 0, "processor budget for the traced run (default: largest configured count)")
		detail    = flag.Bool("trace-detail", false, "include high-volume detail events (park/wake, queue depths) in the trace")
		counters  = flag.Bool("counters", false, "run one simulated S-EnKF run and print its counters/gauges/histograms")
		faultsRun = flag.Bool("faults", false, "run the fault-injection resilience sweep instead of the figures")
		faultSeed = flag.Uint64("fault-seed", 42, "seed for the generated fault plans (with -faults)")
		record    = flag.String("record", "", "run the bench suite and write the next versioned BENCH_<n>.json into this directory")
		recordVer = flag.Int("record-version", 0, "with -record: force the record's version number (0 = latest+1)")
		check     = flag.String("check", "", "run the bench suite and compare against the latest BENCH_<n>.json in this directory; exit 1 on regression")
		benchTol  = flag.Float64("bench-tol", 0.15, "relative wall-time regression tolerance for -check")
		countCSV  = flag.String("counters-csv", "", "with -trace/-counters: also write the counter registry as CSV to this file")
		profile   = flag.String("profile", "", "serve /debug/pprof/ on this address (e.g. localhost:6060) while running")

		monitorOn = flag.Bool("monitor", false, "attach the live plan-conformance monitor to one simulated S-EnKF run (implies the traced-run path)")
		metrAddr  = flag.String("metrics-addr", "", "with -monitor: serve Prometheus /metrics and JSON /status on this address")
		flightOut = flag.String("flight-recorder", "", "with -monitor: write the anomaly flight-recorder dump (Chrome trace JSON) here")
		linger    = flag.Duration("linger", 0, "keep serving -metrics-addr for this long after the run, so it can be scraped")
	)
	flag.Parse()

	if *profile != "" {
		srv, err := senkf.StartProfiling(*profile)
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		fmt.Printf("pprof: http://%s/debug/pprof/\n", srv.Addr())
	}
	suite := senkf.PaperFigures()
	scale := "paper"
	if *quick {
		suite = senkf.QuickFigures()
		scale = "quick"
	}
	if *record != "" || *check != "" {
		benchPipeline(suite, scale, *record, *recordVer, *check, *benchTol)
		return
	}
	if *traceOut != "" || *counters || *countCSV != "" || *monitorOn {
		tracedRun(suite, *traceOut, *traceNP, *detail, *counters, *countCSV,
			monitorConfig{on: *monitorOn, metricsAddr: *metrAddr, flightOut: *flightOut, linger: *linger})
		return
	}
	if *metrAddr != "" {
		log.Fatal("-metrics-addr needs -monitor")
	}
	if *faultsRun {
		f, err := suite.Resilience(*faultSeed, nil)
		if err != nil {
			log.Fatalf("resilience sweep: %v", err)
		}
		if err := f.WriteTable(os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *epsSweep {
		np := suite.O.ProcCounts[len(suite.O.ProcCounts)-1]
		f, err := suite.EpsilonSweep(np, []float64{1e-6, 1e-4, 1e-3, 1e-2, 1e-1})
		if err != nil {
			log.Fatal(err)
		}
		if err := f.WriteTable(os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *ablations {
		np := suite.O.ProcCounts[len(suite.O.ProcCounts)-1]
		abs, err := suite.Ablations(np)
		if err != nil {
			log.Fatal(err)
		}
		if err := senkf.WriteAblations(os.Stdout, np, abs); err != nil {
			log.Fatal(err)
		}
		return
	}
	type job struct {
		id int
		fn func() (senkf.Figure, error)
	}
	jobs := []job{
		{1, suite.Fig01}, {5, suite.Fig05}, {9, suite.Fig09}, {10, suite.Fig10},
		{11, suite.Fig11}, {12, suite.Fig12}, {13, suite.Fig13},
	}
	ran := 0
	for _, j := range jobs {
		if *figure != 0 && *figure != j.id {
			continue
		}
		f, err := j.fn()
		if err != nil {
			log.Fatalf("figure %d: %v", j.id, err)
		}
		if err := f.WriteTable(os.Stdout); err != nil {
			log.Fatal(err)
		}
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				log.Fatal(err)
			}
			path := filepath.Join(*csvDir, fmt.Sprintf("fig%02d.csv", j.id))
			cf, err := os.Create(path)
			if err != nil {
				log.Fatal(err)
			}
			if err := f.WriteCSV(cf); err != nil {
				cf.Close()
				log.Fatal(err)
			}
			if err := cf.Close(); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Println()
		ran++
	}
	if ran == 0 {
		log.Fatalf("unknown figure %d (have 1, 5, 9, 10, 11, 12, 13)", *figure)
	}
}

// benchPipeline runs the deterministic bench suite and either records it
// as the next BENCH_<n>.json version or checks it against the latest
// committed record, exiting non-zero when any run's wall time regressed
// beyond the tolerance.
func benchPipeline(suite *senkf.FigureSuite, scale, record string, recordVer int, check string, tol float64) {
	rec, err := senkf.CollectBenchRecord(suite, scale)
	if err != nil {
		log.Fatalf("bench suite: %v", err)
	}
	rec.Version = recordVer
	if record != "" {
		path, err := senkf.WriteBenchRecord(record, rec)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (%d runs at %s scale)\n", path, len(rec.Runs), scale)
	}
	if check == "" {
		return
	}
	prev, path, ok, err := senkf.LatestBenchRecord(check)
	if err != nil {
		log.Fatal(err)
	}
	if !ok {
		log.Fatalf("no BENCH_<n>.json in %s to check against (record one with -record)", check)
	}
	deltas, err := senkf.CompareBenchRecords(prev, rec, tol)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checked against %s (tolerance %.0f%%):\n", path, 100*tol)
	for _, d := range deltas {
		verdict := "ok"
		if d.Regressed {
			verdict = "REGRESSED"
		}
		fmt.Printf("  %-8s np=%-6d %10.4gs -> %10.4gs  %+7.2f%%  %s\n",
			d.Algorithm, d.NP, d.Prev, d.Cur, 100*d.Delta, verdict)
	}
	if reg := senkf.BenchRegressions(deltas); len(reg) > 0 {
		log.Fatalf("%d run(s) regressed beyond %.0f%% vs %s", len(reg), 100*tol, path)
	}
	fmt.Println("no regressions")
}

// monitorConfig carries the live-monitor flags into the traced run.
type monitorConfig struct {
	on          bool
	metricsAddr string
	flightOut   string
	linger      time.Duration
}

// tracedRun auto-tunes and simulates one S-EnKF run at np processors with
// tracing attached, writes the Chrome trace JSON, and/or prints the
// simulation counters. The trace is stamped with the simulation's virtual
// clock, so track timelines line up with the reported runtime. With
// -monitor, the run is additionally watched live: the monitor tees off the
// event stream, checks plan conformance against the compiled plan, and
// judges every stage against the Eq. 7–10 model budgets (the simulated
// substrate streams them as model/t_* counters).
func tracedRun(suite *senkf.FigureSuite, traceOut string, np int, detail, counters bool, countCSV string, mc monitorConfig) {
	if np == 0 {
		np = suite.O.ProcCounts[len(suite.O.ProcCounts)-1]
	}
	var buf *senkf.TraceBuffer
	var primary senkf.TraceSink
	if traceOut != "" {
		buf = senkf.NewTraceBuffer()
		primary = buf
	}
	reg := senkf.NewCounterRegistry()
	var mon *senkf.Monitor
	if mc.on {
		mon = senkf.NewMonitor(senkf.MonitorOptions{
			DumpPath:    mc.flightOut,
			RunRegistry: reg,
		})
		defer mon.Close()
		primary = mon.Tee(primary)
	} else if mc.metricsAddr != "" {
		log.Fatal("-metrics-addr needs -monitor")
	}
	// The simulated schedules stamp every event with explicit virtual
	// timestamps; the tracer's own clock is never consulted.
	var sinks []senkf.TraceSink
	if primary != nil {
		sinks = append(sinks, primary)
	}
	tr := senkf.NewWallTracer(sinks...)
	tr.SetDetail(detail)
	tr.SetCounters(reg)
	suite.O.Cfg.Tracer = tr
	if mon != nil {
		suite.O.Cfg.Obs = mon
		if mc.metricsAddr != "" {
			srv, err := senkf.StartProfiling(mc.metricsAddr)
			if err != nil {
				log.Fatal(err)
			}
			defer srv.Close()
			srv.Handle("/metrics", mon.MetricsHandler())
			srv.Handle("/status", mon.StatusHandler())
			fmt.Printf("monitor: http://%s/metrics and /status\n", srv.Addr())
		}
	}

	res, tuned, err := suite.SEnKFAt(np)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("S-EnKF at %d processors: nsdx=%d nsdy=%d L=%d ncg=%d\n",
		np, tuned.Choice.NSdx, tuned.Choice.NSdy, tuned.Choice.L, tuned.Choice.NCg)
	fmt.Printf("runtime %.3fs, first stage %.3fs, overlapped share of I/O+comm %.1f%%\n",
		res.Runtime, res.FirstStage, 100*res.OverlapFraction)
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := buf.WriteChrome(f); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %d trace events to %s\n", buf.Len(), traceOut)
	}
	if counters {
		fmt.Println("\nsimulation counters:")
		if err := reg.WriteTable(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
	if countCSV != "" {
		f, err := os.Create(countCSV)
		if err != nil {
			log.Fatal(err)
		}
		if err := reg.WriteCSV(f); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote counters CSV to %s\n", countCSV)
	}
	if mon != nil {
		st := mon.Status()
		fmt.Printf("monitor: %d events, %d/%d spans conformant, %d divergences, %d watchdog verdicts\n",
			st.Events, st.Conformance.MatchedSpans, st.Conformance.ExpectedSpans,
			st.Conformance.DivergenceCount, len(st.Verdicts))
		for _, v := range st.Verdicts {
			fmt.Printf("  watchdog: %s\n", v)
		}
		for _, d := range st.Conformance.Divergences {
			fmt.Printf("  divergence: %s\n", d)
		}
		if st.FlightDump != "" {
			fmt.Printf("  flight recorder dumped to %s\n", st.FlightDump)
		}
		if mc.metricsAddr != "" && mc.linger > 0 {
			fmt.Printf("monitor: serving metrics for another %s\n", mc.linger)
			time.Sleep(mc.linger)
		}
	}
}
