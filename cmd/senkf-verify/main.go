// Command senkf-verify runs the correctness triangle on a generated
// problem: the serial reference analysis, L-EnKF, P-EnKF and S-EnKF are
// executed over the same member files and compared bit for bit. Exits
// non-zero when any implementation disagrees — the smoke test for any
// modification to the assimilation or the parallel schedules.
//
// Usage:
//
//	senkf-verify                 # laptop-scale problem, default layout
//	senkf-verify -nx 48 -ny 24 -members 12 -nsdx 4 -nsdy 2 -layers 3 -ncg 2
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"senkf"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("senkf-verify: ")
	var (
		nx      = flag.Int("nx", 48, "grid points along longitude")
		ny      = flag.Int("ny", 24, "grid points along latitude")
		members = flag.Int("members", 12, "ensemble size N")
		xi      = flag.Int("xi", 3, "localization half-width ξ")
		eta     = flag.Int("eta", 2, "localization half-height η")
		nsdx    = flag.Int("nsdx", 4, "sub-domains along longitude")
		nsdy    = flag.Int("nsdy", 2, "sub-domains along latitude")
		layers  = flag.Int("layers", 3, "S-EnKF stages L")
		ncg     = flag.Int("ncg", 2, "S-EnKF concurrent groups")
		offGrid = flag.Bool("off-grid", false, "use off-grid (bilinear) observations")
		seed    = flag.Uint64("seed", 7, "generation seed")
	)
	obs := senkf.RegisterBasicRunFlags(flag.CommandLine, "senkf-verify")
	flag.Parse()
	sess, err := obs.Start()
	if err != nil {
		log.Fatal(err)
	}

	mesh, err := senkf.NewMesh(*nx, *ny)
	if err != nil {
		sess.Fatal(err)
	}
	radius, err := senkf.NewRadius(*xi, *eta)
	if err != nil {
		sess.Fatal(err)
	}
	truth := senkf.GenerateTruth(mesh, senkf.DefaultFieldSpec, *seed)
	bg, err := senkf.GenerateEnsemble(mesh, truth, *members, 1.5, *seed)
	if err != nil {
		sess.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "senkf-verify")
	if err != nil {
		sess.Fatal(err)
	}
	defer os.RemoveAll(dir)
	if _, err := senkf.WriteEnsemble(dir, mesh, bg); err != nil {
		sess.Fatal(err)
	}
	var net *senkf.Network
	if *offGrid {
		net, err = senkf.NewOffGridNetwork(mesh, truth, mesh.Points()/8, 0.01, *seed)
	} else {
		net, err = senkf.NewStridedNetwork(mesh, truth, 3, 3, 0.01, *seed)
	}
	if err != nil {
		sess.Fatal(err)
	}

	failures := 0
	for _, solver := range []senkf.Solver{senkf.SolverEnsembleSpace, senkf.SolverModifiedCholesky, senkf.SolverETKF} {
		cfg := senkf.Config{Mesh: mesh, Radius: radius, N: *members, Seed: *seed, Solver: solver}
		dec, err := senkf.NewDecomposition(mesh, *nsdx, *nsdy, radius)
		if err != nil {
			sess.Fatal(err)
		}
		ref, err := senkf.SerialReference(cfg, bg, net)
		if err != nil {
			sess.Fatal(err)
		}
		problem := senkf.Problem{Cfg: cfg, Dir: dir, Net: net}

		check := func(name string, run func() ([][]float64, error)) {
			got, err := run()
			if err != nil {
				fmt.Printf("  %-8s FAILED to run: %v\n", name, err)
				failures++
				return
			}
			var maxDiff float64
			for k := range ref {
				for i := range ref[k] {
					d := got[k][i] - ref[k][i]
					if d < 0 {
						d = -d
					}
					if d > maxDiff {
						maxDiff = d
					}
				}
			}
			status := "OK (bit-exact)"
			if maxDiff != 0 {
				status = fmt.Sprintf("MISMATCH (max |diff| = %g)", maxDiff)
				failures++
			}
			fmt.Printf("  %-8s %s\n", name, status)
		}

		fmt.Printf("solver %v:\n", solver)
		check("L-EnKF", func() ([][]float64, error) { return senkf.RunLEnKF(problem, dec) })
		check("P-EnKF", func() ([][]float64, error) { return senkf.RunPEnKF(problem, dec) })
		check("S-EnKF", func() ([][]float64, error) {
			return senkf.RunSEnKF(problem, senkf.Plan{Dec: dec, L: *layers, NCg: *ncg})
		})
		// The resilient runner on a healthy ensemble with no fault plan must
		// land on the same corner of the triangle, bit for bit.
		check("S-EnKF/R", func() ([][]float64, error) {
			res, err := senkf.RunSEnKFResilient(problem,
				senkf.Plan{Dec: dec, L: *layers, NCg: *ncg}, senkf.Resilience{})
			if err != nil {
				return nil, err
			}
			return res.Fields, nil
		})
	}
	// Multilevel corner: the same engine with the level dimension set.
	// S-EnKF and P-EnKF over a 3-level ensemble must agree bit for bit
	// with the serial reference applied level by level.
	const levels = 3
	truths, err := senkf.GenerateTruthLevels(mesh, senkf.DefaultFieldSpec, levels, *seed)
	if err != nil {
		sess.Fatal(err)
	}
	mlBg, err := senkf.GenerateEnsembleLevels(mesh, truths, *members, 1.5, *seed)
	if err != nil {
		sess.Fatal(err)
	}
	mlDir, err := os.MkdirTemp("", "senkf-verify-ml")
	if err != nil {
		sess.Fatal(err)
	}
	defer os.RemoveAll(mlDir)
	if _, err := senkf.WriteEnsembleLevels(mlDir, mesh, mlBg); err != nil {
		sess.Fatal(err)
	}
	nets := make([]*senkf.Network, levels)
	for l := range nets {
		if nets[l], err = senkf.NewStridedNetwork(mesh, truths[l], 3, 3, 0.01, *seed+uint64(l)); err != nil {
			sess.Fatal(err)
		}
	}
	mlCfg := senkf.Config{Mesh: mesh, Radius: radius, N: *members, Seed: *seed, Solver: senkf.SolverEnsembleSpace}
	mlDec, err := senkf.NewDecomposition(mesh, *nsdx, *nsdy, radius)
	if err != nil {
		sess.Fatal(err)
	}
	refML := make([][][]float64, levels)
	for l := 0; l < levels; l++ {
		bgL := make([][]float64, *members)
		for k := range bgL {
			bgL[k] = mlBg[k][l]
		}
		if refML[l], err = senkf.SerialReference(mlCfg, bgL, nets[l]); err != nil {
			sess.Fatal(err)
		}
	}
	mlp := senkf.MultiLevelProblem{Cfg: mlCfg, Dir: mlDir, Nets: nets}
	checkML := func(name string, run func() ([][][]float64, error)) {
		got, err := run()
		if err != nil {
			fmt.Printf("  %-8s FAILED to run: %v\n", name, err)
			failures++
			return
		}
		var maxDiff float64
		for l := range refML {
			for k := range refML[l] {
				for i := range refML[l][k] {
					d := got[l][k][i] - refML[l][k][i]
					if d < 0 {
						d = -d
					}
					if d > maxDiff {
						maxDiff = d
					}
				}
			}
		}
		status := "OK (bit-exact)"
		if maxDiff != 0 {
			status = fmt.Sprintf("MISMATCH (max |diff| = %g)", maxDiff)
			failures++
		}
		fmt.Printf("  %-8s %s\n", name, status)
	}
	fmt.Printf("multilevel (%d levels, solver %v):\n", levels, mlCfg.Solver)
	checkML("S-EnKF", func() ([][][]float64, error) {
		return senkf.RunSEnKFMultiLevel(mlp, senkf.Plan{Dec: mlDec, L: *layers, NCg: *ncg})
	})
	checkML("P-EnKF", func() ([][][]float64, error) {
		return senkf.RunPEnKFMultiLevel(mlp, mlDec)
	})

	if failures > 0 {
		sess.Fatal(fmt.Errorf("%d check(s) failed", failures))
	}
	fmt.Println("all implementations agree with the serial reference")
	if err := sess.Finish(nil); err != nil {
		log.Fatal(err)
	}
}
