// Command senkf-report turns a traced run into a performance report and
// fronts the run ledger's cross-run analytics.
//
// Single-run mode (the original): the critical path with per-phase
// attribution, per-class phase breakdowns and overlap shares recomputed
// from the raw events, per-stage pipeline efficiency against the ideal
// multi-stage overlap, and — when the trace carries the tuner's
// prediction — model-vs-measured drift of every cost term plus whether
// the auto-tuner would decide differently under the measured
// coefficients.
//
// Ledger mode: list, diff and trend query the archive that senkf-run,
// senkf-cycle and senkf-bench populate via -archive.
//
// Usage:
//
//	senkf-bench -quick -trace trace.json -counters-csv counters.csv
//	senkf-report -trace trace.json -counters counters.csv -json report.json
//
//	senkf-run -dir /tmp/ens -algo senkf -archive ledger
//	senkf-report list -archive ledger
//	senkf-report diff -archive ledger <runA> <runB>
//	senkf-report trend -archive ledger -metric runtime
//	senkf-report hotspots -archive ledger <run>   (needs -capture-profile)
//	senkf-report wire -archive ledger <run>       (needs -wire)
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"senkf"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("senkf-report: ")
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "list":
			runList(os.Args[2:])
			return
		case "diff":
			runDiff(os.Args[2:])
			return
		case "trend":
			runTrend(os.Args[2:])
			return
		case "hotspots":
			runHotspots(os.Args[2:])
			return
		case "wire":
			runWire(os.Args[2:])
			return
		}
	}
	runSingle()
}

// runSingle is the original single-trace report mode.
func runSingle() {
	var (
		traceIn  = flag.String("trace", "", "Chrome trace-event JSON file of the run (required)")
		counters = flag.String("counters", "", "optional counters CSV (from -counters-csv) to attach")
		jsonOut  = flag.String("json", "", "write the structured report as JSON to this file")
		quiet    = flag.Bool("quiet", false, "suppress the text summary (useful with -json)")
	)
	obs := senkf.RegisterBasicRunFlags(flag.CommandLine, "senkf-report")
	flag.Parse()
	if *traceIn == "" {
		flag.Usage()
		fmt.Fprintln(os.Stderr, "subcommands: list | diff | trend | hotspots | wire (cross-run ledger queries; see -h of each)")
		log.Fatal("missing -trace (point it at a trace file from senkf-run/senkf-bench/senkf-cycle)")
	}
	sess, err := obs.Start()
	if err != nil {
		log.Fatal(err)
	}

	tf, err := os.Open(*traceIn)
	if err != nil {
		sess.Fatal(err)
	}
	events, err := senkf.ReadChromeTrace(tf)
	tf.Close()
	if err != nil {
		sess.Fatal(fmt.Errorf("%s: %v", *traceIn, err))
	}

	var cmap map[string]float64
	if *counters != "" {
		cf, err := os.Open(*counters)
		if err != nil {
			sess.Fatal(err)
		}
		cmap, err = senkf.ParseCountersCSV(cf)
		cf.Close()
		if err != nil {
			sess.Fatal(fmt.Errorf("%s: %v", *counters, err))
		}
	}

	rep, err := senkf.BuildRunReport(events, cmap)
	if err != nil {
		sess.Fatal(err)
	}

	if !*quiet {
		if err := rep.WriteText(os.Stdout); err != nil {
			sess.Fatal(err)
		}
	}
	if *jsonOut != "" {
		writeJSON(*jsonOut, rep)
	}
	if err := sess.Finish(nil); err != nil {
		log.Fatal(err)
	}
}

// ledgerFlags are the flags every ledger subcommand shares.
type ledgerFlags struct {
	fs      *flag.FlagSet
	archive *string
	jsonOut *string
}

func newLedgerFlags(name string) *ledgerFlags {
	fs := flag.NewFlagSet("senkf-report "+name, flag.ExitOnError)
	return &ledgerFlags{
		fs:      fs,
		archive: fs.String("archive", "", "run-ledger directory (required; the -archive of senkf-run/senkf-cycle/senkf-bench)"),
		jsonOut: fs.String("json", "", "write the structured result as JSON to this file instead of text to stdout"),
	}
}

func (lf *ledgerFlags) open(args []string) *senkf.RunArchive {
	lf.fs.Parse(args)
	if *lf.archive == "" {
		lf.fs.Usage()
		log.Fatal("missing -archive (the run-ledger directory)")
	}
	a, err := senkf.OpenRunArchive(*lf.archive)
	if err != nil {
		log.Fatal(err)
	}
	return a
}

func filterFlags(fs *flag.FlagSet) (binary, algo, substrate, outcome *string) {
	binary = fs.String("binary", "", "only runs of this binary (e.g. senkf-run)")
	algo = fs.String("algo", "", "only runs of this algorithm (e.g. senkf)")
	substrate = fs.String("substrate", "", "only runs on this substrate: real | simulated")
	outcome = fs.String("outcome", "", "only runs with this outcome: ok | error")
	return
}

func runList(args []string) {
	lf := newLedgerFlags("list")
	binary, algo, substrate, outcome := filterFlags(lf.fs)
	a := lf.open(args)
	rows, err := a.List(senkf.RunFilter{
		Binary: *binary, Algorithm: *algo, Substrate: *substrate, Outcome: *outcome,
	})
	if err != nil {
		log.Fatal(err)
	}
	if *lf.jsonOut != "" {
		writeJSON(*lf.jsonOut, rows)
		return
	}
	if err := senkf.WriteRunListTable(os.Stdout, rows); err != nil {
		log.Fatal(err)
	}
}

func runDiff(args []string) {
	lf := newLedgerFlags("diff")
	a := lf.open(args)
	rest := lf.fs.Args()
	if len(rest) != 2 {
		log.Fatal("usage: senkf-report diff -archive <dir> <runA> <runB> (unique run-ID prefixes are accepted)")
	}
	d, err := a.DiffRuns(rest[0], rest[1])
	if err != nil {
		log.Fatal(err)
	}
	if *lf.jsonOut != "" {
		writeJSON(*lf.jsonOut, d)
		return
	}
	if err := d.WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// runHotspots ranks an archived run's plan stages by CPU self-time from
// its labeled whole-run profile (-capture-profile), cross-checked
// against trace busy time. With -cpu-profile it attributes a standalone
// profile + trace pair instead of an archived run.
func runHotspots(args []string) {
	lf := newLedgerFlags("hotspots")
	cpuIn := lf.fs.String("cpu-profile", "", "attribute this raw CPU profile instead of an archived run's (requires -trace)")
	traceIn := lf.fs.String("trace", "", "with -cpu-profile: the Chrome trace-event JSON of the same run")
	lf.fs.Parse(args)

	var profile []byte
	var events []senkf.TraceEvent
	if *cpuIn != "" {
		if *traceIn == "" {
			log.Fatal("-cpu-profile needs -trace (the busy-time side of the attribution)")
		}
		var err error
		if profile, err = os.ReadFile(*cpuIn); err != nil {
			log.Fatal(err)
		}
		tf, err := os.Open(*traceIn)
		if err != nil {
			log.Fatal(err)
		}
		events, err = senkf.ReadChromeTrace(tf)
		tf.Close()
		if err != nil {
			log.Fatal(err)
		}
	} else {
		if *lf.archive == "" {
			lf.fs.Usage()
			log.Fatal("missing -archive (or use -cpu-profile with -trace)")
		}
		a, err := senkf.OpenRunArchive(*lf.archive)
		if err != nil {
			log.Fatal(err)
		}
		rest := lf.fs.Args()
		if len(rest) != 1 {
			log.Fatal("usage: senkf-report hotspots -archive <dir> <run> (unique run-ID prefixes are accepted)")
		}
		id, err := a.Resolve(rest[0])
		if err != nil {
			log.Fatal(err)
		}
		rec, err := a.Load(id)
		if err != nil {
			log.Fatal(err)
		}
		if !rec.Has(senkf.RunCPUProfileFile) {
			log.Fatalf("run %s archived no CPU profile (re-run with -capture-profile)", id)
		}
		if profile, err = rec.ReadFile(senkf.RunCPUProfileFile); err != nil {
			log.Fatal(err)
		}
		tdata, err := rec.ReadFile(senkf.RunTraceFile)
		if err != nil {
			log.Fatal(err)
		}
		events, err = senkf.ReadChromeTrace(bytes.NewReader(tdata))
		if err != nil {
			log.Fatal(err)
		}
	}

	attr, err := senkf.AttributeHotStages(profile, events)
	if err != nil {
		log.Fatal(err)
	}
	stages, err := senkf.ProfileStageLabels(profile)
	if err != nil {
		log.Fatal(err)
	}
	if *lf.jsonOut != "" {
		writeJSON(*lf.jsonOut, attr)
		return
	}
	if err := attr.WriteTable(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("profile stages: %v\n", stages)
}

// runWire renders an archived run's wire-telemetry summary (wire.json):
// stage-data totals against the plan edge matrix, the top edges by
// bytes, comm skew, and per-OST utilization timelines. With -file it
// renders a standalone wire.json instead of an archived run's.
func runWire(args []string) {
	lf := newLedgerFlags("wire")
	fileIn := lf.fs.String("file", "", "render this wire.json directly instead of an archived run's")
	lf.fs.Parse(args)

	var data []byte
	var err error
	if *fileIn != "" {
		if data, err = os.ReadFile(*fileIn); err != nil {
			log.Fatal(err)
		}
	} else {
		if *lf.archive == "" {
			lf.fs.Usage()
			log.Fatal("missing -archive (or use -file with a standalone wire.json)")
		}
		a, err := senkf.OpenRunArchive(*lf.archive)
		if err != nil {
			log.Fatal(err)
		}
		rest := lf.fs.Args()
		if len(rest) != 1 {
			log.Fatal("usage: senkf-report wire -archive <dir> <run> (unique run-ID prefixes are accepted)")
		}
		id, err := a.Resolve(rest[0])
		if err != nil {
			log.Fatal(err)
		}
		rec, err := a.Load(id)
		if err != nil {
			log.Fatal(err)
		}
		if !rec.Has(senkf.RunWireFile) {
			log.Fatalf("run %s archived no wire telemetry (re-run with -wire)", id)
		}
		if data, err = rec.ReadFile(senkf.RunWireFile); err != nil {
			log.Fatal(err)
		}
	}

	sum, err := senkf.ParseWireSummary(data)
	if err != nil {
		log.Fatal(err)
	}
	if *lf.jsonOut != "" {
		writeJSON(*lf.jsonOut, sum)
		return
	}
	if err := sum.WriteTable(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func runTrend(args []string) {
	lf := newLedgerFlags("trend")
	metric := lf.fs.String("metric", "runtime", "metric to trend: runtime | duration | verdicts | divergences | cycles | pipeline-efficiency | stage<N>-efficiency | a counter or gauge name")
	tol := lf.fs.Float64("tol", 0.15, "relative regression tolerance (last run vs median of its predecessors)")
	gate := lf.fs.Bool("gate", false, "exit non-zero when the trend regressed (for CI)")
	binary, algo, substrate, outcome := filterFlags(lf.fs)
	a := lf.open(args)
	t, err := a.TrendMetric(*metric, senkf.RunFilter{
		Binary: *binary, Algorithm: *algo, Substrate: *substrate, Outcome: *outcome,
	}, *tol)
	if err != nil {
		log.Fatal(err)
	}
	if *lf.jsonOut != "" {
		writeJSON(*lf.jsonOut, t)
	} else if err := t.WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}
	if *gate && t.Regressed {
		log.Fatalf("metric %s regressed beyond %.0f%%", t.Metric, 100*t.Tolerance)
	}
}

func writeJSON(path string, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
}
