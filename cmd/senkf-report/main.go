// Command senkf-report turns a traced run into a performance report: the
// critical path with per-phase attribution, per-class phase breakdowns and
// overlap shares recomputed from the raw events, per-stage pipeline
// efficiency against the ideal multi-stage overlap, and — when the trace
// carries the tuner's prediction — model-vs-measured drift of every cost
// term plus whether the auto-tuner would decide differently under the
// measured coefficients.
//
// Usage:
//
//	senkf-bench -quick -trace trace.json -counters-csv counters.csv
//	senkf-report -trace trace.json -counters counters.csv -json report.json
package main

import (
	"encoding/json"
	"flag"
	"log"
	"os"

	"senkf"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("senkf-report: ")
	var (
		traceIn  = flag.String("trace", "", "Chrome trace-event JSON file of the run (required)")
		counters = flag.String("counters", "", "optional counters CSV (from -counters-csv) to attach")
		jsonOut  = flag.String("json", "", "write the structured report as JSON to this file")
		quiet    = flag.Bool("quiet", false, "suppress the text summary (useful with -json)")
	)
	flag.Parse()
	if *traceIn == "" {
		flag.Usage()
		log.Fatal("missing -trace (point it at a trace file from senkf-run/senkf-bench/senkf-cycle)")
	}

	tf, err := os.Open(*traceIn)
	if err != nil {
		log.Fatal(err)
	}
	events, err := senkf.ReadChromeTrace(tf)
	tf.Close()
	if err != nil {
		log.Fatalf("%s: %v", *traceIn, err)
	}

	var cmap map[string]float64
	if *counters != "" {
		cf, err := os.Open(*counters)
		if err != nil {
			log.Fatal(err)
		}
		cmap, err = senkf.ParseCountersCSV(cf)
		cf.Close()
		if err != nil {
			log.Fatalf("%s: %v", *counters, err)
		}
	}

	rep, err := senkf.BuildRunReport(events, cmap)
	if err != nil {
		log.Fatal(err)
	}

	if !*quiet {
		if err := rep.WriteText(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
	if *jsonOut != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
	}
}
