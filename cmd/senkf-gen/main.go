// Command senkf-gen generates a synthetic background ensemble on disk: a
// deterministic ocean-like truth field plus N member files in the ensemble
// file format, ready for senkf-run. It stands in for the "long-time ocean
// model integration" that produces the background ensemble in the paper's
// evaluation (§5.1).
//
// Usage:
//
//	senkf-gen -dir /tmp/ens -nx 96 -ny 48 -members 16 -spread 1.5 -seed 7
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"senkf"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("senkf-gen: ")
	var (
		dir     = flag.String("dir", "", "output directory for member files (required)")
		nx      = flag.Int("nx", senkf.LaptopScale.NX, "grid points along longitude")
		ny      = flag.Int("ny", senkf.LaptopScale.NY, "grid points along latitude")
		members = flag.Int("members", senkf.LaptopScale.Members, "ensemble size N")
		spread  = flag.Float64("spread", senkf.LaptopScale.Spread, "background ensemble spread")
		seed    = flag.Uint64("seed", senkf.LaptopScale.Seed, "generation seed")
		levels  = flag.Int("levels", 1, "vertical levels per member file (level-interleaved layout)")
	)
	obs := senkf.RegisterBasicRunFlags(flag.CommandLine, "senkf-gen")
	flag.Parse()
	if *dir == "" {
		flag.Usage()
		log.Fatal("missing -dir")
	}
	sess, err := obs.Start()
	if err != nil {
		log.Fatal(err)
	}
	mesh, err := senkf.NewMesh(*nx, *ny)
	if err != nil {
		sess.Fatal(err)
	}
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		sess.Fatal(fmt.Errorf("creating output directory: %w", err))
	}
	if *levels > 1 {
		// Multilevel ensemble: one truth per vertical level, members stored
		// with level-interleaved layout so a bar read fetches all levels.
		truths, err := senkf.GenerateTruthLevels(mesh, senkf.DefaultFieldSpec, *levels, *seed)
		if err != nil {
			sess.Fatal(err)
		}
		fields, err := senkf.GenerateEnsembleLevels(mesh, truths, *members, *spread, *seed)
		if err != nil {
			sess.Fatal(err)
		}
		paths, err := senkf.WriteEnsembleLevels(*dir, mesh, fields)
		if err != nil {
			sess.Fatal(fmt.Errorf("writing member files (is %s writable, with enough space?): %w", *dir, err))
		}
		fmt.Printf("wrote %d members (%dx%dx%d grid) to %s\n", len(paths), *nx, *ny, *levels, *dir)
		fmt.Printf("first file: %s\n", paths[0])
		if err := sess.Finish(nil); err != nil {
			log.Fatal(err)
		}
		return
	}
	truth := senkf.GenerateTruth(mesh, senkf.DefaultFieldSpec, *seed)
	fields, err := senkf.GenerateEnsemble(mesh, truth, *members, *spread, *seed)
	if err != nil {
		sess.Fatal(err)
	}
	paths, err := senkf.WriteEnsemble(*dir, mesh, fields)
	if err != nil {
		sess.Fatal(fmt.Errorf("writing member files (is %s writable, with enough space?): %w", *dir, err))
	}
	fmt.Printf("wrote %d members (%dx%d grid) to %s\n", len(paths), *nx, *ny, *dir)
	fmt.Printf("first file: %s\n", paths[0])
	before := senkf.RMSE(senkf.EnsembleMean(fields), truth)
	fmt.Printf("background ensemble-mean RMSE vs truth: %.4f\n", before)
	if err := sess.Finish(nil); err != nil {
		log.Fatal(err)
	}
}
