// Command senkf-tune runs the paper's auto-tuning (§4.4, Algorithms 1–2)
// for a given processor budget over the paper-scale problem (or a custom
// one) and prints the economic configuration: how many processors to spend
// on file reading (C1 = n_cg·n_sdy) versus local analysis
// (C2 = n_sdx·n_sdy), and the optimal (n_sdx, n_sdy, L, n_cg).
//
// Usage:
//
//	senkf-tune -np 12000
//	senkf-tune -np 12000 -eps 0.01 -max-l 12 -max-ncg 12 -simulate
//	senkf-tune -np 12000 -explain   # full Algorithm 1/2 search table
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"senkf"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("senkf-tune: ")
	var (
		np        = flag.Int("np", 12000, "total processor budget n_p")
		eps       = flag.Float64("eps", 0.001, "earnings-rate threshold ε of Eq. (14)")
		maxL      = flag.Int("max-l", 12, "cap on the layer count L (0 = unbounded)")
		maxNCg    = flag.Int("max-ncg", 12, "cap on the concurrent group count (0 = unbounded)")
		simulate  = flag.Bool("simulate", false, "also simulate the tuned schedule and the P-EnKF baseline")
		intensity = flag.Float64("fault-intensity", 0, "with -simulate: re-simulate the tuned schedule under a generated fault plan of this intensity (0 = off)")
		faultSeed = flag.Uint64("fault-seed", 42, "seed for the generated fault plan")
		explain   = flag.Bool("explain", false, "print the full Algorithm 1/2 search table: every curve, the Eq. 13 earnings rates and the ε stopping point")
		levels    = flag.Int("levels", 0, "vertical level count: every Eq. 7-10 term is priced with the level factor (0 = single level)")
	)
	obs := senkf.RegisterBasicRunFlags(flag.CommandLine, "senkf-tune")
	flag.Parse()
	if *intensity > 0 && !*simulate {
		log.Fatal("-fault-intensity needs -simulate (the plan is injected into the simulated schedule)")
	}
	if *intensity < 0 {
		log.Fatalf("-fault-intensity must be non-negative, got %g", *intensity)
	}
	sess, err := obs.Start()
	if err != nil {
		log.Fatal(err)
	}

	machine := senkf.DefaultMachine()
	if *levels < 0 {
		log.Fatalf("-levels must be non-negative, got %d", *levels)
	}
	machine.P.Levels = *levels
	p := machine.P
	if lv := p.LevelCount(); lv > 1 {
		fmt.Printf("problem: %dx%dx%d grid, %d members, h=%dB (%dB/level), ξ=%d η=%d\n",
			p.NX, p.NY, lv, p.N, int(p.BytesPerPoint()), p.H, p.Xi, p.Eta)
	} else {
		fmt.Printf("problem: %dx%d grid, %d members, h=%dB, ξ=%d η=%d\n",
			p.NX, p.NY, p.N, p.H, p.Xi, p.Eta)
	}

	tc := senkf.TuneConstraints{MaxL: *maxL, MaxNCg: *maxNCg}
	var tuned senkf.Tuned
	var ok bool
	if *explain {
		var st *senkf.TuneSearchTrace
		tuned, st, ok = senkf.AutoTuneExplained(p, *np, *eps, tc)
		if !ok {
			sess.Fatal(fmt.Errorf("no feasible configuration for np=%d", *np))
		}
		if err := st.WriteTable(os.Stdout); err != nil {
			sess.Fatal(err)
		}
		fmt.Println()
	} else {
		tuned, ok = senkf.AutoTuneConstrained(p, *np, *eps, tc)
		if !ok {
			sess.Fatal(fmt.Errorf("no feasible configuration for np=%d", *np))
		}
	}
	fmt.Printf("tuned for np=%d (ε=%g):\n", *np, *eps)
	fmt.Printf("  n_sdx=%d n_sdy=%d L=%d n_cg=%d\n",
		tuned.Choice.NSdx, tuned.Choice.NSdy, tuned.Choice.L, tuned.Choice.NCg)
	fmt.Printf("  I/O processors C1=%d, compute processors C2=%d (%d total of %d budget)\n",
		tuned.C1, tuned.C2, tuned.C1+tuned.C2, *np)
	fmt.Printf("  model time (Eq. 10): %.2fs\n", tuned.TTotal)

	sess.Note("tuned", fmt.Sprintf("nsdx=%d nsdy=%d L=%d ncg=%d",
		tuned.Choice.NSdx, tuned.Choice.NSdy, tuned.Choice.L, tuned.Choice.NCg))
	if !*simulate {
		finish(sess)
		return
	}
	sres, err := senkf.SimulateSEnKF(machine, tuned.Choice)
	if err != nil {
		sess.Fatal(err)
	}
	fmt.Printf("simulated S-EnKF: %.2fs (first stage %.2fs, %.0f%% of I/O overlapped)\n",
		sres.Runtime, sres.FirstStage, 100*sres.OverlapFraction)
	nsdx, nsdy, err := senkf.ChooseDecomposition(p, *np)
	if err != nil {
		sess.Fatal(err)
	}
	pres, err := senkf.SimulatePEnKF(machine, nsdx, nsdy)
	if err != nil {
		sess.Fatal(err)
	}
	fmt.Printf("simulated P-EnKF at np=%d: %.2fs (I/O share %.0f%%)\n",
		*np, pres.Runtime, pres.IOPercent())
	fmt.Printf("speedup: %.2fx\n", pres.Runtime/sres.Runtime)

	if *intensity > 0 {
		fm := machine
		fm.Faults = senkf.GenerateFaultPlan(*faultSeed, *intensity, senkf.FaultGeometry{
			OSTs: machine.FS.OSTs, NCg: tuned.Choice.NCg, NSdy: tuned.Choice.NSdy,
			L: tuned.Choice.L, N: p.N, Horizon: sres.Runtime,
		})
		fres, err := senkf.SimulateSEnKF(fm, tuned.Choice)
		if err != nil {
			sess.Fatal(fmt.Errorf("faulted simulation: %w", err))
		}
		fmt.Printf("under faults (intensity %g, seed %d): %.2fs (%+.0f%%), %d member(s) dropped, %d failover(s), %d rank death(s)\n",
			*intensity, *faultSeed, fres.Runtime, 100*(fres.Runtime/sres.Runtime-1),
			len(fres.DroppedMembers), fres.Failovers, fres.RankDeaths)
	}
	finish(sess)
}

func finish(sess *senkf.RunSession) {
	if err := sess.Finish(nil); err != nil {
		log.Fatal(err)
	}
}
