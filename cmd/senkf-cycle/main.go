// Command senkf-cycle runs a sequential (cycled) data assimilation
// experiment: an advection–diffusion model integrates the truth and an
// imperfect ensemble forward; every cycle, observations of the evolving
// truth are assimilated by the chosen analyzer (serial reference or the
// real parallel S-EnKF/P-EnKF over member files), and a free-running
// ensemble is tracked as the control.
//
// Usage:
//
//	senkf-cycle -cycles 10
//	senkf-cycle -cycles 20 -analyzer senkf -nsdx 4 -nsdy 2 -layers 3 -ncg 2
//	senkf-cycle -cycles 20 -analyzer senkf -monitor -metrics-addr localhost:9464
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"

	"senkf"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("senkf-cycle: ")
	var (
		nx       = flag.Int("nx", 48, "grid points along longitude")
		ny       = flag.Int("ny", 24, "grid points along latitude")
		members  = flag.Int("members", 20, "ensemble size N")
		xi       = flag.Int("xi", 3, "localization half-width ξ")
		eta      = flag.Int("eta", 2, "localization half-height η")
		cycles   = flag.Int("cycles", 10, "number of forecast-analysis cycles")
		steps    = flag.Int("steps", 3, "model steps per cycle")
		cx       = flag.Float64("cx", 0.4, "zonal velocity (cells/step)")
		cy       = flag.Float64("cy", 0.2, "meridional velocity (cells/step)")
		nu       = flag.Float64("nu", 0.02, "diffusivity")
		obsVar   = flag.Float64("obs-var", 1e-4, "observation error variance")
		modelErr = flag.Float64("model-error", 0.2, "stochastic model error SD")
		inflate  = flag.Float64("inflation", 1.1, "multiplicative covariance inflation")
		analyzer = flag.String("analyzer", "serial", "analysis path: serial | senkf | penkf")
		nsdx     = flag.Int("nsdx", 4, "sub-domains along longitude (parallel analyzers)")
		nsdy     = flag.Int("nsdy", 2, "sub-domains along latitude (parallel analyzers)")
		layers   = flag.Int("layers", 3, "S-EnKF stages L")
		ncg      = flag.Int("ncg", 2, "S-EnKF concurrent groups")
		seed     = flag.Uint64("seed", 2019, "experiment seed")

		stragSpec = flag.String("straggler", "", "inject one straggler into every cycle's analysis, proc:factor (e.g. io/g0/r0:30)")
		resil     = flag.Bool("resilient", false, "with -analyzer senkf: drop unreadable members instead of aborting; per-cycle degraded-member counts feed the monitor")

		ckptDir   = flag.String("checkpoint-dir", "", "cut crash-consistent checkpoints of the full cycled state into this directory")
		ckptEvery = flag.Int("checkpoint-every", 1, "checkpoint every N cycles")
		ckptKeep  = flag.Int("checkpoint-keep", 3, "retain the newest K checkpoints (0 keeps all)")
		resume    = flag.Bool("resume", false, "resume from the newest valid checkpoint in -checkpoint-dir (falls back past corrupted ones)")
		killAfter = flag.Int("kill-after-cycle", -1, "fault injection: kill the process (exit 137, no graceful landing) right after this cycle's checkpoint")
	)
	obs := senkf.RegisterRunFlags(flag.CommandLine, "senkf-cycle")
	flag.Parse()
	if obs.MonitorOn() && *analyzer != "senkf" {
		log.Fatal("-monitor needs -analyzer senkf (plan conformance is defined by the compiled S-EnKF plan)")
	}
	if (obs.TraceOut() != "" || obs.CountersOn() || obs.CountersCSV() != "") && *analyzer == "serial" {
		log.Fatal("-trace/-counters need a parallel analyzer (senkf or penkf)")
	}
	if *resil && *analyzer != "senkf" {
		log.Fatalf("-resilient only applies to -analyzer senkf (got -analyzer %s)", *analyzer)
	}
	if (*resume || *killAfter >= 0) && *ckptDir == "" {
		log.Fatal("-resume and -kill-after-cycle need -checkpoint-dir")
	}
	if *ckptEvery <= 0 {
		log.Fatal("-checkpoint-every must be positive")
	}

	sess, err := obs.Start()
	if err != nil {
		log.Fatal(err)
	}

	mesh, err := senkf.NewMesh(*nx, *ny)
	if err != nil {
		sess.Fatal(err)
	}
	radius, err := senkf.NewRadius(*xi, *eta)
	if err != nil {
		sess.Fatal(err)
	}
	fm, err := senkf.NewForwardModel(mesh, *cx, *cy, *nu, 1.0)
	if err != nil {
		sess.Fatal(err)
	}
	truth := senkf.GenerateTruth(mesh, senkf.DefaultFieldSpec, *seed)
	ensemble, err := senkf.GenerateEnsemble(mesh, truth, *members, 1.5, *seed)
	if err != nil {
		sess.Fatal(err)
	}

	var fp *senkf.FaultPlan
	if *stragSpec != "" {
		s, err := senkf.ParseStraggler(*stragSpec)
		if err != nil {
			sess.Fatal(err)
		}
		fp = &senkf.FaultPlan{Stragglers: []senkf.Straggler{s}}
		sess.SetFaults(fp)
	}
	if *killAfter >= 0 {
		if fp == nil {
			fp = &senkf.FaultPlan{}
		}
		fp.Crash = &senkf.CycleCrash{Cycle: *killAfter}
		sess.SetFaults(fp)
	}

	// ckptCfg is the experiment identity a checkpoint must match to be
	// resumable: the physics, geometry and seeding — deliberately NOT the
	// member count (ensembles are elastic across resumes) and not the
	// analyzer (all analyzers produce identical statistics).
	ckptCfg := map[string]string{
		"nx": strconv.Itoa(*nx), "ny": strconv.Itoa(*ny),
		"xi": strconv.Itoa(*xi), "eta": strconv.Itoa(*eta),
		"steps": strconv.Itoa(*steps),
		"cx":    fmt.Sprintf("%g", *cx), "cy": fmt.Sprintf("%g", *cy),
		"nu":      fmt.Sprintf("%g", *nu),
		"obs-var": fmt.Sprintf("%g", *obsVar), "model-error": fmt.Sprintf("%g", *modelErr),
		"inflation":    fmt.Sprintf("%g", *inflate),
		"obs-stride-x": "2", "obs-stride-y": "2",
		"seed": strconv.FormatUint(*seed, 10),
		// The cycle driver is single-level; pinning the level count keeps a
		// multilevel checkpoint tree from silently resuming here (and vice
		// versa) once cycled multilevel runs exist.
		"levels": "1",
	}

	st := senkf.CycleState{Truth: truth, Ensemble: ensemble}
	if *resume {
		l, skipped, err := senkf.LatestCheckpoint(*ckptDir)
		if err != nil {
			sess.Fatal(err)
		}
		for _, sk := range skipped {
			sess.Log.Warn("skipped invalid checkpoint", "path", sk.Path, "err", sk.Err.Error())
		}
		if l == nil {
			sess.Fatal(fmt.Errorf("no valid checkpoint in %s", *ckptDir))
		}
		if d := senkf.DigestCheckpointConfig(ckptCfg); l.Manifest.ConfigDigest != d {
			sess.Fatal(fmt.Errorf("checkpoint %s was cut under a different experiment config (digest %s, flags give %s)",
				l.Dir, l.Manifest.ConfigDigest, d))
		}
		st, err = senkf.RestoreCheckpoint(l)
		if err != nil {
			sess.Fatal(err)
		}
		if st.NextCycle >= *cycles {
			sess.Fatal(fmt.Errorf("checkpoint already covers cycle %d; -cycles %d leaves nothing to resume", st.NextCycle-1, *cycles))
		}
		// Elastic resume: a different -members resamples both ensembles
		// deterministically, preserving the mean point-wise variance.
		if *members != len(st.Ensemble) {
			was := len(st.Ensemble)
			st.Ensemble, err = senkf.ResizeEnsemble(mesh, st.Ensemble, *members, *seed^0xE15A57)
			if err != nil {
				sess.Fatal(err)
			}
			st.Free, err = senkf.ResizeEnsemble(mesh, st.Free, *members, *seed^0xF2EE)
			if err != nil {
				sess.Fatal(err)
			}
			sess.Note("resized-from", strconv.Itoa(was))
			sess.Log.Info("elastic resume", "members_was", was, "members_now", *members)
		}
		sess.SetParent(l.State.RunID, st.NextCycle)
	}

	// lastDegraded carries each cycle's dropped-member count from the
	// resilient analyzer to the per-cycle series.
	lastDegraded := 0
	var an senkf.Analyzer
	switch *analyzer {
	case "serial":
		sess.Describe("serial", "real", nil)
		an = senkf.SerialAnalyzer()
	case "senkf", "penkf":
		dec, err := senkf.NewDecomposition(mesh, *nsdx, *nsdy, radius)
		if err != nil {
			sess.Fatal(err)
		}
		// Describe the per-cycle analysis plan to the ledger (every cycle
		// executes the same compiled plan).
		var spec senkf.AlgorithmSpec
		if *analyzer == "senkf" {
			spec = senkf.SEnKFSpec(dec, *members, *layers, *ncg)
		} else {
			spec = senkf.PEnKFSpec(dec, *members)
		}
		if cp, err := senkf.CompilePlan(spec); err == nil {
			sess.Describe(*analyzer, "real", cp)
		} else {
			sess.Fatal(err)
		}
		dir, err := os.MkdirTemp("", "senkf-cycle")
		if err != nil {
			sess.Fatal(err)
		}
		defer os.RemoveAll(dir)
		if *analyzer == "senkf" {
			tpl := senkf.Problem{Tr: sess.Tracer, Obs: sess.Observer(), Faults: fp, Prof: sess.Labels(), Msgs: sess.MsgObserver()}
			if *resil {
				pl := senkf.Plan{Dec: dec, L: *layers, NCg: *ncg}
				an = func(cfg senkf.Config, background [][]float64, net *senkf.Network) ([][]float64, error) {
					if _, err := senkf.WriteEnsemble(dir, cfg.Mesh, background); err != nil {
						return nil, err
					}
					p := tpl
					p.Cfg, p.Dir, p.Net = cfg, dir, net
					res, err := senkf.RunSEnKFResilient(p, pl, senkf.Resilience{})
					if err != nil {
						return nil, err
					}
					lastDegraded = cfg.N - len(res.Survivors)
					return res.Fields, nil
				}
			} else {
				an = senkf.SEnKFAnalyzerHooked(dir, dec, *layers, *ncg, tpl)
			}
		} else {
			an = senkf.PEnKFAnalyzerObserved(dir, dec, nil, sess.Tracer)
		}
	default:
		sess.Fatal(fmt.Errorf("unknown analyzer %q", *analyzer))
	}

	cfg := senkf.CycleConfig{
		Enkf:          senkf.Config{Mesh: mesh, Radius: radius, N: *members, Inflation: *inflate},
		Model:         fm,
		StepsPerCycle: *steps,
		ObsStrideX:    2, ObsStrideY: 2,
		ObsVar:       *obsVar,
		ModelErrorSD: *modelErr,
		Seed:         *seed,
		Prof:         sess.Labels(),
	}
	// Every cycle's outcome feeds the run ledger's per-cycle series (and,
	// when monitored, the monitor's live series).
	onCycle := func(st senkf.CycleStats) {
		sess.RecordCycle(senkf.CycleSample{
			Cycle:           st.Cycle,
			BackgroundRMSE:  st.BackgroundRMSE,
			AnalysisRMSE:    st.AnalysisRMSE,
			FreeRMSE:        st.FreeRMSE,
			Spread:          st.Spread,
			DegradedMembers: lastDegraded,
		})
	}
	// Checkpoint hook chain: cut checkpoints on cadence, then (fault
	// injection) kill the process at the requested boundary — after the
	// checkpoint, so the crash is exactly what resume must survive.
	var hook senkf.CycleHook
	if *ckptDir != "" {
		cp := &senkf.Checkpointer{
			Dir: *ckptDir, Every: *ckptEvery, Keep: *ckptKeep,
			Seed: *seed, Config: ckptCfg,
			PlanHash: sess.PlanHash(), RunID: sess.RunID,
		}
		cpHook := cp.Hook(cfg)
		// A graceful SIGINT/SIGTERM cuts a final checkpoint before the
		// session lands, so an interrupted run loses nothing.
		sess.OnInterrupt(func() {
			if err := cp.Flush(); err != nil {
				sess.Log.Error("final checkpoint failed", "err", err.Error())
			} else if c := cp.LastCycle(); c >= 0 {
				sess.Log.Info("final checkpoint cut", "cycle", c)
			}
		})
		hook = func(st senkf.CycleState) error {
			if err := cpHook(st); err != nil {
				return err
			}
			if fp.CrashAfter(st.NextCycle - 1) {
				sess.Log.Error("fault injection: killing process", "cycle", st.NextCycle-1)
				os.Exit(137) // no graceful landing — a real crash
			}
			return nil
		}
	}
	history, err := senkf.RunCyclesFrom(cfg, st, *cycles, an, onCycle, hook)
	if err != nil {
		sess.Fatal(err)
	}
	fmt.Println("cycle | background RMSE | analysis RMSE | free-run RMSE | spread")
	for _, st := range history {
		fmt.Printf("%5d | %15.4f | %13.4f | %13.4f | %.4f\n",
			st.Cycle, st.BackgroundRMSE, st.AnalysisRMSE, st.FreeRMSE, st.Spread)
	}
	last := history[len(history)-1]
	fmt.Printf("\nassimilation %.4f vs free run %.4f after %d cycles (%.1fx better)\n",
		last.AnalysisRMSE, last.FreeRMSE, *cycles, last.FreeRMSE/last.AnalysisRMSE)

	if err := sess.Finish(nil); err != nil {
		log.Fatal(err)
	}
}
