// Command senkf-cycle runs a sequential (cycled) data assimilation
// experiment: an advection–diffusion model integrates the truth and an
// imperfect ensemble forward; every cycle, observations of the evolving
// truth are assimilated by the chosen analyzer (serial reference or the
// real parallel S-EnKF/P-EnKF over member files), and a free-running
// ensemble is tracked as the control.
//
// Usage:
//
//	senkf-cycle -cycles 10
//	senkf-cycle -cycles 20 -analyzer senkf -nsdx 4 -nsdy 2 -layers 3 -ncg 2
//	senkf-cycle -cycles 20 -analyzer senkf -monitor -metrics-addr localhost:9464
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"senkf"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("senkf-cycle: ")
	var (
		nx       = flag.Int("nx", 48, "grid points along longitude")
		ny       = flag.Int("ny", 24, "grid points along latitude")
		members  = flag.Int("members", 20, "ensemble size N")
		xi       = flag.Int("xi", 3, "localization half-width ξ")
		eta      = flag.Int("eta", 2, "localization half-height η")
		cycles   = flag.Int("cycles", 10, "number of forecast-analysis cycles")
		steps    = flag.Int("steps", 3, "model steps per cycle")
		cx       = flag.Float64("cx", 0.4, "zonal velocity (cells/step)")
		cy       = flag.Float64("cy", 0.2, "meridional velocity (cells/step)")
		nu       = flag.Float64("nu", 0.02, "diffusivity")
		obsVar   = flag.Float64("obs-var", 1e-4, "observation error variance")
		modelErr = flag.Float64("model-error", 0.2, "stochastic model error SD")
		inflate  = flag.Float64("inflation", 1.1, "multiplicative covariance inflation")
		analyzer = flag.String("analyzer", "serial", "analysis path: serial | senkf | penkf")
		nsdx     = flag.Int("nsdx", 4, "sub-domains along longitude (parallel analyzers)")
		nsdy     = flag.Int("nsdy", 2, "sub-domains along latitude (parallel analyzers)")
		layers   = flag.Int("layers", 3, "S-EnKF stages L")
		ncg      = flag.Int("ncg", 2, "S-EnKF concurrent groups")
		seed     = flag.Uint64("seed", 2019, "experiment seed")
		traceOut = flag.String("trace", "", "write a Chrome trace-event JSON of the parallel analyses (senkf/penkf analyzers)")
		counters = flag.Bool("counters", false, "print runtime counters after the experiment (senkf/penkf analyzers)")
		profile  = flag.String("profile", "", "serve /debug/pprof/ on this address (e.g. localhost:6060) while running")

		monitorOn = flag.Bool("monitor", false, "attach the live plan-conformance monitor to every cycle's parallel analysis (senkf analyzer)")
		metrAddr  = flag.String("metrics-addr", "", "with -monitor: serve Prometheus /metrics and JSON /status on this address while cycling")
		flightOut = flag.String("flight-recorder", "", "with -monitor: write the anomaly flight-recorder dump (Chrome trace JSON) here")
		stragSpec = flag.String("straggler", "", "inject one straggler into every cycle's analysis, proc:factor (e.g. io/g0/r0:30)")
		resil     = flag.Bool("resilient", false, "with -analyzer senkf: drop unreadable members instead of aborting; per-cycle degraded-member counts feed the monitor")
		linger    = flag.Duration("linger", 0, "keep serving -metrics-addr for this long after the experiment, so it can be scraped")
	)
	flag.Parse()
	if *profile != "" {
		srv, err := senkf.StartProfiling(*profile)
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		fmt.Printf("pprof: http://%s/debug/pprof/\n", srv.Addr())
	}

	mesh, err := senkf.NewMesh(*nx, *ny)
	if err != nil {
		log.Fatal(err)
	}
	radius, err := senkf.NewRadius(*xi, *eta)
	if err != nil {
		log.Fatal(err)
	}
	fm, err := senkf.NewForwardModel(mesh, *cx, *cy, *nu, 1.0)
	if err != nil {
		log.Fatal(err)
	}
	truth := senkf.GenerateTruth(mesh, senkf.DefaultFieldSpec, *seed)
	ensemble, err := senkf.GenerateEnsemble(mesh, truth, *members, 1.5, *seed)
	if err != nil {
		log.Fatal(err)
	}

	var buf *senkf.TraceBuffer
	var primary senkf.TraceSink
	if *traceOut != "" {
		buf = senkf.NewTraceBuffer()
		primary = buf
	}
	reg := senkf.NewCounterRegistry()

	// The monitor attaches as the secondary side of a tee: the primary
	// Chrome-trace sink (when any) is untouched. Each cycle's parallel
	// analysis is one monitored run (BeginRun/EndRun per cycle).
	var mon *senkf.Monitor
	if *monitorOn {
		if *analyzer != "senkf" {
			log.Fatal("-monitor needs -analyzer senkf (plan conformance is defined by the compiled S-EnKF plan)")
		}
		mon = senkf.NewMonitor(senkf.MonitorOptions{
			DumpPath:    *flightOut,
			RunRegistry: reg,
		})
		defer mon.Close()
		primary = mon.Tee(primary)
	}
	var tr *senkf.Tracer
	if primary != nil || *counters {
		var sinks []senkf.TraceSink
		if primary != nil {
			sinks = append(sinks, primary)
		}
		tr = senkf.NewWallTracer(sinks...)
		tr.SetCounters(reg)
	}
	if *metrAddr != "" {
		if mon == nil {
			log.Fatal("-metrics-addr needs -monitor")
		}
		srv, err := senkf.StartProfiling(*metrAddr)
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		srv.Handle("/metrics", mon.MetricsHandler())
		srv.Handle("/status", mon.StatusHandler())
		fmt.Printf("monitor: http://%s/metrics and /status\n", srv.Addr())
	}
	var fp *senkf.FaultPlan
	if *stragSpec != "" {
		s, err := senkf.ParseStraggler(*stragSpec)
		if err != nil {
			log.Fatal(err)
		}
		fp = &senkf.FaultPlan{Stragglers: []senkf.Straggler{s}}
	}
	if *resil && *analyzer != "senkf" {
		log.Fatalf("-resilient only applies to -analyzer senkf (got -analyzer %s)", *analyzer)
	}

	// lastDegraded carries each cycle's dropped-member count from the
	// resilient analyzer to the monitor's per-cycle series.
	lastDegraded := 0
	var an senkf.Analyzer
	switch *analyzer {
	case "serial":
		if *traceOut != "" || *counters {
			log.Fatal("-trace/-counters need a parallel analyzer (senkf or penkf)")
		}
		an = senkf.SerialAnalyzer()
	case "senkf", "penkf":
		dec, err := senkf.NewDecomposition(mesh, *nsdx, *nsdy, radius)
		if err != nil {
			log.Fatal(err)
		}
		dir, err := os.MkdirTemp("", "senkf-cycle")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(dir)
		if *analyzer == "senkf" {
			tpl := senkf.Problem{Tr: tr, Faults: fp}
			if mon != nil {
				tpl.Obs = mon
			}
			if *resil {
				pl := senkf.Plan{Dec: dec, L: *layers, NCg: *ncg}
				an = func(cfg senkf.Config, background [][]float64, net *senkf.Network) ([][]float64, error) {
					if _, err := senkf.WriteEnsemble(dir, cfg.Mesh, background); err != nil {
						return nil, err
					}
					p := tpl
					p.Cfg, p.Dir, p.Net = cfg, dir, net
					res, err := senkf.RunSEnKFResilient(p, pl, senkf.Resilience{})
					if err != nil {
						return nil, err
					}
					lastDegraded = cfg.N - len(res.Survivors)
					return res.Fields, nil
				}
			} else {
				an = senkf.SEnKFAnalyzerHooked(dir, dec, *layers, *ncg, tpl)
			}
		} else {
			an = senkf.PEnKFAnalyzerObserved(dir, dec, nil, tr)
		}
	default:
		log.Fatalf("unknown analyzer %q", *analyzer)
	}

	cfg := senkf.CycleConfig{
		Enkf:          senkf.Config{Mesh: mesh, Radius: radius, N: *members, Inflation: *inflate},
		Model:         fm,
		StepsPerCycle: *steps,
		ObsStrideX:    2, ObsStrideY: 2,
		ObsVar:       *obsVar,
		ModelErrorSD: *modelErr,
		Seed:         *seed,
	}
	var onCycle func(senkf.CycleStats)
	if mon != nil {
		onCycle = func(st senkf.CycleStats) {
			mon.RecordCycle(senkf.CycleSample{
				Cycle:           st.Cycle,
				BackgroundRMSE:  st.BackgroundRMSE,
				AnalysisRMSE:    st.AnalysisRMSE,
				FreeRMSE:        st.FreeRMSE,
				Spread:          st.Spread,
				DegradedMembers: lastDegraded,
			})
		}
	}
	history, err := senkf.RunCyclesObserved(cfg, truth, ensemble, *cycles, an, onCycle)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("cycle | background RMSE | analysis RMSE | free-run RMSE | spread")
	for _, st := range history {
		fmt.Printf("%5d | %15.4f | %13.4f | %13.4f | %.4f\n",
			st.Cycle, st.BackgroundRMSE, st.AnalysisRMSE, st.FreeRMSE, st.Spread)
	}
	last := history[len(history)-1]
	fmt.Printf("\nassimilation %.4f vs free run %.4f after %d cycles (%.1fx better)\n",
		last.AnalysisRMSE, last.FreeRMSE, *cycles, last.FreeRMSE/last.AnalysisRMSE)

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := buf.WriteChrome(f); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %d trace events to %s\n", buf.Len(), *traceOut)
	}
	if *counters {
		fmt.Println("\nruntime counters:")
		if err := reg.WriteTable(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
	if mon != nil {
		st := mon.Status()
		fmt.Printf("monitor: %d cycles published, %d events, %d divergences, %d watchdog verdicts\n",
			len(st.Cycles), st.Events, st.Conformance.DivergenceCount, len(st.Verdicts))
		for _, v := range st.Verdicts {
			fmt.Printf("  watchdog: %s\n", v)
		}
		if st.FlightDump != "" {
			fmt.Printf("  flight recorder dumped to %s\n", st.FlightDump)
		}
		if *metrAddr != "" && *linger > 0 {
			fmt.Printf("monitor: serving metrics for another %s\n", *linger)
			time.Sleep(*linger)
		}
	}
}
