// Command senkf-cycle runs a sequential (cycled) data assimilation
// experiment: an advection–diffusion model integrates the truth and an
// imperfect ensemble forward; every cycle, observations of the evolving
// truth are assimilated by the chosen analyzer (serial reference or the
// real parallel S-EnKF/P-EnKF over member files), and a free-running
// ensemble is tracked as the control.
//
// Usage:
//
//	senkf-cycle -cycles 10
//	senkf-cycle -cycles 20 -analyzer senkf -nsdx 4 -nsdy 2 -layers 3 -ncg 2
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"senkf"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("senkf-cycle: ")
	var (
		nx       = flag.Int("nx", 48, "grid points along longitude")
		ny       = flag.Int("ny", 24, "grid points along latitude")
		members  = flag.Int("members", 20, "ensemble size N")
		xi       = flag.Int("xi", 3, "localization half-width ξ")
		eta      = flag.Int("eta", 2, "localization half-height η")
		cycles   = flag.Int("cycles", 10, "number of forecast-analysis cycles")
		steps    = flag.Int("steps", 3, "model steps per cycle")
		cx       = flag.Float64("cx", 0.4, "zonal velocity (cells/step)")
		cy       = flag.Float64("cy", 0.2, "meridional velocity (cells/step)")
		nu       = flag.Float64("nu", 0.02, "diffusivity")
		obsVar   = flag.Float64("obs-var", 1e-4, "observation error variance")
		modelErr = flag.Float64("model-error", 0.2, "stochastic model error SD")
		inflate  = flag.Float64("inflation", 1.1, "multiplicative covariance inflation")
		analyzer = flag.String("analyzer", "serial", "analysis path: serial | senkf | penkf")
		nsdx     = flag.Int("nsdx", 4, "sub-domains along longitude (parallel analyzers)")
		nsdy     = flag.Int("nsdy", 2, "sub-domains along latitude (parallel analyzers)")
		layers   = flag.Int("layers", 3, "S-EnKF stages L")
		ncg      = flag.Int("ncg", 2, "S-EnKF concurrent groups")
		seed     = flag.Uint64("seed", 2019, "experiment seed")
		traceOut = flag.String("trace", "", "write a Chrome trace-event JSON of the parallel analyses (senkf/penkf analyzers)")
		counters = flag.Bool("counters", false, "print runtime counters after the experiment (senkf/penkf analyzers)")
		profile  = flag.String("profile", "", "serve /debug/pprof/ on this address (e.g. localhost:6060) while running")
	)
	flag.Parse()
	if *profile != "" {
		srv, err := senkf.StartProfiling(*profile)
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		fmt.Printf("pprof: http://%s/debug/pprof/\n", srv.Addr())
	}

	mesh, err := senkf.NewMesh(*nx, *ny)
	if err != nil {
		log.Fatal(err)
	}
	radius, err := senkf.NewRadius(*xi, *eta)
	if err != nil {
		log.Fatal(err)
	}
	fm, err := senkf.NewForwardModel(mesh, *cx, *cy, *nu, 1.0)
	if err != nil {
		log.Fatal(err)
	}
	truth := senkf.GenerateTruth(mesh, senkf.DefaultFieldSpec, *seed)
	ensemble, err := senkf.GenerateEnsemble(mesh, truth, *members, 1.5, *seed)
	if err != nil {
		log.Fatal(err)
	}

	var buf *senkf.TraceBuffer
	var sinks []senkf.TraceSink
	if *traceOut != "" {
		buf = senkf.NewTraceBuffer()
		sinks = append(sinks, buf)
	}
	var tr *senkf.Tracer
	reg := senkf.NewCounterRegistry()
	if *traceOut != "" || *counters {
		tr = senkf.NewWallTracer(sinks...)
		tr.SetCounters(reg)
	}

	var an senkf.Analyzer
	switch *analyzer {
	case "serial":
		if *traceOut != "" || *counters {
			log.Fatal("-trace/-counters need a parallel analyzer (senkf or penkf)")
		}
		an = senkf.SerialAnalyzer()
	case "senkf", "penkf":
		dec, err := senkf.NewDecomposition(mesh, *nsdx, *nsdy, radius)
		if err != nil {
			log.Fatal(err)
		}
		dir, err := os.MkdirTemp("", "senkf-cycle")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(dir)
		if *analyzer == "senkf" {
			an = senkf.SEnKFAnalyzerObserved(dir, dec, *layers, *ncg, nil, tr)
		} else {
			an = senkf.PEnKFAnalyzerObserved(dir, dec, nil, tr)
		}
	default:
		log.Fatalf("unknown analyzer %q", *analyzer)
	}

	cfg := senkf.CycleConfig{
		Enkf:          senkf.Config{Mesh: mesh, Radius: radius, N: *members, Inflation: *inflate},
		Model:         fm,
		StepsPerCycle: *steps,
		ObsStrideX:    2, ObsStrideY: 2,
		ObsVar:       *obsVar,
		ModelErrorSD: *modelErr,
		Seed:         *seed,
	}
	history, err := senkf.RunCycles(cfg, truth, ensemble, *cycles, an)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("cycle | background RMSE | analysis RMSE | free-run RMSE | spread")
	for _, st := range history {
		fmt.Printf("%5d | %15.4f | %13.4f | %13.4f | %.4f\n",
			st.Cycle, st.BackgroundRMSE, st.AnalysisRMSE, st.FreeRMSE, st.Spread)
	}
	last := history[len(history)-1]
	fmt.Printf("\nassimilation %.4f vs free run %.4f after %d cycles (%.1fx better)\n",
		last.AnalysisRMSE, last.FreeRMSE, *cycles, last.FreeRMSE/last.AnalysisRMSE)

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := buf.WriteChrome(f); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %d trace events to %s\n", buf.Len(), *traceOut)
	}
	if *counters {
		fmt.Println("\nruntime counters:")
		if err := reg.WriteTable(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
}
