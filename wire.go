// Wire-telemetry facade: the per-edge communication accounting and
// per-OST read attribution of internal/wire and internal/plan's expected
// edge matrix, re-exported for the binaries and external users. A
// WireCollector observes every delivered message (real mpi runtime or
// simulated mailboxes) and every parallel-file-system read, folds them
// into an edge matrix keyed by (src, dst, stage, level), and reduces to
// the wire.json summary the run ledger archives; ExpectedEdges derives
// the same matrix from a compiled plan alone, so real, simulated and
// expected traffic are directly comparable (see the monitor's live
// conformance fold and MonitorWireStatus).

package senkf

import (
	"encoding/json"

	"senkf/internal/monitor"
	"senkf/internal/plan"
	"senkf/internal/runlog"
	"senkf/internal/wire"
)

type (
	// EdgeKey identifies one communication edge of a run: (src, dst,
	// stage, level).
	EdgeKey = plan.EdgeKey
	// EdgeStats is the accumulated traffic of one edge.
	EdgeStats = plan.EdgeStats
	// EdgeMatrix maps edges to their accumulated traffic.
	EdgeMatrix = plan.EdgeMatrix
	// WireCollector folds per-message and per-read observations into the
	// edge matrix and OST attribution; it implements Problem.Msgs /
	// Machine.Msgs and Machine.Reads.
	WireCollector = wire.Collector
	// WireSummary is the archived wire-telemetry picture of one run
	// (wire.json): totals, top edges, skew, per-OST timelines.
	WireSummary = wire.Summary
	// WireEdgeLine is one edge of a wire summary, heaviest first.
	WireEdgeLine = wire.EdgeLine
	// WireOSTLine is one storage target's attribution in a wire summary.
	WireOSTLine = wire.OSTLine
	// MonitorWireStatus is the monitor's live wire-conformance state
	// (Status.Wire): actual vs expected edges, missing/short/unexpected
	// counts, per-OST peaks.
	MonitorWireStatus = monitor.WireStatus
)

// RunWireFile is the wire-telemetry summary attached to an archived run
// (-wire with -archive), for RunRecord.ReadFile / Has.
const RunWireFile = runlog.WireFile

// NewWireCollector returns an empty wire collector.
func NewWireCollector() *WireCollector { return wire.NewCollector() }

// ExpectedEdges derives the expected edge matrix — stage-data bytes and
// message counts per (src, dst, stage, level) — from a compiled plan
// alone, byte-sized by the real transport's message formula.
func ExpectedEdges(c *CompiledPlan) EdgeMatrix { return plan.ExpectedEdges(c) }

// StageMsgBytes returns the on-wire size of one stage-data message to
// compute rank dst at the given stage — the 5-int header plus the stage
// box payload, matching the real runtime's encoding.
func StageMsgBytes(c *CompiledPlan, dst, stage int) int64 {
	return plan.StageMsgBytes(c, dst, stage)
}

// ParseWireSummary decodes an archived wire.json (RunWireFile) back into
// a summary for rendering or comparison.
func ParseWireSummary(data []byte) (*WireSummary, error) {
	var s WireSummary
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, err
	}
	return &s, nil
}
