// Run-ledger facade: the persistent run archive, run identity, shared
// observability flags and structured logging of internal/runlog
// re-exported for the binaries and external users. Every invocation
// mints a run ID; with -archive it lands a self-describing, content-
// addressed record (manifest, counters, report, trace, monitor state,
// per-cycle series, anomaly profiles) that senkf-report can list, diff
// and trend across runs.

package senkf

import (
	"flag"
	"io"
	"log/slog"
	"time"

	"senkf/internal/report/bench"
	"senkf/internal/runlog"
	"senkf/internal/runtimeobs"
)

type (
	// RunFlags is one binary's registered observability flag set; call
	// Start after flag parsing to obtain the RunSession.
	RunFlags = runlog.Flags
	// RunSession is one invocation's observability context: run ID,
	// structured logger, counter registry, tracer, monitor and archive.
	RunSession = runlog.Session
	// RunArchive is the content-addressed run ledger on disk.
	RunArchive = runlog.Archive
	// RunManifest is the self-describing header of one archived run.
	RunManifest = runlog.Manifest
	// RunRecord is one archived run loaded back from the ledger.
	RunRecord = runlog.Record
	// RunFilter selects archived runs for list/trend queries.
	RunFilter = runlog.Filter
	// RunSummary is one archived run's list row.
	RunSummary = runlog.Summary
	// RunDiff is the structured comparison of two archived runs.
	RunDiff = runlog.Diff
	// RunTrend is one metric's time-ordered series across archived runs.
	RunTrend = runlog.Trend
	// RunLabels is a run's pprof label set (RunSession.Labels); assign it
	// to Problem.Prof / CycleConfig.Prof / Machine.Prof so CPU profiles
	// slice by {run_id, algo, substrate, proc, stage}.
	RunLabels = runtimeobs.LabelSet
	// RuntimeSummary is the archived runtime-observability summary
	// (runtime.json): sampler peaks, GC stats, hot-stage attribution.
	RuntimeSummary = runtimeobs.Summary
	// HotStageAttribution ranks per-{class, stage} CPU self-time from a
	// labeled profile against trace busy time.
	HotStageAttribution = runtimeobs.Attribution
)

// Attached-file names inside an archived run directory, for
// RunRecord.ReadFile / Has.
const (
	RunTraceFile      = runlog.TraceFile
	RunCPUProfileFile = runlog.CPUProfileFile
	RunRuntimeFile    = runlog.RuntimeFile
)

// AttributeHotStages parses a raw labeled CPU profile (pprof bytes) and
// merges it onto the run's trace events: per-{class, stage} CPU
// self-time ranked against trace busy time.
func AttributeHotStages(profile []byte, events []TraceEvent) (*HotStageAttribution, error) {
	p, err := runtimeobs.ParseProfile(profile)
	if err != nil {
		return nil, err
	}
	return runtimeobs.Attribute(p, events)
}

// ProfileStageLabels returns the sorted distinct plan-stage labels
// present in a raw CPU profile — the smoke check that label propagation
// covered every plan stage.
func ProfileStageLabels(profile []byte) ([]int, error) {
	p, err := runtimeobs.ParseProfile(profile)
	if err != nil {
		return nil, err
	}
	return runtimeobs.ProfileStages(p), nil
}

// RegisterRunFlags installs the full observability flag set (-trace,
// -counters, -counters-csv, -profile, -monitor, -metrics-addr,
// -flight-recorder, -linger, -runtime-sample, -capture-profile,
// -archive, -log-level) for the named binary.
func RegisterRunFlags(fs *flag.FlagSet, binary string) *RunFlags {
	return runlog.Register(fs, binary)
}

// RegisterBasicRunFlags installs the subset every binary carries:
// -profile, -archive and -log-level.
func RegisterBasicRunFlags(fs *flag.FlagSet, binary string) *RunFlags {
	return runlog.RegisterBasic(fs, binary)
}

// OpenRunArchive opens (creating if needed) the run ledger at dir.
func OpenRunArchive(dir string) (*RunArchive, error) { return runlog.Open(dir) }

// NewRunID mints a run identity for the named binary.
func NewRunID(binary string) string {
	return runlog.NewRunID(binary, time.Now(), nil)
}

// NewRunLogger builds a structured logger whose every line carries the
// run ID. level is debug | info | warn | error (empty means info).
func NewRunLogger(w io.Writer, level string, runID string) (*slog.Logger, error) {
	l, err := runlog.ParseLevel(level)
	if err != nil {
		return nil, err
	}
	return runlog.NewLogger(w, l, runID), nil
}

// WriteRunListTable renders archived-run list rows as an aligned table.
func WriteRunListTable(w io.Writer, rows []RunSummary) error {
	return runlog.WriteListTable(w, rows)
}

// CollectBenchRecordArchived is CollectBenchRecord through the run
// ledger: every suite cell is archived as its own run record and the
// returned bench record is reassembled from the archive, so each cell
// carries the run ID it was derived from. log may be nil.
func CollectBenchRecordArchived(s *FigureSuite, scale string, a *RunArchive, log *slog.Logger) (BenchRecord, error) {
	return bench.FromSuiteArchived(s, scale, a, log)
}
