// Benchmark harness: one benchmark per figure of the paper's evaluation
// (Figures 1, 5, 9, 10, 11, 12, 13 — the paper has no numeric tables; Table
// 1 is notation). Each figure benchmark regenerates the figure's series on
// the reduced-scale suite so the whole harness runs in seconds; the
// *_PaperScale variants run the full 2,000–12,000-processor sweep of §5 and
// report the headline numbers (speedup at 12,000 cores, scaling
// efficiency, overlap percentage) as custom metrics.
//
// Micro-benchmarks of the underlying kernels (local analysis, Cholesky,
// bar/block file reads, message passing, the event engine, the auto-tuner)
// follow the figure benches.
package senkf

import (
	"fmt"
	"os"
	"testing"

	"senkf/internal/costmodel"
	"senkf/internal/enkf"
	"senkf/internal/ensio"
	"senkf/internal/grid"
	"senkf/internal/linalg"
	"senkf/internal/mpi"
	"senkf/internal/obs"
	"senkf/internal/sim"
	"senkf/internal/workload"
)

// --- Figure benchmarks (reduced scale) --------------------------------

func benchFigure(b *testing.B, run func(s *FigureSuite) (Figure, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		s := QuickFigures()
		f, err := run(s)
		if err != nil {
			b.Fatal(err)
		}
		if len(f.Series) == 0 {
			b.Fatal("empty figure")
		}
	}
}

func BenchmarkFig01_PEnKFIOPercentage(b *testing.B) {
	benchFigure(b, func(s *FigureSuite) (Figure, error) { return s.Fig01() })
}

func BenchmarkFig05_BlockReadingScaling(b *testing.B) {
	benchFigure(b, func(s *FigureSuite) (Figure, error) { return s.Fig05() })
}

func BenchmarkFig09_PhaseBreakdown(b *testing.B) {
	benchFigure(b, func(s *FigureSuite) (Figure, error) { return s.Fig09() })
}

func BenchmarkFig10_ConcurrentAccess(b *testing.B) {
	benchFigure(b, func(s *FigureSuite) (Figure, error) { return s.Fig10() })
}

func BenchmarkFig11_OverlapPercentage(b *testing.B) {
	benchFigure(b, func(s *FigureSuite) (Figure, error) { return s.Fig11() })
}

func BenchmarkFig12_CostModelValidation(b *testing.B) {
	benchFigure(b, func(s *FigureSuite) (Figure, error) { return s.Fig12() })
}

func BenchmarkFig13_StrongScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := QuickFigures()
		f, err := s.Fig13()
		if err != nil {
			b.Fatal(err)
		}
		// Report the headline speedup as a custom metric.
		for _, ser := range f.Series {
			if ser.Label == "speedup" && len(ser.Y) > 0 {
				b.ReportMetric(ser.Y[len(ser.Y)-1], "speedup@max-np")
			}
		}
	}
}

// BenchmarkFig13_StrongScaling_PaperScale runs the full §5 strong-scaling
// sweep: P-EnKF and auto-tuned S-EnKF at 2,000–12,000 simulated processors
// over the 0.1° problem. The paper reports 3x at 12,000 cores.
func BenchmarkFig13_StrongScaling_PaperScale(b *testing.B) {
	if testing.Short() {
		b.Skip("paper-scale sweep skipped in -short mode")
	}
	for i := 0; i < b.N; i++ {
		s := PaperFigures()
		f, err := s.Fig13()
		if err != nil {
			b.Fatal(err)
		}
		for _, ser := range f.Series {
			if ser.Label == "speedup" && len(ser.Y) > 0 {
				b.ReportMetric(ser.Y[len(ser.Y)-1], "speedup@12000")
			}
		}
		if i == 0 && os.Getenv("SENKF_PRINT_FIGURES") != "" {
			f.WriteTable(os.Stdout)
		}
	}
}

// BenchmarkFig09_PhaseBreakdown_PaperScale reports the 12,000-core phase
// structure: S-EnKF's first-stage share and overlap fraction.
func BenchmarkFig09_PhaseBreakdown_PaperScale(b *testing.B) {
	if testing.Short() {
		b.Skip("paper-scale sweep skipped in -short mode")
	}
	for i := 0; i < b.N; i++ {
		s := PaperFigures()
		res, _, err := s.SEnKFAt(12000)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.OverlapFraction, "overlap%")
		b.ReportMetric(100*res.FirstStage/res.Runtime, "first-stage%")
	}
}

// --- Real-execution benchmarks (ablations on real files) ---------------

// benchProblem builds a real laptop-scale problem once per benchmark.
func benchProblem(b *testing.B) (Problem, Decomposition) {
	b.Helper()
	ps := workload.TestScale
	mesh, err := NewMesh(ps.NX, ps.NY)
	if err != nil {
		b.Fatal(err)
	}
	truth := GenerateTruth(mesh, DefaultFieldSpec, ps.Seed)
	members, err := GenerateEnsemble(mesh, truth, ps.Members, ps.Spread, ps.Seed)
	if err != nil {
		b.Fatal(err)
	}
	dir := b.TempDir()
	if _, err := WriteEnsemble(dir, mesh, members); err != nil {
		b.Fatal(err)
	}
	net, err := NewStridedNetwork(mesh, truth, ps.ObsStride, ps.ObsStride, ps.ObsVar, ps.Seed)
	if err != nil {
		b.Fatal(err)
	}
	radius := grid.Radius{Xi: ps.Xi, Eta: ps.Eta}
	cfg := Config{Mesh: mesh, Radius: radius, N: ps.Members, Seed: ps.Seed}
	dec, err := NewDecomposition(mesh, 4, 2, radius)
	if err != nil {
		b.Fatal(err)
	}
	return Problem{Cfg: cfg, Dir: dir, Net: net}, dec
}

func BenchmarkRealSEnKF(b *testing.B) {
	p, dec := benchProblem(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunSEnKF(p, Plan{Dec: dec, L: 3, NCg: 2}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRealPEnKF(b *testing.B) {
	p, dec := benchProblem(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunPEnKF(p, dec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRealLEnKF(b *testing.B) {
	p, dec := benchProblem(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunLEnKF(p, dec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSerialReference(b *testing.B) {
	ps := workload.TestScale
	mesh, _ := NewMesh(ps.NX, ps.NY)
	truth := GenerateTruth(mesh, DefaultFieldSpec, ps.Seed)
	members, err := GenerateEnsemble(mesh, truth, ps.Members, ps.Spread, ps.Seed)
	if err != nil {
		b.Fatal(err)
	}
	net, err := NewStridedNetwork(mesh, truth, ps.ObsStride, ps.ObsStride, ps.ObsVar, ps.Seed)
	if err != nil {
		b.Fatal(err)
	}
	cfg := Config{Mesh: mesh, Radius: grid.Radius{Xi: ps.Xi, Eta: ps.Eta}, N: ps.Members, Seed: ps.Seed}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SerialReference(cfg, members, net); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation: bar reading vs block reading on real files --------------

func benchReadFiles(b *testing.B, bar bool) {
	mesh, _ := grid.NewMesh(256, 128)
	field := make([]float64, mesh.Points())
	for i := range field {
		field[i] = float64(i)
	}
	dir := b.TempDir()
	path := ensio.MemberPath(dir, 0)
	if err := ensio.WriteMember(path, ensio.Header{NX: mesh.NX, NY: mesh.NY}, field); err != nil {
		b.Fatal(err)
	}
	// Equal payload (8192 values) either way; the bar needs one addressing
	// operation, the narrow block needs one per row (128).
	block := grid.Box{X0: 32, X1: 96, Y0: 0, Y1: 128}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mf, err := ensio.OpenMember(path)
		if err != nil {
			b.Fatal(err)
		}
		if bar {
			if _, err := mf.ReadBar(0, 32); err != nil {
				b.Fatal(err)
			}
		} else {
			if _, err := mf.ReadBlock(block); err != nil {
				b.Fatal(err)
			}
		}
		mf.Close()
	}
}

func BenchmarkAblationBarRead(b *testing.B)   { benchReadFiles(b, true) }
func BenchmarkAblationBlockRead(b *testing.B) { benchReadFiles(b, false) }

// --- Kernel micro-benchmarks -------------------------------------------

func BenchmarkLocalAnalysisPoint(b *testing.B) {
	ps := workload.TestScale
	mesh, _ := grid.NewMesh(ps.NX, ps.NY)
	truth := workload.Truth(mesh, workload.DefaultFieldSpec, ps.Seed)
	members, err := workload.Ensemble(mesh, truth, ps.Members, ps.Spread, ps.Seed)
	if err != nil {
		b.Fatal(err)
	}
	net, err := obs.StridedNetwork(mesh, truth, ps.ObsStride, ps.ObsStride, ps.ObsVar, ps.Seed)
	if err != nil {
		b.Fatal(err)
	}
	cfg := enkf.Config{Mesh: mesh, Radius: grid.Radius{Xi: ps.Xi, Eta: ps.Eta}, N: ps.Members, Seed: ps.Seed}
	blk := &enkf.Block{Box: grid.Box{X0: 0, X1: mesh.NX, Y0: 0, Y1: mesh.NY}, Data: members}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cfg.AnalyzePoint(blk, net.Obs, 10, 6); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCholesky64(b *testing.B) {
	s := linalg.NewStream(1)
	a := linalg.NewMatrix(64, 66)
	for i := range a.Data {
		a.Data[i] = s.Norm()
	}
	spd := linalg.AAT(a)
	for i := 0; i < 64; i++ {
		spd.Data[i*64+i] += 64
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := linalg.Cholesky(spd); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkModifiedCholesky(b *testing.B) {
	s := linalg.NewStream(2)
	u := linalg.NewMatrix(25, 40)
	for i := range u.Data {
		u.Data[i] = s.Norm()
	}
	linalg.CenterRows(u)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := linalg.ModifiedCholeskyPrecision(u, 5, 1e-6); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMatMul64(b *testing.B) {
	s := linalg.NewStream(3)
	x := linalg.NewMatrix(64, 64)
	y := linalg.NewMatrix(64, 64)
	for i := range x.Data {
		x.Data[i] = s.Norm()
		y.Data[i] = s.Norm()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := linalg.MatMul(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMPIPingPong(b *testing.B) {
	payload := make([]float64, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, err := mpi.NewWorld(2)
		if err != nil {
			b.Fatal(err)
		}
		err = w.Run(func(c *mpi.Comm) error {
			const rounds = 100
			if c.Rank() == 0 {
				for r := 0; r < rounds; r++ {
					if err := c.Send(1, 0, nil, payload); err != nil {
						return err
					}
					if _, err := c.Recv(1, 1); err != nil {
						return err
					}
				}
				return nil
			}
			for r := 0; r < rounds; r++ {
				m, err := c.Recv(0, 0)
				if err != nil {
					return err
				}
				if err := c.Send(0, 1, nil, m.Data); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimEngineEvents(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := sim.NewEnv()
		r := sim.NewResource(env, "disk", 4)
		for p := 0; p < 1000; p++ {
			env.Go(fmt.Sprintf("p%d", p), func(pr *sim.Proc) {
				for j := 0; j < 10; j++ {
					r.Acquire(pr)
					pr.Sleep(0.001)
					r.Release()
				}
			})
		}
		if _, err := env.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAutoTunePaperScale(b *testing.B) {
	p := DefaultMachine().P
	tc := costmodel.TuneConstraints{MaxL: 12, MaxNCg: 12}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := p.AutoTuneConstrained(12000, 0.001, tc); !ok {
			b.Fatal("no configuration")
		}
	}
}
