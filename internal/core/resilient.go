// Resilient S-EnKF: the same concurrent-group, multi-stage schedule as
// RunSEnKF, hardened against the failures a parallel file system and a
// large rank count actually produce — unreadable or corrupted member
// files, transient storage errors, and I/O-rank deaths.
//
// The recovery model is fail-stop with perfect failure detection, realised
// deterministically: every failure either surfaces as a classifiable open
// error (agreed world-wide through one Allreduce before the stage loop) or
// is a plan-declared rank death that every rank evaluates identically from
// the shared fault plan. Unreadable members are dropped and the analysis
// continues on the N−k survivors with a variance-preserving inflation
// reweighting; dead readers' bar rows are adopted by their cyclic successor
// within the group (failover), so compute ranks still receive every stage
// block. The outcome is a structured DegradedResult instead of a crash.
package core

import (
	"errors"
	"fmt"
	"math"
	"os"
	"strings"
	"time"

	"senkf/internal/enkf"
	"senkf/internal/ensio"
	"senkf/internal/faults"
	"senkf/internal/grid"
	"senkf/internal/metrics"
	"senkf/internal/mpi"
	"senkf/internal/plan"
	"senkf/internal/trace"
)

// Resilience configures the hardened run.
type Resilience struct {
	// Faults is the injected fault plan (nil runs the hardened schedule on
	// a healthy system; the recovery machinery then only verifies).
	Faults *faults.Plan
	// Retry bounds per-operation read retries. A zero value defaults to
	// the fault plan's retry budget with no backoff.
	Retry ensio.RetryPolicy
	// NoVerify skips payload-checksum verification at open. Verification
	// is on by default: it is what converts silent corruption into a
	// clean member drop.
	NoVerify bool
	// MinMembers aborts the run when fewer members survive (values below
	// 2 mean 2 — an ensemble needs at least two members).
	MinMembers int
}

func (r Resilience) retry() ensio.RetryPolicy {
	if r.Retry.Attempts >= 1 || r.Retry.Backoff > 0 {
		return r.Retry
	}
	return ensio.RetryPolicy{Attempts: r.Faults.Budget()}
}

func (r Resilience) minMembers() int {
	if r.MinMembers < 2 {
		return 2
	}
	return r.MinMembers
}

// DroppedMember records one member excluded from the analysis and why.
type DroppedMember struct {
	Member int
	Reason string // "missing", "corrupt", "truncated", "io", "geometry"
}

// Failover records a dead reader's bar row being adopted by a survivor.
type Failover struct {
	Group      int
	FromReader int
	ToReader   int
	Stage      int // first stage the successor served the row
}

// DegradedResult is the structured outcome of a resilient run: the
// analysis over the surviving members plus everything a caller needs to
// interpret it.
type DegradedResult struct {
	// Fields is the analysis ensemble of the survivors, indexed by
	// survivor position (Fields[s] belongs to member Survivors[s]).
	Fields [][]float64
	// Survivors lists the member indices that were assimilated, ascending.
	Survivors []int
	Dropped   []DroppedMember
	Failovers []Failover
	// EffectiveConfig is the configuration the analysis actually ran with:
	// N shrunk to the survivor count and Inflation scaled by
	// sqrt((N−1)/(N′−1)) so the ensemble variance is not biased low by the
	// lost members. Callers can feed it to enkf.SerialReference to verify
	// the degraded result independently.
	EffectiveConfig enkf.Config
	// Degraded is true when anything was dropped or failed over.
	Degraded bool
}

// Member-drop reason codes exchanged through the agreement Allreduce.
const (
	dropMissing   = 1
	dropCorrupt   = 2
	dropTruncated = 3
	dropIO        = 4
	dropGeometry  = 5
)

func dropReason(code int) string {
	switch code {
	case dropMissing:
		return "missing"
	case dropCorrupt:
		return "corrupt"
	case dropTruncated:
		return "truncated"
	case dropIO:
		return "io"
	case dropGeometry:
		return "geometry"
	}
	return fmt.Sprintf("code(%d)", code)
}

// classifyOpenError maps an ensio open failure to a drop-reason code.
func classifyOpenError(err error) int {
	if errors.Is(err, os.ErrNotExist) {
		return dropMissing
	}
	var ce *ensio.CorruptionError
	if errors.As(err, &ce) {
		return dropCorrupt
	}
	if strings.Contains(err.Error(), "truncated") {
		return dropTruncated
	}
	return dropIO
}

// RunSEnKFResilient executes the hardened S-EnKF schedule. Unreadable
// members are dropped (not fatal) down to Resilience.MinMembers; plan-
// declared reader deaths fail over to the group's surviving readers. The
// DegradedResult is assembled at world rank 0.
func RunSEnKFResilient(p Problem, pl Plan, r Resilience) (*DegradedResult, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if pl.Dec.Mesh != p.Cfg.Mesh {
		return nil, fmt.Errorf("core: decomposition mesh %v differs from config mesh %v", pl.Dec.Mesh, p.Cfg.Mesh)
	}
	if err := pl.Validate(p.Cfg.N); err != nil {
		return nil, err
	}
	fp := r.Faults
	if err := fp.Validate(pl.NCg, pl.Dec.NSdy, pl.L, p.Cfg.N, 0); err != nil {
		return nil, err
	}
	if fp != nil {
		for _, d := range fp.Deaths {
			if d.At > 0 {
				return nil, fmt.Errorf("core: time-based rank death (At=%g) is simulation-only; use BeforeStage for real runs", d.At)
			}
		}
	}
	cp, err := plan.Compile(pl.Spec(p.Cfg.N))
	if err != nil {
		return nil, err
	}
	w, err := mpi.NewWorld(cp.WorldSize())
	if err != nil {
		return nil, err
	}
	w.SetTracer(p.Tr)
	if p.Msgs != nil {
		p.Msgs.BeginMessages(cp)
		w.SetMsgObserver(p.Msgs)
	}
	var out *DegradedResult
	t0 := time.Now()
	err = w.Run(func(c *mpi.Comm) error {
		if c.Rank() < cp.NumCompute() {
			res, err := runComputeResilient(c, p, cp, r, t0)
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				out = res
			}
			return nil
		}
		return runIOResilient(c, p, cp, r, t0)
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// agreeMembership is the world-wide failure-detection barrier: every rank
// contributes a drop-reason vector (only the designated reporter of each
// I/O group reports non-zero codes) and receives the identical sum, so all
// ranks derive the same survivor set without further communication.
func agreeMembership(c *mpi.Comm, n int, codes []float64) (survivors []int, posOf map[int]int, dropped []DroppedMember, err error) {
	agreed, err := c.AllreduceSum(codes)
	if err != nil {
		return nil, nil, nil, err
	}
	posOf = map[int]int{}
	for k := 0; k < n; k++ {
		if code := int(agreed[k]); code != 0 {
			dropped = append(dropped, DroppedMember{Member: k, Reason: dropReason(code)})
			continue
		}
		posOf[k] = len(survivors)
		survivors = append(survivors, k)
	}
	return survivors, posOf, dropped, nil
}

// effectiveConfig shrinks the ensemble to the survivors and scales the
// inflation so the analysis-spread loss from dropped members is
// compensated: deviations are multiplied by sqrt((N−1)/(N′−1)), the factor
// that restores the unbiased sample-variance normalisation.
func effectiveConfig(cfg enkf.Config, effN int) enkf.Config {
	out := cfg
	out.N = effN
	if effN < cfg.N {
		infl := cfg.Inflation
		if infl < 1 {
			infl = 1
		}
		out.Inflation = infl * math.Sqrt(float64(cfg.N-1)/float64(effN-1))
	}
	return out
}

// planFailovers derives the failover assignments from the plan — every
// rank could compute this, but only rank 0 needs it for the result.
func planFailovers(fp *faults.Plan, nsdy int) []Failover {
	if fp == nil {
		return nil
	}
	var out []Failover
	for _, d := range fp.Deaths {
		if d.At > 0 {
			continue
		}
		dead := func(jj int) bool { return fp.DeadBeforeStage(d.Group, jj, d.BeforeStage) }
		if s, ok := faults.Successor(d.Reader, nsdy, dead); ok {
			out = append(out, Failover{Group: d.Group, FromReader: d.Reader, ToReader: s, Stage: d.BeforeStage})
		}
	}
	return out
}

// runIOResilient is the hardened body of I/O rank (group g, bar row j):
// the compiled plan supplies the rank's identity, members and per-stage
// read/send geometry; the failover policy decides which rows it serves.
func runIOResilient(c *mpi.Comm, p Problem, cp *plan.Compiled, r Resilience, t0 time.Time) error {
	me := cp.IO[c.Rank()-cp.NumCompute()]
	g, j, name := me.Group, me.Row, me.Name
	nsdy, nStages := cp.Spec.Dec.NSdy, cp.Spec.L
	fp := r.Faults
	tr := p.Tr

	// A rank dead before stage 0 opens nothing; it still joins the
	// membership agreement (failure detection is perfect and instant under
	// the plan model) and then leaves.
	deadFromStart := fp.DeadBeforeStage(g, j, 0)

	opts := ensio.OpenOptions{Retry: r.retry(), Hook: fp.EnsioHook(), Verify: !r.NoVerify}
	open := map[int]*ensio.MemberFile{} // member -> file
	myCodes := map[int]int{}
	if !deadFromStart {
		for _, k := range me.Members {
			mf, err := ensio.OpenMemberOpts(ensio.MemberPath(p.Dir, k), opts)
			if err != nil {
				myCodes[k] = classifyOpenError(err)
				continue
			}
			if err := mf.CheckGeometry(p.Cfg.Mesh.NX, p.Cfg.Mesh.NY, 1, k); err != nil {
				myCodes[k] = dropGeometry
				mf.Close()
				continue
			}
			open[k] = mf
		}
	}
	defer func() {
		reg := tr.Counters()
		for _, f := range open {
			if reg != nil {
				st := f.Stats()
				reg.Add("ensio.seeks", float64(st.Seeks))
				reg.Add("ensio.bytes", float64(st.BytesRead))
				reg.Add("ensio.reads", float64(st.Reads))
				reg.Add("ensio.retries", float64(st.Retries))
			}
			f.Close()
		}
	}()

	// Exactly one reader per group reports the group's codes — the first
	// reader alive at stage 0 (every rank derives the same choice from the
	// plan, so the sum is not multiplied by n_sdy).
	reporter := 0
	for jj := 0; jj < nsdy; jj++ {
		if !fp.DeadBeforeStage(g, jj, 0) {
			reporter = jj
			break
		}
	}
	codes := make([]float64, p.Cfg.N)
	if j == reporter {
		for k, code := range myCodes {
			codes[k] = float64(code)
		}
	}
	survivors, posOf, dropped, err := agreeMembership(c, p.Cfg.N, codes)
	if err != nil {
		return err
	}
	if len(survivors) < r.minMembers() {
		return fmt.Errorf("core: only %d of %d members readable (%d dropped) — need at least %d", len(survivors), p.Cfg.N, len(dropped), r.minMembers())
	}
	effN := len(survivors)

	// Group members in survivor order.
	var members []int
	for _, k := range me.Members {
		if _, ok := posOf[k]; ok {
			members = append(members, k)
		}
	}

	for l := 0; l < nStages; l++ {
		if fp.DeadBeforeStage(g, j, l) {
			if tr.Enabled() {
				tr.Instant(name, trace.CatFault, "rank-death", time.Since(t0).Seconds(),
					trace.Arg{Key: trace.ArgStage, Val: float64(l)})
			}
			tr.Counters().Inc("faults.rank.deaths")
			return nil
		}
		// Rows this reader serves: its own, plus dead rows whose cyclic
		// successor it is. Every live reader derives the identical
		// assignment from the plan.
		dead := func(jj int) bool { return fp.DeadBeforeStage(g, jj, l) }
		serve := []int{j}
		for jj := 0; jj < nsdy; jj++ {
			if jj == j || !dead(jj) {
				continue
			}
			if s, ok := faults.Successor(jj, nsdy, dead); ok && s == j {
				serve = append(serve, jj)
				if l == 0 || !fp.DeadBeforeStage(g, jj, l-1) {
					// First stage this row is adopted.
					tr.Counters().Inc("faults.failovers")
					if tr.Enabled() {
						tr.Instant(name, trace.CatFault, "failover", time.Since(t0).Seconds(),
							trace.Arg{Key: "row", Val: float64(jj)},
							trace.Arg{Key: trace.ArgStage, Val: float64(l)})
					}
				}
			}
		}
		for _, row := range serve {
			rowPlan := cp.IOAt(g, row)
			st := rowPlan.Stages[l]
			for _, k := range members {
				mf := open[k]
				if mf == nil {
					return fmt.Errorf("core: reader %s lost member %d agreed as a survivor", name, k)
				}
				readStart := time.Now()
				bar, err := mf.ReadBar(st.Read.Box.Y0, st.Read.Box.Y1)
				if err != nil {
					return fmt.Errorf("core: reader %s, member %d, stage %d: %w", name, k, l, err)
				}
				observe(p, name, metrics.PhaseRead, t0, readStart, time.Now(), -1)

				commStart := time.Now()
				for _, dst := range st.Comm.Dsts {
					box := cp.Compute[dst].Stages[l].Box
					payload := cutPayload(bar, st.Read.Box, box, p.Cfg.Mesh.NX)
					meta := []int{posOf[k], box.X0, box.X1, box.Y0, box.Y1}
					if err := c.Send(dst, plan.Tag(l, effN, 1, posOf[k], 0), meta, payload); err != nil {
						return err
					}
				}
				observe(p, name, metrics.PhaseComm, t0, commStart, time.Now(), -1)
			}
		}
	}
	return nil
}

// runComputeResilient is the hardened body of compute rank (i, j): the
// same helper-thread overlap as runCompute, over the survivor ensemble
// with the effective (reweighted) configuration.
func runComputeResilient(c *mpi.Comm, p Problem, cp *plan.Compiled, r Resilience, t0 time.Time) (*DegradedResult, error) {
	me := cp.Compute[c.Rank()]
	name := cp.Compute[c.Rank()].Name
	nStages := cp.Spec.L

	// Membership agreement: compute ranks contribute nothing but must
	// participate so every rank holds the identical survivor set.
	survivors, _, dropped, err := agreeMembership(c, p.Cfg.N, make([]float64, p.Cfg.N))
	if err != nil {
		return nil, err
	}
	if len(survivors) < r.minMembers() {
		return nil, fmt.Errorf("core: only %d of %d members readable (%d dropped) — need at least %d", len(survivors), p.Cfg.N, len(dropped), r.minMembers())
	}
	effN := len(survivors)
	effCfg := effectiveConfig(p.Cfg, effN)
	if c.Rank() == 0 && len(dropped) > 0 {
		tr := p.Tr
		for _, d := range dropped {
			tr.Counters().Inc("faults.members.dropped")
			if tr.Enabled() {
				tr.Instant(name, trace.CatFault, "member-dropped", time.Since(t0).Seconds(),
					trace.Arg{Key: "member", Val: float64(d.Member)})
			}
		}
	}

	type stageData struct {
		blk *enkf.Block
		err error
	}
	stages := make(chan stageData, nStages)
	go func() {
		for l := 0; l < nStages; l++ {
			exp := me.Stages[l].Box
			blk := enkf.NewBlock(exp, effN)
			for s := 0; s < effN; s++ {
				m, err := c.Recv(mpi.AnySource, plan.Tag(l, effN, 1, s, 0))
				if err != nil {
					stages <- stageData{err: err}
					return
				}
				box := grid.Box{X0: m.Meta[1], X1: m.Meta[2], Y0: m.Meta[3], Y1: m.Meta[4]}
				if box != exp {
					stages <- stageData{err: fmt.Errorf("core: stage %d survivor %d box %v, want %v", l, s, box, exp)}
					return
				}
				if len(m.Data) != exp.Points() {
					stages <- stageData{err: fmt.Errorf("core: stage %d survivor %d payload %d, want %d", l, s, len(m.Data), exp.Points())}
					return
				}
				blk.Data[m.Meta[0]] = m.Data
			}
			if p.Tr.Enabled() {
				p.Tr.Instant(name, trace.CatStage, "ready", time.Since(t0).Seconds(),
					trace.Arg{Key: trace.ArgStage, Val: float64(l)})
			}
			stages <- stageData{blk: blk}
		}
	}()

	result := enkf.NewBlock(me.Sub, effN)
	for l := 0; l < nStages; l++ {
		waitStart := time.Now()
		sd := <-stages
		if sd.err != nil {
			return nil, sd.err
		}
		observe(p, name, metrics.PhaseWait, t0, waitStart, time.Now(), -1)

		layer := me.Stages[l].Analyze
		compStart := time.Now()
		out, err := effCfg.AnalyzeBox(sd.blk, p.Net.InBox(sd.blk.Box), layer)
		if err != nil {
			return nil, err
		}
		for s := 0; s < effN; s++ {
			for y := layer.Y0; y < layer.Y1; y++ {
				for x := layer.X0; x < layer.X1; x++ {
					result.Set(s, x, y, out.At(s, x, y))
				}
			}
		}
		observe(p, name, metrics.PhaseCompute, t0, compStart, time.Now(), -1)
	}

	if c.Rank() != 0 {
		meta := []int{result.Box.X0, result.Box.X1, result.Box.Y0, result.Box.Y1}
		return nil, c.Send(0, resultTag, meta, flattenBlock(result))
	}
	blocks := []*enkf.Block{result}
	for rk := 1; rk < cp.NumCompute(); rk++ {
		m, err := c.Recv(mpi.AnySource, resultTag)
		if err != nil {
			return nil, err
		}
		box := grid.Box{X0: m.Meta[0], X1: m.Meta[1], Y0: m.Meta[2], Y1: m.Meta[3]}
		blk, err := unflattenBlock(box, effN, m.Data)
		if err != nil {
			return nil, err
		}
		blocks = append(blocks, blk)
	}
	fields, err := enkf.Assemble(p.Cfg.Mesh, effN, blocks)
	if err != nil {
		return nil, err
	}
	failovers := planFailovers(r.Faults, cp.Spec.Dec.NSdy)
	return &DegradedResult{
		Fields:          fields,
		Survivors:       survivors,
		Dropped:         dropped,
		Failovers:       failovers,
		EffectiveConfig: effCfg,
		Degraded:        len(dropped) > 0 || len(failovers) > 0,
	}, nil
}
