package core

import (
	"testing"

	"senkf/internal/enkf"
	"senkf/internal/ensio"
	"senkf/internal/grid"
	"senkf/internal/metrics"
	"senkf/internal/obs"
	"senkf/internal/plan"
	"senkf/internal/workload"
)

// runBaseline compiles a baseline spec and executes it on the engine — the
// same path internal/baseline's RunPEnKF/RunLEnKF wrap.
func runBaseline(t *testing.T, p Problem, s plan.Spec) [][]float64 {
	t.Helper()
	c, err := plan.Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ExecutePlan(p, c)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

// setup generates a test problem with member files on disk and returns the
// pieces plus the serial reference analysis.
func setup(t *testing.T, solver enkf.Solver) (Problem, grid.Decomposition, [][]float64) {
	t.Helper()
	ps := workload.TestScale
	m, err := ps.Mesh()
	if err != nil {
		t.Fatal(err)
	}
	truth := workload.Truth(m, workload.DefaultFieldSpec, ps.Seed)
	bg, err := workload.Ensemble(m, truth, ps.Members, ps.Spread, ps.Seed)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, err := ensio.WriteEnsemble(dir, m, bg); err != nil {
		t.Fatal(err)
	}
	net, err := obs.StridedNetwork(m, truth, ps.ObsStride, ps.ObsStride, ps.ObsVar, ps.Seed)
	if err != nil {
		t.Fatal(err)
	}
	cfg := enkf.Config{
		Mesh: m, Radius: ps.Radius(), N: ps.Members, Seed: ps.Seed, Solver: solver,
	}
	dec, err := grid.NewDecomposition(m, 4, 2, cfg.Radius)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := enkf.SerialReference(cfg, bg, net)
	if err != nil {
		t.Fatal(err)
	}
	return Problem{Cfg: cfg, Dir: dir, Net: net}, dec, ref
}

func TestPlanGeometry(t *testing.T) {
	m, _ := grid.NewMesh(24, 12)
	dec, _ := grid.NewDecomposition(m, 4, 2, grid.Radius{Xi: 2, Eta: 2})
	pl := Plan{Dec: dec, L: 3, NCg: 2}
	if pl.ComputeRanks() != 8 || pl.IORanks() != 4 || pl.WorldSize() != 12 {
		t.Errorf("plan geometry: C2=%d C1=%d world=%d", pl.ComputeRanks(), pl.IORanks(), pl.WorldSize())
	}
	if err := pl.Validate(20); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
	if err := (Plan{Dec: dec, L: 0, NCg: 1}).Validate(20); err == nil {
		t.Error("L=0 accepted")
	}
	if err := (Plan{Dec: dec, L: 4, NCg: 1}).Validate(20); err == nil {
		t.Error("indivisible L accepted")
	}
	if err := (Plan{Dec: dec, L: 3, NCg: 0}).Validate(20); err == nil {
		t.Error("NCg=0 accepted")
	}
	if err := (Plan{Dec: dec, L: 3, NCg: 3}).Validate(20); err == nil {
		t.Error("NCg not dividing N accepted")
	}
}

func TestSEnKFMatchesSerialReference(t *testing.T) {
	for _, solver := range []enkf.Solver{enkf.SolverEnsembleSpace, enkf.SolverModifiedCholesky, enkf.SolverETKF} {
		p, dec, ref := setup(t, solver)
		pl := Plan{Dec: dec, L: 3, NCg: 2}
		got, err := RunSEnKF(p, pl)
		if err != nil {
			t.Fatalf("%v: %v", solver, err)
		}
		if d := enkf.MaxAbsDiffFields(got, ref); d != 0 {
			t.Errorf("%v: S-EnKF differs from serial reference by %g", solver, d)
		}
	}
}

func TestCorrectnessTriangle(t *testing.T) {
	// Serial reference == L-EnKF == P-EnKF == S-EnKF, bit for bit.
	p, dec, ref := setup(t, enkf.SolverEnsembleSpace)

	penkf := runBaseline(t, p, plan.PEnKF(dec, p.Cfg.N))
	if d := enkf.MaxAbsDiffFields(penkf, ref); d != 0 {
		t.Errorf("P-EnKF differs from serial reference by %g", d)
	}

	lenkf := runBaseline(t, p, plan.LEnKF(dec, p.Cfg.N))
	if d := enkf.MaxAbsDiffFields(lenkf, ref); d != 0 {
		t.Errorf("L-EnKF differs from serial reference by %g", d)
	}

	senkf, err := RunSEnKF(p, Plan{Dec: dec, L: 2, NCg: 4})
	if err != nil {
		t.Fatal(err)
	}
	if d := enkf.MaxAbsDiffFields(senkf, ref); d != 0 {
		t.Errorf("S-EnKF differs from serial reference by %g", d)
	}
}

func TestSEnKFAcrossPlanShapes(t *testing.T) {
	// The analysis must be independent of L, n_cg and the decomposition.
	p, _, ref := setup(t, enkf.SolverEnsembleSpace)
	shapes := []struct {
		nsdx, nsdy, l, ncg int
	}{
		{4, 2, 1, 1},
		{4, 2, 6, 1},
		{2, 2, 2, 5},
		{1, 1, 4, 10},
		{6, 3, 2, 2},
		{2, 4, 3, 4},
	}
	for _, s := range shapes {
		dec, err := grid.NewDecomposition(p.Cfg.Mesh, s.nsdx, s.nsdy, p.Cfg.Radius)
		if err != nil {
			t.Fatalf("decomposition %+v: %v", s, err)
		}
		pl := Plan{Dec: dec, L: s.l, NCg: s.ncg}
		got, err := RunSEnKF(p, pl)
		if err != nil {
			t.Fatalf("plan %+v: %v", s, err)
		}
		if d := enkf.MaxAbsDiffFields(got, ref); d != 0 {
			t.Errorf("plan %+v: differs from reference by %g", s, d)
		}
	}
}

func TestSEnKFRecordsPhases(t *testing.T) {
	p, dec, _ := setup(t, enkf.SolverEnsembleSpace)
	rec := metrics.NewRecorder()
	p.Rec = rec
	if _, err := RunSEnKF(p, Plan{Dec: dec, L: 3, NCg: 2}); err != nil {
		t.Fatal(err)
	}
	io := rec.Breakdown(metrics.IOPrefix)
	if io.Read <= 0 || io.Comm <= 0 {
		t.Errorf("io breakdown %+v", io)
	}
	cp := rec.Breakdown(metrics.ComputePrefix)
	if cp.Compute <= 0 {
		t.Errorf("compute breakdown %+v", cp)
	}
	if got := len(rec.Procs(metrics.IOPrefix)); got != 4 {
		t.Errorf("io procs = %d, want 4", got)
	}
	if got := len(rec.Procs(metrics.ComputePrefix)); got != 8 {
		t.Errorf("compute procs = %d, want 8", got)
	}
}

func TestRunSEnKFValidation(t *testing.T) {
	p, dec, _ := setup(t, enkf.SolverEnsembleSpace)

	bad := p
	bad.Net = nil
	if _, err := RunSEnKF(bad, Plan{Dec: dec, L: 1, NCg: 1}); err == nil {
		t.Error("nil network accepted")
	}
	bad = p
	bad.Dir = ""
	if _, err := RunSEnKF(bad, Plan{Dec: dec, L: 1, NCg: 1}); err == nil {
		t.Error("empty dir accepted")
	}
	otherMesh, _ := grid.NewMesh(12, 12)
	otherDec, _ := grid.NewDecomposition(otherMesh, 2, 2, p.Cfg.Radius)
	if _, err := RunSEnKF(p, Plan{Dec: otherDec, L: 1, NCg: 1}); err == nil {
		t.Error("mesh mismatch accepted")
	}
	if _, err := RunSEnKF(p, Plan{Dec: dec, L: 5, NCg: 1}); err == nil {
		t.Error("bad layer count accepted")
	}
}

func TestSEnKFMissingFiles(t *testing.T) {
	p, dec, _ := setup(t, enkf.SolverEnsembleSpace)
	p.Dir = t.TempDir() // empty: no member files
	if _, err := RunSEnKF(p, Plan{Dec: dec, L: 1, NCg: 1}); err == nil {
		t.Error("missing member files should fail")
	}
}

func TestCorrectnessTriangleWithOffGridObservations(t *testing.T) {
	// The bilinear observation operator must preserve the triangle: an
	// off-grid observation enters a point's analysis iff its full support
	// is in the local box, which every layout restricts identically.
	ps := workload.TestScale
	m, err := ps.Mesh()
	if err != nil {
		t.Fatal(err)
	}
	truth := workload.Truth(m, workload.DefaultFieldSpec, ps.Seed)
	bg, err := workload.Ensemble(m, truth, ps.Members, ps.Spread, ps.Seed)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, err := ensio.WriteEnsemble(dir, m, bg); err != nil {
		t.Fatal(err)
	}
	net, err := obs.RandomOffGridNetwork(m, truth, 60, 0.01, ps.Seed)
	if err != nil {
		t.Fatal(err)
	}
	cfg := enkf.Config{Mesh: m, Radius: ps.Radius(), N: ps.Members, Seed: ps.Seed}
	ref, err := enkf.SerialReference(cfg, bg, net)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := grid.NewDecomposition(m, 4, 2, cfg.Radius)
	if err != nil {
		t.Fatal(err)
	}
	p := Problem{Cfg: cfg, Dir: dir, Net: net}
	sen, err := RunSEnKF(p, Plan{Dec: dec, L: 3, NCg: 2})
	if err != nil {
		t.Fatal(err)
	}
	if d := enkf.MaxAbsDiffFields(sen, ref); d != 0 {
		t.Errorf("S-EnKF with off-grid obs differs from reference by %g", d)
	}
	pen := runBaseline(t, p, plan.PEnKF(dec, cfg.N))
	if d := enkf.MaxAbsDiffFields(pen, ref); d != 0 {
		t.Errorf("P-EnKF with off-grid obs differs from reference by %g", d)
	}
}
