// Package core implements S-EnKF itself — the paper's contribution — as a
// real parallel execution on the goroutine message-passing runtime:
//
//   - Concurrent-group bar reading (§4.1): C1 = n_cg·n_sdy dedicated I/O
//     ranks organised into n_cg groups; the n_sdy ranks of a group read the
//     contiguous latitude bars of the group's N/n_cg member files (one
//     addressing operation per bar), while different groups read different
//     files simultaneously.
//   - Multi-stage computation (§4.2, Figures 7–8): every sub-domain is cut
//     into L latitude layers. At stage l the I/O ranks read the small bar
//     needed for layer l and send column blocks to the compute ranks; each
//     compute rank runs a helper thread (a real goroutine) that receives
//     and assembles stage data while the main thread analyses the previous
//     layer — file reading and communication genuinely overlap local
//     analysis.
//
// The result must equal the serial reference (and both baselines) exactly;
// integration tests assert the correctness triangle.
package core

import (
	"fmt"
	"time"

	"senkf/internal/enkf"
	"senkf/internal/ensio"
	"senkf/internal/grid"
	"senkf/internal/metrics"
	"senkf/internal/mpi"
	"senkf/internal/obs"
	"senkf/internal/trace"
)

// Plan is the S-EnKF processor layout: the compute decomposition plus the
// multi-stage and concurrent-group parameters (the tuple Algorithm 2 tunes).
type Plan struct {
	Dec grid.Decomposition
	L   int // layers per sub-domain
	NCg int // concurrent I/O groups
}

// ComputeRanks returns C2 = n_sdx·n_sdy.
func (pl Plan) ComputeRanks() int { return pl.Dec.SubDomains() }

// IORanks returns C1 = n_cg·n_sdy.
func (pl Plan) IORanks() int { return pl.NCg * pl.Dec.NSdy }

// WorldSize returns the total rank count C1 + C2.
func (pl Plan) WorldSize() int { return pl.ComputeRanks() + pl.IORanks() }

// Validate checks the plan against the problem geometry.
func (pl Plan) Validate(n int) error {
	if pl.L <= 0 {
		return fmt.Errorf("core: layer count must be positive, got %d", pl.L)
	}
	if pl.Dec.SubHeight()%pl.L != 0 {
		return fmt.Errorf("core: sub-domain height %d not divisible by L=%d", pl.Dec.SubHeight(), pl.L)
	}
	if pl.NCg <= 0 {
		return fmt.Errorf("core: concurrent group count must be positive, got %d", pl.NCg)
	}
	if n%pl.NCg != 0 {
		return fmt.Errorf("core: %d members not divisible by n_cg=%d", n, pl.NCg)
	}
	return nil
}

// Problem mirrors baseline.Problem; core keeps its own copy to avoid a
// dependency between the contribution and the baselines.
type Problem struct {
	Cfg enkf.Config
	Dir string
	Net *obs.Network
	Rec *metrics.Recorder
	Tr  *trace.Tracer // optional observability; nil disables tracing
}

// Validate checks the problem.
func (p Problem) Validate() error {
	if err := p.Cfg.Validate(); err != nil {
		return err
	}
	if p.Net == nil {
		return fmt.Errorf("core: nil observation network")
	}
	if p.Dir == "" {
		return fmt.Errorf("core: empty member directory")
	}
	return nil
}

const resultTag = 1 << 20

// stageTag gives every (stage, member) pair a distinct message tag.
func stageTag(l, nMembers, k int) int { return l*nMembers + k }

// obs records one phase interval in the recorder and, when tracing, as a
// span on the rank's track. Both use seconds since t0 (the run start), so
// trace-derived breakdowns match the recorder exactly.
func (p Problem) obs(proc string, ph metrics.Phase, t0 time.Time, from, to time.Time) {
	f, t := from.Sub(t0).Seconds(), to.Sub(t0).Seconds()
	if p.Rec != nil {
		p.Rec.Record(proc, ph, f, t)
	}
	if p.Tr.Enabled() {
		p.Tr.Span(proc, trace.CatPhase, ph.String(), f, t)
	}
}

// RunSEnKF executes the full S-EnKF schedule and returns the analysis
// ensemble (assembled at world rank 0).
func RunSEnKF(p Problem, pl Plan) ([][]float64, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if pl.Dec.Mesh != p.Cfg.Mesh {
		return nil, fmt.Errorf("core: decomposition mesh %v differs from config mesh %v", pl.Dec.Mesh, p.Cfg.Mesh)
	}
	if err := pl.Validate(p.Cfg.N); err != nil {
		return nil, err
	}
	w, err := mpi.NewWorld(pl.WorldSize())
	if err != nil {
		return nil, err
	}
	w.SetTracer(p.Tr)
	var fields [][]float64
	t0 := time.Now()
	err = w.Run(func(c *mpi.Comm) error {
		if c.Rank() < pl.ComputeRanks() {
			f, err := runCompute(c, p, pl, t0)
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				fields = f
			}
			return nil
		}
		return runIO(c, p, pl, t0)
	})
	if err != nil {
		return nil, err
	}
	return fields, nil
}

// runIO is the body of one I/O rank: group g, bar row j.
func runIO(c *mpi.Comm, p Problem, pl Plan, t0 time.Time) error {
	q := c.Rank() - pl.ComputeRanks()
	g := q / pl.Dec.NSdy
	j := q % pl.Dec.NSdy
	name := metrics.IOName(g, j)

	// The group's files: k ≡ g (mod n_cg). Keep them open across stages —
	// each stage reads a different small bar of the same files.
	var files []*ensio.MemberFile
	defer func() {
		reg := p.Tr.Counters()
		for _, f := range files {
			if reg != nil {
				st := f.Stats()
				reg.Add("ensio.seeks", float64(st.Seeks))
				reg.Add("ensio.bytes", float64(st.BytesRead))
				reg.Add("ensio.reads", float64(st.Reads))
			}
			f.Close()
		}
	}()
	var members []int
	for k := g; k < p.Cfg.N; k += pl.NCg {
		mf, err := ensio.OpenMember(ensio.MemberPath(p.Dir, k))
		if err != nil {
			return err
		}
		if err := mf.CheckGeometry(p.Cfg.Mesh.NX, p.Cfg.Mesh.NY, 1, k); err != nil {
			mf.Close()
			return err
		}
		files = append(files, mf)
		members = append(members, k)
	}

	for l := 0; l < pl.L; l++ {
		lb, err := pl.Dec.LayerBar(j, l, pl.L)
		if err != nil {
			return err
		}
		for fi, mf := range files {
			k := members[fi]
			// Bar reading: the stage-l small bar is contiguous on disk —
			// a single addressing operation (§4.1.2).
			readStart := time.Now()
			bar, err := mf.ReadBar(lb.Y0, lb.Y1)
			if err != nil {
				return err
			}
			p.obs(name, metrics.PhaseRead, t0, readStart, time.Now())

			// Cut the bar into the per-column-block pieces and send each
			// compute rank of row j its stage block.
			commStart := time.Now()
			for i := 0; i < pl.Dec.NSdx; i++ {
				exp, err := pl.Dec.LayerExpansion(i, j, l, pl.L)
				if err != nil {
					return err
				}
				payload := make([]float64, exp.Points())
				for y := exp.Y0; y < exp.Y1; y++ {
					srcOff := (y-lb.Y0)*p.Cfg.Mesh.NX + exp.X0
					dstOff := (y - exp.Y0) * exp.Width()
					copy(payload[dstOff:dstOff+exp.Width()], bar[srcOff:srcOff+exp.Width()])
				}
				meta := []int{k, exp.X0, exp.X1, exp.Y0, exp.Y1}
				dst := pl.Dec.RankOf(i, j)
				if err := c.Send(dst, stageTag(l, p.Cfg.N, k), meta, payload); err != nil {
					return err
				}
			}
			p.obs(name, metrics.PhaseComm, t0, commStart, time.Now())
		}
	}
	return nil
}

// runCompute is the body of one compute rank (i, j): a helper goroutine
// receives and assembles stage blocks while the main flow analyses the
// previous layer.
func runCompute(c *mpi.Comm, p Problem, pl Plan, t0 time.Time) ([][]float64, error) {
	i, j := pl.Dec.CoordsOf(c.Rank())
	name := metrics.ComputeName(i, j)

	type stageData struct {
		blk *enkf.Block
		err error
	}
	stages := make(chan stageData, pl.L)

	// Helper thread (§4.2): receive the N per-member blocks of each stage,
	// assemble them, and signal the main thread stage by stage.
	go func() {
		for l := 0; l < pl.L; l++ {
			exp, err := pl.Dec.LayerExpansion(i, j, l, pl.L)
			if err != nil {
				stages <- stageData{err: err}
				return
			}
			blk := enkf.NewBlock(exp, p.Cfg.N)
			for k := 0; k < p.Cfg.N; k++ {
				m, err := c.Recv(mpi.AnySource, stageTag(l, p.Cfg.N, k))
				if err != nil {
					stages <- stageData{err: err}
					return
				}
				box := grid.Box{X0: m.Meta[1], X1: m.Meta[2], Y0: m.Meta[3], Y1: m.Meta[4]}
				if box != exp {
					stages <- stageData{err: fmt.Errorf("core: stage %d member %d box %v, want %v", l, k, box, exp)}
					return
				}
				if len(m.Data) != exp.Points() {
					stages <- stageData{err: fmt.Errorf("core: stage %d member %d payload %d, want %d", l, k, len(m.Data), exp.Points())}
					return
				}
				blk.Data[m.Meta[0]] = m.Data
			}
			if p.Tr.Enabled() {
				// Helper-thread handoff: stage l is fully assembled and
				// ready for the main thread from this instant on.
				p.Tr.Instant(name, trace.CatStage, "ready", time.Since(t0).Seconds(),
					trace.Arg{Key: trace.ArgStage, Val: float64(l)})
			}
			stages <- stageData{blk: blk}
		}
	}()

	// Main thread: multi-stage local analysis.
	layers, err := pl.Dec.Layers(i, j, pl.L)
	if err != nil {
		return nil, err
	}
	result := enkf.NewBlock(pl.Dec.SubDomain(i, j), p.Cfg.N)
	for l := 0; l < pl.L; l++ {
		waitStart := time.Now()
		sd := <-stages
		if sd.err != nil {
			return nil, sd.err
		}
		p.obs(name, metrics.PhaseWait, t0, waitStart, time.Now())

		compStart := time.Now()
		out, err := p.Cfg.AnalyzeBox(sd.blk, p.Net.InBox(sd.blk.Box), layers[l])
		if err != nil {
			return nil, err
		}
		for k := 0; k < p.Cfg.N; k++ {
			for y := layers[l].Y0; y < layers[l].Y1; y++ {
				for x := layers[l].X0; x < layers[l].X1; x++ {
					result.Set(k, x, y, out.At(k, x, y))
				}
			}
		}
		p.obs(name, metrics.PhaseCompute, t0, compStart, time.Now())
		if p.Tr.Enabled() {
			p.Tr.Instant(name, trace.CatStage, "computed", time.Since(t0).Seconds(),
				trace.Arg{Key: trace.ArgStage, Val: float64(l)})
		}
	}

	// Gather the sub-domain results at world rank 0 (a compute rank).
	if c.Rank() != 0 {
		meta := []int{result.Box.X0, result.Box.X1, result.Box.Y0, result.Box.Y1}
		return nil, c.Send(0, resultTag, meta, flattenBlock(result))
	}
	blocks := []*enkf.Block{result}
	for r := 1; r < pl.ComputeRanks(); r++ {
		m, err := c.Recv(mpi.AnySource, resultTag)
		if err != nil {
			return nil, err
		}
		box := grid.Box{X0: m.Meta[0], X1: m.Meta[1], Y0: m.Meta[2], Y1: m.Meta[3]}
		blk, err := unflattenBlock(box, p.Cfg.N, m.Data)
		if err != nil {
			return nil, err
		}
		blocks = append(blocks, blk)
	}
	return enkf.Assemble(p.Cfg.Mesh, p.Cfg.N, blocks)
}

func flattenBlock(b *enkf.Block) []float64 {
	pts := b.Box.Points()
	out := make([]float64, len(b.Data)*pts)
	for k, d := range b.Data {
		copy(out[k*pts:(k+1)*pts], d)
	}
	return out
}

func unflattenBlock(box grid.Box, n int, data []float64) (*enkf.Block, error) {
	pts := box.Points()
	if len(data) != n*pts {
		return nil, fmt.Errorf("core: block payload has %d values, want %d", len(data), n*pts)
	}
	b := enkf.NewBlock(box, n)
	for k := 0; k < n; k++ {
		copy(b.Data[k], data[k*pts:(k+1)*pts])
	}
	return b, nil
}
