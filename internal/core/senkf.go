// Package core is the real-substrate engine: it interprets compiled plans
// (internal/plan) on the goroutine message-passing runtime (internal/mpi)
// against real member files (internal/ensio), numerically exact. The S-EnKF
// schedule it executes is the paper's contribution:
//
//   - Concurrent-group bar reading (§4.1): C1 = n_cg·n_sdy dedicated I/O
//     ranks organised into n_cg groups; the n_sdy ranks of a group read the
//     contiguous latitude bars of the group's N/n_cg member files (one
//     addressing operation per bar), while different groups read different
//     files simultaneously.
//   - Multi-stage computation (§4.2, Figures 7–8): every sub-domain is cut
//     into L latitude layers. At stage l the I/O ranks read the small bar
//     needed for layer l and send column blocks to the compute ranks; each
//     compute rank runs a helper thread (a real goroutine) that receives
//     and assembles stage data while the main thread analyses the previous
//     layer — file reading and communication genuinely overlap local
//     analysis.
//
// The same engine executes the baseline plans (see internal/baseline for
// the P-EnKF/L-EnKF entry points); RunSEnKF, RunSEnKFResilient and
// RunSEnKFMultiLevel are strategy+policy wrappers over it. The result must
// equal the serial reference (and both baselines) exactly; integration
// tests assert the correctness triangle.
package core

import (
	"fmt"

	"senkf/internal/enkf"
	"senkf/internal/grid"
	"senkf/internal/plan"
)

// Plan is the S-EnKF processor layout: the compute decomposition plus the
// multi-stage and concurrent-group parameters (the tuple Algorithm 2 tunes).
type Plan struct {
	Dec grid.Decomposition
	L   int // layers per sub-domain
	NCg int // concurrent I/O groups
}

// ComputeRanks returns C2 = n_sdx·n_sdy.
func (pl Plan) ComputeRanks() int { return pl.Dec.SubDomains() }

// IORanks returns C1 = n_cg·n_sdy.
func (pl Plan) IORanks() int { return pl.NCg * pl.Dec.NSdy }

// WorldSize returns the total rank count C1 + C2.
func (pl Plan) WorldSize() int { return pl.ComputeRanks() + pl.IORanks() }

// Validate checks the plan against the problem geometry.
func (pl Plan) Validate(n int) error {
	if pl.L <= 0 {
		return fmt.Errorf("core: layer count must be positive, got %d", pl.L)
	}
	if pl.Dec.SubHeight()%pl.L != 0 {
		return fmt.Errorf("core: sub-domain height %d not divisible by L=%d", pl.Dec.SubHeight(), pl.L)
	}
	if pl.NCg <= 0 {
		return fmt.Errorf("core: concurrent group count must be positive, got %d", pl.NCg)
	}
	if n%pl.NCg != 0 {
		return fmt.Errorf("core: %d members not divisible by n_cg=%d", n, pl.NCg)
	}
	return nil
}

// Spec returns the declarative algorithm spec this layout describes.
func (pl Plan) Spec(n int) plan.Spec { return plan.SEnKF(pl.Dec, n, pl.L, pl.NCg) }

// Problem is the shared real-run problem type, declared in internal/plan.
type Problem = plan.Problem

// resultTag is the base tag of the final gather: level l's result blocks
// travel under resultTag+l, far above the plan.Tag stage-tag space.
const resultTag = 1 << 20

// RunSEnKF executes the full S-EnKF schedule and returns the analysis
// ensemble (assembled at world rank 0).
func RunSEnKF(p Problem, pl Plan) ([][]float64, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if pl.Dec.Mesh != p.Cfg.Mesh {
		return nil, fmt.Errorf("core: decomposition mesh %v differs from config mesh %v", pl.Dec.Mesh, p.Cfg.Mesh)
	}
	if err := pl.Validate(p.Cfg.N); err != nil {
		return nil, err
	}
	c, err := plan.Compile(pl.Spec(p.Cfg.N))
	if err != nil {
		return nil, err
	}
	return ExecutePlan(p, c)
}

func flattenBlock(b *enkf.Block) []float64 {
	pts := b.Box.Points()
	out := make([]float64, len(b.Data)*pts)
	for k, d := range b.Data {
		copy(out[k*pts:(k+1)*pts], d)
	}
	return out
}

func unflattenBlock(box grid.Box, n int, data []float64) (*enkf.Block, error) {
	pts := box.Points()
	if len(data) != n*pts {
		return nil, fmt.Errorf("core: block payload has %d values, want %d", len(data), n*pts)
	}
	b := enkf.NewBlock(box, n)
	for k := 0; k < n; k++ {
		copy(b.Data[k], data[k*pts:(k+1)*pts])
	}
	return b, nil
}
