package core

import (
	"fmt"
	"time"

	"senkf/internal/enkf"
	"senkf/internal/ensio"
	"senkf/internal/grid"
	"senkf/internal/metrics"
	"senkf/internal/mpi"
	"senkf/internal/obs"
	"senkf/internal/trace"
)

// MultiLevelProblem is the 3-D variant of Problem: member files carry
// `Levels` vertical levels interleaved per grid point (realising the
// paper's h = levels × 8 bytes per-point volume), and each level has its
// own observation network. The levels are assimilated with 2-D
// localization, level by level — standard practice for layered ocean
// states — but the I/O is shared: one bar read per stage fetches *all*
// levels of the stage rows with a single addressing operation.
type MultiLevelProblem struct {
	Cfg  enkf.Config // per-level analysis parameters (shared)
	Dir  string
	Nets []*obs.Network // one network per vertical level
	Rec  *metrics.Recorder
	Tr   *trace.Tracer // optional observability; nil disables tracing
}

// obs mirrors Problem.obs for the multi-level variant.
func (p MultiLevelProblem) obs(proc string, ph metrics.Phase, t0 time.Time, from, to time.Time) {
	f, t := from.Sub(t0).Seconds(), to.Sub(t0).Seconds()
	if p.Rec != nil {
		p.Rec.Record(proc, ph, f, t)
	}
	if p.Tr.Enabled() {
		p.Tr.Span(proc, trace.CatPhase, ph.String(), f, t)
	}
}

// Validate checks the problem.
func (p MultiLevelProblem) Validate() error {
	if err := p.Cfg.Validate(); err != nil {
		return err
	}
	if len(p.Nets) == 0 {
		return fmt.Errorf("core: no observation networks (need one per level)")
	}
	for l, n := range p.Nets {
		if n == nil {
			return fmt.Errorf("core: nil network at level %d", l)
		}
	}
	if p.Dir == "" {
		return fmt.Errorf("core: empty member directory")
	}
	return nil
}

// Levels returns the number of vertical levels.
func (p MultiLevelProblem) Levels() int { return len(p.Nets) }

// mlTag gives every (stage, member, level) triple a distinct message tag.
func mlTag(stage, nMembers, member, levels, level int) int {
	return (stage*nMembers+member)*levels + level
}

// RunSEnKFMultiLevel executes the S-EnKF schedule over a multi-level
// ensemble and returns the analysis as [level][member][]field, assembled at
// world rank 0.
func RunSEnKFMultiLevel(p MultiLevelProblem, pl Plan) ([][][]float64, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if pl.Dec.Mesh != p.Cfg.Mesh {
		return nil, fmt.Errorf("core: decomposition mesh %v differs from config mesh %v", pl.Dec.Mesh, p.Cfg.Mesh)
	}
	if err := pl.Validate(p.Cfg.N); err != nil {
		return nil, err
	}
	w, err := mpi.NewWorld(pl.WorldSize())
	if err != nil {
		return nil, err
	}
	w.SetTracer(p.Tr)
	var fields [][][]float64
	t0 := time.Now()
	err = w.Run(func(c *mpi.Comm) error {
		if c.Rank() < pl.ComputeRanks() {
			f, err := runComputeML(c, p, pl, t0)
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				fields = f
			}
			return nil
		}
		return runIOML(c, p, pl, t0)
	})
	if err != nil {
		return nil, err
	}
	return fields, nil
}

// runIOML is the multi-level I/O rank: one bar read per (stage, file)
// fetches every level at once; the per-level column blocks are then cut out
// and streamed to the compute ranks.
func runIOML(c *mpi.Comm, p MultiLevelProblem, pl Plan, t0 time.Time) error {
	q := c.Rank() - pl.ComputeRanks()
	g := q / pl.Dec.NSdy
	j := q % pl.Dec.NSdy
	name := metrics.IOName(g, j)
	levels := p.Levels()

	var files []*ensio.MemberFile
	defer func() {
		reg := p.Tr.Counters()
		for _, f := range files {
			if reg != nil {
				st := f.Stats()
				reg.Add("ensio.seeks", float64(st.Seeks))
				reg.Add("ensio.bytes", float64(st.BytesRead))
				reg.Add("ensio.reads", float64(st.Reads))
			}
			f.Close()
		}
	}()
	var members []int
	for k := g; k < p.Cfg.N; k += pl.NCg {
		mf, err := ensio.OpenMember(ensio.MemberPath(p.Dir, k))
		if err != nil {
			return err
		}
		if err := mf.CheckGeometry(p.Cfg.Mesh.NX, p.Cfg.Mesh.NY, levels, k); err != nil {
			mf.Close()
			return err
		}
		files = append(files, mf)
		members = append(members, k)
	}

	for l := 0; l < pl.L; l++ {
		lb, err := pl.Dec.LayerBar(j, l, pl.L)
		if err != nil {
			return err
		}
		for fi, mf := range files {
			k := members[fi]
			readStart := time.Now()
			bars, err := mf.ReadBarLevels(lb.Y0, lb.Y1) // all levels, one seek
			if err != nil {
				return err
			}
			p.obs(name, metrics.PhaseRead, t0, readStart, time.Now())

			commStart := time.Now()
			for i := 0; i < pl.Dec.NSdx; i++ {
				exp, err := pl.Dec.LayerExpansion(i, j, l, pl.L)
				if err != nil {
					return err
				}
				dst := pl.Dec.RankOf(i, j)
				meta := []int{k, exp.X0, exp.X1, exp.Y0, exp.Y1}
				for lvl := 0; lvl < levels; lvl++ {
					payload := make([]float64, exp.Points())
					bar := bars[lvl]
					for y := exp.Y0; y < exp.Y1; y++ {
						srcOff := (y-lb.Y0)*p.Cfg.Mesh.NX + exp.X0
						dstOff := (y - exp.Y0) * exp.Width()
						copy(payload[dstOff:dstOff+exp.Width()], bar[srcOff:srcOff+exp.Width()])
					}
					if err := c.Send(dst, mlTag(l, p.Cfg.N, k, levels, lvl), meta, payload); err != nil {
						return err
					}
				}
			}
			p.obs(name, metrics.PhaseComm, t0, commStart, time.Now())
		}
	}
	return nil
}

// runComputeML is the multi-level compute rank: the helper goroutine
// assembles one block per level per stage while the main flow analyses the
// previous stage, level by level.
func runComputeML(c *mpi.Comm, p MultiLevelProblem, pl Plan, t0 time.Time) ([][][]float64, error) {
	i, j := pl.Dec.CoordsOf(c.Rank())
	name := metrics.ComputeName(i, j)
	levels := p.Levels()

	type stageData struct {
		blks []*enkf.Block // one per level
		err  error
	}
	stages := make(chan stageData, pl.L)

	go func() {
		for l := 0; l < pl.L; l++ {
			exp, err := pl.Dec.LayerExpansion(i, j, l, pl.L)
			if err != nil {
				stages <- stageData{err: err}
				return
			}
			blks := make([]*enkf.Block, levels)
			for lvl := range blks {
				blks[lvl] = enkf.NewBlock(exp, p.Cfg.N)
			}
			for k := 0; k < p.Cfg.N; k++ {
				for lvl := 0; lvl < levels; lvl++ {
					m, err := c.Recv(mpi.AnySource, mlTag(l, p.Cfg.N, k, levels, lvl))
					if err != nil {
						stages <- stageData{err: err}
						return
					}
					box := grid.Box{X0: m.Meta[1], X1: m.Meta[2], Y0: m.Meta[3], Y1: m.Meta[4]}
					if box != exp || len(m.Data) != exp.Points() {
						stages <- stageData{err: fmt.Errorf("core: stage %d member %d level %d: bad block %v/%d", l, k, lvl, box, len(m.Data))}
						return
					}
					blks[lvl].Data[m.Meta[0]] = m.Data
				}
			}
			if p.Tr.Enabled() {
				p.Tr.Instant(name, trace.CatStage, "ready", time.Since(t0).Seconds(),
					trace.Arg{Key: trace.ArgStage, Val: float64(l)})
			}
			stages <- stageData{blks: blks}
		}
	}()

	layers, err := pl.Dec.Layers(i, j, pl.L)
	if err != nil {
		return nil, err
	}
	results := make([]*enkf.Block, levels)
	for lvl := range results {
		results[lvl] = enkf.NewBlock(pl.Dec.SubDomain(i, j), p.Cfg.N)
	}
	for l := 0; l < pl.L; l++ {
		waitStart := time.Now()
		sd := <-stages
		if sd.err != nil {
			return nil, sd.err
		}
		p.obs(name, metrics.PhaseWait, t0, waitStart, time.Now())

		compStart := time.Now()
		for lvl := 0; lvl < levels; lvl++ {
			out, err := p.Cfg.AnalyzeBox(sd.blks[lvl], p.Nets[lvl].InBox(sd.blks[lvl].Box), layers[l])
			if err != nil {
				return nil, err
			}
			for k := 0; k < p.Cfg.N; k++ {
				for y := layers[l].Y0; y < layers[l].Y1; y++ {
					for x := layers[l].X0; x < layers[l].X1; x++ {
						results[lvl].Set(k, x, y, out.At(k, x, y))
					}
				}
			}
		}
		p.obs(name, metrics.PhaseCompute, t0, compStart, time.Now())
	}

	// Gather per-level sub-domain results at rank 0.
	if c.Rank() != 0 {
		for lvl, res := range results {
			meta := []int{lvl, res.Box.X0, res.Box.X1, res.Box.Y0, res.Box.Y1}
			if err := c.Send(0, resultTag+lvl, meta, flattenBlock(res)); err != nil {
				return nil, err
			}
		}
		return nil, nil
	}
	out := make([][][]float64, levels)
	for lvl := 0; lvl < levels; lvl++ {
		blocks := []*enkf.Block{results[lvl]}
		for r := 1; r < pl.ComputeRanks(); r++ {
			m, err := c.Recv(mpi.AnySource, resultTag+lvl)
			if err != nil {
				return nil, err
			}
			box := grid.Box{X0: m.Meta[1], X1: m.Meta[2], Y0: m.Meta[3], Y1: m.Meta[4]}
			blk, err := unflattenBlock(box, p.Cfg.N, m.Data)
			if err != nil {
				return nil, err
			}
			blocks = append(blocks, blk)
		}
		fields, err := enkf.Assemble(p.Cfg.Mesh, p.Cfg.N, blocks)
		if err != nil {
			return nil, err
		}
		out[lvl] = fields
	}
	return out, nil
}
