package core

import (
	"fmt"

	"senkf/internal/plan"
)

// MultiLevelProblem is the shared multi-level problem type, declared in
// internal/plan: member files carry `Levels` vertical levels interleaved
// per grid point (realising the paper's h = levels × 8 bytes per-point
// volume), each level with its own observation network. The levels are
// assimilated with 2-D localization, level by level — standard practice
// for layered ocean states — but the I/O is shared: one bar read per stage
// fetches *all* levels of the stage rows with a single addressing
// operation.
type MultiLevelProblem = plan.MultiLevelProblem

// RunSEnKFMultiLevel executes the S-EnKF schedule over a multi-level
// ensemble and returns the analysis as [level][member][]field, assembled at
// world rank 0. It is a thin spec wrapper: the same plan RunSEnKF compiles,
// with the level dimension set, handed to the one shared engine — the level
// loop lives inside ExecutePlanLevels, not here.
func RunSEnKFMultiLevel(p MultiLevelProblem, pl Plan) ([][][]float64, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if pl.Dec.Mesh != p.Cfg.Mesh {
		return nil, fmt.Errorf("core: decomposition mesh %v differs from config mesh %v", pl.Dec.Mesh, p.Cfg.Mesh)
	}
	if err := pl.Validate(p.Cfg.N); err != nil {
		return nil, err
	}
	c, err := plan.Compile(pl.Spec(p.Cfg.N).WithLevels(p.Levels()))
	if err != nil {
		return nil, err
	}
	return ExecutePlanLevels(p.Problem(), c)
}
