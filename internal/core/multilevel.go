package core

import (
	"fmt"
	"time"

	"senkf/internal/enkf"
	"senkf/internal/ensio"
	"senkf/internal/grid"
	"senkf/internal/metrics"
	"senkf/internal/mpi"
	"senkf/internal/plan"
	"senkf/internal/trace"
)

// MultiLevelProblem is the shared multi-level problem type, declared in
// internal/plan: member files carry `Levels` vertical levels interleaved
// per grid point (realising the paper's h = levels × 8 bytes per-point
// volume), each level with its own observation network. The levels are
// assimilated with 2-D localization, level by level — standard practice
// for layered ocean states — but the I/O is shared: one bar read per stage
// fetches *all* levels of the stage rows with a single addressing
// operation.
type MultiLevelProblem = plan.MultiLevelProblem

// observeML mirrors observe for the multi-level problem type.
func observeML(p MultiLevelProblem, proc string, ph metrics.Phase, t0 time.Time, from, to time.Time) {
	f, t := from.Sub(t0).Seconds(), to.Sub(t0).Seconds()
	if p.Rec != nil {
		p.Rec.Record(proc, ph, f, t)
	}
	if p.Tr.Enabled() {
		p.Tr.Span(proc, trace.CatPhase, ph.String(), f, t)
	}
}

// mlTag gives every (stage, member, level) triple a distinct message tag.
func mlTag(stage, nMembers, member, levels, level int) int {
	return (stage*nMembers+member)*levels + level
}

// RunSEnKFMultiLevel executes the S-EnKF schedule over a multi-level
// ensemble and returns the analysis as [level][member][]field, assembled at
// world rank 0. The per-rank schedule is the same compiled plan RunSEnKF
// executes; the level dimension rides along inside each read and message.
func RunSEnKFMultiLevel(p MultiLevelProblem, pl Plan) ([][][]float64, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if pl.Dec.Mesh != p.Cfg.Mesh {
		return nil, fmt.Errorf("core: decomposition mesh %v differs from config mesh %v", pl.Dec.Mesh, p.Cfg.Mesh)
	}
	if err := pl.Validate(p.Cfg.N); err != nil {
		return nil, err
	}
	cp, err := plan.Compile(pl.Spec(p.Cfg.N))
	if err != nil {
		return nil, err
	}
	w, err := mpi.NewWorld(cp.WorldSize())
	if err != nil {
		return nil, err
	}
	w.SetTracer(p.Tr)
	var fields [][][]float64
	t0 := time.Now()
	err = w.Run(func(c *mpi.Comm) error {
		if c.Rank() < cp.NumCompute() {
			f, err := runComputeML(c, p, cp, t0)
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				fields = f
			}
			return nil
		}
		return runIOML(c, p, cp, t0)
	})
	if err != nil {
		return nil, err
	}
	return fields, nil
}

// runIOML is the multi-level I/O rank: one bar read per (stage, file)
// fetches every level at once; the per-level column blocks are then cut out
// and streamed to the compute ranks.
func runIOML(c *mpi.Comm, p MultiLevelProblem, cp *plan.Compiled, t0 time.Time) error {
	me := cp.IO[c.Rank()-cp.NumCompute()]
	name := me.Name
	levels := p.Levels()

	var files []*ensio.MemberFile
	defer func() {
		for _, f := range files {
			addIOStats(p.Tr, f.Stats())
			f.Close()
		}
	}()
	for _, k := range me.Members {
		mf, err := ensio.OpenMember(ensio.MemberPath(p.Dir, k))
		if err != nil {
			return err
		}
		if err := mf.CheckGeometry(p.Cfg.Mesh.NX, p.Cfg.Mesh.NY, levels, k); err != nil {
			mf.Close()
			return err
		}
		files = append(files, mf)
	}

	for _, st := range me.Stages {
		lb := st.Read.Box
		for fi, mf := range files {
			k := me.Members[fi]
			readStart := time.Now()
			bars, err := mf.ReadBarLevels(lb.Y0, lb.Y1) // all levels, one seek
			if err != nil {
				return err
			}
			observeML(p, name, metrics.PhaseRead, t0, readStart, time.Now())

			commStart := time.Now()
			for _, dst := range st.Comm.Dsts {
				box := cp.Compute[dst].Stages[st.Stage].Box
				meta := []int{k, box.X0, box.X1, box.Y0, box.Y1}
				for lvl := 0; lvl < levels; lvl++ {
					payload := cutPayload(bars[lvl], lb, box, p.Cfg.Mesh.NX)
					if err := c.Send(dst, mlTag(st.Stage, p.Cfg.N, k, levels, lvl), meta, payload); err != nil {
						return err
					}
				}
			}
			observeML(p, name, metrics.PhaseComm, t0, commStart, time.Now())
		}
	}
	return nil
}

// runComputeML is the multi-level compute rank: the helper goroutine
// assembles one block per level per stage while the main flow analyses the
// previous stage, level by level.
func runComputeML(c *mpi.Comm, p MultiLevelProblem, cp *plan.Compiled, t0 time.Time) ([][][]float64, error) {
	me := cp.Compute[c.Rank()]
	name := me.Name
	levels := p.Levels()

	type stageData struct {
		blks []*enkf.Block // one per level
		err  error
	}
	stages := make(chan stageData, len(me.Stages))

	go func() {
		for _, st := range me.Stages {
			exp := st.Box
			blks := make([]*enkf.Block, levels)
			for lvl := range blks {
				blks[lvl] = enkf.NewBlock(exp, p.Cfg.N)
			}
			for k := 0; k < p.Cfg.N; k++ {
				for lvl := 0; lvl < levels; lvl++ {
					m, err := c.Recv(mpi.AnySource, mlTag(st.Stage, p.Cfg.N, k, levels, lvl))
					if err != nil {
						stages <- stageData{err: err}
						return
					}
					box := grid.Box{X0: m.Meta[1], X1: m.Meta[2], Y0: m.Meta[3], Y1: m.Meta[4]}
					if box != exp || len(m.Data) != exp.Points() {
						stages <- stageData{err: fmt.Errorf("core: stage %d member %d level %d: bad block %v/%d", st.Stage, k, lvl, box, len(m.Data))}
						return
					}
					blks[lvl].Data[m.Meta[0]] = m.Data
				}
			}
			if p.Tr.Enabled() {
				p.Tr.Instant(name, trace.CatStage, "ready", time.Since(t0).Seconds(),
					trace.Arg{Key: trace.ArgStage, Val: float64(st.Stage)})
			}
			stages <- stageData{blks: blks}
		}
	}()

	results := make([]*enkf.Block, levels)
	for lvl := range results {
		results[lvl] = enkf.NewBlock(me.Sub, p.Cfg.N)
	}
	for _, st := range me.Stages {
		waitStart := time.Now()
		sd := <-stages
		if sd.err != nil {
			return nil, sd.err
		}
		observeML(p, name, metrics.PhaseWait, t0, waitStart, time.Now())

		layer := st.Analyze
		compStart := time.Now()
		for lvl := 0; lvl < levels; lvl++ {
			out, err := p.Cfg.AnalyzeBox(sd.blks[lvl], p.Nets[lvl].InBox(sd.blks[lvl].Box), layer)
			if err != nil {
				return nil, err
			}
			for k := 0; k < p.Cfg.N; k++ {
				for y := layer.Y0; y < layer.Y1; y++ {
					for x := layer.X0; x < layer.X1; x++ {
						results[lvl].Set(k, x, y, out.At(k, x, y))
					}
				}
			}
		}
		observeML(p, name, metrics.PhaseCompute, t0, compStart, time.Now())
	}

	// Gather per-level sub-domain results at rank 0.
	if c.Rank() != 0 {
		for lvl, res := range results {
			meta := []int{lvl, res.Box.X0, res.Box.X1, res.Box.Y0, res.Box.Y1}
			if err := c.Send(0, resultTag+lvl, meta, flattenBlock(res)); err != nil {
				return nil, err
			}
		}
		return nil, nil
	}
	out := make([][][]float64, levels)
	for lvl := 0; lvl < levels; lvl++ {
		blocks := []*enkf.Block{results[lvl]}
		for r := 1; r < cp.NumCompute(); r++ {
			m, err := c.Recv(mpi.AnySource, resultTag+lvl)
			if err != nil {
				return nil, err
			}
			box := grid.Box{X0: m.Meta[1], X1: m.Meta[2], Y0: m.Meta[3], Y1: m.Meta[4]}
			blk, err := unflattenBlock(box, p.Cfg.N, m.Data)
			if err != nil {
				return nil, err
			}
			blocks = append(blocks, blk)
		}
		fields, err := enkf.Assemble(p.Cfg.Mesh, p.Cfg.N, blocks)
		if err != nil {
			return nil, err
		}
		out[lvl] = fields
	}
	return out, nil
}
