// The real-substrate plan interpreter: one orchestration loop executing any
// compiled plan (S-EnKF, P-EnKF or L-EnKF) on the goroutine message-passing
// runtime against real member files. The algorithm-specific entry points —
// RunSEnKF here, RunPEnKF/RunLEnKF in internal/baseline, the resilient and
// multilevel variants — are thin strategy+policy wrappers that compile a
// plan.Spec and hand the schedule to ExecutePlan. internal/schedule replays
// the same compiled plans on the discrete-event substrate.

package core

import (
	"fmt"
	"time"

	"senkf/internal/enkf"
	"senkf/internal/ensio"
	"senkf/internal/grid"
	"senkf/internal/metrics"
	"senkf/internal/mpi"
	"senkf/internal/plan"
	"senkf/internal/runtimeobs"
	"senkf/internal/trace"
)

// observe records one phase interval in the recorder and, when tracing, as
// a span on the rank's track, stage-tagged when stage >= 0. Both use
// seconds since t0 so trace-derived breakdowns match the recorder exactly.
func observe(p plan.Problem, proc string, ph metrics.Phase, t0, from, to time.Time, stage int) {
	f, t := from.Sub(t0).Seconds(), to.Sub(t0).Seconds()
	if p.Rec != nil {
		p.Rec.Record(proc, ph, f, t)
	}
	if p.Tr.Enabled() {
		if stage >= 0 {
			p.Tr.Span(proc, trace.CatPhase, ph.String(), f, t,
				trace.Arg{Key: trace.ArgStage, Val: float64(stage)})
		} else {
			p.Tr.Span(proc, trace.CatPhase, ph.String(), f, t)
		}
	}
}

// stretch dilates a straggling rank's just-finished busy phase on the wall
// clock: it sleeps (factor−1)× the elapsed time, so the phase span —
// measured after the sleep by observe() — is factor× its natural duration.
// The dilation beat is announced as a fault instant so a monitor can
// attribute the slowdown to the injection rather than to real contention.
// factor <= 1 (the nil-Faults case) is an exact no-op.
func stretch(p plan.Problem, proc string, t0, start time.Time, factor float64) {
	if factor <= 1 {
		return
	}
	time.Sleep(time.Duration(float64(time.Since(start)) * (factor - 1)))
	if p.Tr.Enabled() {
		p.Tr.Instant(proc, trace.CatFault, "straggle", time.Since(t0).Seconds(),
			trace.Arg{Key: "factor", Val: factor})
	}
}

// announceFaults emits one fault instant per injected straggler before the
// ranks start, mirroring the simulated substrate's announcement, so a
// monitor can distinguish injected slowdowns from organic ones.
func announceFaults(p plan.Problem) {
	if p.Faults == nil || !p.Tr.Enabled() {
		return
	}
	for _, s := range p.Faults.Stragglers {
		p.Tr.Instant(s.Proc, trace.CatFault, "straggler", 0,
			trace.Arg{Key: "factor", Val: s.Factor})
	}
}

// addIOStats feeds one member file's addressing counters into the tracer's
// registry so real runs expose the same accounting the cost model predicts.
func addIOStats(tr *trace.Tracer, st ensio.IOStats) {
	if reg := tr.Counters(); reg != nil {
		reg.Add("ensio.seeks", float64(st.Seeks))
		reg.Add("ensio.bytes", float64(st.BytesRead))
		reg.Add("ensio.reads", float64(st.Reads))
	}
}

// cutPayload extracts a destination's block from a full-width bar read.
// barBox is the region held in bar (full mesh rows); dst is the
// destination's stage box, guaranteed to lie inside barBox.
func cutPayload(bar []float64, barBox, dst grid.Box, nx int) []float64 {
	payload := make([]float64, dst.Points())
	for y := dst.Y0; y < dst.Y1; y++ {
		srcOff := (y-barBox.Y0)*nx + dst.X0
		dstOff := (y - dst.Y0) * dst.Width()
		copy(payload[dstOff:dstOff+dst.Width()], bar[srcOff:srcOff+dst.Width()])
	}
	return payload
}

// ExecutePlan runs a compiled single-level plan on the real substrate and
// returns the analysis ensemble assembled at world rank 0 (a compute rank).
func ExecutePlan(p plan.Problem, c *plan.Compiled) ([][]float64, error) {
	out, err := ExecutePlanLevels(p, c)
	if err != nil {
		return nil, err
	}
	if out == nil {
		return nil, nil
	}
	return out[0], nil
}

// ExecutePlanLevels runs a compiled plan on the real substrate and returns
// the analysis as [level][member][]field, assembled at world rank 0. It is
// the one orchestration loop behind every real entry point: a single-level
// problem (Levels() == 1) produces exactly the classic execution — same
// reads, tags, spans and bits — with the result wrapped in a one-element
// level slice.
func ExecutePlanLevels(p plan.Problem, c *plan.Compiled) ([][][]float64, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if c.Spec.Dec.Mesh != p.Cfg.Mesh {
		return nil, fmt.Errorf("core: decomposition mesh %v differs from config mesh %v", c.Spec.Dec.Mesh, p.Cfg.Mesh)
	}
	if c.Spec.N != p.Cfg.N {
		return nil, fmt.Errorf("core: plan compiled for %d members, config has %d", c.Spec.N, p.Cfg.N)
	}
	if c.Spec.LevelCount() != p.Levels() {
		return nil, fmt.Errorf("core: plan compiled for %d levels, problem has %d", c.Spec.LevelCount(), p.Levels())
	}
	w, err := mpi.NewWorld(c.WorldSize())
	if err != nil {
		return nil, err
	}
	w.SetTracer(p.Tr)
	if p.Msgs != nil {
		// The plan-layer message observer satisfies the transport's
		// structurally identical interface, so the engine just passes it
		// through after announcing the plan geometry.
		p.Msgs.BeginMessages(c)
		w.SetMsgObserver(p.Msgs)
	}
	if p.Obs != nil {
		p.Obs.BeginRun(c)
	}
	announceFaults(p)
	var fields [][][]float64
	t0 := time.Now()
	err = w.Run(func(comm *mpi.Comm) error {
		// Each rank body runs under its proc-name pprof scope, so CPU
		// profiles attribute every rank goroutine (and the helpers it
		// spawns, which inherit the labels) to its plan coordinates.
		if comm.Rank() < c.NumCompute() {
			r := c.Compute[comm.Rank()]
			sc := p.Prof.Scope(r.Name)
			return sc.Do(func() error {
				f, err := engineCompute(comm, p, c, r, t0, sc)
				if err != nil {
					return err
				}
				if comm.Rank() == 0 {
					fields = f
				}
				return nil
			})
		}
		r := c.IO[comm.Rank()-c.NumCompute()]
		sc := p.Prof.Scope(r.Name)
		return sc.Do(func() error { return engineIO(comm, p, c, r, t0, sc) })
	})
	if p.Obs != nil {
		err = p.Obs.EndRun(err)
	}
	if err != nil {
		return nil, err
	}
	return fields, nil
}

// engineIO is the body of one dedicated I/O rank: per stage, read the
// stage's region from every member of the stage, then cut and send every
// destination its block of every member.
func engineIO(comm *mpi.Comm, p plan.Problem, c *plan.Compiled, r plan.IORank, t0 time.Time, sc *runtimeobs.Scope) error {
	staged := c.Staged()
	nx := p.Cfg.Mesh.NX
	nl := c.Spec.LevelCount()
	slow := p.Faults.SlowdownFor(r.Name)

	// Keep the rank's member files open across stages — each stage reads a
	// different region of the same files.
	files := make(map[int]*ensio.MemberFile, len(r.Members))
	defer func() {
		for _, f := range files {
			addIOStats(p.Tr, f.Stats())
			f.Close()
		}
	}()
	for _, k := range r.Members {
		mf, err := ensio.OpenMember(ensio.MemberPath(p.Dir, k))
		if err != nil {
			return err
		}
		if err := mf.CheckGeometry(p.Cfg.Mesh.NX, p.Cfg.Mesh.NY, nl, k); err != nil {
			mf.Close()
			return err
		}
		files[k] = mf
	}

	for _, st := range r.Stages {
		st := st
		tag := -1
		if staged {
			tag = st.Stage
		}

		err := sc.Stage(tag, func() error {
			// Read phase: the stage's contiguous region of each member — one
			// addressing operation per member read (bar reading, §4.1.2),
			// fetching every level of the stage rows at once on multilevel
			// files (the level-interleaved layout's co-design).
			readStart := time.Now()
			bars := make([][][]float64, len(st.Members))
			for mi, k := range st.Members {
				if nl == 1 {
					bar, err := files[k].ReadBar(st.Read.Box.Y0, st.Read.Box.Y1)
					if err != nil {
						return err
					}
					bars[mi] = [][]float64{bar}
				} else {
					lb, err := files[k].ReadBarLevels(st.Read.Box.Y0, st.Read.Box.Y1)
					if err != nil {
						return err
					}
					bars[mi] = lb
				}
			}
			stretch(p, r.Name, t0, readStart, slow)
			observe(p, r.Name, metrics.PhaseRead, t0, readStart, time.Now(), tag)

			// Comm phase: every destination gets its stage box of every
			// member, one message per level.
			commStart := time.Now()
			for mi, k := range st.Members {
				for _, dst := range st.Comm.Dsts {
					box := c.Compute[dst].Stages[st.Stage].Box
					meta := []int{k, box.X0, box.X1, box.Y0, box.Y1}
					for lvl := 0; lvl < nl; lvl++ {
						payload := cutPayload(bars[mi][lvl], st.Read.Box, box, nx)
						if err := comm.Send(dst, c.Spec.Tag(st.Stage, k, lvl), meta, payload); err != nil {
							return err
						}
					}
				}
			}
			stretch(p, r.Name, t0, commStart, slow)
			observe(p, r.Name, metrics.PhaseComm, t0, commStart, time.Now(), tag)
			return nil
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// engineCompute is the body of one compute rank. Stages whose data arrives
// by message are assembled by a helper goroutine (§4.2) that signals the
// main flow stage by stage; self-read stages block-read the member files
// directly. The main flow analyses each stage's region and accumulates the
// sub-domain result, gathered at world rank 0.
func engineCompute(comm *mpi.Comm, p plan.Problem, c *plan.Compiled, r plan.ComputeRank, t0 time.Time, sc *runtimeobs.Scope) ([][][]float64, error) {
	staged := c.Staged()
	n := c.Spec.N
	nl := c.Spec.LevelCount()
	slow := p.Faults.SlowdownFor(r.Name)

	type stageData struct {
		blks []*enkf.Block // one per level
		err  error
	}
	var assembled chan stageData
	recvStages := 0
	for _, st := range r.Stages {
		if st.Expect > 0 {
			recvStages++
		}
	}
	if recvStages > 0 {
		assembled = make(chan stageData, recvStages)
		// Helper thread: receive the Expect per-member blocks of each
		// message stage (one per level), assemble them, and hand the stage
		// over. The goroutine inherits the rank's pprof labels at spawn;
		// each stage's receive/assemble work is additionally stage-tagged.
		go func() {
			for _, st := range r.Stages {
				st := st
				if st.Expect == 0 {
					continue
				}
				var blks []*enkf.Block
				err := sc.Stage(st.Stage, func() error {
					blks = make([]*enkf.Block, nl)
					for lvl := range blks {
						blks[lvl] = enkf.NewBlock(st.Box, n)
					}
					for k := 0; k < st.Expect; k++ {
						for lvl := 0; lvl < nl; lvl++ {
							m, err := comm.Recv(mpi.AnySource, c.Spec.Tag(st.Stage, k, lvl))
							if err != nil {
								return err
							}
							box := grid.Box{X0: m.Meta[1], X1: m.Meta[2], Y0: m.Meta[3], Y1: m.Meta[4]}
							if box != st.Box {
								return fmt.Errorf("core: stage %d member %d box %v, want %v", st.Stage, k, box, st.Box)
							}
							if len(m.Data) != st.Box.Points() {
								return fmt.Errorf("core: stage %d member %d payload %d, want %d", st.Stage, k, len(m.Data), st.Box.Points())
							}
							blks[lvl].Data[m.Meta[0]] = m.Data
						}
					}
					return nil
				})
				if err != nil {
					assembled <- stageData{err: err}
					return
				}
				if staged && p.Tr.Enabled() {
					// Helper-thread handoff: the stage is fully assembled
					// and ready for the main thread from this instant on.
					p.Tr.Instant(r.Name, trace.CatStage, "ready", time.Since(t0).Seconds(),
						trace.Arg{Key: trace.ArgStage, Val: float64(st.Stage)})
				}
				assembled <- stageData{blks: blks}
			}
		}()
	}

	results := make([]*enkf.Block, nl)
	for lvl := range results {
		results[lvl] = enkf.NewBlock(r.Sub, n)
	}
	for _, st := range r.Stages {
		st := st
		tag := -1
		if staged {
			tag = st.Stage
		}

		err := sc.Stage(tag, func() error {
			var blks []*enkf.Block
			if st.Expect > 0 {
				waitStart := time.Now()
				sd := <-assembled
				if sd.err != nil {
					return sd.err
				}
				observe(p, r.Name, metrics.PhaseWait, t0, waitStart, time.Now(), -1)
				blks = sd.blks
			} else {
				// Block reading (§2.3): the rank reads its own expansion from
				// every member file, one addressing operation per row — rows
				// that are levels× heavier on multilevel files.
				blks = make([]*enkf.Block, nl)
				for lvl := range blks {
					blks[lvl] = enkf.NewBlock(st.Box, n)
				}
				for _, k := range st.SelfMembers {
					readStart := time.Now()
					mf, err := ensio.OpenMember(ensio.MemberPath(p.Dir, k))
					if err != nil {
						return err
					}
					if err := mf.CheckGeometry(p.Cfg.Mesh.NX, p.Cfg.Mesh.NY, nl, k); err != nil {
						mf.Close()
						return err
					}
					if nl == 1 {
						data, err := mf.ReadBlock(st.Read.Box)
						addIOStats(p.Tr, mf.Stats())
						mf.Close()
						if err != nil {
							return err
						}
						blks[0].Data[k] = data
					} else {
						data, err := mf.ReadBlockLevels(st.Read.Box)
						addIOStats(p.Tr, mf.Stats())
						mf.Close()
						if err != nil {
							return err
						}
						for lvl := 0; lvl < nl; lvl++ {
							blks[lvl].Data[k] = data[lvl]
						}
					}
					stretch(p, r.Name, t0, readStart, slow)
					observe(p, r.Name, metrics.PhaseRead, t0, readStart, time.Now(), -1)
				}
			}

			// One compute span covers the stage's level loop: levels scale
			// the analysis work, not the stage topology.
			compStart := time.Now()
			for lvl := 0; lvl < nl; lvl++ {
				out, err := p.Cfg.AnalyzeBox(blks[lvl], p.NetAt(lvl).InBox(st.Box), st.Analyze)
				if err != nil {
					return err
				}
				for k := 0; k < n; k++ {
					for y := st.Analyze.Y0; y < st.Analyze.Y1; y++ {
						for x := st.Analyze.X0; x < st.Analyze.X1; x++ {
							results[lvl].Set(k, x, y, out.At(k, x, y))
						}
					}
				}
			}
			stretch(p, r.Name, t0, compStart, slow)
			observe(p, r.Name, metrics.PhaseCompute, t0, compStart, time.Now(), tag)
			if staged && p.Tr.Enabled() {
				p.Tr.Instant(r.Name, trace.CatStage, "computed", time.Since(t0).Seconds(),
					trace.Arg{Key: trace.ArgStage, Val: float64(st.Stage)})
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}

	return gatherResults(comm, p.Cfg, results, c.NumCompute())
}

// gatherResults sends each compute rank's per-level analysis blocks to
// world rank 0 and assembles the full fields there, level by level (tag
// resultTag+level). Other ranks return nil fields.
func gatherResults(comm *mpi.Comm, cfg enkf.Config, mine []*enkf.Block, contributors int) ([][][]float64, error) {
	if comm.Rank() != 0 {
		for lvl, res := range mine {
			meta := []int{res.Box.X0, res.Box.X1, res.Box.Y0, res.Box.Y1}
			if err := comm.Send(0, resultTag+lvl, meta, flattenBlock(res)); err != nil {
				return nil, err
			}
		}
		return nil, nil
	}
	out := make([][][]float64, len(mine))
	for lvl := range mine {
		blocks := []*enkf.Block{mine[lvl]}
		for i := 1; i < contributors; i++ {
			m, err := comm.Recv(mpi.AnySource, resultTag+lvl)
			if err != nil {
				return nil, err
			}
			box := grid.Box{X0: m.Meta[0], X1: m.Meta[1], Y0: m.Meta[2], Y1: m.Meta[3]}
			blk, err := unflattenBlock(box, cfg.N, m.Data)
			if err != nil {
				return nil, err
			}
			blocks = append(blocks, blk)
		}
		fields, err := enkf.Assemble(cfg.Mesh, cfg.N, blocks)
		if err != nil {
			return nil, err
		}
		out[lvl] = fields
	}
	return out, nil
}
