package core

import (
	"math"
	"os"
	"strings"
	"testing"

	"senkf/internal/enkf"
	"senkf/internal/ensio"
	"senkf/internal/faults"
	"senkf/internal/grid"
	"senkf/internal/obs"
	"senkf/internal/workload"
)

// resilientSetup mirrors setup but also returns the background ensemble so
// degraded runs can be checked against a survivor-only serial reference.
func resilientSetup(t *testing.T) (Problem, grid.Decomposition, [][]float64) {
	t.Helper()
	ps := workload.TestScale
	m, err := ps.Mesh()
	if err != nil {
		t.Fatal(err)
	}
	truth := workload.Truth(m, workload.DefaultFieldSpec, ps.Seed)
	bg, err := workload.Ensemble(m, truth, ps.Members, ps.Spread, ps.Seed)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, err := ensio.WriteEnsemble(dir, m, bg); err != nil {
		t.Fatal(err)
	}
	net, err := obs.StridedNetwork(m, truth, ps.ObsStride, ps.ObsStride, ps.ObsVar, ps.Seed)
	if err != nil {
		t.Fatal(err)
	}
	cfg := enkf.Config{Mesh: m, Radius: ps.Radius(), N: ps.Members, Seed: ps.Seed}
	dec, err := grid.NewDecomposition(m, 4, 2, cfg.Radius)
	if err != nil {
		t.Fatal(err)
	}
	return Problem{Cfg: cfg, Dir: dir, Net: net}, dec, bg
}

// survivorReference computes the serial analysis over the surviving
// members with the effective (reweighted) configuration.
func survivorReference(t *testing.T, p Problem, bg [][]float64, res *DegradedResult) [][]float64 {
	t.Helper()
	sub := make([][]float64, 0, len(res.Survivors))
	for _, k := range res.Survivors {
		sub = append(sub, bg[k])
	}
	ref, err := enkf.SerialReference(res.EffectiveConfig, sub, p.Net)
	if err != nil {
		t.Fatal(err)
	}
	return ref
}

// TestResilientNilPlanBitMatches pins the hot-path contract: with no fault
// plan the resilient runner must reproduce RunSEnKF bit for bit.
func TestResilientNilPlanBitMatches(t *testing.T) {
	p, dec, _ := resilientSetup(t)
	pl := Plan{Dec: dec, L: 3, NCg: 2}
	base, err := RunSEnKF(p, pl)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunSEnKFResilient(p, pl, Resilience{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded {
		t.Errorf("healthy run marked degraded: %+v", res)
	}
	if len(res.Survivors) != p.Cfg.N || len(res.Dropped) != 0 {
		t.Errorf("healthy run: survivors %v dropped %v", res.Survivors, res.Dropped)
	}
	if d := enkf.MaxAbsDiffFields(res.Fields, base); d != 0 {
		t.Errorf("resilient healthy run differs from RunSEnKF by %g", d)
	}
	if res.EffectiveConfig != p.Cfg {
		t.Errorf("healthy effective config changed: %+v", res.EffectiveConfig)
	}
}

// TestResilientEndToEndDegraded is the ISSUE acceptance scenario: one OST
// outage window (recovered through retry) plus one corrupted member file.
// The run must complete and return a DegradedResult whose fields match a
// serial reference over the surviving N−1 members.
func TestResilientEndToEndDegraded(t *testing.T) {
	p, dec, bg := resilientSetup(t)
	pl := Plan{Dec: dec, L: 3, NCg: 2}
	plan := &faults.Plan{
		Seed: 7,
		OSTs: 4, // member k lives on OST k%4 for hook purposes
		OSTWindows: []faults.OSTWindow{
			{OST: 2, Start: 0, End: 1, Factor: 0}, // outage: first attempt fails, retry recovers
		},
		FileFaults: []faults.FileFault{
			{Member: 3, Kind: faults.FileCorrupt},
		},
	}
	if err := plan.Apply(p.Dir); err != nil {
		t.Fatal(err)
	}
	res, err := RunSEnKFResilient(p, pl, Resilience{Faults: plan})
	if err != nil {
		t.Fatalf("degraded run failed outright: %v", err)
	}
	if !res.Degraded {
		t.Error("run with a corrupted member not marked degraded")
	}
	if len(res.Dropped) != 1 || res.Dropped[0].Member != 3 || res.Dropped[0].Reason != "corrupt" {
		t.Fatalf("Dropped = %+v, want member 3 / corrupt", res.Dropped)
	}
	if len(res.Survivors) != p.Cfg.N-1 {
		t.Fatalf("survivors = %d, want %d", len(res.Survivors), p.Cfg.N-1)
	}
	for _, k := range res.Survivors {
		if k == 3 {
			t.Fatal("corrupted member listed as survivor")
		}
	}
	if res.EffectiveConfig.N != p.Cfg.N-1 {
		t.Errorf("effective N = %d, want %d", res.EffectiveConfig.N, p.Cfg.N-1)
	}
	wantInfl := math.Sqrt(float64(p.Cfg.N-1) / float64(p.Cfg.N-2))
	if math.Abs(res.EffectiveConfig.Inflation-wantInfl) > 1e-15 {
		t.Errorf("effective inflation = %g, want %g", res.EffectiveConfig.Inflation, wantInfl)
	}
	ref := survivorReference(t, p, bg, res)
	if d := enkf.MaxAbsDiffFields(res.Fields, ref); d > 1e-12 {
		t.Errorf("degraded analysis differs from survivor reference by %g", d)
	}
}

// TestResilientReaderDeathFailsOver kills one reader before stage 1: its
// bar rows must be adopted by the group's surviving reader and the
// analysis must still bit-match the healthy run (no member is lost).
func TestResilientReaderDeathFailsOver(t *testing.T) {
	p, dec, _ := resilientSetup(t)
	pl := Plan{Dec: dec, L: 3, NCg: 2}
	base, err := RunSEnKF(p, pl)
	if err != nil {
		t.Fatal(err)
	}
	plan := &faults.Plan{Deaths: []faults.RankDeath{
		{Group: 0, Reader: 1, BeforeStage: 1},
	}}
	res, err := RunSEnKFResilient(p, pl, Resilience{Faults: plan})
	if err != nil {
		t.Fatalf("reader death deadlocked or failed: %v", err)
	}
	if !res.Degraded {
		t.Error("failover run not marked degraded")
	}
	if len(res.Failovers) != 1 {
		t.Fatalf("Failovers = %+v, want exactly one", res.Failovers)
	}
	fo := res.Failovers[0]
	if fo.Group != 0 || fo.FromReader != 1 || fo.ToReader != 0 || fo.Stage != 1 {
		t.Errorf("failover record %+v", fo)
	}
	if len(res.Dropped) != 0 || len(res.Survivors) != p.Cfg.N {
		t.Errorf("failover dropped members: %+v", res)
	}
	// Every member still assimilated: the analysis is unchanged.
	if d := enkf.MaxAbsDiffFields(res.Fields, base); d != 0 {
		t.Errorf("failover analysis differs from healthy run by %g", d)
	}
}

// TestResilientMissingAndTruncated drops two members for different
// reasons and checks both the classification and the survivor analysis.
func TestResilientMissingAndTruncated(t *testing.T) {
	p, dec, bg := resilientSetup(t)
	pl := Plan{Dec: dec, L: 3, NCg: 2}
	if err := os.Remove(ensio.MemberPath(p.Dir, 1)); err != nil {
		t.Fatal(err)
	}
	tp := ensio.MemberPath(p.Dir, 6)
	fi, err := os.Stat(tp)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(tp, fi.Size()/2); err != nil {
		t.Fatal(err)
	}
	res, err := RunSEnKFResilient(p, pl, Resilience{})
	if err != nil {
		t.Fatalf("run with missing+truncated members failed outright: %v", err)
	}
	got := map[int]string{}
	for _, d := range res.Dropped {
		got[d.Member] = d.Reason
	}
	if got[1] != "missing" || got[6] != "truncated" || len(got) != 2 {
		t.Fatalf("Dropped = %+v, want member 1 missing and member 6 truncated", res.Dropped)
	}
	if len(res.Survivors) != p.Cfg.N-2 {
		t.Fatalf("survivors = %d, want %d", len(res.Survivors), p.Cfg.N-2)
	}
	ref := survivorReference(t, p, bg, res)
	if d := enkf.MaxAbsDiffFields(res.Fields, ref); d > 1e-12 {
		t.Errorf("degraded analysis differs from survivor reference by %g", d)
	}
}

// TestResilientMinMembersFloor verifies the run aborts cleanly (no hang,
// actionable error) when too few members survive.
func TestResilientMinMembersFloor(t *testing.T) {
	p, dec, _ := resilientSetup(t)
	pl := Plan{Dec: dec, L: 3, NCg: 2}
	for k := 0; k < 3; k++ {
		if err := os.Remove(ensio.MemberPath(p.Dir, k)); err != nil {
			t.Fatal(err)
		}
	}
	_, err := RunSEnKFResilient(p, pl, Resilience{MinMembers: p.Cfg.N - 2})
	if err == nil {
		t.Fatal("run below MinMembers succeeded")
	}
	if !strings.Contains(err.Error(), "need at least") {
		t.Errorf("unhelpful MinMembers error: %v", err)
	}
}

// TestResilientRejectsSimOnlyPlans: time-based deaths have no meaning in
// real execution and must be rejected up front, not silently ignored.
func TestResilientRejectsSimOnlyPlans(t *testing.T) {
	p, dec, _ := resilientSetup(t)
	pl := Plan{Dec: dec, L: 3, NCg: 2}
	plan := &faults.Plan{Deaths: []faults.RankDeath{
		{Group: 0, Reader: 0, At: 0.5},
	}}
	if _, err := RunSEnKFResilient(p, pl, Resilience{Faults: plan}); err == nil {
		t.Error("time-based death plan accepted by real runner")
	}
	bad := &faults.Plan{Deaths: []faults.RankDeath{
		{Group: 5, Reader: 0, BeforeStage: 0}, // group out of range
	}}
	if _, err := RunSEnKFResilient(p, pl, Resilience{Faults: bad}); err == nil {
		t.Error("out-of-range death plan accepted")
	}
}

// TestResilientTransientRecovery: a transient fault within the retry
// budget must not drop the member — and the result stays bit-identical.
func TestResilientTransientRecovery(t *testing.T) {
	p, dec, _ := resilientSetup(t)
	pl := Plan{Dec: dec, L: 3, NCg: 2}
	base, err := RunSEnKF(p, pl)
	if err != nil {
		t.Fatal(err)
	}
	plan := &faults.Plan{FileFaults: []faults.FileFault{
		{Member: 2, Kind: faults.FileTransient, Count: 2}, // budget is 3
	}}
	res, err := RunSEnKFResilient(p, pl, Resilience{Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Dropped) != 0 {
		t.Errorf("recoverable transient dropped a member: %+v", res.Dropped)
	}
	if d := enkf.MaxAbsDiffFields(res.Fields, base); d != 0 {
		t.Errorf("transient-recovered run differs from healthy run by %g", d)
	}
	plan = &faults.Plan{FileFaults: []faults.FileFault{
		{Member: 2, Kind: faults.FileTransient, Count: 10}, // exceeds budget
	}}
	res, err = RunSEnKFResilient(p, pl, Resilience{Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Dropped) != 1 || res.Dropped[0].Member != 2 || res.Dropped[0].Reason != "io" {
		t.Errorf("budget-exceeding transient: Dropped = %+v, want member 2 / io", res.Dropped)
	}
}
