package core

import (
	"testing"

	"senkf/internal/enkf"
	"senkf/internal/ensio"
	"senkf/internal/grid"
	"senkf/internal/metrics"
	"senkf/internal/obs"
	"senkf/internal/workload"
)

// setupML builds a 3-level problem with member files on disk and the
// per-level serial references.
func setupML(t *testing.T) (MultiLevelProblem, grid.Decomposition, [][][]float64) {
	t.Helper()
	const levels = 3
	ps := workload.TestScale
	m, err := ps.Mesh()
	if err != nil {
		t.Fatal(err)
	}
	truths, err := workload.TruthLevels(m, workload.DefaultFieldSpec, levels, ps.Seed)
	if err != nil {
		t.Fatal(err)
	}
	members, err := workload.EnsembleLevels(m, truths, ps.Members, ps.Spread, ps.Seed)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, err := ensio.WriteEnsembleLevels(dir, m, members); err != nil {
		t.Fatal(err)
	}
	nets := make([]*obs.Network, levels)
	for l := range nets {
		nets[l], err = obs.StridedNetwork(m, truths[l], ps.ObsStride, ps.ObsStride, ps.ObsVar, ps.Seed+uint64(l))
		if err != nil {
			t.Fatal(err)
		}
	}
	cfg := enkf.Config{Mesh: m, Radius: ps.Radius(), N: ps.Members, Seed: ps.Seed}
	dec, err := grid.NewDecomposition(m, 4, 2, cfg.Radius)
	if err != nil {
		t.Fatal(err)
	}
	// Per-level serial reference over [member][level] -> [level][member].
	refs := make([][][]float64, levels)
	for l := 0; l < levels; l++ {
		bg := make([][]float64, ps.Members)
		for k := 0; k < ps.Members; k++ {
			bg[k] = members[k][l]
		}
		refs[l], err = enkf.SerialReference(cfg, bg, nets[l])
		if err != nil {
			t.Fatal(err)
		}
	}
	return MultiLevelProblem{Cfg: cfg, Dir: dir, Nets: nets}, dec, refs
}

func TestMultiLevelMatchesPerLevelReference(t *testing.T) {
	p, dec, refs := setupML(t)
	got, err := RunSEnKFMultiLevel(p, Plan{Dec: dec, L: 3, NCg: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(refs) {
		t.Fatalf("got %d levels, want %d", len(got), len(refs))
	}
	for l := range refs {
		if d := enkf.MaxAbsDiffFields(got[l], refs[l]); d != 0 {
			t.Errorf("level %d differs from per-level reference by %g", l, d)
		}
	}
}

func TestMultiLevelAcrossPlanShapes(t *testing.T) {
	p, _, refs := setupML(t)
	for _, s := range []struct{ nsdx, nsdy, l, ncg int }{
		{4, 2, 1, 1},
		{2, 2, 3, 4},
		{6, 3, 2, 2},
	} {
		dec, err := grid.NewDecomposition(p.Cfg.Mesh, s.nsdx, s.nsdy, p.Cfg.Radius)
		if err != nil {
			t.Fatal(err)
		}
		got, err := RunSEnKFMultiLevel(p, Plan{Dec: dec, L: s.l, NCg: s.ncg})
		if err != nil {
			t.Fatalf("plan %+v: %v", s, err)
		}
		for l := range refs {
			if d := enkf.MaxAbsDiffFields(got[l], refs[l]); d != 0 {
				t.Errorf("plan %+v level %d: differs by %g", s, l, d)
			}
		}
	}
}

func TestMultiLevelSharedBarReads(t *testing.T) {
	// The I/O co-design: reading L levels costs the same number of
	// addressing operations as reading one level — the bar carries all
	// levels contiguously.
	p, dec, _ := setupML(t)
	rec := metrics.NewRecorder()
	p.Rec = rec
	if _, err := RunSEnKFMultiLevel(p, Plan{Dec: dec, L: 3, NCg: 2}); err != nil {
		t.Fatal(err)
	}
	if rec.Breakdown(metrics.IOPrefix).Read <= 0 {
		t.Error("no read time recorded")
	}
	// Check actual seek counts on a fresh file: one seek per stage bar,
	// regardless of the level count.
	mf, err := ensio.OpenMember(ensio.MemberPath(p.Dir, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer mf.Close()
	if _, err := mf.ReadBarLevels(0, 6); err != nil {
		t.Fatal(err)
	}
	if s := mf.Stats(); s.Seeks != 1 {
		t.Errorf("multi-level bar read took %d seeks, want 1", s.Seeks)
	}
}

func TestMultiLevelValidation(t *testing.T) {
	p, dec, _ := setupML(t)
	bad := p
	bad.Nets = nil
	if _, err := RunSEnKFMultiLevel(bad, Plan{Dec: dec, L: 1, NCg: 1}); err == nil {
		t.Error("missing networks accepted")
	}
	bad = p
	bad.Nets = []*obs.Network{p.Nets[0], nil}
	if _, err := RunSEnKFMultiLevel(bad, Plan{Dec: dec, L: 1, NCg: 1}); err == nil {
		t.Error("nil network accepted")
	}
	bad = p
	bad.Dir = ""
	if _, err := RunSEnKFMultiLevel(bad, Plan{Dec: dec, L: 1, NCg: 1}); err == nil {
		t.Error("empty dir accepted")
	}
	// Level-count mismatch between files (3 levels) and networks (2).
	bad = p
	bad.Nets = p.Nets[:2]
	if _, err := RunSEnKFMultiLevel(bad, Plan{Dec: dec, L: 1, NCg: 1}); err == nil {
		t.Error("level-count mismatch accepted")
	}
}

func TestMultiLevelImprovesEveryLevel(t *testing.T) {
	const levels = 3
	ps := workload.TestScale
	m, _ := ps.Mesh()
	truths, err := workload.TruthLevels(m, workload.DefaultFieldSpec, levels, ps.Seed)
	if err != nil {
		t.Fatal(err)
	}
	members, err := workload.EnsembleLevels(m, truths, ps.Members, ps.Spread, ps.Seed)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, err := ensio.WriteEnsembleLevels(dir, m, members); err != nil {
		t.Fatal(err)
	}
	nets := make([]*obs.Network, levels)
	for l := range nets {
		nets[l], err = obs.StridedNetwork(m, truths[l], 2, 2, 0.01, ps.Seed+uint64(l))
		if err != nil {
			t.Fatal(err)
		}
	}
	cfg := enkf.Config{Mesh: m, Radius: ps.Radius(), N: ps.Members, Seed: ps.Seed}
	dec, err := grid.NewDecomposition(m, 4, 2, cfg.Radius)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunSEnKFMultiLevel(MultiLevelProblem{Cfg: cfg, Dir: dir, Nets: nets}, Plan{Dec: dec, L: 2, NCg: 4})
	if err != nil {
		t.Fatal(err)
	}
	for l := 0; l < levels; l++ {
		bg := make([][]float64, ps.Members)
		for k := range bg {
			bg[k] = members[k][l]
		}
		before := enkf.RMSE(enkf.EnsembleMean(bg), truths[l])
		after := enkf.RMSE(enkf.EnsembleMean(got[l]), truths[l])
		if !(after < before) {
			t.Errorf("level %d: RMSE %g -> %g", l, before, after)
		}
	}
}

// The multi-level triangle test (S-EnKF ML vs P-EnKF ML vs per-level
// serial reference) lives in internal/baseline/multilevel_test.go: baseline
// may import core, but not the reverse.
