// Chrome trace-event JSON export and import. The format is the JSON
// object flavour documented by the Trace Event Format spec and consumed by
// Perfetto (ui.perfetto.dev) and chrome://tracing: an object with a
// "traceEvents" array whose entries carry ph/ts/dur/pid/tid. Timestamps
// are microseconds. Every distinct Track becomes one thread (tid) of a
// single process, named via "thread_name" metadata events, so the UI shows
// one row per simulated processor / OST / rank.

package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant scope
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit,omitempty"`
}

const chromePid = 1

// secondsToMicros converts the tracer's second-denominated timestamps to
// the microseconds Chrome expects.
func secondsToMicros(s float64) float64 { return s * 1e6 }

// WriteChrome writes the events as Chrome trace-event JSON. Tracks are
// assigned tids in order of first appearance and named with thread_name
// metadata so Perfetto groups events per processor.
func WriteChrome(w io.Writer, events []Event) error {
	tids := map[string]int{}
	var order []string
	for _, ev := range events {
		if _, ok := tids[ev.Track]; !ok {
			tids[ev.Track] = len(tids)
			order = append(order, ev.Track)
		}
	}
	// Stream the JSON by hand: one traceEvents array, metadata first. At
	// the 12,000-processor scale traces run to hundreds of thousands of
	// events; building one giant value would double peak memory.
	if _, err := io.WriteString(w, `{"displayTimeUnit":"ms","traceEvents":[`); err != nil {
		return err
	}
	enc := json.NewEncoder(discardNewlines{w})
	first := true
	emit := func(ce chromeEvent) error {
		if !first {
			if _, err := io.WriteString(w, ","); err != nil {
				return err
			}
		}
		first = false
		return enc.Encode(ce)
	}
	for _, track := range order {
		if err := emit(chromeEvent{
			Name: "thread_name", Ph: "M", Pid: chromePid, Tid: tids[track],
			Args: map[string]any{"name": track},
		}); err != nil {
			return err
		}
	}
	for _, ev := range events {
		ce := chromeEvent{
			Name: ev.Name,
			Cat:  ev.Cat,
			Ph:   string(rune(ev.Ph)),
			Ts:   secondsToMicros(ev.Ts),
			Pid:  chromePid,
			Tid:  tids[ev.Track],
		}
		switch ev.Ph {
		case PhaseSpan:
			d := secondsToMicros(ev.Dur)
			ce.Dur = &d
		case PhaseInstant:
			ce.S = "t" // thread-scoped instant
		}
		if len(ev.Args) > 0 {
			ce.Args = make(map[string]any, len(ev.Args))
			for _, a := range ev.Args {
				ce.Args[a.Key] = a.Val
			}
		}
		if err := emit(ce); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "]}")
	return err
}

// discardNewlines drops the newline json.Encoder appends after every
// value, keeping the output a single line of valid JSON.
type discardNewlines struct{ w io.Writer }

func (d discardNewlines) Write(p []byte) (int, error) {
	n := len(p)
	for len(p) > 0 && p[len(p)-1] == '\n' {
		p = p[:len(p)-1]
	}
	if len(p) == 0 {
		return n, nil
	}
	if _, err := d.w.Write(p); err != nil {
		return 0, err
	}
	return n, nil
}

// WriteChrome exports the buffered events (see WriteChrome).
func (b *Buffer) WriteChrome(w io.Writer) error {
	b.mu.Lock()
	events := b.events
	b.mu.Unlock()
	return WriteChrome(w, events)
}

// ReadChrome decodes Chrome trace-event JSON written by WriteChrome back
// into events, resolving tids to track names via the thread_name metadata.
// It is the decoding half of the export round-trip the tests validate.
func ReadChrome(r io.Reader) ([]Event, error) {
	var ct chromeTrace
	dec := json.NewDecoder(r)
	if err := dec.Decode(&ct); err != nil {
		return nil, fmt.Errorf("trace: decode chrome JSON: %w", err)
	}
	tracks := map[int]string{}
	for _, ce := range ct.TraceEvents {
		if ce.Ph == "M" && ce.Name == "thread_name" {
			if name, ok := ce.Args["name"].(string); ok {
				tracks[ce.Tid] = name
			}
		}
	}
	var out []Event
	for _, ce := range ct.TraceEvents {
		if ce.Ph == "M" {
			continue
		}
		if len(ce.Ph) != 1 {
			return nil, fmt.Errorf("trace: unsupported event phase %q", ce.Ph)
		}
		track, ok := tracks[ce.Tid]
		if !ok {
			return nil, fmt.Errorf("trace: event on unnamed tid %d", ce.Tid)
		}
		ev := Event{
			Track: track,
			Cat:   ce.Cat,
			Name:  ce.Name,
			Ph:    ce.Ph[0],
			Ts:    ce.Ts / 1e6,
		}
		if ce.Dur != nil {
			ev.Dur = *ce.Dur / 1e6
		}
		if len(ce.Args) > 0 {
			keys := make([]string, 0, len(ce.Args))
			for k := range ce.Args {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				if v, ok := ce.Args[k].(float64); ok {
					ev.Args = append(ev.Args, Arg{Key: k, Val: v})
				}
			}
		}
		out = append(out, ev)
	}
	return out, nil
}
