// Trace-derived verification: the quantities the paper's evaluation plots
// (phase breakdowns, overlap percentages) recomputed from raw trace events
// rather than from metrics.Recorder, plus causality and capacity
// invariants. Tests cross-check the two derivations against each other, so
// a bug in either the instrumentation or the recorder shows up as a
// mismatch.
//
// Conventions (shared by every instrumented schedule):
//
//   - phase activity is a span with Cat "phase" and Name equal to the
//     metrics.Phase string ("read", "comm", "compute", "wait");
//   - stage data readiness is an instant with Cat "stage", Name "ready"
//     and an Arg "stage"; compute spans of multi-stage schedules carry the
//     matching "stage" Arg;
//   - file-system service is a span with Cat "ost", Name "service" on the
//     OST's own track.

package trace

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"senkf/internal/metrics"
)

// CatPhase is the category of phase-activity spans.
const CatPhase = "phase"

// CatStage is the category of stage readiness/handoff events.
const CatStage = "stage"

// CatOST is the category of file-system request spans.
const CatOST = "ost"

// CatFault is the category of injected-fault and recovery events (OST
// outages, member drops, rank deaths, failovers, retries).
const CatFault = "fault"

// CatComm is the category of per-message wire-telemetry events: one
// "deliver" instant per matched point-to-point message, carrying src, dst,
// tag, bytes, enqueue→deliver latency and the receiver's queue depth at
// match time. Wire events travel through Tee.EmitSide — secondary sinks
// only — so an unfaulted run's primary Chrome buffer stays byte-identical
// whether or not wire telemetry is on.
const CatComm = "comm"

// CommTrack is the track per-message wire events are emitted on.
const CommTrack = "comm"

// CatModel is the category of cost-model events: the "prediction" instant
// a simulated S-EnKF run emits at tuner decision time (carrying the
// Table-1 parameters, the chosen configuration and the Eq. 7–10 predicted
// terms) and the model/t_* counter samples that make model-vs-measured
// drift visible directly in a Chrome trace.
const CatModel = "model"

// ModelTrack is the track the cost-model events are emitted on.
const ModelTrack = "model"

// CatRuntime is the category of Go-runtime observability events: the
// periodic "sample" instants the runtime-metrics sampler
// (internal/runtimeobs) emits, carrying goroutine count, heap live/goal
// and GC-pause readings as args, so a Chrome trace and the live monitor
// see the process's runtime health on the same clock as the plan events.
const CatRuntime = "runtime"

// RuntimeTrack is the track the runtime sampler's events are emitted on.
const RuntimeTrack = "runtime"

// ArgStage is the Arg key carrying a stage index.
const ArgStage = "stage"

// ArgValue looks up an Arg by key.
func (e Event) ArgValue(key string) (float64, bool) {
	for _, a := range e.Args {
		if a.Key == key {
			return a.Val, true
		}
	}
	return 0, false
}

// phaseByName inverts metrics.Phase.String.
func phaseByName(name string) (metrics.Phase, bool) {
	switch name {
	case "read":
		return metrics.PhaseRead, true
	case "comm":
		return metrics.PhaseComm, true
	case "compute":
		return metrics.PhaseCompute, true
	case "wait":
		return metrics.PhaseWait, true
	}
	return 0, false
}

// Tracks returns the sorted distinct tracks with the given prefix that
// carry at least one phase span.
func Tracks(events []Event, trackPrefix string) []string {
	seen := map[string]bool{}
	for _, ev := range events {
		if ev.Ph == PhaseSpan && ev.Cat == CatPhase && strings.HasPrefix(ev.Track, trackPrefix) {
			seen[ev.Track] = true
		}
	}
	out := make([]string, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// PhaseBreakdown sums phase-span durations across tracks with the given
// prefix — the trace-derived analogue of metrics.Recorder.Breakdown.
// Truncated spans (negative duration, as left behind by ranks that died
// mid-phase) contribute nothing instead of subtracting time.
func PhaseBreakdown(events []Event, trackPrefix string) metrics.Breakdown {
	var b metrics.Breakdown
	for _, ev := range events {
		if ev.Ph != PhaseSpan || ev.Cat != CatPhase || !strings.HasPrefix(ev.Track, trackPrefix) {
			continue
		}
		if ph, ok := phaseByName(ev.Name); ok && ev.Dur > 0 {
			b.Add(ph, ev.Dur)
		}
	}
	return b
}

// MeanPhaseBreakdown divides the prefix breakdown by the number of tracks
// carrying phase spans — the trace-derived analogue of
// metrics.Recorder.MeanBreakdown (Figure 9).
func MeanPhaseBreakdown(events []Event, trackPrefix string) metrics.Breakdown {
	b := PhaseBreakdown(events, trackPrefix)
	n := len(Tracks(events, trackPrefix))
	if n == 0 {
		return metrics.Breakdown{}
	}
	b.Read /= float64(n)
	b.Comm /= float64(n)
	b.Compute /= float64(n)
	b.Wait /= float64(n)
	return b
}

// PhaseSpans returns the merged busy spans of the given phases across
// tracks with the prefix — the trace-derived analogue of
// metrics.Recorder.Spans, feeding metrics.OverlapDuration (Figure 11).
func PhaseSpans(events []Event, trackPrefix string, phases ...metrics.Phase) []metrics.Span {
	want := map[metrics.Phase]bool{}
	for _, p := range phases {
		want[p] = true
	}
	var raw []metrics.Span
	for _, ev := range events {
		if ev.Ph != PhaseSpan || ev.Cat != CatPhase || !strings.HasPrefix(ev.Track, trackPrefix) {
			continue
		}
		if ph, ok := phaseByName(ev.Name); ok && want[ph] {
			raw = append(raw, metrics.Span{Start: ev.Ts, End: ev.Ts + ev.Dur})
		}
	}
	return metrics.UnionSpans(raw)
}

// CheckStageOrdering asserts the multi-stage causality invariant: on every
// track, the stage-l compute span must not start before the stage-l
// "ready" instant (the moment the last block of the stage arrived). It
// returns the number of compute spans checked; zero means the trace holds
// no staged computation (an instrumentation bug when one was expected).
func CheckStageOrdering(events []Event) (int, error) {
	ready := map[string]map[int]float64{} // track -> stage -> ts
	for _, ev := range events {
		if ev.Ph != PhaseInstant || ev.Cat != CatStage || ev.Name != "ready" {
			continue
		}
		stage, ok := ev.ArgValue(ArgStage)
		if !ok {
			continue
		}
		m := ready[ev.Track]
		if m == nil {
			m = map[int]float64{}
			ready[ev.Track] = m
		}
		m[int(stage)] = ev.Ts
	}
	checked := 0
	for _, ev := range events {
		if ev.Ph != PhaseSpan || ev.Cat != CatPhase || ev.Name != "compute" {
			continue
		}
		stage, ok := ev.ArgValue(ArgStage)
		if !ok {
			continue
		}
		ts, ok := ready[ev.Track][int(stage)]
		if !ok {
			return checked, fmt.Errorf("trace: %s computes stage %d with no ready event", ev.Track, int(stage))
		}
		// Allow the round-trip quantization of the microsecond encoding.
		if ev.Ts < ts-1e-9*math.Max(1, math.Abs(ts)) {
			return checked, fmt.Errorf("trace: %s starts stage-%d compute at %g before data ready at %g",
				ev.Track, int(stage), ev.Ts, ts)
		}
		checked++
	}
	return checked, nil
}

// CheckReadBeforeCompute asserts the block-reading causality invariant of
// the single-stage schedules (P-EnKF): on every track with the prefix, no
// compute span may start before the last read span has ended. It returns
// the number of tracks checked.
func CheckReadBeforeCompute(events []Event, trackPrefix string) (int, error) {
	type bounds struct {
		lastReadEnd       float64
		firstComputeStart float64
		hasRead, hasComp  bool
	}
	byTrack := map[string]*bounds{}
	for _, ev := range events {
		if ev.Ph != PhaseSpan || ev.Cat != CatPhase || !strings.HasPrefix(ev.Track, trackPrefix) {
			continue
		}
		b := byTrack[ev.Track]
		if b == nil {
			b = &bounds{}
			byTrack[ev.Track] = b
		}
		switch ev.Name {
		case "read":
			if end := ev.Ts + ev.Dur; !b.hasRead || end > b.lastReadEnd {
				b.lastReadEnd = end
			}
			b.hasRead = true
		case "compute":
			if !b.hasComp || ev.Ts < b.firstComputeStart {
				b.firstComputeStart = ev.Ts
			}
			b.hasComp = true
		}
	}
	checked := 0
	for track, b := range byTrack {
		if !b.hasRead || !b.hasComp {
			continue
		}
		if b.firstComputeStart < b.lastReadEnd-1e-9*math.Max(1, math.Abs(b.lastReadEnd)) {
			return checked, fmt.Errorf("trace: %s starts compute at %g before reads finish at %g",
				track, b.firstComputeStart, b.lastReadEnd)
		}
		checked++
	}
	return checked, nil
}

// MaxConcurrent returns, per track with the given prefix, the maximum
// number of simultaneously open spans with the given category and name —
// used to assert that per-OST in-flight requests never exceed the
// configured concurrency limit.
func MaxConcurrent(events []Event, trackPrefix, cat, name string) map[string]int {
	type edge struct {
		t     float64
		delta int
	}
	edges := map[string][]edge{}
	for _, ev := range events {
		if ev.Ph != PhaseSpan || ev.Cat != cat || ev.Name != name || !strings.HasPrefix(ev.Track, trackPrefix) {
			continue
		}
		edges[ev.Track] = append(edges[ev.Track],
			edge{t: ev.Ts, delta: +1}, edge{t: ev.Ts + ev.Dur, delta: -1})
	}
	out := map[string]int{}
	for track, es := range edges {
		// Ends sort before starts at equal timestamps: capacity handed
		// from a releasing request to a queued one at the same instant
		// must not double-count.
		sort.Slice(es, func(i, j int) bool {
			if es[i].t != es[j].t {
				return es[i].t < es[j].t
			}
			return es[i].delta < es[j].delta
		})
		cur, max := 0, 0
		for _, e := range es {
			cur += e.delta
			if cur > max {
				max = cur
			}
		}
		out[track] = max
	}
	return out
}
