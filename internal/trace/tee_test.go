package trace

import (
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// blockingSink blocks every Emit until released, then records.
type blockingSink struct {
	release chan struct{}
	mu      sync.Mutex
	events  []Event
}

func (b *blockingSink) Emit(ev Event) {
	<-b.release
	b.mu.Lock()
	b.events = append(b.events, ev)
	b.mu.Unlock()
}

func (b *blockingSink) snapshot() []Event {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]Event(nil), b.events...)
}

func teeEvents(n int) []Event {
	evs := make([]Event, n)
	for i := range evs {
		evs[i] = Event{Track: "p0", Cat: "phase", Name: fmt.Sprintf("e%d", i), Ph: PhaseInstant, Ts: float64(i)}
	}
	return evs
}

// TestTeePrimaryNeverBlocksOrReorders is the fan-out guarantee: with the
// secondary fully stalled, every event still reaches the primary sink
// immediately and in emission order.
func TestTeePrimaryNeverBlocksOrReorders(t *testing.T) {
	primary := NewBuffer()
	sec := &blockingSink{release: make(chan struct{})}
	tee := NewTee(primary, sec)
	defer tee.Close()

	evs := teeEvents(100)
	for _, ev := range evs {
		tee.Emit(ev) // must not block even though sec accepts nothing yet
	}
	if got := primary.Events(); !reflect.DeepEqual(got, evs) {
		t.Fatalf("primary saw %d events, want the %d emitted in order", len(got), len(evs))
	}
	if len(sec.snapshot()) != 0 {
		t.Fatal("stalled secondary received events")
	}
	close(sec.release)
	tee.Flush()
	if got := sec.snapshot(); !reflect.DeepEqual(got, evs) {
		t.Fatalf("secondary saw %d events after flush, want all %d in order", len(got), len(evs))
	}
}

// TestTeeThroughTracer exercises the tee as a tracer sink: the primary
// buffer's contents must be byte-identical to a tracer without the tee.
func TestTeeThroughTracer(t *testing.T) {
	clock := func() float64 { return 0 }

	plain := NewBuffer()
	tr1 := New(clock, plain)
	teed := NewBuffer()
	mon := NewBuffer()
	tee := NewTee(teed, mon)
	tr2 := New(clock, tee)

	for _, tr := range []*Tracer{tr1, tr2} {
		tr.Span("io/g0/r0", "phase", "read", 0, 1, Arg{Key: "stage", Val: 0})
		tr.Instant("comp/x0y0", "stage", "ready", 1)
		tr.Counter("model", "model/t_read", 0, 0.5)
	}
	tee.Close()
	if !reflect.DeepEqual(plain.Events(), teed.Events()) {
		t.Fatal("teed primary diverged from a tee-less tracer")
	}
	if !reflect.DeepEqual(plain.Events(), mon.Events()) {
		t.Fatal("secondary did not receive the full ordered stream")
	}
}

// TestTeeConcurrentEmitters hammers the tee from many goroutines (run
// under -race): every event must arrive exactly once at both sinks, and
// the secondary must preserve the primary's order.
func TestTeeConcurrentEmitters(t *testing.T) {
	primary := NewBuffer()
	sec := NewBuffer()
	tee := NewTee(primary, sec)
	tr := New(func() float64 { return 0 }, tee)

	const workers, per = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				tr.Instant(fmt.Sprintf("p%d", w), "phase", "tick", float64(i))
			}
		}(w)
	}
	wg.Wait()
	tee.Flush()
	tee.Close()
	if primary.Len() != workers*per || sec.Len() != workers*per {
		t.Fatalf("primary %d / secondary %d events, want %d each", primary.Len(), sec.Len(), workers*per)
	}
	if !reflect.DeepEqual(primary.Events(), sec.Events()) {
		t.Fatal("secondary order diverged from primary order")
	}
}

func TestTeeNilSides(t *testing.T) {
	// Monitor-only: nil primary.
	sec := NewBuffer()
	tee := NewTee(nil, sec)
	tee.Emit(Event{Name: "a"})
	tee.Flush()
	tee.Close()
	if sec.Len() != 1 {
		t.Fatalf("secondary got %d events, want 1", sec.Len())
	}
	// Pass-through: nil secondary.
	primary := NewBuffer()
	tee = NewTee(primary, nil)
	tee.Emit(Event{Name: "b"})
	tee.Flush()
	tee.Close()
	if primary.Len() != 1 {
		t.Fatalf("primary got %d events, want 1", primary.Len())
	}
}

// TestRegistryConcurrentWriters drives counters, gauges and histograms
// from many goroutines while snapshots are taken concurrently — the race
// detector is the assertion, plus exact final totals.
func TestRegistryConcurrentWriters(t *testing.T) {
	reg := NewRegistry()
	const workers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				reg.Inc("shared.count")
				reg.Add("shared.bytes", 2)
				reg.SetGauge("shared.gauge", float64(i))
				reg.Observe("shared.hist", float64(i)*1e-5)
				if i%100 == 0 {
					_ = reg.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := reg.CounterValue("shared.count"); got != workers*per {
		t.Fatalf("shared.count = %g, want %d", got, workers*per)
	}
	if got := reg.CounterValue("shared.bytes"); got != 2*workers*per {
		t.Fatalf("shared.bytes = %g, want %d", got, 2*workers*per)
	}
	s := reg.Snapshot()
	for _, h := range s.Histograms {
		if h.Name == "shared.hist" && h.Count != workers*per {
			t.Fatalf("histogram count = %d, want %d", h.Count, workers*per)
		}
	}
}

func TestWritePrometheus(t *testing.T) {
	reg := NewRegistry()
	reg.Add("parfs.requests", 42)
	reg.SetGauge("model/t_read", 0.25)
	reg.SetGauge("model/t_read", 0.125)
	reg.DeclareHistogram("monitor/read_latency", []float64{0.1, 1})
	reg.Observe("monitor/read_latency", 0.05)
	reg.Observe("monitor/read_latency", 0.5)
	reg.Observe("monitor/read_latency", 5)

	var b strings.Builder
	if err := reg.WritePrometheus(&b, "senkf_"); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE senkf_parfs_requests counter\nsenkf_parfs_requests 42\n",
		"senkf_model_t_read 0.125\n",
		"senkf_model_t_read_max 0.25\n",
		`senkf_monitor_read_latency_bucket{le="0.1"} 1`,
		`senkf_monitor_read_latency_bucket{le="1"} 2`,
		`senkf_monitor_read_latency_bucket{le="+Inf"} 3`,
		"senkf_monitor_read_latency_sum 5.55\n",
		"senkf_monitor_read_latency_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("Prometheus output missing %q:\n%s", want, out)
		}
	}
}
