package critpath

import (
	"math"
	"testing"

	"senkf/internal/trace"
)

func phase(track, name string, start, dur float64, args ...trace.Arg) trace.Event {
	return trace.Event{Track: track, Cat: trace.CatPhase, Name: name,
		Ph: trace.PhaseSpan, Ts: start, Dur: dur, Args: args}
}

func stageArg(l int) trace.Arg { return trace.Arg{Key: trace.ArgStage, Val: float64(l)} }

func near(a, b float64) bool { return math.Abs(a-b) <= 1e-9*math.Max(1, math.Abs(b)) }

// A reader → scatter → compute chain: the path must follow the compute
// span back through the comm that released it into the read that fed the
// comm, and its segments must tile the full end-to-end interval.
func TestExtractFollowsReleaseChain(t *testing.T) {
	events := []trace.Event{
		phase("io/g0/r0", "read", 0, 2),
		phase("io/g0/r0", "comm", 2, 1),
		phase("comp/x0y0", "wait", 0, 3),
		phase("comp/x0y0", "compute", 3, 5),
	}
	p, err := Extract(events)
	if err != nil {
		t.Fatal(err)
	}
	if !near(p.Start, 0) || !near(p.End, 8) {
		t.Fatalf("path bounds [%g, %g], want [0, 8]", p.Start, p.End)
	}
	if !near(p.Total(), 8) {
		t.Fatalf("Total() = %g, want 8 (must equal End-Start)", p.Total())
	}
	want := []struct {
		track, name string
	}{
		{"io/g0/r0", "read"},
		{"io/g0/r0", "comm"},
		{"comp/x0y0", "compute"},
	}
	if len(p.Segments) != len(want) {
		t.Fatalf("got %d segments %v, want %d", len(p.Segments), p.Segments, len(want))
	}
	for i, w := range want {
		if p.Segments[i].Track != w.track || p.Segments[i].Name != w.name {
			t.Errorf("segment %d = %s/%s, want %s/%s",
				i, p.Segments[i].Track, p.Segments[i].Name, w.track, w.name)
		}
	}
	attr := p.Attribution()
	if !near(attr["io/read"], 2) || !near(attr["io/comm"], 1) || !near(attr["comp/compute"], 5) {
		t.Fatalf("attribution = %v", attr)
	}
	// The wait span overlaps the chain but must not be attributed: every
	// second goes to exactly one activity.
	var sum float64
	for _, v := range attr {
		sum += v
	}
	if !near(sum, 8) {
		t.Fatalf("attribution sums to %g, want 8", sum)
	}
}

// A gap no span covers is bridged by a synthetic blocked segment, keeping
// the tiling exact.
func TestExtractBridgesGaps(t *testing.T) {
	events := []trace.Event{
		phase("io/g0/r0", "read", 0, 2),
		// nothing happens in [2, 3]: queued on an unmodelled resource
		phase("comp/x0y0", "compute", 3, 4),
	}
	p, err := Extract(events)
	if err != nil {
		t.Fatal(err)
	}
	if !near(p.Total(), 7) {
		t.Fatalf("Total() = %g, want 7", p.Total())
	}
	var blocked float64
	for _, s := range p.Segments {
		if s.Name == BlockedName {
			blocked += s.Duration()
		}
	}
	if !near(blocked, 1) {
		t.Fatalf("blocked time = %g, want 1 (the [2,3] gap)", blocked)
	}
}

// Truncated spans (negative duration, left behind by ranks that died
// mid-phase) must neither anchor the walk nor derail it.
func TestExtractIgnoresTruncatedSpans(t *testing.T) {
	events := []trace.Event{
		phase("io/g0/r0", "read", 0, 2),
		phase("io/g0/r1", "read", 100, -100), // dead rank: open span closed at death
		phase("comp/x0y0", "compute", 2, 3),
	}
	p, err := Extract(events)
	if err != nil {
		t.Fatal(err)
	}
	if !near(p.End, 5) {
		t.Fatalf("path ends at %g, want 5 (the truncated span must not anchor)", p.End)
	}
	if !near(p.Total(), 5) {
		t.Fatalf("Total() = %g, want 5", p.Total())
	}
}

func TestExtractEmptyTrace(t *testing.T) {
	if _, err := Extract(nil); err == nil {
		t.Fatal("want error on empty trace")
	}
	// Instants alone are not a critical path either.
	events := []trace.Event{{Track: "model", Cat: trace.CatModel, Name: "prediction", Ph: trace.PhaseInstant}}
	if _, err := Extract(events); err == nil {
		t.Fatal("want error on span-free trace")
	}
}

// Deterministic anchor among ties: the longest last-ending span wins.
func TestExtractAnchorTieBreak(t *testing.T) {
	events := []trace.Event{
		phase("comp/x1y0", "compute", 4, 4),
		phase("comp/x0y0", "compute", 6, 2),
	}
	p, err := Extract(events)
	if err != nil {
		t.Fatal(err)
	}
	lastSeg := p.Segments[len(p.Segments)-1]
	if lastSeg.Track != "comp/x1y0" {
		t.Fatalf("anchor = %s, want comp/x1y0 (longest of the ties)", lastSeg.Track)
	}
}

func TestStageOverlaps(t *testing.T) {
	events := []trace.Event{
		// Stage 0 I/O is exposed (no compute yet), stage 1 fully hidden.
		phase("io/g0/r0", "read", 0, 2, stageArg(0)),
		phase("io/g0/r0", "read", 2, 2, stageArg(1)),
		phase("comp/x0y0", "compute", 2, 4, stageArg(0)),
	}
	stages := StageOverlaps(events)
	if len(stages) != 2 {
		t.Fatalf("got %d stages, want 2: %v", len(stages), stages)
	}
	if stages[0].Stage != 0 || !near(stages[0].Efficiency, 0) {
		t.Errorf("stage 0 = %+v, want efficiency 0", stages[0])
	}
	if stages[1].Stage != 1 || !near(stages[1].Efficiency, 1) {
		t.Errorf("stage 1 = %+v, want efficiency 1", stages[1])
	}
	if e := PipelineEfficiency(stages); !near(e, 1) {
		t.Errorf("PipelineEfficiency = %g, want 1", e)
	}
	// Untagged I/O spans: no stage accounting at all.
	if got := StageOverlaps([]trace.Event{phase("io/g0/r0", "read", 0, 1)}); got != nil {
		t.Errorf("untagged spans produced stages: %v", got)
	}
	// No stages >= 1: a single-stage run has no pipeline to be inefficient.
	if e := PipelineEfficiency([]StageOverlap{{Stage: 0, IOBusy: 5}}); e != 1 {
		t.Errorf("single-stage PipelineEfficiency = %g, want 1", e)
	}
}
