// Package critpath extracts the critical path of a traced run and
// attributes end-to-end time to phases per processor class.
//
// The schedules emit one phase span per activity per processor track
// (internal/trace conventions, see analyze.go). The critical path is the
// chain of activities that bounds the end-to-end time: starting from the
// span that finishes last — the final local analysis of the slowest
// compute processor — the extractor walks backwards in time, at every
// step following the activity that released the current one:
//
//   - an earlier span on the same track that ends exactly where the
//     current one starts (the processor was continuously busy), or
//   - a span on another track ending at that instant (the data the
//     current activity waited for: the comm span of the I/O processor
//     that produced the stage-ready notification, the OST service that
//     completed the read, ...), or
//   - when no span ends there, a synthetic "blocked" segment bridging the
//     gap back to the latest span that ends before it (time the whole
//     chain spent queued on a resource none of the phase spans cover).
//
// The resulting segments tile the interval from the chain's origin to the
// run's end, so the segment durations sum to the end-to-end wall time —
// the property the run reports assert (within 1%) and the reason the
// per-phase attribution is trustworthy: every second of the run is
// charged to exactly one activity class.
//
// The same package derives the per-stage overlap efficiency of the §4.2
// multi-stage pipeline: for every stage, how much of its I/O activity
// (reading + communication, stage-tagged spans on the I/O tracks) was
// hidden behind local analysis. In the ideal pipeline only stage 0 is
// exposed; the efficiency of stages ≥ 1 measures how closely a run
// approaches that.
package critpath

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"senkf/internal/metrics"
	"senkf/internal/trace"
)

// BlockedName is the synthetic segment name for gaps on the critical path
// not covered by any phase span.
const BlockedName = "blocked"

// Segment is one activity on the critical path.
type Segment struct {
	Track string  `json:"track"`
	Name  string  `json:"name"` // phase name, or BlockedName for gaps
	Start float64 `json:"start"`
	End   float64 `json:"end"`
	Stage int     `json:"stage"` // stage index of the span, -1 when untagged
}

// Duration returns the segment length.
func (s Segment) Duration() float64 { return s.End - s.Start }

// Class returns the processor-class prefix of the segment's track ("io",
// "comp", ...): everything up to the first '/'.
func (s Segment) Class() string {
	if i := strings.IndexByte(s.Track, '/'); i >= 0 {
		return s.Track[:i]
	}
	return s.Track
}

// Path is an extracted critical path: segments in increasing time order,
// tiling [Start, End] exactly.
type Path struct {
	Start    float64   `json:"start"`
	End      float64   `json:"end"`
	Segments []Segment `json:"segments"`
}

// Total returns the summed segment duration — by construction equal to
// End − Start.
func (p Path) Total() float64 {
	var t float64
	for _, s := range p.Segments {
		t += s.Duration()
	}
	return t
}

// Attribution sums critical-path time per "<class>/<name>" key, e.g.
// "comp/compute", "io/read", "comp/blocked" — where the end-to-end time
// actually went.
func (p Path) Attribution() map[string]float64 {
	out := map[string]float64{}
	for _, s := range p.Segments {
		out[s.Class()+"/"+s.Name] += s.Duration()
	}
	return out
}

// tol is the relative timestamp tolerance for "ends exactly at": the
// microsecond quantization of the Chrome round trip, scaled to the
// magnitude of the timestamp.
func tol(t float64) float64 { return 1e-9 * math.Max(1, math.Abs(t)) }

// span is a phase span prepared for extraction.
type span struct {
	track      string
	name       string
	start, end float64
	stage      int
}

// better ranks candidate releasing spans: busy beats wait, then the
// current track (continuous busy chain), then the longest, then track
// order for determinism.
func better(s, pick span, curTrack string) bool {
	if sw, pw := s.name == "wait", pick.name == "wait"; sw != pw {
		return pw
	}
	if sSame, pSame := s.track == curTrack, pick.track == curTrack; sSame != pSame {
		return sSame
	}
	if d, pd := s.end-s.start, pick.end-pick.start; d != pd {
		return d > pd
	}
	return s.track < pick.track
}

// phaseSpans collects the clamped phase spans of all tracks, sorted by
// end time. Truncated spans (negative duration) are clamped to zero
// length so a rank that died mid-phase cannot anchor the walk.
func phaseSpans(events []trace.Event) []span {
	var out []span
	for _, ev := range events {
		if ev.Ph != trace.PhaseSpan || ev.Cat != trace.CatPhase {
			continue
		}
		s := span{track: ev.Track, name: ev.Name, start: ev.Ts, end: ev.Ts + ev.Dur, stage: -1}
		if s.end < s.start {
			s.end = s.start
		}
		if st, ok := ev.ArgValue(trace.ArgStage); ok {
			s.stage = int(st)
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].end != out[j].end {
			return out[i].end < out[j].end
		}
		if out[i].start != out[j].start {
			return out[i].start < out[j].start
		}
		return out[i].track < out[j].track
	})
	return out
}

// Extract computes the critical path of the traced run. It needs at least
// one phase span; traces of untraced or span-free runs return an error.
func Extract(events []trace.Event) (Path, error) {
	spans := phaseSpans(events)
	if len(spans) == 0 {
		return Path{}, fmt.Errorf("critpath: no phase spans in trace")
	}
	// Anchor: the positive-duration span that ends last — zero-length spans
	// (clamped truncations from dead ranks) cannot bound the run. Among
	// ties the longest (it bounds more of the run), then lexicographically
	// first track for determinism.
	anchorAt := -1
	for i := len(spans) - 1; i >= 0; i-- {
		if spans[i].end > spans[i].start {
			anchorAt = i
			break
		}
	}
	if anchorAt < 0 {
		return Path{}, fmt.Errorf("critpath: no positive-duration phase spans in trace")
	}
	last := spans[anchorAt]
	for i := anchorAt - 1; i >= 0; i-- {
		s := spans[i]
		if s.end < last.end-tol(last.end) {
			break
		}
		if d, ld := s.end-s.start, last.end-last.start; d > ld || (d == ld && s.track < last.track) {
			last = s
		}
	}
	var segs []Segment
	cur := last
	segs = append(segs, Segment{Track: cur.track, Name: cur.name, Start: cur.start, End: cur.end, Stage: cur.stage})
	cursor := cur.start
	for {
		// Candidates ending at the cursor. spans is sorted by end; binary
		// search the window [cursor-tol, cursor+tol].
		eps := tol(cursor)
		lo := sort.Search(len(spans), func(i int) bool { return spans[i].end >= cursor-eps })
		hi := sort.Search(len(spans), func(i int) bool { return spans[i].end > cursor+eps })
		var pick *span
		for i := lo; i < hi; i++ {
			s := spans[i]
			if s.start >= cursor-eps { // no progress: zero-length at cursor
				continue
			}
			if pick == nil {
				c := s
				pick = &c
				continue
			}
			// A wait span is the symptom of blocking, never its cause:
			// any busy span ending here outranks it. Among equals, prefer
			// staying on the current track (continuous busy chain), then
			// the longest releasing span, then track order.
			if better(s, *pick, cur.track) {
				c := s
				pick = &c
			}
		}
		if pick == nil {
			// Nothing ends at the cursor: either the chain origin, or a gap
			// to bridge with a synthetic blocked segment.
			if lo == 0 {
				break
			}
			prev := spans[lo-1] // latest span ending strictly before cursor
			segs = append(segs, Segment{Track: cur.track, Name: BlockedName, Start: prev.end, End: cursor, Stage: -1})
			cursor = prev.end
			continue
		}
		cur = *pick
		segs = append(segs, Segment{Track: cur.track, Name: cur.name, Start: cur.start, End: cur.end, Stage: cur.stage})
		cursor = cur.start
	}
	// Reverse into increasing time order and seal the tiling: each
	// segment's end must be the next segment's start.
	for i, j := 0, len(segs)-1; i < j; i, j = i+1, j-1 {
		segs[i], segs[j] = segs[j], segs[i]
	}
	for i := 1; i < len(segs); i++ {
		segs[i-1].End = segs[i].Start
	}
	return Path{Start: segs[0].Start, End: segs[len(segs)-1].End, Segments: segs}, nil
}

// StageOverlap is the hidden-I/O accounting of one pipeline stage.
type StageOverlap struct {
	Stage      int     `json:"stage"`
	IOBusy     float64 `json:"io_busy"`    // union busy time of the stage's read+comm spans
	Hidden     float64 `json:"hidden"`     // part overlapped with local analysis
	Efficiency float64 `json:"efficiency"` // Hidden / IOBusy (0 when idle)
}

// StageOverlaps computes, per stage, how much of the I/O processors'
// stage-tagged read+comm activity proceeded concurrently with local
// analysis. Stages are discovered from the trace; runs whose I/O spans
// carry no stage tags return nil.
func StageOverlaps(events []trace.Event) []StageOverlap {
	perStage := map[int][]metrics.Span{}
	var compute []metrics.Span
	for _, ev := range events {
		if ev.Ph != trace.PhaseSpan || ev.Cat != trace.CatPhase {
			continue
		}
		if strings.HasPrefix(ev.Track, metrics.ComputePrefix) && ev.Name == "compute" {
			compute = append(compute, metrics.Span{Start: ev.Ts, End: ev.Ts + ev.Dur})
			continue
		}
		if !strings.HasPrefix(ev.Track, metrics.IOPrefix) || (ev.Name != "read" && ev.Name != "comm") {
			continue
		}
		st, ok := ev.ArgValue(trace.ArgStage)
		if !ok {
			continue
		}
		perStage[int(st)] = append(perStage[int(st)], metrics.Span{Start: ev.Ts, End: ev.Ts + ev.Dur})
	}
	if len(perStage) == 0 {
		return nil
	}
	cp := metrics.UnionSpans(compute)
	stages := make([]int, 0, len(perStage))
	for s := range perStage {
		stages = append(stages, s)
	}
	sort.Ints(stages)
	out := make([]StageOverlap, 0, len(stages))
	for _, s := range stages {
		io := metrics.UnionSpans(perStage[s])
		busy := metrics.SpanTotal(io)
		hidden := metrics.OverlapDuration(io, cp)
		if hidden > busy { // clamp: accounting noise must not report >100%
			hidden = busy
		}
		so := StageOverlap{Stage: s, IOBusy: busy, Hidden: hidden}
		if busy > 0 {
			so.Efficiency = hidden / busy
		}
		out = append(out, so)
	}
	return out
}

// PipelineEfficiency reduces the per-stage accounting to the §4.2 ideal:
// stage 0 fills the pipeline and is unavoidably exposed; stages ≥ 1
// should be fully hidden. It returns the hidden share of the stage-≥1 I/O
// busy time (1 when there are no such stages — a single-stage run has no
// pipeline to be inefficient).
func PipelineEfficiency(stages []StageOverlap) float64 {
	var busy, hidden float64
	for _, s := range stages {
		if s.Stage == 0 {
			continue
		}
		busy += s.IOBusy
		hidden += s.Hidden
	}
	if busy == 0 {
		return 1
	}
	return hidden / busy
}
