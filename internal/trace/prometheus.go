// Prometheus text-format rendering of a registry snapshot, so the live
// monitor can expose the same counters/gauges/histograms the post-hoc
// table and CSV writers render — scrapeable at /metrics.

package trace

import (
	"fmt"
	"io"
	"strings"
)

// promName maps a registry name ("parfs.ost.queue", "monitor/read_latency")
// to a legal Prometheus metric name under the given prefix: every character
// outside [a-zA-Z0-9_:] becomes '_'.
func promName(prefix, name string) string {
	var b strings.Builder
	b.Grow(len(prefix) + len(name))
	b.WriteString(prefix)
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if b.Len() == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

func promValue(v float64) string { return fmt.Sprintf("%g", v) }

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4) with every metric name prefixed. Counters render
// as `counter`, gauges as `gauge` (with a companion `<name>_max` gauge for
// the high-water mark), and histograms as `histogram` with cumulative
// `_bucket{le=...}` series, `_sum`, and `_count`.
func (r *Registry) WritePrometheus(w io.Writer, prefix string) error {
	return r.Snapshot().WritePrometheus(w, prefix)
}

// WritePrometheus renders the snapshot in the Prometheus text format.
func (s Snapshot) WritePrometheus(w io.Writer, prefix string) error {
	for _, c := range s.Counters {
		n := promName(prefix, c.Name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %s\n", n, n, promValue(c.Value)); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		n := promName(prefix, g.Name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", n, n, promValue(g.Value)); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s_max gauge\n%s_max %s\n", n, n, promValue(g.HighWater)); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		n := promName(prefix, h.Name)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", n); err != nil {
			return err
		}
		// Registry counts are per-bucket; Prometheus buckets are cumulative.
		var cum int64
		for i, c := range h.Counts {
			cum += c
			le := "+Inf"
			if i < len(h.Buckets) {
				le = promValue(h.Buckets[i])
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", n, le, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", n, promValue(h.Sum), n, h.Count); err != nil {
			return err
		}
	}
	return nil
}
