// The counter registry: named monotonic counters, gauges with high-water
// marks, and fixed-bucket histograms, accumulated from hot paths and
// rendered as an aligned text table or CSV. Counters are independent of
// span sinks so `-counters` costs nothing but a map update per increment.

package trace

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
)

// DefaultBuckets are the histogram bucket upper bounds used when a
// histogram is not declared explicitly: decades from 1 µs to 1000 s,
// suiting both simulated service times and wall-clock phases.
var DefaultBuckets = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10, 100, 1000}

type gaugeState struct {
	cur, max float64
	set      bool
}

type histState struct {
	buckets []float64 // upper bounds; an implicit +Inf bucket follows
	counts  []int64   // len(buckets)+1
	n       int64
	sum     float64
}

// Registry accumulates counters, gauges and histograms. All methods are
// nil-receiver-safe no-ops and safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	counters map[string]float64
	gauges   map[string]*gaugeState
	hists    map[string]*histState
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]float64{},
		gauges:   map[string]*gaugeState{},
		hists:    map[string]*histState{},
	}
}

// Add increments the named monotonic counter by d.
func (r *Registry) Add(name string, d float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.counters[name] += d
	r.mu.Unlock()
}

// Inc increments the named counter by one.
func (r *Registry) Inc(name string) { r.Add(name, 1) }

// SetGauge sets the named gauge, tracking its high-water mark.
func (r *Registry) SetGauge(name string, v float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	g := r.gauges[name]
	if g == nil {
		g = &gaugeState{}
		r.gauges[name] = g
	}
	g.cur = v
	if !g.set || v > g.max {
		g.max = v
	}
	g.set = true
	r.mu.Unlock()
}

// DeclareHistogram fixes the bucket upper bounds of the named histogram.
// Must be called before the first Observe to take effect; bounds must be
// strictly increasing.
func (r *Registry) DeclareHistogram(name string, buckets []float64) {
	if r == nil || len(buckets) == 0 {
		return
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("trace: histogram %s buckets not increasing at %d", name, i))
		}
	}
	r.mu.Lock()
	if _, ok := r.hists[name]; !ok {
		r.hists[name] = &histState{
			buckets: append([]float64(nil), buckets...),
			counts:  make([]int64, len(buckets)+1),
		}
	}
	r.mu.Unlock()
}

// Observe records v into the named histogram, creating it with
// DefaultBuckets if it was not declared.
func (r *Registry) Observe(name string, v float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	h := r.hists[name]
	if h == nil {
		h = &histState{
			buckets: DefaultBuckets,
			counts:  make([]int64, len(DefaultBuckets)+1),
		}
		r.hists[name] = h
	}
	i := sort.SearchFloat64s(h.buckets, v)
	h.counts[i]++
	h.n++
	h.sum += v
	r.mu.Unlock()
}

// CounterValue returns the named counter (0 when absent or nil).
func (r *Registry) CounterValue(name string) float64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters[name]
}

// GaugeMax returns the high-water mark of the named gauge (0 when absent).
func (r *Registry) GaugeMax(name string) float64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g := r.gauges[name]; g != nil {
		return g.max
	}
	return 0
}

// CounterSnapshot is one counter row of a snapshot.
type CounterSnapshot struct {
	Name  string
	Value float64
}

// GaugeSnapshot is one gauge row of a snapshot.
type GaugeSnapshot struct {
	Name      string
	Value     float64
	HighWater float64
}

// HistogramSnapshot is one histogram of a snapshot.
type HistogramSnapshot struct {
	Name    string
	Buckets []float64 // upper bounds; Counts has one extra +Inf bucket
	Counts  []int64
	Count   int64
	Sum     float64
}

// Mean returns the mean observed value (0 when empty).
func (h HistogramSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Snapshot is a consistent, sorted copy of the registry contents.
type Snapshot struct {
	Counters   []CounterSnapshot
	Gauges     []GaugeSnapshot
	Histograms []HistogramSnapshot
}

// Snapshot copies the registry under its lock.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, v := range r.counters {
		s.Counters = append(s.Counters, CounterSnapshot{Name: name, Value: v})
	}
	for name, g := range r.gauges {
		s.Gauges = append(s.Gauges, GaugeSnapshot{Name: name, Value: g.cur, HighWater: g.max})
	}
	for name, h := range r.hists {
		s.Histograms = append(s.Histograms, HistogramSnapshot{
			Name:    name,
			Buckets: append([]float64(nil), h.buckets...),
			Counts:  append([]int64(nil), h.counts...),
			Count:   h.n,
			Sum:     h.sum,
		})
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

func fmtValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.6g", v)
}

// WriteTable renders the registry as aligned text tables.
func (r *Registry) WriteTable(w io.Writer) error { return r.Snapshot().WriteTable(w) }

// WriteTable renders the snapshot as aligned text tables.
func (s Snapshot) WriteTable(w io.Writer) error {
	if len(s.Counters) > 0 {
		width := len("counter")
		for _, c := range s.Counters {
			if len(c.Name) > width {
				width = len(c.Name)
			}
		}
		if _, err := fmt.Fprintf(w, "%-*s | value\n", width, "counter"); err != nil {
			return err
		}
		for _, c := range s.Counters {
			if _, err := fmt.Fprintf(w, "%-*s | %s\n", width, c.Name, fmtValue(c.Value)); err != nil {
				return err
			}
		}
	}
	if len(s.Gauges) > 0 {
		width := len("gauge")
		for _, g := range s.Gauges {
			if len(g.Name) > width {
				width = len(g.Name)
			}
		}
		if _, err := fmt.Fprintf(w, "%-*s | value | high-water\n", width, "gauge"); err != nil {
			return err
		}
		for _, g := range s.Gauges {
			if _, err := fmt.Fprintf(w, "%-*s | %s | %s\n", width, g.Name, fmtValue(g.Value), fmtValue(g.HighWater)); err != nil {
				return err
			}
		}
	}
	for _, h := range s.Histograms {
		if _, err := fmt.Fprintf(w, "histogram %s: n=%d mean=%s\n", h.Name, h.Count, fmtValue(h.Mean())); err != nil {
			return err
		}
		for i, c := range h.Counts {
			if c == 0 {
				continue
			}
			var bound string
			if i < len(h.Buckets) {
				bound = fmt.Sprintf("<= %s", fmtValue(h.Buckets[i]))
			} else {
				bound = "> last bucket"
			}
			if _, err := fmt.Fprintf(w, "  %-14s %d\n", bound, c); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteCSV renders the registry as CSV with columns kind,name,field,value.
func (r *Registry) WriteCSV(w io.Writer) error { return r.Snapshot().WriteCSV(w) }

// WriteCSV renders the snapshot as CSV with columns kind,name,field,value.
func (s Snapshot) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "kind,name,field,value"); err != nil {
		return err
	}
	esc := func(v string) string {
		if strings.ContainsAny(v, ",\"\n") {
			return `"` + strings.ReplaceAll(v, `"`, `""`) + `"`
		}
		return v
	}
	for _, c := range s.Counters {
		if _, err := fmt.Fprintf(w, "counter,%s,value,%s\n", esc(c.Name), fmtValue(c.Value)); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		if _, err := fmt.Fprintf(w, "gauge,%s,value,%s\n", esc(g.Name), fmtValue(g.Value)); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "gauge,%s,high-water,%s\n", esc(g.Name), fmtValue(g.HighWater)); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		if _, err := fmt.Fprintf(w, "histogram,%s,count,%d\n", esc(h.Name), h.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "histogram,%s,sum,%s\n", esc(h.Name), fmtValue(h.Sum)); err != nil {
			return err
		}
		for i, c := range h.Counts {
			var bound string
			if i < len(h.Buckets) {
				bound = fmt.Sprintf("le_%s", fmtValue(h.Buckets[i]))
			} else {
				bound = "le_inf"
			}
			if _, err := fmt.Fprintf(w, "histogram,%s,%s,%d\n", esc(h.Name), bound, c); err != nil {
				return err
			}
		}
	}
	return nil
}
