// Edge cases of the trace-derived analysis: span-free traces, single-stage
// (L=1) runs whose pipeline degenerates, and resilient runs that drop
// members and leave truncated spans behind. These are external tests
// (package trace_test) because they drive real simulated schedules.

package trace_test

import (
	"testing"

	"senkf/internal/costmodel"
	"senkf/internal/faults"
	"senkf/internal/metrics"
	"senkf/internal/parfs"
	"senkf/internal/schedule"
	"senkf/internal/trace"
	"senkf/internal/trace/critpath"
)

func edgeConfig() schedule.Config {
	return schedule.Config{
		P: costmodel.Params{
			N: 24, NX: 360, NY: 180,
			A: 2e-6, B: 2e-10, C: 2e-3,
			Theta: 0.5e-9, Xi: 8, Eta: 4, H: 240,
		},
		FS: parfs.Config{
			OSTs:              8,
			ConcurrencyPerOST: 2,
			SeekTime:          1e-4,
			ByteTime:          0.5e-9,
			BackboneStreams:   12,
		},
	}
}

func tracedSEnKF(t *testing.T, cfg schedule.Config, ch costmodel.Choice) ([]trace.Event, schedule.Result) {
	t.Helper()
	buf := trace.NewBuffer()
	cfg.Tracer = trace.New(nil, buf)
	res, err := schedule.SimulateSEnKF(cfg, ch)
	if err != nil {
		t.Fatal(err)
	}
	return buf.Events(), res
}

// Every analysis function must return its zero value on an empty or
// span-free trace instead of panicking or inventing data.
func TestAnalyzeZeroSpanTrace(t *testing.T) {
	for name, events := range map[string][]trace.Event{
		"empty": nil,
		"instants-only": {
			{Track: "model", Cat: trace.CatModel, Name: "prediction", Ph: trace.PhaseInstant},
			{Track: "io/g0/r0", Cat: trace.CatStage, Name: "ready", Ph: trace.PhaseInstant},
		},
	} {
		t.Run(name, func(t *testing.T) {
			if got := trace.Tracks(events, metrics.IOPrefix); len(got) != 0 {
				t.Errorf("Tracks = %v", got)
			}
			if b := trace.PhaseBreakdown(events, metrics.IOPrefix); b != (metrics.Breakdown{}) {
				t.Errorf("PhaseBreakdown = %+v", b)
			}
			if b := trace.MeanPhaseBreakdown(events, metrics.ComputePrefix); b != (metrics.Breakdown{}) {
				t.Errorf("MeanPhaseBreakdown = %+v", b)
			}
			if s := trace.PhaseSpans(events, metrics.IOPrefix, metrics.PhaseRead); len(s) != 0 {
				t.Errorf("PhaseSpans = %v", s)
			}
			if n, err := trace.CheckStageOrdering(events); n != 0 || err != nil {
				t.Errorf("CheckStageOrdering = %d, %v", n, err)
			}
			if n, err := trace.CheckReadBeforeCompute(events, metrics.ComputePrefix); n != 0 || err != nil {
				t.Errorf("CheckReadBeforeCompute = %d, %v", n, err)
			}
			if m := trace.MaxConcurrent(events, "ost", trace.CatOST, "service"); len(m) != 0 {
				t.Errorf("MaxConcurrent = %v", m)
			}
			if s := critpath.StageOverlaps(events); s != nil {
				t.Errorf("StageOverlaps = %v", s)
			}
		})
	}
}

// A single-stage run (L=1) has no pipeline: exactly one stage in the
// overlap accounting, efficiency 1 by definition, and the causality checks
// still hold.
func TestAnalyzeSingleStageRun(t *testing.T) {
	cfg := edgeConfig()
	ch := costmodel.Choice{NSdx: 4, NSdy: 3, L: 1, NCg: 2}
	if !cfg.P.Feasible(ch) {
		t.Fatal("choice infeasible")
	}
	events, res := tracedSEnKF(t, cfg, ch)
	if res.Runtime <= 0 {
		t.Fatalf("runtime = %g", res.Runtime)
	}
	if n, err := trace.CheckStageOrdering(events); err != nil || n == 0 {
		t.Fatalf("CheckStageOrdering = %d, %v", n, err)
	}
	stages := critpath.StageOverlaps(events)
	if len(stages) != 1 || stages[0].Stage != 0 {
		t.Fatalf("StageOverlaps = %v, want exactly stage 0", stages)
	}
	if e := critpath.PipelineEfficiency(stages); e != 1 {
		t.Fatalf("PipelineEfficiency = %g, want 1 (no stages past the fill)", e)
	}
	// The critical path must still tile end-to-end.
	p, err := critpath.Extract(events)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := p.Total(), p.End-p.Start; got != want {
		t.Fatalf("path Total %g != End-Start %g", got, want)
	}
}

// A resilient run that drops members must still produce analyzable traces:
// non-negative breakdowns and an overlap share within [0, 1] even though
// failed ranks leave truncated spans behind.
func TestAnalyzeRunWithDroppedMembers(t *testing.T) {
	cfg := edgeConfig()
	ch := costmodel.Choice{NSdx: 4, NSdy: 3, L: 3, NCg: 2}
	if !cfg.P.Feasible(ch) {
		t.Fatal("choice infeasible")
	}
	cfg.Faults = &faults.Plan{FileFaults: []faults.FileFault{
		{Member: 5, Kind: faults.FileCorrupt},
		{Member: 11, Kind: faults.FileMissing},
	}}
	events, res := tracedSEnKF(t, cfg, ch)
	if len(res.DroppedMembers) == 0 {
		t.Fatal("fault plan dropped no members; test is vacuous")
	}
	for _, prefix := range []string{metrics.IOPrefix, metrics.ComputePrefix} {
		b := trace.PhaseBreakdown(events, prefix)
		if b.Read < 0 || b.Comm < 0 || b.Compute < 0 || b.Wait < 0 {
			t.Fatalf("%s breakdown has negative phases: %+v", prefix, b)
		}
	}
	io := trace.PhaseSpans(events, metrics.IOPrefix, metrics.PhaseRead, metrics.PhaseComm)
	cp := trace.PhaseSpans(events, metrics.ComputePrefix, metrics.PhaseCompute)
	busy := metrics.SpanTotal(io)
	if busy <= 0 {
		t.Fatal("no I/O busy time in a degraded run")
	}
	if share := metrics.OverlapDuration(io, cp) / busy; share < 0 || share > 1 {
		t.Fatalf("overlap share %g outside [0, 1] — truncated spans corrupt the union", share)
	}
	if res.OverlapFraction < 0 || res.OverlapFraction > 1 {
		t.Fatalf("Result.OverlapFraction = %g outside [0, 1]", res.OverlapFraction)
	}
}
