package trace

import "sync"

// Tee is a fan-out Sink: every event goes to the primary sink
// synchronously — in emission order, under the tracer's own lock, exactly
// as if the tee were not there — and to the secondary sink asynchronously
// through an unbounded FIFO drained by one background goroutine. The
// secondary (a live monitor, typically) therefore can never block, slow
// down, or reorder the primary Chrome-trace emission: a stalled secondary
// only grows the queue.
//
// Flush blocks until the secondary has consumed everything emitted so
// far — call it at a run boundary before reading monitor state, so the
// observer's view is complete.
type Tee struct {
	primary   Sink
	secondary Sink

	mu      sync.Mutex
	cond    *sync.Cond
	queue   []Event
	busy    bool // drain goroutine is delivering a batch
	closed  bool
	stopped chan struct{}
}

// NewTee starts the drain goroutine and returns the tee. Either sink may
// be nil (that side is skipped), so a monitor-only tracer needs no
// primary buffer.
func NewTee(primary, secondary Sink) *Tee {
	t := &Tee{primary: primary, secondary: secondary, stopped: make(chan struct{})}
	t.cond = sync.NewCond(&t.mu)
	go t.drain()
	return t
}

// Emit forwards to the primary inline and enqueues for the secondary.
// The tracer serializes Emit calls, so primary ordering is emission order.
func (t *Tee) Emit(ev Event) {
	if t.primary != nil {
		t.primary.Emit(ev)
	}
	if t.secondary == nil {
		return
	}
	t.mu.Lock()
	if !t.closed {
		t.queue = append(t.queue, ev)
		t.cond.Broadcast()
	}
	t.mu.Unlock()
}

// EmitSide enqueues an event for the secondary sink only, skipping the
// primary. Wire telemetry (per-message and per-read instants) goes through
// here so the primary Chrome buffer of an unfaulted run stays byte-identical
// whether or not the wire observers are attached; the live monitor still
// sees every event, in order relative to the Emit stream.
func (t *Tee) EmitSide(ev Event) {
	if t.secondary == nil {
		return
	}
	t.mu.Lock()
	if !t.closed {
		t.queue = append(t.queue, ev)
		t.cond.Broadcast()
	}
	t.mu.Unlock()
}

func (t *Tee) drain() {
	defer close(t.stopped)
	t.mu.Lock()
	for {
		for len(t.queue) == 0 && !t.closed {
			t.cond.Wait()
		}
		if len(t.queue) == 0 && t.closed {
			t.mu.Unlock()
			return
		}
		batch := t.queue
		t.queue = nil
		t.busy = true
		t.mu.Unlock()
		for _, ev := range batch {
			t.secondary.Emit(ev)
		}
		t.mu.Lock()
		t.busy = false
		t.cond.Broadcast()
	}
}

// Flush blocks until every event emitted before the call has been
// delivered to the secondary sink.
func (t *Tee) Flush() {
	if t.secondary == nil {
		return
	}
	t.mu.Lock()
	for len(t.queue) > 0 || t.busy {
		t.cond.Wait()
	}
	t.mu.Unlock()
}

// Close flushes and stops the drain goroutine. Events emitted after Close
// still reach the primary but are dropped for the secondary.
func (t *Tee) Close() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.closed = true
	t.cond.Broadcast()
	t.mu.Unlock()
	if t.secondary != nil {
		<-t.stopped
	}
}
