package trace

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"senkf/internal/metrics"
)

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	if tr.Detail() {
		t.Fatal("nil tracer reports detail")
	}
	if tr.Now() != 0 {
		t.Fatal("nil tracer Now != 0")
	}
	if tr.Counters() != nil {
		t.Fatal("nil tracer has counters")
	}
	// None of these may panic.
	tr.Span("a", "b", "c", 0, 1)
	tr.Instant("a", "b", "c", 0)
	tr.Counter("a", "c", 0, 1)
	tr.SetDetail(true)
	tr.SetCounters(NewRegistry())
}

func TestTracerNoSinksDisabled(t *testing.T) {
	tr := New(nil)
	if tr.Enabled() {
		t.Fatal("sink-less tracer reports enabled")
	}
	// Counters still work without span sinks.
	reg := NewRegistry()
	tr.SetCounters(reg)
	tr.Counters().Inc("x")
	if got := reg.CounterValue("x"); got != 1 {
		t.Fatalf("counter via sink-less tracer = %v, want 1", got)
	}
}

func TestBufferCollectsEvents(t *testing.T) {
	buf := NewBuffer()
	tr := New(nil, buf)
	if !tr.Enabled() {
		t.Fatal("tracer with sink not enabled")
	}
	tr.Span("cpu0", "phase", "compute", 1.0, 2.5, Arg{Key: "stage", Val: 3})
	tr.Instant("cpu0", "stage", "ready", 0.5, Arg{Key: "stage", Val: 3})
	tr.Counter("res", "queue", 1.5, 4)
	if buf.Len() != 3 {
		t.Fatalf("buffer holds %d events, want 3", buf.Len())
	}
	evs := buf.Events()
	if evs[0].Ph != PhaseSpan || evs[0].Dur != 1.5 {
		t.Fatalf("span event wrong: %+v", evs[0])
	}
	if v, ok := evs[0].ArgValue("stage"); !ok || v != 3 {
		t.Fatalf("span arg wrong: %+v", evs[0].Args)
	}
	if evs[1].Ph != PhaseInstant || evs[1].Ts != 0.5 {
		t.Fatalf("instant event wrong: %+v", evs[1])
	}
	if evs[2].Ph != PhaseCounter {
		t.Fatalf("counter event wrong: %+v", evs[2])
	}
	if v, ok := evs[2].ArgValue("value"); !ok || v != 4 {
		t.Fatalf("counter value wrong: %+v", evs[2].Args)
	}
}

func TestDetailGating(t *testing.T) {
	tr := New(nil, NewBuffer())
	if tr.Detail() {
		t.Fatal("detail on by default")
	}
	tr.SetDetail(true)
	if !tr.Detail() {
		t.Fatal("detail not enabled")
	}
	// Detail requires a sink: a sink-less tracer never reports detail.
	bare := New(nil)
	bare.SetDetail(true)
	if bare.Detail() {
		t.Fatal("sink-less tracer reports detail")
	}
}

func TestChromeRoundTrip(t *testing.T) {
	events := []Event{
		{Track: "comp/x0y0", Cat: "phase", Name: "compute", Ph: PhaseSpan, Ts: 1.25, Dur: 0.5,
			Args: []Arg{{Key: "stage", Val: 2}}},
		{Track: "io/g0/r1", Cat: "phase", Name: "read", Ph: PhaseSpan, Ts: 0, Dur: 1},
		{Track: "comp/x0y0", Cat: "stage", Name: "ready", Ph: PhaseInstant, Ts: 1.0,
			Args: []Arg{{Key: "stage", Val: 2}}},
		{Track: "ost0", Cat: "counter", Name: "queue", Ph: PhaseCounter, Ts: 2,
			Args: []Arg{{Key: "value", Val: 7}}},
	}
	var out bytes.Buffer
	if err := WriteChrome(&out, events); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	// The output must be valid JSON of the expected shape.
	var generic map[string]any
	if err := json.Unmarshal(out.Bytes(), &generic); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	arr, ok := generic["traceEvents"].([]any)
	if !ok {
		t.Fatalf("no traceEvents array in %q", out.String())
	}
	// 3 distinct tracks -> 3 metadata events + 4 payload events.
	if len(arr) != 7 {
		t.Fatalf("traceEvents has %d entries, want 7", len(arr))
	}

	back, err := ReadChrome(bytes.NewReader(out.Bytes()))
	if err != nil {
		t.Fatalf("ReadChrome: %v", err)
	}
	if len(back) != len(events) {
		t.Fatalf("round trip returned %d events, want %d", len(back), len(events))
	}
	for i, ev := range events {
		got := back[i]
		if got.Track != ev.Track || got.Cat != ev.Cat || got.Name != ev.Name || got.Ph != ev.Ph {
			t.Fatalf("event %d identity changed: got %+v want %+v", i, got, ev)
		}
		if math.Abs(got.Ts-ev.Ts) > 1e-9 || math.Abs(got.Dur-ev.Dur) > 1e-9 {
			t.Fatalf("event %d time changed: got ts=%v dur=%v want ts=%v dur=%v",
				i, got.Ts, got.Dur, ev.Ts, ev.Dur)
		}
		if len(got.Args) != len(ev.Args) {
			t.Fatalf("event %d args changed: got %+v want %+v", i, got.Args, ev.Args)
		}
		for _, a := range ev.Args {
			if v, ok := got.ArgValue(a.Key); !ok || v != a.Val {
				t.Fatalf("event %d arg %s: got %v want %v", i, a.Key, v, a.Val)
			}
		}
	}
}

func TestChromeWriteEmpty(t *testing.T) {
	var out bytes.Buffer
	if err := WriteChrome(&out, nil); err != nil {
		t.Fatalf("WriteChrome(nil): %v", err)
	}
	back, err := ReadChrome(bytes.NewReader(out.Bytes()))
	if err != nil {
		t.Fatalf("ReadChrome: %v", err)
	}
	if len(back) != 0 {
		t.Fatalf("empty trace round-tripped to %d events", len(back))
	}
}

func TestRegistryCountersGaugesHistograms(t *testing.T) {
	r := NewRegistry()
	r.Inc("a")
	r.Add("a", 2)
	r.Add("b", 0.5)
	if got := r.CounterValue("a"); got != 3 {
		t.Fatalf("counter a = %v, want 3", got)
	}
	r.SetGauge("g", 5)
	r.SetGauge("g", 2)
	if got := r.GaugeMax("g"); got != 5 {
		t.Fatalf("gauge high-water = %v, want 5", got)
	}
	r.DeclareHistogram("h", []float64{1, 10})
	r.Observe("h", 0.5)
	r.Observe("h", 5)
	r.Observe("h", 50)
	s := r.Snapshot()
	if len(s.Counters) != 2 || s.Counters[0].Name != "a" || s.Counters[1].Name != "b" {
		t.Fatalf("snapshot counters wrong: %+v", s.Counters)
	}
	if len(s.Gauges) != 1 || s.Gauges[0].Value != 2 || s.Gauges[0].HighWater != 5 {
		t.Fatalf("snapshot gauges wrong: %+v", s.Gauges)
	}
	if len(s.Histograms) != 1 {
		t.Fatalf("snapshot histograms wrong: %+v", s.Histograms)
	}
	h := s.Histograms[0]
	if h.Count != 3 || h.Sum != 55.5 {
		t.Fatalf("histogram totals wrong: %+v", h)
	}
	want := []int64{1, 1, 1}
	for i, c := range h.Counts {
		if c != want[i] {
			t.Fatalf("histogram counts = %v, want %v", h.Counts, want)
		}
	}
	if math.Abs(h.Mean()-18.5) > 1e-12 {
		t.Fatalf("histogram mean = %v, want 18.5", h.Mean())
	}

	// Nil registry: all no-ops, zero reads.
	var nilReg *Registry
	nilReg.Inc("x")
	nilReg.SetGauge("x", 1)
	nilReg.Observe("x", 1)
	if nilReg.CounterValue("x") != 0 || nilReg.GaugeMax("x") != 0 {
		t.Fatal("nil registry returned nonzero")
	}
	if len(nilReg.Snapshot().Counters) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}
}

func TestRegistryRender(t *testing.T) {
	r := NewRegistry()
	r.Add("mpi.bytes", 4096)
	r.SetGauge("mailbox.depth", 3)
	r.Observe("ost.service", 0.002)

	var table bytes.Buffer
	if err := r.WriteTable(&table); err != nil {
		t.Fatalf("WriteTable: %v", err)
	}
	for _, want := range []string{"mpi.bytes", "4096", "mailbox.depth", "histogram ost.service"} {
		if !strings.Contains(table.String(), want) {
			t.Fatalf("table output missing %q:\n%s", want, table.String())
		}
	}

	var csv bytes.Buffer
	if err := r.WriteCSV(&csv); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if lines[0] != "kind,name,field,value" {
		t.Fatalf("csv header = %q", lines[0])
	}
	if !strings.Contains(csv.String(), "counter,mpi.bytes,value,4096") {
		t.Fatalf("csv missing counter row:\n%s", csv.String())
	}
	if !strings.Contains(csv.String(), "gauge,mailbox.depth,high-water,3") {
		t.Fatalf("csv missing gauge row:\n%s", csv.String())
	}
}

func TestPhaseBreakdownAndSpans(t *testing.T) {
	events := []Event{
		{Track: "comp/x0y0", Cat: "phase", Name: "compute", Ph: PhaseSpan, Ts: 0, Dur: 2},
		{Track: "comp/x0y0", Cat: "phase", Name: "wait", Ph: PhaseSpan, Ts: 2, Dur: 1},
		{Track: "comp/x1y0", Cat: "phase", Name: "compute", Ph: PhaseSpan, Ts: 1, Dur: 2},
		{Track: "io/g0/r0", Cat: "phase", Name: "read", Ph: PhaseSpan, Ts: 0, Dur: 4},
		// Non-phase events must be ignored.
		{Track: "comp/x0y0", Cat: "stage", Name: "ready", Ph: PhaseInstant, Ts: 0.5},
		{Track: "ost0", Cat: "ost", Name: "service", Ph: PhaseSpan, Ts: 0, Dur: 9},
	}
	b := PhaseBreakdown(events, "comp")
	if b.Compute != 4 || b.Wait != 1 || b.Read != 0 {
		t.Fatalf("PhaseBreakdown = %+v", b)
	}
	mb := MeanPhaseBreakdown(events, "comp")
	if mb.Compute != 2 || mb.Wait != 0.5 {
		t.Fatalf("MeanPhaseBreakdown = %+v", mb)
	}
	if got := MeanPhaseBreakdown(events, "nosuch"); got != (metrics.Breakdown{}) {
		t.Fatalf("MeanPhaseBreakdown of empty prefix = %+v", got)
	}
	tracks := Tracks(events, "comp")
	if len(tracks) != 2 || tracks[0] != "comp/x0y0" || tracks[1] != "comp/x1y0" {
		t.Fatalf("Tracks = %v", tracks)
	}
	spans := PhaseSpans(events, "comp", metrics.PhaseCompute)
	// [0,2] and [1,3] merge to [0,3].
	if len(spans) != 1 || spans[0].Start != 0 || spans[0].End != 3 {
		t.Fatalf("PhaseSpans = %+v", spans)
	}
}

func TestCheckStageOrdering(t *testing.T) {
	good := []Event{
		{Track: "comp/x0y0", Cat: "stage", Name: "ready", Ph: PhaseInstant, Ts: 1, Args: []Arg{{Key: "stage", Val: 0}}},
		{Track: "comp/x0y0", Cat: "phase", Name: "compute", Ph: PhaseSpan, Ts: 1, Dur: 2, Args: []Arg{{Key: "stage", Val: 0}}},
		{Track: "comp/x0y0", Cat: "stage", Name: "ready", Ph: PhaseInstant, Ts: 2, Args: []Arg{{Key: "stage", Val: 1}}},
		{Track: "comp/x0y0", Cat: "phase", Name: "compute", Ph: PhaseSpan, Ts: 3, Dur: 2, Args: []Arg{{Key: "stage", Val: 1}}},
	}
	n, err := CheckStageOrdering(good)
	if err != nil || n != 2 {
		t.Fatalf("good trace: n=%d err=%v", n, err)
	}

	bad := append([]Event(nil), good...)
	bad[3].Ts = 1.5 // stage-1 compute before its ready instant at t=2
	if _, err := CheckStageOrdering(bad); err == nil {
		t.Fatal("out-of-order compute not detected")
	}

	orphan := []Event{
		{Track: "comp/x0y0", Cat: "phase", Name: "compute", Ph: PhaseSpan, Ts: 0, Dur: 1, Args: []Arg{{Key: "stage", Val: 5}}},
	}
	if _, err := CheckStageOrdering(orphan); err == nil {
		t.Fatal("compute without ready event not detected")
	}
}

func TestCheckReadBeforeCompute(t *testing.T) {
	good := []Event{
		{Track: "comp/x0y0", Cat: "phase", Name: "read", Ph: PhaseSpan, Ts: 0, Dur: 1},
		{Track: "comp/x0y0", Cat: "phase", Name: "read", Ph: PhaseSpan, Ts: 1, Dur: 1},
		{Track: "comp/x0y0", Cat: "phase", Name: "compute", Ph: PhaseSpan, Ts: 2, Dur: 3},
	}
	n, err := CheckReadBeforeCompute(good, "comp")
	if err != nil || n != 1 {
		t.Fatalf("good trace: n=%d err=%v", n, err)
	}
	bad := append([]Event(nil), good...)
	bad[2].Ts = 1.5
	if _, err := CheckReadBeforeCompute(bad, "comp"); err == nil {
		t.Fatal("compute-before-read-finished not detected")
	}
}

func TestMaxConcurrent(t *testing.T) {
	events := []Event{
		{Track: "ost0", Cat: "ost", Name: "service", Ph: PhaseSpan, Ts: 0, Dur: 2},
		{Track: "ost0", Cat: "ost", Name: "service", Ph: PhaseSpan, Ts: 1, Dur: 2},
		// Starts exactly when the first ends: handoff, not overlap.
		{Track: "ost0", Cat: "ost", Name: "service", Ph: PhaseSpan, Ts: 2, Dur: 1},
		{Track: "ost1", Cat: "ost", Name: "service", Ph: PhaseSpan, Ts: 0, Dur: 5},
	}
	got := MaxConcurrent(events, "ost", "ost", "service")
	if got["ost0"] != 2 {
		t.Fatalf("ost0 max concurrency = %d, want 2", got["ost0"])
	}
	if got["ost1"] != 1 {
		t.Fatalf("ost1 max concurrency = %d, want 1", got["ost1"])
	}
}
