// Package trace is the structured observability layer of the repository:
// a low-overhead event/span emission API with pluggable sinks, clocked by
// either the discrete-event virtual clock (simulated schedules) or wall
// time (real executions).
//
// Every instrumented subsystem — the event engine (internal/sim), the
// message-passing runtime (internal/mpi), the parallel file system model
// (internal/parfs) and the EnKF schedules themselves (internal/schedule,
// internal/core, internal/baseline) — emits onto a shared Tracer:
//
//   - spans ('X' in the Chrome trace-event vocabulary): phase activity of a
//     processor, an OST servicing a request, a rank blocked in a receive;
//   - instants ('i'): stage-data-ready notifications, helper-thread
//     handoffs, backbone throttle events, process park/wake;
//   - counter samples ('C'): resource queue depths, mailbox lengths.
//
// Events carry a Track (one per simulated processor, OST, or MPI rank), so
// a trace loads in Perfetto/chrome://tracing as one row per processor —
// the event structure behind the paper's Figures 9 and 11 made visible.
// The same events feed trace-derived verification (see analyze.go): the
// overlap percentage and phase breakdowns are recomputed from the trace
// and checked against metrics.Recorder, and causality/limit invariants are
// asserted.
//
// A nil *Tracer is the disabled fast path: every method is a nil-receiver
// no-op, and hot call sites additionally guard with Enabled() so disabled
// runs pay only a pointer comparison.
package trace

import (
	"sync"
	"time"
)

// Arg is one key/value annotation on an event. Values are float64 so
// events stay allocation-light and serialize directly to Chrome JSON.
type Arg struct {
	Key string
	Val float64
}

// Event phases, following the Chrome trace-event vocabulary.
const (
	PhaseSpan    = 'X' // complete event: Ts..Ts+Dur
	PhaseInstant = 'i' // point event at Ts
	PhaseCounter = 'C' // counter sample at Ts
)

// Event is one emitted trace record. Times are in seconds (virtual or
// wall, depending on the tracer's clock).
type Event struct {
	Track string // one track per processor / OST / rank
	Cat   string // category: "phase", "stage", "ost", "sim", "mpi", ...
	Name  string
	Ph    byte    // PhaseSpan, PhaseInstant or PhaseCounter
	Ts    float64 // start time, seconds
	Dur   float64 // duration, seconds (spans only)
	Args  []Arg
}

// Sink receives emitted events. Implementations must be safe for
// sequential use under the tracer's lock; the tracer serializes Emit
// calls.
type Sink interface {
	Emit(Event)
}

// Tracer fans events out to its sinks and optionally accumulates hot-path
// counters in a Registry. All methods are safe on a nil receiver (no-op)
// and safe for concurrent use (real executions emit from many goroutines).
type Tracer struct {
	mu       sync.Mutex
	clock    func() float64
	sinks    []Sink
	detail   bool
	counters *Registry
}

// New creates a tracer over the given clock and sinks. A nil clock
// defaults to wall time since the call to New — the right choice for real
// executions; simulated schedules pass explicit virtual timestamps and
// never consult the clock.
func New(clock func() float64, sinks ...Sink) *Tracer {
	if clock == nil {
		clock = WallClock()
	}
	return &Tracer{clock: clock, sinks: sinks}
}

// WallClock returns a clock measuring seconds since the call.
func WallClock() func() float64 {
	t0 := time.Now()
	return func() float64 { return time.Since(t0).Seconds() }
}

// SetDetail toggles high-volume instrumentation (process park/wake,
// per-mailbox queue depths). Off by default: detail events dominate event
// counts at the 12,000-processor scale.
func (t *Tracer) SetDetail(on bool) {
	if t != nil {
		t.detail = on
	}
}

// SetCounters attaches a counter registry. Counters accumulate even when
// the tracer has no span sinks, so `-counters` works without `-trace`.
func (t *Tracer) SetCounters(r *Registry) {
	if t != nil {
		t.counters = r
	}
}

// Counters returns the attached registry (nil-safe; may return nil).
func (t *Tracer) Counters() *Registry {
	if t == nil {
		return nil
	}
	return t.counters
}

// Enabled reports whether span/instant emission reaches any sink. Hot
// call sites guard on this before building Arg lists so the disabled path
// allocates nothing.
func (t *Tracer) Enabled() bool { return t != nil && len(t.sinks) > 0 }

// Detail reports whether high-volume detail events should be emitted.
func (t *Tracer) Detail() bool { return t != nil && t.detail && len(t.sinks) > 0 }

// Now returns the tracer's clock reading (0 on a nil tracer).
func (t *Tracer) Now() float64 {
	if t == nil {
		return 0
	}
	return t.clock()
}

func (t *Tracer) emit(ev Event) {
	t.mu.Lock()
	for _, s := range t.sinks {
		s.Emit(ev)
	}
	t.mu.Unlock()
}

// Span emits a complete event covering [start, end].
func (t *Tracer) Span(track, cat, name string, start, end float64, args ...Arg) {
	if !t.Enabled() {
		return
	}
	t.emit(Event{Track: track, Cat: cat, Name: name, Ph: PhaseSpan, Ts: start, Dur: end - start, Args: args})
}

// Instant emits a point event at ts.
func (t *Tracer) Instant(track, cat, name string, ts float64, args ...Arg) {
	if !t.Enabled() {
		return
	}
	t.emit(Event{Track: track, Cat: cat, Name: name, Ph: PhaseInstant, Ts: ts, Args: args})
}

// Counter emits a counter sample: the named series on the given track has
// value val at ts.
func (t *Tracer) Counter(track, name string, ts, val float64) {
	if !t.Enabled() {
		return
	}
	t.emit(Event{Track: track, Cat: "counter", Name: name, Ph: PhaseCounter, Ts: ts, Args: []Arg{{Key: "value", Val: val}}})
}

// Buffer is a Sink that retains every event in memory, for export
// (WriteChrome) and trace-derived verification (analyze.go).
type Buffer struct {
	mu     sync.Mutex
	events []Event
}

// NewBuffer returns an empty buffer sink.
func NewBuffer() *Buffer { return &Buffer{} }

// Emit appends the event.
func (b *Buffer) Emit(ev Event) {
	b.mu.Lock()
	b.events = append(b.events, ev)
	b.mu.Unlock()
}

// Len returns the number of buffered events.
func (b *Buffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.events)
}

// Events returns a copy of the buffered events in emission order.
func (b *Buffer) Events() []Event {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]Event(nil), b.events...)
}
