// Error classification tests: the monitor duck-types the substrate error
// shapes (a simulated deadlock's BlockedOn, a real run's FailedRank) and
// must decorate the run error with the blamed plan edges — derived from
// the compiled plan's Expect release counts — plus the flight-recorder
// dump.

package monitor_test

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"senkf/internal/grid"
	"senkf/internal/metrics"
	"senkf/internal/monitor"
	"senkf/internal/plan"
	"senkf/internal/trace"
)

// stubDeadlock mimics sim.DeadlockError's shape without importing sim.
type stubDeadlock struct{ blocked map[string]string }

func (s *stubDeadlock) Error() string { return "simulation deadlocked" }

func (s *stubDeadlock) BlockedOn() map[string]string { return s.blocked }

// stubRankDeath mimics mpi.RankFailedError's shape.
type stubRankDeath struct{ rank int }

func (s *stubRankDeath) Error() string   { return fmt.Sprintf("rank %d failed", s.rank) }
func (s *stubRankDeath) FailedRank() int { return s.rank }

func compiled(t *testing.T) *plan.Compiled {
	t.Helper()
	m, err := grid.NewMesh(24, 12)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := grid.NewDecomposition(m, 4, 2, grid.Radius{Xi: 2, Eta: 2})
	if err != nil {
		t.Fatal(err)
	}
	cp, err := plan.Compile(plan.SEnKF(dec, 20, 3, 2))
	if err != nil {
		t.Fatal(err)
	}
	return cp
}

func TestDeadlockErrorNamesAwaitedPlanEdge(t *testing.T) {
	cp := compiled(t)
	dump := filepath.Join(t.TempDir(), "flight.json")
	m := monitor.New(monitor.Options{DumpPath: dump})
	m.BeginRun(cp)
	// A few events in the ring so the dump has content.
	m.Emit(trace.Event{Track: "io/g0/r0", Cat: trace.CatPhase, Ph: trace.PhaseSpan,
		Name: metrics.PhaseRead.String(), Ts: 0, Dur: 0.1,
		Args: []trace.Arg{{Key: trace.ArgStage, Val: 0.0}}})

	cause := &stubDeadlock{blocked: map[string]string{"comp/x0y0": "mailbox:0"}}
	err := m.EndRun(cause)
	if err == nil {
		t.Fatal("EndRun swallowed the deadlock")
	}
	var re *monitor.RunError
	if !errors.As(err, &re) {
		t.Fatalf("EndRun returned %T, want *monitor.RunError", err)
	}
	if !errors.Is(err, error(cause)) {
		t.Error("RunError does not unwrap to the original deadlock")
	}
	if len(re.Edges) == 0 {
		t.Fatal("deadlock carries no blamed plan edge")
	}
	for _, frag := range []string{"-> comp/x0y0", "member blocks expected"} {
		if !strings.Contains(re.Edges[0], frag) {
			t.Errorf("blamed edge %q missing %q", re.Edges[0], frag)
		}
	}
	if !strings.Contains(err.Error(), "waiting on plan edge") {
		t.Errorf("error text lacks the plan-edge context: %v", err)
	}
	if !strings.Contains(err.Error(), "flight recorder") {
		t.Errorf("error text lacks the flight-recorder context: %v", err)
	}
	if _, serr := os.Stat(dump); serr != nil {
		t.Errorf("flight dump not written on deadlock: %v", serr)
	}
}

func TestRankDeathErrorNamesForwardEdge(t *testing.T) {
	cp := compiled(t)
	m := monitor.New(monitor.Options{})
	m.BeginRun(cp)

	ioRank := cp.NumCompute() // world rank of the first I/O rank
	ioName := cp.IO[0].Name
	err := m.EndRun(&stubRankDeath{rank: ioRank})
	var re *monitor.RunError
	if !errors.As(err, &re) {
		t.Fatalf("EndRun returned %T, want *monitor.RunError", err)
	}
	if len(re.Edges) == 0 {
		t.Fatal("rank death carries no blamed plan edge")
	}
	if !strings.Contains(re.Edges[0], ioName+" -> ") {
		t.Errorf("forward edge %q does not start at the dead rank %s", re.Edges[0], ioName)
	}
	st := m.Status()
	found := false
	for _, inc := range st.Incidents {
		if inc.Kind == "rank-death" && inc.Proc == ioName {
			found = true
		}
	}
	if !found {
		t.Errorf("no rank-death incident for %s: %+v", ioName, st.Incidents)
	}
}

func TestEndRunNilIsNil(t *testing.T) {
	m := monitor.New(monitor.Options{})
	m.BeginRun(compiled(t))
	// An empty run is incomplete (divergences), but a nil outcome must
	// stay nil: observation never fails a healthy-by-its-own-account run.
	if err := m.EndRun(nil); err != nil {
		t.Fatalf("EndRun(nil) = %v", err)
	}
	if st := m.Status(); st.Conformance.DivergenceCount == 0 {
		t.Error("eventless run should report incomplete tracks")
	}
}

func TestDivergenceOnWrongSpan(t *testing.T) {
	cp := compiled(t)
	m := monitor.New(monitor.Options{})
	m.BeginRun(cp)
	// The plan expects comp/x0y0's first busy span to be stage 0's
	// compute; a stage-2 compute span out of nowhere must diverge.
	m.Emit(trace.Event{Track: "comp/x0y0", Cat: trace.CatPhase, Ph: trace.PhaseSpan,
		Name: metrics.PhaseCompute.String(), Ts: 0, Dur: 0.1,
		Args: []trace.Arg{{Key: trace.ArgStage, Val: 2.0}}})
	// And a track the plan has never heard of.
	m.Emit(trace.Event{Track: "comp/x9y9", Cat: trace.CatPhase, Ph: trace.PhaseSpan,
		Name: metrics.PhaseCompute.String(), Ts: 0, Dur: 0.1})

	st := m.Status()
	if st.Conformance.DivergenceCount < 2 {
		t.Fatalf("divergences = %d, want >= 2: %v", st.Conformance.DivergenceCount, st.Conformance.Divergences)
	}
	joined := strings.Join(st.Conformance.Divergences, "\n")
	for _, frag := range []string{"comp/x0y0", "unexpected track comp/x9y9"} {
		if !strings.Contains(joined, frag) {
			t.Errorf("divergences missing %q:\n%s", frag, joined)
		}
	}
}

func TestHTTPHandlers(t *testing.T) {
	m := monitor.New(monitor.Options{})
	m.BeginRun(compiled(t))
	m.RecordCycle(monitor.CycleSample{Cycle: 3, AnalysisRMSE: 0.25, Spread: 0.3})

	mw := httptest.NewRecorder()
	m.MetricsHandler().ServeHTTP(mw, httptest.NewRequest("GET", "/metrics", nil))
	if ct := mw.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("metrics content type %q", ct)
	}
	body := mw.Body.String()
	for _, frag := range []string{"senkf_monitor_runs 1", "senkf_cycle_rmse_analysis 0.25", "senkf_cycle_index 3"} {
		if !strings.Contains(body, frag) {
			t.Errorf("/metrics missing %q:\n%s", frag, body)
		}
	}

	sw := httptest.NewRecorder()
	m.StatusHandler().ServeHTTP(sw, httptest.NewRequest("GET", "/status", nil))
	if ct := sw.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("status content type %q", ct)
	}
	var st monitor.Status
	if err := json.Unmarshal(sw.Body.Bytes(), &st); err != nil {
		t.Fatalf("/status is not valid JSON: %v", err)
	}
	if st.WorldSize == 0 || len(st.Cycles) != 1 || st.Cycles[0].Cycle != 3 {
		t.Errorf("status round-trip lost fields: %+v", st)
	}
	// The CI smoke job greps for the always-present empty divergence list.
	if !strings.Contains(sw.Body.String(), `"divergences": []`) {
		t.Errorf("/status lacks the empty divergences list:\n%s", sw.Body.String())
	}
}
