// Real-substrate monitor tests: the same monitor watches a wall-clocked
// core.ExecutePlan run. Without a cost model it falls back to peer-median
// budgets, so an injected wall-clock straggler is caught by comparison
// with its peers.

package monitor_test

import (
	"testing"

	"senkf/internal/core"
	"senkf/internal/enkf"
	"senkf/internal/ensio"
	"senkf/internal/faults"
	"senkf/internal/grid"
	"senkf/internal/monitor"
	"senkf/internal/obs"
	"senkf/internal/trace"
	"senkf/internal/workload"
)

// realProblem builds a tiny on-disk ensemble problem (workload.TestScale).
func realProblem(t *testing.T) (core.Problem, grid.Decomposition) {
	t.Helper()
	ps := workload.TestScale
	m, err := ps.Mesh()
	if err != nil {
		t.Fatal(err)
	}
	truth := workload.Truth(m, workload.DefaultFieldSpec, ps.Seed)
	bg, err := workload.Ensemble(m, truth, ps.Members, ps.Spread, ps.Seed)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, err := ensio.WriteEnsemble(dir, m, bg); err != nil {
		t.Fatal(err)
	}
	net, err := obs.StridedNetwork(m, truth, ps.ObsStride, ps.ObsStride, ps.ObsVar, ps.Seed)
	if err != nil {
		t.Fatal(err)
	}
	cfg := enkf.Config{Mesh: m, Radius: ps.Radius(), N: ps.Members, Seed: ps.Seed}
	dec, err := grid.NewDecomposition(m, 4, 2, cfg.Radius)
	if err != nil {
		t.Fatal(err)
	}
	return core.Problem{Cfg: cfg, Dir: dir, Net: net}, dec
}

func TestMonitorRealRunConformance(t *testing.T) {
	p, dec := realProblem(t)
	m := monitor.New(monitor.Options{})
	defer m.Close()
	buf := trace.NewBuffer()
	p.Tr = trace.New(nil, m.Tee(buf))
	p.Obs = m

	if _, err := core.RunSEnKF(p, core.Plan{Dec: dec, L: 3, NCg: 2}); err != nil {
		t.Fatal(err)
	}
	st := m.Status()
	if !st.Complete {
		t.Errorf("real run not complete: %+v", st.Conformance)
	}
	if st.Conformance.DivergenceCount != 0 {
		t.Errorf("real run diverged: %v", st.Conformance.Divergences)
	}
	if st.Conformance.MatchedSpans == 0 {
		t.Error("no spans folded from the real run")
	}
}

// TestRealStragglerCaughtByPeerMedian dilates one compute rank's busy
// phases on the wall clock (plan-driven fault injection on the real
// substrate) and expects a peer-mode watchdog verdict against it —
// without any cost-model budgets.
func TestRealStragglerCaughtByPeerMedian(t *testing.T) {
	p, dec := realProblem(t)
	const proc = "comp/x0y0"
	p.Faults = &faults.Plan{Stragglers: []faults.Straggler{{Proc: proc, Factor: 100}}}

	m := monitor.New(monitor.Options{})
	defer m.Close()
	buf := trace.NewBuffer()
	p.Tr = trace.New(nil, m.Tee(buf))
	p.Obs = m

	if _, err := core.RunSEnKF(p, core.Plan{Dec: dec, L: 3, NCg: 2}); err != nil {
		t.Fatal(err)
	}
	st := m.Status()
	var hit *monitor.Verdict
	for i := range st.Verdicts {
		if st.Verdicts[i].Proc == proc {
			hit = &st.Verdicts[i]
			break
		}
	}
	if hit == nil {
		t.Fatalf("peer-median watchdog missed %s; verdicts: %+v", proc, st.Verdicts)
	}
	if hit.Mode != "peer" {
		t.Errorf("real run without a model should trip in peer mode, got %q", hit.Mode)
	}
	if hit.Injected != 100 {
		t.Errorf("verdict not correlated with the announced injection: %+v", hit)
	}
	// Dilation stretches time, not structure.
	if st.Conformance.DivergenceCount != 0 {
		t.Errorf("straggler produced plan divergence: %v", st.Conformance.Divergences)
	}
}
