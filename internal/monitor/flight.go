// The flight recorder: a fixed-size ring of the most recent trace events,
// dumped (to a file and/or attached to the wrapped run error) on the
// first anomaly — deadlock, watchdog trip, rank death, or plan
// divergence. The dump is Chrome trace-event JSON, so it replays through
// trace.ReadChrome and folds into a plan.StructuralDAG like any trace.

package monitor

import (
	"fmt"
	"os"
	"strings"

	"senkf/internal/trace"
)

// ring is a fixed-capacity event ring buffer.
type ring struct {
	buf  []trace.Event
	next int
	full bool
}

func newRing(capacity int) *ring {
	return &ring{buf: make([]trace.Event, capacity)}
}

func (r *ring) add(ev trace.Event) {
	r.buf[r.next] = ev
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
}

// events returns the retained events, oldest first.
func (r *ring) events() []trace.Event {
	if !r.full {
		return append([]trace.Event(nil), r.buf[:r.next]...)
	}
	out := make([]trace.Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Incident is one anomaly the monitor observed.
type Incident struct {
	Kind   string  `json:"kind"` // "watchdog", "deadlock", "rank-death", "divergence", "fault"
	Proc   string  `json:"proc,omitempty"`
	Time   float64 `json:"time_s,omitempty"`
	Detail string  `json:"detail"`
	// Edge is the blamed plan edge, when one is derivable.
	Edge string `json:"edge,omitempty"`
}

// incidentLocked records an incident and, when dump is set, triggers the
// flight recorder (first anomaly wins).
func (m *Monitor) incidentLocked(inc Incident, dump bool) {
	m.incidentCount++
	if len(m.incidents) < 64 {
		m.incidents = append(m.incidents, inc)
		if m.opts.Logger != nil {
			m.opts.Logger.Warn("monitor: incident",
				"kind", inc.Kind, "proc", inc.Proc, "detail", inc.Detail, "edge", inc.Edge)
		}
	}
	m.reg.Inc("monitor/incidents")
	if dump {
		m.dumpLocked(inc.Kind)
	}
}

// dumpLocked snapshots the ring (for error attachment and LastDump) and
// writes the dump file if a path is configured. Only the first anomaly
// dumps: the interesting events are the ones leading up to it.
func (m *Monitor) dumpLocked(reason string) {
	if m.dumped {
		return
	}
	m.dumped = true
	// Interleave the sampler's last-N runtime samples with the plan
	// events, so the dump shows GC/heap state at the moment of anomaly.
	m.lastDump = mergeByTs(m.ring.events(), m.runtime.ring.events())
	m.reg.Inc("monitor/flight_dumps")
	if m.opts.AnomalyHook != nil {
		// On its own goroutine: the hook (pprof capture, archival) must
		// not run under the monitor lock in the tee's drain path.
		go m.opts.AnomalyHook(reason)
	}
	if m.opts.DumpPath == "" {
		return
	}
	f, err := os.Create(m.opts.DumpPath)
	if err != nil {
		m.reg.Inc("monitor/flight_dump_errors")
		return
	}
	werr := trace.WriteChrome(f, m.lastDump)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		m.reg.Inc("monitor/flight_dump_errors")
		return
	}
	m.dumpPath = m.opts.DumpPath
	_ = reason
}

// LastDump returns the flight-recorder snapshot taken at the first
// anomaly (nil when none tripped).
func (m *Monitor) LastDump() []trace.Event {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]trace.Event(nil), m.lastDump...)
}

// RunError decorates a failed run's error with the monitor's context: the
// blamed plan edges and the flight-recorder dump.
type RunError struct {
	Err        error
	Edges      []string // blamed plan edges, most relevant first
	DumpPath   string   // flight-recorder dump file ("" when not written)
	DumpEvents int      // events in the attached dump
}

func (e *RunError) Error() string {
	var b strings.Builder
	b.WriteString(e.Err.Error())
	if len(e.Edges) > 0 {
		shown := e.Edges
		if len(shown) > 4 {
			shown = shown[:4]
		}
		fmt.Fprintf(&b, " [monitor: waiting on plan edge %s", strings.Join(shown, "; "))
		if len(e.Edges) > len(shown) {
			fmt.Fprintf(&b, " (+%d more)", len(e.Edges)-len(shown))
		}
		b.WriteString("]")
	}
	if e.DumpEvents > 0 {
		fmt.Fprintf(&b, " [flight recorder: last %d events", e.DumpEvents)
		if e.DumpPath != "" {
			fmt.Fprintf(&b, " -> %s", e.DumpPath)
		}
		b.WriteString("]")
	}
	return b.String()
}

func (e *RunError) Unwrap() error { return e.Err }
