// End-to-end monitor tests on the simulated substrate: the monitor tees
// off a live SimulateSEnKF event stream and must report clean conformance
// on a healthy run, catch injected stragglers against the Eq. 7–10
// budgets, blame plan edges on starvation, and leave the primary trace
// bit-identical to an unmonitored run.

package monitor_test

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"senkf/internal/costmodel"
	"senkf/internal/faults"
	"senkf/internal/monitor"
	"senkf/internal/parfs"
	"senkf/internal/plan"
	"senkf/internal/schedule"
	"senkf/internal/trace"
)

func simConfig() (schedule.Config, costmodel.Choice) {
	cfg := schedule.Config{
		P: costmodel.Params{
			N: 24, NX: 360, NY: 180,
			A: 2e-6, B: 2e-10, C: 2e-3,
			Theta: 0.5e-9, Xi: 8, Eta: 4, H: 240,
		},
		FS: parfs.Config{
			OSTs:              8,
			ConcurrencyPerOST: 2,
			SeekTime:          1e-4,
			ByteTime:          0.5e-9,
			BackboneStreams:   12,
		},
	}
	// 4x3 sub-domains, 6 layers, 4 concurrent groups: multi-stage and
	// multi-group, so every monitor dimension is exercised.
	return cfg, costmodel.Choice{NSdx: 4, NSdy: 3, L: 6, NCg: 4}
}

// attach wires a monitor into the config: the tracer's single sink is a
// tee whose primary is buf (the unchanged Chrome-trace path) and whose
// secondary is the monitor.
func attach(cfg *schedule.Config, m *monitor.Monitor, buf *trace.Buffer) {
	cfg.Tracer = trace.New(nil, m.Tee(buf))
	cfg.Obs = m
}

func TestMonitorCleanSimulatedRun(t *testing.T) {
	cfg, ch := simConfig()
	m := monitor.New(monitor.Options{})
	defer m.Close()
	buf := trace.NewBuffer()
	attach(&cfg, m, buf)

	if _, err := schedule.SimulateSEnKF(cfg, ch); err != nil {
		t.Fatal(err)
	}
	st := m.Status()
	if !st.Complete {
		t.Errorf("healthy run not complete: %+v", st.Conformance)
	}
	if st.Conformance.DivergenceCount != 0 {
		t.Errorf("healthy run diverged: %v", st.Conformance.Divergences)
	}
	if st.Conformance.MatchedSpans == 0 || st.Conformance.MatchedSpans != st.Conformance.ExpectedSpans {
		t.Errorf("spans %d/%d", st.Conformance.MatchedSpans, st.Conformance.ExpectedSpans)
	}
	if st.Conformance.MatchedReady != st.Conformance.ExpectedReady {
		t.Errorf("ready %d/%d", st.Conformance.MatchedReady, st.Conformance.ExpectedReady)
	}
	if len(st.Verdicts) != 0 {
		t.Errorf("healthy run tripped the watchdog: %+v", st.Verdicts)
	}
	// The model/t_* counters of the simulated run must have become budgets.
	for _, k := range []string{"read", "comm", "compute", "wait"} {
		if st.Budgets[k] <= 0 {
			t.Errorf("budget %q not derived from the model counters: %v", k, st.Budgets)
		}
	}
	if st.Algorithm != "senkf" && st.Algorithm != "S-EnKF" {
		t.Logf("algorithm: %q", st.Algorithm) // informational: naming comes from plan.Spec
	}
}

// TestWatchdogCatchesInjectedStraggler is the acceptance e2e: a seeded
// straggler injected through internal/faults into a monitored run must be
// flagged by the watchdog on the right processor within budget × tolerance,
// conformance must report no plan divergence (a slow rank is late, not
// wrong), and the flight-recorder dump must replay into a valid
// structural DAG.
func TestWatchdogCatchesInjectedStraggler(t *testing.T) {
	cfg, ch := simConfig()
	const proc = "io/g0/r0"
	const factor = 12.0
	cfg.Faults = &faults.Plan{Stragglers: []faults.Straggler{{Proc: proc, Factor: factor}}}

	dump := filepath.Join(t.TempDir(), "flight.json")
	m := monitor.New(monitor.Options{DumpPath: dump})
	defer m.Close()
	buf := trace.NewBuffer()
	attach(&cfg, m, buf)

	if _, err := schedule.SimulateSEnKF(cfg, ch); err != nil {
		t.Fatal(err)
	}
	st := m.Status()

	var hit *monitor.Verdict
	for i := range st.Verdicts {
		if st.Verdicts[i].Proc == proc {
			hit = &st.Verdicts[i]
			break
		}
	}
	if hit == nil {
		t.Fatalf("watchdog missed the injected straggler %s; verdicts: %+v", proc, st.Verdicts)
	}
	if hit.Observed <= hit.Budget*hit.Tolerance {
		t.Errorf("verdict not beyond budget x tolerance: %+v", hit)
	}
	if hit.Mode != "model" {
		t.Errorf("simulated run should use model budgets, got %q", hit.Mode)
	}
	if hit.Injected != factor {
		t.Errorf("verdict not correlated with the announced injection: %+v", hit)
	}
	// A straggler is late, not structurally wrong: conformance stays clean.
	if st.Conformance.DivergenceCount != 0 {
		t.Errorf("straggler produced plan divergence: %v", st.Conformance.Divergences)
	}
	if m.Registry().CounterValue("monitor/watchdog_trips") == 0 {
		t.Error("monitor/watchdog_trips counter not incremented")
	}

	// The flight recorder fired and its dump replays into a structural DAG.
	f, err := os.Open(dump)
	if err != nil {
		t.Fatalf("flight dump not written: %v", err)
	}
	defer f.Close()
	evs, err := trace.ReadChrome(f)
	if err != nil {
		t.Fatalf("flight dump is not valid Chrome trace JSON: %v", err)
	}
	if len(evs) == 0 {
		t.Fatal("flight dump is empty")
	}
	dag := plan.StructuralDAG(evs)
	if len(dag) == 0 {
		t.Error("flight dump replays into an empty structural DAG")
	}
	if st.FlightDump != dump {
		t.Errorf("status flight_dump = %q, want %q", st.FlightDump, dump)
	}
}

// TestWaitTripBlamesPlanEdge injects an OST slowdown (every storage target
// degraded) so compute processors starve on their scatter waits: the wait
// verdicts must name the plan edge — which I/O ranks owe which stage.
func TestWaitTripBlamesPlanEdge(t *testing.T) {
	cfg, ch := simConfig()
	pl := &faults.Plan{}
	for ost := 0; ost < cfg.FS.OSTs; ost++ {
		pl.OSTWindows = append(pl.OSTWindows, faults.OSTWindow{
			OST: ost, Start: 0, End: 1e9, Factor: 30,
		})
	}
	cfg.Faults = pl

	m := monitor.New(monitor.Options{})
	defer m.Close()
	buf := trace.NewBuffer()
	attach(&cfg, m, buf)

	if _, err := schedule.SimulateSEnKF(cfg, ch); err != nil {
		t.Fatal(err)
	}
	st := m.Status()
	var wait *monitor.Verdict
	for i := range st.Verdicts {
		if st.Verdicts[i].Phase == "wait" && st.Verdicts[i].Edge != "" {
			wait = &st.Verdicts[i]
			break
		}
	}
	if wait == nil {
		t.Fatalf("no edge-blaming wait verdict; verdicts: %+v", st.Verdicts)
	}
	for _, frag := range []string{"io/", "-> comp/", "member blocks expected"} {
		if !strings.Contains(wait.Edge, frag) {
			t.Errorf("blamed edge %q missing %q", wait.Edge, frag)
		}
	}
}

// TestMonitoredRunIsBitIdentical pins the observation-only contract: with
// no faults, a monitored run must produce the identical primary trace and
// the identical result as an unmonitored run.
func TestMonitoredRunIsBitIdentical(t *testing.T) {
	cfg, ch := simConfig()

	plain := trace.NewBuffer()
	cfgPlain := cfg
	cfgPlain.Tracer = trace.New(nil, plain)
	base, err := schedule.SimulateSEnKF(cfgPlain, ch)
	if err != nil {
		t.Fatal(err)
	}

	m := monitor.New(monitor.Options{})
	defer m.Close()
	teed := trace.NewBuffer()
	cfgMon := cfg
	attach(&cfgMon, m, teed)
	mon, err := schedule.SimulateSEnKF(cfgMon, ch)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(plain.Events(), teed.Events()) {
		t.Errorf("monitored run changed the primary trace: %d vs %d events",
			plain.Len(), teed.Len())
	}
	// Mean breakdowns sum map-ordered floats, so compare the structural
	// quantities exactly.
	if base.Runtime != mon.Runtime || !reflect.DeepEqual(base.FSStats, mon.FSStats) {
		t.Errorf("monitored run changed the result: %+v vs %+v", base, mon)
	}
}
