// The sampler-through-tee concurrency contract, exercised under -race:
// the runtimeobs sampler publishes on its own goroutine through the same
// trace.Tee as the plan events while the monitor consumes on the drain
// side and HTTP-style readers snapshot status. The sampler must never
// block the primary sink, never reorder its instants, and shut down
// cleanly with the final sample delivered — not dropped in the tee.

package monitor

import (
	"testing"
	"time"

	"senkf/internal/runtimeobs"
	"senkf/internal/trace"
)

func TestSamplerThroughTeeConcurrentWithMonitor(t *testing.T) {
	m := New(Options{})
	primary := trace.NewBuffer()
	tr := trace.New(nil, m.Tee(primary))
	reg := trace.NewRegistry()

	s := runtimeobs.NewSampler(runtimeobs.SamplerConfig{
		Tracer: tr, Registry: reg, Interval: 2 * time.Millisecond,
	})
	s.Start()

	// Concurrent consumers: status snapshots (the /status handler's view)
	// and plan events sharing the tee with the sampler.
	stop := make(chan struct{})
	readers := make(chan struct{})
	go func() {
		defer close(readers)
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = m.Status()
			_ = m.RuntimeStatus()
		}
	}()
	for i := 0; i < 200; i++ {
		tr.Span("io/g0/r0", trace.CatPhase, "read", float64(i), float64(i)+0.5)
	}

	time.Sleep(25 * time.Millisecond)
	s.Stop() // takes one final synchronous sample through the still-open tee
	sum := s.Summary()
	close(stop)
	<-readers
	m.Close() // drains the tee's secondary side

	if sum.Samples < 2 {
		t.Fatalf("sampler took %d samples in 25ms at 2ms cadence", sum.Samples)
	}

	// The primary sink received every sample instant inline — including
	// the final one Stop takes — in emission order.
	var instants []trace.Event
	for _, ev := range primary.Events() {
		if ev.Track == trace.RuntimeTrack && ev.Name == runtimeobs.SampleEventName {
			instants = append(instants, ev)
		}
	}
	if len(instants) != sum.Samples {
		t.Fatalf("primary sink saw %d sample instants, sampler took %d (final sample dropped?)",
			len(instants), sum.Samples)
	}
	for i := 1; i < len(instants); i++ {
		if instants[i].Ts < instants[i-1].Ts {
			t.Fatalf("sample instants reordered: Ts %g after %g", instants[i].Ts, instants[i-1].Ts)
		}
	}

	// After Close the monitor folded the identical stream off the drain
	// side — nothing lost between tee and watchdogs.
	rs := m.RuntimeStatus()
	if rs == nil || int(rs.Samples) != sum.Samples {
		t.Fatalf("monitor folded %+v, want %d samples", rs, sum.Samples)
	}

	// Stop is idempotent and the summary stable afterwards.
	s.Stop()
	if again := s.Summary(); again.Samples != sum.Samples {
		t.Errorf("Summary changed after second Stop: %d -> %d", sum.Samples, again.Samples)
	}
}
