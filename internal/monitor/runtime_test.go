package monitor

import (
	"testing"

	"senkf/internal/runtimeobs"
	"senkf/internal/trace"
)

// runtimeSample fabricates one sampler instant as the runtimeobs sampler
// would emit it through the tee.
func runtimeSample(ts float64, args ...trace.Arg) trace.Event {
	return trace.Event{
		Track: trace.RuntimeTrack, Cat: trace.CatRuntime,
		Name: runtimeobs.SampleEventName, Ph: trace.PhaseInstant,
		Ts: ts, Args: args,
	}
}

func arg(key string, v float64) trace.Arg { return trace.Arg{Key: key, Val: v} }

func TestGoroutineLeakWatchdogTripsOnceAfterWindow(t *testing.T) {
	m := New(Options{GoroutineLeakWindow: 3, GoroutineLeakGrowth: 10})
	for i, g := range []float64{100, 105, 110, 115, 120, 125} {
		m.Emit(runtimeSample(float64(i), arg(runtimeobs.ArgGoroutines, g)))
	}
	st := m.Status()
	if len(st.Verdicts) != 1 {
		t.Fatalf("verdicts = %d, want exactly 1 (once per kind): %+v", len(st.Verdicts), st.Verdicts)
	}
	v := st.Verdicts[0]
	if v.Phase != "runtime:goroutine-leak" || v.Mode != "runtime" {
		t.Errorf("verdict = %+v, want runtime:goroutine-leak in runtime mode", v)
	}
	if v.Proc != trace.RuntimeTrack || v.Stage != -1 {
		t.Errorf("blame = (%s, %d), want (%s, -1) with no plan tracked", v.Proc, v.Stage, trace.RuntimeTrack)
	}
	if got := m.reg.CounterValue("monitor/runtime_trips"); got != 1 {
		t.Errorf("runtime_trips = %g, want 1", got)
	}
	if got := m.reg.CounterValue("monitor/watchdog_trips"); got != 1 {
		t.Errorf("watchdog_trips = %g, want 1", got)
	}
	if dump := m.LastDump(); len(dump) == 0 {
		t.Error("runtime trip did not fire the flight recorder")
	}
}

func TestGoroutineLeakResetsOnNonGrowth(t *testing.T) {
	m := New(Options{GoroutineLeakWindow: 3, GoroutineLeakGrowth: 10})
	// Growth windows of length 2 separated by dips never reach the
	// window of 3.
	for i, g := range []float64{100, 110, 120, 90, 100, 110, 80} {
		m.Emit(runtimeSample(float64(i), arg(runtimeobs.ArgGoroutines, g)))
	}
	if st := m.Status(); len(st.Verdicts) != 0 {
		t.Fatalf("bursty-but-settling goroutine counts tripped: %+v", st.Verdicts)
	}
}

func TestHeapGrowthWatchdogTripsWithoutGC(t *testing.T) {
	m := New(Options{HeapGrowthBudget: 1000})
	emit := func(ts, heap, gc float64) {
		m.Emit(runtimeSample(ts,
			arg(runtimeobs.ArgHeapInuse, heap), arg(runtimeobs.ArgGCCycles, gc)))
	}
	emit(0, 1000, 5)
	emit(1, 1800, 5) // +800, under budget
	emit(2, 2500, 5) // +1500 since the gc-5 base: trip
	st := m.Status()
	if len(st.Verdicts) != 1 || st.Verdicts[0].Phase != "runtime:heap-growth" {
		t.Fatalf("verdicts = %+v, want one runtime:heap-growth", st.Verdicts)
	}
	if ob := st.Verdicts[0].Observed; ob != 1500 {
		t.Errorf("observed growth = %g, want 1500", ob)
	}
}

func TestHeapGrowthBaseResetsOnGCCycle(t *testing.T) {
	m := New(Options{HeapGrowthBudget: 1000})
	emit := func(ts, heap, gc float64) {
		m.Emit(runtimeSample(ts,
			arg(runtimeobs.ArgHeapInuse, heap), arg(runtimeobs.ArgGCCycles, gc)))
	}
	emit(0, 1000, 5)
	emit(1, 5000, 6) // big jump, but the GC ran: new base
	emit(2, 5800, 6) // +800 since base, under budget
	if st := m.Status(); len(st.Verdicts) != 0 {
		t.Fatalf("heap growth across a GC cycle tripped: %+v", st.Verdicts)
	}
}

func TestGCPauseWatchdogTrips(t *testing.T) {
	m := New(Options{GCPauseBudget: 0.5})
	m.Emit(runtimeSample(1, arg(runtimeobs.ArgGCPause, 0.7)))
	st := m.Status()
	if len(st.Verdicts) != 1 || st.Verdicts[0].Phase != "runtime:gc-pause" {
		t.Fatalf("verdicts = %+v, want one runtime:gc-pause", st.Verdicts)
	}
	if st.Verdicts[0].Observed != 0.7 || st.Verdicts[0].Budget != 0.5 {
		t.Errorf("verdict = %+v, want observed 0.7 budget 0.5", st.Verdicts[0])
	}
	if len(st.Incidents) != 1 || st.Incidents[0].Kind != "runtime" {
		t.Errorf("incidents = %+v, want one runtime incident", st.Incidents)
	}
}

func TestRuntimeEventsStayOffThePlanRing(t *testing.T) {
	m := New(Options{})
	m.Emit(runtimeSample(1, arg(runtimeobs.ArgGoroutines, 10)))
	m.Emit(runtimeSample(2, arg(runtimeobs.ArgGoroutines, 11)))
	m.mu.Lock()
	planRing, rtRing := len(m.ring.events()), len(m.runtime.ring.events())
	m.mu.Unlock()
	if planRing != 0 {
		t.Errorf("plan ring holds %d runtime events, want 0", planRing)
	}
	if rtRing != 2 {
		t.Errorf("runtime ring holds %d events, want 2", rtRing)
	}
	rs := m.RuntimeStatus()
	if rs == nil || rs.Samples != 2 {
		t.Fatalf("RuntimeStatus = %+v, want 2 samples", rs)
	}
	if rs.Last.Goroutines != 11 || rs.Last.Time != 2 {
		t.Errorf("last sample = %+v, want goroutines 11 at t=2", rs.Last)
	}
	if got := m.reg.CounterValue("monitor/runtime_samples"); got != 2 {
		t.Errorf("runtime_samples = %g, want 2", got)
	}
}

func TestFlightDumpInterleavesRuntimeSamples(t *testing.T) {
	m := New(Options{FlightSize: 8})
	m.Emit(trace.Event{Track: "io/g0/r0", Cat: trace.CatPhase, Name: "read", Ph: trace.PhaseSpan, Ts: 0.5, Dur: 1})
	m.Emit(runtimeSample(1, arg(runtimeobs.ArgGoroutines, 10)))
	m.Emit(trace.Event{Track: "io/g0/r0", Cat: trace.CatPhase, Name: "comm", Ph: trace.PhaseSpan, Ts: 2, Dur: 1})
	m.mu.Lock()
	m.dumpLocked("test")
	m.mu.Unlock()
	dump := m.LastDump()
	if len(dump) != 3 {
		t.Fatalf("dump holds %d events, want 3 (2 plan + 1 runtime)", len(dump))
	}
	for i := 1; i < len(dump); i++ {
		if dump[i].Ts < dump[i-1].Ts {
			t.Fatalf("dump out of time order at %d: %g after %g", i, dump[i].Ts, dump[i-1].Ts)
		}
	}
	if dump[1].Track != trace.RuntimeTrack {
		t.Errorf("middle dump event on track %q, want %q", dump[1].Track, trace.RuntimeTrack)
	}
}
