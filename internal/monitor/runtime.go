// Runtime watchdogs: the monitor's view of the Go runtime underneath the
// schedule. The runtimeobs sampler streams CatRuntime "sample" instants
// through the same tee as the plan events; the monitor folds them into a
// dedicated runtime ring (merged into flight dumps, so an anomaly dump
// shows GC/heap context on the plan's clock) and checks three health
// invariants:
//
//   - goroutine leak: the goroutine count grows monotonically across a
//     window of consecutive samples by more than a floor — plan
//     executions spawn in bursts and settle, so sustained growth means
//     leaked helpers;
//   - heap growth without GC progress: heap-in-use grows past a budget
//     while the GC cycle counter stands still — allocation outrunning
//     collection;
//   - GC-pause budget: a stop-the-world pause longer than the budget,
//     which on the real substrate directly distorts phase spans.
//
// A trip produces a Verdict whose (proc, stage) blames the modal
// in-flight plan stage — the stage most ranks were executing when the
// runtime went bad — and triggers the flight recorder like any other
// anomaly.

package monitor

import (
	"fmt"

	"senkf/internal/runtimeobs"
	"senkf/internal/trace"
)

// Defaults for the runtime watchdog knobs in Options.
const (
	DefaultGCPauseBudget      = 1.0       // seconds of stop-the-world
	DefaultGoroutineLeakWin   = 8         // consecutive growing samples
	DefaultGoroutineLeakGrow  = 256       // goroutines gained across the window
	DefaultHeapGrowthBudget   = 512 << 20 // bytes grown without a GC cycle
	DefaultRuntimeRingSamples = 64        // runtime events kept for flight dumps
)

// RuntimeSample is one parsed sampler reading.
type RuntimeSample struct {
	Time           float64 `json:"time_s"`
	Goroutines     float64 `json:"goroutines"`
	HeapLiveBytes  float64 `json:"heap_live_bytes"`
	HeapInuseBytes float64 `json:"heap_inuse_bytes"`
	HeapGoalBytes  float64 `json:"heap_goal_bytes"`
	GCCycles       float64 `json:"gc_cycles"`
	GCPauseMaxS    float64 `json:"gc_pause_max_s"`
	SchedLatMaxS   float64 `json:"sched_lat_max_s"`
}

// RuntimeStatus is the runtime section of /status.
type RuntimeStatus struct {
	Samples int64         `json:"samples"`
	Last    RuntimeSample `json:"last"`
}

// runtimeState is the monitor's runtime-watchdog bookkeeping.
type runtimeState struct {
	ring    *ring // runtime-track events, merged into flight dumps
	samples int64
	last    RuntimeSample
	have    bool

	gorGrowth int     // consecutive samples with growing goroutine count
	gorBase   float64 // goroutine count at the start of the growth window
	heapBase  float64 // heap-in-use at the last GC-cycle change
	lastGC    float64
	tripped   map[string]bool // watchdog kind -> already tripped
}

// foldRuntimeLocked absorbs one sampler instant: bookkeeping, then the
// three health invariants. Callers hold m.mu.
func (m *Monitor) foldRuntimeLocked(ev trace.Event) {
	s := RuntimeSample{Time: ev.Ts}
	s.Goroutines, _ = ev.ArgValue(runtimeobs.ArgGoroutines)
	s.HeapLiveBytes, _ = ev.ArgValue(runtimeobs.ArgHeapLive)
	s.HeapInuseBytes, _ = ev.ArgValue(runtimeobs.ArgHeapInuse)
	s.HeapGoalBytes, _ = ev.ArgValue(runtimeobs.ArgHeapGoal)
	s.GCCycles, _ = ev.ArgValue(runtimeobs.ArgGCCycles)
	s.GCPauseMaxS, _ = ev.ArgValue(runtimeobs.ArgGCPause)
	s.SchedLatMaxS, _ = ev.ArgValue(runtimeobs.ArgSchedLat)

	rt := &m.runtime
	rt.samples++
	m.reg.Inc("monitor/runtime_samples")
	prev, had := rt.last, rt.have
	rt.last, rt.have = s, true

	// Goroutine leak: count consecutive strictly-growing samples.
	if had && s.Goroutines > prev.Goroutines {
		if rt.gorGrowth == 0 {
			rt.gorBase = prev.Goroutines
		}
		rt.gorGrowth++
		win, grow := m.opts.GoroutineLeakWindow, m.opts.GoroutineLeakGrowth
		if rt.gorGrowth >= win && s.Goroutines-rt.gorBase >= grow {
			m.runtimeTripLocked("goroutine-leak", s.Time, s.Goroutines-rt.gorBase, grow,
				fmt.Sprintf("goroutine count grew %d samples straight, %.0f -> %.0f",
					rt.gorGrowth, rt.gorBase, s.Goroutines))
		}
	} else {
		rt.gorGrowth = 0
	}

	// Heap growth without GC progress.
	if !had || s.GCCycles != rt.lastGC {
		rt.lastGC = s.GCCycles
		rt.heapBase = s.HeapInuseBytes
	} else if grown := s.HeapInuseBytes - rt.heapBase; grown > m.opts.HeapGrowthBudget {
		m.runtimeTripLocked("heap-growth", s.Time, grown, m.opts.HeapGrowthBudget,
			fmt.Sprintf("heap grew %.0f MiB with no GC cycle (%.0f -> %.0f MiB)",
				grown/(1<<20), rt.heapBase/(1<<20), s.HeapInuseBytes/(1<<20)))
	}

	// GC-pause budget.
	if s.GCPauseMaxS > m.opts.GCPauseBudget {
		m.runtimeTripLocked("gc-pause", s.Time, s.GCPauseMaxS, m.opts.GCPauseBudget,
			fmt.Sprintf("stop-the-world pause %.3gs exceeds %.3gs budget",
				s.GCPauseMaxS, m.opts.GCPauseBudget))
	}
}

// runtimeTripLocked records a runtime watchdog verdict, blamed on the
// modal in-flight plan stage, and fires the flight recorder. Each kind
// trips at most once per run.
func (m *Monitor) runtimeTripLocked(kind string, at, observed, budget float64, detail string) {
	rt := &m.runtime
	if rt.tripped == nil {
		rt.tripped = map[string]bool{}
	}
	if rt.tripped[kind] {
		return
	}
	rt.tripped[kind] = true

	proc, stage := m.modalStageLocked()
	v := Verdict{
		Proc: proc, Phase: "runtime:" + kind, Stage: stage,
		Observed: observed, Budget: budget, Tolerance: 1,
		Mode: "runtime", At: at,
	}
	if len(m.verdicts) < 256 {
		m.verdicts = append(m.verdicts, v)
	}
	m.reg.Inc("monitor/watchdog_trips")
	m.reg.Inc("monitor/runtime_trips")
	m.incidentLocked(Incident{
		Kind: "runtime", Proc: proc, Time: at,
		Detail: detail + " (blaming " + v.Phase + fmt.Sprintf(" at stage %d)", stage),
	}, true)
}

// modalStageLocked returns the plan stage most in-flight ranks are
// currently executing, and a representative proc at that stage — the
// best available blame target for a process-wide runtime anomaly.
// Returns (trace.RuntimeTrack, -1) when no plan is being tracked.
func (m *Monitor) modalStageLocked() (string, int) {
	votes := map[int]int{}
	rep := map[int]string{}
	for name, st := range m.tracks {
		if st.unknown || m.dead[name] || st.spanCur >= len(st.exp.Spans) {
			continue
		}
		stage := st.exp.Spans[st.spanCur].Stage
		votes[stage]++
		if cur, ok := rep[stage]; !ok || name < cur {
			rep[stage] = name
		}
	}
	bestStage, bestVotes := -1, 0
	for stage, n := range votes {
		if n > bestVotes || (n == bestVotes && stage < bestStage) {
			bestStage, bestVotes = stage, n
		}
	}
	if bestVotes == 0 {
		return trace.RuntimeTrack, -1
	}
	return rep[bestStage], bestStage
}

// RuntimeStatus snapshots the runtime section (nil when no sampler fed
// the monitor).
func (m *Monitor) RuntimeStatus() *RuntimeStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.runtime.samples == 0 {
		return nil
	}
	return &RuntimeStatus{Samples: m.runtime.samples, Last: m.runtime.last}
}

// mergeByTs merges two time-ordered event slices into one, preserving
// order — used to interleave the runtime ring into flight dumps.
func mergeByTs(a, b []trace.Event) []trace.Event {
	if len(b) == 0 {
		return a
	}
	if len(a) == 0 {
		return b
	}
	out := make([]trace.Event, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i].Ts <= b[j].Ts {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}
