package monitor

import (
	"testing"

	"senkf/internal/trace"
)

func TestRingKeepsLastNOldestFirst(t *testing.T) {
	r := newRing(4)
	if got := r.events(); len(got) != 0 {
		t.Fatalf("fresh ring holds %d events", len(got))
	}
	for i := 0; i < 3; i++ {
		r.add(trace.Event{Ts: float64(i)})
	}
	if got := r.events(); len(got) != 3 || got[0].Ts != 0 || got[2].Ts != 2 {
		t.Fatalf("partial ring: %+v", got)
	}
	for i := 3; i < 11; i++ {
		r.add(trace.Event{Ts: float64(i)})
	}
	got := r.events()
	if len(got) != 4 {
		t.Fatalf("wrapped ring holds %d events, want 4", len(got))
	}
	for i, ev := range got {
		if want := float64(7 + i); ev.Ts != want {
			t.Errorf("event %d: Ts = %g, want %g (oldest first)", i, ev.Ts, want)
		}
	}
}

func TestDumpOnlyOnFirstAnomaly(t *testing.T) {
	m := New(Options{FlightSize: 8})
	m.Emit(trace.Event{Ts: 1})
	m.mu.Lock()
	m.dumpLocked("first")
	n := len(m.lastDump)
	m.mu.Unlock()
	if n != 1 {
		t.Fatalf("first dump snapshot has %d events, want 1", n)
	}
	m.Emit(trace.Event{Ts: 2})
	m.mu.Lock()
	m.dumpLocked("second")
	n = len(m.lastDump)
	m.mu.Unlock()
	if n != 1 {
		t.Errorf("second anomaly overwrote the first dump (now %d events)", n)
	}
}
