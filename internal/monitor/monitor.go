// Package monitor is the live observability layer: it consumes the trace
// event stream of a running plan execution *online* (as the secondary
// side of a trace.Tee, so Chrome-trace emission is untouched) and
// maintains, per run:
//
//   - live plan conformance — every phase span and "ready" release
//     instant is folded incrementally into the same structural signature
//     plan.StructuralDAG extracts post-hoc, and diffed on arrival against
//     the compiled plan's ExpectedDAG: missing/extra spans, out-of-order
//     release edges, and per-rank stage progress are visible while the
//     run executes;
//   - budget watchdogs — per-stage expected durations from the Eq. 7–10
//     cost-model terms (the model/t_* counters the simulated substrate
//     already emits, or costmodel directly via SetBudgets), with a
//     straggler/stall verdict when a stage exceeds budget × tolerance.
//     Real runs without a model prediction fall back to peer-median
//     budgets per (phase, stage);
//   - streaming metrics — read/comm/compute latencies, scatter wait,
//     stage data lead (overlap headroom), and per-OST bytes in a
//     trace.Registry, rendered in Prometheus text format at /metrics and
//     as a JSON conformance summary at /status;
//   - a flight recorder — a fixed-size ring of the most recent trace
//     events, dumped automatically (file + attached to the error) on
//     deadlock, watchdog trip, rank death, or plan divergence.
//
// The package is substrate-free by construction: it depends on plan,
// trace, costmodel and metrics (naming), and duck-types the substrate
// errors (sim.DeadlockError's BlockedOn, mpi.RankFailedError's
// FailedRank) instead of importing sim or mpi. CI enforces the layering.
package monitor

import (
	"log/slog"
	"strings"
	"sync"

	"senkf/internal/costmodel"
	"senkf/internal/metrics"
	"senkf/internal/plan"
	"senkf/internal/runtimeobs"
	"senkf/internal/trace"
)

// Options configures a Monitor.
type Options struct {
	// Tolerance is the watchdog multiplier: a phase tripping exceeds
	// budget × Tolerance. Zero means DefaultTolerance.
	Tolerance float64
	// FlightSize is the flight-recorder ring capacity in events. Zero
	// means DefaultFlightSize.
	FlightSize int
	// DumpPath, when set, is the file the flight recorder writes (Chrome
	// trace-event JSON, replayable through trace.ReadChrome and
	// plan.StructuralDAG) on the first anomaly.
	DumpPath string
	// RunRegistry, when set, is the run's own counter registry, rendered
	// after the monitor's registry at /metrics so one scrape carries both.
	RunRegistry *trace.Registry
	// RunID, when set, labels the monitor's outputs with the invocation's
	// run-ledger identity: /status carries it and /metrics exports it as
	// the senkf_run_info{run_id="..."} info metric.
	RunID string
	// Logger, when set, receives structured log lines for run boundaries,
	// incidents, watchdog verdicts and divergences.
	Logger *slog.Logger
	// AnomalyHook, when set, fires (once, on its own goroutine) when the
	// flight recorder dumps — the run ledger uses it to capture pprof
	// snapshots into the archive while the anomaly is fresh.
	AnomalyHook func(kind string)
	// ScrapeHook, when set, runs at the top of every /metrics request —
	// the run ledger uses it to refresh the baseline go/process gauges so
	// scrapes carry current runtime stats even without the sampler.
	ScrapeHook func()

	// Runtime watchdog knobs (see runtime.go); zero values take the
	// Default* constants.
	GCPauseBudget       float64 // max tolerated stop-the-world pause, seconds
	GoroutineLeakWindow int     // consecutive growing samples before a leak verdict
	GoroutineLeakGrowth float64 // goroutines gained across the window
	HeapGrowthBudget    float64 // bytes of heap growth without a GC cycle
}

// Defaults for Options zero values.
const (
	DefaultTolerance  = 3.0
	DefaultFlightSize = 512
)

// Monitor consumes trace events (as a trace.Sink) and observes run
// boundaries (as a plan.RunObserver). All methods are safe for concurrent
// use: events arrive from the tee's drain goroutine while HTTP handlers
// read state.
type Monitor struct {
	opts Options
	reg  *trace.Registry

	mu  sync.Mutex
	tee *trace.Tee

	// Per-run state, reset by BeginRun.
	cp       *plan.Compiled
	expected map[string]*plan.TrackDAG
	tracks   map[string]*trackState
	feeders  map[string][]stageFeed
	rankName map[int]string
	readyTs  map[string]map[int]float64
	finished bool

	// Watchdog state.
	budgets  map[string]float64 // phase name -> expected seconds per stage
	peers    map[peerKey][]float64
	tripped  map[tripKey]bool
	verdicts []Verdict
	injected map[string]float64 // announced straggler proc -> factor

	// Wire conformance (wire.go): actual vs expected edge matrix, per-OST
	// attribution, fed by the wire collector's side events.
	wire wireState

	// Conformance bookkeeping.
	events      int64
	spans       int64
	divergences []string
	divCount    int
	dead        map[string]bool

	// Incidents + flight recorder.
	incidents     []Incident
	incidentCount int
	ring          *ring
	dumped        bool
	dumpPath      string
	lastDump      []trace.Event

	// Runtime sampler state + watchdogs (runtime.go).
	runtime runtimeState

	// Per-cycle series (senkf-cycle).
	cycles []CycleSample
}

// New returns a monitor with its own streaming-metrics registry.
func New(opts Options) *Monitor {
	if opts.Tolerance <= 0 {
		opts.Tolerance = DefaultTolerance
	}
	if opts.FlightSize <= 0 {
		opts.FlightSize = DefaultFlightSize
	}
	if opts.GCPauseBudget <= 0 {
		opts.GCPauseBudget = DefaultGCPauseBudget
	}
	if opts.GoroutineLeakWindow <= 0 {
		opts.GoroutineLeakWindow = DefaultGoroutineLeakWin
	}
	if opts.GoroutineLeakGrowth <= 0 {
		opts.GoroutineLeakGrowth = DefaultGoroutineLeakGrow
	}
	if opts.HeapGrowthBudget <= 0 {
		opts.HeapGrowthBudget = DefaultHeapGrowthBudget
	}
	return &Monitor{
		opts:     opts,
		reg:      trace.NewRegistry(),
		tracks:   map[string]*trackState{},
		budgets:  map[string]float64{},
		peers:    map[peerKey][]float64{},
		tripped:  map[tripKey]bool{},
		injected: map[string]float64{},
		dead:     map[string]bool{},
		readyTs:  map[string]map[int]float64{},
		ring:     newRing(opts.FlightSize),
		runtime:  runtimeState{ring: newRing(DefaultRuntimeRingSamples)},
	}
}

// Registry returns the monitor's streaming-metrics registry.
func (m *Monitor) Registry() *trace.Registry { return m.reg }

// Tee wraps the given primary sink (nil for monitor-only tracing) in a
// fan-out tee whose secondary is this monitor, remembers the tee so
// EndRun can drain it, and returns it for use as a tracer sink.
func (m *Monitor) Tee(primary trace.Sink) trace.Sink {
	t := trace.NewTee(primary, m)
	m.mu.Lock()
	m.tee = t
	m.mu.Unlock()
	return t
}

// Close stops the tee's drain goroutine (no-op without one).
func (m *Monitor) Close() {
	m.mu.Lock()
	t := m.tee
	m.mu.Unlock()
	if t != nil {
		t.Close()
	}
}

// SetBudgets derives the per-stage watchdog budgets directly from the
// Eq. 7–10 cost model — the real substrate's counterpart of the model/t_*
// counter events a simulated run streams.
func (m *Monitor) SetBudgets(p costmodel.Params, ch costmodel.Choice) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.setBudgetLocked("read", p.TRead(ch))
	m.setBudgetLocked("comm", p.TComm(ch))
	m.setBudgetLocked("compute", p.TComp(ch))
}

func (m *Monitor) setBudgetLocked(phase string, v float64) {
	if v <= 0 {
		return
	}
	m.budgets[phase] = v
	// A stage's data cannot be awaited longer than it takes to produce
	// and ship it: the wait budget is read + comm.
	if r, ok := m.budgets["read"]; ok {
		if c, ok := m.budgets["comm"]; ok {
			m.budgets["wait"] = r + c
		}
	}
}

// BeginRun resets per-run state and derives the expected structure from
// the compiled plan: ExpectedDAG per track, and the release-edge sources
// (which I/O ranks feed which compute rank at which stage, with the
// plan's Expect counts) used to blame plan edges on stalls.
func (m *Monitor) BeginRun(c *plan.Compiled) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cp = c
	m.expected = c.ExpectedDAG()
	m.tracks = make(map[string]*trackState, len(m.expected))
	for name, exp := range m.expected {
		m.tracks[name] = &trackState{exp: exp}
	}
	m.feeders = map[string][]stageFeed{}
	m.rankName = map[int]string{}
	m.readyTs = map[string]map[int]float64{}
	m.finished = false
	m.budgets = map[string]float64{}
	m.peers = map[peerKey][]float64{}
	m.tripped = map[tripKey]bool{}
	m.injected = map[string]float64{}
	m.dead = map[string]bool{}
	m.divergences = nil
	m.divCount = 0
	m.spans = 0
	m.resetWireLocked(c)

	for q := range c.Compute {
		m.rankName[c.Compute[q].Rank] = c.Compute[q].Name
	}
	for q := range c.IO {
		m.rankName[c.IO[q].Rank] = c.IO[q].Name
	}
	// Invert the comm plans: feeders[compute name][stage index] = the I/O
	// ranks whose sends release that stage, plus the plan's Expect count.
	type key struct {
		dst, stage int
	}
	srcs := map[key][]string{}
	for q := range c.IO {
		r := &c.IO[q]
		for _, st := range r.Stages {
			for _, dst := range st.Comm.Dsts {
				k := key{dst, st.Stage}
				srcs[k] = append(srcs[k], r.Name)
			}
		}
	}
	for q := range c.Compute {
		r := &c.Compute[q]
		feeds := make([]stageFeed, 0, len(r.Stages))
		for _, st := range r.Stages {
			if st.Expect == 0 {
				continue
			}
			feeds = append(feeds, stageFeed{
				stage:  st.Stage,
				expect: st.Expect,
				srcs:   srcs[key{r.Rank, st.Stage}],
			})
		}
		m.feeders[r.Name] = feeds
	}
	m.reg.Inc("monitor/runs")
	if m.opts.Logger != nil {
		m.opts.Logger.Info("monitor: run begin",
			"algorithm", string(c.Spec.Algorithm),
			"world_size", c.WorldSize(), "stages", c.Spec.L)
	}
}

// EndRun drains the tee (so the monitor's view is complete), finalizes
// conformance, and — on error — classifies the failure, blames the plan
// edges involved, triggers the flight recorder, and wraps the error with
// the context. A nil error is always returned as nil.
func (m *Monitor) EndRun(err error) error {
	m.mu.Lock()
	t := m.tee
	m.mu.Unlock()
	if t != nil {
		t.Flush()
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	m.finished = true
	if err == nil {
		m.finishWireLocked()
		// Healthy completion: every live track must have run its full
		// expected chain. Tracks whose rank death was announced are
		// exempt — truncation is their expected structure.
		for name, st := range m.tracks {
			if m.dead[name] {
				continue
			}
			if st.spanCur < len(st.exp.Spans) {
				m.divergeLocked("track %s incomplete: %d of %d busy spans", name, st.spanCur, len(st.exp.Spans))
			}
			if st.readyCur < len(st.exp.Ready) {
				m.divergeLocked("track %s incomplete: %d of %d release instants", name, st.readyCur, len(st.exp.Ready))
			}
		}
		if m.opts.Logger != nil {
			m.opts.Logger.Info("monitor: run end",
				"events", m.events, "spans", m.spans,
				"verdicts", len(m.verdicts), "divergences", m.divCount)
		}
		return nil
	}

	if m.opts.Logger != nil {
		m.opts.Logger.Error("monitor: run failed", "err", err.Error())
	}
	edges := m.classifyErrorLocked(err)
	m.dumpLocked("run error")
	return &RunError{
		Err:        err,
		Edges:      edges,
		DumpPath:   m.dumpPath,
		DumpEvents: len(m.lastDump),
	}
}

// Emit consumes one trace event (trace.Sink). Called from the tee's drain
// goroutine — or directly, when the monitor is used as a plain sink.
func (m *Monitor) Emit(ev trace.Event) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.events++
	if ev.Track == trace.RuntimeTrack {
		// Runtime-track events live in their own ring so the last-N
		// samples ride along in flight dumps without evicting the plan
		// events the dump exists to show.
		m.runtime.ring.add(ev)
		if ev.Ph == trace.PhaseInstant && ev.Cat == trace.CatRuntime && ev.Name == runtimeobs.SampleEventName {
			m.foldRuntimeLocked(ev)
		}
		return
	}
	if ev.Ph == trace.PhaseInstant && ev.Cat == trace.CatComm && ev.Name == "deliver" {
		// Wire telemetry is high-rate and has its own conformance fold;
		// keeping it out of the flight ring preserves the plan events a
		// dump exists to show.
		m.foldDeliverLocked(ev)
		return
	}
	if ev.Ph == trace.PhaseInstant && ev.Cat == trace.CatOST && ev.Name == "read" {
		m.foldWireReadLocked(ev)
		return
	}
	m.ring.add(ev)

	onProc := strings.HasPrefix(ev.Track, metrics.IOPrefix+"/") ||
		strings.HasPrefix(ev.Track, metrics.ComputePrefix+"/")
	switch {
	case ev.Ph == trace.PhaseSpan && ev.Cat == trace.CatPhase && onProc:
		m.foldSpanLocked(ev)
	case ev.Ph == trace.PhaseInstant && ev.Cat == trace.CatStage && ev.Name == "ready" && onProc:
		m.foldReadyLocked(ev)
	case ev.Ph == trace.PhaseCounter && ev.Track == trace.ModelTrack:
		m.foldModelLocked(ev)
	case ev.Cat == trace.CatOST:
		m.foldOSTLocked(ev)
	case ev.Ph == trace.PhaseInstant && ev.Cat == trace.CatFault:
		m.foldFaultLocked(ev)
	}
}

// foldModelLocked absorbs a model/t_* counter sample into the budgets.
func (m *Monitor) foldModelLocked(ev trace.Event) {
	v, ok := ev.ArgValue("value")
	if !ok {
		return
	}
	switch ev.Name {
	case "model/t_read":
		m.setBudgetLocked("read", v)
	case "model/t_comm":
		m.setBudgetLocked("comm", v)
	case "model/t_comp":
		m.setBudgetLocked("compute", v)
	}
}

// foldOSTLocked folds file-system service activity into per-OST byte and
// queue-wait metrics.
func (m *Monitor) foldOSTLocked(ev trace.Event) {
	switch {
	case ev.Ph == trace.PhaseSpan && ev.Name == "service":
		if b, ok := ev.ArgValue("bytes"); ok {
			m.reg.Add("monitor/"+ev.Track+"/bytes", b)
		}
		m.reg.Inc("monitor/" + ev.Track + "/requests")
	case ev.Ph == trace.PhaseInstant && ev.Name == "queued":
		if w, ok := ev.ArgValue("wait"); ok {
			m.reg.Observe("monitor/ost_wait", w)
		}
	}
}

// foldFaultLocked turns injected-fault events into incidents, so every
// injection is correlatable with the watchdog verdict that should follow.
func (m *Monitor) foldFaultLocked(ev trace.Event) {
	m.reg.Inc("monitor/faults/" + ev.Name)
	switch ev.Name {
	case "straggler", "straggle":
		// Announcement of an injected straggler: remember the factor so
		// the verdict can mark the trip as expected.
		if f, ok := ev.ArgValue("factor"); ok {
			m.injected[ev.Track] = f
		}
		if ev.Name == "straggle" {
			return // per-phase dilation beat, not worth an incident each
		}
	case "rank-death":
		m.dead[ev.Track] = true
		m.reg.Inc("monitor/rank_deaths")
		m.incidentLocked(Incident{
			Kind: "rank-death", Proc: ev.Track, Time: ev.Ts,
			Detail: "announced rank death",
			Edge:   m.ioEdgeLocked(ev.Track),
		}, true)
		return
	}
	m.incidentLocked(Incident{Kind: "fault", Proc: ev.Track, Time: ev.Ts, Detail: ev.Name}, false)
}

// CycleSample is one assimilation cycle's outcome, published by
// senkf-cycle so a multi-cycle run reads like a long-lived service.
type CycleSample struct {
	Cycle           int     `json:"cycle"`
	BackgroundRMSE  float64 `json:"background_rmse"`
	AnalysisRMSE    float64 `json:"analysis_rmse"`
	FreeRMSE        float64 `json:"free_rmse"`
	Spread          float64 `json:"spread"`
	DegradedMembers int     `json:"degraded_members"`
}

// RecordCycle publishes one cycle's statistics as gauges (current cycle
// series) and histograms (distribution over the run so far).
func (m *Monitor) RecordCycle(s CycleSample) {
	m.mu.Lock()
	m.cycles = append(m.cycles, s)
	if len(m.cycles) > 4096 {
		m.cycles = m.cycles[len(m.cycles)-4096:]
	}
	m.mu.Unlock()
	m.reg.SetGauge("cycle/index", float64(s.Cycle))
	m.reg.SetGauge("cycle/rmse_background", s.BackgroundRMSE)
	m.reg.SetGauge("cycle/rmse_analysis", s.AnalysisRMSE)
	m.reg.SetGauge("cycle/rmse_free", s.FreeRMSE)
	m.reg.SetGauge("cycle/spread", s.Spread)
	m.reg.SetGauge("cycle/degraded_members", float64(s.DegradedMembers))
	m.reg.Observe("cycle/analysis_rmse_hist", s.AnalysisRMSE)
}

var _ trace.Sink = (*Monitor)(nil)
var _ plan.RunObserver = (*Monitor)(nil)
