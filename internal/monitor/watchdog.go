// Budget watchdog: every completed phase span is checked against its
// per-stage expected duration. Budgets come from the Eq. 7–10 cost-model
// terms when available (model/t_* counter events of a simulated run, or
// SetBudgets on a real one); without a model the watchdog falls back to
// the peer median per (phase, stage) — a straggler is whoever takes
// tolerance × longer than its peers. Durations are in the trace's own
// clock: virtual seconds in the simulation, wall seconds on the real
// substrate.

package monitor

import (
	"fmt"
	"sort"
	"strings"

	"senkf/internal/metrics"
	"senkf/internal/trace"
)

type peerKey struct {
	io    bool
	phase string
	stage int
}

type tripKey struct {
	proc  string
	phase string
	stage int
}

// peerMinSamples is the minimum population before peer-median verdicts
// fire, and peerMinSlack the absolute wall-clock floor that keeps
// micro-jitter on very short phases from tripping.
const (
	peerMinSamples = 4
	peerMinSlack   = 1e-3
)

// Verdict is one watchdog trip: a (proc, phase, stage) that exceeded
// budget × tolerance.
type Verdict struct {
	Proc      string  `json:"proc"`
	Phase     string  `json:"phase"`
	Stage     int     `json:"stage"`
	Observed  float64 `json:"observed_s"`
	Budget    float64 `json:"budget_s"`
	Tolerance float64 `json:"tolerance"`
	// Mode is "model" (cost-model budget) or "peer" (peer-median budget).
	Mode string `json:"mode"`
	// Injected is the announced straggler factor when the trip matches a
	// fault injection (0 otherwise) — the watchdog caught the injection.
	Injected float64 `json:"injected_factor,omitempty"`
	// Edge is the blamed plan edge for starved compute phases.
	Edge string  `json:"edge,omitempty"`
	At   float64 `json:"at_s"`
}

func (v Verdict) String() string {
	s := fmt.Sprintf("%s %s stage %d: %.3gs > %g x %.3gs budget (%s)",
		v.Proc, v.Phase, v.Stage, v.Observed, v.Tolerance, v.Budget, v.Mode)
	if v.Edge != "" {
		s += " awaiting " + v.Edge
	}
	return s
}

// checkBudgetLocked evaluates one completed span against its budget and
// records a verdict + incident (+ flight dump) on the first trip of each
// (proc, phase, stage).
func (m *Monitor) checkBudgetLocked(track, phase string, stage int, ev trace.Event) {
	v := Verdict{
		Proc: track, Phase: phase, Stage: stage,
		Observed: ev.Dur, Tolerance: m.opts.Tolerance,
		At: ev.Ts + ev.Dur,
	}
	if b, ok := m.budgets[phase]; ok && b > 0 {
		if ev.Dur <= b*m.opts.Tolerance {
			return
		}
		v.Budget, v.Mode = b, "model"
	} else {
		// Peer-median fallback: compare against the population of the
		// same phase at the same stage across ranks of the same class.
		k := peerKey{io: strings.HasPrefix(track, metrics.IOPrefix+"/"), phase: phase, stage: stage}
		m.peers[k] = append(m.peers[k], ev.Dur)
		if len(m.peers[k]) < peerMinSamples {
			return
		}
		med := median(m.peers[k])
		if med <= 0 || ev.Dur <= med*m.opts.Tolerance || ev.Dur <= med+peerMinSlack {
			return
		}
		v.Budget, v.Mode = med, "peer"
	}

	tk := tripKey{proc: track, phase: phase, stage: stage}
	if m.tripped[tk] {
		return
	}
	m.tripped[tk] = true
	v.Injected = m.injected[track]
	if strings.HasPrefix(track, metrics.ComputePrefix+"/") && phase == "wait" {
		v.Edge = m.blamedEdgeLocked(track, stage)
	}
	if len(m.verdicts) < 256 {
		m.verdicts = append(m.verdicts, v)
	}
	m.reg.Inc("monitor/watchdog_trips")
	m.incidentLocked(Incident{
		Kind: "watchdog", Proc: track, Time: v.At,
		Detail: v.String(),
		Edge:   v.Edge,
	}, true)
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}
