// Wire conformance: the monitor folds the wire collector's per-message
// "deliver" and per-read "read" instants (internal/wire, arriving on the
// tee's secondary path) against the expected edge matrix derived from the
// compiled plan. Missing, unexpected and short edges are plan divergences
// like any structural one; a saturated storage target or a skewed edge
// becomes a watchdog verdict naming the culprit.
//
// The fold is gated on wire events actually arriving: a run without a
// collector attached reports no wire state and no missing edges.

package monitor

import (
	"fmt"
	"sort"

	"senkf/internal/plan"
	"senkf/internal/trace"
)

// wireOST is the live per-storage-target picture built from wire "read"
// instants.
type wireOST struct {
	reads         int64
	bytes         float64
	wait          float64
	service       float64
	degraded      int64
	outage        int64
	first         float64
	last          float64
	outageTripped bool
}

// wireState is the per-run wire-conformance state.
type wireState struct {
	expected   plan.EdgeMatrix
	actual     plan.EdgeMatrix
	msgs       int64
	otherMsgs  int64
	otherBytes int64
	maxDepth   int
	unexpected map[plan.EdgeKey]bool // flagged-once unexpected edges
	over       map[plan.EdgeKey]bool // flagged-once overflowing edges
	osts       map[int]*wireOST
	finalized  bool
}

func (w *wireState) active() bool {
	return w.msgs > 0 || w.otherMsgs > 0 || len(w.osts) > 0
}

// resetWireLocked derives the expected edge matrix for the new run. The
// OST picture is cumulative across cycles (one machine), so only the edge
// side resets.
func (m *Monitor) resetWireLocked(c *plan.Compiled) {
	m.wire.expected = plan.ExpectedEdges(c)
	m.wire.actual = plan.EdgeMatrix{}
	m.wire.msgs = 0
	m.wire.otherMsgs = 0
	m.wire.otherBytes = 0
	m.wire.maxDepth = 0
	m.wire.unexpected = map[plan.EdgeKey]bool{}
	m.wire.over = map[plan.EdgeKey]bool{}
	m.wire.finalized = false
	if m.wire.osts == nil {
		m.wire.osts = map[int]*wireOST{}
	}
}

// foldDeliverLocked folds one wire "deliver" instant: the message lands on
// its plan edge (or the other bucket), feeds the latency histogram, and is
// checked live against the expected matrix.
func (m *Monitor) foldDeliverLocked(ev trace.Event) {
	src, _ := ev.ArgValue("src")
	dst, _ := ev.ArgValue("dst")
	tag, _ := ev.ArgValue("tag")
	bytes, _ := ev.ArgValue("bytes")
	lat, _ := ev.ArgValue("lat")
	depth, _ := ev.ArgValue("depth")

	m.wire.msgs++
	m.reg.Observe("monitor/msg_latency", lat)
	m.reg.Inc("monitor/comm/msgs")
	m.reg.Add("monitor/comm/bytes", bytes)
	if d := int(depth); d > m.wire.maxDepth {
		m.wire.maxDepth = d
		m.reg.SetGauge("monitor/comm/queue_depth_max", depth)
	}

	if m.cp == nil {
		return
	}
	stage, _, level, ok := m.cp.Spec.InvertTag(int(tag))
	if !ok {
		m.wire.otherMsgs++
		m.wire.otherBytes += int64(bytes)
		return
	}
	k := plan.EdgeKey{Src: int(src), Dst: int(dst), Stage: stage, Level: level}
	m.wire.actual.Record(k, int64(bytes))
	exp, known := m.wire.expected[k]
	switch {
	case !known:
		if !m.wire.unexpected[k] {
			m.wire.unexpected[k] = true
			m.divergeLocked("unexpected wire edge %s: %d bytes outside the plan's comm matrix", k, int64(bytes))
		}
	case m.wire.actual[k].Msgs > exp.Msgs || m.wire.actual[k].Bytes > exp.Bytes:
		if !m.wire.over[k] {
			m.wire.over[k] = true
			got := m.wire.actual[k]
			m.divergeLocked("wire edge %s overflow: %d msgs/%d bytes exceed planned %d msgs/%d bytes",
				k, got.Msgs, got.Bytes, exp.Msgs, exp.Bytes)
		}
	}
}

// foldWireReadLocked folds one wire "read" instant into the per-OST
// picture: utilization gauge, wait/service accounting, and an immediate
// verdict when an outage stalls the target.
func (m *Monitor) foldWireReadLocked(ev trace.Event) {
	osti, _ := ev.ArgValue("ost")
	bytes, _ := ev.ArgValue("bytes")
	wait, _ := ev.ArgValue("wait")
	service, _ := ev.ArgValue("service")
	degraded, _ := ev.ArgValue("degraded")
	outage, _ := ev.ArgValue("outage")

	if m.wire.osts == nil {
		m.wire.osts = map[int]*wireOST{}
	}
	a := m.wire.osts[int(osti)]
	if a == nil {
		a = &wireOST{first: ev.Ts}
		m.wire.osts[int(osti)] = a
	}
	a.reads++
	a.bytes += bytes
	a.wait += wait
	a.service += service
	if degraded != 0 {
		a.degraded++
	}
	if outage != 0 {
		a.outage++
	}
	if ev.Ts < a.first {
		a.first = ev.Ts
	}
	if end := ev.Ts + wait + service; end > a.last {
		a.last = end
	}
	if span := a.last - a.first; span > 0 {
		util := a.service / span
		if util > 1 {
			util = 1
		}
		m.reg.SetGauge("monitor/"+ev.Track+"/util", util)
	}
	m.reg.SetGauge("monitor/"+ev.Track+"/queue_wait", a.wait)

	if outage != 0 && !a.outageTripped {
		a.outageTripped = true
		v := Verdict{
			Proc: ev.Track, Phase: "ost", Stage: -1,
			Observed: wait, Tolerance: m.opts.Tolerance,
			Mode: "wire", At: ev.Ts,
		}
		if len(m.verdicts) < 256 {
			m.verdicts = append(m.verdicts, v)
		}
		m.reg.Inc("monitor/watchdog_trips")
		m.incidentLocked(Incident{
			Kind: "watchdog", Proc: ev.Track, Time: ev.Ts,
			Detail: fmt.Sprintf("saturated OST %d: outage stalled a read %.3gs (queue wait, %d reads affected)",
				int(osti), wait, a.outage),
		}, true)
	}
}

// finishWireLocked finalizes wire conformance at run end: every expected
// edge must have been fully carried (missing/short edges are divergences),
// and sustained imbalance becomes skew/saturation verdicts. No-op when no
// wire events arrived (collector not attached).
func (m *Monitor) finishWireLocked() {
	w := &m.wire
	if w.finalized || !w.active() {
		return
	}
	w.finalized = true
	for _, k := range w.expected.Keys() {
		exp := w.expected[k]
		got, ok := w.actual[k]
		switch {
		case !ok:
			m.divergeLocked("wire edge %s missing: planned %d msgs/%d bytes, saw none", k, exp.Msgs, exp.Bytes)
		case got.Msgs < exp.Msgs || got.Bytes < exp.Bytes:
			m.divergeLocked("wire edge %s short: %d msgs/%d bytes of planned %d msgs/%d bytes",
				k, got.Msgs, got.Bytes, exp.Msgs, exp.Bytes)
		}
	}
	m.skewVerdictLocked()
	m.saturationVerdictLocked()
}

// skewVerdictLocked blames the receiver whose inbound wire volume exceeds
// tolerance × the peer median — the comm-skew analogue of the straggler
// verdict.
func (m *Monitor) skewVerdictLocked() {
	perDst := map[int]int64{}
	for k, es := range m.wire.actual {
		perDst[k.Dst] += es.Bytes
	}
	if len(perDst) < peerMinSamples {
		return
	}
	vols := make([]float64, 0, len(perDst))
	worst, worstDst := int64(0), -1
	for dst, b := range perDst {
		vols = append(vols, float64(b))
		if b > worst || (b == worst && dst < worstDst) {
			worst, worstDst = b, dst
		}
	}
	med := median(vols)
	if med <= 0 || float64(worst) <= med*m.opts.Tolerance {
		return
	}
	name := m.rankName[worstDst]
	if name == "" {
		name = fmt.Sprintf("rank %d", worstDst)
	}
	v := Verdict{
		Proc: name, Phase: "comm-skew", Stage: -1,
		Observed: float64(worst), Budget: med,
		Tolerance: m.opts.Tolerance, Mode: "wire",
		Edge: fmt.Sprintf("* -> %s (%d inbound bytes, peer median %.0f)", name, worst, med),
	}
	if len(m.verdicts) < 256 {
		m.verdicts = append(m.verdicts, v)
	}
	m.reg.Inc("monitor/watchdog_trips")
	m.incidentLocked(Incident{
		Kind: "watchdog", Proc: name,
		Detail: fmt.Sprintf("skewed wire edge: %s receives %d bytes vs peer median %.0f", name, worst, med),
		Edge:   v.Edge,
	}, false)
}

// saturationVerdictLocked blames a storage target whose mean queue wait
// per read exceeds tolerance × the peer median (outage-tripped targets
// already carry their verdict).
func (m *Monitor) saturationVerdictLocked() {
	if len(m.wire.osts) < 2 {
		return
	}
	ids := make([]int, 0, len(m.wire.osts))
	means := make([]float64, 0, len(m.wire.osts))
	for id, a := range m.wire.osts {
		if a.reads > 0 {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	for _, id := range ids {
		a := m.wire.osts[id]
		means = append(means, a.wait/float64(a.reads))
	}
	med := median(means)
	for i, id := range ids {
		a := m.wire.osts[id]
		if a.outageTripped {
			continue
		}
		mean := means[i]
		if med <= 0 || mean <= med*m.opts.Tolerance || mean <= med+peerMinSlack {
			continue
		}
		v := Verdict{
			Proc: fmt.Sprintf("ost%d", id), Phase: "ost-wait", Stage: -1,
			Observed: mean, Budget: med,
			Tolerance: m.opts.Tolerance, Mode: "wire", At: a.last,
		}
		if len(m.verdicts) < 256 {
			m.verdicts = append(m.verdicts, v)
		}
		m.reg.Inc("monitor/watchdog_trips")
		m.incidentLocked(Incident{
			Kind: "watchdog", Proc: v.Proc, Time: a.last,
			Detail: fmt.Sprintf("saturated OST %d: mean queue wait %.3gs vs peer median %.3gs", id, mean, med),
		}, false)
	}
}

// WireStatus is the wire-conformance slice of /status.
type WireStatus struct {
	Msgs            int64   `json:"msgs"`
	Bytes           int64   `json:"bytes"`
	EdgesObserved   int     `json:"edges_observed"`
	EdgesExpected   int     `json:"edges_expected"`
	OtherMsgs       int64   `json:"other_msgs"`
	OtherBytes      int64   `json:"other_bytes"`
	MaxQueueDepth   int     `json:"max_queue_depth"`
	MissingEdges    int     `json:"missing_edges"`
	ShortEdges      int     `json:"short_edges"`
	UnexpectedEdges int     `json:"unexpected_edges"`
	OSTs            int     `json:"osts"`
	PeakOSTUtil     float64 `json:"peak_ost_util"`
}

// wireStatusLocked snapshots the wire state, or nil when no wire events
// arrived.
func (m *Monitor) wireStatusLocked() *WireStatus {
	w := &m.wire
	if !w.active() {
		return nil
	}
	s := &WireStatus{
		Msgs:            w.msgs,
		EdgesObserved:   len(w.actual),
		EdgesExpected:   len(w.expected),
		OtherMsgs:       w.otherMsgs,
		OtherBytes:      w.otherBytes,
		MaxQueueDepth:   w.maxDepth,
		UnexpectedEdges: len(w.unexpected),
		OSTs:            len(w.osts),
	}
	s.Bytes = w.actual.Totals().Bytes
	for _, k := range w.expected.Keys() {
		got, ok := w.actual[k]
		exp := w.expected[k]
		switch {
		case !ok:
			s.MissingEdges++
		case got.Msgs < exp.Msgs || got.Bytes < exp.Bytes:
			s.ShortEdges++
		}
	}
	for _, a := range w.osts {
		if span := a.last - a.first; span > 0 {
			util := a.service / span
			if util > 1 {
				util = 1
			}
			if util > s.PeakOSTUtil {
				s.PeakOSTUtil = util
			}
		}
	}
	return s
}

// ActualEdges returns a copy of the edge matrix the monitor assembled from
// wire events — the third derivation (after the collector's and the
// expected one) the parity tests pin.
func (m *Monitor) ActualEdges() plan.EdgeMatrix {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.wire.actual.Clone()
}
