// The monitor's HTTP surface: Prometheus text metrics at /metrics and the
// live JSON conformance summary at /status, both mountable on the
// existing internal/profiling server.

package monitor

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
)

// RankProgress is one rank's live pipeline position.
type RankProgress struct {
	Proc     string `json:"proc"`
	Stage    int    `json:"stage"`  // stage l the rank is in (−1 pre-plan)
	Stages   int    `json:"stages"` // of L
	Spans    int    `json:"spans_done"`
	Expected int    `json:"spans_expected"`
}

// Conformance summarizes the live structural diff against ExpectedDAG.
type Conformance struct {
	Tracks          int            `json:"tracks"`
	MatchedSpans    int64          `json:"matched_spans"`
	ExpectedSpans   int64          `json:"expected_spans"`
	MatchedReady    int64          `json:"matched_ready"`
	ExpectedReady   int64          `json:"expected_ready"`
	DivergenceCount int            `json:"divergence_count"`
	Divergences     []string       `json:"divergences"`
	Laggards        []RankProgress `json:"laggards,omitempty"`
}

// Status is the live run summary served at /status.
type Status struct {
	RunID       string             `json:"run_id,omitempty"`
	Algorithm   string             `json:"algorithm"`
	WorldSize   int                `json:"world_size"`
	Stages      int                `json:"stages"`
	Events      int64              `json:"events"`
	Spans       int64              `json:"spans"`
	Complete    bool               `json:"complete"`
	Conformance Conformance        `json:"conformance"`
	Tolerance   float64            `json:"tolerance"`
	Budgets     map[string]float64 `json:"budgets_s,omitempty"`
	Verdicts    []Verdict          `json:"watchdog_verdicts"`
	Incidents   []Incident         `json:"incidents"`
	FlightDump  string             `json:"flight_dump,omitempty"`
	Cycles      []CycleSample      `json:"cycles,omitempty"`
	Runtime     *RuntimeStatus     `json:"runtime,omitempty"`
	Wire        *WireStatus        `json:"wire,omitempty"`
}

// Status snapshots the monitor.
func (m *Monitor) Status() Status {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Status{
		RunID:       m.opts.RunID,
		Events:      m.events,
		Spans:       m.spans,
		Tolerance:   m.opts.Tolerance,
		Verdicts:    append([]Verdict{}, m.verdicts...),
		Incidents:   append([]Incident{}, m.incidents...),
		FlightDump:  m.dumpPath,
		Cycles:      append([]CycleSample(nil), m.cycles...),
		Conformance: Conformance{Divergences: append([]string{}, m.divergences...)},
	}
	if m.runtime.samples > 0 {
		s.Runtime = &RuntimeStatus{Samples: m.runtime.samples, Last: m.runtime.last}
	}
	s.Wire = m.wireStatusLocked()
	if m.cp != nil {
		s.Algorithm = string(m.cp.Spec.Algorithm)
		s.WorldSize = m.cp.WorldSize()
		s.Stages = m.cp.Spec.L
	}
	if len(m.budgets) > 0 {
		s.Budgets = make(map[string]float64, len(m.budgets))
		for k, v := range m.budgets {
			s.Budgets[k] = v
		}
	}
	c := &s.Conformance
	c.DivergenceCount = m.divCount
	complete := m.finished
	var laggards []RankProgress
	for name, st := range m.tracks {
		if st.unknown {
			continue
		}
		c.Tracks++
		c.ExpectedSpans += int64(len(st.exp.Spans))
		c.ExpectedReady += int64(len(st.exp.Ready))
		done, ready := st.spanCur, st.readyCur
		if done > len(st.exp.Spans) {
			done = len(st.exp.Spans)
		}
		if ready > len(st.exp.Ready) {
			ready = len(st.exp.Ready)
		}
		c.MatchedSpans += int64(done)
		c.MatchedReady += int64(ready)
		if st.spanCur < len(st.exp.Spans) && !m.dead[name] {
			complete = false
			stage := st.exp.Spans[st.spanCur].Stage
			laggards = append(laggards, RankProgress{
				Proc: name, Stage: stage, Stages: s.Stages,
				Spans: st.spanCur, Expected: len(st.exp.Spans),
			})
		}
	}
	// Bound the per-rank list: the furthest-behind ranks are the story.
	sort.Slice(laggards, func(i, j int) bool {
		fi := float64(laggards[i].Spans) / float64(laggards[i].Expected)
		fj := float64(laggards[j].Spans) / float64(laggards[j].Expected)
		if fi != fj {
			return fi < fj
		}
		return laggards[i].Proc < laggards[j].Proc
	})
	if len(laggards) > 8 {
		laggards = laggards[:8]
	}
	c.Laggards = laggards
	s.Complete = complete && m.divCount == 0
	return s
}

// MetricsHandler serves the monitor's registry — and the run's registry,
// when Options.RunRegistry was set — in Prometheus text format.
func (m *Monitor) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if m.opts.ScrapeHook != nil {
			// Refresh scrape-time gauges (baseline go/process stats)
			// before rendering, outside the monitor lock.
			m.opts.ScrapeHook()
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if m.opts.RunID != "" {
			// Info-metric idiom: the run ID rides one labeled constant
			// sample rather than a label on every series, so existing
			// scrape configs and the CI greps keep matching.
			fmt.Fprintf(w, "# TYPE senkf_run_info gauge\nsenkf_run_info{run_id=%q} 1\n", m.opts.RunID)
		}
		if err := m.reg.WritePrometheus(w, "senkf_"); err != nil {
			return
		}
		if m.opts.RunRegistry != nil {
			_ = m.opts.RunRegistry.WritePrometheus(w, "senkf_")
		}
	})
}

// StatusHandler serves the live conformance summary as indented JSON.
func (m *Monitor) StatusHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(m.Status())
	})
}
