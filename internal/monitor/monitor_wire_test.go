// End-to-end wire-conformance tests: a wire collector rides the monitor
// tee's secondary-only path, so the monitor folds live per-message and
// per-OST telemetry against the compiled plan's expected edge matrix —
// clean runs conform exactly, an injected OST outage draws a per-OST
// verdict naming the saturated target.

package monitor_test

import (
	"strings"
	"testing"

	"senkf/internal/faults"
	"senkf/internal/monitor"
	"senkf/internal/schedule"
	"senkf/internal/trace"
	"senkf/internal/wire"
)

// attachWire extends attach with a wire collector whose side events ride
// the same tee the monitor drains.
func attachWire(cfg *schedule.Config, m *monitor.Monitor, buf *trace.Buffer) *wire.Collector {
	t := m.Tee(buf).(*trace.Tee)
	cfg.Tracer = trace.New(nil, t)
	cfg.Obs = m
	wc := wire.NewCollector()
	wc.SetSide(t)
	cfg.Msgs = wc
	cfg.Reads = wc
	return wc
}

// TestMonitorWireConformanceCleanRun checks the live fold on a healthy
// run: the monitor's actual edge matrix equals both the expected one and
// the collector's own, the status reports full coverage, and no
// divergence or verdict fires.
func TestMonitorWireConformanceCleanRun(t *testing.T) {
	cfg, ch := simConfig()
	m := monitor.New(monitor.Options{})
	defer m.Close()
	buf := trace.NewBuffer()
	wc := attachWire(&cfg, m, buf)

	if _, err := schedule.SimulateSEnKF(cfg, ch); err != nil {
		t.Fatal(err)
	}
	st := m.Status()
	if st.Conformance.DivergenceCount != 0 {
		t.Errorf("clean wired run diverged: %v", st.Conformance.Divergences)
	}
	if len(st.Verdicts) != 0 {
		t.Errorf("clean wired run tripped the watchdog: %+v", st.Verdicts)
	}
	if st.Wire == nil {
		t.Fatal("status carries no wire state despite an attached collector")
	}
	if st.Wire.Msgs == 0 || st.Wire.Bytes == 0 {
		t.Errorf("wire status empty: %+v", st.Wire)
	}
	if st.Wire.EdgesObserved == 0 || st.Wire.EdgesObserved != st.Wire.EdgesExpected {
		t.Errorf("edges observed %d vs expected %d", st.Wire.EdgesObserved, st.Wire.EdgesExpected)
	}
	if st.Wire.MissingEdges != 0 || st.Wire.ShortEdges != 0 || st.Wire.UnexpectedEdges != 0 {
		t.Errorf("clean run flagged edges: %+v", st.Wire)
	}
	if st.Wire.OSTs != cfg.FS.OSTs {
		t.Errorf("wire status saw %d OSTs, config has %d", st.Wire.OSTs, cfg.FS.OSTs)
	}
	if st.Wire.PeakOSTUtil <= 0 {
		t.Errorf("peak OST util %g, want > 0", st.Wire.PeakOSTUtil)
	}
	// The monitor's fold and the collector's direct accounting are two
	// independent derivations of the same stream.
	if err := wc.Matrix().Diff(m.ActualEdges()); err != nil {
		t.Errorf("collector vs monitor edge matrices: %v", err)
	}
	if m.Registry().CounterValue("monitor/comm/msgs") == 0 {
		t.Error("monitor/comm/msgs counter not fed")
	}
}

// TestMonitorWireBlamesOutagedOST injects a full outage window on one
// storage target: the monitor must issue a per-OST wire verdict naming the
// saturated target, and the incident log must explain the stall.
func TestMonitorWireBlamesOutagedOST(t *testing.T) {
	cfg, ch := simConfig()
	cfg.Faults = &faults.Plan{OSTWindows: []faults.OSTWindow{
		{OST: 3, Start: 0, End: 0.5, Factor: 0},
	}}

	m := monitor.New(monitor.Options{})
	defer m.Close()
	buf := trace.NewBuffer()
	attachWire(&cfg, m, buf)

	if _, err := schedule.SimulateSEnKF(cfg, ch); err != nil {
		t.Fatal(err)
	}
	st := m.Status()
	var hit *monitor.Verdict
	for i := range st.Verdicts {
		if st.Verdicts[i].Phase == "ost" && st.Verdicts[i].Proc == "ost3" {
			hit = &st.Verdicts[i]
			break
		}
	}
	if hit == nil {
		t.Fatalf("no wire verdict blaming ost3; verdicts: %+v", st.Verdicts)
	}
	if hit.Mode != "wire" {
		t.Errorf("verdict mode %q, want wire", hit.Mode)
	}
	if hit.Observed <= 0 {
		t.Errorf("outage verdict carries no observed stall: %+v", hit)
	}
	var explained bool
	for _, inc := range st.Incidents {
		if inc.Proc == "ost3" && strings.Contains(inc.Detail, "outage") {
			explained = true
			break
		}
	}
	if !explained {
		t.Errorf("no incident explaining the ost3 outage: %+v", st.Incidents)
	}
	// An outage delays reads but loses nothing: the edge matrix still
	// conforms (no missing or short edges).
	if st.Wire == nil || st.Wire.MissingEdges != 0 || st.Wire.ShortEdges != 0 {
		t.Errorf("outage run lost edges: %+v", st.Wire)
	}
}

// TestMonitorWithoutWireReportsNoWireState pins the gating: a monitored
// but unwired run must not fabricate wire status or missing-edge
// divergences.
func TestMonitorWithoutWireReportsNoWireState(t *testing.T) {
	cfg, ch := simConfig()
	m := monitor.New(monitor.Options{})
	defer m.Close()
	buf := trace.NewBuffer()
	attach(&cfg, m, buf)

	if _, err := schedule.SimulateSEnKF(cfg, ch); err != nil {
		t.Fatal(err)
	}
	st := m.Status()
	if st.Wire != nil {
		t.Errorf("unwired run reports wire state: %+v", st.Wire)
	}
	if st.Conformance.DivergenceCount != 0 {
		t.Errorf("unwired run diverged: %v", st.Conformance.Divergences)
	}
}
