// Incremental plan conformance: fold each phase span / release instant
// into the per-track structural signature as it arrives and diff against
// the compiled plan's ExpectedDAG — the streaming version of
// plan.StructuralDAG + plan.DiffDAG.
//
// Spans and release instants advance two separate cursors per track: on
// the real substrate the helper goroutine emits "ready" concurrently with
// the main thread's spans on the same track, so only the per-kind order
// is guaranteed (and is: spans are program order; a mailbox is FIFO, so a
// group's stage-l notification precedes its stage-l+1 one).

package monitor

import (
	"fmt"
	"sort"
	"strings"

	"senkf/internal/metrics"
	"senkf/internal/plan"
	"senkf/internal/trace"
)

// trackState is the live cursor pair of one processor track.
type trackState struct {
	exp      *plan.TrackDAG
	spanCur  int // next expected index into exp.Spans
	readyCur int // next expected index into exp.Ready
	unknown  bool
}

// stageFeed names the I/O ranks whose sends release one compute stage.
type stageFeed struct {
	stage  int
	expect int
	srcs   []string
}

func (m *Monitor) divergeLocked(format string, args ...interface{}) {
	m.divCount++
	m.reg.Inc("monitor/divergences")
	if len(m.divergences) < 32 {
		m.divergences = append(m.divergences, fmt.Sprintf(format, args...))
		if m.opts.Logger != nil {
			m.opts.Logger.Warn("monitor: plan divergence", "detail", m.divergences[len(m.divergences)-1])
		}
	}
	if m.divCount == 1 {
		m.incidentLocked(Incident{
			Kind:   "divergence",
			Detail: fmt.Sprintf(format, args...),
		}, true)
	}
}

// stateFor returns the track's cursor state, flagging tracks the plan
// does not know as a divergence (once).
func (m *Monitor) stateFor(track string) *trackState {
	st := m.tracks[track]
	if st == nil {
		st = &trackState{exp: &plan.TrackDAG{}, unknown: true}
		m.tracks[track] = st
		if m.cp != nil {
			m.divergeLocked("unexpected track %s (not in the compiled plan)", track)
		}
	}
	return st
}

// foldSpanLocked advances the span cursor with one busy span and feeds
// the watchdog + streaming latency histograms. Wait spans are timing, not
// structure (plan.StructuralDAG skips them too), but they are exactly
// where a starved compute rank shows, so they get the watchdog treatment
// with the stage derived from the pending release cursor.
func (m *Monitor) foldSpanLocked(ev trace.Event) {
	st := m.stateFor(ev.Track)
	stage := -1
	if v, ok := ev.ArgValue(trace.ArgStage); ok {
		stage = int(v)
	}
	isIO := strings.HasPrefix(ev.Track, metrics.IOPrefix+"/")

	if ev.Name == metrics.PhaseWait.String() {
		// The stage being awaited is the first of the plan's expected
		// releases that had not yet arrived when the wait began. (The
		// release cursor is no use here: on the real substrate the helper
		// goroutine may deliver several "ready" instants before the main
		// thread's wait span is emitted.)
		waitStage := -1
		arrived := m.readyTs[ev.Track]
		for _, stg := range st.exp.Ready {
			if at, ok := arrived[stg]; !ok || at > ev.Ts {
				waitStage = stg
				break
			}
		}
		m.reg.Observe("monitor/scatter_wait", ev.Dur)
		if waitStage >= 0 {
			// A wait that began after every expected release had already
			// arrived is not starving on stage data (a terminal barrier,
			// say) — there is no plan edge to budget it against.
			m.checkBudgetLocked(ev.Track, "wait", waitStage, ev)
		}
		return
	}

	m.spans++
	switch ev.Name {
	case metrics.PhaseRead.String():
		if isIO {
			m.reg.Observe("monitor/read_latency", ev.Dur)
		} else {
			m.reg.Observe("monitor/self_read_latency", ev.Dur)
		}
	case metrics.PhaseComm.String():
		m.reg.Observe("monitor/comm_latency", ev.Dur)
	case metrics.PhaseCompute.String():
		m.reg.Observe("monitor/compute_latency", ev.Dur)
		if stage >= 0 {
			// Stage data lead: how long before this stage's compute began
			// was its last block already there — the overlap headroom.
			if ts, ok := m.readyTs[ev.Track][stage]; ok {
				m.reg.Observe("monitor/stage_lead", ev.Ts-ts)
			}
		}
	}

	if !st.unknown {
		got := plan.DAGNode{Phase: ev.Name, Stage: stage}
		if st.spanCur >= len(st.exp.Spans) {
			m.divergeLocked("track %s: extra span %v beyond the %d planned", ev.Track, got, len(st.exp.Spans))
		} else if want := st.exp.Spans[st.spanCur]; got != want {
			m.divergeLocked("track %s span %d: got %v, plan says %v", ev.Track, st.spanCur, got, want)
		}
		st.spanCur++
	}
	m.checkBudgetLocked(ev.Track, ev.Name, stage, ev)
}

// foldReadyLocked advances the release cursor with one "ready" instant.
func (m *Monitor) foldReadyLocked(ev trace.Event) {
	st := m.stateFor(ev.Track)
	stage := -1
	if v, ok := ev.ArgValue(trace.ArgStage); ok {
		stage = int(v)
	}
	if ts := m.readyTs[ev.Track]; ts == nil {
		m.readyTs[ev.Track] = map[int]float64{stage: ev.Ts}
	} else if _, dup := ts[stage]; !dup {
		ts[stage] = ev.Ts
	}
	if st.unknown {
		return
	}
	if st.readyCur >= len(st.exp.Ready) {
		m.divergeLocked("track %s: extra release instant (stage %d) beyond the %d planned", ev.Track, stage, len(st.exp.Ready))
	} else if want := st.exp.Ready[st.readyCur]; stage != want {
		m.divergeLocked("track %s release %d: got stage %d, plan says stage %d", ev.Track, st.readyCur, stage, want)
	}
	st.readyCur++
}

// blamedEdgeLocked names the plan edge a compute track is (or was)
// waiting on: the I/O ranks whose stage-l sends release it, derived from
// the plan's Expect counts and comm destinations.
func (m *Monitor) blamedEdgeLocked(track string, stage int) string {
	feeds := m.feeders[track]
	if len(feeds) == 0 {
		return ""
	}
	feed := feeds[0]
	found := false
	for _, f := range feeds {
		if f.stage == stage {
			feed, found = f, true
			break
		}
	}
	if !found {
		// No stage known (an untagged wait before any release): blame the
		// first stage whose release has not arrived.
		if st := m.tracks[track]; st != nil && st.readyCur < len(st.exp.Ready) {
			want := st.exp.Ready[st.readyCur]
			for _, f := range feeds {
				if f.stage == want {
					feed = f
					break
				}
			}
		}
	}
	return fmt.Sprintf("%s -> %s (stage %d, %d member blocks expected)",
		compactNames(feed.srcs), track, feed.stage, feed.expect)
}

// ioEdgeLocked names the forward edge of an I/O rank: the compute ranks
// its pending stage feeds — who starves if this rank stalls or dies.
func (m *Monitor) ioEdgeLocked(track string) string {
	if m.cp == nil {
		return ""
	}
	for q := range m.cp.IO {
		r := &m.cp.IO[q]
		if r.Name != track {
			continue
		}
		st := m.tracks[track]
		stageIdx := 0
		if st != nil {
			// Two spans (read, comm) per I/O stage.
			stageIdx = st.spanCur / 2
			if stageIdx >= len(r.Stages) {
				stageIdx = len(r.Stages) - 1
			}
		}
		ios := r.Stages[stageIdx]
		dsts := make([]string, 0, len(ios.Comm.Dsts))
		for _, d := range ios.Comm.Dsts {
			dsts = append(dsts, m.rankName[d])
		}
		return fmt.Sprintf("%s -> %s (stage %d)", track, compactNames(dsts), ios.Stage)
	}
	return ""
}

// compactNames renders a source list, eliding long ones.
func compactNames(names []string) string {
	sorted := append([]string(nil), names...)
	sort.Strings(sorted)
	if len(sorted) <= 4 {
		return strings.Join(sorted, ",")
	}
	return fmt.Sprintf("%s,... (%d ranks)", strings.Join(sorted[:3], ","), len(sorted))
}

// classifyErrorLocked maps a run error onto plan edges by duck-typing the
// substrate error shapes: a simulated deadlock exposes BlockedOn() (proc →
// synchronization object), a real-world abort exposes FailedRank().
func (m *Monitor) classifyErrorLocked(err error) []string {
	var edges []string
	seen := map[string]bool{}
	addEdge := func(e string) {
		if e != "" && !seen[e] {
			seen[e] = true
			edges = append(edges, e)
		}
	}
	for e := err; e != nil; e = unwrap(e) {
		if b, ok := e.(interface{ BlockedOn() map[string]string }); ok {
			procs := make([]string, 0, len(b.BlockedOn()))
			blocked := b.BlockedOn()
			for p := range blocked {
				procs = append(procs, p)
			}
			sort.Strings(procs)
			for i, p := range procs {
				var edge string
				if strings.HasPrefix(p, metrics.ComputePrefix+"/") {
					edge = m.blamedEdgeLocked(p, -1)
				} else {
					edge = m.ioEdgeLocked(p)
				}
				addEdge(edge)
				if i < 8 {
					m.incidentLocked(Incident{
						Kind: "deadlock", Proc: p,
						Detail: "blocked on " + blocked[p],
						Edge:   edge,
					}, false)
				}
			}
			m.reg.Inc("monitor/deadlocks")
		}
		if f, ok := e.(interface{ FailedRank() int }); ok {
			name := m.rankName[f.FailedRank()]
			if name == "" {
				name = fmt.Sprintf("rank %d", f.FailedRank())
			}
			var edge string
			if strings.HasPrefix(name, metrics.IOPrefix+"/") {
				edge = m.ioEdgeLocked(name)
			} else {
				edge = m.blamedEdgeLocked(name, -1)
			}
			addEdge(edge)
			m.incidentLocked(Incident{
				Kind: "rank-death", Proc: name,
				Detail: fmt.Sprintf("world rank %d failed", f.FailedRank()),
				Edge:   edge,
			}, false)
			m.reg.Inc("monitor/rank_deaths")
		}
	}
	return edges
}

func unwrap(err error) error {
	u, ok := err.(interface{ Unwrap() error })
	if !ok {
		return nil
	}
	return u.Unwrap()
}
