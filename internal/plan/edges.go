// Wire-edge accounting: the expected per-edge communication matrix derived
// from a compiled plan, and the observer interface through which both
// substrates report the messages they actually carry.
//
// An edge is one directed (src, dst, stage, level) point-to-point stream of
// stage-data messages. The compiler already states everything needed to
// predict it — CommPlan lists the destinations, the destination's compute
// stage states the exact payload box, and Tag fixes the message identity —
// so ExpectedEdges is pure arithmetic over Compiled. The real engine
// (internal/core on mpi) and the simulated machine (internal/schedule)
// each report their actual messages through MsgObserver, and the three
// matrices — real, simulated, expected — must be bit-identical for every
// algorithm, including multilevel (pinned by the parity tests).
//
// Collective traffic (negative tags) and the result gather (tags at or
// above the engine's private result-tag floor, far outside the plan tag
// space) are not edges of the matrix; observers bucket them separately so
// the invariant "matrix bytes + other bytes == transport totals" is exact.

package plan

import (
	"fmt"
	"sort"
)

// On-wire encoding of one stage-data message, shared by the real engine
// and this package's byte accounting: an 8-byte word per element, and a
// 5-word header [member, X0, X1, Y0, Y1] ahead of the payload box. If the
// engine's header ever changes shape, StageMsgBytes must change with it —
// the edge parity tests catch a drift immediately.
const (
	wireWordBytes     = 8
	stageMsgMetaWords = 5
)

// EdgeKey identifies one directed wire edge: src and dst are world ranks,
// stage is the logical pipeline stage and level the vertical level of the
// payload.
type EdgeKey struct {
	Src   int `json:"src"`
	Dst   int `json:"dst"`
	Stage int `json:"stage"`
	Level int `json:"level"`
}

func (k EdgeKey) String() string {
	return fmt.Sprintf("%d->%d/s%d/l%d", k.Src, k.Dst, k.Stage, k.Level)
}

// EdgeStats is the accumulated traffic of one edge.
type EdgeStats struct {
	Msgs  int64 `json:"msgs"`
	Bytes int64 `json:"bytes"`
}

// EdgeMatrix maps every observed (or expected) edge to its traffic.
type EdgeMatrix map[EdgeKey]EdgeStats

// Record adds one message of the given size to edge k.
func (m EdgeMatrix) Record(k EdgeKey, bytes int64) {
	es := m[k]
	es.Msgs++
	es.Bytes += bytes
	m[k] = es
}

// Totals sums the matrix.
func (m EdgeMatrix) Totals() EdgeStats {
	var t EdgeStats
	for _, es := range m {
		t.Msgs += es.Msgs
		t.Bytes += es.Bytes
	}
	return t
}

// Keys returns every edge in deterministic (src, dst, stage, level) order.
func (m EdgeMatrix) Keys() []EdgeKey {
	keys := make([]EdgeKey, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		if a.Dst != b.Dst {
			return a.Dst < b.Dst
		}
		if a.Stage != b.Stage {
			return a.Stage < b.Stage
		}
		return a.Level < b.Level
	})
	return keys
}

// Clone returns an independent copy.
func (m EdgeMatrix) Clone() EdgeMatrix {
	out := make(EdgeMatrix, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// Equal reports whether two matrices are bit-identical.
func (m EdgeMatrix) Equal(other EdgeMatrix) bool { return m.Diff(other) == nil }

// Diff returns the first difference between two matrices in deterministic
// edge order, or nil when they are identical.
func (m EdgeMatrix) Diff(other EdgeMatrix) error {
	for _, k := range m.Keys() {
		got, ok := other[k]
		if !ok {
			return fmt.Errorf("edge %s: present (%d msgs, %d bytes) vs absent", k, m[k].Msgs, m[k].Bytes)
		}
		if got != m[k] {
			return fmt.Errorf("edge %s: %d msgs/%d bytes vs %d msgs/%d bytes",
				k, m[k].Msgs, m[k].Bytes, got.Msgs, got.Bytes)
		}
	}
	for _, k := range other.Keys() {
		if _, ok := m[k]; !ok {
			return fmt.Errorf("edge %s: absent vs present (%d msgs, %d bytes)", k, other[k].Msgs, other[k].Bytes)
		}
	}
	return nil
}

// StageMsgBytes returns the on-wire byte size of one stage-data message to
// compute rank dst at the given stage: the 5-word header plus the
// destination's exact (clamped) stage box, 8 bytes per word — precisely
// what the real transport charges for the engine's send.
func StageMsgBytes(c *Compiled, dst, stage int) int64 {
	return wireWordBytes * int64(stageMsgMetaWords+c.Compute[dst].Stages[stage].Box.Points())
}

// ExpectedEdges derives the expected edge matrix of a compiled plan: for
// every I/O rank, every stage sends each member's block of each level to
// each destination, sized by the destination's stage box. Plans without
// dedicated I/O ranks (block reading) have an empty matrix.
func ExpectedEdges(c *Compiled) EdgeMatrix {
	m := EdgeMatrix{}
	levels := c.Spec.LevelCount()
	for q := range c.IO {
		r := &c.IO[q]
		for _, st := range r.Stages {
			for _, dst := range st.Comm.Dsts {
				b := StageMsgBytes(c, dst, st.Stage)
				for lvl := 0; lvl < levels; lvl++ {
					k := EdgeKey{Src: r.Rank, Dst: dst, Stage: st.Stage, Level: lvl}
					es := m[k]
					es.Msgs += int64(len(st.Members))
					es.Bytes += int64(len(st.Members)) * b
					m[k] = es
				}
			}
		}
	}
	return m
}

// InvertTag recovers the (stage, member, level) triple of a stage-data
// message tag under this spec, inverting Tag. ok is false for tags outside
// the plan tag space [0, L·N·levels) — collectives (negative) and the
// engine's result gather (far above), which belong to the observer's
// "other" bucket, not the edge matrix.
func (s Spec) InvertTag(tag int) (stage, member, level int, ok bool) {
	n, levels := s.N, s.LevelCount()
	if tag < 0 || tag >= s.L*n*levels {
		return 0, 0, 0, false
	}
	return tag / (levels * n), (tag / levels) % n, tag % levels, true
}

// MsgObserver observes every point-to-point message a run carries.
// BeginMessages is called once with the compiled plan before ranks start
// (so the observer can size tag inversion and the expected matrix);
// OnMessage is called once per delivered message, concurrently from
// receiving ranks — implementations must be safe for concurrent use.
// The real transport (internal/mpi) invokes OnMessage through its own
// structurally identical observer interface, so one implementation serves
// both substrates without a layering cycle.
type MsgObserver interface {
	BeginMessages(c *Compiled)
	// OnMessage reports one delivered message: world ranks src and dst, the
	// plan-space (or collective/result) tag, the on-wire byte size, the
	// enqueue and delivery timestamps on the run's trace clock (seconds),
	// and the receiver's remaining queue depth at match time.
	OnMessage(src, dst, tag int, bytes int64, sentAt, deliveredAt float64, depth int)
}
