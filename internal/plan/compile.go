package plan

import (
	"fmt"
	"io"

	"senkf/internal/grid"
	"senkf/internal/metrics"
)

// ReadTemplate describes one read that a rank performs per member: the
// exact (clamped) byte range as a box, and the model-level accounting the
// cost equations and the simulated substrate use. The two views coexist on
// purpose — the real substrate reads Box (what ends up in memory), while
// Eq. 2/5 and the discrete-event machine count the nominal, unclamped
// geometry of the paper's formulas.
type ReadTemplate struct {
	// Box is the exact region read, clamped to the mesh. Bars and full
	// files span the full mesh width; blocks are column-strided.
	Box grid.Box
	// Contiguous reports whether the region is contiguous on disk (full
	// latitude rows — bars and whole files): one addressing operation per
	// read. Strided blocks pay one addressing operation per row.
	Contiguous bool
	// AddrOps is the nominal addressing-operation count of one member
	// read: 1 for bars and full files (Eq. 5), the nominal expansion row
	// count for blocks (Eq. 2). Nominal means unclamped — boundary ranks
	// count the same as interior ranks, as in the paper's cost model.
	AddrOps int
	// NominalPoints is the unclamped point count of one member read, *per
	// level*: the 2-D geometry of Eqs. 2 and 5. Multiply by Levels for the
	// full fetched volume.
	NominalPoints int
	// Levels is the level count fetched by one read. The member files
	// interleave levels per grid point, so a contiguous bar read fetches
	// all levels of its rows at the same AddrOps cost (the co-design that
	// makes 3-D states ride the Eq. 5 accounting unchanged); block reads
	// pay the same per-row addressing but each row is Levels× heavier.
	Levels int
}

// PointsAllLevels returns the nominal point count of one member read
// across every fetched level — the volume the simulated file system and
// the cost model price.
func (r ReadTemplate) PointsAllLevels() int { return r.NominalPoints * r.Levels }

// CommPlan describes the sends an I/O rank performs after the reads of one
// stage: the aggregated stage blocks go to Dsts (compute world ranks, in
// send order). The exact per-destination payload box is the destination's
// compute-stage box (Compiled.Compute[dst].Stages[stage].Box); PerDstPoints
// is its nominal (unclamped) size for the cost model.
type CommPlan struct {
	Dsts         []int // destination compute ranks, in send order
	PerDstPoints int   // nominal points per member per destination
}

// IOStage is one stage of an I/O rank's schedule: read the stage's region
// from each member in Members (in order), then send every destination its
// block of every member. For S-EnKF there are L stages over the rank's
// whole member set; for L-EnKF's single reader there are N single-member
// rounds (all with Stage 0 — the pipeline has one logical stage).
type IOStage struct {
	Stage   int   // logical pipeline stage (message-tag space)
	Members []int // members read this stage, in read order
	Read    ReadTemplate
	Comm    CommPlan
}

// IORank is the compiled schedule of one dedicated I/O rank.
type IORank struct {
	Rank    int    // world rank
	Name    string // stable trace/recorder proc name ("io/g<g>/r<r>")
	Group   int    // concurrent group g
	Row     int    // bar row j (reader index within the group)
	Members []int  // the rank's member files, ascending
	Stages  []IOStage
}

// AddrOps returns the rank's total nominal addressing operations across
// all stages — the per-reader quantity of Eq. 5: (N/n_cg)·L for bar
// reading, N for the single reader.
func (r IORank) AddrOps() int {
	var total int
	for _, st := range r.Stages {
		total += len(st.Members) * st.Read.AddrOps
	}
	return total
}

// ComputeStage is one stage of a compute rank's schedule. Either the stage
// data arrives as Expect messages from I/O ranks (bar/single reading), or
// the rank reads it itself from SelfMembers (block reading) — never both.
type ComputeStage struct {
	Stage int
	// Expect is the number of per-member blocks to receive from I/O ranks
	// before the stage is ready (0 when the rank reads for itself).
	Expect int
	// SelfMembers lists the members the rank block-reads itself (P-EnKF);
	// empty when data arrives by message.
	SelfMembers []int
	// Read is the self-read template (meaningful only with SelfMembers).
	Read ReadTemplate
	// Box is the region holding the stage's data: the (layer) expansion.
	// It is also the exact payload box I/O ranks cut for this rank.
	Box grid.Box
	// Analyze is the region analysed this stage (the layer or sub-domain).
	Analyze grid.Box
}

// ComputeRank is the compiled schedule of one compute rank.
type ComputeRank struct {
	Rank   int    // world rank
	Name   string // stable trace/recorder proc name ("comp/x<i>y<j>")
	I, J   int    // sub-domain coordinates
	Sub    grid.Box
	Stages []ComputeStage
}

// AddrOps returns the rank's total nominal addressing operations — the
// per-processor quantity of Eq. 2: N·(n_y/n_sdy + 2η) for block reading,
// 0 when data arrives by message.
func (r ComputeRank) AddrOps() int {
	var total int
	for _, st := range r.Stages {
		total += len(st.SelfMembers) * st.Read.AddrOps
	}
	return total
}

// Compiled is the explicit per-rank schedule of one algorithm instance.
// World layout: compute ranks occupy [0, len(Compute)), I/O ranks follow
// at [len(Compute), WorldSize()), ordered group-major (rank index
// len(Compute) + g·n_sdy + j for group g, row j).
type Compiled struct {
	Spec    Spec
	IO      []IORank
	Compute []ComputeRank
}

// Compile turns a validated spec into its per-rank schedule.
func Compile(s Spec) (*Compiled, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	c := &Compiled{Spec: s}
	if err := s.Reader.compile(s, c); err != nil {
		return nil, err
	}
	return c, nil
}

// NumCompute returns C2, the compute rank count.
func (c *Compiled) NumCompute() int { return len(c.Compute) }

// NumIO returns C1, the dedicated I/O rank count.
func (c *Compiled) NumIO() int { return len(c.IO) }

// WorldSize returns the total rank count C1 + C2.
func (c *Compiled) WorldSize() int { return len(c.Compute) + len(c.IO) }

// Staged reports whether spans and release instants carry stage tags.
func (c *Compiled) Staged() bool { return c.Spec.Staged() }

// IOAt returns the I/O rank plan of group g, row j (nil when out of
// range) — the lookup failover logic uses to serve a dead reader's row.
func (c *Compiled) IOAt(g, j int) *IORank {
	q := g*c.Spec.Dec.NSdy + j
	if q < 0 || q >= len(c.IO) {
		return nil
	}
	return &c.IO[q]
}

// TotalAddrOps sums the nominal addressing operations of every rank — the
// whole-run quantities the paper compares: N·n_sdy·L for bar reading
// (Eq. 5 summed over readers), C2·N·(n_y/n_sdy+2η) for block reading
// (Eq. 2 summed over processors), N for the single reader.
func (c *Compiled) TotalAddrOps() int {
	var total int
	for _, r := range c.IO {
		total += r.AddrOps()
	}
	for _, r := range c.Compute {
		total += r.AddrOps()
	}
	return total
}

// computeRanks builds the compute side shared by every strategy: one rank
// per sub-domain in RankOf order, with the given per-rank stage builder.
func computeRanks(s Spec, stagesFor func(i, j int) ([]ComputeStage, error)) ([]ComputeRank, error) {
	out := make([]ComputeRank, 0, s.Dec.SubDomains())
	for r := 0; r < s.Dec.SubDomains(); r++ {
		i, j := s.Dec.CoordsOf(r)
		stages, err := stagesFor(i, j)
		if err != nil {
			return nil, err
		}
		out = append(out, ComputeRank{
			Rank:   r,
			Name:   metrics.ComputeName(i, j),
			I:      i,
			J:      j,
			Sub:    s.Dec.SubDomain(i, j),
			Stages: stages,
		})
	}
	return out, nil
}

// nominalExpansion returns the paper's unclamped expansion point count
// n̄_sd = (n_x/n_sdx + 2ξ)(n_y/n_sdy + 2η).
func nominalExpansion(d grid.Decomposition) int {
	w, h := d.ExpansionUnclamped()
	return w * h
}

// compile implements ReaderStrategy for BarReader: the S-EnKF schedule.
func (b BarReader) compile(s Spec, c *Compiled) error {
	d := s.Dec
	// Nominal small-bar geometry of §4.3: n_y/(n_sdy·L)+2η full-width
	// rows per bar; blocks of n_x/n_sdx+2ξ columns per destination.
	barRows := d.SubHeight()/s.L + 2*d.R.Eta
	blockCols := d.SubWidth() + 2*d.R.Xi
	layerRows := d.SubHeight()/s.L + 2*d.R.Eta

	var err error
	c.Compute, err = computeRanks(s, func(i, j int) ([]ComputeStage, error) {
		layers, err := d.Layers(i, j, s.L)
		if err != nil {
			return nil, err
		}
		stages := make([]ComputeStage, s.L)
		for l := 0; l < s.L; l++ {
			exp, err := d.LayerExpansion(i, j, l, s.L)
			if err != nil {
				return nil, err
			}
			stages[l] = ComputeStage{Stage: l, Expect: s.N, Box: exp, Analyze: layers[l]}
		}
		return stages, nil
	})
	if err != nil {
		return err
	}

	// Destination ranks of bar row j, shared across the row's readers and
	// stages: the n_sdx compute ranks of that row, in column order.
	rowDsts := make([][]int, d.NSdy)
	for j := range rowDsts {
		dsts := make([]int, d.NSdx)
		for i := range dsts {
			dsts[i] = d.RankOf(i, j)
		}
		rowDsts[j] = dsts
	}

	c2 := d.SubDomains()
	for g := 0; g < b.NCg; g++ {
		// The group's files: k ≡ g (mod n_cg), ascending.
		members := make([]int, 0, s.N/b.NCg)
		for k := g; k < s.N; k += b.NCg {
			members = append(members, k)
		}
		for j := 0; j < d.NSdy; j++ {
			stages := make([]IOStage, s.L)
			for l := 0; l < s.L; l++ {
				lb, err := d.LayerBar(j, l, s.L)
				if err != nil {
					return err
				}
				stages[l] = IOStage{
					Stage:   l,
					Members: members,
					Read: ReadTemplate{
						Box:           lb,
						Contiguous:    true,
						AddrOps:       1, // Eq. 5: one addressing op per small bar, all levels
						NominalPoints: barRows * d.Mesh.NX,
						Levels:        s.LevelCount(),
					},
					Comm: CommPlan{
						Dsts:         rowDsts[j],
						PerDstPoints: layerRows * blockCols,
					},
				}
			}
			c.IO = append(c.IO, IORank{
				Rank:    c2 + g*d.NSdy + j,
				Name:    metrics.IOName(g, j),
				Group:   g,
				Row:     j,
				Members: members,
				Stages:  stages,
			})
		}
	}
	return nil
}

// compile implements ReaderStrategy for BlockReader: the P-EnKF schedule.
func (BlockReader) compile(s Spec, c *Compiled) error {
	d := s.Dec
	members := make([]int, s.N)
	for k := range members {
		members[k] = k
	}
	nomRows := d.SubHeight() + 2*d.R.Eta
	var err error
	c.Compute, err = computeRanks(s, func(i, j int) ([]ComputeStage, error) {
		exp := d.Expansion(i, j)
		return []ComputeStage{{
			Stage:       0,
			SelfMembers: members,
			Read: ReadTemplate{
				Box:           exp,
				Contiguous:    false,
				AddrOps:       nomRows, // Eq. 2: one addressing op per nominal expansion row
				NominalPoints: nominalExpansion(d),
				Levels:        s.LevelCount(),
			},
			Box:     exp,
			Analyze: d.SubDomain(i, j),
		}}, nil
	})
	return err
}

// compile implements ReaderStrategy for SingleReader: the L-EnKF schedule.
func (SingleReader) compile(s Spec, c *Compiled) error {
	d := s.Dec
	var err error
	c.Compute, err = computeRanks(s, func(i, j int) ([]ComputeStage, error) {
		exp := d.Expansion(i, j)
		return []ComputeStage{{Stage: 0, Expect: s.N, Box: exp, Analyze: d.SubDomain(i, j)}}, nil
	})
	if err != nil {
		return err
	}
	np := d.SubDomains()
	dsts := make([]int, np)
	members := make([]int, s.N)
	for r := range dsts {
		dsts[r] = r
	}
	for k := range members {
		members[k] = k
	}
	full := grid.Box{X0: 0, X1: d.Mesh.NX, Y0: 0, Y1: d.Mesh.NY}
	read := ReadTemplate{
		Box:           full,
		Contiguous:    true,
		AddrOps:       1, // one addressing op per whole-file read
		NominalPoints: d.Mesh.NX * d.Mesh.NY,
		Levels:        s.LevelCount(), // always 1: SingleReader rejects multilevel
	}
	comm := CommPlan{Dsts: dsts, PerDstPoints: nominalExpansion(d)}
	// One round per member: read it in full, scatter every rank's
	// expansion block. All rounds belong to the single logical stage 0.
	stages := make([]IOStage, s.N)
	for k := 0; k < s.N; k++ {
		stages[k] = IOStage{Stage: 0, Members: members[k : k+1], Read: read, Comm: comm}
	}
	c.IO = []IORank{{
		Rank:    np,
		Name:    metrics.IOName(0, 0),
		Group:   0,
		Row:     0,
		Members: members,
		Stages:  stages,
	}}
	return nil
}

// String summarises the compiled plan for diagnostics. The level clause
// appears only on multilevel plans, so single-level plan hashes (runlog's
// PlanHash is a digest of Dump, whose header this is) are unchanged by the
// level dimension's existence.
func (c *Compiled) String() string {
	s := fmt.Sprintf("%s: %d compute + %d io ranks, %d stages, %d addressing ops",
		c.Spec.Algorithm, len(c.Compute), len(c.IO), c.Spec.L, c.TotalAddrOps())
	if lv := c.Spec.LevelCount(); lv > 1 {
		s += fmt.Sprintf(", %d levels", lv)
	}
	return s
}

// Dump writes the full per-rank schedule in a readable form: every I/O
// rank's stages (members read, region, addressing-op cost, destinations)
// and every compute rank's stages (expected messages or self-reads, and
// the region analysed). This is the plan both substrates interpret,
// printed exactly as compiled.
func (c *Compiled) Dump(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s (reader: %s)\n", c, c.Spec.Reader.Name()); err != nil {
		return err
	}
	for q := range c.IO {
		r := &c.IO[q]
		fmt.Fprintf(w, "  %s (rank %d, group %d, row %d): members %v, %d addressing ops\n",
			r.Name, r.Rank, r.Group, r.Row, r.Members, r.AddrOps())
		for _, st := range r.Stages {
			fmt.Fprintf(w, "    stage %d: read %s (%d ops x %d members) -> send %d points/member to ranks %v\n",
				st.Stage, st.Read.Box, st.Read.AddrOps, len(st.Members),
				st.Comm.PerDstPoints, st.Comm.Dsts)
		}
	}
	for q := range c.Compute {
		r := &c.Compute[q]
		fmt.Fprintf(w, "  %s (rank %d, sub-domain %s): %d addressing ops\n",
			r.Name, r.Rank, r.Sub, r.AddrOps())
		for _, st := range r.Stages {
			switch {
			case len(st.SelfMembers) > 0:
				fmt.Fprintf(w, "    stage %d: self-read %s (%d ops x %d members), analyze %s\n",
					st.Stage, st.Read.Box, st.Read.AddrOps, len(st.SelfMembers), st.Analyze)
			default:
				fmt.Fprintf(w, "    stage %d: expect %d blocks into %s, analyze %s\n",
					st.Stage, st.Expect, st.Box, st.Analyze)
			}
		}
	}
	return nil
}
