// Structural phase-span DAGs: the substrate-independent shape of a run.
//
// Both substrates emit, per processor track, an ordered chain of phase
// spans (read/comm on I/O tracks, compute on compute tracks) plus the
// helper-thread release instants ("ready", one per stage on each compute
// track of a staged run). Wall-clock and virtual timings differ between
// substrates — and wait spans exist only where a substrate actually
// blocked — but the busy-span chains and release points are fully
// determined by the compiled plan. StructuralDAG extracts that shape from
// a trace; ExpectedDAG derives it from the plan itself; DiffDAG compares.
// The observability suite asserts real == expected == simulated at equal
// geometry.

package plan

import (
	"fmt"
	"sort"
	"strings"

	"senkf/internal/metrics"
	"senkf/internal/trace"
)

// DAGNode is one busy phase span in a track's chain.
type DAGNode struct {
	Phase string // "read", "comm" or "compute"
	Stage int    // stage tag, -1 when untagged
}

// TrackDAG is the structural signature of one processor track: its busy
// spans in execution order, and the stages of its helper-thread release
// ("ready") instants in emission order.
type TrackDAG struct {
	Spans []DAGNode
	Ready []int
}

// StructuralDAG reduces a trace to its per-track structural signature.
// Only the substrate-independent shape survives: phase spans on io/ and
// comp/ tracks except waits (blocking is timing, not structure), ordered
// by start time, and the "ready" release instants per compute track. The
// release-edge topology is implied: span n+1 of a track is released by
// span n, and a staged compute span is additionally released by its
// stage's "ready" instant — which the comm span of the I/O ranks feeding
// that row produced.
func StructuralDAG(events []trace.Event) map[string]*TrackDAG {
	type keyed struct {
		start float64
		seq   int // emission order breaks exact ties deterministically
		node  DAGNode
	}
	spans := map[string][]keyed{}
	out := map[string]*TrackDAG{}
	track := func(name string) *TrackDAG {
		t := out[name]
		if t == nil {
			t = &TrackDAG{}
			out[name] = t
		}
		return t
	}
	for seq, ev := range events {
		if !strings.HasPrefix(ev.Track, metrics.IOPrefix+"/") &&
			!strings.HasPrefix(ev.Track, metrics.ComputePrefix+"/") {
			continue
		}
		switch {
		case ev.Ph == trace.PhaseSpan && ev.Cat == trace.CatPhase:
			if ev.Name == metrics.PhaseWait.String() {
				continue
			}
			stage := -1
			if v, ok := ev.ArgValue(trace.ArgStage); ok {
				stage = int(v)
			}
			spans[ev.Track] = append(spans[ev.Track],
				keyed{start: ev.Ts, seq: seq, node: DAGNode{Phase: ev.Name, Stage: stage}})
		case ev.Ph == trace.PhaseInstant && ev.Cat == trace.CatStage && ev.Name == "ready":
			stage := -1
			if v, ok := ev.ArgValue(trace.ArgStage); ok {
				stage = int(v)
			}
			track(ev.Track).Ready = append(track(ev.Track).Ready, stage)
		}
	}
	for name, ks := range spans {
		sort.SliceStable(ks, func(a, b int) bool {
			if ks[a].start != ks[b].start {
				return ks[a].start < ks[b].start
			}
			return ks[a].seq < ks[b].seq
		})
		t := track(name)
		t.Spans = make([]DAGNode, len(ks))
		for i, k := range ks {
			t.Spans[i] = k.node
		}
	}
	return out
}

// ExpectedDAG derives the structural signature a conforming interpreter of
// this plan must produce, on either substrate. The level dimension does not
// appear: a multilevel plan has the same span/release topology as its
// single-level twin, because every read fetches all levels at once and
// every stage's per-level sends and analyses ride inside the stage's one
// comm/compute span — levels change weights, never shape.
func (c *Compiled) ExpectedDAG() map[string]*TrackDAG {
	staged := c.Staged()
	tag := func(stage int) int {
		if staged {
			return stage
		}
		return -1
	}
	out := map[string]*TrackDAG{}
	for _, r := range c.IO {
		t := &TrackDAG{}
		for _, st := range r.Stages {
			t.Spans = append(t.Spans,
				DAGNode{Phase: metrics.PhaseRead.String(), Stage: tag(st.Stage)},
				DAGNode{Phase: metrics.PhaseComm.String(), Stage: tag(st.Stage)})
		}
		out[r.Name] = t
	}
	for _, r := range c.Compute {
		t := &TrackDAG{}
		for _, st := range r.Stages {
			for range st.SelfMembers {
				t.Spans = append(t.Spans, DAGNode{Phase: metrics.PhaseRead.String(), Stage: -1})
			}
			if staged && st.Expect > 0 {
				t.Ready = append(t.Ready, st.Stage)
			}
			t.Spans = append(t.Spans, DAGNode{Phase: metrics.PhaseCompute.String(), Stage: tag(st.Stage)})
		}
		out[r.Name] = t
	}
	return out
}

// DiffDAG reports the first structural difference between two signatures,
// or nil when they are identical: same track set, same span chain per
// track, same release points.
func DiffDAG(a, b map[string]*TrackDAG) error {
	names := make([]string, 0, len(a))
	for n := range a {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		tb, ok := b[n]
		if !ok {
			return fmt.Errorf("plan: track %q present in one DAG only", n)
		}
		ta := a[n]
		if len(ta.Spans) != len(tb.Spans) {
			return fmt.Errorf("plan: track %q has %d vs %d busy spans", n, len(ta.Spans), len(tb.Spans))
		}
		for i := range ta.Spans {
			if ta.Spans[i] != tb.Spans[i] {
				return fmt.Errorf("plan: track %q span %d: %+v vs %+v", n, i, ta.Spans[i], tb.Spans[i])
			}
		}
		if len(ta.Ready) != len(tb.Ready) {
			return fmt.Errorf("plan: track %q has %d vs %d release instants", n, len(ta.Ready), len(tb.Ready))
		}
		for i := range ta.Ready {
			if ta.Ready[i] != tb.Ready[i] {
				return fmt.Errorf("plan: track %q release %d: stage %d vs %d", n, i, ta.Ready[i], tb.Ready[i])
			}
		}
	}
	for n := range b {
		if _, ok := a[n]; !ok {
			return fmt.Errorf("plan: track %q present in one DAG only", n)
		}
	}
	return nil
}
