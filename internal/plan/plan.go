// Package plan is the declarative layer of the repository: each of the
// three algorithms — P-EnKF, L-EnKF and S-EnKF — is described once, as a
// reader strategy over a domain decomposition, and compiled into an
// explicit per-rank schedule (what every rank reads, with how many
// addressing operations, what it sends where at which stage, and where the
// helper-thread release points are).
//
// The compiled plan is substrate-agnostic: internal/core interprets it on
// the real machine (goroutine ranks + real member files, numerically
// exact) and internal/schedule replays it on the discrete-event machine
// (virtual clock + parallel-file-system model, paper scale). Both
// substrates therefore derive their event structure — spans, proc names,
// addressing-operation counts, stage release edges — from this single
// source of truth, which is what makes the real-vs-simulated structural
// parity test possible.
//
// This package must never grow a substrate dependency: it imports neither
// mpi/ensio (real substrate) nor sim/parfs (simulated substrate). CI
// enforces the layering (scripts/check-layering.sh).
package plan

import (
	"fmt"

	"senkf/internal/enkf"
	"senkf/internal/faults"
	"senkf/internal/grid"
	"senkf/internal/metrics"
	"senkf/internal/obs"
	"senkf/internal/runtimeobs"
	"senkf/internal/trace"
)

// Problem bundles everything a real (numerically exact) run needs: the
// assimilation configuration, the member-file directory, the observation
// network, and optional observability hooks. It is the one shared problem
// type used by every real execution path (formerly duplicated as
// core.Problem and baseline.Problem).
type Problem struct {
	Cfg enkf.Config
	Dir string       // directory containing the member files
	Net *obs.Network // full observation network (small; read by everyone)
	// Nets, when non-empty, makes the problem multilevel: member files
	// carry len(Nets) vertical levels interleaved per grid point (the
	// paper's h = levels × 8 bytes), and level l is assimilated against
	// Nets[l]. Net is ignored when Nets is set; when Nets is empty the
	// problem is the ordinary single-level one over Net.
	Nets []*obs.Network
	// Rec, when non-nil, receives wall-clock phase intervals.
	Rec *metrics.Recorder
	// Tr, when non-nil and enabled, receives phase spans per rank.
	Tr *trace.Tracer
	// Obs, when non-nil, observes the run: BeginRun with the compiled
	// plan before ranks start, EndRun with the outcome (see RunObserver).
	Obs RunObserver
	// Msgs, when non-nil, observes every point-to-point message the run
	// carries: BeginMessages with the compiled plan before ranks start,
	// then one OnMessage per delivery (see MsgObserver). The engine hands
	// it to the transport, which invokes it through its own structurally
	// identical interface.
	Msgs MsgObserver
	// Faults, when non-nil, injects deterministic anomalies into the real
	// substrate: straggler ranks have each busy phase dilated to
	// Factor × its real duration (the wall-clock mirror of the simulated
	// machine's Sleep dilation), announced as fault trace events so a
	// live monitor can correlate injections with watchdog verdicts. Nil
	// is the exact pre-fault execution.
	Faults *faults.Plan
	// Prof, when non-nil, propagates pprof labels: each rank goroutine
	// runs under {run_id, algo, substrate, proc} and each plan stage
	// under an additional {stage}, so CPU profiles slice by the same
	// coordinates the trace uses (see internal/runtimeobs). Nil disables
	// labeling at the cost of a pointer check.
	Prof *runtimeobs.LabelSet
}

// Validate checks the problem's internal consistency.
func (p Problem) Validate() error {
	if err := p.Cfg.Validate(); err != nil {
		return err
	}
	if len(p.Nets) > 0 {
		for l, n := range p.Nets {
			if n == nil {
				return fmt.Errorf("plan: nil network at level %d", l)
			}
		}
	} else if p.Net == nil {
		return fmt.Errorf("plan: nil observation network")
	}
	if p.Dir == "" {
		return fmt.Errorf("plan: empty member directory")
	}
	return nil
}

// Levels returns the problem's vertical level count (1 for single-level).
func (p Problem) Levels() int {
	if len(p.Nets) > 0 {
		return len(p.Nets)
	}
	return 1
}

// NetAt returns the observation network of level l: Nets[l] for a
// multilevel problem, Net otherwise.
func (p Problem) NetAt(l int) *obs.Network {
	if len(p.Nets) > 0 {
		return p.Nets[l]
	}
	return p.Net
}

// MultiLevelProblem is the 3-D variant of Problem: member files carry
// several vertical levels interleaved per grid point (the paper's
// h = levels × 8 bytes), each level with its own observation network. It
// is a convenience view — Problem() converts it to the shared Problem the
// engine executes, so multilevel runs get every Problem capability
// (observers, fault injection, pprof labels) for free.
type MultiLevelProblem struct {
	Cfg  enkf.Config // per-level analysis parameters (shared)
	Dir  string
	Nets []*obs.Network // one network per vertical level
	Rec  *metrics.Recorder
	Tr   *trace.Tracer
	// Obs, Msgs, Faults and Prof mirror the Problem hooks of the same names.
	Obs    RunObserver
	Msgs   MsgObserver
	Faults *faults.Plan
	Prof   *runtimeobs.LabelSet
}

// Problem converts the multilevel view to the shared engine problem.
func (p MultiLevelProblem) Problem() Problem {
	return Problem{
		Cfg: p.Cfg, Dir: p.Dir, Nets: p.Nets,
		Rec: p.Rec, Tr: p.Tr, Obs: p.Obs, Msgs: p.Msgs, Faults: p.Faults, Prof: p.Prof,
	}
}

// Validate checks the problem.
func (p MultiLevelProblem) Validate() error {
	if err := p.Cfg.Validate(); err != nil {
		return err
	}
	if len(p.Nets) == 0 {
		return fmt.Errorf("plan: no observation networks (need one per level)")
	}
	for l, n := range p.Nets {
		if n == nil {
			return fmt.Errorf("plan: nil network at level %d", l)
		}
	}
	if p.Dir == "" {
		return fmt.Errorf("plan: empty member directory")
	}
	return nil
}

// Levels returns the number of vertical levels.
func (p MultiLevelProblem) Levels() int { return len(p.Nets) }

// Algorithm identifies one of the paper's three schedules.
type Algorithm string

const (
	AlgSEnKF Algorithm = "S-EnKF"
	AlgPEnKF Algorithm = "P-EnKF"
	AlgLEnKF Algorithm = "L-EnKF"
)

// ReaderStrategy declares who reads the background ensemble and how. The
// three implementations mirror the paper's reading approaches; the
// interface is closed (unexported methods) because a strategy and its
// compiler are co-designed.
type ReaderStrategy interface {
	// Name returns the strategy's display name.
	Name() string
	validate(s Spec) error
	compile(s Spec, c *Compiled) error
}

// BarReader is S-EnKF's concurrent-group bar reading (§4.1): NCg groups of
// n_sdy dedicated I/O ranks; the readers of a group bar-read the group's
// N/NCg member files stage by stage, one addressing operation per small
// bar (Eq. 5), while different groups read different files simultaneously.
type BarReader struct {
	NCg int // concurrent I/O groups
}

// Name implements ReaderStrategy.
func (BarReader) Name() string { return "bar" }

func (b BarReader) validate(s Spec) error {
	if s.L <= 0 {
		return fmt.Errorf("plan: layer count must be positive, got %d", s.L)
	}
	if s.Dec.SubHeight()%s.L != 0 {
		return fmt.Errorf("plan: sub-domain height %d not divisible by L=%d", s.Dec.SubHeight(), s.L)
	}
	if b.NCg <= 0 {
		return fmt.Errorf("plan: concurrent group count must be positive, got %d", b.NCg)
	}
	if s.N%b.NCg != 0 {
		return fmt.Errorf("plan: %d members not divisible by n_cg=%d", s.N, b.NCg)
	}
	return nil
}

// BlockReader is P-EnKF's block reading (§2.3, Figure 3): every compute
// rank block-reads its own expansion from every member file, paying one
// addressing operation per nominal expansion row (Eq. 2). There are no
// dedicated I/O ranks and no communication.
type BlockReader struct{}

// Name implements ReaderStrategy.
func (BlockReader) Name() string { return "block" }

func (BlockReader) validate(s Spec) error {
	if s.L != 1 {
		return fmt.Errorf("plan: block reading is single-stage, got L=%d", s.L)
	}
	return nil
}

// SingleReader is L-EnKF's reading (§3.1): one dedicated reader rank reads
// every member file in full (one addressing operation per file) and
// scatters expansion blocks to the compute ranks serially.
type SingleReader struct{}

// Name implements ReaderStrategy.
func (SingleReader) Name() string { return "single" }

func (SingleReader) validate(s Spec) error {
	if s.L != 1 {
		return fmt.Errorf("plan: single-reader scattering is single-stage, got L=%d", s.L)
	}
	if s.LevelCount() != 1 {
		return fmt.Errorf("plan: single-reader scattering is single-level, got %d levels", s.LevelCount())
	}
	return nil
}

// Spec is the declarative description of one algorithm instance: the
// decomposition geometry, the ensemble size, the pipeline depth, and the
// reader strategy. Build specs with SEnKF/PEnKF/LEnKF and turn them into
// executable per-rank schedules with Compile.
type Spec struct {
	Algorithm Algorithm
	Dec       grid.Decomposition
	N         int // ensemble members
	L         int // pipeline stages (layers per sub-domain); 1 for the baselines
	Reader    ReaderStrategy
	// Levels is the vertical level count of the member files (the paper's
	// h = levels × 8 bytes per grid point). 0 means 1 (single-level); use
	// LevelCount for the effective value. Levels does not change the plan's
	// rank/stage topology — every read fetches all levels of its region at
	// the same addressing-op cost (the bar-reading co-design), every send
	// carries one level's block, and compute analyses level by level inside
	// each stage.
	Levels int
}

// LevelCount returns the effective level count (Levels, with 0 → 1).
func (s Spec) LevelCount() int {
	if s.Levels <= 0 {
		return 1
	}
	return s.Levels
}

// WithLevels returns a copy of the spec with the level dimension set.
func (s Spec) WithLevels(levels int) Spec {
	s.Levels = levels
	return s
}

// Tag gives every (stage, member, level) triple a distinct message tag in
// the plan's tag space. With levels = 1 it reduces to the classic
// stage·n + member single-level tag, so single-level runs are
// bit-compatible with plans compiled before the level dimension existed.
func Tag(stage, nMembers, levels, member, level int) int {
	return (stage*nMembers+member)*levels + level
}

// Tag returns the message tag of (stage, member, level) under this spec's
// ensemble size and level count — the one tag derivation both the real
// engine and any replay share.
func (s Spec) Tag(stage, member, level int) int {
	return Tag(stage, s.N, s.LevelCount(), member, level)
}

// SEnKF declares the paper's schedule: bar reading in ncg concurrent
// groups feeding an L-stage overlapped pipeline.
func SEnKF(dec grid.Decomposition, n, l, ncg int) Spec {
	return Spec{Algorithm: AlgSEnKF, Dec: dec, N: n, L: l, Reader: BarReader{NCg: ncg}}
}

// PEnKF declares the block-reading baseline.
func PEnKF(dec grid.Decomposition, n int) Spec {
	return Spec{Algorithm: AlgPEnKF, Dec: dec, N: n, L: 1, Reader: BlockReader{}}
}

// LEnKF declares the single-reader baseline.
func LEnKF(dec grid.Decomposition, n int) Spec {
	return Spec{Algorithm: AlgLEnKF, Dec: dec, N: n, L: 1, Reader: SingleReader{}}
}

// Validate checks the spec against the problem geometry.
func (s Spec) Validate() error {
	if s.Reader == nil {
		return fmt.Errorf("plan: nil reader strategy")
	}
	if s.N <= 0 {
		return fmt.Errorf("plan: ensemble size must be positive, got %d", s.N)
	}
	if s.Dec.NSdx <= 0 || s.Dec.NSdy <= 0 {
		return fmt.Errorf("plan: invalid decomposition %dx%d", s.Dec.NSdx, s.Dec.NSdy)
	}
	if s.Levels < 0 {
		return fmt.Errorf("plan: negative level count %d", s.Levels)
	}
	return s.Reader.validate(s)
}

// Staged reports whether the spec describes a multi-stage pipeline whose
// spans and release instants carry stage tags (true only for S-EnKF; the
// baselines' single stage is untagged on both substrates).
func (s Spec) Staged() bool { return s.Algorithm == AlgSEnKF }
