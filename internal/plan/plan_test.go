package plan

import (
	"fmt"
	"testing"

	"senkf/internal/grid"
	"senkf/internal/metrics"
)

func dec(t *testing.T, nx, ny, nsdx, nsdy, xi, eta int) grid.Decomposition {
	t.Helper()
	m, err := grid.NewMesh(nx, ny)
	if err != nil {
		t.Fatal(err)
	}
	d, err := grid.NewDecomposition(m, nsdx, nsdy, grid.Radius{Xi: xi, Eta: eta})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestBarReaderAddrOpsEq5 sweeps (n_sdy, L, n_cg) and asserts the golden
// Eq. 5 counts: every reader pays exactly one addressing operation per
// small bar — (N/n_cg)·L per reader, N·n_sdy·L in total.
func TestBarReaderAddrOpsEq5(t *testing.T) {
	const n = 24
	cases := []struct{ nsdx, nsdy, l, ncg int }{
		{4, 2, 1, 1},
		{4, 2, 3, 2},
		{2, 4, 5, 3},
		{6, 1, 2, 4},
		{1, 5, 4, 6},
		{3, 5, 2, 24},
	}
	for _, tc := range cases {
		d := dec(t, 120, 60, tc.nsdx, tc.nsdy, 8, 4)
		c, err := Compile(SEnKF(d, n, tc.l, tc.ncg))
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		if got, want := c.NumIO(), tc.ncg*tc.nsdy; got != want {
			t.Errorf("%+v: C1 = %d, want %d", tc, got, want)
		}
		if got, want := c.NumCompute(), tc.nsdx*tc.nsdy; got != want {
			t.Errorf("%+v: C2 = %d, want %d", tc, got, want)
		}
		perReader := n / tc.ncg * tc.l
		for _, r := range c.IO {
			if got := r.AddrOps(); got != perReader {
				t.Errorf("%+v: reader %s addressing ops = %d, want %d (Eq. 5)", tc, r.Name, got, perReader)
			}
			if len(r.Members) != n/tc.ncg {
				t.Errorf("%+v: reader %s has %d members, want %d", tc, r.Name, len(r.Members), n/tc.ncg)
			}
			for _, k := range r.Members {
				if k%tc.ncg != r.Group {
					t.Errorf("%+v: reader %s member %d not ≡ %d (mod %d)", tc, r.Name, k, r.Group, tc.ncg)
				}
			}
		}
		if got, want := c.TotalAddrOps(), n*tc.nsdy*tc.l; got != want {
			t.Errorf("%+v: total addressing ops = %d, want N·n_sdy·L = %d", tc, got, want)
		}
	}
}

// TestBlockReaderAddrOpsEq2 sweeps decompositions and asserts the golden
// Eq. 2 counts: every processor pays one addressing operation per nominal
// expansion row per file — N·(n_y/n_sdy + 2η) each.
func TestBlockReaderAddrOpsEq2(t *testing.T) {
	const n = 10
	for _, tc := range []struct{ nsdx, nsdy, eta int }{
		{4, 2, 4}, {2, 5, 4}, {1, 1, 0}, {6, 3, 7}, {12, 10, 4},
	} {
		d := dec(t, 120, 60, tc.nsdx, tc.nsdy, 8, tc.eta)
		c, err := Compile(PEnKF(d, n))
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		if c.NumIO() != 0 {
			t.Errorf("%+v: block reading has %d I/O ranks, want 0", tc, c.NumIO())
		}
		perProc := n * (60/tc.nsdy + 2*tc.eta)
		for _, r := range c.Compute {
			if got := r.AddrOps(); got != perProc {
				t.Errorf("%+v: proc %s addressing ops = %d, want %d (Eq. 2)", tc, r.Name, got, perProc)
			}
		}
		if got, want := c.TotalAddrOps(), tc.nsdx*tc.nsdy*perProc; got != want {
			t.Errorf("%+v: total addressing ops = %d, want %d", tc, got, want)
		}
	}
}

// TestSingleReaderPlan asserts the L-EnKF shape: one dedicated reader
// after the compute ranks, one whole-file addressing operation per member,
// one scatter round per member.
func TestSingleReaderPlan(t *testing.T) {
	const n = 7
	d := dec(t, 120, 60, 4, 2, 8, 4)
	c, err := Compile(LEnKF(d, n))
	if err != nil {
		t.Fatal(err)
	}
	if c.NumIO() != 1 || c.WorldSize() != d.SubDomains()+1 {
		t.Fatalf("world = %d compute + %d io, want %d + 1", c.NumCompute(), c.NumIO(), d.SubDomains())
	}
	r := c.IO[0]
	if r.Rank != d.SubDomains() || r.Name != metrics.IOName(0, 0) {
		t.Errorf("reader rank %d name %q", r.Rank, r.Name)
	}
	if got := r.AddrOps(); got != n {
		t.Errorf("reader addressing ops = %d, want %d (one per whole file)", got, n)
	}
	if len(r.Stages) != n {
		t.Fatalf("reader has %d rounds, want %d", len(r.Stages), n)
	}
	for k, st := range r.Stages {
		if st.Stage != 0 || len(st.Members) != 1 || st.Members[0] != k {
			t.Errorf("round %d: stage %d members %v", k, st.Stage, st.Members)
		}
		if len(st.Comm.Dsts) != d.SubDomains() {
			t.Errorf("round %d scatters to %d ranks, want %d", k, len(st.Comm.Dsts), d.SubDomains())
		}
	}
}

// TestCompiledNamesAndLayout pins the rank layout and the stable proc
// names to the single naming source (metrics.IOName/ComputeName): compute
// ranks first in RankOf order, then I/O ranks group-major.
func TestCompiledNamesAndLayout(t *testing.T) {
	d := dec(t, 120, 60, 3, 2, 8, 4)
	c, err := Compile(SEnKF(d, 12, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	for r, cp := range c.Compute {
		i, j := d.CoordsOf(r)
		if cp.Rank != r || cp.Name != metrics.ComputeName(i, j) {
			t.Errorf("compute %d: rank %d name %q, want %q", r, cp.Rank, cp.Name, metrics.ComputeName(i, j))
		}
	}
	for q, ior := range c.IO {
		g, j := q/d.NSdy, q%d.NSdy
		if ior.Rank != c.NumCompute()+q || ior.Group != g || ior.Row != j || ior.Name != metrics.IOName(g, j) {
			t.Errorf("io %d: rank %d group %d row %d name %q", q, ior.Rank, ior.Group, ior.Row, ior.Name)
		}
		if got := c.IOAt(g, j); got == nil || got.Rank != ior.Rank {
			t.Errorf("IOAt(%d,%d) = %v", g, j, got)
		}
	}
	if c.IOAt(5, 0) != nil {
		t.Error("IOAt out of range returned a rank")
	}
}

// TestSpecValidationEdges covers the divisibility edges the compiler must
// reject: SubHeight % L and N % n_cg, plus degenerate parameters.
func TestSpecValidationEdges(t *testing.T) {
	d := dec(t, 120, 60, 4, 2, 8, 4) // SubHeight = 30
	for _, tc := range []struct {
		name string
		spec Spec
	}{
		{"L=0", SEnKF(d, 12, 0, 2)},
		{"L=-1", SEnKF(d, 12, -1, 2)},
		{"SubHeight%L", SEnKF(d, 12, 4, 2)}, // 30 % 4 != 0
		{"NCg=0", SEnKF(d, 12, 3, 0)},
		{"N%NCg", SEnKF(d, 12, 3, 5)}, // 12 % 5 != 0
		{"N=0", SEnKF(d, 0, 3, 2)},
		{"nil reader", Spec{Algorithm: AlgSEnKF, Dec: d, N: 12, L: 3}},
		{"multi-stage block", Spec{Algorithm: AlgPEnKF, Dec: d, N: 12, L: 2, Reader: BlockReader{}}},
		{"multi-stage single", Spec{Algorithm: AlgLEnKF, Dec: d, N: 12, L: 2, Reader: SingleReader{}}},
	} {
		if _, err := Compile(tc.spec); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	// The valid boundary cases must compile: L dividing exactly, n_cg = N.
	for _, ok := range []Spec{
		SEnKF(d, 12, 30, 1), // L = SubHeight
		SEnKF(d, 12, 1, 12), // one group per member
		PEnKF(d, 1),
		LEnKF(d, 1),
	} {
		if _, err := Compile(ok); err != nil {
			t.Errorf("%v/%v: rejected: %v", ok.Algorithm, ok.Reader.Name(), err)
		}
	}
}

// TestReadTemplatesMatchGeometry cross-checks the compiled read boxes and
// nominal sizes against the grid layer: bars are full-width and clamped,
// nominal points ignore clamping.
func TestReadTemplatesMatchGeometry(t *testing.T) {
	d := dec(t, 120, 60, 4, 2, 8, 4)
	const n, L, ncg = 12, 3, 2
	c, err := Compile(SEnKF(d, n, L, ncg))
	if err != nil {
		t.Fatal(err)
	}
	barRows := d.SubHeight()/L + 2*d.R.Eta
	for _, r := range c.IO {
		for l, st := range r.Stages {
			lb, err := d.LayerBar(r.Row, l, L)
			if err != nil {
				t.Fatal(err)
			}
			if st.Read.Box != lb {
				t.Errorf("%s stage %d: box %v, want %v", r.Name, l, st.Read.Box, lb)
			}
			if !st.Read.Contiguous || st.Read.AddrOps != 1 {
				t.Errorf("%s stage %d: bar read must be one contiguous addressing op, got %+v", r.Name, l, st.Read)
			}
			if st.Read.NominalPoints != barRows*d.Mesh.NX {
				t.Errorf("%s stage %d: nominal points %d, want %d", r.Name, l, st.Read.NominalPoints, barRows*d.Mesh.NX)
			}
			// Edge rows are clamped on disk, so the exact box can hold
			// fewer rows than the nominal bar — never more.
			if st.Read.Box.Height() > barRows {
				t.Errorf("%s stage %d: clamped box %v exceeds nominal %d rows", r.Name, l, st.Read.Box, barRows)
			}
		}
	}
	// The payload box of every destination is that rank's stage box.
	for _, r := range c.IO {
		for l, st := range r.Stages {
			for _, dst := range st.Comm.Dsts {
				exp, err := d.LayerExpansion(c.Compute[dst].I, c.Compute[dst].J, l, L)
				if err != nil {
					t.Fatal(err)
				}
				if c.Compute[dst].Stages[l].Box != exp {
					t.Errorf("dst %d stage %d: box %v, want %v", dst, l, c.Compute[dst].Stages[l].Box, exp)
				}
			}
		}
	}
}

// TestExpectedDAGShape pins the structural signature each algorithm's
// interpreters must reproduce.
func TestExpectedDAGShape(t *testing.T) {
	d := dec(t, 120, 60, 4, 2, 8, 4)
	const n = 12

	s, err := Compile(SEnKF(d, n, 3, 2))
	if err != nil {
		t.Fatal(err)
	}
	dag := s.ExpectedDAG()
	if len(dag) != s.WorldSize() {
		t.Fatalf("S-EnKF DAG has %d tracks, want %d", len(dag), s.WorldSize())
	}
	io := dag[metrics.IOName(1, 1)]
	if len(io.Spans) != 6 || io.Spans[0] != (DAGNode{Phase: "read", Stage: 0}) || io.Spans[5] != (DAGNode{Phase: "comm", Stage: 2}) {
		t.Errorf("S-EnKF io track: %+v", io.Spans)
	}
	cp := dag[metrics.ComputeName(0, 0)]
	if len(cp.Spans) != 3 || fmt.Sprint(cp.Ready) != "[0 1 2]" {
		t.Errorf("S-EnKF compute track: spans %+v ready %v", cp.Spans, cp.Ready)
	}

	p, err := Compile(PEnKF(d, n))
	if err != nil {
		t.Fatal(err)
	}
	pcp := p.ExpectedDAG()[metrics.ComputeName(0, 0)]
	if len(pcp.Spans) != n+1 || len(pcp.Ready) != 0 {
		t.Errorf("P-EnKF compute track: %d spans %d ready, want %d/0", len(pcp.Spans), len(pcp.Ready), n+1)
	}

	le, err := Compile(LEnKF(d, n))
	if err != nil {
		t.Fatal(err)
	}
	ldag := le.ExpectedDAG()
	lio := ldag[metrics.IOName(0, 0)]
	if len(lio.Spans) != 2*n {
		t.Errorf("L-EnKF reader track: %d spans, want %d", len(lio.Spans), 2*n)
	}
	lcp := ldag[metrics.ComputeName(0, 0)]
	if len(lcp.Spans) != 1 || len(lcp.Ready) != 0 {
		t.Errorf("L-EnKF compute track: %+v", lcp)
	}
}

// TestDiffDAG exercises the comparison on each mismatch class.
func TestDiffDAG(t *testing.T) {
	base := func() map[string]*TrackDAG {
		return map[string]*TrackDAG{
			"io/g0/r0":  {Spans: []DAGNode{{Phase: "read", Stage: 0}, {Phase: "comm", Stage: 0}}},
			"comp/x0y0": {Spans: []DAGNode{{Phase: "compute", Stage: 0}}, Ready: []int{0}},
		}
	}
	if err := DiffDAG(base(), base()); err != nil {
		t.Errorf("identical DAGs differ: %v", err)
	}
	b := base()
	b["io/g0/r1"] = &TrackDAG{}
	if err := DiffDAG(base(), b); err == nil {
		t.Error("extra track not detected")
	}
	b = base()
	b["io/g0/r0"].Spans[1].Stage = 1
	if err := DiffDAG(base(), b); err == nil {
		t.Error("stage mismatch not detected")
	}
	b = base()
	b["comp/x0y0"].Ready = []int{1}
	if err := DiffDAG(base(), b); err == nil {
		t.Error("release mismatch not detected")
	}
	b = base()
	b["comp/x0y0"].Spans = nil
	if err := DiffDAG(base(), b); err == nil {
		t.Error("span-count mismatch not detected")
	}
}
