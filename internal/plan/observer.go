// RunObserver is the plan layer's hook for live observability: a monitor
// (internal/monitor) attaches here without either substrate knowing its
// concrete type, and without the monitor importing a substrate. The
// contract is substrate-agnostic, like the plan itself.

package plan

// RunObserver observes one execution of a compiled plan. Both substrates
// call BeginRun with the compiled plan immediately after compilation (so
// the observer can derive ExpectedDAG, release counts, and rank naming),
// stream trace events to the observer out of band (via a trace.Tee sink),
// and call EndRun exactly once with the run's outcome.
//
// EndRun may decorate a non-nil error with observed context (e.g. the
// plan edge a deadlocked rank was waiting on, plus a flight-recorder
// dump) and must return nil when given nil: observation never fails a
// healthy run.
type RunObserver interface {
	BeginRun(c *Compiled)
	EndRun(err error) error
}
