package plan

import (
	"testing"
)

// TestInvertTagRoundTrip checks that InvertTag recovers every
// (stage, member, level) triple Tag can produce, and rejects everything
// outside the plan tag space — collectives (negative) and the result
// gather (beyond the stage range) must land in the "other" bucket.
func TestInvertTagRoundTrip(t *testing.T) {
	specs := []Spec{
		SEnKF(dec(t, 48, 24, 4, 2, 4, 2), 8, 2, 2),
		SEnKF(dec(t, 48, 24, 4, 2, 4, 2), 8, 2, 2).WithLevels(3),
		PEnKF(dec(t, 48, 24, 4, 2, 4, 2), 8),
		LEnKF(dec(t, 48, 24, 4, 2, 4, 2), 8).WithLevels(2),
	}
	for _, s := range specs {
		lv := s.LevelCount()
		for stage := 0; stage < s.L; stage++ {
			for member := 0; member < s.N; member++ {
				for level := 0; level < lv; level++ {
					tag := s.Tag(stage, member, level)
					gs, gm, gl, ok := s.InvertTag(tag)
					if !ok || gs != stage || gm != member || gl != level {
						t.Fatalf("%s L=%d N=%d levels=%d: InvertTag(Tag(%d,%d,%d)) = (%d,%d,%d,%v)",
							s.Algorithm, s.L, s.N, lv, stage, member, level, gs, gm, gl, ok)
					}
				}
			}
		}
		for _, tag := range []int{-1, -42, s.L * s.N * lv, s.L*s.N*lv + 7, 1 << 20} {
			if _, _, _, ok := s.InvertTag(tag); ok {
				t.Errorf("%s: InvertTag(%d) accepted a tag outside [0, %d)",
					s.Algorithm, tag, s.L*s.N*lv)
			}
		}
	}
}

// TestEdgeMatrixRecordAndDiff exercises the matrix accumulation and the
// first-difference report.
func TestEdgeMatrixRecordAndDiff(t *testing.T) {
	k1 := EdgeKey{Src: 0, Dst: 2, Stage: 1, Level: 0}
	k2 := EdgeKey{Src: 1, Dst: 2, Stage: 0, Level: 1}
	m := EdgeMatrix{}
	m.Record(k1, 100)
	m.Record(k1, 50)
	m.Record(k2, 10)
	if got := m[k1]; got != (EdgeStats{Msgs: 2, Bytes: 150}) {
		t.Errorf("edge %s accumulated %+v, want 2 msgs / 150 bytes", k1, got)
	}
	if tot := m.Totals(); tot != (EdgeStats{Msgs: 3, Bytes: 160}) {
		t.Errorf("totals %+v, want 3 msgs / 160 bytes", tot)
	}

	c := m.Clone()
	if !m.Equal(c) {
		t.Fatalf("clone differs: %v", m.Diff(c))
	}
	c.Record(k2, 5)
	if m.Equal(c) {
		t.Error("matrices with different stats compare equal")
	}
	delete(c, k1)
	if err := m.Diff(c); err == nil {
		t.Error("Diff missed a removed edge")
	}
	extra := m.Clone()
	extra.Record(EdgeKey{Src: 9, Dst: 9, Stage: 0, Level: 0}, 1)
	if err := m.Diff(extra); err == nil {
		t.Error("Diff missed an extra edge in the other matrix")
	}
}

// TestExpectedEdgesMatchStageMsgBytes hand-counts the expected matrix of a
// compiled S-EnKF plan: every (io rank, stage, dst, level) edge carries one
// message per member of the reader's group, each sized by StageMsgBytes.
func TestExpectedEdgesMatchStageMsgBytes(t *testing.T) {
	const (
		n      = 8
		layers = 2
		ncg    = 2
		levels = 3
	)
	c, err := Compile(SEnKF(dec(t, 48, 24, 4, 2, 4, 2), n, layers, ncg).WithLevels(levels))
	if err != nil {
		t.Fatal(err)
	}
	m := ExpectedEdges(c)
	if len(m) == 0 {
		t.Fatal("S-EnKF expected matrix is empty")
	}
	want := EdgeMatrix{}
	for _, r := range c.IO {
		for _, st := range r.Stages {
			for _, dst := range st.Comm.Dsts {
				for lvl := 0; lvl < levels; lvl++ {
					k := EdgeKey{Src: r.Rank, Dst: dst, Stage: st.Stage, Level: lvl}
					es := want[k]
					es.Msgs += int64(len(st.Members))
					es.Bytes += int64(len(st.Members)) * StageMsgBytes(c, dst, st.Stage)
					want[k] = es
				}
			}
		}
	}
	if err := want.Diff(m); err != nil {
		t.Errorf("hand count vs ExpectedEdges: %v", err)
	}

	// Block reading has no dedicated I/O ranks, hence no plan edges.
	pc, err := Compile(PEnKF(dec(t, 48, 24, 4, 2, 4, 2), n))
	if err != nil {
		t.Fatal(err)
	}
	if got := ExpectedEdges(pc); len(got) != 0 {
		t.Errorf("P-EnKF expected matrix has %d edges, want none", len(got))
	}
}
