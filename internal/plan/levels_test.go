package plan

import (
	"fmt"
	"strings"
	"testing"
)

// TestExpectedDAGLevelsInvariant sweeps levels × n_cg and asserts the level
// dimension's central structural property: a multilevel plan has exactly the
// same ExpectedDAG as its single-level twin — levels change the weights of
// reads, messages and analyses, never the span/release topology — while the
// compiled read templates carry the level factor explicitly.
func TestExpectedDAGLevelsInvariant(t *testing.T) {
	const n = 8
	d := dec(t, 48, 24, 4, 2, 4, 2)
	specs := func(levels int) []Spec {
		return []Spec{
			SEnKF(d, n, 2, 2).WithLevels(levels),
			SEnKF(d, n, 3, 4).WithLevels(levels),
			PEnKF(d, n).WithLevels(levels),
		}
	}
	base := specs(0)
	for _, levels := range []int{1, 2, 3, 5} {
		for i, s := range specs(levels) {
			t.Run(fmt.Sprintf("%s-L%d-lv%d", s.Algorithm, s.L, levels), func(t *testing.T) {
				c, err := Compile(s)
				if err != nil {
					t.Fatal(err)
				}
				c1, err := Compile(base[i])
				if err != nil {
					t.Fatal(err)
				}
				if err := DiffDAG(c.ExpectedDAG(), c1.ExpectedDAG()); err != nil {
					t.Errorf("levels=%d changed the structural DAG: %v", levels, err)
				}
				for _, r := range append([]IORank{}, c.IO...) {
					for _, st := range r.Stages {
						if st.Read.Levels != levels {
							t.Errorf("reader %s stage %d: template levels %d, want %d", r.Name, st.Stage, st.Read.Levels, levels)
						}
						if got, want := st.Read.PointsAllLevels(), st.Read.NominalPoints*levels; got != want {
							t.Errorf("reader %s stage %d: PointsAllLevels %d, want %d", r.Name, st.Stage, got, want)
						}
					}
				}
				for _, r := range c.Compute {
					for _, st := range r.Stages {
						// Message stages have no read template; only
						// self-read stages carry the level factor.
						if st.Expect == 0 && st.Read.Levels != levels {
							t.Errorf("proc %s stage %d: template levels %d, want %d", r.Name, st.Stage, st.Read.Levels, levels)
						}
					}
				}
				// The plan dump (and hence runlog.PlanHash) mentions levels
				// only when the dimension is real, so single-level plan
				// hashes are stable across the refactor.
				if has := strings.Contains(c.String(), "levels"); has != (levels > 1) {
					t.Errorf("levels=%d: String() = %q, levels clause present = %v", levels, c.String(), has)
				}
			})
		}
	}
}

// TestTagSpace asserts the unified tag derivation: bit-compatibility with
// the classic stage·n + member tag at one level, and injectivity over the
// (stage, member, level) grid.
func TestTagSpace(t *testing.T) {
	const n, nl, stages = 8, 3, 4
	for l := 0; l < stages; l++ {
		for k := 0; k < n; k++ {
			if got, want := Tag(l, n, 1, k, 0), l*n+k; got != want {
				t.Fatalf("Tag(%d,%d,1,%d,0) = %d, want classic %d", l, n, k, got, want)
			}
		}
	}
	seen := map[int][3]int{}
	s := SEnKF(dec(t, 48, 24, 4, 2, 4, 2), n, stages, 2).WithLevels(nl)
	for l := 0; l < stages; l++ {
		for k := 0; k < n; k++ {
			for lvl := 0; lvl < nl; lvl++ {
				tag := s.Tag(l, k, lvl)
				if prev, dup := seen[tag]; dup {
					t.Fatalf("tag %d assigned to both %v and %v", tag, prev, [3]int{l, k, lvl})
				}
				seen[tag] = [3]int{l, k, lvl}
			}
		}
	}
}

// TestLevelValidation covers the spec- and problem-level guards of the
// level dimension.
func TestLevelValidation(t *testing.T) {
	d := dec(t, 48, 24, 4, 2, 4, 2)
	if err := SEnKF(d, 8, 2, 2).WithLevels(-1).Validate(); err == nil {
		t.Error("negative level count accepted")
	}
	if err := LEnKF(d, 8).WithLevels(3).Validate(); err == nil {
		t.Error("multilevel single-reader spec accepted")
	}
	if err := LEnKF(d, 8).WithLevels(1).Validate(); err != nil {
		t.Errorf("single-level L-EnKF rejected: %v", err)
	}
}
