package obs

import (
	"fmt"
	"math"

	"senkf/internal/grid"
	"senkf/internal/linalg"
)

// Support is one grid point contributing to an observation with the given
// interpolation weight. A selection observation (the paper's default) has a
// single support point of weight 1; an off-grid observation has up to four
// (bilinear interpolation), realising a non-trivial linear observation
// operator H "constructed from limited observational data" (§4.1).
type Support struct {
	X, Y int
	W    float64
}

// Support returns the observation's support points and weights. For an
// observation at fractional position (X+OffsetX, Y+OffsetY) the weights are
// the bilinear coefficients of the four surrounding grid points; corners
// with zero weight are omitted, so an on-grid observation yields exactly
// one point of weight 1.
func (o Observation) Support() []Support {
	fx, fy := o.OffsetX, o.OffsetY
	type corner struct {
		dx, dy int
		w      float64
	}
	corners := []corner{
		{0, 0, (1 - fx) * (1 - fy)},
		{1, 0, fx * (1 - fy)},
		{0, 1, (1 - fx) * fy},
		{1, 1, fx * fy},
	}
	var out []Support
	for _, c := range corners {
		if c.w > 0 {
			out = append(out, Support{X: o.X + c.dx, Y: o.Y + c.dy, W: c.w})
		}
	}
	return out
}

// InterpolateField evaluates the observation operator on a full row-major
// field: the bilinear interpolation at the observation's position.
func (o Observation) InterpolateField(m grid.Mesh, field []float64) float64 {
	var v float64
	for _, s := range o.Support() {
		v += s.W * field[m.Index(s.X, s.Y)]
	}
	return v
}

// perturbKeys derives the integer key tuple identifying this observation's
// random streams. Fractional offsets are quantized to 2^-20 grid cells so
// distinct off-grid observations in the same cell get independent streams.
func (o Observation) perturbKeys(member int) []int {
	const q = 1 << 20
	return []int{0x5EED, o.X, o.Y, int(math.Round(o.OffsetX * q)), int(math.Round(o.OffsetY * q)), member}
}

// RandomOffGridNetwork places count observations at random fractional
// positions, each measuring the bilinear interpolation of the truth plus
// noise of the given variance.
func RandomOffGridNetwork(m grid.Mesh, truth []float64, count int, variance float64, seed uint64) (*Network, error) {
	if count < 0 {
		return nil, fmt.Errorf("obs: negative count %d", count)
	}
	if len(truth) != m.Points() {
		return nil, fmt.Errorf("obs: truth field has %d points, mesh has %d", len(truth), m.Points())
	}
	if variance <= 0 {
		return nil, fmt.Errorf("obs: variance must be positive, got %g", variance)
	}
	if m.NX < 2 || m.NY < 2 {
		return nil, fmt.Errorf("obs: off-grid observations need at least a 2x2 mesh")
	}
	s := linalg.KeyedStream(seed, 0x0B7)
	obsList := make([]Observation, 0, count)
	for i := 0; i < count; i++ {
		o := Observation{
			X:       s.Intn(m.NX - 1),
			Y:       s.Intn(m.NY - 1),
			OffsetX: s.Float64(),
			OffsetY: s.Float64(),
		}
		o.Variance = variance
		ns := linalg.KeyedStream(seed, o.perturbKeys(-1)...)
		o.Value = o.InterpolateField(m, truth) + ns.Norm()*sqrt(variance)
		obsList = append(obsList, o)
	}
	return NewNetwork(m, obsList)
}
