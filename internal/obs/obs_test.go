package obs

import (
	"math"
	"testing"
	"testing/quick"

	"senkf/internal/grid"
)

func testMesh(t *testing.T, nx, ny int) grid.Mesh {
	t.Helper()
	m, err := grid.NewMesh(nx, ny)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func flatTruth(m grid.Mesh, v float64) []float64 {
	f := make([]float64, m.Points())
	for i := range f {
		f[i] = v
	}
	return f
}

func TestNewNetworkValidation(t *testing.T) {
	m := testMesh(t, 4, 4)
	if _, err := NewNetwork(m, []Observation{{X: 4, Y: 0, Variance: 1}}); err == nil {
		t.Error("expected out-of-mesh error")
	}
	if _, err := NewNetwork(m, []Observation{{X: 0, Y: 0, Variance: 0}}); err == nil {
		t.Error("expected non-positive variance error")
	}
}

func TestNewNetworkSortsRowMajor(t *testing.T) {
	m := testMesh(t, 4, 4)
	n, err := NewNetwork(m, []Observation{
		{X: 3, Y: 2, Variance: 1}, {X: 0, Y: 0, Variance: 1}, {X: 1, Y: 0, Variance: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if n.Obs[0].Y != 0 || n.Obs[0].X != 0 || n.Obs[1].X != 1 || n.Obs[2].Y != 2 {
		t.Errorf("observations not sorted: %+v", n.Obs)
	}
}

func TestStridedNetworkGeometry(t *testing.T) {
	m := testMesh(t, 8, 6)
	n, err := StridedNetwork(m, flatTruth(m, 0), 2, 3, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if n.Len() != 4*2 {
		t.Errorf("strided network has %d obs, want 8", n.Len())
	}
	for _, o := range n.Obs {
		if o.X%2 != 0 || o.Y%3 != 0 {
			t.Errorf("observation off stride: (%d,%d)", o.X, o.Y)
		}
		if o.Variance != 0.5 {
			t.Errorf("variance %g, want 0.5", o.Variance)
		}
	}
}

func TestStridedNetworkErrors(t *testing.T) {
	m := testMesh(t, 4, 4)
	truth := flatTruth(m, 0)
	if _, err := StridedNetwork(m, truth, 0, 1, 1, 1); err == nil {
		t.Error("expected stride error")
	}
	if _, err := StridedNetwork(m, truth[:3], 1, 1, 1, 1); err == nil {
		t.Error("expected truth-length error")
	}
	if _, err := StridedNetwork(m, truth, 1, 1, -1, 1); err == nil {
		t.Error("expected variance error")
	}
}

func TestStridedNetworkDeterministic(t *testing.T) {
	m := testMesh(t, 10, 10)
	truth := flatTruth(m, 3)
	a, err := StridedNetwork(m, truth, 2, 2, 1, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := StridedNetwork(m, truth, 2, 2, 1, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Obs {
		if a.Obs[i] != b.Obs[i] {
			t.Fatalf("networks with same seed differ at %d", i)
		}
	}
	c, _ := StridedNetwork(m, truth, 2, 2, 1, 43)
	same := true
	for i := range a.Obs {
		if a.Obs[i].Value != c.Obs[i].Value {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical noise")
	}
}

func TestRandomNetworkDistinctPoints(t *testing.T) {
	m := testMesh(t, 6, 6)
	n, err := RandomNetwork(m, flatTruth(m, 1), 20, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	if n.Len() != 20 {
		t.Fatalf("random network has %d obs, want 20", n.Len())
	}
	seen := map[[2]int]bool{}
	for _, o := range n.Obs {
		k := [2]int{o.X, o.Y}
		if seen[k] {
			t.Fatalf("duplicate observation point (%d,%d)", o.X, o.Y)
		}
		seen[k] = true
	}
	if _, err := RandomNetwork(m, flatTruth(m, 1), 37, 1, 7); err == nil {
		t.Error("expected count out of range error")
	}
}

func TestInBoxRestriction(t *testing.T) {
	m := testMesh(t, 8, 8)
	n, err := StridedNetwork(m, flatTruth(m, 0), 1, 1, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	b := grid.Box{X0: 2, X1: 5, Y0: 3, Y1: 6}
	sub := n.InBox(b)
	if len(sub) != b.Points() {
		t.Fatalf("InBox returned %d obs, want %d", len(sub), b.Points())
	}
	for _, o := range sub {
		if !b.Contains(o.X, o.Y) {
			t.Fatalf("observation (%d,%d) outside box", o.X, o.Y)
		}
	}
}

func TestPerturbedIndependentOfLayout(t *testing.T) {
	o := Observation{X: 3, Y: 5, Value: 1.5, Variance: 0.25}
	// Perturbation depends only on (seed, x, y, member).
	if Perturbed(o, 2, 9) != Perturbed(o, 2, 9) {
		t.Error("Perturbed not deterministic")
	}
	if Perturbed(o, 2, 9) == Perturbed(o, 3, 9) {
		t.Error("different members should have different perturbations")
	}
	if Perturbed(o, 2, 9) == Perturbed(o, 2, 10) {
		t.Error("different seeds should have different perturbations")
	}
}

func TestPerturbedMatrixShapeAndConsistency(t *testing.T) {
	m := testMesh(t, 5, 5)
	n, err := StridedNetwork(m, flatTruth(m, 2), 2, 2, 1, 11)
	if err != nil {
		t.Fatal(err)
	}
	ys := PerturbedMatrix(n.Obs, 4, 11)
	if ys.Rows != n.Len() || ys.Cols != 4 {
		t.Fatalf("Yˢ shape %dx%d", ys.Rows, ys.Cols)
	}
	for i, o := range n.Obs {
		for k := 0; k < 4; k++ {
			if ys.At(i, k) != Perturbed(o, k, 11) {
				t.Fatalf("matrix entry (%d,%d) disagrees with Perturbed", i, k)
			}
		}
	}
}

func TestPerturbationStatistics(t *testing.T) {
	o := Observation{X: 1, Y: 1, Value: 10, Variance: 4}
	n := 50000
	var sum, sum2 float64
	for k := 0; k < n; k++ {
		v := Perturbed(o, k, 5) - o.Value
		sum += v
		sum2 += v * v
	}
	mean := sum / float64(n)
	variance := sum2/float64(n) - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Errorf("perturbation mean %g, want ~0", mean)
	}
	if math.Abs(variance-4) > 0.15 {
		t.Errorf("perturbation variance %g, want ~4", variance)
	}
}

func TestApplyHSelectsStateValues(t *testing.T) {
	b := grid.Box{X0: 1, X1: 5, Y0: 2, Y1: 5}
	state := make([]float64, b.Points())
	for i := range state {
		state[i] = float64(i)
	}
	obs := []Observation{{X: 1, Y: 2, Variance: 1}, {X: 4, Y: 4, Variance: 1}}
	got, err := ApplyH(obs, b, state)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0 {
		t.Errorf("H obs0 = %g, want 0", got[0])
	}
	want := float64((4-2)*b.Width() + (4 - 1))
	if got[1] != want {
		t.Errorf("H obs1 = %g, want %g", got[1], want)
	}
	if _, err := ApplyH(obs, b, state[:3]); err == nil {
		t.Error("expected state-length error")
	}
	outside := []Observation{{X: 0, Y: 0, Variance: 1}}
	if _, err := ApplyH(outside, b, state); err == nil {
		t.Error("expected outside-box error")
	}
}

func TestQuickInBoxNeverReturnsOutsiders(t *testing.T) {
	m, _ := grid.NewMesh(16, 16)
	truth := make([]float64, m.Points())
	n, err := StridedNetwork(m, truth, 2, 2, 1, 77)
	if err != nil {
		t.Fatal(err)
	}
	f := func(x0, y0, w, h uint8) bool {
		b := grid.Box{X0: int(x0 % 16), Y0: int(y0 % 16)}
		b.X1 = b.X0 + int(w%8)
		b.Y1 = b.Y0 + int(h%8)
		for _, o := range n.InBox(b) {
			if !b.Contains(o.X, o.Y) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
