package obs

import (
	"math"
	"testing"
	"testing/quick"

	"senkf/internal/grid"
)

func TestSupportSelectionIsSinglePoint(t *testing.T) {
	o := Observation{X: 3, Y: 5, Variance: 1}
	sup := o.Support()
	if len(sup) != 1 || sup[0] != (Support{X: 3, Y: 5, W: 1}) {
		t.Errorf("on-grid support = %+v", sup)
	}
}

func TestSupportWeightsSumToOne(t *testing.T) {
	f := func(fx, fy uint16) bool {
		o := Observation{
			X: 1, Y: 1,
			OffsetX:  float64(fx) / 65536,
			OffsetY:  float64(fy) / 65536,
			Variance: 1,
		}
		var sum float64
		for _, s := range o.Support() {
			if s.W <= 0 {
				return false
			}
			sum += s.W
		}
		return math.Abs(sum-1) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBilinearReproducesLinearFields(t *testing.T) {
	// Bilinear interpolation is exact on fields linear in x and y.
	m, err := grid.NewMesh(8, 6)
	if err != nil {
		t.Fatal(err)
	}
	field := make([]float64, m.Points())
	lin := func(x, y float64) float64 { return 2*x - 3*y + 0.5 }
	for y := 0; y < m.NY; y++ {
		for x := 0; x < m.NX; x++ {
			field[m.Index(x, y)] = lin(float64(x), float64(y))
		}
	}
	for _, c := range []struct{ fx, fy float64 }{{0, 0}, {0.5, 0}, {0, 0.5}, {0.25, 0.75}, {0.9, 0.1}} {
		o := Observation{X: 3, Y: 2, OffsetX: c.fx, OffsetY: c.fy, Variance: 1}
		got := o.InterpolateField(m, field)
		want := lin(3+c.fx, 2+c.fy)
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("offset (%g,%g): interpolated %g, want %g", c.fx, c.fy, got, want)
		}
	}
}

func TestNewNetworkValidatesOffsets(t *testing.T) {
	m, _ := grid.NewMesh(4, 4)
	if _, err := NewNetwork(m, []Observation{{X: 0, Y: 0, OffsetX: 1.0, Variance: 1}}); err == nil {
		t.Error("offset 1.0 accepted")
	}
	if _, err := NewNetwork(m, []Observation{{X: 0, Y: 0, OffsetY: -0.1, Variance: 1}}); err == nil {
		t.Error("negative offset accepted")
	}
	// Support off the mesh edge: base point at the last column with a
	// positive x offset needs x+1 which is outside.
	if _, err := NewNetwork(m, []Observation{{X: 3, Y: 0, OffsetX: 0.5, Variance: 1}}); err == nil {
		t.Error("edge support accepted")
	}
	// On-grid at the last column is fine.
	if _, err := NewNetwork(m, []Observation{{X: 3, Y: 3, Variance: 1}}); err != nil {
		t.Errorf("valid edge observation rejected: %v", err)
	}
}

func TestObsInBoxRequiresFullSupport(t *testing.T) {
	b := grid.Box{X0: 2, X1: 5, Y0: 2, Y1: 5}
	inside := Observation{X: 3, Y: 3, OffsetX: 0.5, OffsetY: 0.5, Variance: 1}
	if !ObsInBox(inside, b) {
		t.Error("fully supported observation rejected")
	}
	// Support spans x=4 and x=5; x=5 is outside [2,5).
	edge := Observation{X: 4, Y: 3, OffsetX: 0.5, Variance: 1}
	if ObsInBox(edge, b) {
		t.Error("observation with support crossing the box boundary accepted")
	}
	// On-grid at x=4 is inside.
	onGrid := Observation{X: 4, Y: 3, Variance: 1}
	if !ObsInBox(onGrid, b) {
		t.Error("on-grid boundary observation rejected")
	}
}

func TestRandomOffGridNetwork(t *testing.T) {
	m, _ := grid.NewMesh(12, 10)
	truth := make([]float64, m.Points())
	for i := range truth {
		truth[i] = float64(i % 7)
	}
	n, err := RandomOffGridNetwork(m, truth, 30, 0.04, 11)
	if err != nil {
		t.Fatal(err)
	}
	if n.Len() != 30 {
		t.Fatalf("got %d observations", n.Len())
	}
	offGrid := 0
	for _, o := range n.Obs {
		if o.OffsetX != 0 || o.OffsetY != 0 {
			offGrid++
		}
		if o.Variance != 0.04 {
			t.Fatalf("variance %g", o.Variance)
		}
	}
	if offGrid < 25 {
		t.Errorf("only %d of 30 observations are off-grid", offGrid)
	}
	// Deterministic.
	n2, err := RandomOffGridNetwork(m, truth, 30, 0.04, 11)
	if err != nil {
		t.Fatal(err)
	}
	for i := range n.Obs {
		if n.Obs[i] != n2.Obs[i] {
			t.Fatal("off-grid network not deterministic")
		}
	}
}

func TestRandomOffGridNetworkValidation(t *testing.T) {
	m, _ := grid.NewMesh(12, 10)
	truth := make([]float64, m.Points())
	if _, err := RandomOffGridNetwork(m, truth, -1, 1, 1); err == nil {
		t.Error("negative count accepted")
	}
	if _, err := RandomOffGridNetwork(m, truth[:5], 3, 1, 1); err == nil {
		t.Error("short truth accepted")
	}
	if _, err := RandomOffGridNetwork(m, truth, 3, 0, 1); err == nil {
		t.Error("zero variance accepted")
	}
	tiny, _ := grid.NewMesh(1, 1)
	if _, err := RandomOffGridNetwork(tiny, make([]float64, 1), 1, 1, 1); err == nil {
		t.Error("1x1 mesh accepted")
	}
}

func TestOffGridPerturbationsIndependent(t *testing.T) {
	// Two off-grid observations in the same cell must have independent
	// perturbation streams.
	a := Observation{X: 2, Y: 2, OffsetX: 0.25, OffsetY: 0.25, Value: 1, Variance: 1}
	b := Observation{X: 2, Y: 2, OffsetX: 0.75, OffsetY: 0.25, Value: 1, Variance: 1}
	if Perturbed(a, 0, 7) == Perturbed(b, 0, 7) {
		t.Error("same-cell off-grid observations share a perturbation stream")
	}
	if Perturbed(a, 0, 7) != Perturbed(a, 0, 7) {
		t.Error("perturbation not deterministic")
	}
}

func TestApplyHBilinear(t *testing.T) {
	b := grid.Box{X0: 0, X1: 4, Y0: 0, Y1: 4}
	state := make([]float64, b.Points())
	for i := range state {
		state[i] = float64(i)
	}
	// Observation at (1.5, 1.5): mean of the four surrounding values.
	o := Observation{X: 1, Y: 1, OffsetX: 0.5, OffsetY: 0.5, Variance: 1}
	got, err := ApplyH([]Observation{o}, b, state)
	if err != nil {
		t.Fatal(err)
	}
	want := (state[1*4+1] + state[1*4+2] + state[2*4+1] + state[2*4+2]) / 4
	if math.Abs(got[0]-want) > 1e-12 {
		t.Errorf("bilinear H = %g, want %g", got[0], want)
	}
	// Support crossing the box edge fails.
	edge := Observation{X: 3, Y: 1, OffsetX: 0.5, Variance: 1}
	if _, err := ApplyH([]Observation{edge}, b, state); err == nil {
		t.Error("edge-crossing support accepted")
	}
}
