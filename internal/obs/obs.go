// Package obs models the observational side of the assimilation problem:
// observation networks over the mesh, the linear observation operator H
// (a selection operator — each observation measures the model state at one
// grid point, possibly sparse as in the "sparse observational networks" the
// paper motivates localization radii with), the data-error covariance R
// (diagonal), and the perturbed observations Yˢ with error distribution
// N(0, R) of Eq. (3).
//
// Perturbations are drawn from deterministic per-(observation, member)
// streams, so every parallel layout reproduces exactly the same Yˢ — the
// property the correctness triangle between the serial reference and the
// three parallel implementations depends on.
package obs

import (
	"fmt"
	"math"
	"sort"

	"senkf/internal/grid"
	"senkf/internal/linalg"
)

// Observation is a single observed component: the location it measures,
// its observed value, and its error variance (the corresponding diagonal
// entry of R). With zero offsets the observation sits on grid point (X, Y)
// and the observation operator is a selection (the paper's default); with
// fractional offsets it sits at (X+OffsetX, Y+OffsetY) and the operator is
// the bilinear interpolation of the four surrounding points (see Support).
type Observation struct {
	X, Y             int     // base grid point
	OffsetX, OffsetY float64 // fractional position within the cell, in [0, 1)
	Value            float64 // observed value y
	Variance         float64 // data error variance (R diagonal entry)
}

// Network is the full observation set over a mesh, ordered by row-major
// grid position so any sub-setting is deterministic.
type Network struct {
	Mesh grid.Mesh
	Obs  []Observation
}

// Len returns m, the number of observed components.
func (n *Network) Len() int { return len(n.Obs) }

// sortObs orders observations row-major by (y, x).
func sortObs(obs []Observation) {
	sort.Slice(obs, func(a, b int) bool {
		if obs[a].Y != obs[b].Y {
			return obs[a].Y < obs[b].Y
		}
		if obs[a].X != obs[b].X {
			return obs[a].X < obs[b].X
		}
		if obs[a].OffsetY != obs[b].OffsetY {
			return obs[a].OffsetY < obs[b].OffsetY
		}
		return obs[a].OffsetX < obs[b].OffsetX
	})
}

// NewNetwork validates observation coordinates and returns a network.
func NewNetwork(m grid.Mesh, obs []Observation) (*Network, error) {
	for i, o := range obs {
		if o.OffsetX < 0 || o.OffsetX >= 1 || o.OffsetY < 0 || o.OffsetY >= 1 {
			return nil, fmt.Errorf("obs: observation %d has offsets (%g,%g) outside [0,1)", i, o.OffsetX, o.OffsetY)
		}
		for _, s := range o.Support() {
			if !m.Contains(s.X, s.Y) {
				return nil, fmt.Errorf("obs: observation %d support point (%d,%d) outside %dx%d mesh", i, s.X, s.Y, m.NX, m.NY)
			}
		}
		if o.Variance <= 0 {
			return nil, fmt.Errorf("obs: observation %d has non-positive variance %g", i, o.Variance)
		}
	}
	cp := make([]Observation, len(obs))
	copy(cp, obs)
	sortObs(cp)
	return &Network{Mesh: m, Obs: cp}, nil
}

// StridedNetwork builds a regular network observing every strideX-th point
// along x and strideY-th along y, measuring the truth field plus noise with
// the given variance. truth is a row-major n_y × n_x field. The noise is
// deterministic in (seed, x, y).
func StridedNetwork(m grid.Mesh, truth []float64, strideX, strideY int, variance float64, seed uint64) (*Network, error) {
	if strideX <= 0 || strideY <= 0 {
		return nil, fmt.Errorf("obs: strides must be positive, got %d, %d", strideX, strideY)
	}
	if len(truth) != m.Points() {
		return nil, fmt.Errorf("obs: truth field has %d points, mesh has %d", len(truth), m.Points())
	}
	if variance <= 0 {
		return nil, fmt.Errorf("obs: variance must be positive, got %g", variance)
	}
	var obs []Observation
	for y := 0; y < m.NY; y += strideY {
		for x := 0; x < m.NX; x += strideX {
			s := linalg.KeyedStream(seed, 0x0B5, x, y)
			obs = append(obs, Observation{
				X: x, Y: y,
				Value:    truth[m.Index(x, y)] + s.Norm()*sqrt(variance),
				Variance: variance,
			})
		}
	}
	return NewNetwork(m, obs)
}

// RandomNetwork places count observations at distinct random grid points.
func RandomNetwork(m grid.Mesh, truth []float64, count int, variance float64, seed uint64) (*Network, error) {
	if count < 0 || count > m.Points() {
		return nil, fmt.Errorf("obs: count %d out of range for %d-point mesh", count, m.Points())
	}
	if len(truth) != m.Points() {
		return nil, fmt.Errorf("obs: truth field has %d points, mesh has %d", len(truth), m.Points())
	}
	s := linalg.KeyedStream(seed, 0x0B6)
	perm := s.Perm(m.Points())
	obs := make([]Observation, 0, count)
	for _, idx := range perm[:count] {
		x, y := m.Coords(idx)
		ns := linalg.KeyedStream(seed, 0x0B5, x, y)
		obs = append(obs, Observation{
			X: x, Y: y,
			Value:    truth[idx] + ns.Norm()*sqrt(variance),
			Variance: variance,
		})
	}
	return NewNetwork(m, obs)
}

// InBox returns the observations whose entire support lies inside the box,
// preserving order. This is the restriction of (H, R, Yˢ) to an expansion
// D̄ (Eq. 6): an observation is usable by a processor exactly when all grid
// points its operator touches are available locally.
func (n *Network) InBox(b grid.Box) []Observation {
	var out []Observation
	for _, o := range n.Obs {
		if ObsInBox(o, b) {
			out = append(out, o)
		}
	}
	return out
}

// ObsInBox reports whether every support point of o lies inside b.
func ObsInBox(o Observation, b grid.Box) bool {
	for _, s := range o.Support() {
		if !b.Contains(s.X, s.Y) {
			return false
		}
	}
	return true
}

// Perturbed returns the perturbed observation yˢ_k = y + ε, ε ~ N(0, R_ii)
// for ensemble member k, deterministic in (seed, x, y, k). This realises
// the matrix Yˢ ∈ ℝ^{m×N} of Eq. (3) one entry at a time so that any
// process may reproduce exactly the entries it needs.
func Perturbed(o Observation, member int, seed uint64) float64 {
	s := linalg.KeyedStream(seed, o.perturbKeys(member)...)
	return o.Value + s.Norm()*sqrt(o.Variance)
}

// CenteredPerturbations returns the N perturbed values yˢ_k for one
// observation with the ensemble mean of the perturbations removed, the
// standard Burgers et al. refinement: the analysis ensemble mean is then
// unaffected by perturbation sampling noise. The result is deterministic in
// (seed, x, y, N) and independent of the process layout, because any process
// can regenerate all N raw perturbations locally.
func CenteredPerturbations(o Observation, members int, seed uint64) []float64 {
	out := make([]float64, members)
	var mean float64
	for k := 0; k < members; k++ {
		s := linalg.KeyedStream(seed, o.perturbKeys(k)...)
		e := s.Norm() * sqrt(o.Variance)
		out[k] = e
		mean += e
	}
	mean /= float64(members)
	for k := range out {
		out[k] = o.Value + (out[k] - mean)
	}
	return out
}

// PerturbedMatrix materialises Yˢ for a list of observations and N members:
// rows are observations, columns members.
func PerturbedMatrix(obs []Observation, members int, seed uint64) *linalg.Matrix {
	ys := linalg.NewMatrix(len(obs), members)
	for i, o := range obs {
		row := ys.Row(i)
		for k := 0; k < members; k++ {
			row[k] = Perturbed(o, k, seed)
		}
	}
	return ys
}

// ApplyH applies the observation operator to a state vector restricted to
// box b (row-major within b): out[i] = Σ w·state at observation i's support.
func ApplyH(obs []Observation, b grid.Box, state []float64) ([]float64, error) {
	if len(state) != b.Points() {
		return nil, fmt.Errorf("obs: state has %d points, box %v has %d", len(state), b, b.Points())
	}
	out := make([]float64, len(obs))
	for i, o := range obs {
		if !ObsInBox(o, b) {
			return nil, fmt.Errorf("obs: observation at (%d,%d)+(%g,%g) has support outside box %v", o.X, o.Y, o.OffsetX, o.OffsetY, b)
		}
		var v float64
		for _, s := range o.Support() {
			v += s.W * state[(s.Y-b.Y0)*b.Width()+(s.X-b.X0)]
		}
		out[i] = v
	}
	return out, nil
}

func sqrt(v float64) float64 { return math.Sqrt(v) }
