// Package bench holds the versioned bench records and the regression
// gate. senkf-bench -record writes BENCH_<n>.json — the deterministic
// virtual-clock outcomes of the P-EnKF/S-EnKF suite (config, wall times,
// phase breakdowns, model drift) — and senkf-bench -check compares a
// fresh run against the latest committed record, failing when any run's
// wall time regresses beyond the tolerance. Simulated runtimes are exact
// virtual seconds, so records are machine-independent and the gate can
// run in CI without noise margins.
//
// The package sits above internal/report (which stays substrate-free for
// the run ledger's sake) because assembling a record means running the
// simulated suite: it imports internal/figures and, through it, the
// sim/parfs substrate.

package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"

	"senkf/internal/costmodel"
	"senkf/internal/figures"
	"senkf/internal/metrics"
	"senkf/internal/wire"
)

// Schema is the BENCH_<n>.json schema version.
const Schema = 1

// Run is one (algorithm, processor count) cell of a bench record.
type Run struct {
	Algorithm string  `json:"algorithm"`
	NP        int     `json:"np"`
	Runtime   float64 `json:"runtime"` // virtual seconds
	// FirstStage and OverlapFraction are S-EnKF-only (zero otherwise).
	FirstStage      float64           `json:"first_stage,omitempty"`
	OverlapFraction float64           `json:"overlap_fraction,omitempty"`
	IO              metrics.Breakdown `json:"io"`
	Compute         metrics.Breakdown `json:"compute"`
	// Tuned is the auto-tuner's choice (S-EnKF only).
	Tuned *costmodel.Tuned `json:"tuned,omitempty"`
	// Drift holds the per-term model-vs-measured comparison (S-EnKF only).
	Drift []costmodel.TermDrift `json:"drift,omitempty"`
	// RunID names the archived run-ledger record this cell was derived
	// from (empty when the record was collected without an archive).
	RunID string `json:"run_id,omitempty"`
	// Wire-telemetry summary of the cell's simulated run. All omitempty so
	// records predating wire telemetry compare cleanly (-check matches on
	// Runtime only).
	WireMsgs      int64   `json:"wire_msgs,omitempty"`
	WireEdgeBytes int64   `json:"wire_edge_bytes,omitempty"`
	PeakOSTUtil   float64 `json:"peak_ost_util,omitempty"`
}

// attachWire installs a fresh wire collector on the suite's config for the
// next simulated cell; applyWire reduces it into the cell's summary fields.
// The collectors observe only — virtual-clock runtimes are untouched.
func attachWire(s *figures.Suite) *wire.Collector {
	c := wire.NewCollector()
	s.O.Cfg.Msgs = c
	s.O.Cfg.Reads = c
	return c
}

func applyWire(r *Run, c *wire.Collector) {
	sum := c.Summary(1)
	r.WireMsgs = sum.Msgs
	r.WireEdgeBytes = sum.Bytes
	r.PeakOSTUtil = sum.PeakOSTUtil
}

func (r Run) key() string { return fmt.Sprintf("%s/np%d", r.Algorithm, r.NP) }

// Record is the content of one BENCH_<n>.json.
type Record struct {
	Version int `json:"version"`
	Schema  int `json:"schema"`
	// Scale names the option set ("quick" or "paper"); records of different
	// scales are not comparable.
	Scale string  `json:"scale"`
	Eps   float64 `json:"eps"`
	Runs  []Run   `json:"runs"`
}

// FromSuite runs the P-EnKF and S-EnKF suite at every configured
// processor count and assembles the record (Version is assigned by
// WriteRecord).
func FromSuite(s *figures.Suite, scale string) (Record, error) {
	rec := Record{Schema: Schema, Scale: scale, Eps: s.O.Eps}
	for _, np := range s.O.ProcCounts {
		wc := attachWire(s)
		pres, err := s.PEnKFAt(np)
		if err != nil {
			return Record{}, err
		}
		prun := Run{
			Algorithm: pres.Algorithm, NP: pres.NP, Runtime: pres.Runtime,
			IO: pres.IO, Compute: pres.Compute,
		}
		applyWire(&prun, wc)
		rec.Runs = append(rec.Runs, prun)
		wc = attachWire(s)
		sres, tuned, err := s.SEnKFAt(np)
		if err != nil {
			return Record{}, err
		}
		run := Run{
			Algorithm: sres.Algorithm, NP: sres.NP, Runtime: sres.Runtime,
			FirstStage: sres.FirstStage, OverlapFraction: sres.OverlapFraction,
			IO: sres.IO, Compute: sres.Compute,
		}
		applyWire(&run, wc)
		t := tuned
		run.Tuned = &t
		// Result breakdowns are per-processor totals over L stages; the
		// model terms are per stage.
		l := float64(tuned.Choice.L)
		if l > 0 {
			d := s.O.Cfg.P.Drift(tuned.Choice, costmodel.Measured{
				TRead: sres.IO.Read / l,
				TComm: sres.IO.Comm / l,
				TComp: sres.Compute.Compute / l,
			})
			run.Drift = d.Terms
		}
		rec.Runs = append(rec.Runs, run)
		if s.O.MLLevels > 1 {
			wc = attachWire(s)
			mres, mtuned, err := s.SEnKFMLAt(np)
			if err != nil {
				return Record{}, err
			}
			ml := Run{
				Algorithm: mres.Algorithm, NP: mres.NP, Runtime: mres.Runtime,
				FirstStage: mres.FirstStage, OverlapFraction: mres.OverlapFraction,
				IO: mres.IO, Compute: mres.Compute,
			}
			applyWire(&ml, wc)
			mt := mtuned
			ml.Tuned = &mt
			if l := float64(mtuned.Choice.L); l > 0 {
				mp := s.O.Cfg.P
				mp.Levels = s.O.MLLevels
				d := mp.Drift(mtuned.Choice, costmodel.Measured{
					TRead: mres.IO.Read / l,
					TComm: mres.IO.Comm / l,
					TComp: mres.Compute.Compute / l,
				})
				ml.Drift = d.Terms
			}
			rec.Runs = append(rec.Runs, ml)
		}
	}
	return rec, nil
}

var recordName = regexp.MustCompile(`^BENCH_(\d+)\.json$`)

// versions lists the record versions present in dir, ascending.
func versions(dir string) ([]int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var vs []int
	for _, e := range entries {
		if m := recordName.FindStringSubmatch(e.Name()); m != nil {
			var v int
			fmt.Sscanf(m[1], "%d", &v)
			vs = append(vs, v)
		}
	}
	sort.Ints(vs)
	return vs, nil
}

// Path returns dir/BENCH_<version>.json.
func Path(dir string, version int) string {
	return filepath.Join(dir, fmt.Sprintf("BENCH_%d.json", version))
}

// LatestRecord loads the highest-versioned record in dir. ok is false when
// the directory holds no records.
func LatestRecord(dir string) (Record, string, bool, error) {
	vs, err := versions(dir)
	if err != nil || len(vs) == 0 {
		return Record{}, "", false, err
	}
	path := Path(dir, vs[len(vs)-1])
	data, err := os.ReadFile(path)
	if err != nil {
		return Record{}, "", false, err
	}
	var rec Record
	if err := json.Unmarshal(data, &rec); err != nil {
		return Record{}, "", false, fmt.Errorf("bench: %s: %w", path, err)
	}
	return rec, path, true, nil
}

// WriteRecord stores rec in dir as the next version (latest+1, or 1 in an
// empty directory) unless rec.Version is already set, and returns the
// written path.
func WriteRecord(dir string, rec Record) (string, error) {
	if rec.Version == 0 {
		vs, err := versions(dir)
		if err != nil {
			return "", err
		}
		rec.Version = 1
		if len(vs) > 0 {
			rec.Version = vs[len(vs)-1] + 1
		}
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return "", err
	}
	path := Path(dir, rec.Version)
	return path, os.WriteFile(path, append(data, '\n'), 0o644)
}

// RunDelta compares one run across two records.
type RunDelta struct {
	Algorithm string  `json:"algorithm"`
	NP        int     `json:"np"`
	Prev      float64 `json:"prev"`
	Cur       float64 `json:"cur"`
	// Delta is (cur − prev) / prev.
	Delta     float64 `json:"delta"`
	Regressed bool    `json:"regressed"`
}

// Compare checks cur against prev: every run present in both records is
// matched by (algorithm, np) and flagged when its wall time exceeds the
// previous one by more than tol (relative). Records of different scales
// are an error — their runtimes are not comparable.
func Compare(prev, cur Record, tol float64) ([]RunDelta, error) {
	if prev.Scale != cur.Scale {
		return nil, fmt.Errorf("bench: cannot compare scale %q against %q", cur.Scale, prev.Scale)
	}
	old := map[string]Run{}
	for _, r := range prev.Runs {
		old[r.key()] = r
	}
	var out []RunDelta
	for _, r := range cur.Runs {
		p, ok := old[r.key()]
		if !ok {
			continue
		}
		d := RunDelta{Algorithm: r.Algorithm, NP: r.NP, Prev: p.Runtime, Cur: r.Runtime}
		if p.Runtime > 0 {
			d.Delta = (r.Runtime - p.Runtime) / p.Runtime
		}
		d.Regressed = r.Runtime > p.Runtime*(1+tol)
		out = append(out, d)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("bench: records share no (algorithm, np) runs")
	}
	return out, nil
}

// Regressions filters the deltas down to the failures.
func Regressions(deltas []RunDelta) []RunDelta {
	var out []RunDelta
	for _, d := range deltas {
		if d.Regressed {
			out = append(out, d)
		}
	}
	return out
}
