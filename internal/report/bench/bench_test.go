package bench

import (
	"testing"

	"senkf/internal/figures"
)

func quickBenchSuite() *figures.Suite {
	o := figures.QuickOptions()
	// One processor count keeps the test fast; the pipeline logic is
	// count-independent.
	o.ProcCounts = []int{60}
	return figures.NewSuite(o)
}

func TestBenchRecordRoundTripAndCompare(t *testing.T) {
	s := quickBenchSuite()
	rec, err := FromSuite(s, "quick")
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Runs) != 3 {
		t.Fatalf("got %d runs, want 3 (P-EnKF + S-EnKF + S-EnKF-ML)", len(rec.Runs))
	}
	var senkfRun, mlRun *Run
	for i := range rec.Runs {
		if rec.Runs[i].Tuned != nil && rec.Runs[i].Algorithm == "S-EnKF" {
			senkfRun = &rec.Runs[i]
		}
		if rec.Runs[i].Algorithm == "S-EnKF-ML" {
			mlRun = &rec.Runs[i]
		}
		if rec.Runs[i].Runtime <= 0 {
			t.Fatalf("run %d has runtime %g", i, rec.Runs[i].Runtime)
		}
	}
	if senkfRun == nil || len(senkfRun.Drift) == 0 {
		t.Fatal("S-EnKF run carries no tuner choice or drift terms")
	}
	// The multilevel cell is its own row, priced with the level factor: a
	// 3-level run must cost strictly more than its single-level twin, and
	// must never be key-matched against it by the regression gate.
	if mlRun == nil || mlRun.Tuned == nil || len(mlRun.Drift) == 0 {
		t.Fatal("S-EnKF-ML run missing, or carries no tuner choice or drift terms")
	}
	if mlRun.Runtime <= senkfRun.Runtime {
		t.Fatalf("multilevel runtime %g not above single-level %g", mlRun.Runtime, senkfRun.Runtime)
	}

	dir := t.TempDir()
	p1, err := WriteRecord(dir, rec)
	if err != nil {
		t.Fatal(err)
	}
	loaded, path, ok, err := LatestRecord(dir)
	if err != nil || !ok || path != p1 {
		t.Fatalf("LatestRecord = %q, %v, %v", path, ok, err)
	}
	if loaded.Version != 1 || loaded.Scale != "quick" || len(loaded.Runs) != len(rec.Runs) {
		t.Fatalf("loaded record %+v", loaded)
	}
	// Versions increment.
	p2, err := WriteRecord(dir, rec)
	if err != nil {
		t.Fatal(err)
	}
	if p2 == p1 {
		t.Fatalf("second record overwrote the first: %s", p2)
	}
	if _, path, _, _ := LatestRecord(dir); path != p2 {
		t.Fatalf("latest = %s, want %s", path, p2)
	}

	// Deterministic virtual clocks: a self-comparison has no regressions.
	deltas, err := Compare(loaded, rec, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if reg := Regressions(deltas); len(reg) != 0 {
		t.Fatalf("self-comparison regressed: %v", reg)
	}

	// A slowed-down run must trip the gate.
	slow := rec
	slow.Runs = append([]Run(nil), rec.Runs...)
	for i := range slow.Runs {
		slow.Runs[i].Runtime *= 1.2
	}
	deltas, err = Compare(loaded, slow, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if reg := Regressions(deltas); len(reg) != len(slow.Runs) {
		t.Fatalf("20%% slowdown at 15%% tolerance flagged %d of %d runs", len(reg), len(slow.Runs))
	}
	// But stay quiet inside the tolerance.
	slight := rec
	slight.Runs = append([]Run(nil), rec.Runs...)
	for i := range slight.Runs {
		slight.Runs[i].Runtime *= 1.05
	}
	deltas, err = Compare(loaded, slight, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if reg := Regressions(deltas); len(reg) != 0 {
		t.Fatalf("5%% drift at 15%% tolerance flagged %v", reg)
	}
}

func TestCompareRejectsScaleMismatch(t *testing.T) {
	a := Record{Scale: "quick", Runs: []Run{{Algorithm: "S-EnKF", NP: 60, Runtime: 1}}}
	b := Record{Scale: "paper", Runs: []Run{{Algorithm: "S-EnKF", NP: 60, Runtime: 1}}}
	if _, err := Compare(a, b, 0.15); err == nil {
		t.Fatal("want error comparing quick against paper records")
	}
	// And disjoint run sets are an error, not a silent pass.
	c := Record{Scale: "quick", Runs: []Run{{Algorithm: "S-EnKF", NP: 999, Runtime: 1}}}
	if _, err := Compare(a, c, 0.15); err == nil {
		t.Fatal("want error on records sharing no runs")
	}
}

func TestLatestRecordEmptyDir(t *testing.T) {
	if _, _, ok, err := LatestRecord(t.TempDir()); ok || err != nil {
		t.Fatalf("empty dir: ok=%v err=%v", ok, err)
	}
	if _, _, ok, err := LatestRecord("/nonexistent/senkf-bench-dir"); ok || err != nil {
		t.Fatalf("missing dir: ok=%v err=%v", ok, err)
	}
}
