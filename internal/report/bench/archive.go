// Archive-backed collection: FromSuiteArchived is FromSuite with the run
// ledger in the loop. Every (algorithm, np) cell of the suite is written
// into the archive as its own run record, then the bench record is
// reassembled *from those archived records*, so BENCH_<n>.json is a view
// over the ledger and every cell carries the run ID it was derived from.

package bench

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"time"

	"senkf/internal/figures"
	"senkf/internal/runlog"
)

// CellFile is the archive entry holding one bench cell's Run payload.
const CellFile = "bench-cell.json"

// FromSuiteArchived collects the bench record through the archive: the
// suite runs once, each cell is archived as a run record under a
// freshly minted run ID, and the returned record's cells are read back
// out of the archive (stamped with their run IDs). log may be nil.
func FromSuiteArchived(s *figures.Suite, scale string, a *runlog.Archive, log *slog.Logger) (Record, error) {
	rec, err := FromSuite(s, scale)
	if err != nil {
		return Record{}, err
	}
	for i := range rec.Runs {
		run := rec.Runs[i]
		id, err := archiveCell(a, run, scale)
		if err != nil {
			return Record{}, err
		}
		back, err := loadCell(a, id)
		if err != nil {
			return Record{}, err
		}
		back.RunID = id
		rec.Runs[i] = back
		if log != nil {
			log.Info("bench: archived cell",
				"cell_run_id", id, "algorithm", run.Algorithm, "np", run.NP)
		}
	}
	return rec, nil
}

// archiveCell writes one cell as an archived run record and returns its
// run ID.
func archiveCell(a *runlog.Archive, run Run, scale string) (string, error) {
	now := time.Now()
	id := runlog.NewRunID("senkf-bench", now, nil)
	payload, err := json.MarshalIndent(run, "", "  ")
	if err != nil {
		return "", err
	}
	m := runlog.Manifest{
		Schema:    runlog.ManifestSchema,
		RunID:     id,
		Binary:    "senkf-bench",
		Start:     now.UTC().Format(time.RFC3339),
		Substrate: "simulated",
		Config: map[string]string{
			"algorithm": run.Algorithm,
			"np":        fmt.Sprintf("%d", run.NP),
			"scale":     scale,
		},
		Outcome: "ok",
		Runtime: run.Runtime,
	}
	if _, err := a.WriteRecord(&m, map[string][]byte{CellFile: append(payload, '\n')}); err != nil {
		return "", err
	}
	return id, nil
}

// loadCell reads one archived bench cell back out of the ledger.
func loadCell(a *runlog.Archive, id string) (Run, error) {
	rec, err := a.Load(id)
	if err != nil {
		return Run{}, err
	}
	data, err := rec.ReadFile(CellFile)
	if err != nil {
		return Run{}, err
	}
	var run Run
	if err := json.Unmarshal(data, &run); err != nil {
		return Run{}, fmt.Errorf("bench: %s/%s: %w", id, CellFile, err)
	}
	return run, nil
}
