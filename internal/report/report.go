// Package report turns a traced run into a structured, machine-readable
// run report: per-class phase breakdowns and overlap shares recomputed
// from the raw events, the critical path with per-phase attribution, the
// per-stage pipeline overlap efficiency, and — when the trace carries the
// cost-model "prediction" instant a simulated S-EnKF run emits — the
// model-vs-measured drift of every Eq. 7–10 term, including whether the
// auto-tuner would have decided differently under measured coefficients.
//
// The same package implements the bench regression pipeline: versioned
// BENCH_<n>.json records of a deterministic simulated suite (config, wall
// times, phase breakdowns, model drift) and the tolerance gate CI runs
// against the previously committed record (see bench.go).
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"

	"senkf/internal/costmodel"
	"senkf/internal/metrics"
	"senkf/internal/runtimeobs"
	"senkf/internal/trace"
	"senkf/internal/trace/critpath"
)

// Schema is the run-report schema version.
const Schema = 1

// RunInfo is the cost-model context decoded from the trace's "prediction"
// and "decision" instants.
type RunInfo struct {
	Params costmodel.Params `json:"params"`
	Choice costmodel.Choice `json:"choice"`
	// Predicted Eq. 7–10 terms as emitted at decision time.
	PredTRead  float64 `json:"pred_t_read"`
	PredTComm  float64 `json:"pred_t_comm"`
	PredTComp  float64 `json:"pred_t_comp"`
	PredTTotal float64 `json:"pred_t_total"`
	// Tuner decision context (zero unless HasDecision).
	NP          int                       `json:"np,omitempty"`
	Eps         float64                   `json:"eps,omitempty"`
	Constraints costmodel.TuneConstraints `json:"constraints,omitempty"`
	HasDecision bool                      `json:"has_decision"`
}

func argInt(ev trace.Event, key string) int {
	v, _ := ev.ArgValue(key)
	return int(v)
}

// ExtractRunInfo decodes the model events from a trace. ok is false when
// the trace carries no prediction instant (an untraced-model run — phase
// and critical-path reporting still work, drift does not).
func ExtractRunInfo(events []trace.Event) (RunInfo, bool) {
	var info RunInfo
	found := false
	for _, ev := range events {
		if ev.Ph != trace.PhaseInstant || ev.Cat != trace.CatModel {
			continue
		}
		switch ev.Name {
		case "prediction":
			info.Choice = costmodel.Choice{
				NSdx: argInt(ev, "nsdx"), NSdy: argInt(ev, "nsdy"),
				L: argInt(ev, "l"), NCg: argInt(ev, "ncg"),
			}
			info.PredTRead, _ = ev.ArgValue("t_read")
			info.PredTComm, _ = ev.ArgValue("t_comm")
			info.PredTComp, _ = ev.ArgValue("t_comp")
			info.PredTTotal, _ = ev.ArgValue("t_total")
			a, _ := ev.ArgValue("a")
			b, _ := ev.ArgValue("b")
			c, _ := ev.ArgValue("c")
			theta, _ := ev.ArgValue("theta")
			info.Params = costmodel.Params{
				N: argInt(ev, "n"), NX: argInt(ev, "nx"), NY: argInt(ev, "ny"),
				A: a, B: b, C: c, Theta: theta,
				Xi: argInt(ev, "xi"), Eta: argInt(ev, "eta"), H: argInt(ev, "h"),
			}
			found = true
		case "decision":
			info.NP = argInt(ev, "np")
			info.Eps, _ = ev.ArgValue("eps")
			info.Constraints = costmodel.TuneConstraints{
				MaxL: argInt(ev, "max_l"), MaxNCg: argInt(ev, "max_ncg"),
			}
			info.HasDecision = true
		}
	}
	return info, found
}

// CritPathSummary condenses the extracted critical path for the report.
type CritPathSummary struct {
	Start    float64 `json:"start"`
	End      float64 `json:"end"`
	Total    float64 `json:"total"` // summed segment time, tiles [Start, End]
	Segments int     `json:"segments"`
	// CoverageError is |Total − runtime| / runtime: how much of the
	// end-to-end time the path fails to explain (reports gate on ≤ 1%).
	CoverageError float64 `json:"coverage_error"`
	// Attribution maps "<class>/<phase>" to critical-path seconds.
	Attribution map[string]float64 `json:"attribution"`
}

// Report is the structured outcome of one traced run.
type Report struct {
	Schema  int     `json:"schema"`
	Runtime float64 `json:"runtime"` // last span end (virtual or wall seconds)

	IOTracks      int                `json:"io_tracks"`
	ComputeTracks int                `json:"compute_tracks"`
	IOMean        metrics.Breakdown  `json:"io_mean"`      // mean per I/O processor
	ComputeMean   metrics.Breakdown  `json:"compute_mean"` // mean per compute processor

	// Figure 11 accounting, recomputed from the trace.
	OverlapFraction        float64 `json:"overlap_fraction"`
	OverlapRuntimeFraction float64 `json:"overlap_runtime_fraction"`

	CriticalPath CritPathSummary `json:"critical_path"`

	// Per-stage pipeline accounting (empty when I/O spans carry no stage
	// tags — e.g. real-execution traces).
	Stages             []critpath.StageOverlap `json:"stages,omitempty"`
	PipelineEfficiency float64                 `json:"pipeline_efficiency"`

	// Model drift; nil when the trace has no prediction instant.
	Model *ModelSection `json:"model,omitempty"`

	// Hot-stage attribution from a labeled CPU profile merged onto the
	// trace; nil unless AttachHotStages was called with a profile.
	Hot *runtimeobs.Attribution `json:"hot_stages,omitempty"`

	// Counters ingested from a registry CSV, keyed "kind/name/field".
	Counters map[string]float64 `json:"counters,omitempty"`
}

// ModelSection is the cost-model half of the report.
type ModelSection struct {
	Info     RunInfo               `json:"info"`
	Measured costmodel.Measured    `json:"measured"`
	Drift    costmodel.DriftReport `json:"drift"`
}

// Build computes the report from trace events plus optional counters.
func Build(events []trace.Event, counters map[string]float64) (*Report, error) {
	if len(events) == 0 {
		return nil, fmt.Errorf("report: empty trace")
	}
	r := &Report{Schema: Schema, Counters: counters}
	for _, ev := range events {
		if ev.Ph != trace.PhaseSpan {
			continue
		}
		if end := ev.Ts + ev.Dur; end > r.Runtime {
			r.Runtime = end
		}
	}
	r.IOTracks = len(trace.Tracks(events, metrics.IOPrefix))
	r.ComputeTracks = len(trace.Tracks(events, metrics.ComputePrefix))
	r.IOMean = trace.MeanPhaseBreakdown(events, metrics.IOPrefix)
	r.ComputeMean = trace.MeanPhaseBreakdown(events, metrics.ComputePrefix)

	ioSpans := trace.PhaseSpans(events, metrics.IOPrefix, metrics.PhaseRead, metrics.PhaseComm)
	cpSpans := trace.PhaseSpans(events, metrics.ComputePrefix, metrics.PhaseCompute)
	overlap := metrics.OverlapDuration(ioSpans, cpSpans)
	if busy := metrics.SpanTotal(ioSpans); busy > 0 {
		r.OverlapFraction = math.Min(1, overlap/busy)
	}
	if r.Runtime > 0 {
		r.OverlapRuntimeFraction = overlap / r.Runtime
	}

	path, err := critpath.Extract(events)
	if err != nil {
		return nil, err
	}
	r.CriticalPath = CritPathSummary{
		Start:       path.Start,
		End:         path.End,
		Total:       path.Total(),
		Segments:    len(path.Segments),
		Attribution: path.Attribution(),
	}
	if r.Runtime > 0 {
		r.CriticalPath.CoverageError = math.Abs(path.Total()-r.Runtime) / r.Runtime
	}

	r.Stages = critpath.StageOverlaps(events)
	r.PipelineEfficiency = critpath.PipelineEfficiency(r.Stages)

	if info, ok := ExtractRunInfo(events); ok {
		ms := &ModelSection{Info: info}
		l := float64(info.Choice.L)
		if r.IOTracks > 0 && l > 0 {
			// The model terms are per-stage, per-processor costs; the mean
			// breakdowns are per-processor totals over L stages.
			ms.Measured = costmodel.Measured{
				TRead: r.IOMean.Read / l,
				TComm: r.IOMean.Comm / l,
				TComp: r.ComputeMean.Compute / l,
			}
			ms.Drift = info.Params.Drift(info.Choice, ms.Measured)
			if info.HasDecision {
				ms.Drift.Retune(info.NP, info.Eps, info.Constraints)
			}
			r.Model = ms
		}
	}
	return r, nil
}

// AttachHotStages merges a labeled CPU profile (raw pprof bytes) onto
// the report's trace events, filling the Hot section: per-{class,stage}
// CPU self-time ranked against trace busy time. The profile must carry
// {proc, stage} labels (see internal/runtimeobs); unlabeled samples are
// accounted in the labeled-fraction footer rather than dropped silently.
func (r *Report) AttachHotStages(profile []byte, events []trace.Event) error {
	p, err := runtimeobs.ParseProfile(profile)
	if err != nil {
		return fmt.Errorf("report: hot stages: %w", err)
	}
	attr, err := runtimeobs.Attribute(p, events)
	if err != nil {
		return fmt.Errorf("report: hot stages: %w", err)
	}
	r.Hot = attr
	return nil
}

// ParseCountersCSV ingests the kind,name,field,value CSV written by
// trace.Registry.WriteCSV into a flat "kind/name/field" map.
func ParseCountersCSV(rd io.Reader) (map[string]float64, error) {
	cr := csv.NewReader(rd)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("report: counters CSV: %w", err)
	}
	out := map[string]float64{}
	for i, row := range rows {
		if i == 0 && len(row) > 0 && row[0] == "kind" {
			continue // header
		}
		if len(row) != 4 {
			return nil, fmt.Errorf("report: counters CSV row %d has %d columns, want 4", i+1, len(row))
		}
		v, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			return nil, fmt.Errorf("report: counters CSV row %d value %q: %w", i+1, row[3], err)
		}
		out[row[0]+"/"+row[1]+"/"+row[2]] = v
	}
	return out, nil
}

// WriteText renders the report as a human-readable summary.
func (r *Report) WriteText(w io.Writer) error {
	p := func(format string, args ...any) error {
		_, err := fmt.Fprintf(w, format, args...)
		return err
	}
	if err := p("run report (schema %d)\n", r.Schema); err != nil {
		return err
	}
	if err := p("  runtime: %.6gs over %d I/O + %d compute tracks\n",
		r.Runtime, r.IOTracks, r.ComputeTracks); err != nil {
		return err
	}
	if err := p("  mean I/O proc:     read %.6gs  comm %.6gs  wait %.6gs\n",
		r.IOMean.Read, r.IOMean.Comm, r.IOMean.Wait); err != nil {
		return err
	}
	if err := p("  mean compute proc: wait %.6gs  compute %.6gs  read %.6gs\n",
		r.ComputeMean.Wait, r.ComputeMean.Compute, r.ComputeMean.Read); err != nil {
		return err
	}
	if err := p("  overlapped share of I/O+comm: %.1f%% (%.1f%% of runtime)\n",
		100*r.OverlapFraction, 100*r.OverlapRuntimeFraction); err != nil {
		return err
	}
	if err := p("critical path: %d segments covering %.6gs of %.6gs (coverage error %.3g%%)\n",
		r.CriticalPath.Segments, r.CriticalPath.Total, r.Runtime, 100*r.CriticalPath.CoverageError); err != nil {
		return err
	}
	keys := make([]string, 0, len(r.CriticalPath.Attribution))
	for k := range r.CriticalPath.Attribution {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		return r.CriticalPath.Attribution[keys[i]] > r.CriticalPath.Attribution[keys[j]]
	})
	for _, k := range keys {
		v := r.CriticalPath.Attribution[k]
		if err := p("  %-14s %10.6gs (%5.1f%%)\n", k, v, 100*v/r.CriticalPath.Total); err != nil {
			return err
		}
	}
	if len(r.Stages) > 0 {
		if err := p("pipeline overlap per stage (ideal: stage 0 exposed, rest hidden):\n"); err != nil {
			return err
		}
		for _, s := range r.Stages {
			if err := p("  stage %2d: io busy %.6gs, hidden %.6gs (%.1f%%)\n",
				s.Stage, s.IOBusy, s.Hidden, 100*s.Efficiency); err != nil {
				return err
			}
		}
		if err := p("  pipeline efficiency (stages >= 1): %.1f%%\n", 100*r.PipelineEfficiency); err != nil {
			return err
		}
	}
	if r.Hot != nil {
		if err := r.Hot.WriteTable(w); err != nil {
			return err
		}
	}
	if r.Model != nil {
		if err := r.Model.Drift.WriteTable(w); err != nil {
			return err
		}
	}
	return nil
}
