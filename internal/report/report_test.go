package report

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"senkf/internal/figures"
	"senkf/internal/trace"
)

// tracedQuickRun simulates the quick-scale S-EnKF at np processors with
// tracing and returns the events.
func tracedQuickRun(t *testing.T, np int) []trace.Event {
	t.Helper()
	o := figures.QuickOptions()
	buf := trace.NewBuffer()
	tr := trace.New(nil, buf)
	tr.SetCounters(trace.NewRegistry())
	o.Cfg.Tracer = tr
	s := figures.NewSuite(o)
	if _, _, err := s.SEnKFAt(np); err != nil {
		t.Fatal(err)
	}
	return buf.Events()
}

func TestBuildReportFromTracedRun(t *testing.T) {
	events := tracedQuickRun(t, 120)
	rep, err := Build(events, map[string]float64{"counter/parfs.requests/value": 42})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Runtime <= 0 || rep.IOTracks == 0 || rep.ComputeTracks == 0 {
		t.Fatalf("degenerate report: %+v", rep)
	}
	// Acceptance criterion: the critical path explains the end-to-end time
	// within 1%.
	if rep.CriticalPath.CoverageError > 0.01 {
		t.Fatalf("critical path covers %g of %g (error %g > 1%%)",
			rep.CriticalPath.Total, rep.Runtime, rep.CriticalPath.CoverageError)
	}
	if rep.Model == nil {
		t.Fatal("traced simulated run produced no model section")
	}
	if !rep.Model.Info.HasDecision {
		t.Fatal("suite run carried no tuner decision instant")
	}
	for _, term := range rep.Model.Drift.Terms {
		if math.IsNaN(term.RelErr) || math.IsInf(term.RelErr, 0) {
			t.Fatalf("drift term %s has non-finite RelErr %g", term.Term, term.RelErr)
		}
	}
	if rep.Model.Drift.Retuned == nil {
		t.Fatal("decision present but no retune ran")
	}
	if len(rep.Stages) == 0 || rep.PipelineEfficiency <= 0 {
		t.Fatalf("no pipeline accounting: stages %v, efficiency %g", rep.Stages, rep.PipelineEfficiency)
	}
	if rep.OverlapFraction < 0 || rep.OverlapFraction > 1 {
		t.Fatalf("OverlapFraction = %g", rep.OverlapFraction)
	}

	// The report must survive a JSON round trip (the senkf-report -json path).
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Runtime != rep.Runtime || back.CriticalPath.Segments != rep.CriticalPath.Segments {
		t.Fatalf("JSON round trip changed the report: %+v vs %+v", back, rep)
	}

	var sb strings.Builder
	if err := rep.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"critical path", "model drift", "pipeline"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("text report missing %q:\n%s", want, sb.String())
		}
	}
}

func TestBuildReportEmptyTrace(t *testing.T) {
	if _, err := Build(nil, nil); err == nil {
		t.Fatal("want error on empty trace")
	}
}

func TestExtractRunInfoRoundTripsThroughChrome(t *testing.T) {
	events := tracedQuickRun(t, 60)
	direct, ok := ExtractRunInfo(events)
	if !ok {
		t.Fatal("no prediction instant in trace")
	}
	var buf bytes.Buffer
	if err := trace.WriteChrome(&buf, events); err != nil {
		t.Fatal(err)
	}
	decoded, err := trace.ReadChrome(&buf)
	if err != nil {
		t.Fatal(err)
	}
	fromFile, ok := ExtractRunInfo(decoded)
	if !ok {
		t.Fatal("prediction instant lost in the Chrome round trip")
	}
	if fromFile.Choice != direct.Choice || fromFile.Params != direct.Params ||
		fromFile.NP != direct.NP || fromFile.HasDecision != direct.HasDecision {
		t.Fatalf("round trip changed run info:\n%+v\n%+v", fromFile, direct)
	}
}

func TestParseCountersCSV(t *testing.T) {
	reg := trace.NewRegistry()
	reg.Add("parfs.requests", 3)
	reg.SetGauge("model/t_read", 0.5)
	var buf bytes.Buffer
	if err := reg.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	m, err := ParseCountersCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(m) == 0 {
		t.Fatal("empty counter map")
	}
	found := false
	for k, v := range m {
		if strings.Contains(k, "parfs.requests") && v == 3 {
			found = true
		}
	}
	if !found {
		t.Fatalf("parfs.requests=3 not in %v", m)
	}
	if _, err := ParseCountersCSV(strings.NewReader("a,b\n")); err == nil {
		t.Fatal("want error on malformed CSV")
	}
}
