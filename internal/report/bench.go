// Versioned bench records and the regression gate. senkf-bench -record
// writes BENCH_<n>.json — the deterministic virtual-clock outcomes of the
// P-EnKF/S-EnKF suite (config, wall times, phase breakdowns, model drift)
// — and senkf-bench -check compares a fresh run against the latest
// committed record, failing when any run's wall time regresses beyond the
// tolerance. Simulated runtimes are exact virtual seconds, so records are
// machine-independent and the gate can run in CI without noise margins.

package report

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"

	"senkf/internal/costmodel"
	"senkf/internal/figures"
	"senkf/internal/metrics"
)

// BenchSchema is the BENCH_<n>.json schema version.
const BenchSchema = 1

// BenchRun is one (algorithm, processor count) cell of a bench record.
type BenchRun struct {
	Algorithm string  `json:"algorithm"`
	NP        int     `json:"np"`
	Runtime   float64 `json:"runtime"` // virtual seconds
	// FirstStage and OverlapFraction are S-EnKF-only (zero otherwise).
	FirstStage      float64           `json:"first_stage,omitempty"`
	OverlapFraction float64           `json:"overlap_fraction,omitempty"`
	IO              metrics.Breakdown `json:"io"`
	Compute         metrics.Breakdown `json:"compute"`
	// Tuned is the auto-tuner's choice (S-EnKF only).
	Tuned *costmodel.Tuned `json:"tuned,omitempty"`
	// Drift holds the per-term model-vs-measured comparison (S-EnKF only).
	Drift []costmodel.TermDrift `json:"drift,omitempty"`
}

func (r BenchRun) key() string { return fmt.Sprintf("%s/np%d", r.Algorithm, r.NP) }

// BenchRecord is the content of one BENCH_<n>.json.
type BenchRecord struct {
	Version int    `json:"version"`
	Schema  int    `json:"schema"`
	// Scale names the option set ("quick" or "paper"); records of different
	// scales are not comparable.
	Scale string     `json:"scale"`
	Eps   float64    `json:"eps"`
	Runs  []BenchRun `json:"runs"`
}

// BenchFromSuite runs the P-EnKF and S-EnKF suite at every configured
// processor count and assembles the record (Version is assigned by
// WriteRecord).
func BenchFromSuite(s *figures.Suite, scale string) (BenchRecord, error) {
	rec := BenchRecord{Schema: BenchSchema, Scale: scale, Eps: s.O.Eps}
	for _, np := range s.O.ProcCounts {
		pres, err := s.PEnKFAt(np)
		if err != nil {
			return BenchRecord{}, err
		}
		rec.Runs = append(rec.Runs, BenchRun{
			Algorithm: pres.Algorithm, NP: pres.NP, Runtime: pres.Runtime,
			IO: pres.IO, Compute: pres.Compute,
		})
		sres, tuned, err := s.SEnKFAt(np)
		if err != nil {
			return BenchRecord{}, err
		}
		run := BenchRun{
			Algorithm: sres.Algorithm, NP: sres.NP, Runtime: sres.Runtime,
			FirstStage: sres.FirstStage, OverlapFraction: sres.OverlapFraction,
			IO: sres.IO, Compute: sres.Compute,
		}
		t := tuned
		run.Tuned = &t
		// Result breakdowns are per-processor totals over L stages; the
		// model terms are per stage.
		l := float64(tuned.Choice.L)
		if l > 0 {
			d := s.O.Cfg.P.Drift(tuned.Choice, costmodel.Measured{
				TRead: sres.IO.Read / l,
				TComm: sres.IO.Comm / l,
				TComp: sres.Compute.Compute / l,
			})
			run.Drift = d.Terms
		}
		rec.Runs = append(rec.Runs, run)
	}
	return rec, nil
}

var benchName = regexp.MustCompile(`^BENCH_(\d+)\.json$`)

// benchVersions lists the record versions present in dir, ascending.
func benchVersions(dir string) ([]int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var vs []int
	for _, e := range entries {
		if m := benchName.FindStringSubmatch(e.Name()); m != nil {
			var v int
			fmt.Sscanf(m[1], "%d", &v)
			vs = append(vs, v)
		}
	}
	sort.Ints(vs)
	return vs, nil
}

// BenchPath returns dir/BENCH_<version>.json.
func BenchPath(dir string, version int) string {
	return filepath.Join(dir, fmt.Sprintf("BENCH_%d.json", version))
}

// LatestRecord loads the highest-versioned record in dir. ok is false when
// the directory holds no records.
func LatestRecord(dir string) (BenchRecord, string, bool, error) {
	vs, err := benchVersions(dir)
	if err != nil || len(vs) == 0 {
		return BenchRecord{}, "", false, err
	}
	path := BenchPath(dir, vs[len(vs)-1])
	data, err := os.ReadFile(path)
	if err != nil {
		return BenchRecord{}, "", false, err
	}
	var rec BenchRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return BenchRecord{}, "", false, fmt.Errorf("report: %s: %w", path, err)
	}
	return rec, path, true, nil
}

// WriteRecord stores rec in dir as the next version (latest+1, or 1 in an
// empty directory) unless rec.Version is already set, and returns the
// written path.
func WriteRecord(dir string, rec BenchRecord) (string, error) {
	if rec.Version == 0 {
		vs, err := benchVersions(dir)
		if err != nil {
			return "", err
		}
		rec.Version = 1
		if len(vs) > 0 {
			rec.Version = vs[len(vs)-1] + 1
		}
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return "", err
	}
	path := BenchPath(dir, rec.Version)
	return path, os.WriteFile(path, append(data, '\n'), 0o644)
}

// RunDelta compares one run across two records.
type RunDelta struct {
	Algorithm string  `json:"algorithm"`
	NP        int     `json:"np"`
	Prev      float64 `json:"prev"`
	Cur       float64 `json:"cur"`
	// Delta is (cur − prev) / prev.
	Delta     float64 `json:"delta"`
	Regressed bool    `json:"regressed"`
}

// Compare checks cur against prev: every run present in both records is
// matched by (algorithm, np) and flagged when its wall time exceeds the
// previous one by more than tol (relative). Records of different scales
// are an error — their runtimes are not comparable.
func Compare(prev, cur BenchRecord, tol float64) ([]RunDelta, error) {
	if prev.Scale != cur.Scale {
		return nil, fmt.Errorf("report: cannot compare scale %q against %q", cur.Scale, prev.Scale)
	}
	old := map[string]BenchRun{}
	for _, r := range prev.Runs {
		old[r.key()] = r
	}
	var out []RunDelta
	for _, r := range cur.Runs {
		p, ok := old[r.key()]
		if !ok {
			continue
		}
		d := RunDelta{Algorithm: r.Algorithm, NP: r.NP, Prev: p.Runtime, Cur: r.Runtime}
		if p.Runtime > 0 {
			d.Delta = (r.Runtime - p.Runtime) / p.Runtime
		}
		d.Regressed = r.Runtime > p.Runtime*(1+tol)
		out = append(out, d)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("report: records share no (algorithm, np) runs")
	}
	return out, nil
}

// Regressions filters the deltas down to the failures.
func Regressions(deltas []RunDelta) []RunDelta {
	var out []RunDelta
	for _, d := range deltas {
		if d.Regressed {
			out = append(out, d)
		}
	}
	return out
}
