package metrics

import (
	"math"
	"testing"
)

// Edge cases for UnionSpans: zero-length intervals, exactly-adjacent spans,
// fully-nested spans and empty inputs. The trace-derived overlap analysis
// leans on these behaviours, so they are pinned explicitly.

func spansEqual(a, b []Span) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestUnionSpansEmptyInputs(t *testing.T) {
	if got := UnionSpans(nil); got != nil {
		t.Errorf("UnionSpans(nil) = %v, want nil", got)
	}
	if got := UnionSpans([]Span{}); got != nil {
		t.Errorf("UnionSpans([]) = %v, want nil", got)
	}
}

func TestUnionSpansZeroLength(t *testing.T) {
	// A lone zero-length span survives as-is.
	if got := UnionSpans([]Span{{2, 2}}); !spansEqual(got, []Span{{2, 2}}) {
		t.Errorf("zero-length alone: %v", got)
	}
	// A zero-length span touching a real span is absorbed.
	if got := UnionSpans([]Span{{2, 2}, {2, 5}}); !spansEqual(got, []Span{{2, 5}}) {
		t.Errorf("zero-length at start: %v", got)
	}
	if got := UnionSpans([]Span{{0, 3}, {3, 3}}); !spansEqual(got, []Span{{0, 3}}) {
		t.Errorf("zero-length at end: %v", got)
	}
	// A zero-length span strictly between two others stays separate.
	got := UnionSpans([]Span{{0, 1}, {2, 2}, {3, 4}})
	if !spansEqual(got, []Span{{0, 1}, {2, 2}, {3, 4}}) {
		t.Errorf("isolated zero-length: %v", got)
	}
	if SpanTotal(got) != 2 {
		t.Errorf("zero-length contributes to total: %g", SpanTotal(got))
	}
}

func TestUnionSpansExactlyAdjacent(t *testing.T) {
	// Spans that share an endpoint merge into one — [0,2]+[2,4] is
	// continuous activity, not two bursts.
	if got := UnionSpans([]Span{{0, 2}, {2, 4}}); !spansEqual(got, []Span{{0, 4}}) {
		t.Errorf("adjacent pair: %v", got)
	}
	// Chain of adjacencies collapses fully, regardless of input order.
	got := UnionSpans([]Span{{4, 6}, {0, 2}, {2, 4}})
	if !spansEqual(got, []Span{{0, 6}}) {
		t.Errorf("adjacent chain: %v", got)
	}
}

func TestUnionSpansFullyNested(t *testing.T) {
	// An inner span vanishes into the outer one.
	if got := UnionSpans([]Span{{0, 10}, {3, 4}}); !spansEqual(got, []Span{{0, 10}}) {
		t.Errorf("nested: %v", got)
	}
	// Multiple nesting levels plus a same-start shorter span.
	got := UnionSpans([]Span{{1, 2}, {0, 10}, {0, 5}, {9, 10}})
	if !spansEqual(got, []Span{{0, 10}}) {
		t.Errorf("deep nesting: %v", got)
	}
	if SpanTotal(got) != 10 {
		t.Errorf("nested total %g, want 10", SpanTotal(got))
	}
}

func TestOverlapDurationEdgeCases(t *testing.T) {
	// Empty inputs on either side.
	if d := OverlapDuration(nil, []Span{{0, 1}}); d != 0 {
		t.Errorf("nil lhs overlap = %g", d)
	}
	if d := OverlapDuration(nil, nil); d != 0 {
		t.Errorf("nil both overlap = %g", d)
	}
	// Touching at a single point contributes zero.
	if d := OverlapDuration([]Span{{0, 2}}, []Span{{2, 4}}); d != 0 {
		t.Errorf("point-touching overlap = %g", d)
	}
	// Zero-length spans overlap nothing, even inside the other set.
	if d := OverlapDuration([]Span{{1, 1}}, []Span{{0, 2}}); d != 0 {
		t.Errorf("zero-length overlap = %g", d)
	}
	// Fully-nested: the overlap is the inner span.
	if d := OverlapDuration([]Span{{0, 10}}, []Span{{3, 4}}); math.Abs(d-1) > 1e-12 {
		t.Errorf("nested overlap = %g, want 1", d)
	}
	// Identical sets: the overlap is the whole union.
	a := UnionSpans([]Span{{0, 2}, {5, 8}})
	if d := OverlapDuration(a, a); math.Abs(d-5) > 1e-12 {
		t.Errorf("self overlap = %g, want 5", d)
	}
}
