package metrics

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestPhaseString(t *testing.T) {
	want := map[Phase]string{
		PhaseRead: "read", PhaseComm: "comm", PhaseCompute: "compute", PhaseWait: "wait",
	}
	for p, s := range want {
		if p.String() != s {
			t.Errorf("%d.String() = %q, want %q", p, p.String(), s)
		}
	}
	if Phase(42).String() == "" {
		t.Error("unknown phase string empty")
	}
}

func TestRecordAndBreakdown(t *testing.T) {
	r := NewRecorder()
	r.Record("io0", PhaseRead, 0, 2)
	r.Record("io0", PhaseComm, 2, 3)
	r.Record("io1", PhaseRead, 0, 1)
	r.Record("cp0", PhaseCompute, 0, 5)
	r.Record("cp0", PhaseWait, 5, 6)

	io := r.Breakdown("io")
	if io.Read != 3 || io.Comm != 1 || io.Compute != 0 || io.Wait != 0 {
		t.Errorf("io breakdown %+v", io)
	}
	cp := r.Breakdown("cp")
	if cp.Compute != 5 || cp.Wait != 1 {
		t.Errorf("cp breakdown %+v", cp)
	}
	all := r.Breakdown("")
	if all.Total() != 10 {
		t.Errorf("total %g, want 10", all.Total())
	}
}

func TestDegenerateIntervalsDropped(t *testing.T) {
	r := NewRecorder()
	r.Record("a", PhaseRead, 5, 5)
	r.Record("a", PhaseRead, 5, 4)
	if b := r.Breakdown(""); b.Total() != 0 {
		t.Errorf("degenerate intervals recorded: %+v", b)
	}
}

func TestPercentAndGet(t *testing.T) {
	var b Breakdown
	b.Add(PhaseRead, 1)
	b.Add(PhaseCompute, 3)
	if p := b.Percent(PhaseRead); math.Abs(p-25) > 1e-12 {
		t.Errorf("read percent %g, want 25", p)
	}
	if p := b.Percent(PhaseCompute); math.Abs(p-75) > 1e-12 {
		t.Errorf("compute percent %g, want 75", p)
	}
	if (Breakdown{}).Percent(PhaseRead) != 0 {
		t.Error("empty breakdown percent should be 0")
	}
	if b.Get(Phase(9)) != 0 {
		t.Error("unknown phase Get should be 0")
	}
}

func TestProcsAndMeanBreakdown(t *testing.T) {
	r := NewRecorder()
	r.Record("io0", PhaseRead, 0, 4)
	r.Record("io1", PhaseRead, 0, 2)
	procs := r.Procs("io")
	if len(procs) != 2 || procs[0] != "io0" || procs[1] != "io1" {
		t.Errorf("procs %v", procs)
	}
	mean := r.MeanBreakdown("io")
	if mean.Read != 3 {
		t.Errorf("mean read %g, want 3", mean.Read)
	}
	if (NewRecorder()).MeanBreakdown("none").Total() != 0 {
		t.Error("mean of no procs should be zero")
	}
}

func TestUnionSpans(t *testing.T) {
	got := UnionSpans([]Span{{3, 4}, {0, 2}, {1, 3.5}, {6, 7}})
	want := []Span{{0, 4}, {6, 7}}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if UnionSpans(nil) != nil {
		t.Error("empty union should be nil")
	}
}

func TestSpansByPhase(t *testing.T) {
	r := NewRecorder()
	r.Record("cp0", PhaseCompute, 0, 2)
	r.Record("cp1", PhaseCompute, 1, 3)
	r.Record("cp0", PhaseWait, 3, 4)
	spans := r.Spans("cp", PhaseCompute)
	if len(spans) != 1 || spans[0] != (Span{0, 3}) {
		t.Errorf("compute spans %v", spans)
	}
	both := r.Spans("cp", PhaseCompute, PhaseWait)
	if SpanTotal(both) != 4 {
		t.Errorf("compute+wait total %g, want 4", SpanTotal(both))
	}
}

func TestOverlapDuration(t *testing.T) {
	a := []Span{{0, 2}, {4, 6}}
	b := []Span{{1, 5}}
	if d := OverlapDuration(a, b); math.Abs(d-2) > 1e-12 {
		t.Errorf("overlap %g, want 2", d)
	}
	if d := OverlapDuration(a, nil); d != 0 {
		t.Errorf("overlap with empty = %g", d)
	}
	disjoint := []Span{{10, 11}}
	if d := OverlapDuration(a, disjoint); d != 0 {
		t.Errorf("disjoint overlap = %g", d)
	}
}

func TestOverlapScenarioLikeFig11(t *testing.T) {
	// I/O happens at [0,1] (exposed) and [1,9] (hidden behind compute).
	r := NewRecorder()
	r.Record("io0", PhaseRead, 0, 9)
	r.Record("cp0", PhaseCompute, 1, 10)
	io := r.Spans("io", PhaseRead, PhaseComm)
	cp := r.Spans("cp", PhaseCompute)
	overlapped := OverlapDuration(io, cp)
	if math.Abs(overlapped-8) > 1e-12 {
		t.Errorf("overlapped = %g, want 8", overlapped)
	}
}

func TestConcurrentRecording(t *testing.T) {
	r := NewRecorder()
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Record("p", PhaseCompute, float64(i), float64(i)+0.5)
			}
		}(g)
	}
	wg.Wait()
	if got := r.Breakdown("p").Compute; math.Abs(got-16*100*0.5) > 1e-9 {
		t.Errorf("concurrent total %g", got)
	}
}

func TestQuickUnionSpansInvariants(t *testing.T) {
	f := func(raw []struct{ A, B uint8 }) bool {
		var spans []Span
		var total float64
		for _, r := range raw {
			lo, hi := float64(r.A), float64(r.A)+float64(r.B%16)+0.5
			spans = append(spans, Span{lo, hi})
			total += hi - lo
		}
		u := UnionSpans(spans)
		// Disjoint, sorted, and total does not exceed raw sum.
		for i := 1; i < len(u); i++ {
			if u[i].Start <= u[i-1].End {
				return false
			}
		}
		return SpanTotal(u) <= total+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
