// Package metrics records per-processor phase timings (file reading,
// communication, local analysis, waiting) as time intervals and derives the
// quantities the paper's evaluation plots: phase breakdowns per processor
// class (Figure 9), the share of I/O and communication hidden behind local
// computation (Figure 11), and I/O-vs-compute percentages (Figure 1).
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Phase classifies what a processor spends time on.
type Phase int

const (
	// PhaseRead is time spent reading from the (simulated or real) file
	// system, including queueing for disk resources.
	PhaseRead Phase = iota
	// PhaseComm is time spent sending or receiving messages.
	PhaseComm
	// PhaseCompute is local analysis time.
	PhaseCompute
	// PhaseWait is idle time waiting for data to arrive.
	PhaseWait
	numPhases
)

func (p Phase) String() string {
	switch p {
	case PhaseRead:
		return "read"
	case PhaseComm:
		return "comm"
	case PhaseCompute:
		return "compute"
	case PhaseWait:
		return "wait"
	default:
		return fmt.Sprintf("phase(%d)", int(p))
	}
}

// Interval is one recorded activity of one processor.
type Interval struct {
	Phase      Phase
	Start, End float64
}

// Recorder accumulates intervals per processor. It is safe for concurrent
// use (the real executions record from many goroutines).
type Recorder struct {
	mu   sync.Mutex
	byID map[string][]Interval
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{byID: map[string][]Interval{}}
}

// Record adds an interval for the named processor. Degenerate intervals
// (End <= Start) are dropped.
func (r *Recorder) Record(proc string, ph Phase, start, end float64) {
	if end <= start {
		return
	}
	r.mu.Lock()
	r.byID[proc] = append(r.byID[proc], Interval{Phase: ph, Start: start, End: end})
	r.mu.Unlock()
}

// Procs returns the recorded processor names with the given prefix, sorted.
func (r *Recorder) Procs(prefix string) []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []string
	for id := range r.byID {
		if strings.HasPrefix(id, prefix) {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// Breakdown is the total time per phase across a set of processors.
type Breakdown struct {
	Read, Comm, Compute, Wait float64
}

// Add accumulates d seconds into the given phase.
func (b *Breakdown) Add(p Phase, d float64) {
	switch p {
	case PhaseRead:
		b.Read += d
	case PhaseComm:
		b.Comm += d
	case PhaseCompute:
		b.Compute += d
	case PhaseWait:
		b.Wait += d
	}
}

// Get returns the accumulated seconds of one phase.
func (b Breakdown) Get(p Phase) float64 {
	switch p {
	case PhaseRead:
		return b.Read
	case PhaseComm:
		return b.Comm
	case PhaseCompute:
		return b.Compute
	case PhaseWait:
		return b.Wait
	default:
		return 0
	}
}

// Total returns the sum over all phases.
func (b Breakdown) Total() float64 { return b.Read + b.Comm + b.Compute + b.Wait }

// Percent returns the share of phase p in the total (0 when empty).
func (b Breakdown) Percent(p Phase) float64 {
	t := b.Total()
	if t == 0 {
		return 0
	}
	return 100 * b.Get(p) / t
}

// Breakdown sums the phase durations of every processor whose name starts
// with prefix.
func (r *Recorder) Breakdown(prefix string) Breakdown {
	r.mu.Lock()
	defer r.mu.Unlock()
	var b Breakdown
	for id, ivs := range r.byID {
		if !strings.HasPrefix(id, prefix) {
			continue
		}
		for _, iv := range ivs {
			b.Add(iv.Phase, iv.End-iv.Start)
		}
	}
	return b
}

// MeanBreakdown divides the prefix breakdown by the number of matching
// processors, yielding the per-processor averages Figure 9 plots.
func (r *Recorder) MeanBreakdown(prefix string) Breakdown {
	n := len(r.Procs(prefix))
	b := r.Breakdown(prefix)
	if n == 0 {
		return Breakdown{}
	}
	b.Read /= float64(n)
	b.Comm /= float64(n)
	b.Compute /= float64(n)
	b.Wait /= float64(n)
	return b
}

// Span is a merged busy interval.
type Span struct{ Start, End float64 }

// UnionSpans merges possibly-overlapping intervals into disjoint spans.
// Truncated intervals — End before Start, as left behind by ranks that
// died mid-phase in a resilient run — are clamped to zero length at their
// start instead of being allowed to swallow neighbouring spans, so the
// Figure 11 hidden-I/O accounting cannot be inflated by failed ranks.
func UnionSpans(ivs []Span) []Span {
	if len(ivs) == 0 {
		return nil
	}
	sorted := append([]Span(nil), ivs...)
	for i := range sorted {
		if sorted[i].End < sorted[i].Start {
			sorted[i].End = sorted[i].Start
		}
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Start < sorted[j].Start })
	out := []Span{sorted[0]}
	for _, s := range sorted[1:] {
		last := &out[len(out)-1]
		if s.Start <= last.End {
			if s.End > last.End {
				last.End = s.End
			}
			continue
		}
		out = append(out, s)
	}
	return out
}

// Spans returns the union of the intervals of the given phases across
// processors matching prefix.
func (r *Recorder) Spans(prefix string, phases ...Phase) []Span {
	want := map[Phase]bool{}
	for _, p := range phases {
		want[p] = true
	}
	r.mu.Lock()
	var raw []Span
	for id, ivs := range r.byID {
		if !strings.HasPrefix(id, prefix) {
			continue
		}
		for _, iv := range ivs {
			if want[iv.Phase] {
				raw = append(raw, Span{Start: iv.Start, End: iv.End})
			}
		}
	}
	r.mu.Unlock()
	return UnionSpans(raw)
}

// OverlapDuration returns the total time during which both span sets are
// simultaneously active.
func OverlapDuration(a, b []Span) float64 {
	var total float64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		lo := a[i].Start
		if b[j].Start > lo {
			lo = b[j].Start
		}
		hi := a[i].End
		if b[j].End < hi {
			hi = b[j].End
		}
		if hi > lo {
			total += hi - lo
		}
		if a[i].End < b[j].End {
			i++
		} else {
			j++
		}
	}
	return total
}

// SpanTotal returns the summed duration of disjoint spans.
func SpanTotal(s []Span) float64 {
	var t float64
	for _, sp := range s {
		t += sp.End - sp.Start
	}
	return t
}
