// Regression tests for truncated spans: a rank that dies mid-phase leaves
// a span whose recorded end precedes its start (the death instant). Before
// the clamp in UnionSpans, such spans deflated the busy-time union and
// inflated the Figure 11 hidden-I/O share past 100%.

package metrics

import (
	"math"
	"testing"
)

func TestUnionSpansClampsTruncated(t *testing.T) {
	got := UnionSpans([]Span{
		{Start: 0, End: 2},
		{Start: 10, End: 4}, // truncated: rank died at t=4 inside a span opened at t=10
		{Start: 3, End: 5},
	})
	want := []Span{{Start: 0, End: 2}, {Start: 3, End: 5}, {Start: 10, End: 10}}
	if len(got) != len(want) {
		t.Fatalf("UnionSpans = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("UnionSpans[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if total := SpanTotal(got); total != 4 {
		t.Fatalf("SpanTotal = %g, want 4 (truncated span contributes nothing)", total)
	}
}

// The Fig. 11 computation end to end: overlap / ioBusy must stay ≤ 1 even
// when the I/O union contains truncated spans from failed ranks.
func TestOverlapShareWithTruncatedSpansStaysBounded(t *testing.T) {
	io := UnionSpans([]Span{
		{Start: 0, End: 1},
		{Start: 8, End: 2}, // truncated
	})
	compute := UnionSpans([]Span{{Start: 0, End: 10}})
	busy := SpanTotal(io)
	if busy != 1 {
		t.Fatalf("io busy = %g, want 1", busy)
	}
	share := OverlapDuration(io, compute) / busy
	if share < 0 || share > 1 {
		t.Fatalf("overlap share = %g outside [0, 1]", share)
	}
	if math.Abs(share-1) > 1e-12 {
		t.Fatalf("overlap share = %g, want 1 (the single real span is fully hidden)", share)
	}
}
