// Stable, class-prefixed processor names shared by every schedule, the
// recorder and the trace tracks. Grouping by Procs(IOPrefix) or
// Procs(ComputePrefix) — and grouping trace tracks the same way — works
// identically across P-EnKF, L-EnKF and S-EnKF because all of them name
// their processors through these two functions.

package metrics

import "fmt"

// IOPrefix is the name prefix of every I/O processor.
const IOPrefix = "io"

// ComputePrefix is the name prefix of every compute processor.
const ComputePrefix = "comp"

// IOName names reader r of concurrent group g: "io/g<g>/r<r>".
func IOName(g, r int) string {
	return fmt.Sprintf("io/g%d/r%d", g, r)
}

// ComputeName names the compute processor of grid cell (i, j):
// "comp/x<i>y<j>".
func ComputeName(i, j int) string {
	return fmt.Sprintf("comp/x%dy%d", i, j)
}
