package metrics

import (
	"strings"
	"testing"
)

// TestNamingScheme pins the class-prefixed processor naming shared by the
// recorder and the trace tracks. Changing these strings silently breaks
// Procs(prefix) grouping and every trace-derived analysis, so the exact
// format is asserted here.
func TestNamingScheme(t *testing.T) {
	if got := IOName(0, 0); got != "io/g0/r0" {
		t.Errorf("IOName(0,0) = %q, want io/g0/r0", got)
	}
	if got := IOName(3, 11); got != "io/g3/r11" {
		t.Errorf("IOName(3,11) = %q, want io/g3/r11", got)
	}
	if got := ComputeName(0, 0); got != "comp/x0y0" {
		t.Errorf("ComputeName(0,0) = %q, want comp/x0y0", got)
	}
	if got := ComputeName(12, 7); got != "comp/x12y7" {
		t.Errorf("ComputeName(12,7) = %q, want comp/x12y7", got)
	}
	// Every name matches its own class prefix and not the other's.
	for g := 0; g < 3; g++ {
		for r := 0; r < 3; r++ {
			n := IOName(g, r)
			if !strings.HasPrefix(n, IOPrefix) || strings.HasPrefix(n, ComputePrefix) {
				t.Errorf("IOName %q not grouped by prefix %q", n, IOPrefix)
			}
		}
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			n := ComputeName(i, j)
			if !strings.HasPrefix(n, ComputePrefix) || strings.HasPrefix(n, IOPrefix) {
				t.Errorf("ComputeName %q not grouped by prefix %q", n, ComputePrefix)
			}
		}
	}
}

// TestNamingGroupsInRecorder exercises the prefixes through the recorder,
// the way every schedule uses them.
func TestNamingGroupsInRecorder(t *testing.T) {
	rec := NewRecorder()
	rec.Record(IOName(0, 0), PhaseRead, 0, 1)
	rec.Record(IOName(1, 0), PhaseRead, 0, 2)
	rec.Record(ComputeName(0, 0), PhaseCompute, 1, 3)
	if got := len(rec.Procs(IOPrefix)); got != 2 {
		t.Errorf("io procs = %d, want 2", got)
	}
	if got := len(rec.Procs(ComputePrefix)); got != 1 {
		t.Errorf("compute procs = %d, want 1", got)
	}
	if b := rec.Breakdown(IOPrefix); b.Read != 3 || b.Compute != 0 {
		t.Errorf("io breakdown %+v", b)
	}
}
