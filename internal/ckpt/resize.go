// Elastic ensembles: between cycles the member pool may grow or shrink
// (Friedemann & Raffin's runners added and removed mid-study). Shrinking
// drops the tail members and reweights the survivors' deviations by
// sqrt((N−1)/(N'−1)) — the same variance-preserving inflation the
// resilient S-EnKF applies when members are lost to faults. Growing
// resamples: each new member clones an existing member's deviation and
// adds an independent smooth perturbation (so the new deviations are not
// rank-deficient copies), then ALL deviations are reweighted by one
// global factor so the ensemble's mean point-wise variance is exactly
// preserved — growth changes the sampling, not the spread. Both
// directions are deterministic in (fields, newN, seed).

package ckpt

import (
	"fmt"
	"math"

	"senkf/internal/grid"
	"senkf/internal/workload"
)

// ResizeEnsemble returns a deterministic resampling of fields with newN
// members. The input is never mutated; newN == len(fields) returns a deep
// copy.
func ResizeEnsemble(m grid.Mesh, fields [][]float64, newN int, seed uint64) ([][]float64, error) {
	n := len(fields)
	if n < 2 {
		return nil, fmt.Errorf("ckpt: resize of %d-member ensemble", n)
	}
	if newN < 2 {
		return nil, fmt.Errorf("ckpt: resize to %d members (need at least 2)", newN)
	}
	pts := m.Points()
	for k, f := range fields {
		if len(f) != pts {
			return nil, fmt.Errorf("ckpt: member %d has %d points, mesh has %d", k, len(f), pts)
		}
	}
	out := make([][]float64, newN)
	for k := 0; k < min(n, newN); k++ {
		out[k] = append([]float64(nil), fields[k]...)
	}
	if newN == n {
		return out, nil
	}

	before := meanVariance(fields)
	if newN < n {
		// Shrink: drop the tail, reweight survivors about their own mean
		// (PR 2's sqrt((N−1)/(N'−1)) unbiased-normalisation factor).
		factor := math.Sqrt(float64(n-1) / float64(newN-1))
		reweight(out, factor)
		return out, nil
	}

	// Grow: resample deviations cyclically, perturb each clone with an
	// independent smooth field scaled to the ensemble's own spread.
	sd := math.Sqrt(before)
	if sd == 0 {
		sd = 1e-8 // degenerate spread: perturbations still break the ties
	}
	for k := n; k < newN; k++ {
		base := fields[k%n]
		noise := workload.SmoothNoise(m, 0.5*sd, seed, 0xE1A5, k)
		f := make([]float64, pts)
		for i := range f {
			f[i] = base[i] + noise[i]
		}
		out[k] = f
	}
	// Inflation-reweight: one global factor restores the pre-resize mean
	// point-wise variance exactly.
	after := meanVariance(out)
	if after > 0 && before > 0 {
		reweight(out, math.Sqrt(before/after))
	}
	return out, nil
}

// ensembleMean returns the point-wise ensemble mean.
func ensembleMean(fields [][]float64) []float64 {
	mean := make([]float64, len(fields[0]))
	for _, f := range fields {
		for i, v := range f {
			mean[i] += v
		}
	}
	inv := 1 / float64(len(fields))
	for i := range mean {
		mean[i] *= inv
	}
	return mean
}

// meanVariance returns the mean point-wise unbiased sample variance.
func meanVariance(fields [][]float64) float64 {
	n := len(fields)
	if n < 2 {
		return 0
	}
	mean := ensembleMean(fields)
	var total float64
	for i := range mean {
		var v float64
		for k := 0; k < n; k++ {
			d := fields[k][i] - mean[i]
			v += d * d
		}
		total += v / float64(n-1)
	}
	return total / float64(len(mean))
}

// reweight scales every member's deviation about the ensemble mean.
func reweight(fields [][]float64, factor float64) {
	mean := ensembleMean(fields)
	for _, f := range fields {
		for i := range f {
			f[i] = mean[i] + factor*(f[i]-mean[i])
		}
	}
}
