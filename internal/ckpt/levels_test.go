package ckpt

import (
	"strings"
	"testing"

	"senkf/internal/grid"
	"senkf/internal/workload"
)

// testStateML builds a multilevel cycled-run state: level-major
// concatenated fields, as the State contract specifies.
func testStateML(t *testing.T, m grid.Mesh, cycle, n, levels int) State {
	t.Helper()
	truths, err := workload.TruthLevels(m, workload.FieldSpec{Modes: 3, Amplitude: 3, Noise: 0.05}, levels, 77)
	if err != nil {
		t.Fatal(err)
	}
	ens, err := workload.EnsembleLevels(m, truths, n, 1.2, 77)
	if err != nil {
		t.Fatal(err)
	}
	free, err := workload.EnsembleLevels(m, truths, n, 1.2, 78)
	if err != nil {
		t.Fatal(err)
	}
	cat := func(perLevel [][]float64) []float64 {
		var out []float64
		for _, f := range perLevel {
			out = append(out, f...)
		}
		return out
	}
	st := State{
		Cycle:    cycle,
		Truth:    cat(truths),
		Ensemble: make([][]float64, n),
		Free:     make([][]float64, n),
		Seed:     77,
		Config:   map[string]string{"nx": "12", "ny": "8", "levels": "3"},
		Levels:   levels,
	}
	for k := 0; k < n; k++ {
		st.Ensemble[k] = cat(ens[k])
		st.Free[k] = cat(free[k])
	}
	return st
}

// TestMultiLevelCheckpointResume round-trips a multilevel cycled-run state
// through Write and Latest: the resume path must restore every level of
// every member bit for bit, and the manifest must record the level count.
func TestMultiLevelCheckpointResume(t *testing.T) {
	const levels = 3
	m := testMesh(t)
	dir := t.TempDir()
	st := testStateML(t, m, 5, 4, levels)
	if _, err := Write(dir, m, st); err != nil {
		t.Fatal(err)
	}
	l, skipped, err := Latest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped) != 0 || l == nil {
		t.Fatalf("latest skipped %d, loaded %v", len(skipped), l)
	}
	if l.Manifest.Levels != levels || l.State.LevelCount() != levels {
		t.Fatalf("levels: manifest %d, state %d, want %d", l.Manifest.Levels, l.State.LevelCount(), levels)
	}
	if l.State.Cycle != st.Cycle {
		t.Fatalf("cycle %d, want %d", l.State.Cycle, st.Cycle)
	}
	for i := range st.Truth {
		if l.State.Truth[i] != st.Truth[i] {
			t.Fatalf("truth point %d differs", i)
		}
	}
	for k := range st.Ensemble {
		for i := range st.Ensemble[k] {
			if l.State.Ensemble[k][i] != st.Ensemble[k][i] {
				t.Fatalf("member %d point %d differs", k, i)
			}
			if l.State.Free[k][i] != st.Free[k][i] {
				t.Fatalf("free member %d point %d differs", k, i)
			}
		}
	}
	// The config digest pins the level dimension: a run driven with a
	// different levels value must not silently resume this tree.
	other := map[string]string{"nx": "12", "ny": "8", "levels": "1"}
	if DigestConfig(other) == l.Manifest.ConfigDigest {
		t.Fatal("config digest does not distinguish level counts")
	}
}

// TestMultiLevelStateValidation pins the level-aware geometry guards.
func TestMultiLevelStateValidation(t *testing.T) {
	m := testMesh(t)
	st := testStateML(t, m, 0, 4, 3)
	st.Levels = -1
	if _, err := Write(t.TempDir(), m, st); err == nil || !strings.Contains(err.Error(), "negative level") {
		t.Fatalf("negative levels accepted: %v", err)
	}
	st = testStateML(t, m, 0, 4, 3)
	st.Levels = 2 // fields carry 3 levels of points
	if _, err := Write(t.TempDir(), m, st); err == nil {
		t.Fatal("level/point mismatch accepted")
	}
}
