// Package ckpt implements crash-consistent checkpoints of a cycled
// assimilation experiment: between forecast–analysis cycles, the full
// durable state of the run — the truth field, the assimilating ensemble,
// the free-running control, the cycle index, the deterministic seed
// schedule, and a digest of the driving configuration — is written to
// disk so a killed run resumes from its last completed cycle instead of
// losing every one of them. The design follows the operational view of
// EnKF systems (Sakov's EnKF-C treats the on-disk ensemble *between*
// cycles as the system state) and the elastic ensemble-DA framework of
// Friedemann & Raffin, where the member pool grows and shrinks across a
// study without restarting it.
//
// Crash-consistency protocol. A checkpoint is staged into a hidden temp
// directory inside the checkpoint root: every field is written as an
// ensio member file (format v2, CRC-64 payload checksums, staged +
// fsynced + renamed per file), then a MANIFEST.json naming every file by
// SHA-256 and guarded by its own CRC-64 is written last and fsynced, the
// staged directories are fsynced, and the stage is atomically renamed to
// its final ckpt-<cycle> name (parent directory fsynced). A crash at any
// point leaves either a complete, verifiable checkpoint or an ignorable
// stage — never a half checkpoint behind a valid name. Latest scans
// newest-first and falls back past checkpoints that fail any of the
// validation layers (missing manifest, manifest CRC mismatch, missing or
// hash-mismatched files, ensio checksum or geometry errors), so a
// corrupted latest checkpoint costs the cycles since the previous valid
// one, not the run.
//
// The package sits below the cycle driver and beside the plan layer: it
// depends on ensio (the checkpoint *is* an on-disk ensemble) and the
// grid/workload foundations, never on a substrate (mpi/sim/parfs) — CI
// pins the boundary.
package ckpt

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/crc64"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"senkf/internal/ensio"
	"senkf/internal/grid"
)

// Schema is the MANIFEST.json schema version.
const Schema = 1

// ManifestFile is the checkpoint manifest's file name. It is written
// last: a checkpoint without a valid manifest does not exist.
const ManifestFile = "MANIFEST.json"

// File layout inside one checkpoint directory.
const (
	truthFile   = "truth.senk"
	ensembleDir = "ensemble"
	freeDir     = "free"
	stagePrefix = ".stage-"
	dirPrefix   = "ckpt-"
)

// crcTable is the CRC-64 polynomial guarding the manifest.
var crcTable = crc64.MakeTable(crc64.ECMA)

// State is the full cycled-run state one checkpoint carries.
type State struct {
	// Cycle is the number of completed cycles — equivalently, the index
	// of the next cycle to run on resume.
	Cycle int
	// Truth is the reference trajectory's current field.
	Truth []float64
	// Ensemble is the assimilating ensemble after cycle Cycle-1's
	// analysis.
	Ensemble [][]float64
	// Free is the free-running (never assimilating) control ensemble.
	Free [][]float64
	// History is the caller's per-cycle statistics so far, opaque to this
	// package (the cycle driver stores its []Stats here); restored
	// verbatim on resume so a resumed run reports the full series.
	History json.RawMessage
	// Seed is the experiment seed: every cycle's observation noise,
	// perturbation and model-error streams derive deterministically from
	// (Seed, cycle index), so resuming at Cycle replays the exact RNG
	// schedule of an uninterrupted run.
	Seed uint64
	// Config is the driving configuration, name → value; its digest must
	// match on resume (the ensemble size is deliberately excluded by the
	// caller — it is the elastic dimension).
	Config map[string]string
	// PlanHash identifies the compiled analysis plan of the writing run,
	// when one exists ("" for the serial analyzer).
	PlanHash string
	// RunID is the run-ledger identity of the writing run; a resumed run
	// records it as its parent, giving senkf-report the lineage chain.
	RunID string
	// Levels is the vertical level count of the checkpointed state; 0 means
	// 1 (single-level). For Levels > 1 the Truth, Ensemble and Free fields
	// hold each level's row-major field concatenated level-major: level l
	// occupies [l·points, (l+1)·points). On disk, members are stored in
	// ensio's level-interleaved layout, so a resumed multilevel run reads
	// them with the same one-seek bar reads the engine uses.
	Levels int
}

// LevelCount returns the state's effective level count (Levels, 0 → 1).
func (s State) LevelCount() int {
	if s.Levels <= 0 {
		return 1
	}
	return s.Levels
}

// Manifest is the CRC-guarded head of one checkpoint.
type Manifest struct {
	Schema       int               `json:"schema"`
	Cycle        int               `json:"cycle"`
	NX           int               `json:"nx"`
	NY           int               `json:"ny"`
	Members      int               `json:"members"`
	Levels       int               `json:"levels,omitempty"`
	Seed         uint64            `json:"seed"`
	RunID        string            `json:"run_id,omitempty"`
	PlanHash     string            `json:"plan_hash,omitempty"`
	Config       map[string]string `json:"config,omitempty"`
	ConfigDigest string            `json:"config_digest,omitempty"`
	History      json.RawMessage   `json:"history,omitempty"`
	// Files maps every attached file to "sha256:<hex>".
	Files map[string]string `json:"files"`
	// CRC64 is the CRC-64 (ECMA) of this manifest's JSON rendering with
	// the crc64 field empty — the integrity guard of the guard itself.
	CRC64 string `json:"crc64,omitempty"`
}

// DigestConfig content-addresses a configuration map: SHA-256 over the
// sorted "key=value" lines. Two runs with equal digests were driven by
// the same (checkpoint-relevant) configuration.
func DigestConfig(cfg map[string]string) string {
	keys := make([]string, 0, len(cfg))
	for k := range cfg {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	h := sha256.New()
	for _, k := range keys {
		fmt.Fprintf(h, "%s=%s\n", k, cfg[k])
	}
	return "sha256:" + hex.EncodeToString(h.Sum(nil))
}

// manifestCRC computes the manifest's CRC-64 over its rendering with the
// CRC field cleared.
func manifestCRC(m Manifest) (string, error) {
	m.CRC64 = ""
	data, err := json.MarshalIndent(&m, "", "  ")
	if err != nil {
		return "", fmt.Errorf("ckpt: marshal manifest: %w", err)
	}
	return fmt.Sprintf("%016x", crc64.Checksum(data, crcTable)), nil
}

// fileHash content-addresses one attached file.
func fileHash(data []byte) string {
	sum := sha256.Sum256(data)
	return "sha256:" + hex.EncodeToString(sum[:])
}

// DirName returns the checkpoint directory name of cycle c.
func DirName(c int) string { return fmt.Sprintf("%s%06d", dirPrefix, c) }

// parseCycle extracts the cycle index from a checkpoint directory name.
func parseCycle(name string) (int, bool) {
	rest, ok := strings.CutPrefix(name, dirPrefix)
	if !ok {
		return 0, false
	}
	c, err := strconv.Atoi(rest)
	if err != nil || c < 0 {
		return 0, false
	}
	return c, true
}

// syncDir fsyncs a directory so its entries (freshly created files or a
// just-landed rename) survive a crash.
func syncDir(path string) error {
	d, err := os.Open(path)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// validateState checks a state against the mesh before writing.
func validateState(m grid.Mesh, st State) error {
	if st.Cycle < 0 {
		return fmt.Errorf("ckpt: negative cycle %d", st.Cycle)
	}
	if st.Levels < 0 {
		return fmt.Errorf("ckpt: negative level count %d", st.Levels)
	}
	want := m.Points() * st.LevelCount()
	if len(st.Truth) != want {
		return fmt.Errorf("ckpt: truth has %d points, mesh %dx%d × %d levels has %d", len(st.Truth), m.NX, m.NY, st.LevelCount(), want)
	}
	if len(st.Ensemble) < 2 {
		return fmt.Errorf("ckpt: ensemble has %d members, need at least 2", len(st.Ensemble))
	}
	if len(st.Free) != len(st.Ensemble) {
		return fmt.Errorf("ckpt: free control has %d members, ensemble has %d", len(st.Free), len(st.Ensemble))
	}
	for k, f := range st.Ensemble {
		if len(f) != want {
			return fmt.Errorf("ckpt: member %d has %d points, state wants %d", k, len(f), want)
		}
	}
	for k, f := range st.Free {
		if len(f) != want {
			return fmt.Errorf("ckpt: free member %d has %d points, state wants %d", k, len(f), want)
		}
	}
	return nil
}

// Write lands one checkpoint of st under dir (created on demand) and
// returns the final checkpoint directory. The write is crash-consistent;
// see the package comment for the protocol. An existing checkpoint of the
// same cycle (a re-run of resumed cycles) is replaced.
func Write(dir string, m grid.Mesh, st State) (string, error) {
	if err := validateState(m, st); err != nil {
		return "", err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("ckpt: %w", err)
	}
	stage, err := os.MkdirTemp(dir, stagePrefix)
	if err != nil {
		return "", fmt.Errorf("ckpt: stage: %w", err)
	}
	defer os.RemoveAll(stage) // no-op after the final rename

	lv := st.LevelCount()
	man := Manifest{
		Schema: Schema,
		Cycle:  st.Cycle,
		NX:     m.NX, NY: m.NY,
		Members:  len(st.Ensemble),
		Seed:     st.Seed,
		RunID:    st.RunID,
		PlanHash: st.PlanHash,
		Config:   st.Config,
		History:  st.History,
		Files:    map[string]string{},
	}
	if lv > 1 {
		man.Levels = lv
	}
	if len(st.Config) > 0 {
		man.ConfigDigest = DigestConfig(st.Config)
	}

	// Stage every field as an ensio member file (each one staged, synced
	// and renamed on its own), then hash it into the manifest. Multilevel
	// fields arrive level-major and land level-interleaved (the engine's
	// on-disk layout).
	write := func(rel string, member int, field []float64) error {
		path := filepath.Join(stage, filepath.FromSlash(rel))
		hdr := ensio.Header{NX: m.NX, NY: m.NY, Member: member}
		if lv == 1 {
			if err := ensio.WriteMember(path, hdr, field); err != nil {
				return err
			}
		} else {
			pts := m.Points()
			levels := make([][]float64, lv)
			for l := range levels {
				levels[l] = field[l*pts : (l+1)*pts]
			}
			if err := ensio.WriteMemberLevels(path, hdr, levels); err != nil {
				return err
			}
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		man.Files[rel] = fileHash(data)
		return nil
	}
	for _, sub := range []string{ensembleDir, freeDir} {
		if err := os.Mkdir(filepath.Join(stage, sub), 0o755); err != nil {
			return "", fmt.Errorf("ckpt: %w", err)
		}
	}
	if err := write(truthFile, 0, st.Truth); err != nil {
		return "", fmt.Errorf("ckpt: truth: %w", err)
	}
	for k, f := range st.Ensemble {
		if err := write(ensembleDir+"/"+memberName(k), k, f); err != nil {
			return "", fmt.Errorf("ckpt: member %d: %w", k, err)
		}
	}
	for k, f := range st.Free {
		if err := write(freeDir+"/"+memberName(k), k, f); err != nil {
			return "", fmt.Errorf("ckpt: free member %d: %w", k, err)
		}
	}

	// Manifest last, CRC-guarded, fsynced.
	crc, err := manifestCRC(man)
	if err != nil {
		return "", err
	}
	man.CRC64 = crc
	data, err := json.MarshalIndent(&man, "", "  ")
	if err != nil {
		return "", fmt.Errorf("ckpt: marshal manifest: %w", err)
	}
	data = append(data, '\n')
	mf, err := os.Create(filepath.Join(stage, ManifestFile))
	if err != nil {
		return "", fmt.Errorf("ckpt: manifest: %w", err)
	}
	if _, err := mf.Write(data); err != nil {
		mf.Close()
		return "", fmt.Errorf("ckpt: manifest: %w", err)
	}
	if err := mf.Sync(); err != nil {
		mf.Close()
		return "", fmt.Errorf("ckpt: manifest sync: %w", err)
	}
	if err := mf.Close(); err != nil {
		return "", fmt.Errorf("ckpt: manifest close: %w", err)
	}
	for _, d := range []string{filepath.Join(stage, ensembleDir), filepath.Join(stage, freeDir), stage} {
		if err := syncDir(d); err != nil {
			return "", fmt.Errorf("ckpt: sync %s: %w", d, err)
		}
	}

	// Atomic landing: replace any same-cycle predecessor, rename the
	// stage into place, persist the parent's entry.
	final := filepath.Join(dir, DirName(st.Cycle))
	if _, err := os.Stat(final); err == nil {
		if err := os.RemoveAll(final); err != nil {
			return "", fmt.Errorf("ckpt: replace %s: %w", final, err)
		}
	}
	if err := os.Rename(stage, final); err != nil {
		return "", fmt.Errorf("ckpt: land: %w", err)
	}
	if err := syncDir(dir); err != nil {
		return "", fmt.Errorf("ckpt: sync %s: %w", dir, err)
	}
	return final, nil
}

func memberName(k int) string { return fmt.Sprintf("member_%04d.senk", k) }

// Loaded is one checkpoint read back and fully verified.
type Loaded struct {
	State    State
	Manifest Manifest
	// Dir is the checkpoint's directory.
	Dir string
}

// Load reads and fully verifies the checkpoint at path: manifest CRC,
// per-file SHA-256, ensio payload checksums, and geometry. Any failure
// returns an error describing the first broken layer.
func Load(path string) (*Loaded, error) {
	raw, err := os.ReadFile(filepath.Join(path, ManifestFile))
	if err != nil {
		return nil, fmt.Errorf("ckpt: %s: %w", path, err)
	}
	var man Manifest
	if err := json.Unmarshal(raw, &man); err != nil {
		return nil, fmt.Errorf("ckpt: %s: manifest: %w", path, err)
	}
	if man.Schema != Schema {
		return nil, fmt.Errorf("ckpt: %s: unsupported schema %d", path, man.Schema)
	}
	want := man.CRC64
	if want == "" {
		return nil, fmt.Errorf("ckpt: %s: manifest carries no CRC", path)
	}
	got, err := manifestCRC(man)
	if err != nil {
		return nil, err
	}
	if got != want {
		return nil, fmt.Errorf("ckpt: %s: manifest CRC %s, recorded %s — corrupted manifest", path, got, want)
	}
	if man.NX <= 0 || man.NY <= 0 || man.Members < 2 || man.Levels < 0 {
		return nil, fmt.Errorf("ckpt: %s: invalid geometry %dx%d with %d members, %d levels", path, man.NX, man.NY, man.Members, man.Levels)
	}
	m := grid.Mesh{NX: man.NX, NY: man.NY}
	lv := man.Levels
	if lv <= 0 {
		lv = 1
	}

	// Every attached file must exist with its recorded content address.
	for _, rel := range sortedNames(man.Files) {
		data, err := os.ReadFile(filepath.Join(path, filepath.FromSlash(rel)))
		if err != nil {
			return nil, fmt.Errorf("ckpt: %s: %w", path, err)
		}
		if h := fileHash(data); h != man.Files[rel] {
			return nil, fmt.Errorf("ckpt: %s: %s content hash %s does not match manifest %s", path, rel, h, man.Files[rel])
		}
	}

	read := func(rel string, member int) ([]float64, error) {
		if _, ok := man.Files[rel]; !ok {
			return nil, fmt.Errorf("ckpt: %s: manifest lists no %s", path, rel)
		}
		mf, err := ensio.OpenMemberOpts(filepath.Join(path, filepath.FromSlash(rel)), ensio.OpenOptions{Verify: true})
		if err != nil {
			return nil, err
		}
		defer mf.Close()
		if err := mf.CheckGeometry(m.NX, m.NY, lv, member); err != nil {
			return nil, err
		}
		if lv == 1 {
			return mf.ReadAll()
		}
		// One bar read over the whole mesh fetches every level; concatenate
		// back to the state's level-major layout.
		levels, err := mf.ReadBarLevels(0, m.NY)
		if err != nil {
			return nil, err
		}
		out := make([]float64, 0, m.Points()*lv)
		for _, f := range levels {
			out = append(out, f...)
		}
		return out, nil
	}
	st := State{
		Cycle:    man.Cycle,
		Seed:     man.Seed,
		Config:   man.Config,
		PlanHash: man.PlanHash,
		RunID:    man.RunID,
		History:  man.History,
		Levels:   man.Levels,
	}
	if st.Truth, err = read(truthFile, 0); err != nil {
		return nil, err
	}
	st.Ensemble = make([][]float64, man.Members)
	st.Free = make([][]float64, man.Members)
	for k := 0; k < man.Members; k++ {
		if st.Ensemble[k], err = read(ensembleDir+"/"+memberName(k), k); err != nil {
			return nil, err
		}
		if st.Free[k], err = read(freeDir+"/"+memberName(k), k); err != nil {
			return nil, err
		}
	}
	return &Loaded{State: st, Manifest: man, Dir: path}, nil
}

func sortedNames(files map[string]string) []string {
	names := make([]string, 0, len(files))
	for n := range files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Skipped records one checkpoint Latest could not use.
type Skipped struct {
	Path string
	Err  error
}

// Latest returns the newest fully valid checkpoint under dir, falling
// back past corrupt, truncated or half-landed ones (each recorded in
// skipped with the validation error that disqualified it). A missing or
// empty directory returns (nil, nil, nil) — no checkpoint is not an
// error, it just means "start from cycle 0".
func Latest(dir string) (*Loaded, []Skipped, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil, nil
		}
		return nil, nil, fmt.Errorf("ckpt: %w", err)
	}
	type cand struct {
		name  string
		cycle int
	}
	var cands []cand
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if c, ok := parseCycle(e.Name()); ok {
			cands = append(cands, cand{e.Name(), c})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].cycle > cands[j].cycle })
	var skipped []Skipped
	for _, c := range cands {
		path := filepath.Join(dir, c.name)
		l, err := Load(path)
		if err != nil {
			skipped = append(skipped, Skipped{Path: path, Err: err})
			continue
		}
		return l, skipped, nil
	}
	return nil, skipped, nil
}

// Prune removes all but the newest keep checkpoints under dir (stages
// included — a leftover stage is always garbage). keep < 1 keeps
// everything but still sweeps stale stages.
func Prune(dir string, keep int) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("ckpt: %w", err)
	}
	var cycles []int
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if strings.HasPrefix(e.Name(), stagePrefix) {
			if err := os.RemoveAll(filepath.Join(dir, e.Name())); err != nil {
				return fmt.Errorf("ckpt: sweep stage: %w", err)
			}
			continue
		}
		if c, ok := parseCycle(e.Name()); ok {
			cycles = append(cycles, c)
		}
	}
	if keep < 1 || len(cycles) <= keep {
		return nil
	}
	sort.Sort(sort.Reverse(sort.IntSlice(cycles)))
	for _, c := range cycles[keep:] {
		if err := os.RemoveAll(filepath.Join(dir, DirName(c))); err != nil {
			return fmt.Errorf("ckpt: prune %s: %w", DirName(c), err)
		}
	}
	return nil
}

// List returns the cycles of all checkpoint directories under dir,
// newest first, without validating them.
func List(dir string) ([]int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	var cycles []int
	for _, e := range entries {
		if e.IsDir() {
			if c, ok := parseCycle(e.Name()); ok {
				cycles = append(cycles, c)
			}
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(cycles)))
	return cycles, nil
}
