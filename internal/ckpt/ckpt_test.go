package ckpt

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"senkf/internal/grid"
	"senkf/internal/workload"
)

func testMesh(t *testing.T) grid.Mesh {
	t.Helper()
	m, err := grid.NewMesh(12, 8)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func testState(t *testing.T, m grid.Mesh, cycle, n int) State {
	t.Helper()
	truth := workload.Truth(m, workload.FieldSpec{Modes: 3, Amplitude: 3, Noise: 0.05}, 77)
	ens, err := workload.Ensemble(m, truth, n, 1.2, 77)
	if err != nil {
		t.Fatal(err)
	}
	free, err := workload.Ensemble(m, truth, n, 1.2, 78)
	if err != nil {
		t.Fatal(err)
	}
	hist, _ := json.Marshal([]map[string]float64{{"cycle": 0, "rmse": 0.25}})
	return State{
		Cycle:    cycle,
		Truth:    truth,
		Ensemble: ens,
		Free:     free,
		History:  hist,
		Seed:     77,
		Config:   map[string]string{"nx": "12", "ny": "8", "steps": "3"},
		PlanHash: "sha256:feed",
		RunID:    "senkf-cycle-20260808T000000Z-deadbeef",
	}
}

func TestWriteLoadRoundTrip(t *testing.T) {
	m := testMesh(t)
	dir := t.TempDir()
	st := testState(t, m, 4, 6)
	path, err := Write(dir, m, st)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != DirName(4) {
		t.Fatalf("landed at %s, want %s", path, DirName(4))
	}
	l, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	got := l.State
	if got.Cycle != st.Cycle || got.Seed != st.Seed || got.PlanHash != st.PlanHash || got.RunID != st.RunID {
		t.Fatalf("identity fields mangled: %+v", got)
	}
	var wantHist, gotHist bytes.Buffer
	if err := json.Compact(&wantHist, st.History); err != nil {
		t.Fatal(err)
	}
	if err := json.Compact(&gotHist, got.History); err != nil {
		t.Fatal(err)
	}
	if gotHist.String() != wantHist.String() {
		t.Fatalf("history mangled: %s", got.History)
	}
	if got.Config["steps"] != "3" {
		t.Fatalf("config mangled: %v", got.Config)
	}
	if l.Manifest.ConfigDigest != DigestConfig(st.Config) {
		t.Fatal("config digest mismatch")
	}
	// Bit-identical field round trip — the property the resume matrix
	// relies on.
	for i := range st.Truth {
		if got.Truth[i] != st.Truth[i] {
			t.Fatalf("truth point %d: %v != %v", i, got.Truth[i], st.Truth[i])
		}
	}
	for k := range st.Ensemble {
		for i := range st.Ensemble[k] {
			if got.Ensemble[k][i] != st.Ensemble[k][i] {
				t.Fatalf("member %d point %d differs", k, i)
			}
			if got.Free[k][i] != st.Free[k][i] {
				t.Fatalf("free member %d point %d differs", k, i)
			}
		}
	}
	// No stage directories linger after a successful landing.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".stage-") {
			t.Fatalf("stage %s left behind", e.Name())
		}
	}
}

func TestLatestFallsBackPastCorruption(t *testing.T) {
	m := testMesh(t)
	dir := t.TempDir()
	for c := 1; c <= 3; c++ {
		if _, err := Write(dir, m, testState(t, m, c, 4)); err != nil {
			t.Fatal(err)
		}
	}

	// Newest checkpoint: flip a payload byte in one member — the ensio
	// CRC (and the manifest SHA-256) must disqualify it.
	victim := filepath.Join(dir, DirName(3), "ensemble", "member_0001.senk")
	data, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-5] ^= 0x40
	if err := os.WriteFile(victim, data, 0o644); err != nil {
		t.Fatal(err)
	}

	l, skipped, err := Latest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if l == nil || l.State.Cycle != 2 {
		t.Fatalf("Latest did not fall back to cycle 2: %+v", l)
	}
	if len(skipped) != 1 || !strings.Contains(skipped[0].Path, DirName(3)) {
		t.Fatalf("skipped = %+v, want the corrupted cycle-3 checkpoint", skipped)
	}

	// Truncate cycle-2's manifest too: fall all the way back to cycle 1.
	man := filepath.Join(dir, DirName(2), ManifestFile)
	data, err = os.ReadFile(man)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(man, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	l, skipped, err = Latest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if l == nil || l.State.Cycle != 1 {
		t.Fatalf("Latest did not fall back to cycle 1: %+v", l)
	}
	if len(skipped) != 2 {
		t.Fatalf("skipped %d checkpoints, want 2", len(skipped))
	}
}

func TestLatestManifestCRCDetectsEdit(t *testing.T) {
	m := testMesh(t)
	dir := t.TempDir()
	if _, err := Write(dir, m, testState(t, m, 0, 4)); err != nil {
		t.Fatal(err)
	}
	// A silently edited manifest (valid JSON, wrong content) must fail
	// the CRC layer, not be trusted.
	man := filepath.Join(dir, DirName(0), ManifestFile)
	data, err := os.ReadFile(man)
	if err != nil {
		t.Fatal(err)
	}
	edited := strings.Replace(string(data), `"cycle": 0`, `"cycle": 9`, 1)
	if edited == string(data) {
		t.Fatal("edit did not apply")
	}
	if err := os.WriteFile(man, []byte(edited), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(filepath.Join(dir, DirName(0))); err == nil || !strings.Contains(err.Error(), "CRC") {
		t.Fatalf("edited manifest loaded (err=%v)", err)
	}
}

func TestLatestEmptyAndMissingDir(t *testing.T) {
	l, skipped, err := Latest(filepath.Join(t.TempDir(), "nope"))
	if l != nil || skipped != nil || err != nil {
		t.Fatalf("missing dir: %v %v %v", l, skipped, err)
	}
	l, _, err = Latest(t.TempDir())
	if l != nil || err != nil {
		t.Fatalf("empty dir: %v %v", l, err)
	}
}

func TestHalfLandedStageIsIgnoredAndPruned(t *testing.T) {
	m := testMesh(t)
	dir := t.TempDir()
	if _, err := Write(dir, m, testState(t, m, 0, 4)); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-stage: an abandoned stage directory.
	stale := filepath.Join(dir, ".stage-crashed")
	if err := os.MkdirAll(filepath.Join(stale, "ensemble"), 0o755); err != nil {
		t.Fatal(err)
	}
	l, skipped, err := Latest(dir)
	if err != nil || l == nil || l.State.Cycle != 0 || len(skipped) != 0 {
		t.Fatalf("stage dir confused Latest: l=%v skipped=%v err=%v", l, skipped, err)
	}
	if err := Prune(dir, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatal("Prune left the stale stage behind")
	}
}

func TestPruneKeepsNewest(t *testing.T) {
	m := testMesh(t)
	dir := t.TempDir()
	for c := 0; c < 5; c++ {
		if _, err := Write(dir, m, testState(t, m, c, 4)); err != nil {
			t.Fatal(err)
		}
	}
	if err := Prune(dir, 2); err != nil {
		t.Fatal(err)
	}
	cycles, err := List(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(cycles) != 2 || cycles[0] != 4 || cycles[1] != 3 {
		t.Fatalf("after prune: %v, want [4 3]", cycles)
	}
}

func TestWriteReplacesSameCycle(t *testing.T) {
	m := testMesh(t)
	dir := t.TempDir()
	st := testState(t, m, 2, 4)
	if _, err := Write(dir, m, st); err != nil {
		t.Fatal(err)
	}
	st.Truth[0] += 1
	if _, err := Write(dir, m, st); err != nil {
		t.Fatal(err)
	}
	l, err := Load(filepath.Join(dir, DirName(2)))
	if err != nil {
		t.Fatal(err)
	}
	if l.State.Truth[0] != st.Truth[0] {
		t.Fatal("same-cycle rewrite did not replace the checkpoint")
	}
}

func TestResizeEnsembleDeterministicAndVariancePreserving(t *testing.T) {
	m := testMesh(t)
	truth := workload.Truth(m, workload.FieldSpec{Modes: 3, Amplitude: 3, Noise: 0.05}, 5)
	ens, err := workload.Ensemble(m, truth, 8, 1.5, 5)
	if err != nil {
		t.Fatal(err)
	}
	before := meanVariance(ens)

	grown, err := ResizeEnsemble(m, ens, 14, 99)
	if err != nil {
		t.Fatal(err)
	}
	if len(grown) != 14 {
		t.Fatalf("grew to %d members", len(grown))
	}
	if after := meanVariance(grown); math.Abs(after-before) > 1e-9*before {
		t.Fatalf("growth changed variance: %g -> %g", before, after)
	}
	grown2, err := ResizeEnsemble(m, ens, 14, 99)
	if err != nil {
		t.Fatal(err)
	}
	for k := range grown {
		for i := range grown[k] {
			if grown[k][i] != grown2[k][i] {
				t.Fatalf("growth not deterministic at member %d point %d", k, i)
			}
		}
	}
	other, err := ResizeEnsemble(m, ens, 14, 100)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range other[13] {
		if other[13][i] != grown[13][i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical resamples")
	}

	shrunk, err := ResizeEnsemble(m, ens, 4, 99)
	if err != nil {
		t.Fatal(err)
	}
	if len(shrunk) != 4 {
		t.Fatalf("shrank to %d members", len(shrunk))
	}
	// Shrink reweights by sqrt((N−1)/(N'−1)) about the survivors' mean.
	survivors := make([][]float64, 4)
	for k := range survivors {
		survivors[k] = append([]float64(nil), ens[k]...)
	}
	factor := math.Sqrt(float64(8-1) / float64(4-1))
	reweight(survivors, factor)
	for k := range shrunk {
		for i := range shrunk[k] {
			if math.Abs(shrunk[k][i]-survivors[k][i]) > 1e-12 {
				t.Fatalf("shrink reweighting wrong at member %d point %d", k, i)
			}
		}
	}

	// Identity resize deep-copies.
	copyN, err := ResizeEnsemble(m, ens, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	copyN[0][0] += 1
	if copyN[0][0] == ens[0][0] {
		t.Fatal("identity resize aliased the input")
	}

	if _, err := ResizeEnsemble(m, ens, 1, 0); err == nil {
		t.Fatal("resize to 1 member accepted")
	}
}

func TestValidateStateErrors(t *testing.T) {
	m := testMesh(t)
	dir := t.TempDir()
	st := testState(t, m, 0, 4)
	bad := st
	bad.Free = bad.Free[:3]
	if _, err := Write(dir, m, bad); err == nil {
		t.Fatal("mismatched free-control size accepted")
	}
	bad = st
	bad.Truth = bad.Truth[:10]
	if _, err := Write(dir, m, bad); err == nil {
		t.Fatal("short truth accepted")
	}
	bad = st
	bad.Cycle = -1
	if _, err := Write(dir, m, bad); err == nil {
		t.Fatal("negative cycle accepted")
	}
}
