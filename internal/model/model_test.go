package model

import (
	"math"
	"testing"
	"testing/quick"

	"senkf/internal/grid"
	"senkf/internal/linalg"
	"senkf/internal/workload"
)

func testMesh(t *testing.T) grid.Mesh {
	t.Helper()
	m, err := grid.NewMesh(24, 16)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func randomField(m grid.Mesh, seed uint64) []float64 {
	s := linalg.NewStream(seed)
	f := make([]float64, m.Points())
	for i := range f {
		f[i] = s.Norm()
	}
	return f
}

func TestNewValidatesStability(t *testing.T) {
	m := testMesh(t)
	if _, err := New(m, 0.5, 0.4, 0.1, 1.0); err != nil {
		t.Errorf("stable parameters rejected: %v", err)
	}
	cases := []struct {
		cx, cy, nu, dt float64
	}{
		{2, 0, 0, 1},      // CFL violation
		{0.6, 0.6, 0, 1},  // combined CFL violation
		{0, 0, 0.3, 1},    // diffusion violation
		{0, 0, 0.1, -1},   // negative dt
		{0, 0, -0.1, 0.5}, // negative nu
	}
	for _, c := range cases {
		if _, err := New(m, c.cx, c.cy, c.nu, c.dt); err == nil {
			t.Errorf("unstable parameters accepted: %+v", c)
		}
	}
	if _, err := New(grid.Mesh{}, 0, 0, 0, 1); err == nil {
		t.Error("invalid mesh accepted")
	}
}

func TestPureAdvectionAtCFLOneIsExactShift(t *testing.T) {
	// First-order upwind with CFL exactly 1 translates the field by one
	// cell per step with no numerical diffusion.
	m := testMesh(t)
	a, err := New(m, 1, 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	f := randomField(m, 1)
	got, err := a.Run(f, 3)
	if err != nil {
		t.Fatal(err)
	}
	for y := 0; y < m.NY; y++ {
		for x := 0; x < m.NX; x++ {
			src := f[m.Index(((x-3)%m.NX+m.NX)%m.NX, y)]
			if math.Abs(got[m.Index(x, y)]-src) > 1e-12 {
				t.Fatalf("advection shift wrong at (%d,%d)", x, y)
			}
		}
	}
}

func TestNegativeVelocityShiftsBackwards(t *testing.T) {
	m := testMesh(t)
	a, err := New(m, 0, -1, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	f := randomField(m, 2)
	got, err := a.Run(f, 2)
	if err != nil {
		t.Fatal(err)
	}
	for y := 0; y < m.NY; y++ {
		for x := 0; x < m.NX; x++ {
			src := f[m.Index(x, (y+2)%m.NY)]
			if math.Abs(got[m.Index(x, y)]-src) > 1e-12 {
				t.Fatalf("backward advection wrong at (%d,%d)", x, y)
			}
		}
	}
}

func TestMassConservation(t *testing.T) {
	m := testMesh(t)
	a, err := New(m, 0.4, 0.3, 0.05, 1)
	if err != nil {
		t.Fatal(err)
	}
	f := randomField(m, 3)
	before := Mass(f)
	got, err := a.Run(f, 50)
	if err != nil {
		t.Fatal(err)
	}
	if after := Mass(got); math.Abs(after-before) > 1e-9*math.Abs(before)+1e-9 {
		t.Errorf("mass not conserved: %g -> %g", before, after)
	}
}

func TestDiffusionReducesVariance(t *testing.T) {
	m := testMesh(t)
	a, err := New(m, 0, 0, 0.2, 1)
	if err != nil {
		t.Fatal(err)
	}
	f := randomField(m, 4)
	variance := func(f []float64) float64 {
		mean := Mass(f) / float64(len(f))
		var s float64
		for _, v := range f {
			s += (v - mean) * (v - mean)
		}
		return s
	}
	before := variance(f)
	got, err := a.Run(f, 20)
	if err != nil {
		t.Fatal(err)
	}
	if after := variance(got); !(after < before/2) {
		t.Errorf("diffusion barely reduced variance: %g -> %g", before, after)
	}
}

func TestMaxPrincipleForDiffusion(t *testing.T) {
	// Pure diffusion never creates new extrema.
	m := testMesh(t)
	a, err := New(m, 0, 0, 0.25, 1)
	if err != nil {
		t.Fatal(err)
	}
	f := randomField(m, 5)
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range f {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	got, err := a.Run(f, 30)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v < lo-1e-12 || v > hi+1e-12 {
			t.Fatalf("max principle violated at %d: %g outside [%g, %g]", i, v, lo, hi)
		}
	}
}

func TestRunDoesNotModifyInput(t *testing.T) {
	m := testMesh(t)
	a, err := New(m, 0.3, 0.2, 0.05, 1)
	if err != nil {
		t.Fatal(err)
	}
	f := randomField(m, 6)
	orig := append([]float64(nil), f...)
	if _, err := a.Run(f, 7); err != nil {
		t.Fatal(err)
	}
	for i := range f {
		if f[i] != orig[i] {
			t.Fatalf("input modified at %d", i)
		}
	}
}

func TestRunZeroStepsIsIdentity(t *testing.T) {
	m := testMesh(t)
	a, err := New(m, 0.3, 0.2, 0.05, 1)
	if err != nil {
		t.Fatal(err)
	}
	f := randomField(m, 7)
	got, err := a.Run(f, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range f {
		if got[i] != f[i] {
			t.Fatal("zero steps changed the field")
		}
	}
	if _, err := a.Run(f, -1); err == nil {
		t.Error("negative steps accepted")
	}
}

func TestConsecutiveRunsCompose(t *testing.T) {
	// Run(f, 5) == Run(Run(f, 2), 3): the scratch-buffer reuse must not
	// leak state between calls.
	m := testMesh(t)
	a, err := New(m, 0.3, 0.1, 0.05, 1)
	if err != nil {
		t.Fatal(err)
	}
	f := randomField(m, 8)
	direct, err := a.Run(f, 5)
	if err != nil {
		t.Fatal(err)
	}
	part, err := a.Run(f, 2)
	if err != nil {
		t.Fatal(err)
	}
	composed, err := a.Run(part, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range direct {
		if math.Abs(direct[i]-composed[i]) > 1e-14 {
			t.Fatalf("runs do not compose at %d: %g vs %g", i, direct[i], composed[i])
		}
	}
}

func TestRunEnsemble(t *testing.T) {
	m := testMesh(t)
	a, err := New(m, 0.2, 0.2, 0.02, 1)
	if err != nil {
		t.Fatal(err)
	}
	truth := workload.Truth(m, workload.DefaultFieldSpec, 9)
	members, err := workload.Ensemble(m, truth, 4, 1, 9)
	if err != nil {
		t.Fatal(err)
	}
	out, err := a.RunEnsemble(members, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 4 {
		t.Fatalf("got %d members", len(out))
	}
	for k := range out {
		single, err := a.Run(members[k], 5)
		if err != nil {
			t.Fatal(err)
		}
		for i := range single {
			if out[k][i] != single[i] {
				t.Fatalf("ensemble member %d differs from individual run", k)
			}
		}
	}
}

func TestStepFieldLengthValidation(t *testing.T) {
	m := testMesh(t)
	a, err := New(m, 0.2, 0.2, 0.02, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Step(nil, make([]float64, 5)); err == nil {
		t.Error("short field accepted")
	}
	if _, err := a.Step(make([]float64, 5), make([]float64, m.Points())); err == nil {
		t.Error("short dst accepted")
	}
}

func TestQuickMassConservedForAnyStableParams(t *testing.T) {
	m, _ := grid.NewMesh(12, 8)
	f := func(cxr, cyr, nur uint8, seed uint64) bool {
		cx := float64(cxr%100)/100 - 0.5 // [-0.5, 0.5)
		cy := float64(cyr%100)/200 - 0.25
		nu := float64(nur%100) / 500 // [0, 0.2)
		a, err := New(m, cx, cy, nu, 1)
		if err != nil {
			return false
		}
		field := randomField(m, seed)
		before := Mass(field)
		got, err := a.Run(field, 10)
		if err != nil {
			return false
		}
		return math.Abs(Mass(got)-before) < 1e-8*(math.Abs(before)+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
