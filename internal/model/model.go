// Package model provides the numerical model whose states the ensemble
// Kalman filter assimilates. EnKF is a *sequential* data assimilation
// method (§1): an ensemble of model states is integrated forward in time to
// predict the error statistics, observations are assimilated, and the cycle
// repeats. The paper takes its background ensemble "from a long-time ocean
// model integration"; as the reproduction has no ocean GCM, this package
// implements the closest self-contained substitute that exercises the same
// code path: a 2-D linear advection–diffusion equation
//
//	∂u/∂t + c_x ∂u/∂x + c_y ∂u/∂y = ν ∇²u
//
// on the doubly periodic latitude–longitude mesh, discretized with first-
// order upwind advection and an explicit five-point diffusion stencil
// (grid spacing 1, time step Dt). The scheme is mass-conservative and
// stable under the usual CFL conditions, which the constructor enforces.
package model

import (
	"fmt"
	"math"

	"senkf/internal/grid"
)

// AdvectionDiffusion is the forward model. Velocities are in grid cells
// per unit time; ν is the diffusivity in cells² per unit time.
type AdvectionDiffusion struct {
	Mesh grid.Mesh
	CX   float64 // zonal velocity
	CY   float64 // meridional velocity
	Nu   float64 // diffusivity
	Dt   float64 // time step

	// scratch buffer reused across steps (one per model instance; Step is
	// not safe for concurrent use on the same instance).
	scratch []float64
}

// New validates the parameters against the explicit scheme's stability
// conditions: (|c_x| + |c_y|)·Δt ≤ 1 (CFL) and 4ν·Δt ≤ 1 (diffusion).
func New(m grid.Mesh, cx, cy, nu, dt float64) (*AdvectionDiffusion, error) {
	if m.NX <= 0 || m.NY <= 0 {
		return nil, fmt.Errorf("model: invalid mesh %dx%d", m.NX, m.NY)
	}
	if dt <= 0 || math.IsNaN(dt) {
		return nil, fmt.Errorf("model: time step must be positive, got %g", dt)
	}
	if nu < 0 {
		return nil, fmt.Errorf("model: negative diffusivity %g", nu)
	}
	if cfl := (math.Abs(cx) + math.Abs(cy)) * dt; cfl > 1+1e-12 {
		return nil, fmt.Errorf("model: advection CFL (|cx|+|cy|)·dt = %g exceeds 1", cfl)
	}
	if d := 4 * nu * dt; d > 1+1e-12 {
		return nil, fmt.Errorf("model: diffusion number 4ν·dt = %g exceeds 1", d)
	}
	return &AdvectionDiffusion{Mesh: m, CX: cx, CY: cy, Nu: nu, Dt: dt}, nil
}

// Step advances the field by one time step, writing into dst (allocated if
// nil) and returning it. src is not modified. dst and src must not alias.
func (a *AdvectionDiffusion) Step(dst, src []float64) ([]float64, error) {
	n := a.Mesh.Points()
	if len(src) != n {
		return nil, fmt.Errorf("model: field has %d points, mesh has %d", len(src), n)
	}
	if dst == nil {
		dst = make([]float64, n)
	}
	if len(dst) != n {
		return nil, fmt.Errorf("model: dst has %d points, mesh has %d", len(dst), n)
	}
	nx, ny := a.Mesh.NX, a.Mesh.NY
	dt := a.Dt
	for y := 0; y < ny; y++ {
		ym := (y - 1 + ny) % ny
		yp := (y + 1) % ny
		for x := 0; x < nx; x++ {
			xm := (x - 1 + nx) % nx
			xp := (x + 1) % nx
			c := src[y*nx+x]
			w := src[y*nx+xm]
			e := src[y*nx+xp]
			s := src[ym*nx+x]
			nn := src[yp*nx+x]

			v := c
			// Upwind advection.
			if a.CX >= 0 {
				v -= a.CX * dt * (c - w)
			} else {
				v -= a.CX * dt * (e - c)
			}
			if a.CY >= 0 {
				v -= a.CY * dt * (c - s)
			} else {
				v -= a.CY * dt * (nn - c)
			}
			// Explicit diffusion.
			if a.Nu > 0 {
				v += a.Nu * dt * (w + e + s + nn - 4*c)
			}
			dst[y*nx+x] = v
		}
	}
	return dst, nil
}

// Run advances a copy of the field by the given number of steps and returns
// it; the input is not modified.
func (a *AdvectionDiffusion) Run(field []float64, steps int) ([]float64, error) {
	if steps < 0 {
		return nil, fmt.Errorf("model: negative step count %d", steps)
	}
	cur := append([]float64(nil), field...)
	if steps == 0 {
		return cur, nil
	}
	if a.scratch == nil || len(a.scratch) != len(field) {
		a.scratch = make([]float64, len(field))
	}
	next := a.scratch
	for s := 0; s < steps; s++ {
		out, err := a.Step(next, cur)
		if err != nil {
			return nil, err
		}
		cur, next = out, cur
	}
	// cur may alias the scratch buffer; detach before returning.
	if &cur[0] == &a.scratch[0] {
		out := append([]float64(nil), cur...)
		a.scratch = next
		return out, nil
	}
	return cur, nil
}

// RunEnsemble advances every member independently.
func (a *AdvectionDiffusion) RunEnsemble(fields [][]float64, steps int) ([][]float64, error) {
	out := make([][]float64, len(fields))
	for k, f := range fields {
		adv, err := a.Run(f, steps)
		if err != nil {
			return nil, fmt.Errorf("model: member %d: %w", k, err)
		}
		out[k] = adv
	}
	return out, nil
}

// Mass returns the field sum — conserved exactly by the scheme on the
// doubly periodic mesh, a property the tests pin.
func Mass(field []float64) float64 {
	var s float64
	for _, v := range field {
		s += v
	}
	return s
}
