package sim

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"

	"senkf/internal/trace"
)

func TestSleepAdvancesVirtualTime(t *testing.T) {
	e := NewEnv()
	var at float64
	e.Go("sleeper", func(p *Proc) {
		p.Sleep(2.5)
		p.Sleep(1.5)
		at = p.Now()
	})
	end, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if at != 4.0 || end != 4.0 {
		t.Errorf("time = %g / end %g, want 4", at, end)
	}
}

func TestZeroProcsRunImmediately(t *testing.T) {
	e := NewEnv()
	end, err := e.Run()
	if err != nil || end != 0 {
		t.Errorf("empty run = %g, %v", end, err)
	}
}

func TestDeterministicInterleaving(t *testing.T) {
	runOnce := func() []string {
		e := NewEnv()
		var order []string
		for i, d := range []float64{3, 1, 2} {
			name := string(rune('a' + i))
			delay := d
			e.Go(name, func(p *Proc) {
				p.Sleep(delay)
				order = append(order, p.Name)
			})
		}
		if _, err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return order
	}
	want := []string{"b", "c", "a"}
	for trial := 0; trial < 5; trial++ {
		got := runOnce()
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: order %v, want %v", trial, got, want)
			}
		}
	}
}

func TestEqualTimestampsAreFIFO(t *testing.T) {
	e := NewEnv()
	var order []string
	for i := 0; i < 5; i++ {
		name := string(rune('0' + i))
		e.Go(name, func(p *Proc) {
			p.Sleep(1) // all wake at t=1
			order = append(order, p.Name)
		})
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range order {
		if order[i] != string(rune('0'+i)) {
			t.Fatalf("order %v not FIFO", order)
		}
	}
}

func TestSleepPanicsOnInvalidDuration(t *testing.T) {
	e := NewEnv()
	e.Go("bad", func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for negative sleep")
			}
		}()
		p.Sleep(-1)
	})
	// The process panics and recovers, then ends normally.
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}

	e2 := NewEnv()
	e2.Go("nan", func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for NaN sleep")
			}
		}()
		p.Sleep(math.NaN())
	})
	if _, err := e2.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestResourceLimitsConcurrency(t *testing.T) {
	e := NewEnv()
	r := NewResource(e, "disk", 2)
	var maxInUse int
	done := 0
	for i := 0; i < 6; i++ {
		e.Go("reader", func(p *Proc) {
			r.Acquire(p)
			if r.InUse() > maxInUse {
				maxInUse = r.InUse()
			}
			p.Sleep(1)
			r.Release()
			done++
		})
	}
	end, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if maxInUse != 2 {
		t.Errorf("max concurrency %d, want 2", maxInUse)
	}
	if done != 6 {
		t.Errorf("completed %d, want 6", done)
	}
	// 6 unit jobs at concurrency 2 take 3 time units.
	if end != 3 {
		t.Errorf("end = %g, want 3", end)
	}
}

func TestResourceFIFOOrder(t *testing.T) {
	e := NewEnv()
	r := NewResource(e, "disk", 1)
	var order []int
	for i := 0; i < 4; i++ {
		id := i
		e.Go("w", func(p *Proc) {
			p.Sleep(float64(id) * 0.001) // stagger arrival in id order
			r.Acquire(p)
			order = append(order, id)
			p.Sleep(1)
			r.Release()
		})
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, id := range order {
		if id != i {
			t.Fatalf("service order %v not FIFO", order)
		}
	}
}

func TestResourceValidation(t *testing.T) {
	e := NewEnv()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for zero capacity")
			}
		}()
		NewResource(e, "bad", 0)
	}()
	r := NewResource(e, "ok", 1)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for idle release")
			}
		}()
		r.Release()
	}()
}

func TestMailboxDeliversInOrder(t *testing.T) {
	e := NewEnv()
	mb := NewMailbox(e, "mb")
	var got []int
	e.Go("producer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			mb.Send(i)
			p.Sleep(1)
		}
	})
	e.Go("consumer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			got = append(got, mb.Recv(p).(int))
		}
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("got %v", got)
		}
	}
}

func TestMailboxBlocksConsumerUntilSend(t *testing.T) {
	e := NewEnv()
	mb := NewMailbox(e, "mb")
	var recvAt float64
	e.Go("consumer", func(p *Proc) {
		mb.Recv(p)
		recvAt = p.Now()
	})
	e.Go("producer", func(p *Proc) {
		p.Sleep(7)
		mb.Send("x")
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if recvAt != 7 {
		t.Errorf("recv at %g, want 7", recvAt)
	}
}

func TestTryRecvAndLen(t *testing.T) {
	e := NewEnv()
	mb := NewMailbox(e, "mb")
	e.Go("p", func(p *Proc) {
		if _, ok := mb.TryRecv(); ok {
			t.Error("TryRecv on empty mailbox succeeded")
		}
		mb.Send(1)
		mb.Send(2)
		if mb.Len() != 2 {
			t.Errorf("Len = %d", mb.Len())
		}
		v, ok := mb.TryRecv()
		if !ok || v.(int) != 1 {
			t.Errorf("TryRecv = %v, %v", v, ok)
		}
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDeadlockDetection(t *testing.T) {
	e := NewEnv()
	mb := NewMailbox(e, "never")
	e.Go("stuck", func(p *Proc) {
		mb.Recv(p)
	})
	_, err := e.Run()
	var d *DeadlockError
	if !errors.As(err, &d) {
		t.Fatalf("expected DeadlockError, got %v", err)
	}
	if len(d.Waiting) != 1 || d.Waiting[0] != "stuck(mailbox:never)" {
		t.Errorf("waiting = %v", d.Waiting)
	}
}

func TestResourceDeadlockDetection(t *testing.T) {
	e := NewEnv()
	r := NewResource(e, "disk", 1)
	e.Go("holder", func(p *Proc) {
		r.Acquire(p) // never released
	})
	e.Go("waiter", func(p *Proc) {
		p.Sleep(1)
		r.Acquire(p)
	})
	_, err := e.Run()
	var d *DeadlockError
	if !errors.As(err, &d) {
		t.Fatalf("expected DeadlockError, got %v", err)
	}
}

func TestSpawnFromRunningProcess(t *testing.T) {
	e := NewEnv()
	var childEnd float64
	e.Go("parent", func(p *Proc) {
		p.Sleep(2)
		e.Go("child", func(c *Proc) {
			c.Sleep(3)
			childEnd = c.Now()
		})
		p.Sleep(1)
	})
	end, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if childEnd != 5 {
		t.Errorf("child ended at %g, want 5", childEnd)
	}
	if end != 5 {
		t.Errorf("sim ended at %g, want 5", end)
	}
}

func TestWaitGroup(t *testing.T) {
	e := NewEnv()
	wg := NewWaitGroup(e, "wg", 3)
	var doneAt float64
	for i := 1; i <= 3; i++ {
		d := float64(i)
		e.Go("worker", func(p *Proc) {
			p.Sleep(d)
			wg.Done()
		})
	}
	e.Go("waiter", func(p *Proc) {
		wg.Wait(p)
		doneAt = p.Now()
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if doneAt != 3 {
		t.Errorf("wait finished at %g, want 3", doneAt)
	}
}

func TestManyProcesses(t *testing.T) {
	// The scaling experiments run ~12k processes; make sure the engine
	// handles that comfortably.
	e := NewEnv()
	const n = 12000
	r := NewResource(e, "disk", 8)
	finished := 0
	for i := 0; i < n; i++ {
		e.Go("p", func(p *Proc) {
			r.Acquire(p)
			p.Sleep(0.001)
			r.Release()
			finished++
		})
	}
	end, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if finished != n {
		t.Errorf("finished %d of %d", finished, n)
	}
	want := float64(n) * 0.001 / 8
	if math.Abs(end-want) > 1e-6 {
		t.Errorf("end = %g, want %g", end, want)
	}
}

func TestNowVisibleFromEnvAndProc(t *testing.T) {
	e := NewEnv()
	e.Go("p", func(p *Proc) {
		p.Sleep(1.25)
		if p.Env() != e {
			t.Error("Env() mismatch")
		}
		if p.Now() != e.Now() {
			t.Error("Now() mismatch")
		}
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Now() != 1.25 {
		t.Errorf("env now = %g", e.Now())
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	e := NewEnv()
	b := NewBarrier(e, "b", 3)
	var releases []float64
	for i := 1; i <= 3; i++ {
		d := float64(i)
		e.Go("w", func(p *Proc) {
			p.Sleep(d)
			b.Wait(p)
			releases = append(releases, p.Now())
		})
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(releases) != 3 {
		t.Fatalf("releases %v", releases)
	}
	for _, r := range releases {
		if r != 3 {
			t.Errorf("released at %g, want 3 (slowest arrival)", r)
		}
	}
}

func TestBarrierIsCyclic(t *testing.T) {
	e := NewEnv()
	b := NewBarrier(e, "b", 2)
	rounds := make([][]float64, 2)
	for i := 0; i < 2; i++ {
		id := i
		e.Go("w", func(p *Proc) {
			for r := 0; r < 3; r++ {
				p.Sleep(float64(id + 1)) // ids arrive staggered each round
				b.Wait(p)
				rounds[id] = append(rounds[id], p.Now())
			}
		})
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for id := 0; id < 2; id++ {
		if len(rounds[id]) != 3 {
			t.Fatalf("proc %d completed %d rounds", id, len(rounds[id]))
		}
	}
	// Both procs release together each round, paced by the slower one.
	for r := 0; r < 3; r++ {
		if rounds[0][r] != rounds[1][r] {
			t.Errorf("round %d released at different times: %g vs %g", r, rounds[0][r], rounds[1][r])
		}
		if rounds[0][r] != float64(2*(r+1)) {
			t.Errorf("round %d at %g, want %g", r, rounds[0][r], float64(2*(r+1)))
		}
	}
}

func TestBarrierValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for n=0 barrier")
		}
	}()
	NewBarrier(NewEnv(), "bad", 0)
}

func TestDeadlockErrorListsAllBlockedProcesses(t *testing.T) {
	e := NewEnv()
	mb := NewMailbox(e, "empty")
	r := NewResource(e, "disk", 1)
	bar := NewBarrier(e, "gate", 2)
	e.Go("holder", func(p *Proc) {
		r.Acquire(p) // never released
	})
	e.Go("reader", func(p *Proc) {
		mb.Recv(p)
	})
	e.Go("queued", func(p *Proc) {
		p.Sleep(1)
		r.Acquire(p)
	})
	e.Go("lonely", func(p *Proc) {
		bar.Wait(p) // second participant never arrives
	})
	_, err := e.Run()
	var d *DeadlockError
	if !errors.As(err, &d) {
		t.Fatalf("expected DeadlockError, got %v", err)
	}
	want := []BlockedProc{
		{Name: "lonely", WaitingOn: "barrier:gate"},
		{Name: "queued", WaitingOn: "resource:disk"},
		{Name: "reader", WaitingOn: "mailbox:empty"},
	}
	if len(d.Blocked) != len(want) {
		t.Fatalf("Blocked = %+v, want %+v", d.Blocked, want)
	}
	for i, w := range want {
		if d.Blocked[i] != w {
			t.Errorf("Blocked[%d] = %+v, want %+v", i, d.Blocked[i], w)
		}
	}
	// The Waiting render matches the Blocked list entry for entry.
	if len(d.Waiting) != len(d.Blocked) || d.Waiting[0] != "lonely(barrier:gate)" {
		t.Errorf("Waiting = %v", d.Waiting)
	}
	// "holder" holds the resource but is not parked: it finished, so it
	// must not be listed.
	for _, b := range d.Blocked {
		if b.Name == "holder" {
			t.Errorf("finished process listed as blocked: %+v", b)
		}
	}
	// BlockedOn is the duck-typed map contract the plan-layer observer
	// consumes; it must mirror Blocked exactly.
	m := d.BlockedOn()
	if len(m) != len(want) {
		t.Fatalf("BlockedOn = %v", m)
	}
	for _, w := range want {
		if m[w.Name] != w.WaitingOn {
			t.Errorf("BlockedOn[%s] = %q, want %q", w.Name, m[w.Name], w.WaitingOn)
		}
	}
}

func TestDeadlockErrorTruncatesMessageNotList(t *testing.T) {
	e := NewEnv()
	mb := NewMailbox(e, "empty")
	for i := 0; i < 12; i++ {
		name := fmt.Sprintf("stuck%02d", i)
		e.Go(name, func(p *Proc) { mb.Recv(p) })
	}
	_, err := e.Run()
	var d *DeadlockError
	if !errors.As(err, &d) {
		t.Fatalf("expected DeadlockError, got %v", err)
	}
	if len(d.Blocked) != 12 || len(d.Waiting) != 12 {
		t.Fatalf("list truncated: %d blocked, %d waiting", len(d.Blocked), len(d.Waiting))
	}
	msg := d.Error()
	if !strings.Contains(msg, "12 blocked") || strings.Contains(msg, "stuck09") {
		t.Errorf("message should count all but show at most 8: %q", msg)
	}
}

func TestSimTracingDetailEvents(t *testing.T) {
	e := NewEnv()
	buf := trace.NewBuffer()
	tr := trace.New(func() float64 { return e.Now() }, buf)
	tr.SetDetail(true)
	tr.SetCounters(trace.NewRegistry())
	e.SetTracer(tr)
	if e.Tracer() != tr {
		t.Fatal("Tracer() did not return the attached tracer")
	}

	r := NewResource(e, "disk", 1)
	mb := NewMailbox(e, "box")
	e.Go("a", func(p *Proc) {
		r.Acquire(p)
		p.Sleep(2)
		r.Release()
		mb.Send(1)
	})
	e.Go("b", func(p *Proc) {
		r.Acquire(p) // waits until t=2
		r.Release()
		mb.Recv(p)
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}

	var resourceWait, mailboxDepth bool
	for _, ev := range buf.Events() {
		if ev.Cat == "sim" && ev.Name == "resource-wait" && ev.Track == "b" {
			if ev.Ts != 0 || ev.Dur != 2 {
				t.Errorf("resource-wait span = %+v, want [0,2]", ev)
			}
			resourceWait = true
		}
		if ev.Ph == trace.PhaseCounter && ev.Track == "box" && ev.Name == "depth" {
			mailboxDepth = true
		}
	}
	if !resourceWait {
		t.Error("no resource-wait span emitted")
	}
	if !mailboxDepth {
		t.Error("no mailbox depth counter emitted")
	}
	reg := tr.Counters()
	if got := reg.CounterValue("sim.procs"); got != 2 {
		t.Errorf("sim.procs = %v, want 2", got)
	}
	if got := reg.CounterValue("sim.resource.waits"); got != 1 {
		t.Errorf("sim.resource.waits = %v, want 1", got)
	}
	if got := reg.GaugeMax("sim.mailbox.depth"); got != 1 {
		t.Errorf("sim.mailbox.depth high-water = %v, want 1", got)
	}
}
