package sim

import (
	"testing"
)

func TestSetSlowdownDilatesSleeps(t *testing.T) {
	env := NewEnv()
	env.SetSlowdown(func(name string) float64 {
		if name == "slow" {
			return 3
		}
		return 1
	})
	var fastEnd, slowEnd float64
	env.Go("fast", func(p *Proc) {
		p.Sleep(2)
		fastEnd = p.Now()
	})
	env.Go("slow", func(p *Proc) {
		p.Sleep(2)
		slowEnd = p.Now()
	})
	if _, err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if fastEnd != 2 {
		t.Errorf("fast finished at %g, want 2", fastEnd)
	}
	if slowEnd != 6 {
		t.Errorf("slow finished at %g, want 6 (3x dilation)", slowEnd)
	}
}

func TestSlowdownFactorsBelowOneIgnored(t *testing.T) {
	env := NewEnv()
	env.SetSlowdown(func(string) float64 { return 0.1 })
	var end float64
	env.Go("p", func(p *Proc) {
		p.Sleep(5)
		end = p.Now()
	})
	if _, err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if end != 5 {
		t.Errorf("sub-unit slowdown changed time: %g, want 5", end)
	}
}

// TestBarrierLeaveReleasesWaiters covers both orderings of the race between
// a leaver and the last arriving waiter.
func TestBarrierLeaveReleasesWaiters(t *testing.T) {
	// Ordering 1: waiters arrive first, then the leaver departs.
	env := NewEnv()
	b := NewBarrier(env, "b", 3)
	released := 0
	for i := 0; i < 2; i++ {
		env.Go("w", func(p *Proc) {
			b.Wait(p)
			released++
		})
	}
	env.Go("leaver", func(p *Proc) {
		p.Sleep(1) // let both waiters park
		b.Leave()
	})
	if _, err := env.Run(); err != nil {
		t.Fatalf("waiters-first: %v", err)
	}
	if released != 2 {
		t.Errorf("waiters-first released %d, want 2", released)
	}
	if b.Parties() != 2 {
		t.Errorf("parties = %d, want 2", b.Parties())
	}

	// Ordering 2: the leaver departs before the others arrive.
	env2 := NewEnv()
	b2 := NewBarrier(env2, "b2", 3)
	released2 := 0
	env2.Go("leaver", func(p *Proc) { b2.Leave() })
	for i := 0; i < 2; i++ {
		env2.Go("w", func(p *Proc) {
			p.Sleep(1)
			b2.Wait(p)
			released2++
		})
	}
	if _, err := env2.Run(); err != nil {
		t.Fatalf("leaver-first: %v", err)
	}
	if released2 != 2 {
		t.Errorf("leaver-first released %d, want 2", released2)
	}
}

func TestBarrierLeaveStaysCyclic(t *testing.T) {
	env := NewEnv()
	b := NewBarrier(env, "b", 3)
	rounds := make([]int, 2)
	for i := 0; i < 2; i++ {
		i := i
		env.Go("w", func(p *Proc) {
			b.Wait(p) // round 1 at 3 parties... until the leaver departs
			rounds[i]++
			p.Sleep(1)
			b.Wait(p) // round 2 at 2 parties
			rounds[i]++
		})
	}
	env.Go("leaver", func(p *Proc) {
		p.Sleep(0.5)
		b.Leave()
	})
	if _, err := env.Run(); err != nil {
		t.Fatal(err)
	}
	for i, r := range rounds {
		if r != 2 {
			t.Errorf("waiter %d passed %d rounds, want 2", i, r)
		}
	}
}

func TestBarrierLeavePanicsWhenEmpty(t *testing.T) {
	env := NewEnv()
	b := NewBarrier(env, "b", 1)
	defer func() {
		if recover() == nil {
			t.Error("Leave on a 1-party barrier did not panic")
		}
	}()
	b.Leave()
}
