// Package sim is a deterministic discrete-event simulation engine in the
// style of SimPy: simulated processes are goroutines that explicitly yield
// to a central scheduler whenever they wait on virtual time, a capacity-
// limited resource, or a mailbox. Exactly one goroutine (a process or the
// scheduler) runs at any instant, so simulations are fully deterministic
// and need no locking.
//
// The engine is the substrate on which the paper's 12,000-processor
// experiments run: each simulated MPI rank is a process, disks are
// capacity-limited resources (see internal/parfs), and messages travel
// through mailboxes with Hockney-model latencies. The schedules of P-EnKF,
// L-EnKF and S-EnKF are executed on this virtual machine to regenerate the
// paper's scaling figures with the exact event structure — queueing at
// disks, waiting for messages, overlap of phases — that produces them.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"senkf/internal/trace"
)

// event is a scheduled process wake-up.
type event struct {
	at   float64
	seq  uint64 // tie-break: FIFO among equal timestamps
	proc *Proc
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h eventHeap) Peek() (event, bool) {
	if len(h) == 0 {
		return event{}, false
	}
	return h[0], true
}

// Env is a simulation environment: a virtual clock and an event queue.
type Env struct {
	now     float64
	seq     uint64
	events  eventHeap
	yieldCh chan struct{}

	live    int              // processes started and not finished
	blocked map[*Proc]string // parked with no scheduled wake-up: what they wait on

	slowdown func(name string) float64 // per-process sleep multiplier (nil = none)

	spawnWrap func(name string, fn func()) func() // per-process body wrapper (nil = none)

	tracer *trace.Tracer
}

// NewEnv creates an empty simulation environment at time 0.
func NewEnv() *Env {
	return &Env{
		yieldCh: make(chan struct{}),
		blocked: map[*Proc]string{},
	}
}

// Now returns the current virtual time in seconds.
func (e *Env) Now() float64 { return e.now }

// SetTracer attaches a tracer; events are stamped with the virtual clock.
// A nil tracer (the default) disables all instrumentation.
func (e *Env) SetTracer(tr *trace.Tracer) { e.tracer = tr }

// Tracer returns the attached tracer (possibly nil; nil is safe to use).
func (e *Env) Tracer() *trace.Tracer { return e.tracer }

// SetSlowdown installs a per-process virtual-time dilation: every Sleep of
// process name is multiplied by fn(name) when the factor exceeds 1. Fault
// plans use this to model straggler processors without touching the cost
// models. A nil fn (the default) disables dilation.
func (e *Env) SetSlowdown(fn func(name string) float64) { e.slowdown = fn }

// SetSpawnWrapper installs a wrapper applied to every process body at Go:
// the process runs wrap(name, body)() instead of body(). runtimeobs uses
// this to run each simulated process under its pprof proc labels; the
// wrapper must call the wrapped body exactly once, synchronously. A nil
// wrap (the default) disables wrapping. Must be set before processes
// start.
func (e *Env) SetSpawnWrapper(wrap func(name string, fn func()) func()) { e.spawnWrap = wrap }

// Proc is a simulated process. Its methods must only be called from within
// the process's own function.
type Proc struct {
	Name    string
	env     *Env
	resume  chan struct{}
	handoff any // value delivered by a mailbox or resource wake-up
}

// Env returns the environment the process runs in.
func (p *Proc) Env() *Env { return p.env }

// Now returns the current virtual time.
func (p *Proc) Now() float64 { return p.env.now }

// Go starts a new process. May be called before Run or from inside a
// running process; in the latter case the new process starts at the current
// virtual time once the caller yields.
func (e *Env) Go(name string, fn func(p *Proc)) *Proc {
	p := &Proc{Name: name, env: e, resume: make(chan struct{})}
	e.live++
	e.tracer.Counters().Inc("sim.procs")
	if e.tracer.Detail() {
		e.tracer.Instant(name, "sim", "start", e.now)
	}
	body := func() { fn(p) }
	if e.spawnWrap != nil {
		body = e.spawnWrap(name, body)
	}
	go func() {
		<-p.resume
		body()
		e.live--
		e.yieldCh <- struct{}{}
	}()
	e.schedule(e.now, p)
	return p
}

// schedule enqueues a wake-up for p at time t.
func (e *Env) schedule(t float64, p *Proc) {
	e.seq++
	heap.Push(&e.events, event{at: t, seq: e.seq, proc: p})
}

// park transfers control from the calling process back to the scheduler and
// blocks until the scheduler resumes the process.
func (p *Proc) park() {
	p.env.yieldCh <- struct{}{}
	<-p.resume
}

// Sleep advances the process by d seconds of virtual time. Negative or NaN
// durations panic — they indicate a broken cost model.
func (p *Proc) Sleep(d float64) {
	if d < 0 || math.IsNaN(d) {
		panic(fmt.Sprintf("sim: %s slept for invalid duration %g", p.Name, d))
	}
	if p.env.slowdown != nil {
		if f := p.env.slowdown(p.Name); f > 1 {
			d *= f
		}
	}
	p.env.schedule(p.env.now+d, p)
	p.park()
}

// BlockedProc identifies one parked process of a deadlocked simulation and
// the synchronization object it was blocked on.
type BlockedProc struct {
	Name      string
	WaitingOn string // "resource:<name>", "mailbox:<name>" or "barrier:<name>"
}

// DeadlockError reports a simulation that stalled with parked processes.
// Blocked holds every parked process with the resource, mailbox or barrier
// it waits on, so the deadlock is diagnosable from the error alone.
type DeadlockError struct {
	Time    float64
	Blocked []BlockedProc // all parked processes, sorted by name
	Waiting []string      // "name(what)" render of Blocked, same order
}

func (d *DeadlockError) Error() string {
	examples := d.Waiting
	if len(examples) > 8 {
		examples = examples[:8]
	}
	return fmt.Sprintf("sim: deadlock at t=%g with %d blocked processes (e.g. %v)", d.Time, len(d.Waiting), examples)
}

// BlockedOn returns proc name → synchronization object for every parked
// process. The method (rather than the Blocked field) is the contract a
// plan-layer observer duck-types against, so internal/monitor can blame
// the plan edge behind a deadlock without importing this package.
func (d *DeadlockError) BlockedOn() map[string]string {
	m := make(map[string]string, len(d.Blocked))
	for _, b := range d.Blocked {
		m[b.Name] = b.WaitingOn
	}
	return m
}

// Run drives the simulation until no events remain. It returns the final
// virtual time, or a DeadlockError if processes remain blocked on resources
// or mailboxes with an empty event queue.
func (e *Env) Run() (float64, error) {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(event)
		if ev.at < e.now {
			return e.now, fmt.Errorf("sim: time went backwards: %g -> %g", e.now, ev.at)
		}
		e.now = ev.at
		ev.proc.resume <- struct{}{}
		<-e.yieldCh
	}
	if e.live > 0 {
		d := &DeadlockError{Time: e.now}
		for p, what := range e.blocked {
			d.Blocked = append(d.Blocked, BlockedProc{Name: p.Name, WaitingOn: what})
		}
		sort.Slice(d.Blocked, func(i, j int) bool { return d.Blocked[i].Name < d.Blocked[j].Name })
		for _, b := range d.Blocked {
			d.Waiting = append(d.Waiting, b.Name+"("+b.WaitingOn+")")
		}
		return e.now, d
	}
	return e.now, nil
}

// Resource is a FIFO capacity-limited resource (a disk with a bounded
// number of concurrent readers, a network injection port, ...).
type Resource struct {
	Name     string
	env      *Env
	capacity int
	inUse    int
	waiters  []*Proc
}

// NewResource creates a resource with the given concurrency capacity.
func NewResource(e *Env, name string, capacity int) *Resource {
	if capacity <= 0 {
		panic(fmt.Sprintf("sim: resource %s with non-positive capacity %d", name, capacity))
	}
	return &Resource{Name: name, env: e, capacity: capacity}
}

// Acquire takes one unit of capacity, blocking in FIFO order while the
// resource is saturated.
func (r *Resource) Acquire(p *Proc) {
	if r.inUse < r.capacity {
		r.inUse++
		return
	}
	r.waiters = append(r.waiters, p)
	r.env.blocked[p] = "resource:" + r.Name
	reg := r.env.tracer.Counters()
	if reg != nil {
		reg.Inc("sim.resource.waits")
		reg.SetGauge("sim.resource.queue", float64(len(r.waiters)))
	}
	t0 := r.env.now
	if r.env.tracer.Detail() {
		r.env.tracer.Counter(r.Name, "queue", t0, float64(len(r.waiters)))
	}
	p.park()
	delete(r.env.blocked, p)
	if r.env.tracer.Detail() {
		r.env.tracer.Span(p.Name, "sim", "resource-wait", t0, r.env.now)
	}
	// Capacity was transferred to us by Release.
}

// Release returns one unit of capacity, waking the first waiter (at the
// current virtual time) if any.
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic(fmt.Sprintf("sim: release of idle resource %s", r.Name))
	}
	if len(r.waiters) > 0 {
		w := r.waiters[0]
		r.waiters = r.waiters[1:]
		// Capacity passes directly to the waiter; inUse stays constant.
		r.env.schedule(r.env.now, w)
		if r.env.tracer.Detail() {
			r.env.tracer.Counter(r.Name, "queue", r.env.now, float64(len(r.waiters)))
		}
		return
	}
	r.inUse--
}

// InUse returns the currently used capacity.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen returns the number of processes waiting for the resource.
func (r *Resource) QueueLen() int { return len(r.waiters) }

// Mailbox is an unbounded FIFO message queue between processes. Sends never
// block; receives block until a message is available.
type Mailbox struct {
	Name  string
	env   *Env
	queue []any
	recvq []*Proc
}

// NewMailbox creates an empty mailbox.
func NewMailbox(e *Env, name string) *Mailbox {
	return &Mailbox{Name: name, env: e}
}

// Send enqueues a value, waking the oldest waiting receiver if any.
// It never blocks, so it may be called from any process.
func (m *Mailbox) Send(v any) {
	if len(m.recvq) > 0 {
		w := m.recvq[0]
		m.recvq = m.recvq[1:]
		w.handoff = v
		m.env.schedule(m.env.now, w)
		return
	}
	m.queue = append(m.queue, v)
	reg := m.env.tracer.Counters()
	if reg != nil {
		// One global gauge: its high-water mark is the deepest any mailbox
		// ever got (per-mailbox gauges would explode at 12k-rank scale).
		reg.SetGauge("sim.mailbox.depth", float64(len(m.queue)))
	}
	if m.env.tracer.Detail() {
		m.env.tracer.Counter(m.Name, "depth", m.env.now, float64(len(m.queue)))
	}
}

// Recv dequeues the oldest value, blocking until one is available.
func (m *Mailbox) Recv(p *Proc) any {
	if len(m.queue) > 0 {
		v := m.queue[0]
		m.queue = m.queue[1:]
		return v
	}
	m.recvq = append(m.recvq, p)
	m.env.blocked[p] = "mailbox:" + m.Name
	t0 := m.env.now
	p.park()
	delete(m.env.blocked, p)
	if m.env.tracer.Detail() {
		m.env.tracer.Span(p.Name, "sim", "mailbox-wait", t0, m.env.now)
	}
	v := p.handoff
	p.handoff = nil
	return v
}

// TryRecv dequeues a value if one is immediately available.
func (m *Mailbox) TryRecv() (any, bool) {
	if len(m.queue) > 0 {
		v := m.queue[0]
		m.queue = m.queue[1:]
		return v, true
	}
	return nil, false
}

// Len returns the number of queued (unreceived) values.
func (m *Mailbox) Len() int { return len(m.queue) }

// Barrier synchronizes a fixed set of n processes: every participant blocks
// in Wait until all n have arrived, then all are released and the barrier
// resets for the next round (a cyclic barrier).
type Barrier struct {
	Name    string
	env     *Env
	n       int
	arrived int
	waiters []*Proc
}

// NewBarrier creates a cyclic barrier for n participants.
func NewBarrier(e *Env, name string, n int) *Barrier {
	if n <= 0 {
		panic(fmt.Sprintf("sim: barrier %s with non-positive parties %d", name, n))
	}
	return &Barrier{Name: name, env: e, n: n}
}

// Wait blocks p until all participants of the current round have arrived.
func (b *Barrier) Wait(p *Proc) {
	b.arrived++
	if b.arrived == b.n {
		for _, w := range b.waiters {
			b.env.schedule(b.env.now, w)
		}
		b.waiters = b.waiters[:0]
		b.arrived = 0
		return
	}
	b.waiters = append(b.waiters, p)
	b.env.blocked[p] = "barrier:" + b.Name
	t0 := b.env.now
	p.park()
	delete(b.env.blocked, p)
	if b.env.tracer.Detail() {
		b.env.tracer.Span(p.Name, "sim", "barrier-wait", t0, b.env.now)
	}
}

// Leave permanently removes one participant from the barrier — the hook a
// dying process uses so its group does not deadlock waiting for it. If the
// remaining participants have all already arrived, the round is released
// immediately; the order of Leave and the last Wait does not matter.
func (b *Barrier) Leave() {
	if b.n <= 1 {
		panic(fmt.Sprintf("sim: barrier %s would be left with no participants", b.Name))
	}
	b.n--
	if b.arrived >= b.n && b.arrived > 0 {
		for _, w := range b.waiters {
			b.env.schedule(b.env.now, w)
		}
		b.waiters = b.waiters[:0]
		b.arrived = 0
	}
}

// Parties returns the current number of participants.
func (b *Barrier) Parties() int { return b.n }

// WaitGroup lets one process wait for n completions signalled by others.
type WaitGroup struct {
	mb      *Mailbox
	pending int
}

// NewWaitGroup creates a wait group expecting n Done calls.
func NewWaitGroup(e *Env, name string, n int) *WaitGroup {
	return &WaitGroup{mb: NewMailbox(e, name), pending: n}
}

// Done signals one completion.
func (w *WaitGroup) Done() { w.mb.Send(struct{}{}) }

// Wait blocks p until all expected completions have been signalled.
func (w *WaitGroup) Wait(p *Proc) {
	for w.pending > 0 {
		w.mb.Recv(p)
		w.pending--
	}
}
