package wire

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"senkf/internal/grid"
	"senkf/internal/plan"
	"senkf/internal/trace"
)

func compiled(t *testing.T, levels int) *plan.Compiled {
	t.Helper()
	m, err := grid.NewMesh(48, 24)
	if err != nil {
		t.Fatal(err)
	}
	d, err := grid.NewDecomposition(m, 4, 2, grid.Radius{Xi: 4, Eta: 2})
	if err != nil {
		t.Fatal(err)
	}
	s := plan.SEnKF(d, 8, 2, 2)
	if levels > 1 {
		s = s.WithLevels(levels)
	}
	c, err := plan.Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestCollectorFoldsMessagesOntoEdges drives OnMessage with plan-space and
// out-of-space tags and checks the edge/other split, the latency clamp and
// the queue-depth maximum.
func TestCollectorFoldsMessagesOntoEdges(t *testing.T) {
	cp := compiled(t, 3)
	c := NewCollector()
	c.BeginMessages(cp)

	tag := cp.Spec.Tag(1, 5, 2)
	c.OnMessage(0, 3, tag, 800, 1.0, 1.5, 4)
	c.OnMessage(0, 3, tag, 800, 2.0, 2.25, 1)
	c.OnMessage(2, 3, -1, 64, 0, 0, 0)    // collective
	c.OnMessage(2, 3, 1<<20, 64, 3, 2, 0) // result gather, clock skew

	m := c.Matrix()
	k := plan.EdgeKey{Src: 0, Dst: 3, Stage: 1, Level: 2}
	if got := m[k]; got != (plan.EdgeStats{Msgs: 2, Bytes: 1600}) {
		t.Errorf("edge %s = %+v, want 2 msgs / 1600 bytes", k, got)
	}
	if len(m) != 1 {
		t.Errorf("matrix has %d edges, want 1", len(m))
	}
	om, ob := c.Other()
	if om != 2 || ob != 128 {
		t.Errorf("other = %d msgs / %d bytes, want 2 / 128", om, ob)
	}

	s := c.Summary(0)
	if s.Msgs != 2 || s.Bytes != 1600 || s.OtherMsgs != 2 {
		t.Errorf("summary totals %+v, want 2 stage msgs / 1600 bytes / 2 other", s)
	}
	if s.MaxLatency != 0.5 {
		t.Errorf("max latency %g, want 0.5", s.MaxLatency)
	}
	// Negative latency (skewed clocks) clamps to zero rather than going
	// below it: mean over 4 msgs is (0.5+0.25+0+0)/4.
	if want := 0.75 / 4; math.Abs(s.MeanLatency-want) > 1e-12 {
		t.Errorf("mean latency %g, want %g", s.MeanLatency, want)
	}
	if s.MaxQueueDepth != 4 {
		t.Errorf("max queue depth %d, want 4", s.MaxQueueDepth)
	}
	if s.Algorithm != string(cp.Spec.Algorithm) {
		t.Errorf("summary algorithm %q, want %q", s.Algorithm, cp.Spec.Algorithm)
	}
}

// TestCollectorWithoutPlanBucketsEverythingAsOther checks that a collector
// that never saw BeginMessages cannot invert tags and attributes all
// traffic to the other bucket.
func TestCollectorWithoutPlanBucketsEverythingAsOther(t *testing.T) {
	c := NewCollector()
	c.OnMessage(0, 1, 3, 100, 0, 0, 0)
	if len(c.Matrix()) != 0 {
		t.Error("plan-less collector recorded a plan edge")
	}
	if om, ob := c.Other(); om != 1 || ob != 100 {
		t.Errorf("other = %d / %d, want 1 / 100", om, ob)
	}
}

// TestCollectorOSTAttribution drives OnRead and checks the per-OST
// accumulation, utilization and fault counts in the summary.
func TestCollectorOSTAttribution(t *testing.T) {
	c := NewCollector()
	// OST 1: two reads over [0, 4], serving 1s each => util 0.5.
	c.OnRead(1, 1000, 0, 0, 1, false, false)
	c.OnRead(1, 1000, 2, 1, 1, true, false)
	// OST 7: one stalled read flagged as outage.
	c.OnRead(7, 500, 0, 5, 1, false, true)

	if got := c.OSTBytes(); got != 2500 {
		t.Errorf("OSTBytes = %g, want 2500", got)
	}
	s := c.Summary(0)
	if len(s.OSTs) != 2 {
		t.Fatalf("summary has %d OSTs, want 2", len(s.OSTs))
	}
	o1, o7 := s.OSTs[0], s.OSTs[1]
	if o1.OST != 1 || o7.OST != 7 {
		t.Fatalf("OST order %d, %d; want 1, 7", o1.OST, o7.OST)
	}
	if o1.Reads != 2 || o1.Degraded != 1 || o1.Outage != 0 {
		t.Errorf("ost1 = %+v, want 2 reads, 1 degraded", o1)
	}
	if math.Abs(o1.Util-0.5) > 1e-12 {
		t.Errorf("ost1 util %g, want 0.5", o1.Util)
	}
	if o1.Wait != 1 || o1.Service != 2 {
		t.Errorf("ost1 wait/service = %g/%g, want 1/2", o1.Wait, o1.Service)
	}
	if o7.Outage != 1 {
		t.Errorf("ost7 outage count %d, want 1", o7.Outage)
	}
	if s.PeakOSTUtil < 0.5 {
		t.Errorf("peak OST util %g, want >= 0.5", s.PeakOSTUtil)
	}
	if len(o1.Timeline) != TimelineBins {
		t.Errorf("ost1 timeline has %d bins, want %d", len(o1.Timeline), TimelineBins)
	}
}

// TestTimelineBinsServiceIntervals checks the utilization binning: one
// interval covering exactly the first half of the window fills the first
// half of the bins.
func TestTimelineBinsServiceIntervals(t *testing.T) {
	out := timeline([]interval{{t0: 0, t1: 5}}, 0, 10, 10)
	for b, v := range out {
		want := 0.0
		if b < 5 {
			want = 1.0
		}
		if math.Abs(v-want) > 1e-9 {
			t.Errorf("bin %d = %g, want %g", b, v, want)
		}
	}
	// Out-of-window intervals and empty windows stay in range.
	out = timeline([]interval{{t0: -5, t1: 50}}, 0, 10, 4)
	for b, v := range out {
		if v < 0 || v > 1 {
			t.Errorf("bin %d = %g outside [0, 1]", b, v)
		}
	}
}

type sideRecorder struct{ events []trace.Event }

func (s *sideRecorder) EmitSide(ev trace.Event) { s.events = append(s.events, ev) }

// TestCollectorForwardsWireEventsToSideSink checks the secondary-only
// trace emission: one CatComm deliver per message, one CatOST read per
// read, and silence with no side sink attached.
func TestCollectorForwardsWireEventsToSideSink(t *testing.T) {
	c := NewCollector()
	c.OnMessage(0, 1, 3, 100, 0, 0.5, 0) // no sink: must not panic
	side := &sideRecorder{}
	c.SetSide(side)
	c.OnMessage(4, 5, 7, 200, 1, 1.25, 2)
	c.OnRead(3, 900, 2, 0.5, 0.25, true, false)

	if len(side.events) != 2 {
		t.Fatalf("side sink got %d events, want 2", len(side.events))
	}
	d := side.events[0]
	if d.Cat != trace.CatComm || d.Name != "deliver" || d.Ph != trace.PhaseInstant {
		t.Errorf("first side event = %+v, want a comm deliver instant", d)
	}
	if d.Ts != 1.25 {
		t.Errorf("deliver stamped at %g, want the delivery time 1.25", d.Ts)
	}
	r := side.events[1]
	if r.Cat != trace.CatOST || r.Name != "read" || r.Track != "ost3" {
		t.Errorf("second side event = %+v, want an ost3 read instant", r)
	}
}

// TestSummaryWriteTable smoke-tests the text rendering: totals, top-edge
// rows and the OST sparkline all appear.
func TestSummaryWriteTable(t *testing.T) {
	cp := compiled(t, 1)
	c := NewCollector()
	c.BeginMessages(cp)
	c.OnMessage(0, 2, cp.Spec.Tag(0, 1, 0), 1000, 0, 0.1, 1)
	c.OnRead(0, 4096, 0, 0.5, 1, false, true)

	var buf bytes.Buffer
	if err := c.Summary(0).WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"wire summary", "top edges", "0->2/s0/l0", "OSTs", "1 outage"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
}

// TestSummaryTopNAndSkew checks edge trimming and the per-destination skew
// figure: all traffic on one destination out of two gives skew 2.
func TestSummaryTopNAndSkew(t *testing.T) {
	cp := compiled(t, 1)
	c := NewCollector()
	c.BeginMessages(cp)
	tag := cp.Spec.Tag(0, 0, 0)
	c.OnMessage(0, 1, tag, 300, 0, 0, 0)
	c.OnMessage(0, 2, tag, 100, 0, 0, 0)
	c.OnMessage(1, 2, tag, 200, 0, 0, 0)

	s := c.Summary(2)
	if len(s.TopEdges) != 2 {
		t.Fatalf("topN=2 kept %d edges", len(s.TopEdges))
	}
	if s.TopEdges[0].Bytes < s.TopEdges[1].Bytes {
		t.Error("top edges not sorted by bytes descending")
	}
	// dst 1 carries 300, dst 2 carries 300: perfectly balanced, skew 1.
	if math.Abs(s.Skew-1) > 1e-12 {
		t.Errorf("skew %g, want 1 for balanced destinations", s.Skew)
	}

	c2 := NewCollector()
	c2.BeginMessages(cp)
	c2.OnMessage(0, 1, tag, 300, 0, 0, 0)
	c2.OnMessage(0, 2, tag, 100, 0, 0, 0)
	// dst 1: 300 of 400 total over 2 dsts => skew 1.5.
	if s2 := c2.Summary(0); math.Abs(s2.Skew-1.5) > 1e-12 {
		t.Errorf("skew %g, want 1.5 for a 3:1 imbalance", s2.Skew)
	}
}
