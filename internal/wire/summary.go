// Summary rendering: the collector's accumulated state reduced to the
// wire.json shape the run ledger archives and senkf-report wire renders —
// top edges by bytes, per-destination skew, per-OST utilization timelines.

package wire

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"

	"senkf/internal/plan"
)

// TimelineBins is the resolution of the per-OST utilization timeline.
const TimelineBins = 24

// EdgeLine is one edge of the summary, heaviest first.
type EdgeLine struct {
	plan.EdgeKey
	plan.EdgeStats
	// MeanMsgBytes is Bytes/Msgs, the per-message payload size.
	MeanMsgBytes float64 `json:"mean_msg_bytes"`
}

// OSTLine is one storage target's attribution.
type OSTLine struct {
	OST      int     `json:"ost"`
	Reads    int64   `json:"reads"`
	Bytes    float64 `json:"bytes"`
	Wait     float64 `json:"wait_s"`
	Service  float64 `json:"service_s"`
	Degraded int64   `json:"degraded"`
	Outage   int64   `json:"outage"`
	// Util is service time over the OST's active window [first, last].
	Util float64 `json:"util"`
	// Timeline is the per-bin service utilization over the run's global
	// OST window, TimelineBins values in [0, 1]. Empty when truncated.
	Timeline  []float64 `json:"timeline,omitempty"`
	Truncated bool      `json:"truncated,omitempty"`
}

// Summary is the archived wire-telemetry picture of one run (wire.json).
type Summary struct {
	Algorithm string `json:"algorithm,omitempty"`
	// Stage-data traffic on plan edges.
	Msgs  int64 `json:"msgs"`
	Bytes int64 `json:"bytes"`
	Edges int   `json:"edges"`
	// Collective and result-gather traffic outside the plan tag space.
	OtherMsgs  int64 `json:"other_msgs"`
	OtherBytes int64 `json:"other_bytes"`
	// Delivery latency and receiver backlog extremes.
	MeanLatency   float64 `json:"mean_latency_s"`
	MaxLatency    float64 `json:"max_latency_s"`
	MaxQueueDepth int     `json:"max_queue_depth"`
	// Skew is max/mean of per-destination stage-data bytes (1 = perfectly
	// balanced, 0 = no stage-data traffic).
	Skew     float64    `json:"skew"`
	TopEdges []EdgeLine `json:"top_edges,omitempty"`
	// OST attribution, by storage target.
	OSTs        []OSTLine `json:"osts,omitempty"`
	PeakOSTUtil float64   `json:"peak_ost_util"`
}

// Summary reduces the collector's state, keeping the topN heaviest edges
// (topN <= 0 keeps 16).
func (c *Collector) Summary(topN int) *Summary {
	if topN <= 0 {
		topN = 16
	}
	c.mu.Lock()
	defer c.mu.Unlock()

	s := &Summary{
		OtherMsgs:     c.otherMsgs,
		OtherBytes:    c.otherBytes,
		MaxLatency:    c.latMax,
		MaxQueueDepth: c.depthMax,
		Edges:         len(c.edges),
	}
	if c.havePlan {
		s.Algorithm = string(c.spec.Algorithm)
	}
	if c.msgs > 0 {
		s.MeanLatency = c.latSum / float64(c.msgs)
	}

	perDst := map[int]int64{}
	lines := make([]EdgeLine, 0, len(c.edges))
	for _, k := range c.edges.Keys() {
		es := c.edges[k]
		s.Msgs += es.Msgs
		s.Bytes += es.Bytes
		perDst[k.Dst] += es.Bytes
		l := EdgeLine{EdgeKey: k, EdgeStats: es}
		if es.Msgs > 0 {
			l.MeanMsgBytes = float64(es.Bytes) / float64(es.Msgs)
		}
		lines = append(lines, l)
	}
	sort.SliceStable(lines, func(i, j int) bool { return lines[i].Bytes > lines[j].Bytes })
	if len(lines) > topN {
		lines = lines[:topN]
	}
	s.TopEdges = lines

	if len(perDst) > 0 {
		var max, sum int64
		for _, b := range perDst {
			sum += b
			if b > max {
				max = b
			}
		}
		s.Skew = float64(max) * float64(len(perDst)) / float64(sum)
	}

	// Global OST window for aligned timelines.
	var t0, t1 float64
	first := true
	for _, a := range c.osts {
		if first || a.first < t0 {
			t0 = a.first
		}
		if first || a.last > t1 {
			t1 = a.last
		}
		first = false
	}
	ids := make([]int, 0, len(c.osts))
	for id := range c.osts {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		a := c.osts[id]
		l := OSTLine{
			OST: id, Reads: a.reads, Bytes: a.bytes,
			Wait: a.wait, Service: a.service,
			Degraded: a.degraded, Outage: a.outage,
			Truncated: a.truncated,
		}
		if a.last > a.first {
			l.Util = a.service / (a.last - a.first)
			if l.Util > 1 {
				l.Util = 1
			}
		}
		if !a.truncated && t1 > t0 {
			l.Timeline = timeline(a.intervals, t0, t1, TimelineBins)
		}
		if l.Util > s.PeakOSTUtil {
			s.PeakOSTUtil = l.Util
		}
		s.OSTs = append(s.OSTs, l)
	}
	return s
}

// timeline bins service intervals over [t0, t1] into per-bin utilization
// fractions.
func timeline(ivs []interval, t0, t1 float64, bins int) []float64 {
	out := make([]float64, bins)
	width := (t1 - t0) / float64(bins)
	if width <= 0 {
		return out
	}
	for _, iv := range ivs {
		lo, hi := iv.t0, iv.t1
		if hi <= lo {
			continue
		}
		b0 := int((lo - t0) / width)
		b1 := int((hi - t0) / width)
		for b := b0; b <= b1 && b < bins; b++ {
			if b < 0 {
				continue
			}
			binLo := t0 + float64(b)*width
			binHi := binLo + width
			ovLo, ovHi := lo, hi
			if ovLo < binLo {
				ovLo = binLo
			}
			if ovHi > binHi {
				ovHi = binHi
			}
			if ovHi > ovLo {
				out[b] += (ovHi - ovLo) / width
			}
		}
	}
	for b := range out {
		if out[b] > 1 {
			out[b] = 1
		}
	}
	return out
}

// WriteTable renders the summary as aligned text: totals, the top edges
// by bytes, and the per-OST attribution with sparkline timelines.
func (s *Summary) WriteTable(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "wire summary (%s)\n", nonEmpty(s.Algorithm, "unknown algorithm")); err != nil {
		return err
	}
	fmt.Fprintf(w, "  stage-data: %d msgs, %d bytes over %d edges (skew %.3f)\n", s.Msgs, s.Bytes, s.Edges, s.Skew)
	fmt.Fprintf(w, "  other:      %d msgs, %d bytes (collectives + result gather)\n", s.OtherMsgs, s.OtherBytes)
	fmt.Fprintf(w, "  latency:    mean %.3gs, max %.3gs; max queue depth %d\n", s.MeanLatency, s.MaxLatency, s.MaxQueueDepth)
	if len(s.TopEdges) > 0 {
		fmt.Fprintln(w, "  top edges by bytes:")
		tw := tabwriter.NewWriter(w, 2, 2, 2, ' ', 0)
		fmt.Fprintln(tw, "    edge\tmsgs\tbytes\tbytes/msg")
		for _, e := range s.TopEdges {
			fmt.Fprintf(tw, "    %s\t%d\t%d\t%.0f\n", e.EdgeKey, e.Msgs, e.Bytes, e.MeanMsgBytes)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}
	if len(s.OSTs) > 0 {
		fmt.Fprintf(w, "  OSTs (peak util %.2f):\n", s.PeakOSTUtil)
		tw := tabwriter.NewWriter(w, 2, 2, 2, ' ', 0)
		fmt.Fprintln(tw, "    ost\treads\tbytes\twait\tservice\tutil\tfaults\ttimeline")
		for _, o := range s.OSTs {
			faults := ""
			if o.Outage > 0 {
				faults += fmt.Sprintf("%d outage ", o.Outage)
			}
			if o.Degraded > 0 {
				faults += fmt.Sprintf("%d degraded", o.Degraded)
			}
			fmt.Fprintf(tw, "    %d\t%d\t%.3g\t%.3gs\t%.3gs\t%.2f\t%s\t%s\n",
				o.OST, o.Reads, o.Bytes, o.Wait, o.Service, o.Util, faults, spark(o.Timeline))
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// spark renders a utilization timeline as a unicode sparkline.
func spark(vals []float64) string {
	if len(vals) == 0 {
		return ""
	}
	levels := []rune(" ▁▂▃▄▅▆▇█")
	out := make([]rune, len(vals))
	for i, v := range vals {
		idx := int(v * float64(len(levels)-1))
		if idx < 0 {
			idx = 0
		}
		if idx >= len(levels) {
			idx = len(levels) - 1
		}
		out[i] = levels[idx]
	}
	return string(out)
}

func nonEmpty(s, fallback string) string {
	if s == "" {
		return fallback
	}
	return s
}
