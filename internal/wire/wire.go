// Package wire is the message-level telemetry layer: it turns the
// per-message callbacks of the real transport (internal/mpi), the
// per-read callbacks of the simulated file system (internal/parfs) and
// the simulated substrate's mirrored sends (internal/schedule) into one
// edge-accounting picture — the actual (src, dst, stage, level) edge
// matrix, collective/result "other" traffic, message-latency extremes,
// and per-OST attribution timelines.
//
// The package sits beside the monitor in the layering: it builds on plan
// and trace only (never on a substrate package), declaring nothing the
// substrates must import — mpi and parfs each declare their own
// structurally identical observer interfaces, which Collector satisfies.
// A Collector optionally forwards every observation as a trace event on
// the CatComm/CatOST categories through a side sink (trace.Tee.EmitSide),
// so a live monitor sees the wire without the primary trace sink ever
// learning telemetry was on: unfaulted runs stay byte-identical on the
// primary sink with or without a collector attached.
package wire

import (
	"fmt"
	"sync"

	"senkf/internal/plan"
	"senkf/internal/trace"
)

// maxIntervalsPerOST bounds the per-OST service-interval log backing the
// utilization timeline; beyond it the timeline is truncated (flagged in
// the summary) while scalar accounting stays exact.
const maxIntervalsPerOST = 16384

// SideSink receives wire trace events on the secondary-only path.
// *trace.Tee implements it.
type SideSink interface {
	EmitSide(trace.Event)
}

type interval struct{ t0, t1 float64 }

// ostAccum is the per-storage-target slice of the OST attribution.
type ostAccum struct {
	reads     int64
	bytes     float64
	wait      float64
	service   float64
	degraded  int64
	outage    int64
	first     float64 // earliest read start
	last      float64 // latest service end
	intervals []interval
	truncated bool
}

// Collector accumulates wire telemetry from either substrate. It
// implements plan.MsgObserver (and, structurally, mpi.MsgObserver and
// parfs.ReadObserver), is safe for concurrent use, and accumulates across
// runs — a cycled experiment folds every cycle into one picture.
type Collector struct {
	mu sync.Mutex

	spec     plan.Spec // geometry of the latest BeginMessages plan
	havePlan bool

	edges      plan.EdgeMatrix
	otherMsgs  int64
	otherBytes int64

	msgs     int64
	latSum   float64
	latMax   float64
	depthMax int

	osts map[int]*ostAccum

	side SideSink
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{edges: plan.EdgeMatrix{}, osts: map[int]*ostAccum{}}
}

// SetSide attaches the secondary-only trace sink wire events are forwarded
// to (typically the monitor tee). A nil sink (the default) keeps the
// collector silent on the trace stream.
func (c *Collector) SetSide(s SideSink) {
	c.mu.Lock()
	c.side = s
	c.mu.Unlock()
}

// BeginMessages implements plan.MsgObserver: it records the compiled
// plan's geometry so message tags can be inverted into (stage, member,
// level) coordinates. Accumulated state is kept — a cycled run calls this
// once per cycle with the same plan.
func (c *Collector) BeginMessages(cp *plan.Compiled) {
	c.mu.Lock()
	c.spec = cp.Spec
	c.havePlan = true
	c.mu.Unlock()
}

// OnMessage implements plan.MsgObserver and, structurally, the transport's
// mpi.MsgObserver: one delivered message lands on its plan edge (or the
// "other" bucket for collective and result-gather tags).
func (c *Collector) OnMessage(src, dst, tag int, bytes int64, sentAt, deliveredAt float64, depth int) {
	lat := deliveredAt - sentAt
	if lat < 0 {
		lat = 0
	}
	c.mu.Lock()
	c.msgs++
	c.latSum += lat
	if lat > c.latMax {
		c.latMax = lat
	}
	if depth > c.depthMax {
		c.depthMax = depth
	}
	stage, _, level, ok := 0, 0, 0, false
	if c.havePlan {
		stage, _, level, ok = c.spec.InvertTag(tag)
	}
	if ok {
		c.edges.Record(plan.EdgeKey{Src: src, Dst: dst, Stage: stage, Level: level}, bytes)
	} else {
		c.otherMsgs++
		c.otherBytes += bytes
	}
	side := c.side
	c.mu.Unlock()
	if side != nil {
		side.EmitSide(trace.Event{
			Track: trace.CommTrack, Cat: trace.CatComm, Name: "deliver",
			Ph: trace.PhaseInstant, Ts: deliveredAt,
			Args: []trace.Arg{
				{Key: "src", Val: float64(src)},
				{Key: "dst", Val: float64(dst)},
				{Key: "tag", Val: float64(tag)},
				{Key: "bytes", Val: float64(bytes)},
				{Key: "lat", Val: lat},
				{Key: "depth", Val: float64(depth)},
			},
		})
	}
}

// OnRead implements, structurally, parfs.ReadObserver: one completed read
// attributed to its storage target.
func (c *Collector) OnRead(ost int, bytes float64, start, wait, service float64, degraded, outage bool) {
	c.mu.Lock()
	a := c.osts[ost]
	if a == nil {
		a = &ostAccum{first: start}
		c.osts[ost] = a
	}
	a.reads++
	a.bytes += bytes
	a.wait += wait
	a.service += service
	if degraded {
		a.degraded++
	}
	if outage {
		a.outage++
	}
	if start < a.first {
		a.first = start
	}
	end := start + wait + service
	if end > a.last {
		a.last = end
	}
	if len(a.intervals) < maxIntervalsPerOST {
		a.intervals = append(a.intervals, interval{t0: end - service, t1: end})
	} else {
		a.truncated = true
	}
	side := c.side
	c.mu.Unlock()
	if side != nil {
		var deg, out float64
		if degraded {
			deg = 1
		}
		if outage {
			out = 1
		}
		side.EmitSide(trace.Event{
			Track: fmt.Sprintf("ost%d", ost), Cat: trace.CatOST, Name: "read",
			Ph: trace.PhaseInstant, Ts: start,
			Args: []trace.Arg{
				{Key: "ost", Val: float64(ost)},
				{Key: "bytes", Val: bytes},
				{Key: "wait", Val: wait},
				{Key: "service", Val: service},
				{Key: "degraded", Val: deg},
				{Key: "outage", Val: out},
			},
		})
	}
}

// Matrix returns a copy of the accumulated stage-data edge matrix.
func (c *Collector) Matrix() plan.EdgeMatrix {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.edges.Clone()
}

// Other returns the traffic outside the plan tag space: collectives and
// the engine's result gather. Matrix totals plus Other equal the
// transport's CommStats totals exactly.
func (c *Collector) Other() (msgs, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.otherMsgs, c.otherBytes
}

// OSTBytes sums the attributed bytes across storage targets; it equals
// parfs.Stats.BytesRead exactly for a run whose file system carried the
// collector as its read observer.
func (c *Collector) OSTBytes() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var total float64
	for _, a := range c.osts {
		total += a.bytes
	}
	return total
}
