package workload

import (
	"math"
	"testing"

	"senkf/internal/grid"
)

func testMesh(t *testing.T) grid.Mesh {
	t.Helper()
	m, err := grid.NewMesh(32, 16)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestTruthDeterministic(t *testing.T) {
	m := testMesh(t)
	a := Truth(m, DefaultFieldSpec, 5)
	b := Truth(m, DefaultFieldSpec, 5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("truth not deterministic at %d", i)
		}
	}
	c := Truth(m, DefaultFieldSpec, 6)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical truth")
	}
}

func TestTruthHasSpatialStructure(t *testing.T) {
	// Smooth fields: adjacent points are far more correlated than distant
	// ones. Compare mean |∇f| against the field's overall spread.
	m := testMesh(t)
	spec := DefaultFieldSpec
	spec.Noise = 0 // pure smooth modes
	f := Truth(m, spec, 7)
	var gradSum float64
	var count int
	for y := 0; y < m.NY; y++ {
		for x := 0; x+1 < m.NX; x++ {
			gradSum += math.Abs(f[m.Index(x+1, y)] - f[m.Index(x, y)])
			count++
		}
	}
	meanGrad := gradSum / float64(count)
	var mn, mx float64 = math.Inf(1), math.Inf(-1)
	for _, v := range f {
		mn = math.Min(mn, v)
		mx = math.Max(mx, v)
	}
	if spread := mx - mn; meanGrad > spread/4 {
		t.Errorf("field not smooth: mean gradient %g vs spread %g", meanGrad, spread)
	}
	if mx == mn {
		t.Error("field is constant")
	}
}

func TestEnsembleValidation(t *testing.T) {
	m := testMesh(t)
	truth := Truth(m, DefaultFieldSpec, 1)
	if _, err := Ensemble(m, truth[:5], 4, 1, 1); err == nil {
		t.Error("expected truth-length error")
	}
	if _, err := Ensemble(m, truth, 1, 1, 1); err == nil {
		t.Error("expected ensemble-size error")
	}
	if _, err := Ensemble(m, truth, 4, 0, 1); err == nil {
		t.Error("expected spread error")
	}
}

func TestEnsembleStatistics(t *testing.T) {
	m := testMesh(t)
	truth := Truth(m, DefaultFieldSpec, 2)
	const n = 24
	const spread = 1.5
	fields, err := Ensemble(m, truth, n, spread, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(fields) != n {
		t.Fatalf("got %d members", len(fields))
	}
	// Members deviate from the truth on the order of the spread, and
	// distinct members differ from each other.
	var devSum float64
	for k := 0; k < n; k++ {
		var s float64
		for i := range truth {
			d := fields[k][i] - truth[i]
			s += d * d
		}
		rmse := math.Sqrt(s / float64(len(truth)))
		if rmse == 0 {
			t.Fatalf("member %d equals the truth", k)
		}
		if rmse > 3*spread {
			t.Fatalf("member %d deviates too much: %g", k, rmse)
		}
		devSum += rmse
	}
	if mean := devSum / n; mean < spread/10 {
		t.Errorf("ensemble too tight: mean member RMSE %g for spread %g", mean, spread)
	}
	diff := false
	for i := range fields[0] {
		if fields[0][i] != fields[1][i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("members 0 and 1 identical")
	}
}

func TestEnsembleDeterministicPerMember(t *testing.T) {
	m := testMesh(t)
	truth := Truth(m, DefaultFieldSpec, 3)
	a, err := Ensemble(m, truth, 6, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Ensemble(m, truth, 6, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	for k := range a {
		for i := range a[k] {
			if a[k][i] != b[k][i] {
				t.Fatalf("member %d not deterministic", k)
			}
		}
	}
}

func TestPresets(t *testing.T) {
	for _, p := range []Preset{PaperScale, LaptopScale, TestScale} {
		m, err := p.Mesh()
		if err != nil {
			t.Errorf("%s: %v", p.Name, err)
			continue
		}
		if m.NX != p.NX || m.NY != p.NY {
			t.Errorf("%s: mesh mismatch", p.Name)
		}
		r := p.Radius()
		if r.Xi != p.Xi || r.Eta != p.Eta {
			t.Errorf("%s: radius mismatch", p.Name)
		}
		if p.Members < 2 {
			t.Errorf("%s: too few members", p.Name)
		}
		if p.BytesPerPoint() != 8*p.Levels {
			t.Errorf("%s: h = %d", p.Name, p.BytesPerPoint())
		}
	}
	// Paper geometry exactly as §5.1.
	if PaperScale.NX != 3600 || PaperScale.NY != 1800 || PaperScale.Members != 120 || PaperScale.Levels != 30 {
		t.Errorf("paper preset drifted: %+v", PaperScale)
	}
}
