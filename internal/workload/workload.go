// Package workload generates the synthetic data sets the reproduction runs
// on: ocean-like smooth truth fields, background ensembles drawn around the
// truth (standing in for the "long-time ocean model integration" of §5.1),
// and the experiment presets — the paper-scale geometry
// (3600 × 1800 grid, 30 vertical levels, N = 120 members, 0.1° resolution)
// used by the simulated experiments, and laptop-scale presets used by the
// real executions and tests.
package workload

import (
	"fmt"
	"math"

	"senkf/internal/grid"
	"senkf/internal/linalg"
)

// FieldSpec controls synthetic field generation.
type FieldSpec struct {
	Modes     int     // number of superposed smooth modes
	Amplitude float64 // overall field amplitude
	Noise     float64 // white-noise standard deviation added per point
}

// DefaultFieldSpec is a reasonable ocean-like texture.
var DefaultFieldSpec = FieldSpec{Modes: 6, Amplitude: 2.0, Noise: 0.05}

// Truth generates a deterministic smooth field over the mesh: a sum of
// low-wavenumber sinusoidal modes with seed-dependent phases, mimicking the
// large-scale structure of an ocean state (e.g. SSH or temperature).
func Truth(m grid.Mesh, spec FieldSpec, seed uint64) []float64 {
	s := linalg.KeyedStream(seed, 0x7A07)
	type mode struct {
		kx, ky, phase, amp float64
	}
	modes := make([]mode, spec.Modes)
	for i := range modes {
		modes[i] = mode{
			kx:    float64(s.Intn(4)+1) * 2 * math.Pi / float64(m.NX),
			ky:    float64(s.Intn(4)+1) * 2 * math.Pi / float64(m.NY),
			phase: s.Float64() * 2 * math.Pi,
			amp:   spec.Amplitude * (0.5 + s.Float64()) / float64(spec.Modes),
		}
	}
	f := make([]float64, m.Points())
	for y := 0; y < m.NY; y++ {
		for x := 0; x < m.NX; x++ {
			var v float64
			for _, md := range modes {
				v += md.amp * math.Sin(md.kx*float64(x)+md.ky*float64(y)+md.phase)
			}
			if spec.Noise > 0 {
				ns := linalg.KeyedStream(seed, 0x7A08, x, y)
				v += spec.Noise * ns.Norm()
			}
			f[m.Index(x, y)] = v
		}
	}
	return f
}

// Ensemble generates N background members around the truth: each member is
// truth plus a member-specific smooth perturbation plus small point noise.
// Perturbations are smooth so the ensemble carries spatial correlations —
// without them localized assimilation would be pointless.
func Ensemble(m grid.Mesh, truth []float64, n int, spread float64, seed uint64) ([][]float64, error) {
	if len(truth) != m.Points() {
		return nil, fmt.Errorf("workload: truth has %d points, mesh has %d", len(truth), m.Points())
	}
	if n < 2 {
		return nil, fmt.Errorf("workload: ensemble size must be at least 2, got %d", n)
	}
	if spread <= 0 {
		return nil, fmt.Errorf("workload: spread must be positive, got %g", spread)
	}
	out := make([][]float64, n)
	for k := 0; k < n; k++ {
		s := linalg.KeyedStream(seed, 0xE45, k)
		const modes = 4
		type mode struct {
			kx, ky, phase, amp float64
		}
		ms := make([]mode, modes)
		for i := range ms {
			ms[i] = mode{
				kx:    float64(s.Intn(5)+1) * 2 * math.Pi / float64(m.NX),
				ky:    float64(s.Intn(5)+1) * 2 * math.Pi / float64(m.NY),
				phase: s.Float64() * 2 * math.Pi,
				amp:   spread * (0.5 + s.Float64()) / modes,
			}
		}
		f := make([]float64, m.Points())
		for y := 0; y < m.NY; y++ {
			for x := 0; x < m.NX; x++ {
				v := truth[m.Index(x, y)]
				for _, md := range ms {
					v += md.amp * math.Sin(md.kx*float64(x)+md.ky*float64(y)+md.phase)
				}
				ps := linalg.KeyedStream(seed, 0xE46, k, x, y)
				v += 0.1 * spread * ps.Norm()
				f[m.Index(x, y)] = v
			}
		}
		out[k] = f
	}
	return out, nil
}

// Preset bundles a full experiment geometry.
type Preset struct {
	Name      string
	NX, NY    int
	Members   int
	Levels    int // vertical levels folded into the per-point data volume
	Xi, Eta   int
	ObsStride int
	ObsVar    float64
	Spread    float64
	Seed      uint64
}

// PaperScale is the configuration of §5.1: 0.1° resolution data
// (3600 × 1800 mesh, 30 vertical levels, 8-byte values ⇒ h = 240 bytes per
// grid point) and 120 background ensemble members. Used analytically /
// in simulation only — the full X^b is ~186 GB.
var PaperScale = Preset{
	Name: "paper-0.1deg", NX: 3600, NY: 1800, Members: 120, Levels: 30,
	Xi: 16, Eta: 8, ObsStride: 12, ObsVar: 0.04, Spread: 0.5, Seed: 20190216,
}

// LaptopScale is a small geometry with the same structure for real
// end-to-end executions on one machine.
var LaptopScale = Preset{
	Name: "laptop", NX: 96, NY: 48, Members: 16, Levels: 1,
	Xi: 4, Eta: 2, ObsStride: 3, ObsVar: 0.01, Spread: 1.5, Seed: 20190216,
}

// TestScale is tiny, for unit and integration tests.
var TestScale = Preset{
	Name: "test", NX: 24, NY: 12, Members: 20, Levels: 1,
	Xi: 2, Eta: 2, ObsStride: 2, ObsVar: 0.01, Spread: 1.5, Seed: 20190216,
}

// Mesh returns the preset's mesh.
func (p Preset) Mesh() (grid.Mesh, error) { return grid.NewMesh(p.NX, p.NY) }

// Radius returns the preset's localization radius.
func (p Preset) Radius() grid.Radius { return grid.Radius{Xi: p.Xi, Eta: p.Eta} }

// BytesPerPoint returns h of Table 1: the per-grid-point data volume
// (vertical levels × 8-byte float).
func (p Preset) BytesPerPoint() int { return p.Levels * 8 }

// SmoothNoise returns a deterministic smooth random field — a few random
// low-wavenumber modes plus a little white noise — with point-wise standard
// deviation on the order of sd. Used as spatially correlated stochastic
// model error in cycled assimilation: only correlated errors can be
// corrected at unobserved points.
func SmoothNoise(m grid.Mesh, sd float64, seed uint64, keys ...int) []float64 {
	s := linalg.KeyedStream(seed, append([]int{0x5A00F}, keys...)...)
	const modes = 4
	type mode struct {
		kx, ky, phase, amp float64
	}
	ms := make([]mode, modes)
	for i := range ms {
		ms[i] = mode{
			kx:    float64(s.Intn(5)+1) * 2 * math.Pi / float64(m.NX),
			ky:    float64(s.Intn(5)+1) * 2 * math.Pi / float64(m.NY),
			phase: s.Float64() * 2 * math.Pi,
			amp:   sd * (0.5 + s.Float64()) / modes * 2,
		}
	}
	f := make([]float64, m.Points())
	for y := 0; y < m.NY; y++ {
		for x := 0; x < m.NX; x++ {
			var v float64
			for _, md := range ms {
				v += md.amp * math.Sin(md.kx*float64(x)+md.ky*float64(y)+md.phase)
			}
			f[m.Index(x, y)] = v
		}
	}
	ws := linalg.KeyedStream(seed, append([]int{0x5A010}, keys...)...)
	for i := range f {
		f[i] += 0.15 * sd * ws.Norm()
	}
	return f
}

// levelSeed derives an independent generation seed for a vertical level.
func levelSeed(seed uint64, level int) uint64 {
	return linalg.KeyedStream(seed, 0x1E7E1, level).Uint64()
}

// TruthLevels generates one truth field per vertical level, each an
// independent smooth field (the vertical structure of the §5.1 ocean state
// with its 30 levels).
func TruthLevels(m grid.Mesh, spec FieldSpec, levels int, seed uint64) ([][]float64, error) {
	if levels <= 0 {
		return nil, fmt.Errorf("workload: level count must be positive, got %d", levels)
	}
	out := make([][]float64, levels)
	for l := range out {
		out[l] = Truth(m, spec, levelSeed(seed, l))
	}
	return out, nil
}

// EnsembleLevels generates n members of a multi-level state:
// result[k][l] is member k's field at level l.
func EnsembleLevels(m grid.Mesh, truths [][]float64, n int, spread float64, seed uint64) ([][][]float64, error) {
	if len(truths) == 0 {
		return nil, fmt.Errorf("workload: no truth levels")
	}
	out := make([][][]float64, n)
	for k := range out {
		out[k] = make([][]float64, len(truths))
	}
	for l, truth := range truths {
		members, err := Ensemble(m, truth, n, spread, levelSeed(seed, l))
		if err != nil {
			return nil, fmt.Errorf("workload: level %d: %w", l, err)
		}
		for k := range members {
			out[k][l] = members[k]
		}
	}
	return out, nil
}
