// Package enkf implements the ensemble Kalman filter mathematics of the
// paper's §2: the global perturbed-observation analysis (Eqs. 1–5), the
// domain-localized per-point analysis (Eq. 6 applied with a local influence
// box per grid point), and a serial reference implementation that every
// parallel path (L-EnKF, P-EnKF, S-EnKF) must reproduce exactly.
//
// Two local solvers are provided, mirroring the paper's discussion in §2.3:
//
//   - SolverEnsembleSpace: the deterministic ensemble-space formulation,
//     Xa = Xb + U·Vᵀ·(V·Vᵀ/(N−1) + R)⁻¹·(Yˢ − H·Xb)/(N−1) with V = H·U —
//     the formulation used by L-EnKF implementations.
//   - SolverModifiedCholesky: the P-EnKF estimator (refs [23, 24]): solve
//     (B̂⁻¹ + HᵀR⁻¹H)·δX = HᵀR⁻¹(Yˢ − H·Xb) with B̂⁻¹ obtained from the
//     modified Cholesky decomposition (Eq. 5).
//
// Both solvers operate point-by-point on a local box, so the analysis on a
// sub-domain D only needs data on its expansion D̄ — the property the whole
// parallel design rests on.
package enkf

import (
	"fmt"
	"math"

	"senkf/internal/grid"
	"senkf/internal/linalg"
	"senkf/internal/obs"
)

// Solver selects the local analysis formulation.
type Solver int

const (
	// SolverEnsembleSpace solves in the N-dimensional ensemble space.
	SolverEnsembleSpace Solver = iota
	// SolverModifiedCholesky solves Eq. (5) with the modified Cholesky
	// B̂⁻¹ estimate over the local box.
	SolverModifiedCholesky
	// SolverETKF is the deterministic ensemble transform (LETKF family,
	// ref [25]): no observation perturbations; the analysis ensemble is
	// the background transformed by the symmetric square root in ensemble
	// space.
	SolverETKF
)

func (s Solver) String() string {
	switch s {
	case SolverEnsembleSpace:
		return "ensemble-space"
	case SolverModifiedCholesky:
		return "modified-cholesky"
	case SolverETKF:
		return "etkf"
	default:
		return fmt.Sprintf("solver(%d)", int(s))
	}
}

// Config carries the assimilation parameters shared by every implementation.
type Config struct {
	Mesh   grid.Mesh
	Radius grid.Radius
	N      int    // ensemble size (number of background members)
	Seed   uint64 // seed of the perturbed-observation streams
	Solver Solver
	// Band is the regression bandwidth of the modified Cholesky estimator
	// (ignored by the ensemble-space solver). Zero means diagonal B̂⁻¹.
	Band int
	// Ridge regularizes the modified Cholesky regressions.
	Ridge float64
	// TaperLength, when positive, applies Gaspari–Cohn observation-space
	// localization inside the local box: R_ii is inflated by 1/ρ_i with
	// ρ_i the taper at the normalized obs–point distance. Zero keeps the
	// paper's pure cut-off local box.
	TaperLength float64
	// Inflation, when positive, multiplies the background deviations from
	// the ensemble mean by this factor before the analysis (multiplicative
	// covariance inflation, the standard remedy for the spread collapse of
	// small ensembles in cycled assimilation). Zero disables inflation
	// (factor 1). Applied per local box, so every parallel layout computes
	// the identical analysis.
	Inflation float64
}

// Validate reports configuration errors early.
func (c Config) Validate() error {
	if c.Mesh.NX <= 0 || c.Mesh.NY <= 0 {
		return fmt.Errorf("enkf: invalid mesh %dx%d", c.Mesh.NX, c.Mesh.NY)
	}
	if c.N < 2 {
		return fmt.Errorf("enkf: ensemble size must be at least 2, got %d", c.N)
	}
	if c.Radius.Xi < 0 || c.Radius.Eta < 0 {
		return fmt.Errorf("enkf: invalid radius %+v", c.Radius)
	}
	switch c.Solver {
	case SolverEnsembleSpace, SolverModifiedCholesky, SolverETKF:
	default:
		return fmt.Errorf("enkf: unknown solver %d", c.Solver)
	}
	if c.Band < 0 {
		return fmt.Errorf("enkf: negative band %d", c.Band)
	}
	if c.Ridge < 0 {
		return fmt.Errorf("enkf: negative ridge %g", c.Ridge)
	}
	if c.TaperLength < 0 {
		return fmt.Errorf("enkf: negative taper length %g", c.TaperLength)
	}
	if c.Inflation < 0 {
		return fmt.Errorf("enkf: negative inflation %g", c.Inflation)
	}
	return nil
}

// Block is ensemble data over a box: Data[k] holds member k's values
// row-major within Box. It is the in-memory form of the
// X̄ᵇ_{[i,j]} expansions that file reading and communication deliver.
type Block struct {
	Box  grid.Box
	Data [][]float64 // N × Box.Points()
}

// NewBlock allocates a zeroed block for n members over box b.
func NewBlock(b grid.Box, n int) *Block {
	d := make([][]float64, n)
	for k := range d {
		d[k] = make([]float64, b.Points())
	}
	return &Block{Box: b, Data: d}
}

// At returns member k's value at global grid point (x, y), which must lie
// inside the block's box.
func (b *Block) At(k, x, y int) float64 {
	return b.Data[k][(y-b.Box.Y0)*b.Box.Width()+(x-b.Box.X0)]
}

// Set assigns member k's value at global grid point (x, y).
func (b *Block) Set(k, x, y int, v float64) {
	b.Data[k][(y-b.Box.Y0)*b.Box.Width()+(x-b.Box.X0)] = v
}

// Members returns the ensemble size stored in the block.
func (b *Block) Members() int { return len(b.Data) }

// SubBlock extracts the portion of the block covering box sb (which must be
// contained in b.Box) into a fresh block.
func (b *Block) SubBlock(sb grid.Box) (*Block, error) {
	if sb.Intersect(b.Box) != sb {
		return nil, fmt.Errorf("enkf: sub-box %v not contained in block box %v", sb, b.Box)
	}
	out := NewBlock(sb, len(b.Data))
	for k := range b.Data {
		for y := sb.Y0; y < sb.Y1; y++ {
			srcOff := (y-b.Box.Y0)*b.Box.Width() + (sb.X0 - b.Box.X0)
			dstOff := (y - sb.Y0) * sb.Width()
			copy(out.Data[k][dstOff:dstOff+sb.Width()], b.Data[k][srcOff:srcOff+sb.Width()])
		}
	}
	return out, nil
}

// taper returns the Gaspari–Cohn weight of an observation centred at
// (ox, oy) for the analysis point (x, y), normalized so the weight reaches
// zero at the local box edge. With TaperLength == 0 every in-box
// observation has weight 1 (pure cut-off localization).
func (c Config) taper(x, y int, ox, oy float64) float64 {
	if c.TaperLength <= 0 {
		return 1
	}
	dx := (ox - float64(x)) / (float64(c.Radius.Xi) + 1)
	dy := (oy - float64(y)) / (float64(c.Radius.Eta) + 1)
	z := 2 * math.Sqrt(dx*dx+dy*dy) / c.TaperLength
	return linalg.GaspariCohn(z)
}

// weightedIdx is one support point of an observation expressed in local-box
// row indices.
type weightedIdx struct {
	idx int
	w   float64
}

// localProblem gathers the pieces of Eq. (6) for one analysis point: the
// local ensemble matrix Xl (points × N), the in-box observations (each as a
// weighted combination of local rows — selection or bilinear H), their
// effective variances, and the perturbed innovations D = Yˢ − H·Xb.
type localProblem struct {
	lb       grid.Box
	center   int // row index of the analysis point within the local box
	xl       *linalg.Matrix
	supports [][]weightedIdx // per observation: local rows and H weights
	effVar   []float64       // effective R diagonal after tapering
	values   []float64       // raw observed values y (used by the ETKF)
	innov    *linalg.Matrix
	members  int
}

// hRow evaluates (H·Xl)_{obs i, member k} from the support weights.
func (p *localProblem) hRow(i, k int) float64 {
	var v float64
	for _, s := range p.supports[i] {
		v += s.w * p.xl.At(s.idx, k)
	}
	return v
}

// buildLocal assembles the local problem for grid point (x, y) using the
// ensemble data in blk and the observations candidates (already restricted
// to some superset box, e.g. the expansion).
func (c Config) buildLocal(blk *Block, candidates []obs.Observation, x, y int) (*localProblem, error) {
	lb := c.Radius.LocalBox(c.Mesh, x, y)
	if lb.Intersect(blk.Box) != lb {
		return nil, fmt.Errorf("enkf: local box %v of point (%d,%d) not contained in block %v", lb, x, y, blk.Box)
	}
	n := blk.Members()
	if n != c.N {
		return nil, fmt.Errorf("enkf: block has %d members, config says %d", n, c.N)
	}
	nb := lb.Points()
	xl := linalg.NewMatrix(nb, n)
	for yy := lb.Y0; yy < lb.Y1; yy++ {
		for xx := lb.X0; xx < lb.X1; xx++ {
			r := (yy-lb.Y0)*lb.Width() + (xx - lb.X0)
			row := xl.Row(r)
			for k := 0; k < n; k++ {
				row[k] = blk.At(k, xx, yy)
			}
		}
	}
	if c.Inflation > 0 && c.Inflation != 1 {
		// Multiplicative inflation: x ← mean + λ(x − mean), row by row.
		for r := 0; r < nb; r++ {
			row := xl.Row(r)
			var mean float64
			for _, v := range row {
				mean += v
			}
			mean /= float64(n)
			for k := range row {
				row[k] = mean + c.Inflation*(row[k]-mean)
			}
		}
	}
	p := &localProblem{
		lb:      lb,
		center:  (y-lb.Y0)*lb.Width() + (x - lb.X0),
		xl:      xl,
		members: n,
	}
	var used []obs.Observation
	for _, o := range candidates {
		if !obs.ObsInBox(o, lb) {
			continue
		}
		w := c.taper(x, y, float64(o.X)+o.OffsetX, float64(o.Y)+o.OffsetY)
		if w < 1e-10 {
			continue
		}
		var sup []weightedIdx
		for _, s := range o.Support() {
			sup = append(sup, weightedIdx{idx: (s.Y-lb.Y0)*lb.Width() + (s.X - lb.X0), w: s.W})
		}
		p.supports = append(p.supports, sup)
		p.effVar = append(p.effVar, o.Variance/w)
		p.values = append(p.values, o.Value)
		used = append(used, o)
	}
	m := len(p.supports)
	p.innov = linalg.NewMatrix(m, n)
	if c.Solver != SolverETKF {
		// The deterministic transform uses no observation perturbations;
		// the other solvers need the full Yˢ − H·Xᵇ innovation matrix.
		for mi, o := range used {
			row := p.innov.Row(mi)
			ys := obs.CenteredPerturbations(o, n, c.Seed)
			for k := 0; k < n; k++ {
				row[k] = ys[k] - p.hRow(mi, k)
			}
		}
	}
	return p, nil
}

// AnalyzePoint computes the analysis ensemble (length N) at grid point
// (x, y). blk must contain the local box of (x, y); candidates must contain
// at least every observation inside that local box.
func (c Config) AnalyzePoint(blk *Block, candidates []obs.Observation, x, y int) ([]float64, error) {
	p, err := c.buildLocal(blk, candidates, x, y)
	if err != nil {
		return nil, err
	}
	bg := make([]float64, p.members)
	copy(bg, p.xl.Row(p.center))
	if len(p.supports) == 0 {
		// No observations in reach: the analysis equals the background.
		return bg, nil
	}
	switch c.Solver {
	case SolverEnsembleSpace:
		return c.solveEnsembleSpace(p, bg)
	case SolverModifiedCholesky:
		return c.solveModifiedCholesky(p, bg)
	case SolverETKF:
		return c.solveETKF(p, bg)
	default:
		return nil, fmt.Errorf("enkf: unknown solver %d", c.Solver)
	}
}

// solveEnsembleSpace computes δxa at the centre point via
// δXa = U·Vᵀ·(V·Vᵀ/(N−1) + R)⁻¹·D/(N−1).
func (c Config) solveEnsembleSpace(p *localProblem, bg []float64) ([]float64, error) {
	n := p.members
	denom := float64(n - 1)
	// U = Xl − mean; we only need the centre row of U and V = H·U.
	u := p.xl.Clone()
	linalg.CenterRows(u)
	m := len(p.supports)
	v := linalg.NewMatrix(m, n)
	for i, sup := range p.supports {
		row := v.Row(i)
		for _, s := range sup {
			urow := u.Row(s.idx)
			for k := 0; k < n; k++ {
				row[k] += s.w * urow[k]
			}
		}
	}
	// A = V·Vᵀ/(N−1) + R
	a := linalg.AAT(v).Scale(1 / denom)
	if err := a.AddDiagonal(p.effVar); err != nil {
		return nil, err
	}
	l, err := linalg.Cholesky(a)
	if err != nil {
		return nil, fmt.Errorf("enkf: innovation covariance not SPD: %w", err)
	}
	// W = A⁻¹·D (m × N)
	w, err := linalg.CholSolveMatrix(l, p.innov)
	if err != nil {
		return nil, err
	}
	// δxa_centre = u_centre · (Vᵀ·W) / (N−1). Compute t = Vᵀ·W once
	// restricted to what we need: g[k2] = Σ_k u_c[k]·(VᵀW)[k][k2]
	//  = Σ_i (Σ_k u_c[k]·V[i][k]) · W[i][k2].
	uc := u.Row(p.center)
	out := make([]float64, n)
	copy(out, bg)
	for i := 0; i < m; i++ {
		s := linalg.Dot(uc, v.Row(i)) / denom
		wrow := w.Row(i)
		for k2 := 0; k2 < n; k2++ {
			out[k2] += s * wrow[k2]
		}
	}
	return out, nil
}

// solveModifiedCholesky computes Eq. (5) on the local box:
// δX = (B̂⁻¹ + HᵀR⁻¹H)⁻¹ · HᵀR⁻¹ · D, taking the centre row.
func (c Config) solveModifiedCholesky(p *localProblem, bg []float64) ([]float64, error) {
	n := p.members
	nb := p.xl.Rows
	u := p.xl.Clone()
	linalg.CenterRows(u)
	band := c.Band
	if band == 0 {
		// Default to coupling within one local-box row.
		band = 2*c.Radius.Xi + 1
	}
	if band >= nb {
		band = nb - 1
	}
	ridge := c.Ridge
	if ridge == 0 {
		ridge = 1e-6
	}
	m2, err := linalg.ModifiedCholeskyPrecision(u, band, ridge)
	if err != nil {
		return nil, fmt.Errorf("enkf: modified Cholesky estimate: %w", err)
	}
	// M = B̂⁻¹ + HᵀR⁻¹H: each observation contributes its weight outer
	// product w·wᵀ/R over its support rows.
	for i, sup := range p.supports {
		inv := 1 / p.effVar[i]
		for _, a := range sup {
			for _, b := range sup {
				m2.Data[a.idx*nb+b.idx] += a.w * b.w * inv
			}
		}
	}
	// C = HᵀR⁻¹·D (nb × N).
	cm := linalg.NewMatrix(nb, n)
	for i, sup := range p.supports {
		drow := p.innov.Row(i)
		inv := 1 / p.effVar[i]
		for _, a := range sup {
			crow := cm.Row(a.idx)
			for k := 0; k < n; k++ {
				crow[k] += a.w * inv * drow[k]
			}
		}
	}
	l, err := linalg.Cholesky(m2)
	if err != nil {
		return nil, fmt.Errorf("enkf: analysis matrix not SPD: %w", err)
	}
	dx, err := linalg.CholSolveMatrix(l, cm)
	if err != nil {
		return nil, err
	}
	out := make([]float64, n)
	centre := dx.Row(p.center)
	for k := 0; k < n; k++ {
		out[k] = bg[k] + centre[k]
	}
	return out, nil
}

// AnalyzeBox runs the per-point analysis over every point of target, using
// ensemble data in blk (which must contain the expansion of target) and the
// given observation candidates. The result is a block over target.
func (c Config) AnalyzeBox(blk *Block, candidates []obs.Observation, target grid.Box) (*Block, error) {
	out := NewBlock(target, c.N)
	for y := target.Y0; y < target.Y1; y++ {
		for x := target.X0; x < target.X1; x++ {
			xa, err := c.AnalyzePoint(blk, candidates, x, y)
			if err != nil {
				return nil, fmt.Errorf("enkf: point (%d,%d): %w", x, y, err)
			}
			for k := 0; k < c.N; k++ {
				out.Set(k, x, y, xa[k])
			}
		}
	}
	return out, nil
}

// SerialReference computes the full-grid analysis point by point: the
// ground truth every parallel implementation is checked against.
// background holds N row-major full fields.
func SerialReference(c Config, background [][]float64, net *obs.Network) ([][]float64, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if len(background) != c.N {
		return nil, fmt.Errorf("enkf: %d background members, config says %d", len(background), c.N)
	}
	full := grid.Box{X0: 0, X1: c.Mesh.NX, Y0: 0, Y1: c.Mesh.NY}
	blk := &Block{Box: full, Data: background}
	for k, f := range background {
		if len(f) != c.Mesh.Points() {
			return nil, fmt.Errorf("enkf: member %d has %d points, mesh has %d", k, len(f), c.Mesh.Points())
		}
	}
	out, err := c.AnalyzeBox(blk, net.Obs, full)
	if err != nil {
		return nil, err
	}
	return out.Data, nil
}

// GlobalAnalysis computes the unlocalized perturbed-observation analysis
// (Eq. 3) directly: Xa = Xb + U·Vᵀ·(V·Vᵀ/(N−1) + R)⁻¹·(Yˢ − H·Xb)/(N−1)
// over the whole mesh at once. Exponential in neither n nor m but dense, so
// only suitable for small meshes; used to validate the localized path.
func GlobalAnalysis(c Config, background [][]float64, net *obs.Network) ([][]float64, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	n := c.Mesh.Points()
	nEns := c.N
	xb := linalg.NewMatrix(n, nEns)
	for k, f := range background {
		if len(f) != n {
			return nil, fmt.Errorf("enkf: member %d has %d points, mesh has %d", k, len(f), n)
		}
		for i := 0; i < n; i++ {
			xb.Set(i, k, f[i])
		}
	}
	u := xb.Clone()
	linalg.CenterRows(u)
	m := net.Len()
	v := linalg.NewMatrix(m, nEns)
	innov := linalg.NewMatrix(m, nEns)
	effVar := make([]float64, m)
	for i, o := range net.Obs {
		vrow := v.Row(i)
		effVar[i] = o.Variance
		row := innov.Row(i)
		ys := obs.CenteredPerturbations(o, nEns, c.Seed)
		copy(row, ys)
		for _, s := range o.Support() {
			idx := c.Mesh.Index(s.X, s.Y)
			for k := 0; k < nEns; k++ {
				vrow[k] += s.W * u.At(idx, k)
				row[k] -= s.W * xb.At(idx, k)
			}
		}
	}
	denom := float64(nEns - 1)
	a := linalg.AAT(v).Scale(1 / denom)
	if err := a.AddDiagonal(effVar); err != nil {
		return nil, err
	}
	l, err := linalg.Cholesky(a)
	if err != nil {
		return nil, err
	}
	w, err := linalg.CholSolveMatrix(l, innov)
	if err != nil {
		return nil, err
	}
	// δXa = U·(Vᵀ·W)/(N−1)
	vtw, err := linalg.MatMul(v.T(), w)
	if err != nil {
		return nil, err
	}
	dxa, err := linalg.MatMul(u, vtw)
	if err != nil {
		return nil, err
	}
	dxa.Scale(1 / denom)
	out := make([][]float64, nEns)
	for k := 0; k < nEns; k++ {
		out[k] = make([]float64, n)
		for i := 0; i < n; i++ {
			out[k][i] = xb.At(i, k) + dxa.At(i, k)
		}
	}
	return out, nil
}

// Assemble merges analysis blocks over disjoint boxes into n full
// row-major fields over the mesh. Every mesh point must be covered exactly
// once.
func Assemble(m grid.Mesh, n int, blocks []*Block) ([][]float64, error) {
	out := make([][]float64, n)
	for k := range out {
		out[k] = make([]float64, m.Points())
	}
	covered := make([]bool, m.Points())
	for _, b := range blocks {
		if b.Members() != n {
			return nil, fmt.Errorf("enkf: block over %v has %d members, want %d", b.Box, b.Members(), n)
		}
		for y := b.Box.Y0; y < b.Box.Y1; y++ {
			for x := b.Box.X0; x < b.Box.X1; x++ {
				idx := m.Index(x, y)
				if covered[idx] {
					return nil, fmt.Errorf("enkf: point (%d,%d) covered twice", x, y)
				}
				covered[idx] = true
				for k := 0; k < n; k++ {
					out[k][idx] = b.At(k, x, y)
				}
			}
		}
	}
	for idx, c := range covered {
		if !c {
			x, y := m.Coords(idx)
			return nil, fmt.Errorf("enkf: point (%d,%d) not covered", x, y)
		}
	}
	return out, nil
}

// EnsembleMean returns the point-wise mean field of an ensemble of
// row-major fields.
func EnsembleMean(fields [][]float64) []float64 {
	if len(fields) == 0 {
		return nil
	}
	out := make([]float64, len(fields[0]))
	for _, f := range fields {
		for i, v := range f {
			out[i] += v
		}
	}
	inv := 1 / float64(len(fields))
	for i := range out {
		out[i] *= inv
	}
	return out
}

// RMSE returns the root-mean-square error between a field and the truth.
func RMSE(field, truth []float64) float64 {
	if len(field) != len(truth) || len(field) == 0 {
		return math.NaN()
	}
	var s float64
	for i := range field {
		d := field[i] - truth[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(field)))
}

// MaxAbsDiffFields returns the largest |a−b| across two ensembles of
// fields; used by integration tests comparing implementations.
func MaxAbsDiffFields(a, b [][]float64) float64 {
	if len(a) != len(b) {
		return math.Inf(1)
	}
	var m float64
	for k := range a {
		if len(a[k]) != len(b[k]) {
			return math.Inf(1)
		}
		for i := range a[k] {
			d := math.Abs(a[k][i] - b[k][i])
			if d > m {
				m = d
			}
		}
	}
	return m
}
