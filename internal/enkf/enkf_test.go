package enkf

import (
	"math"
	"testing"

	"senkf/internal/grid"
	"senkf/internal/obs"
	"senkf/internal/workload"
)

// smallProblem builds a tiny assimilation problem used across tests.
func smallProblem(t *testing.T, solver Solver) (Config, [][]float64, *obs.Network, []float64) {
	t.Helper()
	p := workload.TestScale
	m, err := p.Mesh()
	if err != nil {
		t.Fatal(err)
	}
	truth := workload.Truth(m, workload.DefaultFieldSpec, p.Seed)
	bg, err := workload.Ensemble(m, truth, p.Members, p.Spread, p.Seed)
	if err != nil {
		t.Fatal(err)
	}
	net, err := obs.StridedNetwork(m, truth, p.ObsStride, p.ObsStride, p.ObsVar, p.Seed)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Mesh: m, Radius: p.Radius(), N: p.Members, Seed: p.Seed, Solver: solver,
	}
	return cfg, bg, net, truth
}

func TestConfigValidate(t *testing.T) {
	m, _ := grid.NewMesh(4, 4)
	good := Config{Mesh: m, Radius: grid.Radius{Xi: 1, Eta: 1}, N: 4}
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := []Config{
		{Mesh: grid.Mesh{}, N: 4},
		{Mesh: m, N: 1},
		{Mesh: m, N: 4, Radius: grid.Radius{Xi: -1}},
		{Mesh: m, N: 4, Solver: Solver(9)},
		{Mesh: m, N: 4, Band: -1},
		{Mesh: m, N: 4, Ridge: -1},
		{Mesh: m, N: 4, TaperLength: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestBlockAccessors(t *testing.T) {
	b := NewBlock(grid.Box{X0: 2, X1: 5, Y0: 1, Y1: 4}, 3)
	if b.Members() != 3 {
		t.Fatalf("Members = %d", b.Members())
	}
	b.Set(1, 3, 2, 7.5)
	if b.At(1, 3, 2) != 7.5 {
		t.Error("Set/At round trip failed")
	}
	if b.At(0, 3, 2) != 0 {
		t.Error("other member affected")
	}
}

func TestSubBlock(t *testing.T) {
	outer := grid.Box{X0: 0, X1: 6, Y0: 0, Y1: 6}
	b := NewBlock(outer, 2)
	for y := 0; y < 6; y++ {
		for x := 0; x < 6; x++ {
			b.Set(0, x, y, float64(10*x+y))
		}
	}
	sb := grid.Box{X0: 2, X1: 5, Y0: 1, Y1: 4}
	sub, err := b.SubBlock(sb)
	if err != nil {
		t.Fatal(err)
	}
	for y := sb.Y0; y < sb.Y1; y++ {
		for x := sb.X0; x < sb.X1; x++ {
			if sub.At(0, x, y) != b.At(0, x, y) {
				t.Fatalf("sub-block mismatch at (%d,%d)", x, y)
			}
		}
	}
	if _, err := b.SubBlock(grid.Box{X0: 4, X1: 8, Y0: 0, Y1: 2}); err == nil {
		t.Error("expected containment error")
	}
}

func TestNoObservationsKeepsBackground(t *testing.T) {
	cfg, bg, _, _ := smallProblem(t, SolverEnsembleSpace)
	full := grid.Box{X0: 0, X1: cfg.Mesh.NX, Y0: 0, Y1: cfg.Mesh.NY}
	blk := &Block{Box: full, Data: bg}
	xa, err := cfg.AnalyzePoint(blk, nil, 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	for k := range xa {
		if xa[k] != bg[k][cfg.Mesh.Index(5, 5)] {
			t.Fatalf("member %d changed without observations", k)
		}
	}
}

func TestAnalysisReducesRMSE(t *testing.T) {
	for _, solver := range []Solver{SolverEnsembleSpace, SolverModifiedCholesky} {
		cfg, bg, net, truth := smallProblem(t, solver)
		xa, err := SerialReference(cfg, bg, net)
		if err != nil {
			t.Fatalf("%v: %v", solver, err)
		}
		before := RMSE(EnsembleMean(bg), truth)
		after := RMSE(EnsembleMean(xa), truth)
		if !(after < before) {
			t.Errorf("%v: analysis did not reduce RMSE: before %g after %g", solver, before, after)
		}
		t.Logf("%v: RMSE %g -> %g", solver, before, after)
	}
}

func TestTightObservationsPullAnalysisToObservedValues(t *testing.T) {
	// With tiny observation error, the analysis mean at observed points
	// should be very close to the observed values.
	p := workload.TestScale
	m, _ := grid.NewMesh(p.NX, p.NY)
	truth := workload.Truth(m, workload.DefaultFieldSpec, 3)
	bg, err := workload.Ensemble(m, truth, 16, 1.0, 3)
	if err != nil {
		t.Fatal(err)
	}
	net, err := obs.StridedNetwork(m, truth, 4, 4, 1e-8, 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Mesh: m, Radius: grid.Radius{Xi: 2, Eta: 2}, N: 16, Seed: 3}
	xa, err := SerialReference(cfg, bg, net)
	if err != nil {
		t.Fatal(err)
	}
	mean := EnsembleMean(xa)
	for _, o := range net.Obs {
		got := mean[m.Index(o.X, o.Y)]
		if math.Abs(got-o.Value) > 1e-3 {
			t.Fatalf("analysis at observed point (%d,%d) = %g, obs = %g", o.X, o.Y, got, o.Value)
		}
	}
}

func TestLocalizedMatchesGlobalWhenBoxCoversMesh(t *testing.T) {
	// When the local box covers the entire mesh for every point, the
	// per-point localized ensemble-space analysis must coincide with the
	// global formula (Eq. 3).
	m, _ := grid.NewMesh(8, 6)
	truth := workload.Truth(m, workload.DefaultFieldSpec, 9)
	bg, err := workload.Ensemble(m, truth, 10, 0.5, 9)
	if err != nil {
		t.Fatal(err)
	}
	net, err := obs.StridedNetwork(m, truth, 3, 2, 0.1, 9)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Mesh: m, Radius: grid.Radius{Xi: m.NX, Eta: m.NY}, // box always covers mesh
		N: 10, Seed: 9,
	}
	local, err := SerialReference(cfg, bg, net)
	if err != nil {
		t.Fatal(err)
	}
	global, err := GlobalAnalysis(cfg, bg, net)
	if err != nil {
		t.Fatal(err)
	}
	if d := MaxAbsDiffFields(local, global); d > 1e-8 {
		t.Errorf("localized (full box) differs from global analysis by %g", d)
	}
}

func TestAnalyzeBoxMatchesPointwise(t *testing.T) {
	cfg, bg, net, _ := smallProblem(t, SolverEnsembleSpace)
	full := grid.Box{X0: 0, X1: cfg.Mesh.NX, Y0: 0, Y1: cfg.Mesh.NY}
	blk := &Block{Box: full, Data: bg}
	target := grid.Box{X0: 4, X1: 8, Y0: 3, Y1: 6}
	out, err := cfg.AnalyzeBox(blk, net.Obs, target)
	if err != nil {
		t.Fatal(err)
	}
	for y := target.Y0; y < target.Y1; y++ {
		for x := target.X0; x < target.X1; x++ {
			xa, err := cfg.AnalyzePoint(blk, net.Obs, x, y)
			if err != nil {
				t.Fatal(err)
			}
			for k := 0; k < cfg.N; k++ {
				if out.At(k, x, y) != xa[k] {
					t.Fatalf("AnalyzeBox differs from AnalyzePoint at (%d,%d) member %d", x, y, k)
				}
			}
		}
	}
}

func TestExpansionDataSufficesForSubDomainAnalysis(t *testing.T) {
	// The analysis on a sub-domain computed from only its expansion data
	// must equal the analysis computed from the full field — the
	// domain-localization property everything else builds on.
	cfg, bg, net, _ := smallProblem(t, SolverEnsembleSpace)
	dec, err := grid.NewDecomposition(cfg.Mesh, 4, 2, cfg.Radius)
	if err != nil {
		t.Fatal(err)
	}
	full := grid.Box{X0: 0, X1: cfg.Mesh.NX, Y0: 0, Y1: cfg.Mesh.NY}
	fullBlk := &Block{Box: full, Data: bg}
	for j := 0; j < dec.NSdy; j++ {
		for i := 0; i < dec.NSdx; i++ {
			sd := dec.SubDomain(i, j)
			exp := dec.Expansion(i, j)
			expBlk, err := fullBlk.SubBlock(exp)
			if err != nil {
				t.Fatal(err)
			}
			fromExp, err := cfg.AnalyzeBox(expBlk, net.InBox(exp), sd)
			if err != nil {
				t.Fatal(err)
			}
			fromFull, err := cfg.AnalyzeBox(fullBlk, net.Obs, sd)
			if err != nil {
				t.Fatal(err)
			}
			for k := 0; k < cfg.N; k++ {
				for idx := range fromExp.Data[k] {
					if fromExp.Data[k][idx] != fromFull.Data[k][idx] {
						t.Fatalf("sub-domain (%d,%d): expansion analysis differs from full-field analysis", i, j)
					}
				}
			}
		}
	}
}

func TestTaperedAnalysisStillReducesRMSE(t *testing.T) {
	cfg, bg, net, truth := smallProblem(t, SolverEnsembleSpace)
	cfg.TaperLength = 1.0
	xa, err := SerialReference(cfg, bg, net)
	if err != nil {
		t.Fatal(err)
	}
	before := RMSE(EnsembleMean(bg), truth)
	after := RMSE(EnsembleMean(xa), truth)
	if !(after < before) {
		t.Errorf("tapered analysis did not reduce RMSE: %g -> %g", before, after)
	}
}

func TestTaperWeights(t *testing.T) {
	cfg := Config{Radius: grid.Radius{Xi: 2, Eta: 2}, TaperLength: 1}
	if w := cfg.taper(5, 5, 5, 5); w != 1 {
		t.Errorf("taper at zero distance = %g, want 1", w)
	}
	w1 := cfg.taper(5, 5, 6, 5)
	w2 := cfg.taper(5, 5, 7, 5)
	if !(w1 > w2) {
		t.Errorf("taper not decreasing: %g then %g", w1, w2)
	}
	cfg.TaperLength = 0
	if w := cfg.taper(5, 5, 7, 7); w != 1 {
		t.Errorf("cut-off taper = %g, want 1", w)
	}
}

func TestSolverString(t *testing.T) {
	if SolverEnsembleSpace.String() != "ensemble-space" {
		t.Error("SolverEnsembleSpace string")
	}
	if SolverModifiedCholesky.String() != "modified-cholesky" {
		t.Error("SolverModifiedCholesky string")
	}
	if Solver(9).String() == "" {
		t.Error("unknown solver string empty")
	}
}

func TestSerialReferenceValidations(t *testing.T) {
	cfg, bg, net, _ := smallProblem(t, SolverEnsembleSpace)
	if _, err := SerialReference(cfg, bg[:3], net); err == nil {
		t.Error("expected member-count error")
	}
	short := make([][]float64, cfg.N)
	for k := range short {
		short[k] = make([]float64, 5)
	}
	if _, err := SerialReference(cfg, short, net); err == nil {
		t.Error("expected field-length error")
	}
}

func TestAnalyzePointOutsideBlockFails(t *testing.T) {
	cfg, bg, net, _ := smallProblem(t, SolverEnsembleSpace)
	blk := &Block{Box: grid.Box{X0: 0, X1: 6, Y0: 0, Y1: 6}, Data: nil}
	_ = bg
	if _, err := cfg.AnalyzePoint(blk, net.Obs, 10, 10); err == nil {
		t.Error("expected local-box containment error")
	}
}

func TestRMSEAndMean(t *testing.T) {
	mean := EnsembleMean([][]float64{{1, 2}, {3, 4}})
	if mean[0] != 2 || mean[1] != 3 {
		t.Errorf("mean = %v", mean)
	}
	if r := RMSE([]float64{3, 4}, []float64{0, 0}); math.Abs(r-math.Sqrt(12.5)) > 1e-12 {
		t.Errorf("RMSE = %g", r)
	}
	if !math.IsNaN(RMSE([]float64{1}, []float64{1, 2})) {
		t.Error("RMSE of mismatched lengths should be NaN")
	}
	if EnsembleMean(nil) != nil {
		t.Error("mean of empty ensemble should be nil")
	}
	if MaxAbsDiffFields([][]float64{{1}}, [][]float64{{1}, {2}}) != math.Inf(1) {
		t.Error("MaxAbsDiffFields shape mismatch should be +Inf")
	}
}

func TestInflationIncreasesAnalysisSpread(t *testing.T) {
	cfg, bg, net, _ := smallProblem(t, SolverEnsembleSpace)
	base, err := SerialReference(cfg, bg, net)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Inflation = 1.3
	inflated, err := SerialReference(cfg, bg, net)
	if err != nil {
		t.Fatal(err)
	}
	spread := func(fields [][]float64) float64 {
		mean := EnsembleMean(fields)
		var s float64
		for _, f := range fields {
			for i, v := range f {
				d := v - mean[i]
				s += d * d
			}
		}
		return s
	}
	if !(spread(inflated) > spread(base)) {
		t.Errorf("inflation did not increase analysis spread: %g vs %g", spread(inflated), spread(base))
	}
}

func TestInflationOneIsIdentity(t *testing.T) {
	cfg, bg, net, _ := smallProblem(t, SolverEnsembleSpace)
	base, err := SerialReference(cfg, bg, net)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Inflation = 1.0
	same, err := SerialReference(cfg, bg, net)
	if err != nil {
		t.Fatal(err)
	}
	if d := MaxAbsDiffFields(base, same); d != 0 {
		t.Errorf("inflation factor 1 changed the analysis by %g", d)
	}
}

func TestInflationValidation(t *testing.T) {
	cfg, _, _, _ := smallProblem(t, SolverEnsembleSpace)
	cfg.Inflation = -0.5
	if err := cfg.Validate(); err == nil {
		t.Error("negative inflation accepted")
	}
}

func TestInflationPreservesExpansionEquivalence(t *testing.T) {
	// Inflation is applied per local box, so the expansion-data analysis
	// must still equal the full-field analysis — the property the parallel
	// implementations rely on.
	cfg, bg, net, _ := smallProblem(t, SolverEnsembleSpace)
	cfg.Inflation = 1.2
	dec, err := grid.NewDecomposition(cfg.Mesh, 4, 2, cfg.Radius)
	if err != nil {
		t.Fatal(err)
	}
	full := grid.Box{X0: 0, X1: cfg.Mesh.NX, Y0: 0, Y1: cfg.Mesh.NY}
	fullBlk := &Block{Box: full, Data: bg}
	sd := dec.SubDomain(1, 1)
	exp := dec.Expansion(1, 1)
	expBlk, err := fullBlk.SubBlock(exp)
	if err != nil {
		t.Fatal(err)
	}
	fromExp, err := cfg.AnalyzeBox(expBlk, net.InBox(exp), sd)
	if err != nil {
		t.Fatal(err)
	}
	fromFull, err := cfg.AnalyzeBox(fullBlk, net.Obs, sd)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < cfg.N; k++ {
		for i := range fromExp.Data[k] {
			if fromExp.Data[k][i] != fromFull.Data[k][i] {
				t.Fatal("inflated expansion analysis differs from full-field analysis")
			}
		}
	}
}

func TestOffGridObservationsReduceRMSE(t *testing.T) {
	p := workload.TestScale
	m, _ := grid.NewMesh(p.NX, p.NY)
	truth := workload.Truth(m, workload.DefaultFieldSpec, p.Seed)
	bg, err := workload.Ensemble(m, truth, p.Members, p.Spread, p.Seed)
	if err != nil {
		t.Fatal(err)
	}
	net, err := obs.RandomOffGridNetwork(m, truth, 80, 0.01, p.Seed)
	if err != nil {
		t.Fatal(err)
	}
	for _, solver := range []Solver{SolverEnsembleSpace, SolverModifiedCholesky} {
		cfg := Config{Mesh: m, Radius: p.Radius(), N: p.Members, Seed: p.Seed, Solver: solver}
		xa, err := SerialReference(cfg, bg, net)
		if err != nil {
			t.Fatalf("%v: %v", solver, err)
		}
		before := RMSE(EnsembleMean(bg), truth)
		after := RMSE(EnsembleMean(xa), truth)
		if !(after < before) {
			t.Errorf("%v: off-grid analysis did not reduce RMSE: %g -> %g", solver, before, after)
		}
	}
}

func TestOffGridExpansionEquivalence(t *testing.T) {
	// The expansion-sufficiency property must hold with bilinear H: an
	// observation participates in a point's analysis iff its full support
	// is inside the local box, which is inside the expansion.
	p := workload.TestScale
	m, _ := grid.NewMesh(p.NX, p.NY)
	truth := workload.Truth(m, workload.DefaultFieldSpec, p.Seed)
	bg, err := workload.Ensemble(m, truth, p.Members, p.Spread, p.Seed)
	if err != nil {
		t.Fatal(err)
	}
	net, err := obs.RandomOffGridNetwork(m, truth, 60, 0.01, p.Seed)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Mesh: m, Radius: p.Radius(), N: p.Members, Seed: p.Seed}
	dec, err := grid.NewDecomposition(m, 4, 2, cfg.Radius)
	if err != nil {
		t.Fatal(err)
	}
	full := grid.Box{X0: 0, X1: m.NX, Y0: 0, Y1: m.NY}
	fullBlk := &Block{Box: full, Data: bg}
	for j := 0; j < dec.NSdy; j++ {
		for i := 0; i < dec.NSdx; i++ {
			sd := dec.SubDomain(i, j)
			exp := dec.Expansion(i, j)
			expBlk, err := fullBlk.SubBlock(exp)
			if err != nil {
				t.Fatal(err)
			}
			fromExp, err := cfg.AnalyzeBox(expBlk, net.InBox(exp), sd)
			if err != nil {
				t.Fatal(err)
			}
			fromFull, err := cfg.AnalyzeBox(fullBlk, net.Obs, sd)
			if err != nil {
				t.Fatal(err)
			}
			for k := 0; k < cfg.N; k++ {
				for idx := range fromExp.Data[k] {
					if fromExp.Data[k][idx] != fromFull.Data[k][idx] {
						t.Fatalf("sub-domain (%d,%d): off-grid expansion analysis differs", i, j)
					}
				}
			}
		}
	}
}

func TestTightOffGridObservationsMatchInterpolation(t *testing.T) {
	// With near-zero observation error, H applied to the analysis mean
	// approaches the observed values.
	p := workload.TestScale
	m, _ := grid.NewMesh(p.NX, p.NY)
	truth := workload.Truth(m, workload.DefaultFieldSpec, 4)
	bg, err := workload.Ensemble(m, truth, 20, 1.5, 4)
	if err != nil {
		t.Fatal(err)
	}
	net, err := obs.RandomOffGridNetwork(m, truth, 40, 1e-8, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Mesh: m, Radius: grid.Radius{Xi: 3, Eta: 3}, N: 20, Seed: 4}
	xa, err := SerialReference(cfg, bg, net)
	if err != nil {
		t.Fatal(err)
	}
	mean := EnsembleMean(xa)
	// Exact agreement is not expected: each support point is analysed with
	// its own local box, so nearby observations can enter one support
	// point's update and not another's. The fit must still be far tighter
	// than the background error (~0.1-0.2 here).
	for _, o := range net.Obs {
		got := o.InterpolateField(m, mean)
		if math.Abs(got-o.Value) > 5e-2 {
			t.Fatalf("H·mean at (%d+%g, %d+%g) = %g, obs = %g",
				o.X, o.OffsetX, o.Y, o.OffsetY, got, o.Value)
		}
	}
}
