package enkf

import (
	"fmt"
	"math"

	"senkf/internal/linalg"
)

// solveETKF computes the deterministic ensemble transform analysis at the
// centre point — the LETKF family of the paper's ref [25] (Ott et al.), a
// widely used alternative to the perturbed-observation update:
//
//	Ã   = (N−1)·I + Vᵀ·R⁻¹·V            (ensemble-space analysis precision)
//	w̄   = Ã⁻¹·Vᵀ·R⁻¹·(y − H·x̄ᵇ)          (mean weight vector)
//	W   = ((N−1)·Ã⁻¹)^{1/2}              (symmetric square root transform)
//	xᵃ_k = x̄ᵇ + u·w̄ + u·W_{·,k}
//
// with V = H·U the observation-space deviations. No observation
// perturbations are used, so the analysis is deterministic given the
// background and the observations; the symmetric square root preserves the
// zero-sum of deviations (1 is an eigenvector of Ã because V·1 = 0).
func (c Config) solveETKF(p *localProblem, bg []float64) ([]float64, error) {
	n := p.members
	denom := float64(n - 1)
	u := p.xl.Clone()
	linalg.CenterRows(u)
	m := len(p.supports)

	// V = H·U and the mean innovation d = y − H·x̄ᵇ, computed from the raw
	// observed values: the ETKF uses no observation perturbations.
	v := linalg.NewMatrix(m, n)
	d := make([]float64, m)
	for i, sup := range p.supports {
		row := v.Row(i)
		for _, s := range sup {
			urow := u.Row(s.idx)
			for k := 0; k < n; k++ {
				row[k] += s.w * urow[k]
			}
		}
		var hxbMean float64
		for k := 0; k < n; k++ {
			hxbMean += p.hRow(i, k)
		}
		d[i] = p.values[i] - hxbMean/float64(n)
	}

	// Ã = (N−1)I + Vᵀ R⁻¹ V.
	at := linalg.NewMatrix(n, n)
	for k := 0; k < n; k++ {
		at.Set(k, k, denom)
	}
	for i := 0; i < m; i++ {
		inv := 1 / p.effVar[i]
		row := v.Row(i)
		for a := 0; a < n; a++ {
			va := inv * row[a]
			if va == 0 {
				continue
			}
			arow := at.Row(a)
			for b := a; b < n; b++ {
				arow[b] += va * row[b]
			}
		}
	}
	for a := 0; a < n; a++ {
		for b := 0; b < a; b++ {
			at.Set(a, b, at.At(b, a))
		}
	}

	// rhs = Vᵀ R⁻¹ d; w̄ = Ã⁻¹ rhs (Cholesky — Ã is SPD by construction).
	rhs := make([]float64, n)
	for i := 0; i < m; i++ {
		s := d[i] / p.effVar[i]
		row := v.Row(i)
		for k := 0; k < n; k++ {
			rhs[k] += s * row[k]
		}
	}
	wbar, err := linalg.Solve(at, rhs)
	if err != nil {
		return nil, fmt.Errorf("enkf: ETKF ensemble-space system: %w", err)
	}

	// W = ((N−1)·Ã⁻¹)^{1/2} via the eigendecomposition of Ã.
	w, err := linalg.SymmetricFunc(at, func(lambda float64) (float64, error) {
		if lambda <= 0 {
			return 0, fmt.Errorf("non-positive eigenvalue %g", lambda)
		}
		return math.Sqrt(denom / lambda), nil
	})
	if err != nil {
		return nil, fmt.Errorf("enkf: ETKF transform: %w", err)
	}

	// xᵃ_k = x̄ᵇ + u_c·w̄ + u_c·W_{·,k} at the centre point.
	uc := u.Row(p.center)
	var xbar float64
	for k := 0; k < n; k++ {
		xbar += p.xl.At(p.center, k)
	}
	xbar /= float64(n)
	meanInc := linalg.Dot(uc, wbar)
	out := make([]float64, n)
	for k := 0; k < n; k++ {
		var dev float64
		for j := 0; j < n; j++ {
			dev += uc[j] * w.At(j, k)
		}
		out[k] = xbar + meanInc + dev
	}
	return out, nil
}
