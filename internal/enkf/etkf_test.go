package enkf

import (
	"math"
	"testing"

	"senkf/internal/grid"
	"senkf/internal/obs"
	"senkf/internal/workload"
)

func TestETKFReducesRMSE(t *testing.T) {
	cfg, bg, net, truth := smallProblem(t, SolverETKF)
	xa, err := SerialReference(cfg, bg, net)
	if err != nil {
		t.Fatal(err)
	}
	before := RMSE(EnsembleMean(bg), truth)
	after := RMSE(EnsembleMean(xa), truth)
	if !(after < before) {
		t.Errorf("ETKF did not reduce RMSE: %g -> %g", before, after)
	}
	t.Logf("ETKF RMSE %g -> %g", before, after)
}

func TestETKFMeanMatchesPerturbedObsMean(t *testing.T) {
	// With centred observation perturbations, the perturbed-observation
	// analysis mean equals the deterministic (ETKF) analysis mean exactly:
	// both are x̄ᵇ + K·(y − H·x̄ᵇ) with the same sample-covariance gain.
	cfg, bg, net, _ := smallProblem(t, SolverEnsembleSpace)
	perturbed, err := SerialReference(cfg, bg, net)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Solver = SolverETKF
	etkf, err := SerialReference(cfg, bg, net)
	if err != nil {
		t.Fatal(err)
	}
	pm := EnsembleMean(perturbed)
	em := EnsembleMean(etkf)
	for i := range pm {
		if math.Abs(pm[i]-em[i]) > 1e-9 {
			t.Fatalf("means differ at %d: perturbed %g vs ETKF %g", i, pm[i], em[i])
		}
	}
}

func TestETKFDeviationsSumToZero(t *testing.T) {
	// The symmetric square root transform preserves the zero-sum of
	// ensemble deviations: the analysis mean is the average of members.
	cfg, bg, net, _ := smallProblem(t, SolverETKF)
	full := grid.Box{X0: 0, X1: cfg.Mesh.NX, Y0: 0, Y1: cfg.Mesh.NY}
	blk := &Block{Box: full, Data: bg}
	xa, err := cfg.AnalyzePoint(blk, net.Obs, 6, 5)
	if err != nil {
		t.Fatal(err)
	}
	var mean float64
	for _, v := range xa {
		mean += v
	}
	mean /= float64(len(xa))
	var devSum float64
	for _, v := range xa {
		devSum += v - mean
	}
	if math.Abs(devSum) > 1e-9 {
		t.Errorf("analysis deviations sum to %g", devSum)
	}
}

func TestETKFShrinksSpreadAtObservedPoints(t *testing.T) {
	// Assimilation reduces ensemble variance where observations act.
	cfg, bg, net, _ := smallProblem(t, SolverETKF)
	full := grid.Box{X0: 0, X1: cfg.Mesh.NX, Y0: 0, Y1: cfg.Mesh.NY}
	blk := &Block{Box: full, Data: bg}
	variance := func(vals []float64) float64 {
		var m float64
		for _, v := range vals {
			m += v
		}
		m /= float64(len(vals))
		var s float64
		for _, v := range vals {
			s += (v - m) * (v - m)
		}
		return s / float64(len(vals)-1)
	}
	o := net.Obs[len(net.Obs)/2]
	bgVals := make([]float64, cfg.N)
	for k := 0; k < cfg.N; k++ {
		bgVals[k] = blk.At(k, o.X, o.Y)
	}
	xa, err := cfg.AnalyzePoint(blk, net.Obs, o.X, o.Y)
	if err != nil {
		t.Fatal(err)
	}
	if !(variance(xa) < variance(bgVals)) {
		t.Errorf("ETKF did not shrink variance at observed point: %g -> %g",
			variance(bgVals), variance(xa))
	}
}

func TestETKFDeterministicNoPerturbationSeedDependence(t *testing.T) {
	// The ETKF uses no observation perturbations, so two different
	// perturbation seeds give the identical analysis (unlike the
	// perturbed-observation solvers).
	cfg, bg, net, _ := smallProblem(t, SolverETKF)
	a, err := SerialReference(cfg, bg, net)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = cfg.Seed + 999
	b, err := SerialReference(cfg, bg, net)
	if err != nil {
		t.Fatal(err)
	}
	if d := MaxAbsDiffFields(a, b); d != 0 {
		t.Errorf("ETKF depends on the perturbation seed (diff %g)", d)
	}
	// Sanity: the perturbed-observation solver DOES depend on the seed.
	cfg.Solver = SolverEnsembleSpace
	c1, err := SerialReference(cfg, bg, net)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = cfg.Seed + 999
	c2, err := SerialReference(cfg, bg, net)
	if err != nil {
		t.Fatal(err)
	}
	if d := MaxAbsDiffFields(c1, c2); d == 0 {
		t.Error("perturbed-observation analysis unexpectedly seed-independent")
	}
}

func TestETKFExpansionEquivalence(t *testing.T) {
	cfg, bg, net, _ := smallProblem(t, SolverETKF)
	dec, err := grid.NewDecomposition(cfg.Mesh, 4, 2, cfg.Radius)
	if err != nil {
		t.Fatal(err)
	}
	full := grid.Box{X0: 0, X1: cfg.Mesh.NX, Y0: 0, Y1: cfg.Mesh.NY}
	fullBlk := &Block{Box: full, Data: bg}
	sd := dec.SubDomain(2, 1)
	exp := dec.Expansion(2, 1)
	expBlk, err := fullBlk.SubBlock(exp)
	if err != nil {
		t.Fatal(err)
	}
	fromExp, err := cfg.AnalyzeBox(expBlk, net.InBox(exp), sd)
	if err != nil {
		t.Fatal(err)
	}
	fromFull, err := cfg.AnalyzeBox(fullBlk, net.Obs, sd)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < cfg.N; k++ {
		for i := range fromExp.Data[k] {
			if fromExp.Data[k][i] != fromFull.Data[k][i] {
				t.Fatal("ETKF expansion analysis differs from full-field analysis")
			}
		}
	}
}

func TestETKFWithOffGridObservations(t *testing.T) {
	p := workload.TestScale
	m, _ := grid.NewMesh(p.NX, p.NY)
	truth := workload.Truth(m, workload.DefaultFieldSpec, p.Seed)
	bg, err := workload.Ensemble(m, truth, p.Members, p.Spread, p.Seed)
	if err != nil {
		t.Fatal(err)
	}
	net, err := obs.RandomOffGridNetwork(m, truth, 70, 0.01, p.Seed)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Mesh: m, Radius: p.Radius(), N: p.Members, Seed: p.Seed, Solver: SolverETKF}
	xa, err := SerialReference(cfg, bg, net)
	if err != nil {
		t.Fatal(err)
	}
	before := RMSE(EnsembleMean(bg), truth)
	after := RMSE(EnsembleMean(xa), truth)
	if !(after < before) {
		t.Errorf("ETKF with off-grid obs did not reduce RMSE: %g -> %g", before, after)
	}
}

func TestETKFNoObservationsKeepsBackground(t *testing.T) {
	cfg, bg, _, _ := smallProblem(t, SolverETKF)
	full := grid.Box{X0: 0, X1: cfg.Mesh.NX, Y0: 0, Y1: cfg.Mesh.NY}
	blk := &Block{Box: full, Data: bg}
	xa, err := cfg.AnalyzePoint(blk, nil, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	for k := range xa {
		if xa[k] != bg[k][cfg.Mesh.Index(3, 3)] {
			t.Fatal("ETKF changed the background without observations")
		}
	}
}
