// Package grid implements the 2-dimensional latitude–longitude mesh used by
// the ensemble Kalman filter, together with the geometric machinery the
// S-EnKF paper builds on: local influence boxes derived from a radius of
// influence r (§2.2), non-overlapping domain decomposition into
// n_sdx × n_sdy sub-domains, sub-domain expansions D̄ (sub-domain plus the
// halo needed for local analysis), and the L-layer splitting of each
// sub-domain that enables the multi-stage computation of §4.2.
//
// Conventions. A mesh has n_x points along the longitude (x) direction and
// n_y points along the latitude (y) direction. A model state is stored
// row-major with latitude rows: index(x, y) = y*n_x + x. A "bar" is a
// contiguous range of full latitude rows (one seek on disk); a "block" is a
// rectangle strided across rows.
package grid

import (
	"errors"
	"fmt"
)

// Mesh describes the global latitude–longitude mesh.
type Mesh struct {
	NX int // points along longitude (columns)
	NY int // points along latitude (rows)
}

// NewMesh validates and returns a mesh with nx × ny grid points.
func NewMesh(nx, ny int) (Mesh, error) {
	if nx <= 0 || ny <= 0 {
		return Mesh{}, fmt.Errorf("grid: mesh dimensions must be positive, got %d x %d", nx, ny)
	}
	return Mesh{NX: nx, NY: ny}, nil
}

// Points returns the total number of model components n = n_x · n_y.
func (m Mesh) Points() int { return m.NX * m.NY }

// Index returns the row-major linear index of grid point (x, y).
func (m Mesh) Index(x, y int) int { return y*m.NX + x }

// Coords inverts Index.
func (m Mesh) Coords(idx int) (x, y int) { return idx % m.NX, idx / m.NX }

// Contains reports whether (x, y) lies on the mesh.
func (m Mesh) Contains(x, y int) bool {
	return x >= 0 && x < m.NX && y >= 0 && y < m.NY
}

// Box is a half-open rectangle [X0, X1) × [Y0, Y1) of grid points.
type Box struct {
	X0, X1 int
	Y0, Y1 int
}

// Width returns the number of points along x.
func (b Box) Width() int { return b.X1 - b.X0 }

// Height returns the number of points along y.
func (b Box) Height() int { return b.Y1 - b.Y0 }

// Points returns the number of grid points inside the box.
func (b Box) Points() int { return b.Width() * b.Height() }

// Empty reports whether the box contains no points.
func (b Box) Empty() bool { return b.X1 <= b.X0 || b.Y1 <= b.Y0 }

// Contains reports whether (x, y) is inside the box.
func (b Box) Contains(x, y int) bool {
	return x >= b.X0 && x < b.X1 && y >= b.Y0 && y < b.Y1
}

// Intersect returns the intersection of two boxes (possibly empty).
func (b Box) Intersect(o Box) Box {
	r := Box{X0: max(b.X0, o.X0), X1: min(b.X1, o.X1), Y0: max(b.Y0, o.Y0), Y1: min(b.Y1, o.Y1)}
	if r.Empty() {
		return Box{}
	}
	return r
}

// Clamp clips the box to the mesh.
func (b Box) Clamp(m Mesh) Box {
	return b.Intersect(Box{X0: 0, X1: m.NX, Y0: 0, Y1: m.NY})
}

// Expand grows the box by xi points along x and eta points along y in both
// directions, clamped to the mesh. This is the expansion D̄ of §2.2.
func (b Box) Expand(m Mesh, xi, eta int) Box {
	return Box{X0: b.X0 - xi, X1: b.X1 + xi, Y0: b.Y0 - eta, Y1: b.Y1 + eta}.Clamp(m)
}

func (b Box) String() string {
	return fmt.Sprintf("[%d,%d)x[%d,%d)", b.X0, b.X1, b.Y0, b.Y1)
}

// Radius describes the influence scope of the domain localization: a local
// box of dimension (2ξ+1, 2η+1) containing the circle of radius r (§2.2).
// Xi and Eta may differ because the grid spacing differs along longitude and
// latitude.
type Radius struct {
	Xi  int // half-width of the local box along longitude
	Eta int // half-height of the local box along latitude
}

// NewRadius validates a localization radius.
func NewRadius(xi, eta int) (Radius, error) {
	if xi < 0 || eta < 0 {
		return Radius{}, fmt.Errorf("grid: localization half-widths must be non-negative, got xi=%d eta=%d", xi, eta)
	}
	return Radius{Xi: xi, Eta: eta}, nil
}

// LocalBox returns the local influence box for grid point (x, y), clamped to
// the mesh: the blue region of Figure 2(a).
func (r Radius) LocalBox(m Mesh, x, y int) Box {
	return Box{X0: x - r.Xi, X1: x + r.Xi + 1, Y0: y - r.Eta, Y1: y + r.Eta + 1}.Clamp(m)
}

// ErrIndivisible is returned when the mesh cannot be evenly decomposed.
var ErrIndivisible = errors.New("grid: mesh dimension is not a multiple of the sub-domain count")

// Decomposition is the non-overlapping split of the mesh into
// n_sdx × n_sdy sub-domains (§2.2). The paper requires n_x to be a multiple
// of n_sdx and n_y a multiple of n_sdy.
type Decomposition struct {
	Mesh Mesh
	NSdx int // sub-domains along longitude
	NSdy int // sub-domains along latitude
	R    Radius
}

// NewDecomposition validates divisibility and returns the decomposition.
func NewDecomposition(m Mesh, nsdx, nsdy int, r Radius) (Decomposition, error) {
	if nsdx <= 0 || nsdy <= 0 {
		return Decomposition{}, fmt.Errorf("grid: sub-domain counts must be positive, got %d x %d", nsdx, nsdy)
	}
	if m.NX%nsdx != 0 {
		return Decomposition{}, fmt.Errorf("%w: n_x=%d, n_sdx=%d", ErrIndivisible, m.NX, nsdx)
	}
	if m.NY%nsdy != 0 {
		return Decomposition{}, fmt.Errorf("%w: n_y=%d, n_sdy=%d", ErrIndivisible, m.NY, nsdy)
	}
	return Decomposition{Mesh: m, NSdx: nsdx, NSdy: nsdy, R: r}, nil
}

// SubDomains returns n_s = n_sdx · n_sdy.
func (d Decomposition) SubDomains() int { return d.NSdx * d.NSdy }

// PointsPerSubDomain returns n_sd = n / n_s.
func (d Decomposition) PointsPerSubDomain() int {
	return d.Mesh.Points() / d.SubDomains()
}

// SubWidth returns n_x / n_sdx.
func (d Decomposition) SubWidth() int { return d.Mesh.NX / d.NSdx }

// SubHeight returns n_y / n_sdy.
func (d Decomposition) SubHeight() int { return d.Mesh.NY / d.NSdy }

// SubDomain returns D_{i,j}: the sub-domain at column i (longitude,
// 0 ≤ i < n_sdx) and row j (latitude, 0 ≤ j < n_sdy).
func (d Decomposition) SubDomain(i, j int) Box {
	w, h := d.SubWidth(), d.SubHeight()
	return Box{X0: i * w, X1: (i + 1) * w, Y0: j * h, Y1: (j + 1) * h}
}

// Expansion returns D̄_{i,j}: the sub-domain expanded by (ξ, η), clamped to
// the mesh — all data needed for local assimilation at D_{i,j} (§2.2).
func (d Decomposition) Expansion(i, j int) Box {
	return d.SubDomain(i, j).Expand(d.Mesh, d.R.Xi, d.R.Eta)
}

// ExpansionUnclamped returns the paper's nominal expansion size
// n̄_sd = (n_x/n_sdx + 2ξ)(n_y/n_sdy + 2η) as used in the cost models; it
// ignores clamping at the mesh boundary.
func (d Decomposition) ExpansionUnclamped() (w, h int) {
	return d.SubWidth() + 2*d.R.Xi, d.SubHeight() + 2*d.R.Eta
}

// RankOf maps a sub-domain coordinate to its canonical rank
// (row-major over (j, i)).
func (d Decomposition) RankOf(i, j int) int { return j*d.NSdx + i }

// CoordsOf inverts RankOf.
func (d Decomposition) CoordsOf(rank int) (i, j int) {
	return rank % d.NSdx, rank / d.NSdx
}

// OwnerOf returns the sub-domain coordinate (i, j) owning grid point (x, y).
func (d Decomposition) OwnerOf(x, y int) (i, j int) {
	return x / d.SubWidth(), y / d.SubHeight()
}

// Layers splits sub-domain D_{i,j} into L latitude layers D'_{i,j,l}
// (§4.2): layer l covers the rows [Y0 + l·h/L, Y0 + (l+1)·h/L). The
// sub-domain height must be a multiple of L.
func (d Decomposition) Layers(i, j, L int) ([]Box, error) {
	if L <= 0 {
		return nil, fmt.Errorf("grid: layer count must be positive, got %d", L)
	}
	sd := d.SubDomain(i, j)
	if sd.Height()%L != 0 {
		return nil, fmt.Errorf("%w: sub-domain height %d, layers %d", ErrIndivisible, sd.Height(), L)
	}
	lh := sd.Height() / L
	layers := make([]Box, L)
	for l := 0; l < L; l++ {
		layers[l] = Box{X0: sd.X0, X1: sd.X1, Y0: sd.Y0 + l*lh, Y1: sd.Y0 + (l+1)*lh}
	}
	return layers, nil
}

// LayerExpansion returns the expansion of layer l of D_{i,j}: the data
// needed to run local analysis on exactly that layer (Figure 7).
func (d Decomposition) LayerExpansion(i, j, l, L int) (Box, error) {
	layers, err := d.Layers(i, j, L)
	if err != nil {
		return Box{}, err
	}
	return layers[l].Expand(d.Mesh, d.R.Xi, d.R.Eta), nil
}

// Bar returns the contiguous latitude bar assigned to I/O row index j under
// the bar-reading approach (§4.1.2): full rows [j·n_y/n_sdy, (j+1)·n_y/n_sdy).
func (d Decomposition) Bar(j int) Box {
	h := d.SubHeight()
	return Box{X0: 0, X1: d.Mesh.NX, Y0: j * h, Y1: (j + 1) * h}
}

// BarExpansion returns the bar expanded by η rows on each side (the small
// overlapped bars of §4.3 include halo rows so compute ranks receive full
// expansions).
func (d Decomposition) BarExpansion(j int) Box {
	return d.Bar(j).Expand(d.Mesh, 0, d.R.Eta)
}

// LayerBar returns the rows of stage l of I/O row j: the portion of bar j
// covering layer l of every sub-domain in row j, expanded by η (one of the
// n_sdy × L overlapping small bars of §4.3).
func (d Decomposition) LayerBar(j, l, L int) (Box, error) {
	if L <= 0 || d.SubHeight()%L != 0 {
		return Box{}, fmt.Errorf("%w: sub-domain height %d, layers %d", ErrIndivisible, d.SubHeight(), L)
	}
	lh := d.SubHeight() / L
	bar := d.Bar(j)
	b := Box{X0: 0, X1: d.Mesh.NX, Y0: bar.Y0 + l*lh, Y1: bar.Y0 + (l+1)*lh}
	return b.Expand(d.Mesh, 0, d.R.Eta), nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
