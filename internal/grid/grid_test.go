package grid

import (
	"testing"
	"testing/quick"
)

func mustMesh(t *testing.T, nx, ny int) Mesh {
	t.Helper()
	m, err := NewMesh(nx, ny)
	if err != nil {
		t.Fatalf("NewMesh(%d,%d): %v", nx, ny, err)
	}
	return m
}

func mustDecomp(t *testing.T, m Mesh, nsdx, nsdy int, r Radius) Decomposition {
	t.Helper()
	d, err := NewDecomposition(m, nsdx, nsdy, r)
	if err != nil {
		t.Fatalf("NewDecomposition: %v", err)
	}
	return d
}

func TestNewMeshRejectsNonPositive(t *testing.T) {
	for _, c := range [][2]int{{0, 5}, {5, 0}, {-1, 5}, {5, -2}} {
		if _, err := NewMesh(c[0], c[1]); err == nil {
			t.Errorf("NewMesh(%d,%d): expected error", c[0], c[1])
		}
	}
}

func TestIndexCoordsRoundTrip(t *testing.T) {
	m := mustMesh(t, 7, 5)
	for y := 0; y < m.NY; y++ {
		for x := 0; x < m.NX; x++ {
			idx := m.Index(x, y)
			gx, gy := m.Coords(idx)
			if gx != x || gy != y {
				t.Fatalf("round trip (%d,%d) -> %d -> (%d,%d)", x, y, idx, gx, gy)
			}
		}
	}
	if m.Points() != 35 {
		t.Errorf("Points = %d, want 35", m.Points())
	}
}

func TestIndexIsRowMajorContiguous(t *testing.T) {
	m := mustMesh(t, 9, 4)
	// Consecutive x in the same latitude row must be adjacent in memory:
	// this is what makes a "bar" (full rows) contiguous on disk.
	for y := 0; y < m.NY; y++ {
		for x := 0; x+1 < m.NX; x++ {
			if m.Index(x+1, y) != m.Index(x, y)+1 {
				t.Fatalf("row %d not contiguous at x=%d", y, x)
			}
		}
	}
}

func TestBoxBasics(t *testing.T) {
	b := Box{X0: 2, X1: 6, Y0: 1, Y1: 4}
	if b.Width() != 4 || b.Height() != 3 || b.Points() != 12 {
		t.Errorf("box geometry wrong: %+v", b)
	}
	if b.Empty() {
		t.Error("box should not be empty")
	}
	if !b.Contains(2, 1) || !b.Contains(5, 3) {
		t.Error("Contains misses corners")
	}
	if b.Contains(6, 1) || b.Contains(2, 4) {
		t.Error("Contains includes exclusive bounds")
	}
	if !(Box{X0: 3, X1: 3, Y0: 0, Y1: 2}).Empty() {
		t.Error("zero-width box should be empty")
	}
}

func TestBoxIntersect(t *testing.T) {
	a := Box{X0: 0, X1: 4, Y0: 0, Y1: 4}
	b := Box{X0: 2, X1: 6, Y0: 1, Y1: 3}
	got := a.Intersect(b)
	want := Box{X0: 2, X1: 4, Y0: 1, Y1: 3}
	if got != want {
		t.Errorf("Intersect = %v, want %v", got, want)
	}
	disjoint := a.Intersect(Box{X0: 10, X1: 12, Y0: 0, Y1: 1})
	if !disjoint.Empty() {
		t.Errorf("disjoint intersect should be empty, got %v", disjoint)
	}
}

func TestLocalBoxClampsAtBoundary(t *testing.T) {
	m := mustMesh(t, 10, 8)
	r := Radius{Xi: 4, Eta: 2}
	inner := r.LocalBox(m, 5, 4)
	if inner.Width() != 2*r.Xi+1 || inner.Height() != 2*r.Eta+1 {
		t.Errorf("interior local box %v should be (2ξ+1)x(2η+1)", inner)
	}
	corner := r.LocalBox(m, 0, 0)
	want := Box{X0: 0, X1: 5, Y0: 0, Y1: 3}
	if corner != want {
		t.Errorf("corner local box = %v, want %v", corner, want)
	}
}

func TestDecompositionDivisibility(t *testing.T) {
	m := mustMesh(t, 12, 6)
	if _, err := NewDecomposition(m, 5, 2, Radius{}); err == nil {
		t.Error("expected indivisible n_x error")
	}
	if _, err := NewDecomposition(m, 4, 4, Radius{}); err == nil {
		t.Error("expected indivisible n_y error")
	}
	d := mustDecomp(t, m, 4, 3, Radius{Xi: 1, Eta: 1})
	if d.SubDomains() != 12 || d.PointsPerSubDomain() != 6 {
		t.Errorf("decomposition counts wrong: %d sub-domains, %d points", d.SubDomains(), d.PointsPerSubDomain())
	}
}

func TestSubDomainsTileTheMesh(t *testing.T) {
	m := mustMesh(t, 12, 9)
	d := mustDecomp(t, m, 3, 3, Radius{Xi: 2, Eta: 1})
	seen := make([]int, m.Points())
	for j := 0; j < d.NSdy; j++ {
		for i := 0; i < d.NSdx; i++ {
			sd := d.SubDomain(i, j)
			for y := sd.Y0; y < sd.Y1; y++ {
				for x := sd.X0; x < sd.X1; x++ {
					seen[m.Index(x, y)]++
				}
			}
		}
	}
	for idx, c := range seen {
		if c != 1 {
			x, y := m.Coords(idx)
			t.Fatalf("point (%d,%d) covered %d times", x, y, c)
		}
	}
}

func TestExpansionContainsAllLocalBoxes(t *testing.T) {
	m := mustMesh(t, 20, 12)
	r := Radius{Xi: 3, Eta: 2}
	d := mustDecomp(t, m, 4, 3, r)
	for j := 0; j < d.NSdy; j++ {
		for i := 0; i < d.NSdx; i++ {
			sd := d.SubDomain(i, j)
			exp := d.Expansion(i, j)
			for y := sd.Y0; y < sd.Y1; y++ {
				for x := sd.X0; x < sd.X1; x++ {
					lb := r.LocalBox(m, x, y)
					if lb.Intersect(exp) != lb {
						t.Fatalf("local box %v of (%d,%d) not inside expansion %v", lb, x, y, exp)
					}
				}
			}
		}
	}
}

func TestRankOfRoundTrip(t *testing.T) {
	m := mustMesh(t, 12, 9)
	d := mustDecomp(t, m, 4, 3, Radius{})
	for j := 0; j < d.NSdy; j++ {
		for i := 0; i < d.NSdx; i++ {
			rank := d.RankOf(i, j)
			gi, gj := d.CoordsOf(rank)
			if gi != i || gj != j {
				t.Fatalf("rank round trip (%d,%d) -> %d -> (%d,%d)", i, j, rank, gi, gj)
			}
		}
	}
}

func TestOwnerOf(t *testing.T) {
	m := mustMesh(t, 12, 9)
	d := mustDecomp(t, m, 4, 3, Radius{})
	for y := 0; y < m.NY; y++ {
		for x := 0; x < m.NX; x++ {
			i, j := d.OwnerOf(x, y)
			if !d.SubDomain(i, j).Contains(x, y) {
				t.Fatalf("OwnerOf(%d,%d) = (%d,%d) but sub-domain %v does not contain it", x, y, i, j, d.SubDomain(i, j))
			}
		}
	}
}

func TestLayersPartitionSubDomain(t *testing.T) {
	m := mustMesh(t, 12, 12)
	d := mustDecomp(t, m, 3, 2, Radius{Xi: 1, Eta: 1})
	layers, err := d.Layers(1, 1, 3)
	if err != nil {
		t.Fatalf("Layers: %v", err)
	}
	sd := d.SubDomain(1, 1)
	total := 0
	prevY := sd.Y0
	for l, b := range layers {
		if b.X0 != sd.X0 || b.X1 != sd.X1 {
			t.Errorf("layer %d x-range %v differs from sub-domain %v", l, b, sd)
		}
		if b.Y0 != prevY {
			t.Errorf("layer %d not contiguous: Y0=%d want %d", l, b.Y0, prevY)
		}
		prevY = b.Y1
		total += b.Points()
	}
	if prevY != sd.Y1 || total != sd.Points() {
		t.Errorf("layers do not cover sub-domain: total=%d want %d", total, sd.Points())
	}
	if _, err := d.Layers(0, 0, 4); err == nil {
		t.Error("expected error for indivisible layer count")
	}
	if _, err := d.Layers(0, 0, 0); err == nil {
		t.Error("expected error for L=0")
	}
}

func TestLayerExpansionCoversLayerLocalBoxes(t *testing.T) {
	m := mustMesh(t, 16, 12)
	r := Radius{Xi: 2, Eta: 2}
	d := mustDecomp(t, m, 4, 2, r)
	const L = 3
	for j := 0; j < d.NSdy; j++ {
		for i := 0; i < d.NSdx; i++ {
			layers, err := d.Layers(i, j, L)
			if err != nil {
				t.Fatalf("Layers: %v", err)
			}
			for l, layer := range layers {
				exp, err := d.LayerExpansion(i, j, l, L)
				if err != nil {
					t.Fatalf("LayerExpansion: %v", err)
				}
				for y := layer.Y0; y < layer.Y1; y++ {
					for x := layer.X0; x < layer.X1; x++ {
						lb := r.LocalBox(m, x, y)
						if lb.Intersect(exp) != lb {
							t.Fatalf("layer %d point (%d,%d): local box %v outside layer expansion %v", l, x, y, lb, exp)
						}
					}
				}
			}
		}
	}
}

func TestBarsAreContiguousRowRanges(t *testing.T) {
	m := mustMesh(t, 30, 12)
	d := mustDecomp(t, m, 5, 4, Radius{Xi: 1, Eta: 1})
	prev := 0
	for j := 0; j < d.NSdy; j++ {
		b := d.Bar(j)
		if b.X0 != 0 || b.X1 != m.NX {
			t.Errorf("bar %d must span full rows, got %v", j, b)
		}
		if b.Y0 != prev {
			t.Errorf("bar %d not contiguous with previous: Y0=%d want %d", j, b.Y0, prev)
		}
		prev = b.Y1
	}
	if prev != m.NY {
		t.Errorf("bars do not cover mesh: end=%d want %d", prev, m.NY)
	}
}

func TestBarExpansionHasEtaHalo(t *testing.T) {
	m := mustMesh(t, 30, 12)
	d := mustDecomp(t, m, 5, 4, Radius{Xi: 2, Eta: 1})
	// Interior bar: halo on both sides.
	be := d.BarExpansion(1)
	b := d.Bar(1)
	if be.Y0 != b.Y0-1 || be.Y1 != b.Y1+1 {
		t.Errorf("interior bar expansion %v want halo of 1 around %v", be, b)
	}
	// Boundary bar: clamped.
	be0 := d.BarExpansion(0)
	if be0.Y0 != 0 {
		t.Errorf("boundary bar expansion should clamp to 0, got %v", be0)
	}
}

func TestLayerBarCoversLayerExpansionRows(t *testing.T) {
	m := mustMesh(t, 24, 12)
	r := Radius{Xi: 2, Eta: 2}
	d := mustDecomp(t, m, 4, 2, r)
	const L = 2
	for j := 0; j < d.NSdy; j++ {
		for l := 0; l < L; l++ {
			lb, err := d.LayerBar(j, l, L)
			if err != nil {
				t.Fatalf("LayerBar: %v", err)
			}
			for i := 0; i < d.NSdx; i++ {
				exp, err := d.LayerExpansion(i, j, l, L)
				if err != nil {
					t.Fatalf("LayerExpansion: %v", err)
				}
				if exp.Y0 < lb.Y0 || exp.Y1 > lb.Y1 {
					t.Fatalf("layer expansion rows %v outside layer bar %v", exp, lb)
				}
			}
		}
	}
}

func TestLayerBarsUnionCoversBarExpansion(t *testing.T) {
	m := mustMesh(t, 24, 24)
	d := mustDecomp(t, m, 4, 3, Radius{Xi: 1, Eta: 2})
	const L = 4
	for j := 0; j < d.NSdy; j++ {
		covered := map[int]bool{}
		for l := 0; l < L; l++ {
			lb, err := d.LayerBar(j, l, L)
			if err != nil {
				t.Fatalf("LayerBar: %v", err)
			}
			for y := lb.Y0; y < lb.Y1; y++ {
				covered[y] = true
			}
		}
		be := d.BarExpansion(j)
		for y := be.Y0; y < be.Y1; y++ {
			if !covered[y] {
				t.Fatalf("row %d of bar expansion %v not covered by layer bars", y, be)
			}
		}
	}
}

func TestQuickDecompositionInvariants(t *testing.T) {
	f := func(a, b, c, d uint8) bool {
		nsdx := int(a%6) + 1
		nsdy := int(b%6) + 1
		subw := int(c%5) + 1
		subh := int(d%5) + 1
		m, err := NewMesh(nsdx*subw, nsdy*subh)
		if err != nil {
			return false
		}
		dec, err := NewDecomposition(m, nsdx, nsdy, Radius{Xi: 1, Eta: 1})
		if err != nil {
			return false
		}
		// Every point is owned by exactly the sub-domain OwnerOf says,
		// and ranks are a bijection.
		total := 0
		for j := 0; j < nsdy; j++ {
			for i := 0; i < nsdx; i++ {
				total += dec.SubDomain(i, j).Points()
			}
		}
		return total == m.Points()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickExpandClampNeverLeavesMesh(t *testing.T) {
	f := func(x0, w, y0, h, xi, eta uint8) bool {
		m, _ := NewMesh(32, 32)
		b := Box{
			X0: int(x0 % 32), Y0: int(y0 % 32),
		}
		b.X1 = b.X0 + int(w%8) + 1
		b.Y1 = b.Y0 + int(h%8) + 1
		e := b.Expand(m, int(xi%6), int(eta%6))
		return e.X0 >= 0 && e.Y0 >= 0 && e.X1 <= m.NX && e.Y1 <= m.NY && !e.Empty()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
