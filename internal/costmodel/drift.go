// Model-vs-measured drift detection: feed the per-stage T_read / T_comm /
// T_comp measured on a run back into the Eq. 7–10 predictions, report the
// signed relative error of every term, rescale the Table-1 coefficients so
// the model reproduces the measurements, and check whether the auto-tuner
// would have chosen a different (n_sdx, n_sdy, L, n_cg) under the measured
// coefficients. Drift is the trust metric of the whole co-design: the
// tuner's choices are only as good as the model terms they optimize.

package costmodel

import (
	"fmt"
	"io"
	"math"
)

// Measured carries the per-stage phase times observed on a run, in the
// units of the model terms: the mean time one I/O processor spent reading
// (T_read) and communicating (T_comm) per stage, and the mean time one
// compute processor spent on one layer's local analysis (T_comp).
type Measured struct {
	TRead float64 `json:"t_read"`
	TComm float64 `json:"t_comm"`
	TComp float64 `json:"t_comp"`
}

// TermDrift compares one model term against its measurement.
type TermDrift struct {
	Term      string  `json:"term"`
	Predicted float64 `json:"predicted"`
	Measured  float64 `json:"measured"`
	// RelErr is the signed relative error (measured − predicted) /
	// predicted: positive when the machine is slower than the model says.
	RelErr float64 `json:"rel_err"`
}

// DriftReport is the outcome of one model-vs-measured comparison.
type DriftReport struct {
	Choice Choice      `json:"choice"`
	Terms  []TermDrift `json:"terms"` // t_read, t_comm, t_comp, t_total

	// Calibrated is Params with Theta, A/B and C rescaled so each model
	// term reproduces its measurement exactly (terms with a zero
	// prediction or measurement keep their coefficients).
	Calibrated Params `json:"calibrated"`

	// Retuned is the auto-tuner's choice under the calibrated coefficients
	// with the original budget; only set by Retune.
	Retuned *Tuned `json:"retuned,omitempty"`
	// WouldDiffer reports whether Retuned picks a different
	// (n_sdx, n_sdy, L, n_cg) than the original choice — the signal that
	// measured drift has grown large enough to change tuning decisions.
	WouldDiffer bool `json:"would_differ"`
}

// MaxAbsRelErr returns the largest |RelErr| across the terms.
func (d DriftReport) MaxAbsRelErr() float64 {
	var m float64
	for _, t := range d.Terms {
		if a := math.Abs(t.RelErr); a > m {
			m = a
		}
	}
	return m
}

func signedRelErr(measured, predicted float64) float64 {
	if predicted == 0 {
		if measured == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return (measured - predicted) / predicted
}

// Drift compares the Eq. 7–10 predictions for choice ch against the
// measured per-stage times and returns the per-term report with
// calibrated coefficients.
func (p Params) Drift(ch Choice, m Measured) DriftReport {
	pr, pc, pp := p.TRead(ch), p.TComm(ch), p.TComp(ch)
	d := DriftReport{
		Choice: ch,
		Terms: []TermDrift{
			{Term: "t_read", Predicted: pr, Measured: m.TRead, RelErr: signedRelErr(m.TRead, pr)},
			{Term: "t_comm", Predicted: pc, Measured: m.TComm, RelErr: signedRelErr(m.TComm, pc)},
			{Term: "t_comp", Predicted: pp, Measured: m.TComp, RelErr: signedRelErr(m.TComp, pp)},
		},
		Calibrated: p,
	}
	// The measured total follows Eq. 10's structure: first-stage read+comm
	// plus L stages of computation.
	predTotal := p.TTotal(ch)
	measTotal := m.TRead + m.TComm + float64(ch.L)*m.TComp
	d.Terms = append(d.Terms, TermDrift{
		Term: "t_total", Predicted: predTotal, Measured: measTotal,
		RelErr: signedRelErr(measTotal, predTotal),
	})
	// Each term is linear in its coefficients, so scaling by the
	// measured/predicted ratio makes the calibrated model exact at ch:
	// Theta carries T_read; A and B jointly carry T_comm (one scalar
	// measurement cannot separate them, so both scale); C carries T_comp.
	if pr > 0 && m.TRead > 0 {
		d.Calibrated.Theta *= m.TRead / pr
	}
	if pc > 0 && m.TComm > 0 {
		s := m.TComm / pc
		d.Calibrated.A *= s
		d.Calibrated.B *= s
	}
	if pp > 0 && m.TComp > 0 {
		d.Calibrated.C *= m.TComp / pp
	}
	return d
}

// Retune re-runs the auto-tuner (Algorithm 2, constrained) under the
// calibrated coefficients with the original processor budget and records
// whether the economic choice moves. np ≤ 0 defaults to the cost of the
// report's own choice (C1 + C2).
func (d *DriftReport) Retune(np int, eps float64, tc TuneConstraints) {
	if np <= 0 {
		np = d.Choice.C1() + d.Choice.C2()
	}
	t, ok := d.Calibrated.AutoTuneConstrained(np, eps, tc)
	if !ok {
		return
	}
	d.Retuned = &t
	d.WouldDiffer = t.Choice != d.Choice
}

// WriteTable renders the drift report as an aligned text table.
func (d DriftReport) WriteTable(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "model drift at %v:\n", d.Choice); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "  %-8s | %12s | %12s | %9s\n", "term", "predicted", "measured", "rel err"); err != nil {
		return err
	}
	for _, t := range d.Terms {
		if _, err := fmt.Fprintf(w, "  %-8s | %11.6gs | %11.6gs | %+8.2f%%\n",
			t.Term, t.Predicted, t.Measured, 100*t.RelErr); err != nil {
			return err
		}
	}
	if d.Retuned != nil {
		verdict := "tuner choice unchanged under measured coefficients"
		if d.WouldDiffer {
			verdict = fmt.Sprintf("tuner would choose %v instead (C1=%d C2=%d, model %.4gs)",
				d.Retuned.Choice, d.Retuned.C1, d.Retuned.C2, d.Retuned.TTotal)
		}
		if _, err := fmt.Fprintf(w, "  %s\n", verdict); err != nil {
			return err
		}
	}
	return nil
}
