// Tuner explainability: the full search table Algorithms 1 and 2 walk —
// every (C1, min T1) curve per compute cost C2, the Eq. 13 earnings-rate
// series r_m between consecutive curve points, and the Eq. 14 stopping
// point — rendered as text so a tuning decision can be audited instead of
// trusted. `senkf-tune -explain` prints this; the drift report's Retune
// uses the same machinery under calibrated coefficients.

package costmodel

import (
	"fmt"
	"io"
	"strings"
)

// CurveExplain is the recorded Algorithm 1 outcome for one compute cost:
// the strictly-improving T1 curve, the earnings rates between consecutive
// points, and where condition (14) stopped.
type CurveExplain struct {
	C2     int          `json:"c2"`
	Points []CurvePoint `json:"points"`
	// Rates[m] is r_m = EarningsRate(Points[m], Points[m+1]); its length
	// is len(Points)-1.
	Rates []float64 `json:"rates,omitempty"`
	// PickIndex is the point condition (14) selected.
	PickIndex int `json:"pick_index"`
	// StoppedEarly is true when the walk stopped at the first r_m < ε, and
	// false when it exhausted the curve without the rate dropping below ε.
	StoppedEarly bool `json:"stopped_early"`
	// TTotal is Eq. (10) at the picked point.
	TTotal float64 `json:"t_total"`
}

// Pick returns the selected curve point.
func (c CurveExplain) Pick() CurvePoint { return c.Points[c.PickIndex] }

// SearchTrace is the complete Algorithm 2 search record.
type SearchTrace struct {
	NP          int             `json:"np"`
	Eps         float64         `json:"eps"`
	Constraints TuneConstraints `json:"constraints"`
	// Curves in Algorithm 2's visit order, one per feasible compute cost.
	Curves []CurveExplain `json:"curves"`
	// BestIndex indexes the winning curve (-1 when none was feasible).
	BestIndex int `json:"best_index"`
}

// Best returns the winning curve record.
func (st *SearchTrace) Best() (CurveExplain, bool) {
	if st == nil || st.BestIndex < 0 || st.BestIndex >= len(st.Curves) {
		return CurveExplain{}, false
	}
	return st.Curves[st.BestIndex], true
}

// AutoTuneExplained is AutoTuneConstrained with the full search trace
// attached: identical Tuned result, plus every curve Algorithm 2 visited.
func (p Params) AutoTuneExplained(np int, eps float64, tc TuneConstraints) (Tuned, *SearchTrace, bool) {
	return p.autoTuneConstrained(np, eps, tc, true)
}

// WriteTable renders the search trace: a per-C2 summary of Algorithm 2's
// sweep, then the winning C2's full Algorithm 1 curve with the r_m series
// and the ε-stopping point marked.
func (st *SearchTrace) WriteTable(w io.Writer) error {
	if st == nil {
		return nil
	}
	if _, err := fmt.Fprintf(w, "auto-tuner search (np=%d, eps=%g):\n", st.NP, st.Eps); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%6s | %6s | %8s | %10s | %12s | %s\n",
		"C2", "curve", "econ C1", "T1 (s)", "T_total (s)", "stop"); err != nil {
		return err
	}
	for i, c := range st.Curves {
		pick := c.Pick()
		stop := "curve exhausted"
		if c.StoppedEarly {
			stop = fmt.Sprintf("r_%d < eps", c.PickIndex)
		}
		mark := " "
		if i == st.BestIndex {
			mark = "*"
		}
		if _, err := fmt.Fprintf(w, "%s%5d | %6d | %8d | %10.4g | %12.4g | %s\n",
			mark, c.C2, len(c.Points), pick.C1, pick.T1, c.TTotal, stop); err != nil {
			return err
		}
	}
	best, ok := st.Best()
	if !ok {
		_, err := fmt.Fprintln(w, "no feasible configuration")
		return err
	}
	if _, err := fmt.Fprintf(w, "\nwinning curve (C2=%d), Algorithm 1 points and Eq. 13 earnings rates:\n", best.C2); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%4s | %6s | %10s | %-26s | %12s\n",
		"m", "C1", "T1 (s)", "choice", "r_m (s/proc)"); err != nil {
		return err
	}
	for m, pt := range best.Points {
		rate := ""
		if m < len(best.Rates) {
			rate = fmt.Sprintf("%12.4g", best.Rates[m])
		}
		mark := " "
		if m == best.PickIndex {
			mark = "*"
		}
		line := fmt.Sprintf("%s%3d | %6d | %10.4g | %-26v | %s", mark, m, pt.C1, pt.T1, pt.Choice, rate)
		if _, err := fmt.Fprintln(w, strings.TrimRight(line, " ")); err != nil {
			return err
		}
	}
	verdict := fmt.Sprintf("stopped at m=%d: first earnings rate below eps=%g", best.PickIndex, st.Eps)
	if !best.StoppedEarly {
		verdict = fmt.Sprintf("rate never dropped below eps=%g: kept the last point m=%d", st.Eps, best.PickIndex)
	}
	_, err := fmt.Fprintf(w, "%s — economic choice C1=%d, %v\n", verdict, best.Pick().C1, best.Pick().Choice)
	return err
}
