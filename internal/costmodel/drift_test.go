package costmodel

import (
	"math"
	"strings"
	"testing"
)

func driftParams() Params {
	return Params{
		N: 24, NX: 360, NY: 180,
		A: 2e-6, B: 2e-10, C: 2e-3,
		Theta: 0.5e-9, Xi: 8, Eta: 4, H: 240,
	}
}

func relNear(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*math.Max(1, math.Abs(b))
}

// Measurements equal to the predictions: zero drift everywhere, identical
// calibrated coefficients, and a retune that cannot move.
func TestDriftExactMeasurementsAreZero(t *testing.T) {
	p := driftParams()
	tc := TuneConstraints{MaxL: 6, MaxNCg: 6}
	tuned, ok := p.AutoTuneConstrained(180, 0.001, tc)
	if !ok {
		t.Fatal("auto-tune failed")
	}
	ch := tuned.Choice
	d := p.Drift(ch, Measured{TRead: p.TRead(ch), TComm: p.TComm(ch), TComp: p.TComp(ch)})
	if got := d.MaxAbsRelErr(); got > 1e-12 {
		t.Fatalf("MaxAbsRelErr = %g on exact measurements", got)
	}
	if d.Calibrated != p {
		t.Fatalf("calibration moved on exact measurements: %+v", d.Calibrated)
	}
	d.Retune(180, 0.001, tc)
	if d.Retuned == nil {
		t.Fatal("Retune found nothing")
	}
	if d.WouldDiffer {
		t.Fatalf("WouldDiffer on a zero-drift report: retuned %v vs %v", d.Retuned.Choice, ch)
	}
}

// Scaled measurements: the per-term errors are the scales, and the
// calibrated model reproduces the measurements exactly.
func TestDriftCalibration(t *testing.T) {
	p := driftParams()
	ch := Choice{NSdx: 18, NSdy: 9, L: 5, NCg: 2}
	if !p.Feasible(ch) {
		t.Fatal("choice infeasible")
	}
	m := Measured{TRead: 1.5 * p.TRead(ch), TComm: 0.5 * p.TComm(ch), TComp: 2 * p.TComp(ch)}
	d := p.Drift(ch, m)
	for _, term := range d.Terms {
		var want float64
		switch term.Term {
		case "t_read":
			want = 0.5
		case "t_comm":
			want = -0.5
		case "t_comp":
			want = 1.0
		case "t_total":
			continue // a mix of the three
		}
		if !relNear(term.RelErr, want, 1e-9) {
			t.Errorf("%s RelErr = %g, want %g", term.Term, term.RelErr, want)
		}
	}
	c := d.Calibrated
	if !relNear(c.TRead(ch), m.TRead, 1e-12) ||
		!relNear(c.TComm(ch), m.TComm, 1e-12) ||
		!relNear(c.TComp(ch), m.TComp, 1e-12) {
		t.Fatalf("calibrated model does not reproduce measurements: read %g vs %g, comm %g vs %g, comp %g vs %g",
			c.TRead(ch), m.TRead, c.TComm(ch), m.TComm, c.TComp(ch), m.TComp)
	}
}

// Heavy read-cost drift flips the tuner's trade-off: with reading far more
// expensive than modelled, the calibrated retune must spend differently —
// the WouldDiffer signal.
func TestDriftRetuneWouldDiffer(t *testing.T) {
	p := driftParams()
	tc := TuneConstraints{MaxL: 6, MaxNCg: 6}
	tuned, ok := p.AutoTuneConstrained(180, 0.001, tc)
	if !ok {
		t.Fatal("auto-tune failed")
	}
	ch := tuned.Choice
	// 50x slower reading than the model claims.
	d := p.Drift(ch, Measured{TRead: 50 * p.TRead(ch), TComm: p.TComm(ch), TComp: p.TComp(ch)})
	d.Retune(180, 0.001, tc)
	if d.Retuned == nil {
		t.Fatal("Retune found nothing")
	}
	if !d.WouldDiffer {
		t.Fatalf("50x read drift did not change the tuner's choice (%v)", d.Retuned.Choice)
	}
}

func TestDriftZeroPrediction(t *testing.T) {
	p := driftParams()
	ch := Choice{NSdx: 18, NSdy: 9, L: 5, NCg: 2}
	d := Params{}.Drift(ch, Measured{TRead: 1})
	if !math.IsInf(d.Terms[0].RelErr, 1) {
		t.Errorf("measured-without-prediction RelErr = %g, want +Inf", d.Terms[0].RelErr)
	}
	// Zero measurement against a real prediction: -100%, not a panic.
	d = p.Drift(ch, Measured{})
	if !relNear(d.Terms[0].RelErr, -1, 1e-12) {
		t.Errorf("zero-measurement RelErr = %g, want -1", d.Terms[0].RelErr)
	}
	// And calibration must keep the original coefficients for those terms.
	if d.Calibrated != p {
		t.Errorf("zero measurements recalibrated the model: %+v", d.Calibrated)
	}
}

func TestDriftWriteTable(t *testing.T) {
	p := driftParams()
	ch := Choice{NSdx: 18, NSdy: 9, L: 5, NCg: 2}
	d := p.Drift(ch, Measured{TRead: 1.1 * p.TRead(ch), TComm: p.TComm(ch), TComp: p.TComp(ch)})
	d.Retune(180, 0.001, TuneConstraints{MaxL: 6, MaxNCg: 6})
	var sb strings.Builder
	if err := d.WriteTable(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"t_read", "t_comm", "t_comp", "t_total", "tuner"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}
