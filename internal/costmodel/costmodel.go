// Package costmodel implements §4.3 and §4.4 of the paper: the cost models
// of the multi-stage computation strategy (Eqs. 7–10 with the notation of
// Table 1), the optimization solver for fixed processor costs (Algorithm 1),
// the earnings-rate condition that picks the most economic I/O processor
// cost (Eqs. 13–14), and the full auto-tuning sweep (Algorithm 2).
//
// Implementation notes (documented deviations from the paper's pseudocode):
//
//   - The paper writes log(·) without a base; collective cost models in its
//     references use log₂. We use log₂(1 + x) so a single reader
//     (n_cg·n_sdy = 1) retains a non-zero read cost instead of the literal
//     formula's log(1) = 0, which would make the degenerate configuration
//     spuriously optimal in Algorithm 1.
//   - Algorithm 2's final comparison in the paper reads
//     "T_min < T_total" where it clearly intends to keep the smaller
//     T_total; we keep the minimum.
package costmodel

import (
	"fmt"
	"math"
)

// Params carries the Table 1 quantities.
type Params struct {
	N     int     // number of background ensemble members (files)
	NX    int     // grid points along longitude
	NY    int     // grid points along latitude
	A     float64 // startup time per message (s)
	B     float64 // transfer time per byte (s/B)
	C     float64 // computation cost of local analysis per grid point (s)
	Theta float64 // transfer time per byte from disk to memory (s/B)
	Xi    int     // radius of influence along longitude (ξ)
	Eta   int     // radius of influence along latitude (η)
	H     int     // volume of data per grid point per level (bytes)
	// Levels is the vertical level count the plan layer's Spec.Levels
	// mirrors. 0 means 1 (single-level). Levels scales the per-point byte
	// volume (h = Levels × H enters Eqs. 7–8) and the per-point analysis
	// work (Eq. 9 runs once per level) — the explicit factor the paper
	// folds into h, kept separate here so T_comp is priced honestly.
	Levels int
}

// LevelCount returns the effective level count (Levels, with 0 → 1).
func (p Params) LevelCount() int {
	if p.Levels <= 0 {
		return 1
	}
	return p.Levels
}

// BytesPerPoint is the total per-grid-point volume entering the I/O and
// communication terms: h bytes per level times the level count.
func (p Params) BytesPerPoint() float64 { return float64(p.H) * float64(p.LevelCount()) }

// Validate reports parameter errors.
func (p Params) Validate() error {
	if p.N < 1 || p.NX < 1 || p.NY < 1 || p.H < 1 {
		return fmt.Errorf("costmodel: non-positive problem size N=%d nx=%d ny=%d h=%d", p.N, p.NX, p.NY, p.H)
	}
	if p.Levels < 0 {
		return fmt.Errorf("costmodel: negative level count %d", p.Levels)
	}
	if p.A < 0 || p.B < 0 || p.C < 0 || p.Theta < 0 {
		return fmt.Errorf("costmodel: negative cost coefficients")
	}
	if p.Xi < 0 || p.Eta < 0 {
		return fmt.Errorf("costmodel: negative radius ξ=%d η=%d", p.Xi, p.Eta)
	}
	return nil
}

// Choice is a parameter assignment for the multi-stage strategy.
type Choice struct {
	NSdx int // sub-domains (compute processors) along longitude
	NSdy int // sub-domains along latitude
	L    int // layers per sub-domain
	NCg  int // concurrent I/O groups
}

// C1 returns the I/O processor cost n_cg·n_sdy.
func (c Choice) C1() int { return c.NCg * c.NSdy }

// C2 returns the compute processor cost n_sdx·n_sdy.
func (c Choice) C2() int { return c.NSdx * c.NSdy }

func (c Choice) String() string {
	return fmt.Sprintf("nsdx=%d nsdy=%d L=%d ncg=%d", c.NSdx, c.NSdy, c.L, c.NCg)
}

// Feasible reports whether the choice divides the problem as Algorithm 1
// requires: n_sdy | n_y, n_sdx | n_x, n_cg | N, and L | n_y/n_sdy.
func (p Params) Feasible(c Choice) bool {
	if c.NSdx < 1 || c.NSdy < 1 || c.L < 1 || c.NCg < 1 {
		return false
	}
	if p.NY%c.NSdy != 0 || p.NX%c.NSdx != 0 || p.N%c.NCg != 0 {
		return false
	}
	return (p.NY/c.NSdy)%c.L == 0
}

// log2p1 is the collective-depth factor log₂(1+x).
func log2p1(x float64) float64 { return math.Log2(1 + x) }

// TRead is Eq. (7): the cost of one stage of concurrent-group bar reading.
// Each of the n_sdy processors in each of the n_cg groups reads a small bar
// of (n_y/(n_sdy·L) + 2η)·n_x points from each of its N/n_cg files.
func (p Params) TRead(c Choice) float64 {
	rows := float64(p.NY)/(float64(c.NSdy)*float64(c.L)) + 2*float64(p.Eta)
	perFile := rows * float64(p.NX) * p.BytesPerPoint() * p.Theta
	return perFile * float64(p.N) / float64(c.NCg) * log2p1(float64(c.NCg*c.NSdy))
}

// TComm is Eq. (8): each I/O processor feeds n_sdx compute processors with
// block messages of (n_y/(n_sdy·L)+2η)·(n_x/n_sdx+2ξ)·N/n_cg points.
func (p Params) TComm(c Choice) float64 {
	rows := float64(p.NY)/(float64(c.NSdy)*float64(c.L)) + 2*float64(p.Eta)
	cols := float64(p.NX)/float64(c.NSdx) + 2*float64(p.Xi)
	bytes := rows * cols * float64(p.N) / float64(c.NCg) * p.BytesPerPoint()
	// Eq. (8)'s depth factor log(n_cg + 1) already includes the +1.
	return float64(c.NSdx) * math.Log2(float64(c.NCg)+1) * (p.A + p.B*bytes)
}

// TComp is Eq. (9): local analysis cost of one layer — run once per
// vertical level, so a multilevel configuration pays Levels × the
// single-level analysis (the engine's per-stage level loop).
func (p Params) TComp(c Choice) float64 {
	perLevel := p.C * (float64(p.NY) / (float64(c.NSdy) * float64(c.L))) * (float64(p.NX) / float64(c.NSdx))
	return perLevel * float64(p.LevelCount())
}

// T1 is the objective of optimization problem (11): T_read + T_comm, the
// non-overlappable first-stage acquisition cost.
func (p Params) T1(c Choice) float64 { return p.TRead(c) + p.TComm(c) }

// TTotal is Eq. (10): the first stage's read + communication plus L stages
// of computation (the remaining reads/communications overlap with compute).
func (p Params) TTotal(c Choice) float64 {
	return p.TRead(c) + p.TComm(c) + float64(c.L)*p.TComp(c)
}

// OptimizeT1 is Algorithm 1: for fixed costs C1 = n_cg·n_sdy and
// C2 = n_sdx·n_sdy it scans every feasible (n_sdx, n_sdy, L, n_cg) and
// returns the choice minimizing T1. ok is false when no feasible choice
// exists.
func (p Params) OptimizeT1(c1, c2 int) (best Choice, bestT1 float64, ok bool) {
	if c1 < 1 || c2 < 1 {
		return Choice{}, 0, false
	}
	for j := 1; j <= c1; j++ { // j = n_sdy
		if c1%j != 0 || c2%j != 0 || p.NY%j != 0 {
			continue
		}
		k := c1 / j // n_cg
		i := c2 / j // n_sdx
		if p.NX%i != 0 || p.N%k != 0 {
			continue
		}
		maxL := p.NY / j
		for l := 1; l <= maxL; l++ {
			if maxL%l != 0 {
				continue
			}
			ch := Choice{NSdx: i, NSdy: j, L: l, NCg: k}
			t := p.T1(ch)
			if !ok || t < bestT1 {
				ok = true
				bestT1 = t
				best = ch
			}
		}
	}
	return best, bestT1, ok
}

// CurvePoint is one point of the "minimal T1 as a function of C1" curve of
// Figure 12.
type CurvePoint struct {
	C1     int
	T1     float64
	Choice Choice
}

// T1Curve computes, for fixed C2, the minimal T1 at every feasible C1 in
// [1, maxC1], keeping only points that strictly improve on the previous
// minimum (as Algorithm 2's bookkeeping does): the curve is strictly
// decreasing in T1 and increasing in C1.
func (p Params) T1Curve(c2, maxC1 int) []CurvePoint {
	var curve []CurvePoint
	bestSoFar := math.Inf(1)
	for c1 := 1; c1 <= maxC1; c1++ {
		ch, t1, ok := p.OptimizeT1(c1, c2)
		if !ok {
			continue
		}
		if t1 < bestSoFar {
			bestSoFar = t1
			curve = append(curve, CurvePoint{C1: c1, T1: t1, Choice: ch})
		}
	}
	return curve
}

// EarningsRate is Eq. (13): the runtime gained per additional I/O processor
// between consecutive curve points.
func EarningsRate(a, b CurvePoint) float64 {
	return (a.T1 - b.T1) / float64(b.C1-a.C1)
}

// EconomicIndex applies the condition (14) and returns the index of the
// chosen curve point plus whether the walk stopped early (the first
// earnings rate below ε) or exhausted the curve. ok is false on an empty
// curve.
func EconomicIndex(curve []CurvePoint, eps float64) (idx int, stopped, ok bool) {
	if len(curve) == 0 {
		return 0, false, false
	}
	for m := 0; m+1 < len(curve); m++ {
		if EarningsRate(curve[m], curve[m+1]) < eps {
			return m, true, true
		}
	}
	return len(curve) - 1, false, true
}

// EconomicChoice applies the condition (14): walk the curve and stop at the
// first point whose earnings rate towards the next point drops below ε —
// "if more cost cannot provide significant benefit any more, choose the
// current cost". Returns the last point when the rate never drops below ε.
func EconomicChoice(curve []CurvePoint, eps float64) (CurvePoint, bool) {
	idx, _, ok := EconomicIndex(curve, eps)
	if !ok {
		return CurvePoint{}, false
	}
	return curve[idx], true
}

// Tuned is the auto-tuner's result.
type Tuned struct {
	Choice Choice
	C1     int // I/O processors
	C2     int // compute processors
	TTotal float64
}

// AutoTune is Algorithm 2: sweep the compute cost C2 from 1 to np, find the
// economic I/O cost C1 ≤ np − C2 for each, and return the configuration
// minimizing the total model time (10). ok is false when np admits no
// feasible configuration.
func (p Params) AutoTune(np int, eps float64) (Tuned, bool) {
	if err := p.Validate(); err != nil {
		return Tuned{}, false
	}
	var best Tuned
	found := false
	for c2 := 1; c2 < np; c2++ {
		curve := p.T1Curve(c2, np-c2)
		pt, ok := EconomicChoice(curve, eps)
		if !ok {
			continue
		}
		total := p.TTotal(pt.Choice)
		if !found || total < best.TTotal {
			found = true
			best = Tuned{Choice: pt.Choice, C1: pt.C1, C2: c2, TTotal: total}
		}
	}
	return best, found
}

// divisors returns the positive divisors of n in increasing order.
func divisors(n int) []int {
	var out []int
	for d := 1; d*d <= n; d++ {
		if n%d == 0 {
			out = append(out, d)
			if d != n/d {
				out = append(out, n/d)
			}
		}
	}
	sortInts(out)
	return out
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// TuneConstraints optionally bounds the auto-tuner's search space. The
// paper's Algorithm 2 searches unboundedly; in practice (and to keep
// discrete-event simulations of the tuned schedule tractable) it is useful
// to cap the layer count and group count. Zero values mean unbounded.
type TuneConstraints struct {
	MaxL   int
	MaxNCg int
}

func (tc TuneConstraints) allows(l, ncg int) bool {
	if tc.MaxL > 0 && l > tc.MaxL {
		return false
	}
	if tc.MaxNCg > 0 && ncg > tc.MaxNCg {
		return false
	}
	return true
}

// t1CurveFast computes the same strictly-improving (C1, min T1) curve as
// T1Curve but enumerates only feasible (n_sdy, n_cg, L) structures instead
// of scanning every integer C1 — equivalent output, polynomially cheaper.
// Used by AutoTuneFast at paper scale (np ≈ 12,000).
func (p Params) t1CurveFast(c2, maxC1 int) []CurvePoint {
	return p.T1CurveConstrained(c2, maxC1, TuneConstraints{})
}

// T1CurveConstrained is the fast T1 curve restricted to choices allowed by
// tc; with zero constraints it matches the literal T1Curve.
func (p Params) T1CurveConstrained(c2, maxC1 int, tc TuneConstraints) []CurvePoint {
	type bestAt struct {
		t1 float64
		ch Choice
		ok bool
	}
	best := map[int]*bestAt{}
	var c1s []int
	for _, nsdy := range divisors(p.NY) {
		if c2%nsdy != 0 {
			continue
		}
		nsdx := c2 / nsdy
		if p.NX%nsdx != 0 {
			continue
		}
		for _, ncg := range divisors(p.N) {
			c1 := ncg * nsdy
			if c1 > maxC1 {
				continue
			}
			for _, l := range divisors(p.NY / nsdy) {
				if !tc.allows(l, ncg) {
					continue
				}
				ch := Choice{NSdx: nsdx, NSdy: nsdy, L: l, NCg: ncg}
				t1 := p.T1(ch)
				b := best[c1]
				if b == nil {
					b = &bestAt{}
					best[c1] = b
					c1s = append(c1s, c1)
				}
				if !b.ok || t1 < b.t1 {
					b.ok = true
					b.t1 = t1
					b.ch = ch
				}
			}
		}
	}
	sortInts(c1s)
	var curve []CurvePoint
	bestSoFar := math.Inf(1)
	for _, c1 := range c1s {
		b := best[c1]
		if b.ok && b.t1 < bestSoFar {
			bestSoFar = b.t1
			curve = append(curve, CurvePoint{C1: c1, T1: b.t1, Choice: b.ch})
		}
	}
	return curve
}

// AutoTuneFast is Algorithm 2 with the search restructured around feasible
// divisor structures: identical results to AutoTune, but usable at the
// paper's processor counts. Only compute costs C2 with a feasible
// decomposition are visited (others contribute nothing in AutoTune either).
func (p Params) AutoTuneFast(np int, eps float64) (Tuned, bool) {
	return p.AutoTuneConstrained(np, eps, TuneConstraints{})
}

// AutoTuneConstrained is AutoTuneFast restricted to choices allowed by tc.
func (p Params) AutoTuneConstrained(np int, eps float64, tc TuneConstraints) (Tuned, bool) {
	t, _, ok := p.autoTuneConstrained(np, eps, tc, false)
	return t, ok
}

// autoTuneConstrained is the shared Algorithm 2 body. With record set it
// additionally returns the full search trace Algorithms 1–2 walked (every
// T1 curve, the Eq. 13 earnings-rate series, and the Eq. 14 stopping
// point per compute cost) — tuner explainability at zero cost to the
// plain path.
func (p Params) autoTuneConstrained(np int, eps float64, tc TuneConstraints, record bool) (Tuned, *SearchTrace, bool) {
	if err := p.Validate(); err != nil {
		return Tuned{}, nil, false
	}
	var st *SearchTrace
	if record {
		st = &SearchTrace{NP: np, Eps: eps, Constraints: tc, BestIndex: -1}
	}
	var best Tuned
	found := false
	seen := map[int]bool{}
	for _, nsdy := range divisors(p.NY) {
		for _, nsdx := range divisors(p.NX) {
			c2 := nsdx * nsdy
			if c2 >= np || seen[c2] {
				continue
			}
			seen[c2] = true
			curve := p.T1CurveConstrained(c2, np-c2, tc)
			idx, stopped, ok := EconomicIndex(curve, eps)
			if !ok {
				continue
			}
			pt := curve[idx]
			total := p.TTotal(pt.Choice)
			if st != nil {
				ce := CurveExplain{
					C2: c2, Points: curve, PickIndex: idx,
					StoppedEarly: stopped, TTotal: total,
				}
				for m := 0; m+1 < len(curve); m++ {
					ce.Rates = append(ce.Rates, EarningsRate(curve[m], curve[m+1]))
				}
				st.Curves = append(st.Curves, ce)
			}
			if !found || total < best.TTotal {
				found = true
				best = Tuned{Choice: pt.Choice, C1: pt.C1, C2: c2, TTotal: total}
				if st != nil {
					st.BestIndex = len(st.Curves) - 1
				}
			}
		}
	}
	return best, st, found
}

// BruteForceTune scans every feasible choice with C1 + C2 ≤ np and returns
// the one with minimal TTotal — the reference Algorithm 2 is tested
// against. Exponentially slower than AutoTune for large np; intended for
// tests with small problems.
func (p Params) BruteForceTune(np int) (Tuned, bool) {
	var best Tuned
	found := false
	for nsdy := 1; nsdy <= np && nsdy <= p.NY; nsdy++ {
		if p.NY%nsdy != 0 {
			continue
		}
		for nsdx := 1; nsdx*nsdy <= np && nsdx <= p.NX; nsdx++ {
			if p.NX%nsdx != 0 {
				continue
			}
			for ncg := 1; ncg <= p.N; ncg++ {
				if p.N%ncg != 0 {
					continue
				}
				c1, c2 := ncg*nsdy, nsdx*nsdy
				if c1+c2 > np {
					continue
				}
				maxL := p.NY / nsdy
				for l := 1; l <= maxL; l++ {
					if maxL%l != 0 {
						continue
					}
					ch := Choice{NSdx: nsdx, NSdy: nsdy, L: l, NCg: ncg}
					total := p.TTotal(ch)
					if !found || total < best.TTotal {
						found = true
						best = Tuned{Choice: ch, C1: c1, C2: c2, TTotal: total}
					}
				}
			}
		}
	}
	return best, found
}
