package costmodel

import (
	"math"
	"testing"
	"testing/quick"
)

// testParams is a small problem with paper-like cost structure.
func testParams() Params {
	return Params{
		N: 12, NX: 120, NY: 60,
		A: 2e-6, B: 2e-10, C: 5e-6, Theta: 5e-10,
		Xi: 4, Eta: 2, H: 8,
	}
}

func TestValidate(t *testing.T) {
	if err := testParams().Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
	bad := testParams()
	bad.N = 0
	if err := bad.Validate(); err == nil {
		t.Error("expected size error")
	}
	bad = testParams()
	bad.A = -1
	if err := bad.Validate(); err == nil {
		t.Error("expected coefficient error")
	}
	bad = testParams()
	bad.Xi = -1
	if err := bad.Validate(); err == nil {
		t.Error("expected radius error")
	}
}

func TestChoiceCosts(t *testing.T) {
	c := Choice{NSdx: 5, NSdy: 3, L: 2, NCg: 4}
	if c.C1() != 12 || c.C2() != 15 {
		t.Errorf("C1=%d C2=%d", c.C1(), c.C2())
	}
	if c.String() == "" {
		t.Error("empty String()")
	}
}

func TestFeasible(t *testing.T) {
	p := testParams()
	good := Choice{NSdx: 4, NSdy: 3, L: 5, NCg: 3}
	if !p.Feasible(good) {
		t.Errorf("choice %v should be feasible", good)
	}
	cases := []Choice{
		{NSdx: 0, NSdy: 1, L: 1, NCg: 1},
		{NSdx: 7, NSdy: 1, L: 1, NCg: 1}, // 120 % 7 != 0
		{NSdx: 4, NSdy: 7, L: 1, NCg: 1}, // 60 % 7 != 0
		{NSdx: 4, NSdy: 3, L: 7, NCg: 1}, // 20 % 7 != 0
		{NSdx: 4, NSdy: 3, L: 5, NCg: 5}, // 12 % 5 != 0
	}
	for _, c := range cases {
		if p.Feasible(c) {
			t.Errorf("choice %v should be infeasible", c)
		}
	}
}

func TestCostFormulasAgainstHandComputation(t *testing.T) {
	p := testParams()
	c := Choice{NSdx: 4, NSdy: 3, L: 2, NCg: 2}
	rows := 60.0/(3*2) + 2*2            // ny/(nsdy*L) + 2*eta = 14
	perFile := rows * 120 * 8 * p.Theta // bytes * theta
	wantRead := perFile * 12 / 2 * math.Log2(1+6)
	if got := p.TRead(c); math.Abs(got-wantRead) > 1e-15 {
		t.Errorf("TRead = %g, want %g", got, wantRead)
	}
	cols := 120.0/4 + 2*4 // 38
	bytes := rows * cols * 12 / 2 * 8
	wantComm := 4 * math.Log2(3) * (p.A + p.B*bytes)
	if got := p.TComm(c); math.Abs(got-wantComm) > 1e-15 {
		t.Errorf("TComm = %g, want %g", got, wantComm)
	}
	wantComp := p.C * (60.0 / (3 * 2)) * (120.0 / 4)
	if got := p.TComp(c); math.Abs(got-wantComp) > 1e-15 {
		t.Errorf("TComp = %g, want %g", got, wantComp)
	}
	if got := p.TTotal(c); math.Abs(got-(wantRead+wantComm+2*wantComp)) > 1e-15 {
		t.Errorf("TTotal = %g", got)
	}
	if got := p.T1(c); math.Abs(got-(wantRead+wantComm)) > 1e-15 {
		t.Errorf("T1 = %g", got)
	}
}

func TestOptimizeT1MatchesExhaustiveScan(t *testing.T) {
	p := testParams()
	for _, cs := range [][2]int{{6, 12}, {4, 8}, {12, 24}, {3, 15}} {
		c1, c2 := cs[0], cs[1]
		got, gotT1, ok := p.OptimizeT1(c1, c2)
		// Exhaustive reference scan.
		bestT1 := math.Inf(1)
		found := false
		for nsdy := 1; nsdy <= c1; nsdy++ {
			if c1%nsdy != 0 || c2%nsdy != 0 {
				continue
			}
			ch := Choice{NSdy: nsdy, NCg: c1 / nsdy, NSdx: c2 / nsdy}
			for l := 1; nsdy <= p.NY && l <= p.NY/nsdy; l++ {
				ch.L = l
				if !p.Feasible(ch) {
					continue
				}
				found = true
				if t1 := p.T1(ch); t1 < bestT1 {
					bestT1 = t1
				}
			}
		}
		if ok != found {
			t.Fatalf("C1=%d C2=%d: ok=%v found=%v", c1, c2, ok, found)
		}
		if !ok {
			continue
		}
		if math.Abs(gotT1-bestT1) > 1e-12 {
			t.Errorf("C1=%d C2=%d: OptimizeT1=%g, exhaustive=%g (choice %v)", c1, c2, gotT1, bestT1, got)
		}
		if !p.Feasible(got) {
			t.Errorf("C1=%d C2=%d: returned infeasible choice %v", c1, c2, got)
		}
		if got.C1() != c1 || got.C2() != c2 {
			t.Errorf("C1=%d C2=%d: choice %v has C1=%d C2=%d", c1, c2, got, got.C1(), got.C2())
		}
	}
}

func TestOptimizeT1Infeasible(t *testing.T) {
	p := testParams()
	if _, _, ok := p.OptimizeT1(0, 4); ok {
		t.Error("C1=0 should be infeasible")
	}
	// C1 = 7: n_sdy must divide 7 and 60 -> n_sdy=1,7. 7∤60 so n_sdy=1,
	// n_cg=7 but 12%7 != 0 -> infeasible.
	if _, _, ok := p.OptimizeT1(7, 4); ok {
		t.Error("C1=7 should be infeasible for N=12")
	}
}

func TestT1CurveMonotone(t *testing.T) {
	p := testParams()
	curve := p.T1Curve(12, 36)
	if len(curve) < 3 {
		t.Fatalf("curve too short: %d points", len(curve))
	}
	for i := 1; i < len(curve); i++ {
		if curve[i].C1 <= curve[i-1].C1 {
			t.Errorf("curve C1 not increasing at %d", i)
		}
		if curve[i].T1 >= curve[i-1].T1 {
			t.Errorf("curve T1 not decreasing at %d", i)
		}
	}
}

func TestEarningsRatePositiveOnCurve(t *testing.T) {
	p := testParams()
	curve := p.T1Curve(12, 36)
	for i := 0; i+1 < len(curve); i++ {
		if r := EarningsRate(curve[i], curve[i+1]); r <= 0 {
			t.Errorf("earnings rate %g at %d not positive", r, i)
		}
	}
}

func TestEconomicChoiceStopsAtSmallRate(t *testing.T) {
	curve := []CurvePoint{
		{C1: 1, T1: 10},
		{C1: 2, T1: 6},   // rate 4
		{C1: 4, T1: 5},   // rate 0.5
		{C1: 8, T1: 4.9}, // rate 0.025
	}
	pt, ok := EconomicChoice(curve, 1.0)
	if !ok || pt.C1 != 2 {
		t.Errorf("eps=1: chose C1=%d, want 2", pt.C1)
	}
	pt, ok = EconomicChoice(curve, 0.1)
	if !ok || pt.C1 != 4 {
		t.Errorf("eps=0.1: chose C1=%d, want 4", pt.C1)
	}
	// Rate never below tiny eps: last point.
	pt, ok = EconomicChoice(curve, 1e-9)
	if !ok || pt.C1 != 8 {
		t.Errorf("tiny eps: chose C1=%d, want 8", pt.C1)
	}
	if _, ok := EconomicChoice(nil, 1); ok {
		t.Error("empty curve should not produce a choice")
	}
}

func TestAutoTuneReturnsFeasibleWithinBudget(t *testing.T) {
	p := testParams()
	for _, np := range []int{8, 16, 32, 64} {
		tuned, ok := p.AutoTune(np, 0.01)
		if !ok {
			t.Fatalf("np=%d: no configuration", np)
		}
		if !p.Feasible(tuned.Choice) {
			t.Errorf("np=%d: infeasible choice %v", np, tuned.Choice)
		}
		if tuned.C1+tuned.C2 > np {
			t.Errorf("np=%d: budget exceeded: C1=%d C2=%d", np, tuned.C1, tuned.C2)
		}
		if tuned.Choice.C1() != tuned.C1 || tuned.Choice.C2() != tuned.C2 {
			t.Errorf("np=%d: inconsistent costs", np)
		}
		if tuned.TTotal <= 0 {
			t.Errorf("np=%d: non-positive TTotal %g", np, tuned.TTotal)
		}
	}
}

func TestAutoTuneNearBruteForceOptimum(t *testing.T) {
	// The economic condition trades a little runtime for fewer processors,
	// so AutoTune's model time must be within a modest factor of the
	// unconstrained optimum (and never better).
	p := testParams()
	for _, np := range []int{16, 32, 64} {
		tuned, ok := p.AutoTune(np, 1e-4)
		if !ok {
			t.Fatalf("np=%d: no configuration", np)
		}
		brute, ok := p.BruteForceTune(np)
		if !ok {
			t.Fatalf("np=%d: brute force found nothing", np)
		}
		if tuned.TTotal < brute.TTotal-1e-12 {
			t.Errorf("np=%d: AutoTune %g beat brute force %g", np, tuned.TTotal, brute.TTotal)
		}
		if tuned.TTotal > 2*brute.TTotal {
			t.Errorf("np=%d: AutoTune %g far from optimum %g", np, tuned.TTotal, brute.TTotal)
		}
	}
}

func TestAutoTuneMoreProcessorsNeverWorse(t *testing.T) {
	// With a tiny eps (earn-everything), the tuned model time should be
	// non-increasing in the processor budget.
	p := testParams()
	prev := math.Inf(1)
	for _, np := range []int{8, 16, 24, 48, 96} {
		tuned, ok := p.AutoTune(np, 1e-12)
		if !ok {
			t.Fatalf("np=%d: no configuration", np)
		}
		if tuned.TTotal > prev+1e-12 {
			t.Errorf("np=%d: TTotal %g worse than smaller budget %g", np, tuned.TTotal, prev)
		}
		prev = tuned.TTotal
	}
}

func TestAutoTuneInvalidInputs(t *testing.T) {
	p := testParams()
	if _, ok := p.AutoTune(1, 0.01); ok {
		t.Error("np=1 leaves no room for both costs")
	}
	bad := p
	bad.NX = 0
	if _, ok := bad.AutoTune(16, 0.01); ok {
		t.Error("invalid params should not tune")
	}
}

func TestTReadDecreasesWithNCg(t *testing.T) {
	// §4.4: T_total decreases as n_cg grows (more I/O processors).
	p := testParams()
	base := Choice{NSdx: 4, NSdy: 3, L: 2}
	prev := math.Inf(1)
	for _, ncg := range []int{1, 2, 3, 4, 6, 12} {
		c := base
		c.NCg = ncg
		if !p.Feasible(c) {
			t.Fatalf("choice %v infeasible", c)
		}
		tt := p.TTotal(c)
		if tt >= prev {
			t.Errorf("TTotal did not decrease at ncg=%d: %g >= %g", ncg, tt, prev)
		}
		prev = tt
	}
}

func TestMoreLayersReduceFirstStageCost(t *testing.T) {
	// Layers shrink the first-stage read/comm volume: T1 decreases with L,
	// while L·TComp stays constant (fixed C2).
	p := testParams()
	base := Choice{NSdx: 4, NSdy: 3, NCg: 2}
	var prevT1 float64 = math.Inf(1)
	var compTotal []float64
	for _, l := range []int{1, 2, 4, 5, 10, 20} {
		c := base
		c.L = l
		if !p.Feasible(c) {
			t.Fatalf("choice %v infeasible", c)
		}
		t1 := p.T1(c)
		if t1 >= prevT1 {
			t.Errorf("T1 did not decrease at L=%d: %g >= %g", l, t1, prevT1)
		}
		prevT1 = t1
		compTotal = append(compTotal, float64(l)*p.TComp(c))
	}
	for i := 1; i < len(compTotal); i++ {
		if math.Abs(compTotal[i]-compTotal[0]) > 1e-12 {
			t.Errorf("L·TComp varied with L: %v", compTotal)
		}
	}
}

func TestQuickCostsNonNegativeAndFinite(t *testing.T) {
	p := testParams()
	f := func(a, b, c, d uint8) bool {
		ch := Choice{
			NSdx: int(a%8) + 1, NSdy: int(b%6) + 1,
			L: int(c%5) + 1, NCg: int(d%6) + 1,
		}
		vals := []float64{p.TRead(ch), p.TComm(ch), p.TComp(ch), p.TTotal(ch)}
		for _, v := range vals {
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
		}
		return p.TTotal(ch) >= p.T1(ch)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestT1CurveFastMatchesLiteral(t *testing.T) {
	p := testParams()
	for _, c2 := range []int{4, 12, 24, 30} {
		fast := p.t1CurveFast(c2, 48)
		slow := p.T1Curve(c2, 48)
		if len(fast) != len(slow) {
			t.Fatalf("C2=%d: fast curve has %d points, literal %d", c2, len(fast), len(slow))
		}
		for i := range slow {
			if fast[i].C1 != slow[i].C1 || math.Abs(fast[i].T1-slow[i].T1) > 1e-12 {
				t.Errorf("C2=%d point %d: fast (%d, %g) vs literal (%d, %g)",
					c2, i, fast[i].C1, fast[i].T1, slow[i].C1, slow[i].T1)
			}
		}
	}
}

func TestAutoTuneFastMatchesLiteral(t *testing.T) {
	p := testParams()
	for _, np := range []int{8, 16, 32, 64} {
		for _, eps := range []float64{1e-12, 1e-4, 0.01} {
			fast, okF := p.AutoTuneFast(np, eps)
			slow, okS := p.AutoTune(np, eps)
			if okF != okS {
				t.Fatalf("np=%d eps=%g: ok mismatch %v vs %v", np, eps, okF, okS)
			}
			if !okF {
				continue
			}
			if math.Abs(fast.TTotal-slow.TTotal) > 1e-12 {
				t.Errorf("np=%d eps=%g: fast TTotal %g (%v), literal %g (%v)",
					np, eps, fast.TTotal, fast.Choice, slow.TTotal, slow.Choice)
			}
		}
	}
}

func TestAutoTuneFastPaperScale(t *testing.T) {
	// The fast tuner must handle the real problem size quickly.
	p := Params{
		N: 120, NX: 3600, NY: 1800,
		A: 2e-6, B: 2e-10, C: 1.3e-4,
		Theta: 0.5e-9, Xi: 16, Eta: 8, H: 240,
	}
	tuned, ok := p.AutoTuneFast(12000, 0.001)
	if !ok {
		t.Fatal("no configuration at paper scale")
	}
	if tuned.C1+tuned.C2 > 12000 {
		t.Errorf("budget exceeded: C1=%d C2=%d", tuned.C1, tuned.C2)
	}
	if !p.Feasible(tuned.Choice) {
		t.Errorf("infeasible choice %v", tuned.Choice)
	}
	t.Logf("paper-scale tuned: %v (C1=%d, C2=%d, T=%gs)", tuned.Choice, tuned.C1, tuned.C2, tuned.TTotal)
}
