package costmodel

import (
	"strings"
	"testing"
)

// AutoTuneExplained must be AutoTuneConstrained plus a trace — identical
// result on every budget, and the trace's winning curve must agree with it.
func TestAutoTuneExplainedMatchesConstrained(t *testing.T) {
	p := driftParams()
	tc := TuneConstraints{MaxL: 6, MaxNCg: 6}
	for _, np := range []int{20, 60, 120, 180} {
		want, wantOK := p.AutoTuneConstrained(np, 0.001, tc)
		got, st, ok := p.AutoTuneExplained(np, 0.001, tc)
		if ok != wantOK || got != want {
			t.Fatalf("np=%d: explained (%+v, %v) != constrained (%+v, %v)", np, got, ok, want, wantOK)
		}
		if !ok {
			continue
		}
		best, bok := st.Best()
		if !bok {
			t.Fatalf("np=%d: no best curve in trace", np)
		}
		if best.C2 != got.C2 || best.Pick().C1 != got.C1 || best.Pick().Choice != got.Choice {
			t.Fatalf("np=%d: trace best (C2=%d, %+v) disagrees with result %+v",
				np, best.C2, best.Pick(), got)
		}
		if best.TTotal != got.TTotal {
			t.Fatalf("np=%d: trace TTotal %g != result %g", np, best.TTotal, got.TTotal)
		}
		// The recorded rates must be the pairwise earnings rates of the
		// recorded points, and the pick must obey condition (14).
		for _, c := range st.Curves {
			if len(c.Rates) != len(c.Points)-1 {
				t.Fatalf("np=%d C2=%d: %d rates for %d points", np, c.C2, len(c.Rates), len(c.Points))
			}
			for m := range c.Rates {
				if want := EarningsRate(c.Points[m], c.Points[m+1]); c.Rates[m] != want {
					t.Fatalf("np=%d C2=%d: rate[%d] = %g, want %g", np, c.C2, m, c.Rates[m], want)
				}
			}
			idx, stopped, ok := EconomicIndex(c.Points, st.Eps)
			if !ok || idx != c.PickIndex || stopped != c.StoppedEarly {
				t.Fatalf("np=%d C2=%d: recorded pick (%d, %v) != EconomicIndex (%d, %v)",
					np, c.C2, c.PickIndex, c.StoppedEarly, idx, stopped)
			}
		}
	}
}

// The rendered search table is golden-tested against a small fixed
// geometry: both the ε-stopped curves and the exhausted winning curve must
// render exactly.
func TestSearchTraceWriteTableGolden(t *testing.T) {
	p := Params{
		N: 4, NX: 12, NY: 6,
		A: 1e-6, B: 1e-9, C: 1e-3,
		Theta: 1e-9, Xi: 1, Eta: 1, H: 8,
	}
	tuned, st, ok := p.AutoTuneExplained(12, 0.001, TuneConstraints{MaxL: 3, MaxNCg: 3})
	if !ok {
		t.Fatal("auto-tune failed")
	}
	if tuned.Choice != (Choice{NSdx: 3, NSdy: 3, L: 2, NCg: 1}) {
		t.Fatalf("tuned = %+v (golden table is stale)", tuned)
	}
	var sb strings.Builder
	if err := st.WriteTable(&sb); err != nil {
		t.Fatal(err)
	}
	const golden = `auto-tuner search (np=12, eps=0.001):
    C2 |  curve |  econ C1 |     T1 (s) |  T_total (s) | stop
     1 |      2 |        1 |  4.328e-06 |        0.072 | r_0 < eps
     2 |      3 |        1 |  5.584e-06 |      0.03601 | r_0 < eps
     3 |      3 |        1 |   6.84e-06 |      0.02401 | r_0 < eps
     4 |      2 |        1 |  8.096e-06 |      0.01801 | r_0 < eps
     6 |      4 |        1 |  1.061e-05 |      0.01201 | r_0 < eps
     8 |      1 |        2 |  7.746e-06 |     0.009008 | curve exhausted
*    9 |      1 |        3 |  7.032e-06 |     0.008007 | curve exhausted

winning curve (C2=9), Algorithm 1 points and Eq. 13 earnings rates:
   m |     C1 |     T1 (s) | choice                     | r_m (s/proc)
*  0 |      3 |  7.032e-06 | nsdx=3 nsdy=3 L=2 ncg=1    |
rate never dropped below eps=0.001: kept the last point m=0 — economic choice C1=3, nsdx=3 nsdy=3 L=2 ncg=1
`
	if got := sb.String(); got != golden {
		t.Errorf("search table drifted from golden.\ngot:\n%s\nwant:\n%s", got, golden)
	}
}

func TestSearchTraceNilSafety(t *testing.T) {
	var st *SearchTrace
	if _, ok := st.Best(); ok {
		t.Error("nil trace has a best curve")
	}
	var sb strings.Builder
	if err := st.WriteTable(&sb); err != nil || sb.Len() != 0 {
		t.Errorf("nil WriteTable wrote %q, err %v", sb.String(), err)
	}
}
