package figures

import (
	"fmt"
	"io"

	"senkf/internal/schedule"
)

// Ablation is one variant of the S-EnKF design with a co-design removed,
// and its simulated runtime — quantifying what each §4 contribution buys.
type Ablation struct {
	Name    string
	NP      int
	Runtime float64
	Note    string
}

// Ablations runs the ablation ladder at a processor budget: full S-EnKF,
// S-EnKF without multi-stage overlap (L = 1), S-EnKF without concurrent
// groups (n_cg = 1), the block-reading baseline (P-EnKF), and the
// single-reader baseline (L-EnKF).
func (s *Suite) Ablations(np int) ([]Ablation, error) {
	full, tuned, err := s.SEnKFAt(np)
	if err != nil {
		return nil, err
	}
	out := []Ablation{{
		Name: "S-EnKF (all co-designs, auto-tuned)", NP: full.NP, Runtime: full.Runtime,
		Note: fmt.Sprintf("%v, overlap %.0f%%", tuned.Choice, 100*full.OverlapFraction),
	}}

	// Remove the multi-stage overlap: a single stage makes the entire
	// acquisition non-overlappable.
	noStage := tuned.Choice
	noStage.L = 1
	if s.O.Cfg.P.Feasible(noStage) {
		r, err := schedule.SimulateSEnKF(s.O.Cfg, noStage)
		if err != nil {
			return nil, err
		}
		out = append(out, Ablation{
			Name: "no multi-stage overlap (L = 1)", NP: r.NP, Runtime: r.Runtime,
			Note: "acquisition fully exposed before compute",
		})
	}

	// Remove the concurrent groups: one group reads the files serially.
	noGroups := tuned.Choice
	noGroups.NCg = 1
	if s.O.Cfg.P.Feasible(noGroups) {
		r, err := schedule.SimulateSEnKF(s.O.Cfg, noGroups)
		if err != nil {
			return nil, err
		}
		out = append(out, Ablation{
			Name: "single concurrent group (n_cg = 1)", NP: r.NP, Runtime: r.Runtime,
			Note: "bar reading kept, file-level concurrency removed",
		})
	}

	// Remove bar reading + overlap entirely: the P-EnKF baseline.
	p, err := s.PEnKFAt(np)
	if err != nil {
		return nil, err
	}
	out = append(out, Ablation{
		Name: "block reading, no overlap (P-EnKF)", NP: p.NP, Runtime: p.Runtime,
		Note: fmt.Sprintf("I/O share %.0f%%", p.IOPercent()),
	})

	// The single-reader prior art.
	nsdx, nsdy, err := schedule.ChooseDecomposition(s.O.Cfg.P, np)
	if err != nil {
		return nil, err
	}
	l, err := schedule.SimulateLEnKF(s.O.Cfg, nsdx, nsdy)
	if err != nil {
		return nil, err
	}
	out = append(out, Ablation{
		Name: "single reader (L-EnKF)", NP: l.NP, Runtime: l.Runtime,
		Note: "one processor reads and scatters serially",
	})
	return out, nil
}

// WriteAblations renders the ablation ladder as a text table.
func WriteAblations(w io.Writer, np int, abs []Ablation) error {
	if _, err := fmt.Fprintf(w, "Ablations at %d processors (simulated):\n", np); err != nil {
		return err
	}
	base := 0.0
	if len(abs) > 0 {
		base = abs[0].Runtime
	}
	for _, a := range abs {
		slower := ""
		if base > 0 && a.Runtime > base {
			slower = fmt.Sprintf("  (%.2fx slower)", a.Runtime/base)
		}
		if _, err := fmt.Fprintf(w, "  %-40s %8.1fs%s\n      %s\n", a.Name, a.Runtime, slower, a.Note); err != nil {
			return err
		}
	}
	return nil
}

// EpsilonSweep exercises the auto-tuner's cost/benefit dial: the
// earnings-rate threshold ε of Eq. (14) decides how many I/O processors are
// "worth it". Small ε buys every last second with more processors; large ε
// stops early. For each ε the tuned C1, the model time and the simulated
// runtime are reported at the given processor budget.
func (s *Suite) EpsilonSweep(np int, epss []float64) (Figure, error) {
	f := Figure{
		ID:     "Epsilon sweep",
		Title:  fmt.Sprintf("Auto-tuner ε sensitivity at %d processors (Eq. 14)", np),
		XLabel: "epsilon",
		YLabel: "C1 / seconds",
	}
	for _, eps := range epss {
		tuned, ok := s.O.Cfg.P.AutoTuneConstrained(np, eps, s.O.Constraints)
		if !ok {
			return f, fmt.Errorf("figures: no configuration at eps=%g", eps)
		}
		r, err := schedule.SimulateSEnKF(s.O.Cfg, tuned.Choice)
		if err != nil {
			return f, err
		}
		f.add("economic C1 (I/O processors)", eps, float64(tuned.C1))
		f.add("model T_total (s)", eps, tuned.TTotal)
		f.add("simulated runtime (s)", eps, r.Runtime)
	}
	f.Notes = append(f.Notes,
		"larger ε spends fewer processors on I/O and accepts slightly longer runtimes",
		"the paper's experiments use a small fixed ε; the dial generalizes the tradeoff")
	return f, nil
}
