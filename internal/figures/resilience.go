package figures

import (
	"fmt"

	"senkf/internal/faults"
	"senkf/internal/schedule"
)

// DefaultFaultIntensities is the sweep used by the resilience harness: 0
// pins the healthy baseline, then the plan generator is driven hard enough
// to show retries, failovers and member drops.
var DefaultFaultIntensities = []float64{0, 0.25, 0.5, 1, 1.5, 2}

// Resilience runs the fault-intensity sweep: the tuned S-EnKF schedule at
// a representative processor budget is re-simulated under seeded fault
// plans of growing intensity. It reports completion time, the degradation
// rate (dropped members as a percentage of the ensemble) and the recovery
// activity (failovers plus rank deaths) per intensity. Deterministic for
// a fixed seed.
func (s *Suite) Resilience(seed uint64, intensities []float64) (Figure, error) {
	if len(intensities) == 0 {
		intensities = DefaultFaultIntensities
	}
	np := s.O.ProcCounts[len(s.O.ProcCounts)/2]
	base, tuned, err := s.SEnKFAt(np)
	if err != nil {
		return Figure{}, err
	}
	f := Figure{
		ID:     "Resilience",
		Title:  fmt.Sprintf("S-EnKF under injected faults (np = %d, seed = %d)", np, seed),
		XLabel: "fault intensity",
		YLabel: "seconds / percent / count",
	}
	g := faults.Geometry{
		OSTs:    s.O.Cfg.FS.OSTs,
		NCg:     tuned.Choice.NCg,
		NSdy:    tuned.Choice.NSdy,
		L:       tuned.Choice.L,
		N:       s.O.Cfg.P.N,
		Horizon: base.Runtime,
	}
	for _, x := range intensities {
		cfg := s.O.Cfg
		cfg.Faults = faults.Generate(seed, x, g)
		res, err := schedule.SimulateSEnKF(cfg, tuned.Choice)
		if err != nil {
			return f, fmt.Errorf("figures: resilience sweep at intensity %g: %w", x, err)
		}
		f.add("completion time (s)", x, res.Runtime)
		f.add("dropped members %", x, 100*float64(len(res.DroppedMembers))/float64(s.O.Cfg.P.N))
		f.add("failovers + rank deaths", x, float64(res.Failovers+res.RankDeaths))
	}
	f.Notes = append(f.Notes,
		"intensity 0 is the healthy baseline; completion time grows with intensity while the schedule degrades gracefully instead of failing")
	return f, nil
}
