// Package figures regenerates every figure of the paper's evaluation
// (§5, Figures 1, 5, 9, 10, 11, 12, 13 — Table 1 is notation) from the
// simulated schedules, and renders them as aligned text tables with one row
// per x value and one column per series. The paper-scale options use the
// exact problem geometry of §5.1 (0.1° data, 3600×1800×30, N = 120) on the
// calibrated machine model; the quick options shrink the problem so the
// whole suite runs in test time.
package figures

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"

	"senkf/internal/costmodel"
	"senkf/internal/parfs"
	"senkf/internal/schedule"
	"senkf/internal/trace"
)

// Series is one labelled curve of a figure.
type Series struct {
	Label string
	X, Y  []float64
}

// Figure is a reproducible experiment result: labelled series over a
// common x axis plus free-form notes recording the headline observations.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
	Notes  []string
}

// add appends a point to the named series, creating it if needed.
func (f *Figure) add(label string, x, y float64) {
	for i := range f.Series {
		if f.Series[i].Label == label {
			f.Series[i].X = append(f.Series[i].X, x)
			f.Series[i].Y = append(f.Series[i].Y, y)
			return
		}
	}
	f.Series = append(f.Series, Series{Label: label, X: []float64{x}, Y: []float64{y}})
}

// WriteTable renders the figure as an aligned text table.
func (f Figure) WriteTable(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s: %s\n", f.ID, f.Title); err != nil {
		return err
	}
	// Union of x values across series.
	xs := map[float64]bool{}
	for _, s := range f.Series {
		for _, x := range s.X {
			xs[x] = true
		}
	}
	var xList []float64
	for x := range xs {
		xList = append(xList, x)
	}
	sort.Float64s(xList)

	header := []string{f.XLabel}
	for _, s := range f.Series {
		header = append(header, s.Label)
	}
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
		if widths[i] < 12 {
			widths[i] = 12
		}
	}
	cell := func(i int, s string) string {
		return fmt.Sprintf("%*s", widths[i], s)
	}
	row := make([]string, len(header))
	for i, h := range header {
		row[i] = cell(i, h)
	}
	if _, err := fmt.Fprintln(w, strings.Join(row, " | ")); err != nil {
		return err
	}
	for _, x := range xList {
		row[0] = cell(0, trimFloat(x))
		for si, s := range f.Series {
			val := ""
			for i, sx := range s.X {
				if sx == x {
					val = trimFloat(s.Y[i])
					break
				}
			}
			row[si+1] = cell(si+1, val)
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, " | ")); err != nil {
			return err
		}
	}
	for _, n := range f.Notes {
		if _, err := fmt.Fprintf(w, "  note: %s\n", n); err != nil {
			return err
		}
	}
	return nil
}

func trimFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e9 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.4g", v)
}

// Options configures the experiment suite.
type Options struct {
	Cfg schedule.Config
	// ProcCounts drives Figures 1, 9, 11 and 13.
	ProcCounts []int
	// Eps is the auto-tuner's earnings-rate threshold (Eq. 14).
	Eps float64
	// Constraints bound the tuner so simulated event counts stay tractable.
	Constraints costmodel.TuneConstraints
	// Figure 5: block reading with NSdy fixed, sweeping NSdxs, over Files
	// member files.
	Fig5NSdxs []int
	Fig5NSdy  int
	Fig5Files int
	// Figure 10: concurrent access with NSdy readers per group, sweeping
	// group counts, over Files member files.
	Fig10NCgs  []int
	Fig10NSdy  int
	Fig10Files int
	// Figure 12: the T1 model curve and measurements at fixed C2.
	Fig12C2    int
	Fig12MaxC1 int
	// MLLevels enables the multilevel bench cell: the S-EnKF schedule is
	// re-tuned and re-simulated with this many vertical levels (the paper's
	// h = levels × 8 bytes priced explicitly in Eq. 7–10). 0 or 1 disables
	// the cell.
	MLLevels int
}

// PaperOptions reproduces the evaluation at the paper's scale: processor
// counts up to 12,000, Figure 5's n_sdx ∈ {100..500} with n_sdy = 10 over
// 100 members, Figure 10's n_cg sweep over 120 members, and Figure 12's
// C2 = 2,000.
func PaperOptions() Options {
	return Options{
		Cfg:         schedule.DefaultConfig(),
		ProcCounts:  []int{2000, 4000, 6000, 8000, 10000, 12000},
		Eps:         0.001,
		Constraints: costmodel.TuneConstraints{MaxL: 12, MaxNCg: 12},
		Fig5NSdxs:   []int{100, 200, 300, 400, 500},
		Fig5NSdy:    10,
		Fig5Files:   100,
		Fig10NCgs:   []int{1, 2, 3, 4, 6, 8, 10, 12},
		Fig10NSdy:   10,
		Fig10Files:  120,
		Fig12C2:     2000,
		Fig12MaxC1:  600,
		MLLevels:    30,
	}
}

// QuickOptions shrinks everything for tests and fast demos: a 360×180
// grid with 24 members on the same machine model with heavier addressing
// cost (so small-scale runs show the same qualitative behaviour).
func QuickOptions() Options {
	return Options{
		Cfg: schedule.Config{
			P: costmodel.Params{
				N: 24, NX: 360, NY: 180,
				A: 2e-6, B: 2e-10, C: 2e-3,
				Theta: 0.5e-9, Xi: 8, Eta: 4, H: 240,
			},
			FS: parfs.Config{
				OSTs:              8,
				ConcurrencyPerOST: 2,
				SeekTime:          1e-4,
				ByteTime:          0.5e-9,
				BackboneStreams:   12,
			},
		},
		ProcCounts:  []int{20, 60, 120, 180},
		Eps:         0.001,
		Constraints: costmodel.TuneConstraints{MaxL: 6, MaxNCg: 6},
		Fig5NSdxs:   []int{10, 20, 30, 40},
		Fig5NSdy:    5,
		Fig5Files:   24,
		Fig10NCgs:   []int{1, 2, 4, 8, 12},
		Fig10NSdy:   5,
		Fig10Files:  24,
		Fig12C2:     40,
		Fig12MaxC1:  80,
		MLLevels:    3,
	}
}

// Suite runs and caches the per-processor-count simulations shared by
// Figures 1, 9, 11 and 13. Safe for concurrent use.
type Suite struct {
	O Options

	mu      sync.Mutex
	penkf   map[int]schedule.Result
	senkf   map[int]senkfEntry
	senkfML map[int]senkfEntry
}

type senkfEntry struct {
	res   schedule.Result
	tuned costmodel.Tuned
}

// NewSuite creates an empty suite over the given options.
func NewSuite(o Options) *Suite {
	return &Suite{
		O:       o,
		penkf:   map[int]schedule.Result{},
		senkf:   map[int]senkfEntry{},
		senkfML: map[int]senkfEntry{},
	}
}

// PEnKFAt simulates (or returns the cached) P-EnKF run at np processors.
func (s *Suite) PEnKFAt(np int) (schedule.Result, error) {
	s.mu.Lock()
	if r, ok := s.penkf[np]; ok {
		s.mu.Unlock()
		return r, nil
	}
	s.mu.Unlock()
	nsdx, nsdy, err := schedule.ChooseDecomposition(s.O.Cfg.P, np)
	if err != nil {
		return schedule.Result{}, err
	}
	res, err := schedule.SimulatePEnKF(s.O.Cfg, nsdx, nsdy)
	if err != nil {
		return schedule.Result{}, err
	}
	s.mu.Lock()
	s.penkf[np] = res
	s.mu.Unlock()
	return res, nil
}

// SEnKFAt auto-tunes S-EnKF for a budget of np processors (as §5.1: the
// S-EnKF run uses at most the processor count of the P-EnKF run it is
// compared against) and simulates the tuned schedule.
func (s *Suite) SEnKFAt(np int) (schedule.Result, costmodel.Tuned, error) {
	s.mu.Lock()
	if e, ok := s.senkf[np]; ok {
		s.mu.Unlock()
		return e.res, e.tuned, nil
	}
	s.mu.Unlock()
	tuned, ok := s.O.Cfg.P.AutoTuneConstrained(np, s.O.Eps, s.O.Constraints)
	if !ok {
		return schedule.Result{}, costmodel.Tuned{}, fmt.Errorf("figures: auto-tuner found no configuration for np=%d", np)
	}
	// Record the tuner decision in the trace: processor budget, ε and
	// search constraints. senkf-report reads this back to re-run the tuner
	// under measured coefficients with the original budget.
	if tr := s.O.Cfg.Tracer; tr.Enabled() {
		tr.Instant(trace.ModelTrack, trace.CatModel, "decision", 0,
			trace.Arg{Key: "np", Val: float64(np)},
			trace.Arg{Key: "eps", Val: s.O.Eps},
			trace.Arg{Key: "max_l", Val: float64(s.O.Constraints.MaxL)},
			trace.Arg{Key: "max_ncg", Val: float64(s.O.Constraints.MaxNCg)},
			trace.Arg{Key: "c1", Val: float64(tuned.C1)},
			trace.Arg{Key: "c2", Val: float64(tuned.C2)})
	}
	res, err := schedule.SimulateSEnKF(s.O.Cfg, tuned.Choice)
	if err != nil {
		return schedule.Result{}, costmodel.Tuned{}, err
	}
	s.mu.Lock()
	s.senkf[np] = senkfEntry{res: res, tuned: tuned}
	s.mu.Unlock()
	return res, tuned, nil
}

// SEnKFMLAt auto-tunes and simulates the multilevel S-EnKF run at np
// processors: the same compiled plan with Spec.Levels = O.MLLevels, and the
// cost model pricing every Eq. 7–10 term with the level factor. The result
// is labelled "S-EnKF-ML" so bench records keep the multilevel cell
// distinct from the single-level row (its runtimes scale with levels and
// must never be compared against the folded-h baseline).
func (s *Suite) SEnKFMLAt(np int) (schedule.Result, costmodel.Tuned, error) {
	if s.O.MLLevels <= 1 {
		return schedule.Result{}, costmodel.Tuned{}, fmt.Errorf("figures: multilevel cell disabled (MLLevels=%d)", s.O.MLLevels)
	}
	s.mu.Lock()
	if e, ok := s.senkfML[np]; ok {
		s.mu.Unlock()
		return e.res, e.tuned, nil
	}
	s.mu.Unlock()
	cfg := s.O.Cfg
	cfg.P.Levels = s.O.MLLevels
	tuned, ok := cfg.P.AutoTuneConstrained(np, s.O.Eps, s.O.Constraints)
	if !ok {
		return schedule.Result{}, costmodel.Tuned{}, fmt.Errorf("figures: auto-tuner found no multilevel configuration for np=%d", np)
	}
	res, err := schedule.SimulateSEnKF(cfg, tuned.Choice)
	if err != nil {
		return schedule.Result{}, costmodel.Tuned{}, err
	}
	res.Algorithm = "S-EnKF-ML"
	s.mu.Lock()
	s.senkfML[np] = senkfEntry{res: res, tuned: tuned}
	s.mu.Unlock()
	return res, tuned, nil
}

// Fig01 reproduces Figure 1: percentage of time spent in I/O versus
// computation in P-EnKF as the processor count grows.
func (s *Suite) Fig01() (Figure, error) {
	f := Figure{
		ID:     "Figure 1",
		Title:  "Percentage of times for I/O and computation in P-EnKF",
		XLabel: "processors",
		YLabel: "percent of runtime",
	}
	for _, np := range s.O.ProcCounts {
		r, err := s.PEnKFAt(np)
		if err != nil {
			return f, err
		}
		f.add("I/O %", float64(np), r.IOPercent())
		f.add("computation %", float64(np), 100-r.IOPercent())
	}
	f.Notes = append(f.Notes, "I/O share grows with the processor count and dominates at scale (paper: same trajectory)")
	return f, nil
}

// Fig05 reproduces Figure 5: time for reading the background ensemble with
// the block reading approach, n_sdy fixed, n_sdx sweeping — approximately
// linear growth in n_sdx because of the O(n_y × n_sdx) addressing blow-up.
func (s *Suite) Fig05() (Figure, error) {
	f := Figure{
		ID:     "Figure 5",
		Title:  fmt.Sprintf("Block-reading time for %d members (n_sdy = %d)", s.O.Fig5Files, s.O.Fig5NSdy),
		XLabel: "n_sdx",
		YLabel: "seconds",
	}
	for _, nsdx := range s.O.Fig5NSdxs {
		t, err := schedule.ReadOnlyBlock(s.O.Cfg, nsdx, s.O.Fig5NSdy, s.O.Fig5Files)
		if err != nil {
			return f, err
		}
		f.add("block reading time (s)", float64(nsdx), t)
	}
	f.Notes = append(f.Notes, "reading time grows ~linearly with n_sdx (paper: same)")
	return f, nil
}

// Fig09 reproduces Figure 9: mean per-processor time of each phase in
// P-EnKF and S-EnKF across processor counts.
func (s *Suite) Fig09() (Figure, error) {
	f := Figure{
		ID:     "Figure 9",
		Title:  "Time for different phases in P-EnKF and S-EnKF",
		XLabel: "processors",
		YLabel: "seconds (mean per processor)",
	}
	for _, np := range s.O.ProcCounts {
		p, err := s.PEnKFAt(np)
		if err != nil {
			return f, err
		}
		f.add("P-EnKF read", float64(np), p.Compute.Read)
		f.add("P-EnKF compute", float64(np), p.Compute.Compute)
		r, _, err := s.SEnKFAt(np)
		if err != nil {
			return f, err
		}
		f.add("S-EnKF io read", float64(np), r.IO.Read)
		f.add("S-EnKF io comm", float64(np), r.IO.Comm)
		f.add("S-EnKF cp wait", float64(np), r.Compute.Wait)
		f.add("S-EnKF cp compute", float64(np), r.Compute.Compute)
	}
	f.Notes = append(f.Notes,
		"P-EnKF reading grows with processors while its compute shrinks",
		"S-EnKF wait time shrinks with processors; read/comm stay hidden behind compute")
	return f, nil
}

// Fig10 reproduces Figure 10: time for reading the ensemble with the
// concurrent access approach as the number of groups grows.
func (s *Suite) Fig10() (Figure, error) {
	f := Figure{
		ID:     "Figure 10",
		Title:  fmt.Sprintf("Concurrent-access read time for %d members (n_sdy = %d per group)", s.O.Fig10Files, s.O.Fig10NSdy),
		XLabel: "n_cg",
		YLabel: "seconds",
	}
	for _, ncg := range s.O.Fig10NCgs {
		if s.O.Fig10Files%ncg != 0 {
			continue
		}
		t, err := schedule.ReadOnlyConcurrent(s.O.Cfg, s.O.Fig10NSdy, ncg, s.O.Fig10Files)
		if err != nil {
			return f, err
		}
		f.add("concurrent read time (s)", float64(ncg), t)
	}
	f.Notes = append(f.Notes, "time drops until the file system's concurrent I/O potential is exhausted, then flattens (paper: flat past n_cg ≈ 4-6)")
	return f, nil
}

// Fig11 reproduces Figure 11: the share of I/O and communication hidden
// behind local computation, sustained across processor counts.
func (s *Suite) Fig11() (Figure, error) {
	f := Figure{
		ID:     "Figure 11",
		Title:  "Percentage of overlapped time in S-EnKF",
		XLabel: "processors",
		YLabel: "percent",
	}
	for _, np := range s.O.ProcCounts {
		r, _, err := s.SEnKFAt(np)
		if err != nil {
			return f, err
		}
		f.add("overlapped share of I/O+comm %", float64(np), 100*r.OverlapFraction)
		f.add("overlapped share of runtime %", float64(np), 100*r.OverlapRuntimeFraction)
		f.add("first stage share of runtime %", float64(np), 100*r.FirstStage/r.Runtime)
	}
	f.Notes = append(f.Notes, "the overlapped share of data obtaining is sustained as processors increase; only the first stage is exposed (<8% at scale, §5.4)")
	return f, nil
}

// Fig12 reproduces Figure 12: the minimal model value of T1 as a function
// of the I/O cost C1 at fixed C2, the measured (simulated) first-stage
// acquisition times at the same parameter choices, and the economic choice
// of Eq. (14) determined from each.
func (s *Suite) Fig12() (Figure, error) {
	f := Figure{
		ID:     "Figure 12",
		Title:  fmt.Sprintf("Minimal T1 vs C1 at C2 = %d: model curve, measurements, economic choices", s.O.Fig12C2),
		XLabel: "C1 (I/O processors)",
		YLabel: "seconds",
	}
	curve := s.O.Cfg.P.T1CurveConstrained(s.O.Fig12C2, s.O.Fig12MaxC1, s.O.Constraints)
	if len(curve) == 0 {
		return f, fmt.Errorf("figures: empty T1 curve at C2=%d", s.O.Fig12C2)
	}
	var measured []costmodel.CurvePoint
	for _, pt := range curve {
		f.add("model T1 (s)", float64(pt.C1), pt.T1)
		res, err := schedule.SimulateSEnKF(s.O.Cfg, pt.Choice)
		if err != nil {
			return f, err
		}
		f.add("measured T1 (s)", float64(pt.C1), res.FirstStage)
		measured = append(measured, costmodel.CurvePoint{C1: pt.C1, T1: res.FirstStage, Choice: pt.Choice})
	}
	// Economic choices from model and from measurement (Eq. 14).
	modelPick, ok := costmodel.EconomicChoice(curve, s.O.Eps)
	if !ok {
		return f, fmt.Errorf("figures: no economic model choice")
	}
	// The measured curve must be strictly decreasing for the earnings
	// rate; keep the improving prefix structure as Algorithm 2 does.
	var improving []costmodel.CurvePoint
	best := math.Inf(1)
	for _, pt := range measured {
		if pt.T1 < best {
			best = pt.T1
			improving = append(improving, pt)
		}
	}
	measPick, ok := costmodel.EconomicChoice(improving, s.O.Eps)
	if !ok {
		return f, fmt.Errorf("figures: no economic measured choice")
	}
	f.Notes = append(f.Notes,
		fmt.Sprintf("economic choice from the model: C1 = %d (%v)", modelPick.C1, modelPick.Choice),
		fmt.Sprintf("economic choice from measurements: C1 = %d (%v)", measPick.C1, measPick.Choice),
		"the paper reports the two choices consistent; closeness here validates the cost model")
	return f, nil
}

// Fig13 reproduces Figure 13: total runtime of P-EnKF and S-EnKF in the
// strong scaling test.
func (s *Suite) Fig13() (Figure, error) {
	f := Figure{
		ID:     "Figure 13",
		Title:  "Total runtime of P-EnKF and S-EnKF (strong scaling)",
		XLabel: "processors",
		YLabel: "seconds",
	}
	var firstS, lastS, lastP float64
	var firstNP, lastNP int
	for i, np := range s.O.ProcCounts {
		p, err := s.PEnKFAt(np)
		if err != nil {
			return f, err
		}
		r, tuned, err := s.SEnKFAt(np)
		if err != nil {
			return f, err
		}
		f.add("P-EnKF runtime (s)", float64(np), p.Runtime)
		f.add("S-EnKF runtime (s)", float64(np), r.Runtime)
		f.add("speedup", float64(np), p.Runtime/r.Runtime)
		if i == 0 {
			firstS, firstNP = r.Runtime, np
		}
		lastS, lastP, lastNP = r.Runtime, p.Runtime, np
		_ = tuned
	}
	if lastNP > firstNP {
		ideal := float64(lastNP) / float64(firstNP)
		eff := (firstS / lastS) / ideal
		f.Notes = append(f.Notes,
			fmt.Sprintf("S-EnKF strong-scaling efficiency %d→%d processors: %.0f%% of ideal", firstNP, lastNP, 100*eff),
			fmt.Sprintf("speedup over P-EnKF at %d processors: %.2fx (paper: 3x)", lastNP, lastP/lastS))
	}
	return f, nil
}

// All regenerates every figure in paper order.
func (s *Suite) All() ([]Figure, error) {
	var out []Figure
	for _, fn := range []func() (Figure, error){s.Fig01, s.Fig05, s.Fig09, s.Fig10, s.Fig11, s.Fig12, s.Fig13} {
		f, err := fn()
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}

// WriteCSV renders the figure as CSV: one column for x, one per series,
// with empty cells where a series has no point — ready for any plotting
// tool.
func (f Figure) WriteCSV(w io.Writer) error {
	header := []string{csvEscape(f.XLabel)}
	for _, s := range f.Series {
		header = append(header, csvEscape(s.Label))
	}
	if _, err := fmt.Fprintln(w, strings.Join(header, ",")); err != nil {
		return err
	}
	xs := map[float64]bool{}
	for _, s := range f.Series {
		for _, x := range s.X {
			xs[x] = true
		}
	}
	var xList []float64
	for x := range xs {
		xList = append(xList, x)
	}
	sort.Float64s(xList)
	for _, x := range xList {
		row := []string{trimFloat(x)}
		for _, s := range f.Series {
			val := ""
			for i, sx := range s.X {
				if sx == x {
					val = trimFloat(s.Y[i])
					break
				}
			}
			row = append(row, val)
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}
