package figures

import "testing"

func TestResilienceSweep(t *testing.T) {
	s := quickSuite()
	f, err := s.Resilience(42, nil)
	if err != nil {
		t.Fatal(err)
	}
	ct := seriesByLabel(t, f, "completion time (s)")
	if len(ct.X) != len(DefaultFaultIntensities) {
		t.Fatalf("series has %d points, want %d", len(ct.X), len(DefaultFaultIntensities))
	}
	// Intensity 0 must match the healthy tuned run; the heaviest intensity
	// must cost at least as much as the healthy baseline.
	np := s.O.ProcCounts[len(s.O.ProcCounts)/2]
	base, _, err := s.SEnKFAt(np)
	if err != nil {
		t.Fatal(err)
	}
	if ct.Y[0] != base.Runtime {
		t.Errorf("intensity 0 runtime %g != healthy %g", ct.Y[0], base.Runtime)
	}
	last := len(ct.Y) - 1
	if ct.Y[last] < base.Runtime {
		t.Errorf("max-intensity runtime %g below healthy %g", ct.Y[last], base.Runtime)
	}
	drops := seriesByLabel(t, f, "dropped members %")
	if drops.Y[0] != 0 {
		t.Errorf("healthy baseline reports dropped members: %g%%", drops.Y[0])
	}
	// Determinism: the same seed reproduces the sweep exactly.
	again, err := s.Resilience(42, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ct.Y {
		b := seriesByLabel(t, again, "completion time (s)")
		if ct.Y[i] != b.Y[i] {
			t.Errorf("sweep not deterministic at %d: %g vs %g", i, ct.Y[i], b.Y[i])
		}
	}
}
