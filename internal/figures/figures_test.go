package figures

import (
	"math"
	"strings"
	"testing"
)

func quickSuite() *Suite { return NewSuite(QuickOptions()) }

func seriesByLabel(t *testing.T, f Figure, label string) Series {
	t.Helper()
	for _, s := range f.Series {
		if s.Label == label {
			return s
		}
	}
	t.Fatalf("%s: no series %q (have %v)", f.ID, label, labels(f))
	return Series{}
}

func labels(f Figure) []string {
	var out []string
	for _, s := range f.Series {
		out = append(out, s.Label)
	}
	return out
}

func TestFig01IOShareGrows(t *testing.T) {
	s := quickSuite()
	f, err := s.Fig01()
	if err != nil {
		t.Fatal(err)
	}
	io := seriesByLabel(t, f, "I/O %")
	for i := 1; i < len(io.Y); i++ {
		if io.Y[i] <= io.Y[i-1] {
			t.Errorf("I/O share not growing: %v", io.Y)
		}
	}
	comp := seriesByLabel(t, f, "computation %")
	for i := range io.Y {
		if math.Abs(io.Y[i]+comp.Y[i]-100) > 1e-9 {
			t.Errorf("shares do not sum to 100 at %d", i)
		}
	}
}

func TestFig05RoughlyLinear(t *testing.T) {
	s := quickSuite()
	f, err := s.Fig05()
	if err != nil {
		t.Fatal(err)
	}
	ser := seriesByLabel(t, f, "block reading time (s)")
	if len(ser.X) != len(s.O.Fig5NSdxs) {
		t.Fatalf("series has %d points", len(ser.X))
	}
	for i := 1; i < len(ser.Y); i++ {
		if ser.Y[i] <= ser.Y[i-1] {
			t.Errorf("block reading time not increasing: %v", ser.Y)
		}
	}
	// Linearity: time/nsdx within a factor of 2 across the sweep.
	first := ser.Y[0] / ser.X[0]
	last := ser.Y[len(ser.Y)-1] / ser.X[len(ser.X)-1]
	if r := last / first; r < 0.5 || r > 2 {
		t.Errorf("per-n_sdx cost ratio %g not roughly constant", r)
	}
}

func TestFig09PhaseTrends(t *testing.T) {
	s := quickSuite()
	f, err := s.Fig09()
	if err != nil {
		t.Fatal(err)
	}
	pRead := seriesByLabel(t, f, "P-EnKF read")
	pComp := seriesByLabel(t, f, "P-EnKF compute")
	n := len(pRead.Y)
	if !(pComp.Y[n-1] < pComp.Y[0]) {
		t.Errorf("P-EnKF compute did not shrink: %v", pComp.Y)
	}
	if !(pRead.Y[n-1] > pRead.Y[0]) {
		t.Errorf("P-EnKF read did not grow: %v", pRead.Y)
	}
	sComp := seriesByLabel(t, f, "S-EnKF cp compute")
	if !(sComp.Y[n-1] < sComp.Y[0]) {
		t.Errorf("S-EnKF compute did not shrink: %v", sComp.Y)
	}
}

func TestFig10DropThenFlat(t *testing.T) {
	s := quickSuite()
	f, err := s.Fig10()
	if err != nil {
		t.Fatal(err)
	}
	ser := seriesByLabel(t, f, "concurrent read time (s)")
	if len(ser.Y) < 4 {
		t.Fatalf("too few points: %v", ser.Y)
	}
	if !(ser.Y[1] < ser.Y[0] && ser.Y[2] < ser.Y[1]) {
		t.Errorf("no initial drop: %v", ser.Y)
	}
	last, prev := ser.Y[len(ser.Y)-1], ser.Y[len(ser.Y)-2]
	if last < 0.7*prev {
		t.Errorf("no flattening at the end: %v", ser.Y)
	}
}

func TestFig11OverlapSustained(t *testing.T) {
	s := quickSuite()
	f, err := s.Fig11()
	if err != nil {
		t.Fatal(err)
	}
	ov := seriesByLabel(t, f, "overlapped share of I/O+comm %")
	for _, v := range ov.Y {
		if v < 50 || v > 100 {
			t.Errorf("overlap share %v outside the sustained band", ov.Y)
			break
		}
	}
}

func TestFig12ModelTracksMeasurement(t *testing.T) {
	s := quickSuite()
	f, err := s.Fig12()
	if err != nil {
		t.Fatal(err)
	}
	model := seriesByLabel(t, f, "model T1 (s)")
	meas := seriesByLabel(t, f, "measured T1 (s)")
	if len(model.Y) != len(meas.Y) || len(model.Y) == 0 {
		t.Fatalf("curve lengths: model %d, measured %d", len(model.Y), len(meas.Y))
	}
	// Both curves decrease overall from the first to the last point.
	if !(model.Y[len(model.Y)-1] < model.Y[0]) {
		t.Errorf("model curve not decreasing: %v", model.Y)
	}
	if !(meas.Y[len(meas.Y)-1] < meas.Y[0]) {
		t.Errorf("measured curve not decreasing overall: %v", meas.Y)
	}
	// The model is an idealization; it must at least be within an order of
	// magnitude of the measurement everywhere.
	for i := range model.Y {
		r := model.Y[i] / meas.Y[i]
		if r < 0.1 || r > 10 {
			t.Errorf("point %d: model %g vs measured %g", i, model.Y[i], meas.Y[i])
		}
	}
	if len(f.Notes) < 2 {
		t.Error("expected economic-choice notes")
	}
}

func TestFig13SpeedupAtScale(t *testing.T) {
	s := quickSuite()
	f, err := s.Fig13()
	if err != nil {
		t.Fatal(err)
	}
	sp := seriesByLabel(t, f, "speedup")
	last := sp.Y[len(sp.Y)-1]
	if last < 1.5 {
		t.Errorf("speedup at max processors %.2f, want > 1.5", last)
	}
	// Speedup grows with the processor count.
	if !(sp.Y[len(sp.Y)-1] > sp.Y[0]) {
		t.Errorf("speedup not growing: %v", sp.Y)
	}
	senkf := seriesByLabel(t, f, "S-EnKF runtime (s)")
	for i := 1; i < len(senkf.Y); i++ {
		if senkf.Y[i] >= senkf.Y[i-1] {
			t.Errorf("S-EnKF runtime not strictly improving: %v", senkf.Y)
		}
	}
}

func TestAllRunsEveryFigure(t *testing.T) {
	s := quickSuite()
	figs, err := s.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 7 {
		t.Fatalf("got %d figures, want 7", len(figs))
	}
	wantIDs := []string{"Figure 1", "Figure 5", "Figure 9", "Figure 10", "Figure 11", "Figure 12", "Figure 13"}
	for i, f := range figs {
		if f.ID != wantIDs[i] {
			t.Errorf("figure %d is %q, want %q", i, f.ID, wantIDs[i])
		}
	}
}

func TestWriteTableRendering(t *testing.T) {
	f := Figure{
		ID: "Figure X", Title: "demo", XLabel: "x", YLabel: "y",
		Notes: []string{"a note"},
	}
	f.add("alpha", 1, 2)
	f.add("alpha", 2, 4)
	f.add("beta", 1, 8)
	var sb strings.Builder
	if err := f.WriteTable(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Figure X: demo", "alpha", "beta", "a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	// Beta has no point at x=2: the row must still render.
	if !strings.Contains(out, "2") {
		t.Errorf("missing x=2 row:\n%s", out)
	}
}

func TestSuiteCaching(t *testing.T) {
	s := quickSuite()
	a, err := s.PEnKFAt(60)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.PEnKFAt(60)
	if err != nil {
		t.Fatal(err)
	}
	if a.Runtime != b.Runtime {
		t.Error("cache returned different results")
	}
	if _, err := s.PEnKFAt(7); err == nil {
		t.Error("expected decomposition error for np=7")
	}
	if _, _, err := s.SEnKFAt(1); err == nil {
		t.Error("expected tuner failure for np=1")
	}
}

func TestAblationLadder(t *testing.T) {
	s := quickSuite()
	np := s.O.ProcCounts[len(s.O.ProcCounts)-1]
	abs, err := s.Ablations(np)
	if err != nil {
		t.Fatal(err)
	}
	if len(abs) < 4 {
		t.Fatalf("only %d ablations", len(abs))
	}
	full := abs[0].Runtime
	for _, a := range abs[1:] {
		if a.Runtime < full {
			t.Errorf("%s (%.3fs) beat the full design (%.3fs)", a.Name, a.Runtime, full)
		}
	}
	var sb strings.Builder
	if err := WriteAblations(&sb, np, abs); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "P-EnKF") || !strings.Contains(sb.String(), "L-EnKF") {
		t.Errorf("rendered ablations missing baselines:\n%s", sb.String())
	}
}

func TestWriteCSV(t *testing.T) {
	f := Figure{ID: "Figure X", XLabel: "x, axis"}
	f.add("a", 1, 2.5)
	f.add("b", 1, 3)
	f.add("b", 2, 4)
	var sb strings.Builder
	if err := f.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv:\n%s", out)
	}
	if lines[0] != `"x, axis",a,b` {
		t.Errorf("header %q", lines[0])
	}
	if lines[1] != "1,2.5,3" {
		t.Errorf("row 1 %q", lines[1])
	}
	if lines[2] != "2,,4" {
		t.Errorf("row 2 %q (missing cell must be empty)", lines[2])
	}
}

func TestEpsilonSweep(t *testing.T) {
	s := quickSuite()
	np := s.O.ProcCounts[len(s.O.ProcCounts)-1]
	f, err := s.EpsilonSweep(np, []float64{1e-6, 1e-3, 1e-1})
	if err != nil {
		t.Fatal(err)
	}
	c1 := seriesByLabel(t, f, "economic C1 (I/O processors)")
	if len(c1.Y) != 3 {
		t.Fatalf("got %d points", len(c1.Y))
	}
	// Spending appetite never grows as eps grows.
	for i := 1; i < len(c1.Y); i++ {
		if c1.Y[i] > c1.Y[i-1] {
			t.Errorf("C1 grew with eps: %v", c1.Y)
		}
	}
	// Model time never improves as eps grows.
	tt := seriesByLabel(t, f, "model T_total (s)")
	for i := 1; i < len(tt.Y); i++ {
		if tt.Y[i] < tt.Y[i-1]-1e-12 {
			t.Errorf("model time improved with larger eps: %v", tt.Y)
		}
	}
	rt := seriesByLabel(t, f, "simulated runtime (s)")
	for _, v := range rt.Y {
		if v <= 0 {
			t.Errorf("bad runtime %g", v)
		}
	}
}
