package ensio

import (
	"encoding/binary"
	"errors"
	"math"
	"os"
	"strings"
	"testing"

	"senkf/internal/grid"
)

func writeIntegrityMember(t *testing.T, dir string, k, nx, ny int) (string, []float64) {
	t.Helper()
	field := make([]float64, nx*ny)
	for i := range field {
		field[i] = float64(k*1000 + i)
	}
	path := MemberPath(dir, k)
	if err := WriteMember(path, Header{NX: nx, NY: ny, Member: k}, field); err != nil {
		t.Fatal(err)
	}
	return path, field
}

func TestChecksumRoundTrip(t *testing.T) {
	path, field := writeIntegrityMember(t, t.TempDir(), 0, 6, 4)
	m, err := OpenMemberOpts(path, OpenOptions{Verify: true})
	if err != nil {
		t.Fatalf("verify-on-open of a fresh file failed: %v", err)
	}
	defer m.Close()
	if !m.Header.HasChecksum {
		t.Error("v2 file has no checksum")
	}
	if err := m.VerifyChecksum(); err != nil {
		t.Errorf("verify of a fresh file failed: %v", err)
	}
	got, err := m.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != field[i] {
			t.Fatalf("payload[%d] = %g, want %g", i, v, field[i])
		}
	}
}

func TestSingleBitCorruptionDetected(t *testing.T) {
	path, _ := writeIntegrityMember(t, t.TempDir(), 0, 6, 4)
	// Flip one payload bit behind the 32-byte header.
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	var b [1]byte
	if _, err := f.ReadAt(b[:], 40); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0x01
	if _, err := f.WriteAt(b[:], 40); err != nil {
		t.Fatal(err)
	}
	f.Close()

	m, err := OpenMember(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	err = m.VerifyChecksum()
	var ce *CorruptionError
	if !errors.As(err, &ce) {
		t.Fatalf("VerifyChecksum = %v, want *CorruptionError", err)
	}
	if IsTransient(err) {
		t.Error("corruption classified as transient")
	}
	if _, err := OpenMemberOpts(path, OpenOptions{Verify: true}); !errors.As(err, &ce) {
		t.Errorf("verify-on-open = %v, want *CorruptionError", err)
	}
}

func TestTruncationDetectedAtOpen(t *testing.T) {
	path, _ := writeIntegrityMember(t, t.TempDir(), 0, 6, 4)
	if err := os.Truncate(path, 40); err != nil {
		t.Fatal(err)
	}
	_, err := OpenMember(path)
	if err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("open of a truncated file = %v, want truncation error", err)
	}
}

func TestRetryRecoversFromTransient(t *testing.T) {
	path, field := writeIntegrityMember(t, t.TempDir(), 3, 6, 4)
	fails := 2
	hook := func(op string, member, attempt int) error {
		if op == "read" && attempt < fails {
			return testTransient{}
		}
		return nil
	}
	m, err := OpenMemberOpts(path, OpenOptions{
		Retry: RetryPolicy{Attempts: 3},
		Hook:  hook,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	got, err := m.ReadBar(0, 4)
	if err != nil {
		t.Fatalf("read with 2 transient failures under a 3-attempt budget failed: %v", err)
	}
	if got[0] != field[0] {
		t.Errorf("payload[0] = %g, want %g", got[0], field[0])
	}
	if r := m.Stats().Retries; r != 2 {
		t.Errorf("Retries = %d, want 2", r)
	}
}

func TestRetryBudgetExhaustion(t *testing.T) {
	path, _ := writeIntegrityMember(t, t.TempDir(), 3, 6, 4)
	hook := func(op string, member, attempt int) error {
		if op == "read" {
			return testTransient{}
		}
		return nil
	}
	m, err := OpenMemberOpts(path, OpenOptions{
		Retry: RetryPolicy{Attempts: 3},
		Hook:  hook,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	_, err = m.ReadBar(0, 4)
	if err == nil || !strings.Contains(err.Error(), "failed after 3 attempts") {
		t.Fatalf("exhausted read = %v, want attempt-budget error", err)
	}
	if !IsTransient(err) {
		t.Error("exhaustion error lost the transient marker")
	}
	if r := m.Stats().Retries; r != 2 {
		t.Errorf("Retries = %d, want 2", r)
	}
}

func TestPermanentErrorNotRetried(t *testing.T) {
	path, _ := writeIntegrityMember(t, t.TempDir(), 0, 6, 4)
	calls := 0
	hook := func(op string, member, attempt int) error {
		if op != "read" {
			return nil
		}
		calls++
		return errors.New("permanent storage error")
	}
	m, err := OpenMemberOpts(path, OpenOptions{
		Retry: RetryPolicy{Attempts: 5},
		Hook:  hook,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if _, err := m.ReadBar(0, 4); err == nil {
		t.Fatal("permanent error swallowed")
	}
	if calls != 1 {
		t.Errorf("permanent error attempted %d times, want 1", calls)
	}
	if r := m.Stats().Retries; r != 0 {
		t.Errorf("Retries = %d, want 0", r)
	}
}

// testTransient is a minimal retryable error.
type testTransient struct{}

func (testTransient) Error() string   { return "test transient" }
func (testTransient) Transient() bool { return true }

func TestV1BackCompat(t *testing.T) {
	dir := t.TempDir()
	nx, ny := 4, 3
	field := make([]float64, nx*ny)
	for i := range field {
		field[i] = float64(i) * 1.5
	}
	// Hand-write a version-1 file: 24-byte header, no checksum.
	hdr := make([]byte, 24)
	copy(hdr[0:4], Magic)
	binary.LittleEndian.PutUint32(hdr[4:8], 1)
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(nx))
	binary.LittleEndian.PutUint32(hdr[12:16], uint32(ny))
	binary.LittleEndian.PutUint32(hdr[16:20], 7)
	binary.LittleEndian.PutUint32(hdr[20:24], 0)
	payload := make([]byte, 8*len(field))
	for i, v := range field {
		binary.LittleEndian.PutUint64(payload[8*i:], math.Float64bits(v))
	}
	path := MemberPath(dir, 7)
	if err := os.WriteFile(path, append(hdr, payload...), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := OpenMemberOpts(path, OpenOptions{Verify: true})
	if err != nil {
		t.Fatalf("open v1 file: %v", err)
	}
	defer m.Close()
	if m.Header.HasChecksum {
		t.Error("v1 file claims a checksum")
	}
	if err := m.VerifyChecksum(); err != nil {
		t.Errorf("v1 verify (should be a no-op) = %v", err)
	}
	got, err := m.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != field[i] {
			t.Fatalf("v1 payload[%d] = %g, want %g", i, v, field[i])
		}
	}
}

func TestCheckGeometry(t *testing.T) {
	path, _ := writeIntegrityMember(t, t.TempDir(), 2, 6, 4)
	m, err := OpenMember(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if err := m.CheckGeometry(6, 4, 1, 2); err != nil {
		t.Errorf("matching geometry rejected: %v", err)
	}
	if err := m.CheckGeometry(6, 4, 0, -1); err != nil {
		t.Errorf("wildcard levels/member rejected: %v", err)
	}
	if err := m.CheckGeometry(8, 4, 1, 2); err == nil {
		t.Error("wrong mesh accepted")
	}
	if err := m.CheckGeometry(6, 4, 30, 2); err == nil {
		t.Error("wrong level count accepted")
	}
	if err := m.CheckGeometry(6, 4, 1, 5); err == nil {
		t.Error("wrong member index accepted")
	}
}

func TestInspectDir(t *testing.T) {
	dir := t.TempDir()
	mesh := grid.Mesh{NX: 6, NY: 4}
	fields := make([][]float64, 3)
	for k := range fields {
		fields[k] = make([]float64, mesh.NX*mesh.NY)
	}
	if _, err := WriteEnsemble(dir, mesh, fields); err != nil {
		t.Fatal(err)
	}
	info, err := InspectDir(dir, 3)
	if err != nil {
		t.Fatalf("inspect of a valid dir: %v", err)
	}
	if info.N != 3 || info.NX != 6 || info.NY != 4 || info.Levels != 1 {
		t.Errorf("info = %+v", info)
	}
	// n <= 0 scans until the first missing member.
	scanned, err := InspectDir(dir, 0)
	if err != nil || scanned.N != 3 {
		t.Errorf("scan = %+v, %v", scanned, err)
	}
	// Missing member named in the error.
	if _, err := InspectDir(dir, 5); err == nil || !strings.Contains(err.Error(), "member 3") {
		t.Errorf("missing-member error = %v", err)
	}
	// Mixed geometry is caught.
	other := make([]float64, 8*2)
	if err := WriteMember(MemberPath(dir, 3), Header{NX: 8, NY: 2, Member: 3}, other); err != nil {
		t.Fatal(err)
	}
	if _, err := InspectDir(dir, 4); err == nil || !strings.Contains(err.Error(), "mixed") {
		t.Errorf("mixed-geometry error = %v", err)
	}
	// Empty directory is actionable.
	if _, err := InspectDir(t.TempDir(), 0); err == nil || !strings.Contains(err.Error(), "senkf-gen") {
		t.Errorf("empty-dir error = %v", err)
	}
}
