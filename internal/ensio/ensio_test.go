package ensio

import (
	"os"
	"path/filepath"
	"testing"

	"senkf/internal/grid"
	"senkf/internal/workload"
)

func writeTestMember(t *testing.T, nx, ny int) (string, []float64) {
	t.Helper()
	dir := t.TempDir()
	field := make([]float64, nx*ny)
	for i := range field {
		field[i] = float64(i) * 0.5
	}
	path := MemberPath(dir, 3)
	if err := WriteMember(path, Header{NX: nx, NY: ny, Member: 3}, field); err != nil {
		t.Fatal(err)
	}
	return path, field
}

func TestWriteReadRoundTrip(t *testing.T) {
	path, field := writeTestMember(t, 12, 8)
	m, err := OpenMember(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if m.Header.NX != 12 || m.Header.NY != 8 || m.Header.Member != 3 {
		t.Fatalf("header = %+v", m.Header)
	}
	got, err := m.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	for i := range field {
		if got[i] != field[i] {
			t.Fatalf("value %d: %g want %g", i, got[i], field[i])
		}
	}
}

func TestWriteMemberValidation(t *testing.T) {
	dir := t.TempDir()
	if err := WriteMember(filepath.Join(dir, "x"), Header{NX: 0, NY: 4}, nil); err == nil {
		t.Error("expected dimension error")
	}
	if err := WriteMember(filepath.Join(dir, "x"), Header{NX: 2, NY: 2}, make([]float64, 3)); err == nil {
		t.Error("expected length error")
	}
}

func TestReadBarMatchesRows(t *testing.T) {
	path, field := writeTestMember(t, 10, 6)
	m, err := OpenMember(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	bar, err := m.ReadBar(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(bar) != 3*10 {
		t.Fatalf("bar length %d", len(bar))
	}
	for i, v := range bar {
		if v != field[2*10+i] {
			t.Fatalf("bar value %d wrong", i)
		}
	}
	if s := m.Stats(); s.Seeks != 1 {
		t.Errorf("bar read took %d seeks, want 1", s.Seeks)
	}
}

func TestReadBarBounds(t *testing.T) {
	path, _ := writeTestMember(t, 10, 6)
	m, err := OpenMember(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	for _, c := range [][2]int{{-1, 3}, {0, 7}, {4, 4}, {5, 2}} {
		if _, err := m.ReadBar(c[0], c[1]); err == nil {
			t.Errorf("ReadBar(%d,%d): expected error", c[0], c[1])
		}
	}
}

func TestReadBlockMatchesRectangle(t *testing.T) {
	path, field := writeTestMember(t, 10, 6)
	m, err := OpenMember(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	b := grid.Box{X0: 3, X1: 7, Y0: 1, Y1: 5}
	blk, err := m.ReadBlock(b)
	if err != nil {
		t.Fatal(err)
	}
	for y := b.Y0; y < b.Y1; y++ {
		for x := b.X0; x < b.X1; x++ {
			got := blk[(y-b.Y0)*b.Width()+(x-b.X0)]
			if got != field[y*10+x] {
				t.Fatalf("block value at (%d,%d) = %g want %g", x, y, got, field[y*10+x])
			}
		}
	}
}

func TestSeekAccountingBlockVsBar(t *testing.T) {
	// The asymmetry the paper's Figure 5 is about: a narrow block costs one
	// seek per row; a bar costs one seek total.
	path, _ := writeTestMember(t, 16, 12)
	m, err := OpenMember(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	b := grid.Box{X0: 2, X1: 6, Y0: 0, Y1: 12}
	if _, err := m.ReadBlock(b); err != nil {
		t.Fatal(err)
	}
	if s := m.Stats(); s.Seeks != 12 {
		t.Errorf("narrow block of height 12 took %d seeks, want 12", s.Seeks)
	}
	m2, err := OpenMember(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	full := grid.Box{X0: 0, X1: 16, Y0: 0, Y1: 12}
	if _, err := m2.ReadBlock(full); err != nil {
		t.Fatal(err)
	}
	if s := m2.Stats(); s.Seeks != 1 {
		t.Errorf("full-width block took %d seeks, want 1", s.Seeks)
	}
}

func TestReadBlockBounds(t *testing.T) {
	path, _ := writeTestMember(t, 10, 6)
	m, err := OpenMember(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	bad := []grid.Box{
		{X0: -1, X1: 3, Y0: 0, Y1: 2},
		{X0: 0, X1: 11, Y0: 0, Y1: 2},
		{X0: 0, X1: 3, Y0: 0, Y1: 7},
		{X0: 3, X1: 3, Y0: 0, Y1: 2},
	}
	for _, b := range bad {
		if _, err := m.ReadBlock(b); err == nil {
			t.Errorf("ReadBlock(%v): expected error", b)
		}
	}
}

func TestOpenMemberRejectsCorrupt(t *testing.T) {
	dir := t.TempDir()
	// Bad magic.
	bad := filepath.Join(dir, "bad.senk")
	if err := os.WriteFile(bad, append([]byte("NOPE"), make([]byte, 40)...), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenMember(bad); err == nil {
		t.Error("expected bad-magic error")
	}
	// Truncated payload.
	path, _ := writeTestMember(t, 4, 4)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	trunc := filepath.Join(dir, "trunc.senk")
	if err := os.WriteFile(trunc, data[:len(data)-8], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenMember(trunc); err == nil {
		t.Error("expected size mismatch error")
	}
	// Missing file.
	if _, err := OpenMember(filepath.Join(dir, "missing.senk")); err == nil {
		t.Error("expected open error")
	}
	// Too short for a header.
	short := filepath.Join(dir, "short.senk")
	if err := os.WriteFile(short, []byte("SENK"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenMember(short); err == nil {
		t.Error("expected short-header error")
	}
}

func TestWriteEnsemble(t *testing.T) {
	dir := t.TempDir()
	m, err := grid.NewMesh(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	truth := workload.Truth(m, workload.DefaultFieldSpec, 1)
	fields, err := workload.Ensemble(m, truth, 3, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	paths, err := WriteEnsemble(dir, m, fields)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 3 {
		t.Fatalf("got %d paths", len(paths))
	}
	for k, p := range paths {
		mf, err := OpenMember(p)
		if err != nil {
			t.Fatal(err)
		}
		if mf.Header.Member != k {
			t.Errorf("member index %d, want %d", mf.Header.Member, k)
		}
		got, err := mf.ReadAll()
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if got[i] != fields[k][i] {
				t.Fatalf("member %d value %d mismatch", k, i)
			}
		}
		mf.Close()
	}
}

func TestBarEqualsUnionOfBlockRows(t *testing.T) {
	path, _ := writeTestMember(t, 12, 9)
	ma, err := OpenMember(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ma.Close()
	bar, err := ma.ReadBar(3, 6)
	if err != nil {
		t.Fatal(err)
	}
	mb, err := OpenMember(path)
	if err != nil {
		t.Fatal(err)
	}
	defer mb.Close()
	blk, err := mb.ReadBlock(grid.Box{X0: 0, X1: 12, Y0: 3, Y1: 6})
	if err != nil {
		t.Fatal(err)
	}
	for i := range bar {
		if bar[i] != blk[i] {
			t.Fatalf("bar and full-width block disagree at %d", i)
		}
	}
}
