package ensio

import (
	"encoding/binary"
	"fmt"
	"hash/crc64"
	"math"
	"os"

	"senkf/internal/grid"
)

// Multi-level member files realise the paper's 3-D states: the §5.1
// configuration has 30 vertical levels, giving the Table-1 per-grid-point
// volume h = 30 × 8 = 240 bytes. Values are interleaved by level within
// each grid point — layout [y][x][level] — so a latitude bar carries *all*
// levels of its rows contiguously: one addressing operation still fetches
// the complete 3-D bar, exactly the property the bar-reading co-design
// exploits (the block reading approach keeps paying one seek per row, each
// row now h times larger).
//
// The header's reserved field stores the level count; 0 (files written by
// WriteMember) means 1 level, so single-level files remain valid.

// LevelCount returns the number of vertical levels (≥ 1).
func (h Header) LevelCount() int {
	if h.Levels <= 0 {
		return 1
	}
	return h.Levels
}

// WriteMemberLevels writes a multi-level member: levels[l] is the row-major
// n_y × n_x field of vertical level l. The header's Levels field is set
// from len(levels).
func WriteMemberLevels(path string, h Header, levels [][]float64) error {
	if h.NX <= 0 || h.NY <= 0 {
		return fmt.Errorf("ensio: invalid dimensions %dx%d", h.NX, h.NY)
	}
	if len(levels) == 0 {
		return fmt.Errorf("ensio: no levels")
	}
	for l, f := range levels {
		if len(f) != h.NX*h.NY {
			return fmt.Errorf("ensio: level %d has %d points, header says %d", l, len(f), h.NX*h.NY)
		}
	}
	h.Levels = len(levels)
	// Staged and renamed like WriteMember: a crash mid-write never leaves
	// a torn multi-level member behind a valid path.
	return atomicCreate(path, func(f *os.File) error {
		if _, err := f.Write(putHeader(h, h.Levels, 0)); err != nil {
			return fmt.Errorf("ensio: write header: %w", err)
		}
		crc := crc64.New(crcTable)
		nl := h.Levels
		buf := make([]byte, 8*h.NX*nl)
		for y := 0; y < h.NY; y++ {
			for x := 0; x < h.NX; x++ {
				for l := 0; l < nl; l++ {
					v := levels[l][y*h.NX+x]
					binary.LittleEndian.PutUint64(buf[8*(x*nl+l):], math.Float64bits(v))
				}
			}
			crc.Write(buf)
			if _, err := f.Write(buf); err != nil {
				return fmt.Errorf("ensio: write row %d: %w", y, err)
			}
		}
		var sum [8]byte
		binary.LittleEndian.PutUint64(sum[:], crc.Sum64())
		if _, err := f.WriteAt(sum[:], checksumOffset); err != nil {
			return fmt.Errorf("ensio: write checksum: %w", err)
		}
		return nil
	})
}

// WriteEnsembleLevels writes a multi-level ensemble: members[k][l] is
// member k's level-l field.
func WriteEnsembleLevels(dir string, m grid.Mesh, members [][][]float64) ([]string, error) {
	paths := make([]string, len(members))
	for k, levels := range members {
		p := MemberPath(dir, k)
		if err := WriteMemberLevels(p, Header{NX: m.NX, NY: m.NY, Member: k}, levels); err != nil {
			return nil, fmt.Errorf("ensio: member %d: %w", k, err)
		}
		paths[k] = p
	}
	return paths, nil
}

// deinterleave splits an interleaved [point][level] buffer into per-level
// slices of the given point count.
func deinterleave(data []float64, points, levels int) [][]float64 {
	out := make([][]float64, levels)
	for l := range out {
		out[l] = make([]float64, points)
	}
	for p := 0; p < points; p++ {
		base := p * levels
		for l := 0; l < levels; l++ {
			out[l][p] = data[base+l]
		}
	}
	return out
}

// ReadBarLevels reads the contiguous latitude rows [y0, y1) of every level
// with a single addressing operation, returning one row-major slice per
// level.
func (m *MemberFile) ReadBarLevels(y0, y1 int) ([][]float64, error) {
	if y0 < 0 || y1 > m.Header.NY || y0 >= y1 {
		return nil, fmt.Errorf("ensio: bar rows [%d,%d) out of range [0,%d)", y0, y1, m.Header.NY)
	}
	nl := m.Header.LevelCount()
	points := (y1 - y0) * m.Header.NX
	raw := make([]float64, points*nl)
	if err := m.readContiguous(y0*m.Header.NX*nl, len(raw), raw); err != nil {
		return nil, err
	}
	return deinterleave(raw, points, nl), nil
}

// ReadBlockLevels reads the rectangle b of every level, one addressing
// operation per latitude row (the block-reading penalty, now h times
// heavier per row).
func (m *MemberFile) ReadBlockLevels(b grid.Box) ([][]float64, error) {
	mesh := grid.Mesh{NX: m.Header.NX, NY: m.Header.NY}
	if b.Clamp(mesh) != b || b.Empty() {
		return nil, fmt.Errorf("ensio: block %v out of range for %dx%d", b, mesh.NX, mesh.NY)
	}
	nl := m.Header.LevelCount()
	if b.Width() == mesh.NX {
		return m.ReadBarLevels(b.Y0, b.Y1)
	}
	out := make([][]float64, nl)
	for l := range out {
		out[l] = make([]float64, b.Points())
	}
	raw := make([]float64, b.Width()*nl)
	for y := b.Y0; y < b.Y1; y++ {
		off := (y*mesh.NX + b.X0) * nl
		if err := m.readContiguous(off, len(raw), raw); err != nil {
			return nil, err
		}
		rowBase := (y - b.Y0) * b.Width()
		for xx := 0; xx < b.Width(); xx++ {
			for l := 0; l < nl; l++ {
				out[l][rowBase+xx] = raw[xx*nl+l]
			}
		}
	}
	return out, nil
}
