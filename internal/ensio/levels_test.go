package ensio

import (
	"testing"

	"senkf/internal/grid"
)

func writeTestLevels(t *testing.T, nx, ny, nl int) (string, [][]float64) {
	t.Helper()
	dir := t.TempDir()
	levels := make([][]float64, nl)
	for l := range levels {
		levels[l] = make([]float64, nx*ny)
		for i := range levels[l] {
			levels[l][i] = float64(l*10000 + i)
		}
	}
	path := MemberPath(dir, 0)
	if err := WriteMemberLevels(path, Header{NX: nx, NY: ny}, levels); err != nil {
		t.Fatal(err)
	}
	return path, levels
}

func TestLevelsRoundTrip(t *testing.T) {
	path, levels := writeTestLevels(t, 10, 6, 4)
	m, err := OpenMember(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if m.Header.LevelCount() != 4 {
		t.Fatalf("level count %d", m.Header.LevelCount())
	}
	got, err := m.ReadBarLevels(0, 6)
	if err != nil {
		t.Fatal(err)
	}
	for l := range levels {
		for i := range levels[l] {
			if got[l][i] != levels[l][i] {
				t.Fatalf("level %d value %d: %g want %g", l, i, got[l][i], levels[l][i])
			}
		}
	}
}

func TestLevelsBarIsOneSeek(t *testing.T) {
	path, _ := writeTestLevels(t, 16, 12, 5)
	m, err := OpenMember(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if _, err := m.ReadBarLevels(3, 9); err != nil {
		t.Fatal(err)
	}
	if s := m.Stats(); s.Seeks != 1 {
		t.Errorf("bar read of 5 levels took %d seeks, want 1", s.Seeks)
	}
	// Payload is levels × larger.
	if s := m.Stats(); s.BytesRead != int64(8*6*16*5) {
		t.Errorf("bytes read %d", s.BytesRead)
	}
}

func TestLevelsBlockMatchesBar(t *testing.T) {
	path, levels := writeTestLevels(t, 12, 8, 3)
	m, err := OpenMember(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	b := grid.Box{X0: 3, X1: 9, Y0: 2, Y1: 6}
	blk, err := m.ReadBlockLevels(b)
	if err != nil {
		t.Fatal(err)
	}
	for l := range blk {
		for y := b.Y0; y < b.Y1; y++ {
			for x := b.X0; x < b.X1; x++ {
				got := blk[l][(y-b.Y0)*b.Width()+(x-b.X0)]
				want := levels[l][y*12+x]
				if got != want {
					t.Fatalf("level %d at (%d,%d): %g want %g", l, x, y, got, want)
				}
			}
		}
	}
	// Narrow block: one seek per row.
	if s := m.Stats(); s.Seeks != b.Height() {
		t.Errorf("narrow multi-level block took %d seeks, want %d", s.Seeks, b.Height())
	}
}

func TestSingleLevelAPIGuards(t *testing.T) {
	path, _ := writeTestLevels(t, 8, 4, 2)
	m, err := OpenMember(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if _, err := m.ReadBar(0, 2); err == nil {
		t.Error("ReadBar on a 2-level file accepted")
	}
	if _, err := m.ReadBlock(grid.Box{X0: 0, X1: 4, Y0: 0, Y1: 2}); err == nil {
		t.Error("ReadBlock on a 2-level file accepted")
	}
}

func TestSingleLevelFilesStillWork(t *testing.T) {
	// Files written by WriteMember read back through both APIs.
	dir := t.TempDir()
	field := make([]float64, 8*4)
	for i := range field {
		field[i] = float64(i)
	}
	path := MemberPath(dir, 1)
	if err := WriteMember(path, Header{NX: 8, NY: 4, Member: 1}, field); err != nil {
		t.Fatal(err)
	}
	m, err := OpenMember(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if m.Header.LevelCount() != 1 {
		t.Fatalf("level count %d", m.Header.LevelCount())
	}
	viaLevels, err := m.ReadBarLevels(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	viaBar, err := m.ReadBar(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range field {
		if viaLevels[0][i] != field[i] || viaBar[i] != field[i] {
			t.Fatalf("mismatch at %d", i)
		}
	}
}

func TestWriteMemberLevelsValidation(t *testing.T) {
	dir := t.TempDir()
	p := MemberPath(dir, 0)
	if err := WriteMemberLevels(p, Header{NX: 4, NY: 4}, nil); err == nil {
		t.Error("no levels accepted")
	}
	if err := WriteMemberLevels(p, Header{NX: 0, NY: 4}, [][]float64{{1}}); err == nil {
		t.Error("bad dimensions accepted")
	}
	if err := WriteMemberLevels(p, Header{NX: 2, NY: 2}, [][]float64{{1, 2, 3}}); err == nil {
		t.Error("short level accepted")
	}
}

func TestReadBarLevelsBounds(t *testing.T) {
	path, _ := writeTestLevels(t, 8, 4, 2)
	m, err := OpenMember(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	for _, c := range [][2]int{{-1, 2}, {0, 5}, {3, 3}} {
		if _, err := m.ReadBarLevels(c[0], c[1]); err == nil {
			t.Errorf("ReadBarLevels(%d,%d) accepted", c[0], c[1])
		}
	}
	if _, err := m.ReadBlockLevels(grid.Box{X0: 0, X1: 9, Y0: 0, Y1: 2}); err == nil {
		t.Error("out-of-range block accepted")
	}
}
