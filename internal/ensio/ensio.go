// Package ensio implements the on-disk format of background ensemble
// members and the two access patterns the paper contrasts in §4.1:
//
//   - block reading (Figure 3): a processor reads its sub-domain rectangle
//     out of every member file; the rectangle is strided across latitude
//     rows, so it costs one disk-addressing operation per row — the
//     O(n_y × n_sdx) addressing blow-up of §4.1.1;
//   - bar reading (Figure 6): an I/O processor reads a contiguous range of
//     full latitude rows ("bar") with a single addressing operation.
//
// A member file is a small fixed header followed by the n_y × n_x field in
// row-major float64 little-endian order, exactly the "row priority" layout
// the paper assumes. Readers count addressing operations (seeks) and bytes
// so tests and benches can verify the seek asymmetry on real files.
package ensio

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"

	"senkf/internal/grid"
)

// Magic identifies a member file.
const Magic = "SENK"

// Version is the current format version.
const Version = 1

// headerSize is the byte length of the fixed header:
// magic(4) + version(4) + nx(4) + ny(4) + member(4) + levels(4).
const headerSize = 24

// Header describes a member file.
type Header struct {
	NX, NY int
	Member int // member index k (0-based)
	// Levels is the number of vertical levels interleaved per grid point;
	// 0 is treated as 1 (see LevelCount).
	Levels int
}

// IOStats accumulates access accounting for one open file.
type IOStats struct {
	Seeks     int   // disk addressing operations (one per contiguous request)
	BytesRead int64 // payload bytes read
	Reads     int   // read requests issued
}

// MemberPath returns the canonical file name of member k inside dir.
func MemberPath(dir string, k int) string {
	return filepath.Join(dir, fmt.Sprintf("member_%04d.senk", k))
}

// WriteMember writes one background ensemble member to path.
func WriteMember(path string, h Header, field []float64) error {
	if h.NX <= 0 || h.NY <= 0 {
		return fmt.Errorf("ensio: invalid dimensions %dx%d", h.NX, h.NY)
	}
	if len(field) != h.NX*h.NY {
		return fmt.Errorf("ensio: field has %d points, header says %d", len(field), h.NX*h.NY)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("ensio: create: %w", err)
	}
	defer f.Close()
	hdr := make([]byte, headerSize)
	copy(hdr[0:4], Magic)
	binary.LittleEndian.PutUint32(hdr[4:8], Version)
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(h.NX))
	binary.LittleEndian.PutUint32(hdr[12:16], uint32(h.NY))
	binary.LittleEndian.PutUint32(hdr[16:20], uint32(h.Member))
	binary.LittleEndian.PutUint32(hdr[20:24], 1)
	if _, err := f.Write(hdr); err != nil {
		return fmt.Errorf("ensio: write header: %w", err)
	}
	buf := make([]byte, 8*h.NX)
	for y := 0; y < h.NY; y++ {
		row := field[y*h.NX : (y+1)*h.NX]
		for i, v := range row {
			binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
		}
		if _, err := f.Write(buf); err != nil {
			return fmt.Errorf("ensio: write row %d: %w", y, err)
		}
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("ensio: sync: %w", err)
	}
	return nil
}

// WriteEnsemble writes all members of an ensemble into dir using the
// canonical member file names and returns the paths.
func WriteEnsemble(dir string, m grid.Mesh, fields [][]float64) ([]string, error) {
	paths := make([]string, len(fields))
	for k, f := range fields {
		p := MemberPath(dir, k)
		if err := WriteMember(p, Header{NX: m.NX, NY: m.NY, Member: k}, f); err != nil {
			return nil, fmt.Errorf("ensio: member %d: %w", k, err)
		}
		paths[k] = p
	}
	return paths, nil
}

// MemberFile is an open member file with access accounting.
type MemberFile struct {
	Header Header
	f      *os.File
	stats  IOStats
}

// OpenMember opens and validates a member file.
func OpenMember(path string) (*MemberFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("ensio: open: %w", err)
	}
	hdr := make([]byte, headerSize)
	if _, err := io.ReadFull(f, hdr); err != nil {
		f.Close()
		return nil, fmt.Errorf("ensio: read header: %w", err)
	}
	if string(hdr[0:4]) != Magic {
		f.Close()
		return nil, fmt.Errorf("ensio: bad magic %q in %s", hdr[0:4], path)
	}
	if v := binary.LittleEndian.Uint32(hdr[4:8]); v != Version {
		f.Close()
		return nil, fmt.Errorf("ensio: unsupported version %d in %s", v, path)
	}
	h := Header{
		NX:     int(binary.LittleEndian.Uint32(hdr[8:12])),
		NY:     int(binary.LittleEndian.Uint32(hdr[12:16])),
		Member: int(binary.LittleEndian.Uint32(hdr[16:20])),
		Levels: int(binary.LittleEndian.Uint32(hdr[20:24])),
	}
	if h.NX <= 0 || h.NY <= 0 {
		f.Close()
		return nil, fmt.Errorf("ensio: invalid dimensions %dx%d in %s", h.NX, h.NY, path)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("ensio: stat: %w", err)
	}
	if want := int64(headerSize) + int64(8*h.NX*h.NY*h.LevelCount()); fi.Size() != want {
		f.Close()
		return nil, fmt.Errorf("ensio: %s has %d bytes, want %d", path, fi.Size(), want)
	}
	return &MemberFile{Header: h, f: f}, nil
}

// Close closes the underlying file.
func (m *MemberFile) Close() error { return m.f.Close() }

// Stats returns the accumulated access accounting.
func (m *MemberFile) Stats() IOStats { return m.stats }

// readContiguous reads count float64 values starting at value offset off
// with a single addressing operation.
func (m *MemberFile) readContiguous(off, count int, dst []float64) error {
	buf := make([]byte, 8*count)
	if _, err := m.f.ReadAt(buf, int64(headerSize)+int64(8*off)); err != nil {
		return fmt.Errorf("ensio: read at %d: %w", off, err)
	}
	for i := 0; i < count; i++ {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	m.stats.Seeks++
	m.stats.Reads++
	m.stats.BytesRead += int64(8 * count)
	return nil
}

// ReadBar reads the contiguous latitude rows [y0, y1) — the bar reading
// approach: exactly one addressing operation regardless of the bar height.
func (m *MemberFile) ReadBar(y0, y1 int) ([]float64, error) {
	if m.Header.LevelCount() != 1 {
		return nil, fmt.Errorf("ensio: %d-level file needs ReadBarLevels", m.Header.LevelCount())
	}
	if y0 < 0 || y1 > m.Header.NY || y0 >= y1 {
		return nil, fmt.Errorf("ensio: bar rows [%d,%d) out of range [0,%d)", y0, y1, m.Header.NY)
	}
	out := make([]float64, (y1-y0)*m.Header.NX)
	if err := m.readContiguous(y0*m.Header.NX, len(out), out); err != nil {
		return nil, err
	}
	return out, nil
}

// ReadBlock reads the rectangle b — the block reading approach: one
// addressing operation per latitude row of the block, because the rows of a
// rectangle that is narrower than the mesh are not adjacent on disk.
func (m *MemberFile) ReadBlock(b grid.Box) ([]float64, error) {
	if m.Header.LevelCount() != 1 {
		return nil, fmt.Errorf("ensio: %d-level file needs ReadBlockLevels", m.Header.LevelCount())
	}
	mesh := grid.Mesh{NX: m.Header.NX, NY: m.Header.NY}
	if b.Clamp(mesh) != b || b.Empty() {
		return nil, fmt.Errorf("ensio: block %v out of range for %dx%d", b, mesh.NX, mesh.NY)
	}
	out := make([]float64, b.Points())
	if b.Width() == mesh.NX {
		// Full-width blocks are bars: contiguous, single seek.
		if err := m.readContiguous(b.Y0*mesh.NX, len(out), out); err != nil {
			return nil, err
		}
		return out, nil
	}
	for y := b.Y0; y < b.Y1; y++ {
		row := out[(y-b.Y0)*b.Width() : (y-b.Y0+1)*b.Width()]
		if err := m.readContiguous(y*mesh.NX+b.X0, b.Width(), row); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ReadAll reads the entire field with one addressing operation.
func (m *MemberFile) ReadAll() ([]float64, error) {
	return m.ReadBar(0, m.Header.NY)
}
