// Package ensio implements the on-disk format of background ensemble
// members and the two access patterns the paper contrasts in §4.1:
//
//   - block reading (Figure 3): a processor reads its sub-domain rectangle
//     out of every member file; the rectangle is strided across latitude
//     rows, so it costs one disk-addressing operation per row — the
//     O(n_y × n_sdx) addressing blow-up of §4.1.1;
//   - bar reading (Figure 6): an I/O processor reads a contiguous range of
//     full latitude rows ("bar") with a single addressing operation.
//
// A member file is a small fixed header followed by the n_y × n_x field in
// row-major float64 little-endian order, exactly the "row priority" layout
// the paper assumes. Readers count addressing operations (seeks) and bytes
// so tests and benches can verify the seek asymmetry on real files.
//
// Integrity and fault tolerance (format version 2): the header carries a
// CRC-64 checksum of the payload, so single-bit corruption and silent
// truncation are detected instead of silently assimilated; reads can be
// wrapped with a bounded retry-with-backoff policy and a fault-injection
// hook, so transient storage errors are survived and testable. Version-1
// files (no checksum) remain readable.
package ensio

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
	"io"
	"math"
	"os"
	"path/filepath"
	"time"

	"senkf/internal/grid"
)

// Magic identifies a member file.
const Magic = "SENK"

// Version is the current format version. Version 2 appends a CRC-64
// (ECMA) payload checksum to the version-1 header; version-1 files are
// still read (without integrity verification).
const Version = 2

const (
	// headerSizeV1 is the version-1 header:
	// magic(4) + version(4) + nx(4) + ny(4) + member(4) + levels(4).
	headerSizeV1 = 24
	// headerSizeV2 adds the payload checksum(8).
	headerSizeV2 = 32
	// checksumOffset is the byte offset of the checksum in a v2 header.
	checksumOffset = 24
)

// crcTable is the CRC-64 polynomial used for payload checksums.
var crcTable = crc64.MakeTable(crc64.ECMA)

// Header describes a member file.
type Header struct {
	NX, NY int
	Member int // member index k (0-based)
	// Levels is the number of vertical levels interleaved per grid point;
	// 0 is treated as 1 (see LevelCount).
	Levels int
	// Checksum is the CRC-64 (ECMA) of the payload bytes; meaningful only
	// when HasChecksum is true (version-2 files).
	Checksum    uint64
	HasChecksum bool
}

// IOStats accumulates access accounting for one open file.
type IOStats struct {
	Seeks     int   // disk addressing operations (one per contiguous request)
	BytesRead int64 // payload bytes read
	Reads     int   // read requests issued
	Retries   int   // failed attempts that were retried
}

// MemberPath returns the canonical file name of member k inside dir.
func MemberPath(dir string, k int) string {
	return filepath.Join(dir, fmt.Sprintf("member_%04d.senk", k))
}

// putHeader serializes h (with the given payload checksum) into a v2
// header block.
func putHeader(h Header, levels int, checksum uint64) []byte {
	hdr := make([]byte, headerSizeV2)
	copy(hdr[0:4], Magic)
	binary.LittleEndian.PutUint32(hdr[4:8], Version)
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(h.NX))
	binary.LittleEndian.PutUint32(hdr[12:16], uint32(h.NY))
	binary.LittleEndian.PutUint32(hdr[16:20], uint32(h.Member))
	binary.LittleEndian.PutUint32(hdr[20:24], uint32(levels))
	binary.LittleEndian.PutUint64(hdr[checksumOffset:], checksum)
	return hdr
}

// atomicCreate writes a member file crash-consistently: the content is
// staged into a hidden temp file in the same directory, synced to stable
// storage, and renamed over path in one atomic step — a crash mid-write
// can leave a stale temp file behind, but never a partial file behind a
// valid member path. (Durability of the rename itself is the caller's
// concern: checkpoint writers fsync the containing directory once after
// staging a whole ensemble.)
func atomicCreate(path string, write func(f *os.File) error) error {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	f, err := os.CreateTemp(dir, "."+base+".tmp-*")
	if err != nil {
		return fmt.Errorf("ensio: create: %w", err)
	}
	tmp := f.Name()
	defer func() {
		if tmp != "" {
			f.Close()
			os.Remove(tmp)
		}
	}()
	if err := write(f); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("ensio: sync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("ensio: close: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("ensio: rename: %w", err)
	}
	tmp = ""
	return nil
}

// WriteMember writes one background ensemble member to path. The write is
// atomic: readers racing the writer (and crashes mid-write) see either the
// previous complete file or the new one, never a torn member.
func WriteMember(path string, h Header, field []float64) error {
	if h.NX <= 0 || h.NY <= 0 {
		return fmt.Errorf("ensio: invalid dimensions %dx%d", h.NX, h.NY)
	}
	if len(field) != h.NX*h.NY {
		return fmt.Errorf("ensio: field has %d points, header says %d", len(field), h.NX*h.NY)
	}
	return atomicCreate(path, func(f *os.File) error {
		// Header first with a zero checksum, patched after the payload has
		// been streamed through the CRC.
		if _, err := f.Write(putHeader(h, 1, 0)); err != nil {
			return fmt.Errorf("ensio: write header: %w", err)
		}
		crc := crc64.New(crcTable)
		buf := make([]byte, 8*h.NX)
		for y := 0; y < h.NY; y++ {
			row := field[y*h.NX : (y+1)*h.NX]
			for i, v := range row {
				binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
			}
			crc.Write(buf)
			if _, err := f.Write(buf); err != nil {
				return fmt.Errorf("ensio: write row %d: %w", y, err)
			}
		}
		var sum [8]byte
		binary.LittleEndian.PutUint64(sum[:], crc.Sum64())
		if _, err := f.WriteAt(sum[:], checksumOffset); err != nil {
			return fmt.Errorf("ensio: write checksum: %w", err)
		}
		return nil
	})
}

// WriteEnsemble writes all members of an ensemble into dir using the
// canonical member file names and returns the paths.
func WriteEnsemble(dir string, m grid.Mesh, fields [][]float64) ([]string, error) {
	paths := make([]string, len(fields))
	for k, f := range fields {
		p := MemberPath(dir, k)
		if err := WriteMember(p, Header{NX: m.NX, NY: m.NY, Member: k}, f); err != nil {
			return nil, fmt.Errorf("ensio: member %d: %w", k, err)
		}
		paths[k] = p
	}
	return paths, nil
}

// ReadHook intercepts every read attempt: op is "read" or "verify",
// member the file's member index, attempt the 0-based attempt number of
// this operation. A non-nil return aborts the attempt with that error —
// fault plans use this to inject deterministic transient failures.
type ReadHook func(op string, member, attempt int) error

// RetryPolicy bounds retry-with-backoff for transient read errors.
type RetryPolicy struct {
	// Attempts is the total attempt budget per operation (first try
	// included); values below 1 mean a single attempt (no retry).
	Attempts int
	// Backoff is the wait before the first retry; it doubles per retry up
	// to MaxBackoff. Zero disables waiting (useful in tests).
	Backoff time.Duration
	// MaxBackoff caps the exponential growth of the per-retry wait; 0
	// applies the default cap of 8×Backoff (the wait used to double
	// unbounded, which under a large attempt budget turns a transient
	// stall into a multi-minute one).
	MaxBackoff time.Duration
	// JitterSeed, when non-zero, scales every wait by a deterministic
	// pseudo-random factor in [0.5, 1) keyed by (seed, member, retry):
	// concurrent readers retrying the same storage target desynchronize
	// instead of hammering it in lockstep, and a test seed replays the
	// exact wait sequence.
	JitterSeed uint64
}

func (r RetryPolicy) attempts() int {
	if r.Attempts < 1 {
		return 1
	}
	return r.Attempts
}

// wait returns the backoff before retry number `retry` (1-based) of an
// operation on the given member: Backoff doubled per prior retry, capped,
// then jittered when a seed is set.
func (r RetryPolicy) wait(member, retry int) time.Duration {
	if r.Backoff <= 0 || retry < 1 {
		return 0
	}
	limit := r.MaxBackoff
	if limit <= 0 {
		limit = 8 * r.Backoff
	}
	d := r.Backoff
	for i := 1; i < retry && d < limit; i++ {
		d *= 2
	}
	if d > limit {
		d = limit
	}
	if r.JitterSeed != 0 {
		x := r.JitterSeed ^ uint64(member)<<32 ^ uint64(retry)
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		frac := float64(z>>11) / float64(1<<53) // uniform [0, 1)
		d = time.Duration(float64(d) * (0.5 + 0.5*frac))
	}
	return d
}

// transient is the marker interface of retryable errors.
type transient interface{ Transient() bool }

// IsTransient reports whether err is marked retryable (it or a wrapped
// error implements Transient() bool returning true).
func IsTransient(err error) bool {
	var t transient
	return errors.As(err, &t) && t.Transient()
}

// OpenOptions configures integrity and fault-tolerance behaviour of
// OpenMemberOpts. The zero value matches OpenMember exactly.
type OpenOptions struct {
	Retry  RetryPolicy
	Hook   ReadHook
	Verify bool // verify the payload checksum before returning
}

// MemberFile is an open member file with access accounting.
type MemberFile struct {
	Header  Header
	path    string
	f       *os.File
	stats   IOStats
	dataOff int64 // payload start: headerSizeV1 or headerSizeV2
	retry   RetryPolicy
	hook    ReadHook
}

// OpenMember opens and validates a member file (no retry, no checksum
// verification — the fast path of the bit-exact schedules).
func OpenMember(path string) (*MemberFile, error) {
	return OpenMemberOpts(path, OpenOptions{})
}

// OpenMemberOpts opens and validates a member file with the given
// integrity options. Truncation is caught by the size check here; payload
// corruption is caught when o.Verify is set (or later via VerifyChecksum).
func OpenMemberOpts(path string, o OpenOptions) (*MemberFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("ensio: open: %w", err)
	}
	hdr := make([]byte, headerSizeV1)
	if _, err := io.ReadFull(f, hdr); err != nil {
		f.Close()
		return nil, fmt.Errorf("ensio: read header: %w", err)
	}
	if string(hdr[0:4]) != Magic {
		f.Close()
		return nil, fmt.Errorf("ensio: bad magic %q in %s", hdr[0:4], path)
	}
	v := binary.LittleEndian.Uint32(hdr[4:8])
	if v != 1 && v != Version {
		f.Close()
		return nil, fmt.Errorf("ensio: unsupported version %d in %s", v, path)
	}
	h := Header{
		NX:     int(binary.LittleEndian.Uint32(hdr[8:12])),
		NY:     int(binary.LittleEndian.Uint32(hdr[12:16])),
		Member: int(binary.LittleEndian.Uint32(hdr[16:20])),
		Levels: int(binary.LittleEndian.Uint32(hdr[20:24])),
	}
	dataOff := int64(headerSizeV1)
	if v == Version {
		var sum [8]byte
		if _, err := io.ReadFull(f, sum[:]); err != nil {
			f.Close()
			return nil, fmt.Errorf("ensio: read checksum: %w", err)
		}
		h.Checksum = binary.LittleEndian.Uint64(sum[:])
		h.HasChecksum = true
		dataOff = headerSizeV2
	}
	if h.NX <= 0 || h.NY <= 0 {
		f.Close()
		return nil, fmt.Errorf("ensio: invalid dimensions %dx%d in %s", h.NX, h.NY, path)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("ensio: stat: %w", err)
	}
	if want := dataOff + int64(8*h.NX*h.NY*h.LevelCount()); fi.Size() != want {
		f.Close()
		return nil, fmt.Errorf("ensio: %s has %d bytes, want %d (truncated or padded member file)", path, fi.Size(), want)
	}
	m := &MemberFile{Header: h, path: path, f: f, dataOff: dataOff, retry: o.Retry, hook: o.Hook}
	if o.Verify {
		if err := m.VerifyChecksum(); err != nil {
			f.Close()
			return nil, err
		}
	}
	return m, nil
}

// Close closes the underlying file.
func (m *MemberFile) Close() error { return m.f.Close() }

// Stats returns the accumulated access accounting.
func (m *MemberFile) Stats() IOStats { return m.stats }

// CheckGeometry validates the header against the geometry a reader is
// about to assume — mesh dimensions, vertical level count (0 accepts any)
// and member index (negative accepts any) — returning a descriptive error
// on mismatch instead of letting the read return garbage.
func (m *MemberFile) CheckGeometry(nx, ny, levels, member int) error {
	h := m.Header
	if h.NX != nx || h.NY != ny {
		return fmt.Errorf("ensio: %s holds a %dx%d field, reader expects %dx%d", m.path, h.NX, h.NY, nx, ny)
	}
	if levels > 0 && h.LevelCount() != levels {
		return fmt.Errorf("ensio: %s holds %d vertical levels, reader expects %d", m.path, h.LevelCount(), levels)
	}
	if member >= 0 && h.Member != member {
		return fmt.Errorf("ensio: %s is member %d, reader expects member %d", m.path, h.Member, member)
	}
	return nil
}

// CorruptionError reports a payload checksum mismatch. It is permanent
// (not transient): retrying a corrupted file cannot help.
type CorruptionError struct {
	Path   string
	Member int
	Want   uint64
	Got    uint64
}

func (e *CorruptionError) Error() string {
	return fmt.Sprintf("ensio: %s (member %d) payload checksum %016x, header says %016x — corrupted member file", e.Path, e.Member, e.Got, e.Want)
}

// withRetry runs op under the file's retry policy: transient errors are
// retried with capped, optionally jittered exponential backoff until the
// attempt budget is exhausted; permanent errors abort immediately.
func (m *MemberFile) withRetry(opName string, op func() error) error {
	attempts := m.retry.attempts()
	var lastErr error
	for a := 0; a < attempts; a++ {
		if a > 0 {
			if d := m.retry.wait(m.Header.Member, a); d > 0 {
				time.Sleep(d)
			}
			m.stats.Retries++
		}
		err := m.attempt(opName, a, op)
		if err == nil {
			return nil
		}
		lastErr = err
		if !IsTransient(err) {
			return err
		}
	}
	return fmt.Errorf("ensio: member %d %s failed after %d attempts: %w", m.Header.Member, opName, attempts, lastErr)
}

func (m *MemberFile) attempt(opName string, a int, op func() error) error {
	if m.hook != nil {
		if err := m.hook(opName, m.Header.Member, a); err != nil {
			return err
		}
	}
	return op()
}

// VerifyChecksum re-reads the whole payload and compares its CRC-64
// against the header. Version-1 files carry no checksum and verify as a
// no-op. Corruption yields a *CorruptionError.
func (m *MemberFile) VerifyChecksum() error {
	if !m.Header.HasChecksum {
		return nil
	}
	return m.withRetry("verify", func() error {
		crc := crc64.New(crcTable)
		if _, err := m.f.Seek(m.dataOff, io.SeekStart); err != nil {
			return fmt.Errorf("ensio: seek payload: %w", err)
		}
		n, err := io.Copy(crc, m.f)
		if err != nil {
			return fmt.Errorf("ensio: verify read: %w", err)
		}
		m.stats.Seeks++
		m.stats.Reads++
		m.stats.BytesRead += n
		if got := crc.Sum64(); got != m.Header.Checksum {
			return &CorruptionError{Path: m.path, Member: m.Header.Member, Want: m.Header.Checksum, Got: got}
		}
		return nil
	})
}

// readContiguous reads count float64 values starting at value offset off
// with a single addressing operation, applying the hook and retry policy.
func (m *MemberFile) readContiguous(off, count int, dst []float64) error {
	buf := make([]byte, 8*count)
	err := m.withRetry("read", func() error {
		if _, err := m.f.ReadAt(buf, m.dataOff+int64(8*off)); err != nil {
			return fmt.Errorf("ensio: read at %d: %w", off, err)
		}
		return nil
	})
	if err != nil {
		return err
	}
	for i := 0; i < count; i++ {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	m.stats.Seeks++
	m.stats.Reads++
	m.stats.BytesRead += int64(8 * count)
	return nil
}

// ReadBar reads the contiguous latitude rows [y0, y1) — the bar reading
// approach: exactly one addressing operation regardless of the bar height.
func (m *MemberFile) ReadBar(y0, y1 int) ([]float64, error) {
	if m.Header.LevelCount() != 1 {
		return nil, fmt.Errorf("ensio: %d-level file needs ReadBarLevels", m.Header.LevelCount())
	}
	if y0 < 0 || y1 > m.Header.NY || y0 >= y1 {
		return nil, fmt.Errorf("ensio: bar rows [%d,%d) out of range [0,%d)", y0, y1, m.Header.NY)
	}
	out := make([]float64, (y1-y0)*m.Header.NX)
	if err := m.readContiguous(y0*m.Header.NX, len(out), out); err != nil {
		return nil, err
	}
	return out, nil
}

// ReadBlock reads the rectangle b — the block reading approach: one
// addressing operation per latitude row of the block, because the rows of a
// rectangle that is narrower than the mesh are not adjacent on disk.
func (m *MemberFile) ReadBlock(b grid.Box) ([]float64, error) {
	if m.Header.LevelCount() != 1 {
		return nil, fmt.Errorf("ensio: %d-level file needs ReadBlockLevels", m.Header.LevelCount())
	}
	mesh := grid.Mesh{NX: m.Header.NX, NY: m.Header.NY}
	if b.Clamp(mesh) != b || b.Empty() {
		return nil, fmt.Errorf("ensio: block %v out of range for %dx%d", b, mesh.NX, mesh.NY)
	}
	out := make([]float64, b.Points())
	if b.Width() == mesh.NX {
		// Full-width blocks are bars: contiguous, single seek.
		if err := m.readContiguous(b.Y0*mesh.NX, len(out), out); err != nil {
			return nil, err
		}
		return out, nil
	}
	for y := b.Y0; y < b.Y1; y++ {
		row := out[(y-b.Y0)*b.Width() : (y-b.Y0+1)*b.Width()]
		if err := m.readContiguous(y*mesh.NX+b.X0, b.Width(), row); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ReadAll reads the entire field with one addressing operation.
func (m *MemberFile) ReadAll() ([]float64, error) {
	return m.ReadBar(0, m.Header.NY)
}

// DirInfo summarizes an on-disk ensemble directory.
type DirInfo struct {
	N      int // member files found (members 0..N-1, contiguous)
	NX, NY int
	Levels int
}

// InspectDir validates an ensemble directory before a run: members
// 0..n-1 must exist, open cleanly and agree on geometry. With n <= 0 the
// directory is scanned until the first missing member. The returned
// DirInfo carries the common geometry; errors name the offending member
// and what is wrong with it, so callers can print one actionable line.
func InspectDir(dir string, n int) (DirInfo, error) {
	var info DirInfo
	if n <= 0 {
		for {
			if _, err := os.Stat(MemberPath(dir, n)); err != nil {
				break
			}
			n++
		}
		if n == 0 {
			return info, fmt.Errorf("ensio: no member files in %s (expected member_0000.senk, ... — generate them with senkf-gen)", dir)
		}
	}
	for k := 0; k < n; k++ {
		path := MemberPath(dir, k)
		mf, err := OpenMember(path)
		if err != nil {
			if os.IsNotExist(errors.Unwrap(err)) || errors.Is(err, os.ErrNotExist) {
				return info, fmt.Errorf("ensio: member %d of %d missing from %s (%s)", k, n, dir, err)
			}
			return info, fmt.Errorf("ensio: member %d unreadable: %w", k, err)
		}
		h := mf.Header
		mf.Close()
		if k == 0 {
			info = DirInfo{N: n, NX: h.NX, NY: h.NY, Levels: h.LevelCount()}
			continue
		}
		if h.NX != info.NX || h.NY != info.NY || h.LevelCount() != info.Levels {
			return info, fmt.Errorf("ensio: member %d is %dx%d with %d levels, member 0 is %dx%d with %d levels — mixed ensembles in %s",
				k, h.NX, h.NY, h.LevelCount(), info.NX, info.NY, info.Levels, dir)
		}
		if h.Member != k {
			return info, fmt.Errorf("ensio: file %s declares member %d, expected %d", path, h.Member, k)
		}
	}
	return info, nil
}
