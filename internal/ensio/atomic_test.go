package ensio

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"senkf/internal/grid"
)

// field returns a deterministic nx×ny test field keyed by k.
func testField(nx, ny, k int) []float64 {
	f := make([]float64, nx*ny)
	for i := range f {
		f[i] = float64(k*1000 + i)
	}
	return f
}

// TestWriteMemberAtomicReplace overwrites an existing member and checks
// the new content landed and no staging temp files linger.
func TestWriteMemberAtomicReplace(t *testing.T) {
	dir := t.TempDir()
	path := MemberPath(dir, 0)
	h := Header{NX: 6, NY: 4, Member: 0}
	if err := WriteMember(path, h, testField(6, 4, 1)); err != nil {
		t.Fatal(err)
	}
	want := testField(6, 4, 2)
	if err := WriteMember(path, h, want); err != nil {
		t.Fatal(err)
	}
	mf, err := OpenMemberOpts(path, OpenOptions{Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	defer mf.Close()
	got, err := mf.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("point %d: got %g want %g", i, got[i], want[i])
		}
	}
	assertNoTempFiles(t, dir)
}

// TestWriteMemberFailureLeavesNoTemp forces the final rename to fail (the
// target path is a directory) and checks the staged temp file is cleaned
// up — a failed write never litters the ensemble directory.
func TestWriteMemberFailureLeavesNoTemp(t *testing.T) {
	dir := t.TempDir()
	path := MemberPath(dir, 0)
	if err := os.Mkdir(path, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := WriteMember(path, Header{NX: 4, NY: 3, Member: 0}, testField(4, 3, 0)); err == nil {
		t.Fatal("WriteMember over a directory succeeded")
	}
	assertNoTempFiles(t, dir)
}

// TestWriteMemberLevelsAtomicReplace is the multi-level twin.
func TestWriteMemberLevelsAtomicReplace(t *testing.T) {
	dir := t.TempDir()
	m := grid.Mesh{NX: 5, NY: 3}
	path := MemberPath(dir, 2)
	h := Header{NX: m.NX, NY: m.NY, Member: 2}
	if err := WriteMemberLevels(path, h, [][]float64{testField(5, 3, 0), testField(5, 3, 1)}); err != nil {
		t.Fatal(err)
	}
	want := [][]float64{testField(5, 3, 7), testField(5, 3, 8)}
	if err := WriteMemberLevels(path, h, want); err != nil {
		t.Fatal(err)
	}
	mf, err := OpenMemberOpts(path, OpenOptions{Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	defer mf.Close()
	got, err := mf.ReadBarLevels(0, m.NY)
	if err != nil {
		t.Fatal(err)
	}
	for l := range want {
		for i := range want[l] {
			if got[l][i] != want[l][i] {
				t.Fatalf("level %d point %d: got %g want %g", l, i, got[l][i], want[l][i])
			}
		}
	}
	assertNoTempFiles(t, dir)
}

func assertNoTempFiles(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if ok, _ := filepath.Match(".*.tmp-*", e.Name()); ok {
			t.Fatalf("staging temp file %s left behind", e.Name())
		}
	}
}

// TestRetryBackoffCap pins the capped exponential schedule: without
// jitter the waits double up to MaxBackoff and stay there.
func TestRetryBackoffCap(t *testing.T) {
	r := RetryPolicy{Attempts: 8, Backoff: 10 * time.Millisecond, MaxBackoff: 40 * time.Millisecond}
	want := []time.Duration{10, 20, 40, 40, 40}
	for i, w := range want {
		if got := r.wait(0, i+1); got != w*time.Millisecond {
			t.Errorf("retry %d: wait %v, want %v", i+1, got, w*time.Millisecond)
		}
	}
	// The default cap bounds the former unbounded doubling at 8×Backoff.
	def := RetryPolicy{Attempts: 32, Backoff: time.Millisecond}
	if got, limit := def.wait(0, 30), 8*time.Millisecond; got != limit {
		t.Errorf("default cap: wait %v, want %v", got, limit)
	}
}

// TestRetryBackoffJitterDeterministic pins the seeded jitter: same seed
// replays the same waits, every wait stays within [base/2, base), and
// different members desynchronize.
func TestRetryBackoffJitterDeterministic(t *testing.T) {
	r := RetryPolicy{Attempts: 5, Backoff: 16 * time.Millisecond, MaxBackoff: 64 * time.Millisecond, JitterSeed: 42}
	base := []time.Duration{16, 32, 64, 64}
	var first []time.Duration
	for i := range base {
		d := r.wait(3, i+1)
		lo, hi := base[i]*time.Millisecond/2, base[i]*time.Millisecond
		if d < lo || d >= hi {
			t.Errorf("retry %d: jittered wait %v outside [%v, %v)", i+1, d, lo, hi)
		}
		first = append(first, d)
	}
	for i := range base {
		if d := r.wait(3, i+1); d != first[i] {
			t.Errorf("retry %d: jitter not deterministic: %v then %v", i+1, first[i], d)
		}
	}
	diverged := false
	for i := range base {
		if r.wait(4, i+1) != first[i] {
			diverged = true
		}
	}
	if !diverged {
		t.Error("jitter identical across members — seed not keyed by member")
	}
}

// TestRetryWaitZeroBackoff keeps the test-friendly zero policy waitless.
func TestRetryWaitZeroBackoff(t *testing.T) {
	r := RetryPolicy{Attempts: 5, JitterSeed: 9}
	for i := 1; i < 5; i++ {
		if d := r.wait(0, i); d != 0 {
			t.Fatalf("zero backoff policy waited %v", d)
		}
	}
}
