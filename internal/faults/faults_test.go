package faults

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func TestNilPlanIsInert(t *testing.T) {
	var pl *Plan
	if _, ok := pl.WindowAt(0, 1); ok {
		t.Error("nil plan has a window")
	}
	if f := pl.SlowdownFor("io/g0/r0"); f != 1 {
		t.Errorf("nil plan slowdown = %g", f)
	}
	if _, ok := pl.FaultFor(3); ok {
		t.Error("nil plan has a file fault")
	}
	if pl.Drops(3) {
		t.Error("nil plan drops a member")
	}
	if pl.DeadAt(0, 0, 0, 0) || pl.DeadBeforeStage(0, 0, 0) {
		t.Error("nil plan kills a rank")
	}
	if hook := pl.EnsioHook(); hook != nil {
		t.Error("nil plan yields a hook")
	}
	if err := pl.Validate(2, 2, 3, 12, 8); err != nil {
		t.Errorf("nil plan invalid: %v", err)
	}
	if err := pl.Apply(t.TempDir()); err != nil {
		t.Errorf("nil plan apply: %v", err)
	}
}

func TestWindowAt(t *testing.T) {
	pl := &Plan{OSTWindows: []OSTWindow{{OST: 2, Start: 1, End: 3, Factor: 0}}}
	if _, ok := pl.WindowAt(2, 0.5); ok {
		t.Error("window before start")
	}
	w, ok := pl.WindowAt(2, 1)
	if !ok || w.Factor != 0 {
		t.Errorf("window at start = %v %v", w, ok)
	}
	if _, ok := pl.WindowAt(2, 3); ok {
		t.Error("window at end (half-open)")
	}
	if _, ok := pl.WindowAt(1, 2); ok {
		t.Error("window on wrong OST")
	}
}

func TestDeathPredicates(t *testing.T) {
	pl := &Plan{Deaths: []RankDeath{
		{Group: 0, Reader: 1, BeforeStage: 2},
		{Group: 1, Reader: 0, At: 5.0},
	}}
	if pl.DeadAt(0, 1, 1, 99) {
		t.Error("stage-death fired early")
	}
	if !pl.DeadAt(0, 1, 2, 0) || !pl.DeadAt(0, 1, 3, 0) {
		t.Error("stage-death did not fire at/after its stage")
	}
	if pl.DeadAt(1, 0, 9, 4.9) {
		t.Error("time-death fired before At")
	}
	if !pl.DeadAt(1, 0, 0, 5.0) {
		t.Error("time-death did not fire at At")
	}
	// Real execution ignores time-based deaths.
	if pl.DeadBeforeStage(1, 0, 99) {
		t.Error("time-death fired in the stage-only predicate")
	}
	if !pl.DeadBeforeStage(0, 1, 2) {
		t.Error("stage-death missing in stage-only predicate")
	}
}

func TestSuccessor(t *testing.T) {
	dead := func(j int) bool { return j == 1 || j == 2 }
	if s, ok := Successor(1, 4, dead); !ok || s != 3 {
		t.Errorf("successor of 1 = %d, %v", s, ok)
	}
	if s, ok := Successor(2, 4, dead); !ok || s != 3 {
		t.Errorf("successor of 2 = %d, %v", s, ok)
	}
	if _, ok := Successor(0, 2, func(int) bool { return true }); ok {
		t.Error("successor found in a fully dead group")
	}
}

func TestValidateRejectsBadPlans(t *testing.T) {
	cases := []struct {
		name string
		pl   *Plan
	}{
		{"ost out of range", &Plan{OSTWindows: []OSTWindow{{OST: 9, Start: 0, End: 1}}}},
		{"empty window", &Plan{OSTWindows: []OSTWindow{{OST: 0, Start: 2, End: 2}}}},
		{"factor below one", &Plan{OSTWindows: []OSTWindow{{OST: 0, Start: 0, End: 1, Factor: 0.5}}}},
		{"slow straggler", &Plan{Stragglers: []Straggler{{Proc: "io/g0/r0", Factor: 0.2}}}},
		{"member out of range", &Plan{FileFaults: []FileFault{{Member: 12, Kind: FileMissing}}}},
		{"duplicate member", &Plan{FileFaults: []FileFault{{Member: 1, Kind: FileMissing}, {Member: 1, Kind: FileCorrupt}}}},
		{"transient without count", &Plan{FileFaults: []FileFault{{Member: 1, Kind: FileTransient}}}},
		{"death group range", &Plan{Deaths: []RankDeath{{Group: 5, Reader: 0, BeforeStage: 1}}}},
		{"death stage range", &Plan{Deaths: []RankDeath{{Group: 0, Reader: 0, BeforeStage: 3}}}},
		{"whole group dies", &Plan{Deaths: []RankDeath{
			{Group: 0, Reader: 0, BeforeStage: 1},
			{Group: 0, Reader: 1, BeforeStage: 2},
		}}},
		{"negative crash cycle", &Plan{Crash: &CycleCrash{Cycle: -1}}},
	}
	for _, c := range cases {
		if err := c.pl.Validate(2, 2, 3, 12, 8); err == nil {
			t.Errorf("%s: validated", c.name)
		}
	}
	good := &Plan{
		OSTWindows: []OSTWindow{{OST: 1, Start: 0, End: 2, Factor: 3}},
		Stragglers: []Straggler{{Proc: "io/g0/r1", Factor: 2}},
		FileFaults: []FileFault{{Member: 3, Kind: FileTransient, Count: 2}},
		Deaths:     []RankDeath{{Group: 1, Reader: 1, BeforeStage: 1}},
		Crash:      &CycleCrash{Cycle: 4},
	}
	if err := good.Validate(2, 2, 3, 12, 8); err != nil {
		t.Errorf("good plan rejected: %v", err)
	}
}

func TestCrashAfter(t *testing.T) {
	var nilPlan *Plan
	if nilPlan.CrashAfter(0) {
		t.Error("nil plan crashes")
	}
	if (&Plan{}).CrashAfter(0) {
		t.Error("empty plan crashes")
	}
	pl := &Plan{Crash: &CycleCrash{Cycle: 2}}
	for i, want := range []bool{false, false, true, false} {
		if pl.CrashAfter(i) != want {
			t.Errorf("CrashAfter(%d) = %v", i, !want)
		}
	}
}

func TestEnsioHookDeterministicAttempts(t *testing.T) {
	pl := &Plan{FileFaults: []FileFault{{Member: 4, Kind: FileTransient, Count: 2}}}
	hook := pl.EnsioHook()
	if hook == nil {
		t.Fatal("nil hook")
	}
	for a := 0; a < 2; a++ {
		err := hook("read", 4, a)
		if err == nil {
			t.Fatalf("attempt %d did not fail", a)
		}
		var te *TransientError
		if !errors.As(err, &te) || !te.Transient() {
			t.Fatalf("attempt %d error %v is not transient", a, err)
		}
	}
	if err := hook("read", 4, 2); err != nil {
		t.Errorf("attempt 2 failed: %v", err)
	}
	if err := hook("read", 5, 0); err != nil {
		t.Errorf("unfaulted member failed: %v", err)
	}
}

func TestGenerateDeterministicAndScaling(t *testing.T) {
	g := Geometry{OSTs: 8, NCg: 2, NSdy: 4, L: 4, N: 24, Horizon: 10}
	a := Generate(7, 0.8, g)
	b := Generate(7, 0.8, g)
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed/intensity produced different plans")
	}
	if empty := Generate(7, 0, g); len(empty.OSTWindows)+len(empty.FileFaults)+len(empty.Deaths)+len(empty.Stragglers) != 0 {
		t.Errorf("zero intensity produced faults: %+v", empty)
	}
	if err := a.Validate(g.NCg, g.NSdy, g.L, g.N, g.OSTs); err != nil {
		t.Errorf("generated plan invalid: %v", err)
	}
	hi := Generate(3, 1, g)
	if len(hi.OSTWindows) == 0 || len(hi.FileFaults) == 0 {
		t.Errorf("full intensity produced no I/O or file faults: %+v", hi)
	}
	if len(hi.Deaths) == 0 {
		t.Error("full intensity produced no rank death")
	}
	if err := hi.Validate(g.NCg, g.NSdy, g.L, g.N, g.OSTs); err != nil {
		t.Errorf("high-intensity plan invalid: %v", err)
	}
}

func TestApplyDamagesFiles(t *testing.T) {
	dir := t.TempDir()
	// Three fake member files: a 32-byte header surrogate plus payload.
	payload := make([]byte, 256)
	for i := range payload {
		payload[i] = byte(i)
	}
	for k := 0; k < 3; k++ {
		if err := os.WriteFile(memberPath(dir, k), append(make([]byte, 32), payload...), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	pl := &Plan{Seed: 11, FileFaults: []FileFault{
		{Member: 0, Kind: FileMissing},
		{Member: 1, Kind: FileTruncated, Offset: 40},
		{Member: 2, Kind: FileCorrupt, Offset: 10},
	}}
	if err := pl.Apply(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(memberPath(dir, 0)); !os.IsNotExist(err) {
		t.Error("member 0 still exists")
	}
	fi, err := os.Stat(memberPath(dir, 1))
	if err != nil || fi.Size() != 40 {
		t.Errorf("member 1 size = %v, %v", fi, err)
	}
	got, err := os.ReadFile(memberPath(dir, 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 32+256 {
		t.Fatalf("member 2 length changed: %d", len(got))
	}
	diff := 0
	for i, b := range got[32:] {
		if b != payload[i] {
			diff++
			if i != 10 {
				t.Errorf("corruption at offset %d, want 10", i)
			}
		}
	}
	if diff != 1 {
		t.Errorf("corrupted %d bytes, want exactly 1", diff)
	}
	if !reflect.DeepEqual(filepath.Base(memberPath(dir, 2)), "member_0002.senk") {
		t.Errorf("member path mismatch: %s", memberPath(dir, 2))
	}
}
