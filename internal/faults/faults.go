// Package faults defines deterministic, seeded fault plans that can be
// injected into both execution substrates of the reproduction:
//
//   - the simulated substrate (internal/sim + internal/parfs +
//     internal/schedule): per-OST outage and degraded-bandwidth windows,
//     straggler processors, member-file faults and I/O-rank deaths are
//     replayed on the discrete-event machine, so resilience can be studied
//     at the paper's 12,000-processor scale;
//   - the real execution (internal/ensio + internal/mpi + internal/core):
//     member-file faults are injected through a read hook (transient
//     errors) or by physically damaging files on disk (Apply), and I/O-rank
//     deaths drive the concurrent-group failover of the resilient S-EnKF.
//
// A Plan is pure data: evaluating it has no side effects and every
// predicate is a deterministic function of the plan, so all ranks (real
// goroutines or simulated processors) can independently agree on the same
// fault history — the "fail-stop with perfect failure detection" model that
// makes plan-driven failover deterministic and testable.
package faults

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// FileFaultKind classifies a member-file fault.
type FileFaultKind int

const (
	// FileMissing removes the member file entirely.
	FileMissing FileFaultKind = iota + 1
	// FileTruncated cuts the file short, so the size check at open fails.
	FileTruncated
	// FileCorrupt flips one payload bit, so the checksum at open fails.
	FileCorrupt
	// FileTransient makes the first Count read attempts fail with a
	// retryable error; the file itself is intact.
	FileTransient
)

// String names the kind for error messages and tables.
func (k FileFaultKind) String() string {
	switch k {
	case FileMissing:
		return "missing"
	case FileTruncated:
		return "truncated"
	case FileCorrupt:
		return "corrupt"
	case FileTransient:
		return "transient"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// FileFault is one member-file fault.
type FileFault struct {
	Member int
	Kind   FileFaultKind
	// Count, for FileTransient, is how many attempts fail before a read
	// succeeds. A Count at or above the reader's retry budget turns the
	// transient fault into a permanent one (the member is dropped).
	Count int
	// Offset, for FileTruncated/FileCorrupt, is the payload byte offset of
	// the damage; negative picks a seeded pseudo-random offset in Apply.
	Offset int64
}

// OSTWindow is a time window during which one object storage target is
// unavailable (Factor == 0) or degraded (Factor > 1 multiplies service
// time).
type OSTWindow struct {
	OST        int
	Start, End float64 // virtual seconds, half-open [Start, End)
	Factor     float64 // 0 = full outage; > 1 = service-time multiplier
}

// Straggler slows down one simulated processor: every virtual sleep of the
// named process is multiplied by Factor (≥ 1).
type Straggler struct {
	Proc   string // processor name (metrics.IOName / metrics.ComputeName)
	Factor float64
}

// ParseStraggler parses a "proc:factor" flag value (e.g. "io/g0/r0:30")
// into a Straggler. The factor is taken after the last colon, so processor
// names containing colons would still parse.
func ParseStraggler(spec string) (Straggler, error) {
	i := strings.LastIndex(spec, ":")
	if i <= 0 || i == len(spec)-1 {
		return Straggler{}, fmt.Errorf("faults: straggler %q: want proc:factor", spec)
	}
	f, err := strconv.ParseFloat(spec[i+1:], 64)
	if err != nil {
		return Straggler{}, fmt.Errorf("faults: straggler %q: %w", spec, err)
	}
	if f <= 1 {
		return Straggler{}, fmt.Errorf("faults: straggler %q: factor must be > 1", spec)
	}
	return Straggler{Proc: spec[:i], Factor: f}, nil
}

// RankDeath kills the I/O rank (Group, Reader) of the S-EnKF schedule.
// With At == 0 the rank dies right before serving stage BeforeStage (both
// substrates). With At > 0 the rank dies at the first stage boundary whose
// virtual time is ≥ At — simulation only, since the real execution has no
// virtual clock.
type RankDeath struct {
	Group, Reader int
	BeforeStage   int
	At            float64
}

// CycleCrash kills the whole process at a cycle boundary of a cycled
// experiment: right after cycle Cycle's analysis (and its checkpoint, when
// checkpointing is on) the process exits without any graceful landing — the
// harshest fault the checkpoint/resume machinery must survive.
type CycleCrash struct {
	Cycle int
}

// Plan is a deterministic, seeded fault scenario. The zero value (and a
// nil *Plan) injects nothing.
type Plan struct {
	Seed       uint64
	OSTWindows []OSTWindow
	Stragglers []Straggler
	FileFaults []FileFault
	Deaths     []RankDeath
	// Crash, when non-nil, is a whole-process kill at a cycle boundary
	// (cycled experiments only; the per-analysis substrates ignore it).
	Crash *CycleCrash
	// RetryBudget is the number of read attempts the simulated schedule
	// models before declaring a transient fault permanent; 0 means 3,
	// matching DefaultRetryBudget.
	RetryBudget int
	// OSTs, when positive, lets the real execution map member files to
	// storage targets the same way parfs does (file k lives on OST
	// k mod OSTs): reads of members on an OST with an outage window then
	// fail once with a transient error before succeeding — the outage
	// surfaces as a retried read rather than virtual queueing time.
	OSTs int
}

// DefaultRetryBudget is the attempt budget assumed when RetryBudget is 0.
const DefaultRetryBudget = 3

// Budget returns the effective retry budget.
func (pl *Plan) Budget() int {
	if pl == nil || pl.RetryBudget <= 0 {
		return DefaultRetryBudget
	}
	return pl.RetryBudget
}

// WindowAt returns the first window covering (ost, t), if any. Nil-safe.
func (pl *Plan) WindowAt(ost int, t float64) (OSTWindow, bool) {
	if pl == nil {
		return OSTWindow{}, false
	}
	for _, w := range pl.OSTWindows {
		if w.OST == ost && t >= w.Start && t < w.End {
			return w, true
		}
	}
	return OSTWindow{}, false
}

// SlowdownFor returns the straggler factor of the named processor (1 when
// the processor is not a straggler). Nil-safe.
func (pl *Plan) SlowdownFor(proc string) float64 {
	if pl == nil {
		return 1
	}
	for _, s := range pl.Stragglers {
		if s.Proc == proc && s.Factor > 1 {
			return s.Factor
		}
	}
	return 1
}

// FaultFor returns the fault of member k, if any. Nil-safe.
func (pl *Plan) FaultFor(member int) (FileFault, bool) {
	if pl == nil {
		return FileFault{}, false
	}
	for _, f := range pl.FileFaults {
		if f.Member == member {
			return f, true
		}
	}
	return FileFault{}, false
}

// Drops reports whether member k is unrecoverable under the plan's retry
// budget: missing, truncated or corrupt files, or transient faults whose
// failing-attempt count meets the budget. Nil-safe.
func (pl *Plan) Drops(member int) bool {
	f, ok := pl.FaultFor(member)
	if !ok {
		return false
	}
	if f.Kind == FileTransient {
		return f.Count >= pl.Budget()
	}
	return true
}

// CrashAfter reports whether the plan kills the process at the boundary
// after cycle i. Nil-safe.
func (pl *Plan) CrashAfter(i int) bool {
	return pl != nil && pl.Crash != nil && pl.Crash.Cycle == i
}

// DeathFor returns the death of I/O rank (g, j), if any. Nil-safe.
func (pl *Plan) DeathFor(g, j int) (RankDeath, bool) {
	if pl == nil {
		return RankDeath{}, false
	}
	for _, d := range pl.Deaths {
		if d.Group == g && d.Reader == j {
			return d, true
		}
	}
	return RankDeath{}, false
}

// DeadAt reports whether I/O rank (g, j) is dead when stage l begins at
// virtual time t. Time-based deaths (At > 0) trigger at the first stage
// boundary with t ≥ At; stage-based deaths trigger at BeforeStage. All
// processors of a group evaluate this with the same (l, t), so the group
// agrees on its live set without any communication. Nil-safe.
func (pl *Plan) DeadAt(g, j, l int, t float64) bool {
	d, ok := pl.DeathFor(g, j)
	if !ok {
		return false
	}
	if d.At > 0 {
		return t >= d.At
	}
	return l >= d.BeforeStage
}

// DeadBeforeStage is the stage-only death predicate used by the real
// execution, which has no virtual clock: time-based deaths never trigger.
func (pl *Plan) DeadBeforeStage(g, j, l int) bool {
	d, ok := pl.DeathFor(g, j)
	if !ok || d.At > 0 {
		return false
	}
	return l >= d.BeforeStage
}

// Successor returns the reader that takes over row j's bar within group g
// given the dead set: the next live reader cyclically after j. The second
// return is false when the whole group is dead.
func Successor(j, nsdy int, dead func(j int) bool) (int, bool) {
	for step := 1; step <= nsdy; step++ {
		cand := (j + step) % nsdy
		if !dead(cand) {
			return cand, true
		}
	}
	return 0, false
}

// Validate checks the plan against an S-EnKF geometry: ncg groups of nsdy
// readers, L stages, n members, osts storage targets. It rejects plans
// that kill every reader of a group (no failover target), reference
// out-of-range members/OSTs/processors, or carry malformed windows.
func (pl *Plan) Validate(ncg, nsdy, L, n, osts int) error {
	if pl == nil {
		return nil
	}
	for _, w := range pl.OSTWindows {
		if w.OST < 0 || (osts > 0 && w.OST >= osts) {
			return fmt.Errorf("faults: OST window targets OST %d of %d", w.OST, osts)
		}
		if w.End <= w.Start || w.Start < 0 {
			return fmt.Errorf("faults: OST %d window [%g,%g) is empty or negative", w.OST, w.Start, w.End)
		}
		if w.Factor < 0 || (w.Factor > 0 && w.Factor < 1) {
			return fmt.Errorf("faults: OST %d window factor %g (want 0 for outage or ≥ 1 for degradation)", w.OST, w.Factor)
		}
	}
	for _, s := range pl.Stragglers {
		if s.Factor < 1 {
			return fmt.Errorf("faults: straggler %q factor %g < 1", s.Proc, s.Factor)
		}
	}
	seen := map[int]bool{}
	for _, f := range pl.FileFaults {
		if f.Member < 0 || (n > 0 && f.Member >= n) {
			return fmt.Errorf("faults: file fault targets member %d of %d", f.Member, n)
		}
		if seen[f.Member] {
			return fmt.Errorf("faults: duplicate file fault for member %d", f.Member)
		}
		seen[f.Member] = true
		switch f.Kind {
		case FileMissing, FileTruncated, FileCorrupt:
		case FileTransient:
			if f.Count <= 0 {
				return fmt.Errorf("faults: transient fault on member %d with count %d", f.Member, f.Count)
			}
		default:
			return fmt.Errorf("faults: member %d has unknown fault kind %d", f.Member, int(f.Kind))
		}
	}
	deadPerGroup := map[int]int{}
	for _, d := range pl.Deaths {
		if d.Group < 0 || (ncg > 0 && d.Group >= ncg) {
			return fmt.Errorf("faults: death targets group %d of %d", d.Group, ncg)
		}
		if d.Reader < 0 || (nsdy > 0 && d.Reader >= nsdy) {
			return fmt.Errorf("faults: death targets reader %d of %d", d.Reader, nsdy)
		}
		if d.At < 0 {
			return fmt.Errorf("faults: death of io/g%d/r%d at negative time %g", d.Group, d.Reader, d.At)
		}
		if d.At == 0 && (d.BeforeStage < 0 || (L > 0 && d.BeforeStage >= L)) {
			return fmt.Errorf("faults: death of io/g%d/r%d before stage %d of %d", d.Group, d.Reader, d.BeforeStage, L)
		}
		deadPerGroup[d.Group]++
	}
	if nsdy > 0 {
		for g, c := range deadPerGroup {
			if c >= nsdy {
				return fmt.Errorf("faults: all %d readers of group %d die — no failover target", nsdy, g)
			}
		}
	}
	if pl.Crash != nil && pl.Crash.Cycle < 0 {
		return fmt.Errorf("faults: crash after negative cycle %d", pl.Crash.Cycle)
	}
	return nil
}

// TransientError is the retryable read error injected by EnsioHook.
type TransientError struct {
	Member  int
	Attempt int
	Op      string
}

func (e *TransientError) Error() string {
	return fmt.Sprintf("faults: injected transient %s error on member %d (attempt %d)", e.Op, e.Member, e.Attempt)
}

// Transient marks the error as retryable (see ensio's retry policy).
func (e *TransientError) Transient() bool { return true }

// EnsioHook returns a read hook for ensio: attempt a (0-based) on member k
// fails with a TransientError while a < Count of k's transient fault. When
// the plan carries an OSTs geometry hint, members living on an OST with an
// outage window (Factor == 0) additionally fail their first attempt — the
// real-path rendering of "the OST was briefly unreachable and the retry
// found it back". The hook is stateless — the attempt index is supplied by
// the caller — so the same plan produces the same fault history on every
// rank. Nil-safe (a nil plan returns a nil hook).
func (pl *Plan) EnsioHook() func(op string, member, attempt int) error {
	if pl == nil || (len(pl.FileFaults) == 0 && (pl.OSTs <= 0 || len(pl.OSTWindows) == 0)) {
		return nil
	}
	return func(op string, member, attempt int) error {
		if f, ok := pl.FaultFor(member); ok && f.Kind == FileTransient && attempt < f.Count {
			return &TransientError{Member: member, Attempt: attempt, Op: op}
		}
		if pl.OSTs > 0 && attempt == 0 {
			for _, w := range pl.OSTWindows {
				if w.Factor == 0 && w.OST == member%pl.OSTs {
					return &TransientError{Member: member, Attempt: attempt, Op: op}
				}
			}
		}
		return nil
	}
}

// Apply physically damages the member files in dir according to the plan's
// missing/truncated/corrupt faults (transient faults leave files intact —
// inject them through EnsioHook). Damage offsets without an explicit
// Offset are drawn from the plan's seed, so Apply is deterministic.
func (pl *Plan) Apply(dir string) error {
	if pl == nil {
		return nil
	}
	rng := pl.Seed ^ 0x5eedfa17
	for _, f := range pl.FileFaults {
		path := memberPath(dir, f.Member)
		switch f.Kind {
		case FileMissing:
			if err := os.Remove(path); err != nil {
				return fmt.Errorf("faults: remove member %d: %w", f.Member, err)
			}
		case FileTruncated:
			fi, err := os.Stat(path)
			if err != nil {
				return fmt.Errorf("faults: stat member %d: %w", f.Member, err)
			}
			cut := f.Offset
			if cut < 0 || cut >= fi.Size() {
				cut = int64(splitmix64(&rng) % uint64(fi.Size()))
			}
			if err := os.Truncate(path, cut); err != nil {
				return fmt.Errorf("faults: truncate member %d: %w", f.Member, err)
			}
		case FileCorrupt:
			if err := flipBit(path, f.Offset, &rng); err != nil {
				return fmt.Errorf("faults: corrupt member %d: %w", f.Member, err)
			}
		case FileTransient:
			// No on-disk damage: injected via the read hook.
		}
	}
	return nil
}

// memberPath mirrors ensio.MemberPath; duplicated (it is one Sprintf) so
// this package stays dependency-free and importable from every layer.
func memberPath(dir string, k int) string {
	return fmt.Sprintf("%s%cmember_%04d.senk", dir, os.PathSeparator, k)
}

// flipBit flips one bit of the file's payload (never the 32-byte header,
// so corruption is caught by the payload checksum, not the magic check).
func flipBit(path string, off int64, rng *uint64) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return err
	}
	const headerBytes = 32
	if fi.Size() <= headerBytes {
		return fmt.Errorf("file too small to corrupt (%d bytes)", fi.Size())
	}
	if off < 0 || headerBytes+off >= fi.Size() {
		off = int64(splitmix64(rng) % uint64(fi.Size()-headerBytes))
	}
	pos := headerBytes + off
	var b [1]byte
	if _, err := f.ReadAt(b[:], pos); err != nil {
		return err
	}
	b[0] ^= 1 << (splitmix64(rng) % 8)
	if _, err := f.WriteAt(b[:], pos); err != nil {
		return err
	}
	return f.Sync()
}

// Geometry describes the schedule a generated plan targets.
type Geometry struct {
	OSTs    int     // storage targets of the file system
	NCg     int     // concurrent I/O groups
	NSdy    int     // readers per group
	L       int     // stages
	N       int     // ensemble members
	Horizon float64 // expected clean completion time (virtual seconds)
}

// Generate builds a seeded fault plan whose severity scales with intensity
// ∈ [0, 1]: 0 yields an empty plan, 1 yields OST outages, stragglers,
// dropped and transiently-failing members, and one I/O-rank death (when
// the geometry allows failover). The same (seed, intensity, geometry)
// always yields the same plan.
func Generate(seed uint64, intensity float64, g Geometry) *Plan {
	pl := &Plan{Seed: seed}
	if intensity <= 0 {
		return pl
	}
	pl.OSTs = g.OSTs
	if intensity > 1 {
		intensity = 1
	}
	rng := seed*0x9e3779b97f4a7c15 + 1
	horizon := g.Horizon
	if horizon <= 0 {
		horizon = 1
	}
	// OST windows: up to half the OSTs are hit; outages are short relative
	// to the horizon so that a run always makes progress.
	nWin := int(intensity*float64(g.OSTs)/2 + 0.5)
	for i := 0; i < nWin; i++ {
		ost := int(splitmix64(&rng) % uint64(max(1, g.OSTs)))
		start := frac(&rng) * 0.6 * horizon
		dur := (0.05 + 0.25*intensity*frac(&rng)) * horizon
		factor := 0.0 // outage
		if frac(&rng) < 0.5 {
			factor = 2 + 6*intensity*frac(&rng) // degraded bandwidth
		}
		pl.OSTWindows = append(pl.OSTWindows, OSTWindow{OST: ost, Start: start, End: start + dur, Factor: factor})
	}
	// Stragglers: a slice of the I/O processors run slow.
	nStrag := int(intensity*float64(g.NCg*g.NSdy)/4 + 0.5)
	for i := 0; i < nStrag; i++ {
		grp := int(splitmix64(&rng) % uint64(max(1, g.NCg)))
		rdr := int(splitmix64(&rng) % uint64(max(1, g.NSdy)))
		pl.Stragglers = append(pl.Stragglers, Straggler{
			Proc:   fmt.Sprintf("io/g%d/r%d", grp, rdr),
			Factor: 1.5 + 3*intensity*frac(&rng),
		})
	}
	// File faults: transient retries at low intensity, dropped members at
	// high intensity. At most a quarter of the ensemble is touched.
	nFile := int(intensity*float64(g.N)/4 + 0.5)
	used := map[int]bool{}
	for i := 0; i < nFile; i++ {
		k := int(splitmix64(&rng) % uint64(max(1, g.N)))
		if used[k] {
			continue
		}
		used[k] = true
		ff := FileFault{Member: k, Kind: FileTransient, Count: 1 + int(splitmix64(&rng)%2)}
		if frac(&rng) < intensity-0.4 {
			// Permanent damage: the member will be dropped.
			switch splitmix64(&rng) % 3 {
			case 0:
				ff = FileFault{Member: k, Kind: FileMissing}
			case 1:
				ff = FileFault{Member: k, Kind: FileTruncated, Offset: -1}
			default:
				ff = FileFault{Member: k, Kind: FileCorrupt, Offset: -1}
			}
		}
		pl.FileFaults = append(pl.FileFaults, ff)
	}
	sort.Slice(pl.FileFaults, func(a, b int) bool { return pl.FileFaults[a].Member < pl.FileFaults[b].Member })
	// One I/O-rank death at high intensity — only when the group has a live
	// peer to fail over to.
	if intensity >= 0.5 && g.NSdy > 1 && g.L > 1 {
		pl.Deaths = append(pl.Deaths, RankDeath{
			Group:       int(splitmix64(&rng) % uint64(max(1, g.NCg))),
			Reader:      int(splitmix64(&rng) % uint64(g.NSdy)),
			BeforeStage: 1 + int(splitmix64(&rng)%uint64(g.L-1)),
		})
	}
	return pl
}

// splitmix64 is the SplitMix64 generator — tiny, seedable, dependency-free.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// frac returns a uniform float64 in [0, 1).
func frac(x *uint64) float64 {
	return float64(splitmix64(x)>>11) / float64(1<<53)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
