// Package schedule replays compiled execution plans (internal/plan) on the
// discrete-event machine (internal/sim + internal/parfs) at the paper's
// scale — thousands of simulated processors over the 0.1° problem geometry —
// to regenerate the evaluation figures. The *numerical* assimilation is not
// performed here (that is the job of the real engine in internal/core); what
// is simulated is the exact event structure each compiled plan prescribes:
// who reads what with how many disk-addressing operations, who waits for
// whom, and what overlaps with what. Because both this package and the real
// engine interpret the same plan.Compiled, the simulated schedule is
// structurally identical to a traced real run at the same geometry
// (plan.ExpectedDAG is the common reference).
//
// Schedules implemented:
//
//   - P-EnKF (§2.3, Figure 3): every processor block-reads its expansion
//     from every member file, one file after another, paying one addressing
//     operation per latitude row; local analysis only starts when all
//     members have arrived. No communication, no overlap.
//   - L-EnKF (§3.1): a single reader processor reads each member file in
//     full and distributes expansion blocks serially.
//   - S-EnKF (§4): n_cg concurrent groups of n_sdy I/O processors bar-read
//     the n_sdy·L overlapped small bars of their N/n_cg files (one
//     addressing operation each) and feed n_sdx compute processors
//     per stage; compute processors overlap stage-l analysis with stage-
//     (l+1) reading and communication, helper-thread style (Figure 8).
package schedule

import (
	"fmt"
	"math"
	"sort"

	"senkf/internal/costmodel"
	"senkf/internal/faults"
	"senkf/internal/grid"
	"senkf/internal/metrics"
	"senkf/internal/parfs"
	"senkf/internal/plan"
	"senkf/internal/runtimeobs"
	"senkf/internal/sim"
	"senkf/internal/trace"
)

// Config couples the problem/cost parameters with the file system model.
type Config struct {
	P  costmodel.Params
	FS parfs.Config

	// Tracer receives the virtual-clocked event stream of every simulated
	// run (phase spans per processor, OST service spans, stage readiness
	// instants). Nil disables tracing at zero cost.
	Tracer *trace.Tracer

	// Faults injects a deterministic fault plan: OST outage/degradation
	// windows and straggler processors affect every schedule; member-file
	// faults and I/O-rank deaths additionally drive the drop/failover logic
	// of SimulateSEnKF. Nil (the default) simulates a healthy machine with
	// the exact pre-fault event structure.
	Faults *faults.Plan

	// Obs, when non-nil, observes each simulated run: BeginRun with the
	// compiled plan before any event executes, EndRun with the outcome —
	// the hook a live monitor (internal/monitor) attaches through,
	// alongside a Tracer teeing events to it.
	Obs plan.RunObserver

	// Prof, when non-nil, runs every simulated process under its pprof
	// proc labels (via sim.Env.SetSpawnWrapper), so profiling the
	// simulator itself — the ROADMAP's "make it fast enough for massive
	// sweeps" item — attributes CPU to the same proc names the trace
	// uses. Nil disables labeling.
	Prof *runtimeobs.LabelSet

	// Msgs, when non-nil, receives the simulated substrate's mirror of the
	// real engine's per-message accounting: BeginMessages with the compiled
	// plan, then one OnMessage per (member, level, destination) stage-data
	// send, byte-sized by plan.StageMsgBytes — the real transport's formula,
	// not the cost model's nominal volume — so the simulated edge matrix is
	// bit-identical to the real and expected ones. Delivery timestamps are
	// the virtual send instants (zero latency: the simulator aggregates
	// messages into notifications; only the matrix is mirrored).
	Msgs plan.MsgObserver

	// Reads, when non-nil, receives per-read OST attribution from the
	// simulated file system (see parfs.ReadObserver). The wire collector
	// (internal/wire) implements both Msgs and Reads.
	Reads parfs.ReadObserver
}

// installWire attaches the wire observers to a simulated run. Nil-safe.
func (c Config) installWire(cp *plan.Compiled, fs *parfs.FS) {
	if c.Msgs != nil {
		c.Msgs.BeginMessages(cp)
	}
	if c.Reads != nil {
		fs.SetReadObserver(c.Reads)
	}
}

// observe wraps an execution outcome through the configured RunObserver
// (nil-safe): a monitor may decorate err with blamed plan edges and a
// flight-recorder dump.
func (c Config) observe(err error) error {
	if c.Obs == nil {
		return err
	}
	return c.Obs.EndRun(err)
}

// announceFaults emits one fault instant per injected straggler so the
// injections are visible in the event stream (and to a live monitor)
// before their effects are.
func (c Config) announceFaults(tr *trace.Tracer) {
	if c.Faults == nil || !tr.Enabled() {
		return
	}
	for _, s := range c.Faults.Stragglers {
		tr.Instant(s.Proc, trace.CatFault, "straggler", 0,
			trace.Arg{Key: "factor", Val: s.Factor})
	}
}

// installFaults wires the plan into the simulation substrate (straggler
// dilation + file-system windows). Nil-safe.
func (c Config) installFaults(env *sim.Env, fs *parfs.FS) {
	if c.Faults == nil {
		return
	}
	env.SetSlowdown(c.Faults.SlowdownFor)
	fs.SetFaults(c.Faults)
}

// installProf wires pprof label propagation into the simulation
// substrate: every spawned process body runs under its proc labels.
// Nil-safe.
func (c Config) installProf(env *sim.Env) {
	if c.Prof == nil {
		return
	}
	env.SetSpawnWrapper(c.Prof.SpawnWrapper())
}

// obs records one phase interval in both the recorder and — when tracing —
// as a span on the processor's own track, keeping the two derivations of
// the paper's breakdowns byte-for-byte comparable. Optional args annotate
// the span (stage tags feed the per-stage overlap accounting).
func obs(tr *trace.Tracer, rec *metrics.Recorder, name string, ph metrics.Phase, t0, t1 float64, args ...trace.Arg) {
	rec.Record(name, ph, t0, t1)
	if tr.Enabled() {
		tr.Span(name, trace.CatPhase, ph.String(), t0, t1, args...)
	}
}

// emitModelPrediction publishes the Eq. 7–10 predictions for the choice
// about to be simulated: counter samples (model/t_read, model/t_comm,
// model/t_comp) on the model track so drift against measured phases is
// visible directly in a Chrome trace, gauges in the counter registry, and
// one "prediction" instant carrying the full Table-1 parameters and the
// choice — everything senkf-report needs to recompute drift from the
// trace file alone.
func emitModelPrediction(tr *trace.Tracer, p costmodel.Params, ch costmodel.Choice) {
	tRead, tComm, tComp := p.TRead(ch), p.TComm(ch), p.TComp(ch)
	if reg := tr.Counters(); reg != nil {
		reg.SetGauge("model/t_read", tRead)
		reg.SetGauge("model/t_comm", tComm)
		reg.SetGauge("model/t_comp", tComp)
		reg.SetGauge("model/t_total", p.TTotal(ch))
	}
	if !tr.Enabled() {
		return
	}
	tr.Counter(trace.ModelTrack, "model/t_read", 0, tRead)
	tr.Counter(trace.ModelTrack, "model/t_comm", 0, tComm)
	tr.Counter(trace.ModelTrack, "model/t_comp", 0, tComp)
	tr.Instant(trace.ModelTrack, trace.CatModel, "prediction", 0,
		trace.Arg{Key: "nsdx", Val: float64(ch.NSdx)},
		trace.Arg{Key: "nsdy", Val: float64(ch.NSdy)},
		trace.Arg{Key: "l", Val: float64(ch.L)},
		trace.Arg{Key: "ncg", Val: float64(ch.NCg)},
		trace.Arg{Key: "t_read", Val: tRead},
		trace.Arg{Key: "t_comm", Val: tComm},
		trace.Arg{Key: "t_comp", Val: tComp},
		trace.Arg{Key: "t_total", Val: p.TTotal(ch)},
		trace.Arg{Key: "n", Val: float64(p.N)},
		trace.Arg{Key: "nx", Val: float64(p.NX)},
		trace.Arg{Key: "ny", Val: float64(p.NY)},
		trace.Arg{Key: "a", Val: p.A},
		trace.Arg{Key: "b", Val: p.B},
		trace.Arg{Key: "c", Val: p.C},
		trace.Arg{Key: "theta", Val: p.Theta},
		trace.Arg{Key: "xi", Val: float64(p.Xi)},
		trace.Arg{Key: "eta", Val: float64(p.Eta)},
		trace.Arg{Key: "h", Val: float64(p.H)},
		trace.Arg{Key: "levels", Val: float64(p.LevelCount())})
}

// Validate checks both halves and their consistency.
func (c Config) Validate() error {
	if err := c.P.Validate(); err != nil {
		return err
	}
	if err := c.FS.Validate(); err != nil {
		return err
	}
	return nil
}

// DefaultConfig is the paper-scale machine: the 0.1° problem of §5.1
// (3600×1800 grid, 30 levels ⇒ h = 240 B, N = 120 members) on a parallel
// file system with 8 OSTs and a 6-stream backbone, 5 GB/s network links
// with 2 µs startup, and a per-point local-analysis cost calibrated so the
// computation-to-I/O balance matches Figure 1's trajectory.
func DefaultConfig() Config {
	return Config{
		P: costmodel.Params{
			N: 120, NX: 3600, NY: 1800,
			A: 2e-6, B: 2e-10, C: 0.12,
			Theta: 0.5e-9, Xi: 16, Eta: 8, H: 240,
		},
		FS: parfs.DefaultConfig,
	}
}

// Result is the outcome of one simulated run.
type Result struct {
	Algorithm string
	NP        int     // total processors used
	Runtime   float64 // virtual seconds

	// IO is the mean phase breakdown of the I/O processors (S-EnKF and the
	// L-EnKF reader); zero for P-EnKF, which has no dedicated I/O ranks.
	IO metrics.Breakdown
	// Compute is the mean phase breakdown of the compute processors. For
	// P-EnKF it contains both the read and the compute share, as in Fig. 9.
	Compute metrics.Breakdown

	// OverlapFraction is the share of I/O activity (file reading and
	// communication) that proceeded concurrently with local analysis — how
	// well data obtaining is hidden (Figure 11). Zero for the baselines.
	OverlapFraction float64
	// OverlapRuntimeFraction is the overlapped time as a share of total
	// runtime.
	OverlapRuntimeFraction float64
	// FirstStage is the non-overlappable initial acquisition time of
	// S-EnKF (the "<8%" of §5.4).
	FirstStage float64

	FSStats parfs.Stats

	// Fault outcomes (S-EnKF only; empty/zero without a fault plan):
	// DroppedMembers lists members whose files were unrecoverable and were
	// excluded from assimilation; Failovers counts bar rows adopted by a
	// surviving reader after a rank death; RankDeaths counts I/O ranks that
	// died during the run.
	DroppedMembers []int
	Failovers      int
	RankDeaths     int
}

// IOPercent returns the share of I/O (read) time in read+compute across
// compute processors — the quantity of Figure 1.
func (r Result) IOPercent() float64 {
	t := r.Compute.Read + r.Compute.Compute
	if t == 0 {
		return 0
	}
	return 100 * r.Compute.Read / t
}

// ChooseDecomposition picks (n_sdx, n_sdy) with n_sdx·n_sdy = np dividing
// the mesh while minimizing the expansion (halo) area — the natural choice
// an implementer makes for P-EnKF at a given processor count.
func ChooseDecomposition(p costmodel.Params, np int) (nsdx, nsdy int, err error) {
	best := math.Inf(1)
	found := false
	for j := 1; j <= np; j++ {
		if np%j != 0 || p.NY%j != 0 {
			continue
		}
		i := np / j
		if p.NX%i != 0 {
			continue
		}
		expArea := (float64(p.NX)/float64(i) + 2*float64(p.Xi)) * (float64(p.NY)/float64(j) + 2*float64(p.Eta))
		if expArea < best {
			best = expArea
			nsdx, nsdy = i, j
			found = true
		}
	}
	if !found {
		return 0, 0, fmt.Errorf("schedule: no decomposition of %dx%d into %d sub-domains", p.NX, p.NY, np)
	}
	return nsdx, nsdy, nil
}

// decompose builds the mesh decomposition the plan compiler works on: the
// cost model's localization radius (ξ, η) becomes the decomposition radius,
// so the plan's nominal addressing-op and point counts are exactly the
// quantities of Eqs. 2 and 5.
func decompose(p costmodel.Params, nsdx, nsdy int) (grid.Decomposition, error) {
	m, err := grid.NewMesh(p.NX, p.NY)
	if err != nil {
		return grid.Decomposition{}, err
	}
	return grid.NewDecomposition(m, nsdx, nsdy, grid.Radius{Xi: p.Xi, Eta: p.Eta})
}

// nominalBytes converts a plan's nominal point count to bytes at h bytes
// per grid point. All factors are exact small integers, so the product is
// exact in float64 regardless of association. Callers fold the level
// dimension into the point count (ReadTemplate.PointsAllLevels, or an
// explicit × LevelCount on communication volumes) so the plan's Levels and
// the cost model's H stay separate factors.
func nominalBytes(points, h int) float64 {
	return float64(points) * float64(h)
}

// SimulatePEnKF replays the compiled block-reading plan on nsdx × nsdy
// processors.
func SimulatePEnKF(cfg Config, nsdx, nsdy int) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if cfg.P.NX%nsdx != 0 || cfg.P.NY%nsdy != 0 {
		return Result{}, fmt.Errorf("schedule: %dx%d does not divide the %dx%d mesh", nsdx, nsdy, cfg.P.NX, cfg.P.NY)
	}
	if err := cfg.Faults.Validate(0, 0, 0, cfg.P.N, cfg.FS.OSTs); err != nil {
		return Result{}, err
	}
	dec, err := decompose(cfg.P, nsdx, nsdy)
	if err != nil {
		return Result{}, err
	}
	cp, err := plan.Compile(plan.PEnKF(dec, cfg.P.N).WithLevels(cfg.P.LevelCount()))
	if err != nil {
		return Result{}, err
	}
	env := sim.NewEnv()
	env.SetTracer(cfg.Tracer)
	cfg.installProf(env)
	fs, err := parfs.New(env, cfg.FS)
	if err != nil {
		return Result{}, err
	}
	cfg.installFaults(env, fs)
	cfg.installWire(cp, fs)
	rec := metrics.NewRecorder()
	tr := cfg.Tracer
	if cfg.Obs != nil {
		cfg.Obs.BeginRun(cp)
	}
	cfg.announceFaults(tr)

	lv := cp.Spec.LevelCount()
	for q := range cp.Compute {
		cr := &cp.Compute[q]
		env.Go(cr.Name, func(p *sim.Proc) {
			for _, st := range cr.Stages {
				// Phase 1: block-read every member file, one after another,
				// paying the plan's nominal addressing operations per file
				// (one per expansion row, §4.1.1) — rows that carry every
				// level on multilevel files.
				blockBytes := nominalBytes(st.Read.PointsAllLevels(), cfg.P.H)
				for _, k := range st.SelfMembers {
					t0 := p.Now()
					fs.Read(p, k, st.Read.AddrOps, blockBytes)
					obs(tr, rec, cr.Name, metrics.PhaseRead, t0, p.Now())
				}
				// Phase 2: local analysis on the sub-domain, level by level.
				t0 := p.Now()
				p.Sleep(cfg.P.C * float64(st.Analyze.Points()*lv))
				obs(tr, rec, cr.Name, metrics.PhaseCompute, t0, p.Now())
			}
		})
	}
	end, err := env.Run()
	if err = cfg.observe(err); err != nil {
		return Result{}, err
	}
	return Result{
		Algorithm: "P-EnKF",
		NP:        cp.NumCompute(),
		Runtime:   end,
		Compute:   rec.MeanBreakdown(metrics.ComputePrefix),
		FSStats:   fs.Stats(),
	}, nil
}

// SimulateLEnKF replays the compiled single-reader plan: one reader
// processor reads every member file in full and serially distributes
// expansion blocks to nsdx × nsdy compute processors.
func SimulateLEnKF(cfg Config, nsdx, nsdy int) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if cfg.P.NX%nsdx != 0 || cfg.P.NY%nsdy != 0 {
		return Result{}, fmt.Errorf("schedule: %dx%d does not divide the %dx%d mesh", nsdx, nsdy, cfg.P.NX, cfg.P.NY)
	}
	if err := cfg.Faults.Validate(0, 0, 0, cfg.P.N, cfg.FS.OSTs); err != nil {
		return Result{}, err
	}
	dec, err := decompose(cfg.P, nsdx, nsdy)
	if err != nil {
		return Result{}, err
	}
	// L-EnKF stays single-level by design: compiling with the config's level
	// count makes the spec validator reject a multilevel request loudly.
	cp, err := plan.Compile(plan.LEnKF(dec, cfg.P.N).WithLevels(cfg.P.LevelCount()))
	if err != nil {
		return Result{}, err
	}
	env := sim.NewEnv()
	env.SetTracer(cfg.Tracer)
	cfg.installProf(env)
	fs, err := parfs.New(env, cfg.FS)
	if err != nil {
		return Result{}, err
	}
	cfg.installFaults(env, fs)
	cfg.installWire(cp, fs)
	rec := metrics.NewRecorder()
	tr := cfg.Tracer
	if cfg.Obs != nil {
		cfg.Obs.BeginRun(cp)
	}
	cfg.announceFaults(tr)

	lv := cp.Spec.LevelCount()
	boxes := make([]*sim.Mailbox, cp.NumCompute())
	for r := range boxes {
		boxes[r] = sim.NewMailbox(env, fmt.Sprintf("mb%d", r))
	}
	rd := &cp.IO[0]
	env.Go(rd.Name, func(p *sim.Proc) {
		// One round per member: read the file in full (one addressing
		// operation), then scatter every destination its expansion block.
		for _, st := range rd.Stages {
			k := st.Members[0]
			t0 := p.Now()
			fs.Read(p, k, st.Read.AddrOps, nominalBytes(st.Read.PointsAllLevels(), cfg.P.H))
			obs(tr, rec, rd.Name, metrics.PhaseRead, t0, p.Now())
			// Serial distribution: the reader pays startup + transfer for
			// every destination, one destination after another.
			blockBytes := nominalBytes(st.Comm.PerDstPoints, cfg.P.H)
			t0 = p.Now()
			p.Sleep(float64(len(st.Comm.Dsts)) * (cfg.P.A + cfg.P.B*blockBytes))
			obs(tr, rec, rd.Name, metrics.PhaseComm, t0, p.Now())
			for _, dst := range st.Comm.Dsts {
				boxes[dst].Send(k)
				// Mirror the real engine's per-(member, level) stage-data
				// message, byte-sized by the transport's formula.
				if cfg.Msgs != nil {
					for lvl := 0; lvl < lv; lvl++ {
						cfg.Msgs.OnMessage(rd.Rank, dst, cp.Spec.Tag(st.Stage, k, lvl),
							plan.StageMsgBytes(cp, dst, st.Stage), p.Now(), p.Now(), 0)
					}
				}
			}
		}
	})
	for q := range cp.Compute {
		cr := &cp.Compute[q]
		mb := boxes[cr.Rank]
		env.Go(cr.Name, func(p *sim.Proc) {
			st := cr.Stages[0]
			t0 := p.Now()
			for n := 0; n < st.Expect; n++ {
				mb.Recv(p)
			}
			obs(tr, rec, cr.Name, metrics.PhaseWait, t0, p.Now())
			t0 = p.Now()
			p.Sleep(cfg.P.C * float64(st.Analyze.Points()))
			obs(tr, rec, cr.Name, metrics.PhaseCompute, t0, p.Now())
		})
	}
	end, err := env.Run()
	if err = cfg.observe(err); err != nil {
		return Result{}, err
	}
	return Result{
		Algorithm: "L-EnKF",
		NP:        cp.WorldSize(),
		Runtime:   end,
		IO:        rec.MeanBreakdown(metrics.IOPrefix),
		Compute:   rec.MeanBreakdown(metrics.ComputePrefix),
		FSStats:   fs.Stats(),
	}, nil
}

// stageMsg is the aggregated "your stage-l blocks from group g have
// arrived" notification an I/O processor sends a compute processor.
type stageMsg struct{ stage int }

// SimulateSEnKF replays the compiled multi-stage overlapped plan with the
// given parameter choice (n_sdx, n_sdy, L, n_cg).
func SimulateSEnKF(cfg Config, ch costmodel.Choice) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if !cfg.P.Feasible(ch) {
		return Result{}, fmt.Errorf("schedule: choice %v infeasible for the problem", ch)
	}
	p := cfg.P
	nsdy, ncg := ch.NSdy, ch.NCg
	pl := cfg.Faults
	if err := pl.Validate(ncg, nsdy, ch.L, p.N, cfg.FS.OSTs); err != nil {
		return Result{}, err
	}
	dec, err := decompose(p, ch.NSdx, nsdy)
	if err != nil {
		return Result{}, err
	}
	cp, err := plan.Compile(plan.SEnKF(dec, p.N, ch.L, ncg).WithLevels(p.LevelCount()))
	if err != nil {
		return Result{}, err
	}
	lv := cp.Spec.LevelCount()
	env := sim.NewEnv()
	env.SetTracer(cfg.Tracer)
	cfg.installProf(env)
	fs, err := parfs.New(env, cfg.FS)
	if err != nil {
		return Result{}, err
	}
	cfg.installFaults(env, fs)
	cfg.installWire(cp, fs)
	rec := metrics.NewRecorder()
	tr := cfg.Tracer
	if cfg.Obs != nil {
		cfg.Obs.BeginRun(cp)
	}
	emitModelPrediction(tr, p, ch)
	cfg.announceFaults(tr)

	// One mailbox per compute processor, indexed by compute rank. The plan
	// orders ranks row-major, so creation order is unchanged (j outer, i
	// inner).
	boxes := make([]*sim.Mailbox, cp.NumCompute())
	for q := range cp.Compute {
		cr := &cp.Compute[q]
		boxes[cr.Rank] = sim.NewMailbox(env, fmt.Sprintf("mb%d.%d", cr.J, cr.I))
	}

	// I/O processors: group g ∈ [0,ncg), bar row j ∈ [0,nsdy) — the plan's
	// IO order. The members of a group read the same file at once (§4.1.3) —
	// a cyclic barrier keeps them on the same file.
	groupBarriers := make([]*sim.Barrier, ncg)
	for g := range groupBarriers {
		groupBarriers[g] = sim.NewBarrier(env, fmt.Sprintf("grp%d", g), nsdy)
	}
	// Fault bookkeeping shared across the group's processors. The simulation
	// is single-threaded (exactly one goroutine runs at any instant), so
	// plain maps are safe; determinism comes from the plan, not the sharing.
	var (
		failovers  int
		rankDeaths int
		adopted    = map[[2]int]bool{} // (group, dead row) already counted
		droppedSet = map[int]bool{}
	)
	// Per-group effective file count: unrecoverable members contribute no
	// payload, shrinking the per-stage send volume of that group. The
	// group's member set comes from the plan (members k ≡ g mod n_cg).
	droppedInGroup := make([]int, ncg)
	for q := range cp.IO {
		if cp.IO[q].Row != 0 {
			continue
		}
		for _, k := range cp.IO[q].Members {
			if pl.Drops(k) {
				droppedInGroup[cp.IO[q].Group]++
			}
		}
	}

	for q := range cp.IO {
		me := &cp.IO[q]
		g, j, name := me.Group, me.Row, me.Name
		effFiles := len(me.Members) - droppedInGroup[g]
		env.Go(name, func(proc *sim.Proc) {
			// tStage is the group-agreed virtual time at the top of the
			// current stage: 0 initially, then the instant the last file
			// barrier of the previous stage released — identical for
			// every member of the group, so all members evaluate the
			// death predicates with the same (stage, time) and agree on
			// the live set without communication.
			tStage := 0.0
			for _, st := range me.Stages {
				l := st.Stage
				barBytes := nominalBytes(st.Read.PointsAllLevels(), p.H)
				sendBytes := nominalBytes(st.Comm.PerDstPoints*lv, p.H) * float64(effFiles)
				dead := func(jj int) bool { return pl.DeadAt(g, jj, l, tStage) }
				if dead(j) {
					if tr.Enabled() {
						tr.Instant(name, trace.CatFault, "rank-death", proc.Now(),
							trace.Arg{Key: trace.ArgStage, Val: float64(l)})
					}
					tr.Counters().Inc("faults.rank.deaths")
					rankDeaths++
					groupBarriers[g].Leave()
					return
				}
				// Rows this reader serves: its own, plus dead rows whose
				// cyclic successor it is (the failover assignment every
				// survivor derives identically from the plan).
				serve := []int{j}
				for jj := 0; jj < nsdy; jj++ {
					if jj == j || !dead(jj) {
						continue
					}
					if s, ok := faults.Successor(jj, nsdy, dead); ok && s == j {
						serve = append(serve, jj)
						if !adopted[[2]int{g, jj}] {
							adopted[[2]int{g, jj}] = true
							failovers++
							tr.Counters().Inc("faults.failovers")
							if tr.Enabled() {
								tr.Instant(name, trace.CatFault, "failover", proc.Now(),
									trace.Arg{Key: "row", Val: float64(jj)},
									trace.Arg{Key: trace.ArgStage, Val: float64(l)})
							}
						}
					}
				}
				// Read this stage's small bar from each file of the
				// group: contiguous, one addressing operation each (per
				// served row). Faulted files cost their retry probes;
				// unrecoverable ones are dropped and contribute nothing.
				t0 := proc.Now()
				for _, file := range st.Members {
					if pl.Drops(file) {
						for a := 0; a < pl.Budget(); a++ {
							fs.Read(proc, file, 1, 0)
						}
						if !droppedSet[file] {
							droppedSet[file] = true
							tr.Counters().Inc("faults.members.dropped")
							if tr.Enabled() {
								tr.Instant(name, trace.CatFault, "member-dropped", proc.Now(),
									trace.Arg{Key: "member", Val: float64(file)})
							}
						}
					} else {
						if ff, ok := pl.FaultFor(file); ok && ff.Kind == faults.FileTransient {
							for a := 0; a < ff.Count; a++ {
								fs.Read(proc, file, 1, 0)
							}
						}
						for range serve {
							fs.Read(proc, file, st.Read.AddrOps, barBytes)
						}
					}
					groupBarriers[g].Wait(proc)
				}
				obs(tr, rec, name, metrics.PhaseRead, t0, proc.Now(),
					trace.Arg{Key: trace.ArgStage, Val: float64(l)})
				// All live members left the last barrier at this same
				// instant: the agreed stage-top time for stage l+1.
				tStage = proc.Now()
				// Send each compute processor of the served rows its
				// aggregated stage blocks (serialized at the sender's
				// link). The destinations of an adopted row come from the
				// dead rank's own plan entry.
				t0 = proc.Now()
				proc.Sleep(float64(len(serve)) * float64(len(st.Comm.Dsts)) * (p.A + p.B*sendBytes))
				obs(tr, rec, name, metrics.PhaseComm, t0, proc.Now(),
					trace.Arg{Key: trace.ArgStage, Val: float64(l)})
				for _, row := range serve {
					rp := cp.IOAt(g, row)
					for _, dst := range rp.Stages[l].Comm.Dsts {
						boxes[dst].Send(stageMsg{stage: l})
						// Mirror the per-(member, level) messages the real
						// engine sends for this aggregated notification;
						// dropped members carry no payload on either
						// substrate.
						if cfg.Msgs != nil {
							for _, file := range st.Members {
								if pl.Drops(file) {
									continue
								}
								for lvl := 0; lvl < lv; lvl++ {
									cfg.Msgs.OnMessage(rp.Rank, dst, cp.Spec.Tag(l, file, lvl),
										plan.StageMsgBytes(cp, dst, l), proc.Now(), proc.Now(), 0)
								}
							}
						}
					}
				}
			}
		})
	}

	// Compute processors: the helper thread is implicit — arrival counting
	// happens while the main loop computes, so stage l+1 data accumulates
	// in the mailbox during stage l's analysis, exactly the overlap of
	// Figure 8. Each group aggregates its N/n_cg member blocks into one
	// notification, so the plan's Expect = N per-member blocks arrive as
	// n_cg messages per stage.
	firstStage := sim.NewMailbox(env, "first-stage")
	for q := range cp.Compute {
		cr := &cp.Compute[q]
		name := cr.Name
		mb := boxes[cr.Rank]
		env.Go(name, func(proc *sim.Proc) {
			counts := make([]int, len(cr.Stages))
			for _, st := range cr.Stages {
				l := st.Stage
				// Wait for the ncg group notifications of stage l.
				t0 := proc.Now()
				for counts[l] < ncg {
					m := mb.Recv(proc).(stageMsg)
					counts[m.stage]++
					if tr.Enabled() && counts[m.stage] == ncg {
						// The last block of stage m.stage just arrived:
						// computing that stage is causally legal from
						// this instant on.
						tr.Instant(name, trace.CatStage, "ready", proc.Now(),
							trace.Arg{Key: trace.ArgStage, Val: float64(m.stage)})
					}
				}
				if t0 != proc.Now() {
					obs(tr, rec, name, metrics.PhaseWait, t0, proc.Now())
				}
				if l == 0 && cr.Rank == 0 {
					firstStage.Send(proc.Now())
				}
				t0 = proc.Now()
				proc.Sleep(p.C * float64(st.Analyze.Points()*lv))
				rec.Record(name, metrics.PhaseCompute, t0, proc.Now())
				if tr.Enabled() {
					tr.Span(name, trace.CatPhase, metrics.PhaseCompute.String(), t0, proc.Now(),
						trace.Arg{Key: trace.ArgStage, Val: float64(l)})
				}
			}
		})
	}

	end, err := env.Run()
	if err = cfg.observe(err); err != nil {
		return Result{}, err
	}
	ioSpans := rec.Spans(metrics.IOPrefix, metrics.PhaseRead, metrics.PhaseComm)
	cpSpans := rec.Spans(metrics.ComputePrefix, metrics.PhaseCompute)
	overlap := metrics.OverlapDuration(ioSpans, cpSpans)
	ioBusy := metrics.SpanTotal(ioSpans)
	var first float64
	if v, ok := firstStage.TryRecv(); ok {
		first = v.(float64)
	}
	res := Result{
		Algorithm:              "S-EnKF",
		NP:                     cp.WorldSize(),
		Runtime:                end,
		IO:                     rec.MeanBreakdown(metrics.IOPrefix),
		Compute:                rec.MeanBreakdown(metrics.ComputePrefix),
		OverlapRuntimeFraction: overlap / end,
		FirstStage:             first,
		FSStats:                fs.Stats(),
		Failovers:              failovers,
		RankDeaths:             rankDeaths,
	}
	for k := range droppedSet {
		res.DroppedMembers = append(res.DroppedMembers, k)
	}
	sort.Ints(res.DroppedMembers)
	if ioBusy > 0 {
		// Clamp: the hidden share of I/O cannot exceed 100%; resilient runs
		// with truncated spans from dead ranks must not report more.
		res.OverlapFraction = math.Min(1, overlap/ioBusy)
	}
	return res, nil
}

// ReadOnlyBlock simulates just the block-reading phase (no compute) of
// P-EnKF over nFiles member files — the measurement behind Figure 5. The
// read geometry (one addressing operation per expansion row, the full
// nominal expansion block per file) comes from the compiled P-EnKF plan,
// the same source the full schedule interprets.
func ReadOnlyBlock(cfg Config, nsdx, nsdy, nFiles int) (float64, error) {
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	dec, err := decompose(cfg.P, nsdx, nsdy)
	if err != nil {
		return 0, err
	}
	cp, err := plan.Compile(plan.PEnKF(dec, nFiles).WithLevels(cfg.P.LevelCount()))
	if err != nil {
		return 0, err
	}
	env := sim.NewEnv()
	cfg.installProf(env)
	fs, err := parfs.New(env, cfg.FS)
	if err != nil {
		return 0, err
	}
	for q := range cp.Compute {
		cr := &cp.Compute[q]
		st := cr.Stages[0]
		blockBytes := nominalBytes(st.Read.PointsAllLevels(), cfg.P.H)
		env.Go(cr.Name, func(p *sim.Proc) {
			for _, k := range st.SelfMembers {
				fs.Read(p, k, st.Read.AddrOps, blockBytes)
			}
		})
	}
	return env.Run()
}

// ReadOnlyConcurrent simulates just the concurrent-access reading of
// nFiles member files with the bar approach in ncg groups of nsdy readers
// each — the measurement behind Figure 10. A single-stage S-EnKF plan
// (n_sdx = 1, L = 1) prescribes the geometry: each reader's bar is the
// full-width sub-domain expansion at one addressing operation per file,
// and the group's members are the files k ≡ g (mod n_cg).
func ReadOnlyConcurrent(cfg Config, nsdy, ncg, nFiles int) (float64, error) {
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	if nFiles%ncg != 0 {
		return 0, fmt.Errorf("schedule: %d files do not divide into %d groups", nFiles, ncg)
	}
	dec, err := decompose(cfg.P, 1, nsdy)
	if err != nil {
		return 0, err
	}
	cp, err := plan.Compile(plan.SEnKF(dec, nFiles, 1, ncg).WithLevels(cfg.P.LevelCount()))
	if err != nil {
		return 0, err
	}
	env := sim.NewEnv()
	cfg.installProf(env)
	fs, err := parfs.New(env, cfg.FS)
	if err != nil {
		return 0, err
	}
	barriers := make([]*sim.Barrier, ncg)
	for g := range barriers {
		barriers[g] = sim.NewBarrier(env, fmt.Sprintf("grp%d", g), nsdy)
	}
	for q := range cp.IO {
		r := &cp.IO[q]
		st := r.Stages[0]
		barBytes := nominalBytes(st.Read.PointsAllLevels(), cfg.P.H)
		g := r.Group
		env.Go(r.Name, func(p *sim.Proc) {
			for _, k := range st.Members {
				fs.Read(p, k, st.Read.AddrOps, barBytes)
				barriers[g].Wait(p)
			}
		})
	}
	return env.Run()
}
