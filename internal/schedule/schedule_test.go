package schedule

import (
	"math"
	"testing"

	"senkf/internal/costmodel"
	"senkf/internal/parfs"
)

// smallConfig is a scaled-down machine so tests run in milliseconds while
// keeping the paper's qualitative balance (seek-heavy block reads, a
// backbone that saturates, compute comparable to I/O at small scale).
func smallConfig() Config {
	return Config{
		P: costmodel.Params{
			N: 24, NX: 360, NY: 180,
			A: 2e-6, B: 2e-10, C: 2e-3,
			Theta: 0.5e-9, Xi: 8, Eta: 4, H: 240,
		},
		// Heavier addressing cost than the paper-scale default so the
		// block-reading penalty shows at this small scale too.
		FS: parfs.Config{
			OSTs:              8,
			ConcurrencyPerOST: 2,
			SeekTime:          1e-4,
			ByteTime:          0.5e-9,
			BackboneStreams:   12,
		},
	}
}

// feasibleChoice builds a feasible S-EnKF choice for the given
// decomposition: the largest L ≤ 6 dividing the sub-domain height and the
// largest n_cg ≤ 4 dividing N.
func feasibleChoice(t *testing.T, cfg Config, nsdx, nsdy int) costmodel.Choice {
	t.Helper()
	ch := costmodel.Choice{NSdx: nsdx, NSdy: nsdy, L: 1, NCg: 1}
	for l := 6; l >= 1; l-- {
		if (cfg.P.NY/nsdy)%l == 0 {
			ch.L = l
			break
		}
	}
	for g := 4; g >= 1; g-- {
		if cfg.P.N%g == 0 {
			ch.NCg = g
			break
		}
	}
	if !cfg.P.Feasible(ch) {
		t.Fatalf("could not build feasible choice for %dx%d", nsdx, nsdy)
	}
	return ch
}

func TestChooseDecomposition(t *testing.T) {
	cfg := smallConfig()
	for _, np := range []int{4, 12, 40, 120} {
		nsdx, nsdy, err := ChooseDecomposition(cfg.P, np)
		if err != nil {
			t.Fatalf("np=%d: %v", np, err)
		}
		if nsdx*nsdy != np {
			t.Errorf("np=%d: %d x %d", np, nsdx, nsdy)
		}
		if cfg.P.NX%nsdx != 0 || cfg.P.NY%nsdy != 0 {
			t.Errorf("np=%d: decomposition does not divide mesh", np)
		}
	}
	if _, _, err := ChooseDecomposition(cfg.P, 7); err == nil {
		t.Error("np=7 should not decompose 360x180")
	}
}

func TestSimulatePEnKFBasics(t *testing.T) {
	cfg := smallConfig()
	res, err := SimulatePEnKF(cfg, 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.NP != 40 || res.Algorithm != "P-EnKF" {
		t.Errorf("result header %+v", res)
	}
	if res.Runtime <= 0 {
		t.Error("non-positive runtime")
	}
	if res.Compute.Read <= 0 || res.Compute.Compute <= 0 {
		t.Errorf("P-EnKF breakdown %+v", res.Compute)
	}
	if res.IO.Total() != 0 {
		t.Error("P-EnKF has no dedicated I/O processors")
	}
	// Every processor reads every file.
	if res.FSStats.Requests != 40*cfg.P.N {
		t.Errorf("requests = %d, want %d", res.FSStats.Requests, 40*cfg.P.N)
	}
	// Block reading pays one seek per expansion row per file per proc.
	wantSeeks := 40 * cfg.P.N * (cfg.P.NY/5 + 2*cfg.P.Eta)
	if res.FSStats.Seeks != wantSeeks {
		t.Errorf("seeks = %d, want %d", res.FSStats.Seeks, wantSeeks)
	}
	if _, err := SimulatePEnKF(cfg, 7, 5); err == nil {
		t.Error("expected indivisible decomposition error")
	}
}

func TestPEnKFIOPercentageGrowsWithProcessors(t *testing.T) {
	// Figure 1: the I/O share of P-EnKF grows with the processor count.
	cfg := smallConfig()
	var prev float64 = -1
	for _, np := range []int{20, 60, 180} {
		nsdx, nsdy, err := ChooseDecomposition(cfg.P, np)
		if err != nil {
			t.Fatal(err)
		}
		res, err := SimulatePEnKF(cfg, nsdx, nsdy)
		if err != nil {
			t.Fatal(err)
		}
		pct := res.IOPercent()
		if pct <= prev {
			t.Errorf("np=%d: I/O%% %.1f did not grow (prev %.1f)", np, pct, prev)
		}
		prev = pct
	}
}

func TestBlockReadingGrowsWithNsdx(t *testing.T) {
	// Figure 5: block-reading time grows roughly linearly with n_sdx.
	cfg := smallConfig()
	var times []float64
	for _, nsdx := range []int{10, 20, 40} {
		tt, err := ReadOnlyBlock(cfg, nsdx, 5, cfg.P.N)
		if err != nil {
			t.Fatal(err)
		}
		times = append(times, tt)
	}
	if !(times[0] < times[1] && times[1] < times[2]) {
		t.Errorf("block read times not increasing: %v", times)
	}
	// Roughly linear: doubling n_sdx should land within 2x ± 50%.
	r1 := times[1] / times[0]
	r2 := times[2] / times[1]
	if r1 < 1.3 || r1 > 3 || r2 < 1.3 || r2 > 3 {
		t.Errorf("growth ratios %g, %g not roughly linear", r1, r2)
	}
}

func TestConcurrentReadingDropsThenFlattens(t *testing.T) {
	// Figure 10: reading time drops as n_cg grows, then flattens once the
	// backbone bandwidth is exhausted.
	cfg := smallConfig()
	var times []float64
	ncgs := []int{1, 2, 4, 8, 12}
	for _, ncg := range ncgs {
		tt, err := ReadOnlyConcurrent(cfg, 5, ncg, 24)
		if err != nil {
			t.Fatal(err)
		}
		times = append(times, tt)
	}
	if !(times[1] < times[0] && times[2] < times[1]) {
		t.Errorf("concurrent read times not dropping: %v", times)
	}
	// Past the backbone limit, improvement stalls: n_cg = 12 is no better
	// than n_cg = 8.
	if times[4] < 0.8*times[3] {
		t.Errorf("no flattening past backbone limit: %v", times)
	}
}

func TestSimulateSEnKFBasics(t *testing.T) {
	cfg := smallConfig()
	ch := costmodel.Choice{NSdx: 8, NSdy: 5, L: 6, NCg: 4}
	if !cfg.P.Feasible(ch) {
		t.Fatal("test choice infeasible")
	}
	res, err := SimulateSEnKF(cfg, ch)
	if err != nil {
		t.Fatal(err)
	}
	if res.NP != ch.C1()+ch.C2() {
		t.Errorf("NP = %d, want %d", res.NP, ch.C1()+ch.C2())
	}
	if res.Runtime <= 0 {
		t.Error("non-positive runtime")
	}
	if res.IO.Read <= 0 || res.IO.Comm <= 0 {
		t.Errorf("I/O breakdown %+v", res.IO)
	}
	if res.Compute.Compute <= 0 {
		t.Errorf("compute breakdown %+v", res.Compute)
	}
	if res.OverlapFraction <= 0 || res.OverlapFraction > 1 {
		t.Errorf("overlap fraction %g", res.OverlapFraction)
	}
	if res.FirstStage <= 0 || res.FirstStage >= res.Runtime {
		t.Errorf("first stage %g vs runtime %g", res.FirstStage, res.Runtime)
	}
	// Bar reading: one seek per small-bar read.
	if res.FSStats.Seeks != res.FSStats.Requests {
		t.Errorf("bar reads must cost one seek each: %+v", res.FSStats)
	}
	if _, err := SimulateSEnKF(cfg, costmodel.Choice{NSdx: 7, NSdy: 5, L: 6, NCg: 4}); err == nil {
		t.Error("expected infeasible-choice error")
	}
}

func TestSEnKFBeatsPEnKFAtScale(t *testing.T) {
	// The headline claim at test scale: with many processors the overlapped
	// bar-reading schedule is substantially faster than block reading.
	cfg := smallConfig()
	nsdx, nsdy, err := ChooseDecomposition(cfg.P, 180)
	if err != nil {
		t.Fatal(err)
	}
	pres, err := SimulatePEnKF(cfg, nsdx, nsdy)
	if err != nil {
		t.Fatal(err)
	}
	ch := feasibleChoice(t, cfg, nsdx, nsdy)
	sres, err := SimulateSEnKF(cfg, ch)
	if err != nil {
		t.Fatal(err)
	}
	if sres.NP > pres.NP+ch.C1() {
		t.Fatalf("unfair comparison: %d vs %d processors", sres.NP, pres.NP)
	}
	speedup := pres.Runtime / sres.Runtime
	if speedup < 1.5 {
		t.Errorf("S-EnKF speedup %.2fx at np=%d, want > 1.5x", speedup, pres.NP)
	}
	t.Logf("P-EnKF %.2fs vs S-EnKF %.2fs (%.2fx, overlap %.0f%%)",
		pres.Runtime, sres.Runtime, speedup, 100*sres.OverlapFraction)
}

func TestSEnKFMostIOHiddenBehindCompute(t *testing.T) {
	cfg := smallConfig()
	ch := costmodel.Choice{NSdx: 12, NSdy: 5, L: 6, NCg: 4}
	res, err := SimulateSEnKF(cfg, ch)
	if err != nil {
		t.Fatal(err)
	}
	// The exposed (non-overlapped) I/O is the first stage plus tail; it
	// should be a modest share of the runtime (§5.4 reports < 8% at scale).
	exposed := 1 - res.OverlapFraction*res.Runtime/math.Max(res.IO.Read+res.IO.Comm, 1e-12)
	_ = exposed
	if res.FirstStage > 0.5*res.Runtime {
		t.Errorf("first stage %g is most of runtime %g", res.FirstStage, res.Runtime)
	}
}

func TestSimulationsAreDeterministic(t *testing.T) {
	cfg := smallConfig()
	a, err := SimulateSEnKF(cfg, costmodel.Choice{NSdx: 8, NSdy: 5, L: 3, NCg: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateSEnKF(cfg, costmodel.Choice{NSdx: 8, NSdy: 5, L: 3, NCg: 2})
	if err != nil {
		t.Fatal(err)
	}
	if a.Runtime != b.Runtime || a.OverlapFraction != b.OverlapFraction {
		t.Errorf("simulation not deterministic: %+v vs %+v", a, b)
	}
	p1, err := SimulatePEnKF(cfg, 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := SimulatePEnKF(cfg, 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	if p1.Runtime != p2.Runtime {
		t.Error("P-EnKF simulation not deterministic")
	}
}

func TestSimulateLEnKFBasics(t *testing.T) {
	cfg := smallConfig()
	res, err := SimulateLEnKF(cfg, 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != "L-EnKF" || res.NP != 41 {
		t.Errorf("header %+v", res)
	}
	if res.IO.Read <= 0 || res.IO.Comm <= 0 {
		t.Errorf("reader breakdown %+v", res.IO)
	}
	if res.Compute.Wait <= 0 || res.Compute.Compute <= 0 {
		t.Errorf("compute breakdown %+v", res.Compute)
	}
	// The single reader reads each file once, in full, with one seek.
	if res.FSStats.Requests != cfg.P.N || res.FSStats.Seeks != cfg.P.N {
		t.Errorf("reader stats %+v", res.FSStats)
	}
	if _, err := SimulateLEnKF(cfg, 7, 5); err == nil {
		t.Error("expected indivisible decomposition error")
	}
}

func TestLEnKFSlowerThanSEnKFWithManyProcs(t *testing.T) {
	cfg := smallConfig()
	lres, err := SimulateLEnKF(cfg, 12, 5)
	if err != nil {
		t.Fatal(err)
	}
	sres, err := SimulateSEnKF(cfg, costmodel.Choice{NSdx: 12, NSdy: 5, L: 6, NCg: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !(sres.Runtime < lres.Runtime) {
		t.Errorf("S-EnKF (%g) not faster than single-reader L-EnKF (%g)", sres.Runtime, lres.Runtime)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := smallConfig()
	bad.P.NX = 0
	if _, err := SimulatePEnKF(bad, 4, 4); err == nil {
		t.Error("expected params error")
	}
	bad = smallConfig()
	bad.FS.OSTs = 0
	if _, err := SimulateSEnKF(bad, costmodel.Choice{NSdx: 4, NSdy: 4, L: 1, NCg: 1}); err == nil {
		t.Error("expected fs error")
	}
	if _, err := ReadOnlyConcurrent(smallConfig(), 5, 7, 24); err == nil {
		t.Error("expected files/groups divisibility error")
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}
