package schedule

import (
	"testing"

	"senkf/internal/costmodel"
	"senkf/internal/parfs"
)

// quickReadOnlyConfig mirrors figures.QuickOptions' machine so the pins
// below cover the exact geometries Figures 5 and 10 sweep in tests.
func quickReadOnlyConfig() Config {
	return Config{
		P: costmodel.Params{
			N: 24, NX: 360, NY: 180,
			A: 2e-6, B: 2e-10, C: 2e-3,
			Theta: 0.5e-9, Xi: 8, Eta: 4, H: 240,
		},
		FS: parfs.Config{
			OSTs:              8,
			ConcurrencyPerOST: 2,
			SeekTime:          1e-4,
			ByteTime:          0.5e-9,
			BackboneStreams:   12,
		},
	}
}

// TestReadOnlyBlockPinned pins the Figure 5 read-only times to the values
// the pre-plan (ad-hoc expansion geometry) implementation returned. The
// port onto compiled plans must keep them bit-identical: the plan's
// nominal addressing ops and point counts are exactly the old geometry.
func TestReadOnlyBlockPinned(t *testing.T) {
	quick := quickReadOnlyConfig()
	paper := DefaultConfig()
	cases := []struct {
		name   string
		cfg    Config
		nsdx   int
		nsdy   int
		nFiles int
		want   float64
	}{
		{"quick/nsdx=10", quick, 10, 5, 24, 0.4955033599999995},
		{"quick/nsdx=20", quick, 20, 5, 24, 0.9433811199999953},
		{"quick/nsdx=30", quick, 30, 5, 24, 1.3916390400000049},
		{"quick/nsdx=40", quick, 40, 5, 24, 1.8399919999999934},
		{"paper/nsdx=100", paper, 100, 10, 100, 63.596998079993142},
		{"paper/nsdx=200", paper, 200, 10, 100, 119.97316800003667},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := ReadOnlyBlock(tc.cfg, tc.nsdx, tc.nsdy, tc.nFiles)
			if err != nil {
				t.Fatalf("ReadOnlyBlock: %v", err)
			}
			if got != tc.want {
				t.Fatalf("ReadOnlyBlock = %.17g, pinned %.17g", got, tc.want)
			}
		})
	}
}

// TestReadOnlyConcurrentPinned pins the Figure 10 concurrent-access times
// the same way.
func TestReadOnlyConcurrentPinned(t *testing.T) {
	quick := quickReadOnlyConfig()
	paper := DefaultConfig()
	cases := []struct {
		name   string
		cfg    Config
		nsdy   int
		ncg    int
		nFiles int
		want   float64
	}{
		{"quick/ncg=1", quick, 5, 1, 24, 0.14405759999999984},
		{"quick/ncg=2", quick, 5, 2, 24, 0.072028799999999948},
		{"quick/ncg=4", quick, 5, 4, 24, 0.036014399999999995},
		{"quick/ncg=8", quick, 5, 8, 24, 0.020008000000000001},
		{"quick/ncg=12", quick, 5, 12, 24, 0.022008800000000002},
		{"paper/ncg=1", paper, 10, 1, 120, 50.821200000000026},
		{"paper/ncg=8", paper, 10, 8, 120, 8.5549020000000038},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := ReadOnlyConcurrent(tc.cfg, tc.nsdy, tc.ncg, tc.nFiles)
			if err != nil {
				t.Fatalf("ReadOnlyConcurrent: %v", err)
			}
			if got != tc.want {
				t.Fatalf("ReadOnlyConcurrent = %.17g, pinned %.17g", got, tc.want)
			}
		})
	}
}

// TestReadOnlyConcurrentRejectsIndivisibleGroups keeps the pre-plan error
// contract: group count must divide the file count.
func TestReadOnlyConcurrentRejectsIndivisibleGroups(t *testing.T) {
	if _, err := ReadOnlyConcurrent(quickReadOnlyConfig(), 5, 7, 24); err == nil {
		t.Fatal("ReadOnlyConcurrent accepted 24 files in 7 groups")
	}
}
