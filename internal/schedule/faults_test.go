package schedule

import (
	"reflect"
	"testing"

	"senkf/internal/faults"
)

// TestNilAndEmptyFaultPlansMatchBaseline pins the zero-overhead contract:
// a nil plan and an empty plan must reproduce the healthy run exactly.
func TestNilAndEmptyFaultPlansMatchBaseline(t *testing.T) {
	cfg := smallConfig()
	ch := feasibleChoice(t, cfg, 4, 3)
	base, err := SimulateSEnKF(cfg, ch)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Faults = &faults.Plan{}
	withEmpty, err := SimulateSEnKF(cfg, ch)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, withEmpty) {
		t.Errorf("empty fault plan changed the run:\nbase %+v\nwith %+v", base, withEmpty)
	}
}

func TestFaultedRunsAreDeterministic(t *testing.T) {
	cfg := smallConfig()
	ch := feasibleChoice(t, cfg, 4, 3)
	cfg.Faults = faults.Generate(42, 0.8, faults.Geometry{
		OSTs: cfg.FS.OSTs, NCg: ch.NCg, NSdy: ch.NSdy, L: ch.L, N: cfg.P.N, Horizon: 1,
	})
	a, err := SimulateSEnKF(cfg, ch)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateSEnKF(cfg, ch)
	if err != nil {
		t.Fatal(err)
	}
	// Mean breakdowns sum per-track floats in map order, so they carry
	// last-ulp noise; every event-structure quantity must match exactly.
	if a.Runtime != b.Runtime || !reflect.DeepEqual(a.FSStats, b.FSStats) ||
		!reflect.DeepEqual(a.DroppedMembers, b.DroppedMembers) ||
		a.Failovers != b.Failovers || a.RankDeaths != b.RankDeaths ||
		a.FirstStage != b.FirstStage {
		t.Errorf("same plan produced different runs:\n%+v\n%+v", a, b)
	}
}

// TestRankDeathFailsOverWithoutDeadlock kills one reader mid-run: the
// simulation must complete (no deadlock), record the failover, and still
// deliver every stage notification to the compute processors.
func TestRankDeathFailsOverWithoutDeadlock(t *testing.T) {
	cfg := smallConfig()
	ch := feasibleChoice(t, cfg, 4, 3)
	if ch.L < 2 {
		t.Skip("need multi-stage schedule")
	}
	cfg.Faults = &faults.Plan{Deaths: []faults.RankDeath{
		{Group: 0, Reader: 1, BeforeStage: 1},
	}}
	res, err := SimulateSEnKF(cfg, ch)
	if err != nil {
		t.Fatalf("death scenario deadlocked or failed: %v", err)
	}
	if res.RankDeaths != 1 {
		t.Errorf("RankDeaths = %d, want 1", res.RankDeaths)
	}
	if res.Failovers != 1 {
		t.Errorf("Failovers = %d, want 1 (row 1 adopted once)", res.Failovers)
	}
	healthy := cfg
	healthy.Faults = nil
	base, err := SimulateSEnKF(healthy, ch)
	if err != nil {
		t.Fatal(err)
	}
	if res.Runtime < base.Runtime {
		t.Errorf("failover run (%g) faster than healthy run (%g)", res.Runtime, base.Runtime)
	}
}

// TestTimeBasedDeathFailsOver exercises the virtual-clock death trigger.
func TestTimeBasedDeathFailsOver(t *testing.T) {
	cfg := smallConfig()
	ch := feasibleChoice(t, cfg, 4, 3)
	if ch.L < 2 {
		t.Skip("need multi-stage schedule")
	}
	// A tiny positive At: the rank survives stage 0 (whose group-agreed
	// stage-top time is exactly 0) and dies at the first later stage
	// boundary, all of which have positive virtual times.
	cfg.Faults = &faults.Plan{Deaths: []faults.RankDeath{
		{Group: 0, Reader: 0, At: 1e-12},
	}}
	res, err := SimulateSEnKF(cfg, ch)
	if err != nil {
		t.Fatalf("time-based death deadlocked or failed: %v", err)
	}
	if res.RankDeaths != 1 || res.Failovers != 1 {
		t.Errorf("deaths/failovers = %d/%d, want 1/1", res.RankDeaths, res.Failovers)
	}
}

func TestDroppedMembersReported(t *testing.T) {
	cfg := smallConfig()
	ch := feasibleChoice(t, cfg, 4, 3)
	cfg.Faults = &faults.Plan{FileFaults: []faults.FileFault{
		{Member: 5, Kind: faults.FileCorrupt},
		{Member: 9, Kind: faults.FileTransient, Count: 1}, // recoverable
		{Member: 11, Kind: faults.FileMissing},
	}}
	res, err := SimulateSEnKF(cfg, ch)
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{5, 11}; !reflect.DeepEqual(res.DroppedMembers, want) {
		t.Errorf("DroppedMembers = %v, want %v", res.DroppedMembers, want)
	}
}

func TestOutageAndStragglerSlowTheRun(t *testing.T) {
	cfg := smallConfig()
	ch := feasibleChoice(t, cfg, 4, 3)
	base, err := SimulateSEnKF(cfg, ch)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Faults = &faults.Plan{
		OSTWindows: []faults.OSTWindow{{OST: 0, Start: 0, End: 0.3 * base.Runtime, Factor: 0}},
		Stragglers: []faults.Straggler{{Proc: "io/g0/r0", Factor: 3}},
	}
	res, err := SimulateSEnKF(cfg, ch)
	if err != nil {
		t.Fatal(err)
	}
	if res.Runtime <= base.Runtime {
		t.Errorf("faulted run (%g) not slower than healthy (%g)", res.Runtime, base.Runtime)
	}
	if res.FSStats.OutageStalls == 0 {
		t.Error("no outage stalls recorded")
	}
}

func TestBaselinesAcceptFaultPlans(t *testing.T) {
	cfg := smallConfig()
	basePE, err := SimulatePEnKF(cfg, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Faults = &faults.Plan{
		OSTWindows: []faults.OSTWindow{{OST: 1, Start: 0, End: 0.5 * basePE.Runtime, Factor: 4}},
	}
	pe, err := SimulatePEnKF(cfg, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if pe.Runtime <= basePE.Runtime {
		t.Errorf("degraded P-EnKF (%g) not slower than healthy (%g)", pe.Runtime, basePE.Runtime)
	}
	if _, err := SimulateLEnKF(cfg, 4, 3); err != nil {
		t.Fatalf("L-EnKF with fault plan: %v", err)
	}
}

func TestInvalidPlanRejected(t *testing.T) {
	cfg := smallConfig()
	ch := feasibleChoice(t, cfg, 4, 3)
	// Kill every reader of group 0: no failover target.
	var deaths []faults.RankDeath
	for j := 0; j < ch.NSdy; j++ {
		deaths = append(deaths, faults.RankDeath{Group: 0, Reader: j, BeforeStage: 0})
	}
	cfg.Faults = &faults.Plan{Deaths: deaths}
	if _, err := SimulateSEnKF(cfg, ch); err == nil {
		t.Error("whole-group death plan accepted")
	}
}
