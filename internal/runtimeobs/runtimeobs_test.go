package runtimeobs

import (
	"math"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"

	"senkf/internal/trace"
)

// A nil LabelSet must be a pure pass-through: no labels, fn runs, errors
// propagate, SpawnWrapper disabled.
func TestNilLabelSetIsNoOp(t *testing.T) {
	var l *LabelSet
	sc := l.Scope("io/g0/r0")
	if sc != nil {
		t.Fatalf("nil LabelSet produced a non-nil scope")
	}
	ran := false
	if err := sc.Do(func() error { ran = true; return nil }); err != nil || !ran {
		t.Fatalf("nil Scope.Do: ran=%v err=%v", ran, err)
	}
	ran = false
	if err := sc.Stage(3, func() error { ran = true; return nil }); err != nil || !ran {
		t.Fatalf("nil Scope.Stage: ran=%v err=%v", ran, err)
	}
	if l.SpawnWrapper() != nil {
		t.Fatalf("nil LabelSet produced a non-nil spawn wrapper")
	}
}

func TestClassOf(t *testing.T) {
	for in, want := range map[string]string{
		"io/g0/r1": "io", "comp/x0y1": "comp", "ost3": "ost3", "cycle": "cycle",
	} {
		if got := ClassOf(in); got != want {
			t.Errorf("ClassOf(%q) = %q, want %q", in, got, want)
		}
	}
}

// SpawnWrapper must run the body under the proc's labels and goroutines
// spawned inside must inherit them — asserted through a real CPU capture
// in TestLabeledCaptureSlicesByProcAndStage; here just that it runs.
func TestSpawnWrapperRunsBody(t *testing.T) {
	l := Labels("run-1", "senkf", "sim")
	wrap := l.SpawnWrapper()
	if wrap == nil {
		t.Fatal("SpawnWrapper returned nil for a live LabelSet")
	}
	done := make(chan struct{})
	go wrap("comp/x0y0", func() { close(done) })()
	<-done
}

// Round-trip: a synthetic profile through the test encoder and back
// through the parser must preserve sample types, values and labels.
func TestProfileRoundTrip(t *testing.T) {
	in := &Profile{
		SampleTypes: []ValueType{{Type: "samples", Unit: "count"}, {Type: "cpu", Unit: "nanoseconds"}},
		Samples: []Sample{
			{Values: []int64{4, 40_000_000}, Labels: map[string]string{
				LabelProc: "comp/x0y0", LabelStage: "2", LabelRunID: "r1"}},
			{Values: []int64{1, 10_000_000}},
		},
		PeriodNanos: 10_000_000,
	}
	out, err := ParseProfile(in.Marshal())
	if err != nil {
		t.Fatalf("ParseProfile: %v", err)
	}
	if len(out.SampleTypes) != 2 || out.SampleTypes[1].Type != "cpu" || out.SampleTypes[1].Unit != "nanoseconds" {
		t.Fatalf("sample types = %+v", out.SampleTypes)
	}
	if out.PeriodNanos != 10_000_000 {
		t.Fatalf("period = %d", out.PeriodNanos)
	}
	if len(out.Samples) != 2 {
		t.Fatalf("samples = %d", len(out.Samples))
	}
	s0 := out.Samples[0]
	if s0.Values[1] != 40_000_000 || s0.Labels[LabelProc] != "comp/x0y0" || s0.Labels[LabelStage] != "2" {
		t.Fatalf("sample 0 = %+v", s0)
	}
	if out.Samples[1].Labels != nil {
		t.Fatalf("sample 1 grew labels: %+v", out.Samples[1].Labels)
	}
	if idx := out.ValueIndex("cpu"); idx != 1 {
		t.Fatalf("ValueIndex(cpu) = %d", idx)
	}
}

func TestParseProfileRejectsGarbage(t *testing.T) {
	if _, err := ParseProfile([]byte{0x1f, 0x8b, 0x00}); err == nil {
		t.Fatal("truncated gzip accepted")
	}
	if _, err := ParseProfile([]byte{0x0a}); err == nil { // field 1, truncated length
		t.Fatal("truncated protobuf accepted")
	}
}

// The acceptance-criterion tolerance check, deterministic: a synthetic
// trace whose per-(class, stage) busy shares are known exactly, and a
// synthetic labeled profile whose CPU shares match them — the merged
// attribution must rank identically and agree within 2%.
func TestAttributionAgreesWithTraceBusyTime(t *testing.T) {
	// Busy seconds per (class, stage), mirroring a 3-stage S-EnKF run.
	busy := map[stageKey]float64{
		{"comp", 0}: 1.0,
		{"comp", 1}: 2.0,
		{"comp", 2}: 4.0,
		{"io", -1}:  1.0,
	}
	var events []trace.Event
	for k, d := range busy {
		track, name := k.class+"/x0y0", "compute"
		if k.class == "io" {
			track, name = "io/g0/r0", "read"
		}
		ev := trace.Event{Track: track, Cat: trace.CatPhase, Name: name, Ph: trace.PhaseSpan, Ts: 0, Dur: d}
		if k.stage >= 0 {
			ev.Args = []trace.Arg{{Key: trace.ArgStage, Val: float64(k.stage)}}
		}
		events = append(events, ev)
	}
	// Wait spans must not count as busy time.
	events = append(events, trace.Event{Track: "comp/x0y0", Cat: trace.CatPhase,
		Name: "wait", Ph: trace.PhaseSpan, Ts: 0, Dur: 100})

	p := &Profile{SampleTypes: []ValueType{{Type: "cpu", Unit: "nanoseconds"}}}
	for k, d := range busy {
		labels := map[string]string{LabelProc: k.class + "/x0y0"}
		if k.stage >= 0 {
			labels[LabelStage] = strconv.Itoa(k.stage)
		}
		p.Samples = append(p.Samples, Sample{Values: []int64{int64(d * 1e9)}, Labels: labels})
	}
	// Unlabeled scheduler overhead: counts toward total, not toward rows.
	p.Samples = append(p.Samples, Sample{Values: []int64{int64(0.5e9)}})

	attr, err := Attribute(p, events)
	if err != nil {
		t.Fatalf("Attribute: %v", err)
	}
	if attr.MaxShareError > 0.02 {
		t.Fatalf("share error %.4f exceeds 2%% on an exactly-proportional workload", attr.MaxShareError)
	}
	if len(attr.Stages) != 4 {
		t.Fatalf("rows = %d, want 4: %+v", len(attr.Stages), attr.Stages)
	}
	top := attr.Stages[0]
	if top.Class != "comp" || top.Stage != 2 {
		t.Fatalf("hottest row = %s stage %d, want comp stage 2", top.Class, top.Stage)
	}
	if math.Abs(top.CPUShare-0.5) > 1e-9 || math.Abs(top.BusyShare-0.5) > 1e-9 {
		t.Fatalf("top shares = %.3f cpu / %.3f busy, want 0.5 / 0.5", top.CPUShare, top.BusyShare)
	}
	if want := 8.0 / 8.5; math.Abs(attr.LabeledFraction()-want) > 1e-9 {
		t.Fatalf("labeled fraction = %.4f, want %.4f", attr.LabeledFraction(), want)
	}
	if got := ProfileStages(p); len(got) != 3 || got[0] != 0 || got[2] != 2 {
		t.Fatalf("ProfileStages = %v", got)
	}
}

func TestAttributeRejectsProfileWithoutCPUColumn(t *testing.T) {
	p := &Profile{SampleTypes: []ValueType{{Type: "inuse_space", Unit: "bytes"}}}
	if _, err := Attribute(p, nil); err == nil {
		t.Fatal("heap-shaped profile accepted for CPU attribution")
	}
}

// End-to-end label propagation: run real CPU work under Scope/Stage
// labels while profiling, then parse the capture with our own reader and
// slice it by {proc, stage}. Skipped (not failed) when the profiler
// lands no samples on a heavily loaded host.
func TestLabeledCaptureSlicesByProcAndStage(t *testing.T) {
	if testing.Short() {
		t.Skip("CPU capture in -short mode")
	}
	var buf writerBuffer
	if err := pprof.StartCPUProfile(&buf); err != nil {
		t.Skipf("CPU profiler unavailable: %v", err)
	}
	l := Labels("run-e2e", "senkf", "real")
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		sc := l.Scope("comp/x0y" + strconv.Itoa(g))
		go func() {
			defer wg.Done()
			_ = sc.Do(func() error {
				for st := 0; st < 2; st++ {
					_ = sc.Stage(st, func() error {
						spin(80) // ~80ms of arithmetic per stage
						return nil
					})
				}
				return nil
			})
		}()
	}
	wg.Wait()
	pprof.StopCPUProfile()

	p, err := ParseProfile(buf.b)
	if err != nil {
		t.Fatalf("parse own CPU capture: %v", err)
	}
	var labeled int
	stages := map[string]bool{}
	for _, s := range p.Samples {
		if s.Labels[LabelRunID] != "run-e2e" {
			continue
		}
		labeled++
		if s.Labels[LabelProc] == "" {
			t.Fatalf("run-labeled sample missing proc label: %+v", s.Labels)
		}
		if st := s.Labels[LabelStage]; st != "" {
			stages[st] = true
		}
	}
	if labeled == 0 {
		t.Skip("profiler landed no samples on the labeled goroutines")
	}
	if len(stages) == 0 {
		t.Fatalf("%d labeled samples but none carries a stage label", labeled)
	}
	if _, err := Attribute(p, nil); err != nil {
		t.Fatalf("Attribute on real capture: %v", err)
	}
}

type writerBuffer struct{ b []byte }

func (w *writerBuffer) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

// spin burns roughly ms milliseconds of CPU in a loop the compiler
// cannot elide. The sink is atomic because labeled goroutines spin
// concurrently under -race.
var spinSink atomic.Uint64

func spin(ms int) {
	// ~2e6 iterations/ms is a safe overestimate on CI hardware; the loop
	// self-calibrates by iteration count, not wall time, so virtual-time
	// determinism elsewhere is unaffected.
	n := ms * 200_000
	x := 1.0
	for i := 0; i < n; i++ {
		x += math.Sqrt(float64(i&1023) + x/1e6)
	}
	spinSink.Store(math.Float64bits(x))
}

// Sampler smoke: against a live buffer+registry, Start/Stop must publish
// at least the final synchronous sample, with nondecreasing timestamps,
// and the registry gauges must be set.
func TestSamplerPublishesAndStopsCleanly(t *testing.T) {
	buf := trace.NewBuffer()
	reg := trace.NewRegistry()
	tr := trace.New(nil, buf)
	s := NewSampler(SamplerConfig{Tracer: tr, Registry: reg, Interval: 5e6}) // 5ms
	s.Start()
	// Force some allocation and GC traffic so readings move.
	for i := 0; i < 50; i++ {
		_ = make([]byte, 1<<16)
	}
	s.Stop()
	s.Stop() // idempotent

	sum := s.Summary()
	if sum.Samples < 1 {
		t.Fatalf("samples = %d, want >= 1", sum.Samples)
	}
	if sum.PeakGoroutines < 1 {
		t.Fatalf("peak goroutines = %d", sum.PeakGoroutines)
	}
	var instants int
	lastTs := math.Inf(-1)
	for _, ev := range buf.Events() {
		if ev.Cat != trace.CatRuntime {
			continue
		}
		if ev.Track != trace.RuntimeTrack || ev.Name != SampleEventName || ev.Ph != trace.PhaseInstant {
			t.Fatalf("unexpected runtime event: %+v", ev)
		}
		if ev.Ts < lastTs {
			t.Fatalf("runtime samples reordered: %g after %g", ev.Ts, lastTs)
		}
		lastTs = ev.Ts
		if _, ok := ev.ArgValue(ArgGoroutines); !ok {
			t.Fatalf("sample missing %s arg: %+v", ArgGoroutines, ev)
		}
		instants++
	}
	if instants != sum.Samples {
		t.Fatalf("buffer has %d sample instants, summary says %d — final sample dropped?", instants, sum.Samples)
	}
	if hw := reg.GaugeMax(RegGoroutines); hw < 1 {
		t.Fatalf("gauge %s high-water = %g, want >= 1", RegGoroutines, hw)
	}
}

func TestCollectBaselineSetsGauges(t *testing.T) {
	CollectBaseline(nil) // nil-safe
	reg := trace.NewRegistry()
	CollectBaseline(reg)
	want := map[string]bool{RegGoGoroutines: false, RegGoHeapAlloc: false, RegGoGCCycles: false}
	for _, g := range reg.Snapshot().Gauges {
		if _, ok := want[g.Name]; ok {
			want[g.Name] = true
		}
	}
	for name, ok := range want {
		if !ok {
			t.Errorf("baseline gauge %s not set", name)
		}
	}
}
