// A hand-rolled reader (and, for tests, writer) of the pprof protobuf
// wire format. The repo is dependency-free, so instead of importing
// github.com/google/pprof we decode the handful of fields hot-stage
// attribution needs: the sample types, and each sample's values and
// string labels. Locations, mappings and functions — the call-stack side
// of a profile — are skipped wholesale; attribution slices by pprof
// *label*, not by frame.
//
// Field numbers (from pprof's profile.proto):
//
//	Profile:   sample_type=1, sample=2, string_table=6,
//	           period_type=11, period=12
//	Sample:    location_id=1, value=2, label=3
//	Label:     key=1 (string-table index), str=2 (index), num=3
//	ValueType: type=1 (index), unit=2 (index)

package runtimeobs

import (
	"bytes"
	"compress/gzip"
	"errors"
	"fmt"
	"io"
)

// ValueType names one column of a profile's sample values, e.g.
// {Type: "cpu", Unit: "nanoseconds"}.
type ValueType struct {
	Type string
	Unit string
}

// Sample is one profile sample: a value per sample-type column plus the
// pprof labels active on the sampled goroutine. Numeric labels are
// folded into Labels as their decimal strings; call stacks are dropped.
type Sample struct {
	Values []int64
	Labels map[string]string
}

// Profile is the label-level view of a pprof profile.
type Profile struct {
	SampleTypes []ValueType
	Samples     []Sample
	// PeriodNanos is the sampling period for cpu/nanoseconds profiles
	// (1e7 at the default 100 Hz), 0 when absent.
	PeriodNanos int64
}

// ValueIndex returns the column index of the sample type with the given
// name ("cpu", "samples", ...), or -1.
func (p *Profile) ValueIndex(typ string) int {
	for i, st := range p.SampleTypes {
		if st.Type == typ {
			return i
		}
	}
	return -1
}

// ParseProfile decodes a (possibly gzipped, as written by runtime/pprof)
// profile into its label-level view.
func ParseProfile(data []byte) (*Profile, error) {
	if len(data) >= 2 && data[0] == 0x1f && data[1] == 0x8b {
		zr, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("runtimeobs: profile gzip: %w", err)
		}
		raw, err := io.ReadAll(zr)
		if closeErr := zr.Close(); err == nil {
			err = closeErr
		}
		if err != nil {
			return nil, fmt.Errorf("runtimeobs: profile gunzip: %w", err)
		}
		data = raw
	}
	// First pass gathers the string table (it may follow the samples that
	// reference it), second pass resolves sample types and labels.
	var strtab []string
	var rawTypes [][]byte
	var rawSamples [][]byte
	var periodType []byte
	var period int64
	err := walkFields(data, func(field int, wire int, varint uint64, chunk []byte) error {
		switch field {
		case 1: // sample_type
			rawTypes = append(rawTypes, chunk)
		case 2: // sample
			rawSamples = append(rawSamples, chunk)
		case 6: // string_table
			strtab = append(strtab, string(chunk))
		case 11: // period_type
			periodType = chunk
		case 12: // period
			period = int64(varint)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("runtimeobs: profile decode: %w", err)
	}
	str := func(idx int64) (string, error) {
		if idx < 0 || idx >= int64(len(strtab)) {
			return "", fmt.Errorf("string index %d out of table (len %d)", idx, len(strtab))
		}
		return strtab[idx], nil
	}
	p := &Profile{}
	for _, chunk := range rawTypes {
		vt, err := parseValueType(chunk, str)
		if err != nil {
			return nil, fmt.Errorf("runtimeobs: sample_type: %w", err)
		}
		p.SampleTypes = append(p.SampleTypes, vt)
	}
	if periodType != nil && period > 0 {
		if vt, err := parseValueType(periodType, str); err == nil && vt.Unit == "nanoseconds" {
			p.PeriodNanos = period
		}
	}
	for _, chunk := range rawSamples {
		s, err := parseSample(chunk, str)
		if err != nil {
			return nil, fmt.Errorf("runtimeobs: sample: %w", err)
		}
		p.Samples = append(p.Samples, s)
	}
	return p, nil
}

func parseValueType(data []byte, str func(int64) (string, error)) (ValueType, error) {
	var vt ValueType
	err := walkFields(data, func(field int, wire int, varint uint64, chunk []byte) error {
		var err error
		switch field {
		case 1:
			vt.Type, err = str(int64(varint))
		case 2:
			vt.Unit, err = str(int64(varint))
		}
		return err
	})
	return vt, err
}

func parseSample(data []byte, str func(int64) (string, error)) (Sample, error) {
	s := Sample{}
	err := walkFields(data, func(field int, wire int, varint uint64, chunk []byte) error {
		switch field {
		case 2: // value: packed or repeated varint
			if wire == 2 {
				vals, err := unpackVarints(chunk)
				if err != nil {
					return err
				}
				for _, v := range vals {
					s.Values = append(s.Values, int64(v))
				}
			} else {
				s.Values = append(s.Values, int64(varint))
			}
		case 3: // label
			var keyIdx, strIdx, num int64
			var hasStr bool
			err := walkFields(chunk, func(f int, w int, v uint64, c []byte) error {
				switch f {
				case 1:
					keyIdx = int64(v)
				case 2:
					strIdx, hasStr = int64(v), true
				case 3:
					num = int64(v)
				}
				return nil
			})
			if err != nil {
				return err
			}
			key, err := str(keyIdx)
			if err != nil {
				return err
			}
			val := fmt.Sprintf("%d", num)
			if hasStr {
				if val, err = str(strIdx); err != nil {
					return err
				}
			}
			if s.Labels == nil {
				s.Labels = map[string]string{}
			}
			s.Labels[key] = val
		}
		return nil
	})
	return s, err
}

// walkFields iterates a protobuf message's top-level fields. For varint
// fields the value is passed in varint; for length-delimited fields the
// bytes are passed in chunk. Fixed32/fixed64 fields are skipped.
func walkFields(data []byte, fn func(field int, wire int, varint uint64, chunk []byte) error) error {
	for len(data) > 0 {
		tag, n, err := readVarint(data)
		if err != nil {
			return err
		}
		data = data[n:]
		field, wire := int(tag>>3), int(tag&7)
		switch wire {
		case 0: // varint
			v, n, err := readVarint(data)
			if err != nil {
				return err
			}
			data = data[n:]
			if err := fn(field, wire, v, nil); err != nil {
				return err
			}
		case 1: // fixed64
			if len(data) < 8 {
				return errors.New("truncated fixed64")
			}
			data = data[8:]
		case 2: // length-delimited
			ln, n, err := readVarint(data)
			if err != nil {
				return err
			}
			data = data[n:]
			if uint64(len(data)) < ln {
				return errors.New("truncated length-delimited field")
			}
			if err := fn(field, wire, 0, data[:ln]); err != nil {
				return err
			}
			data = data[ln:]
		case 5: // fixed32
			if len(data) < 4 {
				return errors.New("truncated fixed32")
			}
			data = data[4:]
		default:
			return fmt.Errorf("unsupported wire type %d for field %d", wire, field)
		}
	}
	return nil
}

func readVarint(data []byte) (uint64, int, error) {
	var v uint64
	for i := 0; i < len(data) && i < 10; i++ {
		b := data[i]
		v |= uint64(b&0x7f) << (7 * uint(i))
		if b&0x80 == 0 {
			return v, i + 1, nil
		}
	}
	return 0, 0, errors.New("truncated varint")
}

func unpackVarints(data []byte) ([]uint64, error) {
	var out []uint64
	for len(data) > 0 {
		v, n, err := readVarint(data)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
		data = data[n:]
	}
	return out, nil
}

// --- test encoder ---------------------------------------------------------

// Marshal encodes the profile back to gzipped pprof wire format. It
// exists so tests (and the deterministic attribution-tolerance check) can
// build synthetic labeled profiles without a CPU profiler in the loop;
// it emits only the fields ParseProfile reads.
func (p *Profile) Marshal() []byte {
	strtab := []string{""} // index 0 must be the empty string
	index := map[string]int64{"": 0}
	intern := func(s string) int64 {
		if i, ok := index[s]; ok {
			return i
		}
		i := int64(len(strtab))
		strtab = append(strtab, s)
		index[s] = i
		return i
	}

	var body bytes.Buffer
	for _, st := range p.SampleTypes {
		var vt bytes.Buffer
		putVarintField(&vt, 1, uint64(intern(st.Type)))
		putVarintField(&vt, 2, uint64(intern(st.Unit)))
		putBytesField(&body, 1, vt.Bytes())
	}
	for _, s := range p.Samples {
		var sm bytes.Buffer
		var packed bytes.Buffer
		for _, v := range s.Values {
			putVarint(&packed, uint64(v))
		}
		putBytesField(&sm, 2, packed.Bytes())
		for _, k := range sortedKeys(s.Labels) {
			var lb bytes.Buffer
			putVarintField(&lb, 1, uint64(intern(k)))
			putVarintField(&lb, 2, uint64(intern(s.Labels[k])))
			putBytesField(&sm, 3, lb.Bytes())
		}
		putBytesField(&body, 2, sm.Bytes())
	}
	for _, s := range strtab {
		putBytesField(&body, 6, []byte(s))
	}
	if p.PeriodNanos > 0 {
		var vt bytes.Buffer
		putVarintField(&vt, 1, uint64(intern("cpu")))
		putVarintField(&vt, 2, uint64(intern("nanoseconds")))
		putBytesField(&body, 11, vt.Bytes())
		putVarintField(&body, 12, uint64(p.PeriodNanos))
	}

	var out bytes.Buffer
	zw := gzip.NewWriter(&out)
	zw.Write(body.Bytes()) //nolint:errcheck // bytes.Buffer cannot fail
	zw.Close()             //nolint:errcheck
	return out.Bytes()
}

func putVarint(w *bytes.Buffer, v uint64) {
	for v >= 0x80 {
		w.WriteByte(byte(v) | 0x80)
		v >>= 7
	}
	w.WriteByte(byte(v))
}

func putVarintField(w *bytes.Buffer, field int, v uint64) {
	putVarint(w, uint64(field)<<3|0)
	putVarint(w, v)
}

func putBytesField(w *bytes.Buffer, field int, b []byte) {
	putVarint(w, uint64(field)<<3|2)
	putVarint(w, uint64(len(b)))
	w.Write(b)
}
