// The runtime-metrics sampler: a background goroutine that reads
// runtime/metrics on a fixed cadence and publishes each reading three
// ways at once — as a CatRuntime "sample" instant (plus counter series)
// on the trace stream, as gauges/histograms in the run's counter
// registry, and as the run-level peaks that end up in the archived
// runtime.json. Because the instants flow through the session's normal
// sink chain (trace.Tee → monitor → buffer), the live monitor's runtime
// watchdogs and the flight recorder see GC/heap state on the same clock
// as the plan events without any side channel.

package runtimeobs

import (
	"runtime/metrics"
	"sync"
	"time"

	"senkf/internal/trace"
)

// SampleEventName is the name of the periodic runtime instant the
// sampler emits on trace.RuntimeTrack with category trace.CatRuntime.
const SampleEventName = "sample"

// Arg keys of the "sample" instant. internal/monitor parses these to
// drive its runtime watchdogs, so they are shared constants rather than
// literals in two packages.
const (
	ArgGoroutines = "goroutines"        // current goroutine count
	ArgHeapLive   = "heap_live_bytes"   // live heap at last GC mark
	ArgHeapInuse  = "heap_inuse_bytes"  // heap spans in use right now
	ArgHeapGoal   = "heap_goal_bytes"   // pacer's next-GC goal
	ArgGCCycles   = "gc_cycles"         // completed GC cycles since start
	ArgGCPause    = "gc_pause_max_s"    // longest stop-the-world pause this tick
	ArgSchedLat   = "sched_lat_max_s"   // longest goroutine sched latency this tick
)

// runtime/metrics names the sampler reads. Read defensively: the set is
// intersected with metrics.All() at construction so a Go release that
// renames one degrades that reading to zero instead of panicking.
const (
	metGoroutines = "/sched/goroutines:goroutines"
	metHeapLive   = "/gc/heap/live:bytes"
	metHeapInuse  = "/memory/classes/heap/objects:bytes"
	metHeapGoal   = "/gc/heap/goal:bytes"
	metGCCycles   = "/gc/cycles/total:gc-cycles"
	metHeapAllocs = "/gc/heap/allocs:bytes"
	metGCPauses   = "/gc/pauses:seconds"
	metSchedLat   = "/sched/latencies:seconds"
)

// Registry metric names the sampler maintains (gauges track high-water,
// so peak heap and peak goroutines survive into the counters table).
const (
	RegGoroutines = "runtime/goroutines"
	RegHeapLive   = "runtime/heap_live_bytes"
	RegHeapInuse  = "runtime/heap_inuse_bytes"
	RegHeapGoal   = "runtime/heap_goal_bytes"
	RegGCCycles   = "runtime/gc_cycles"
	RegGCPause    = "runtime/gc_pause_s"
	RegSchedLat   = "runtime/sched_latency_s"
)

// gcPauseBuckets spans 1µs..1s stop-the-world pauses.
var gcPauseBuckets = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1}

// SamplerConfig configures a Sampler. Tracer and Registry may each be
// nil; the sampler then keeps only its run-level summary.
type SamplerConfig struct {
	Tracer   *trace.Tracer
	Registry *trace.Registry
	Interval time.Duration // cadence; <= 0 defaults to DefaultInterval
}

// DefaultInterval is the sampling cadence when none is configured.
const DefaultInterval = 250 * time.Millisecond

// Summary is the run-level digest of the sampler's readings — the shape
// archived as runtime.json. HotStages is attached by the session after
// the run when a labeled CPU profile was captured.
type Summary struct {
	Samples            int     `json:"samples"`
	IntervalSeconds    float64 `json:"interval_seconds"`
	PeakGoroutines     int64   `json:"peak_goroutines"`
	PeakHeapLiveBytes  int64   `json:"peak_heap_live_bytes"`
	PeakHeapInuseBytes int64   `json:"peak_heap_inuse_bytes"`
	HeapGoalBytes      int64   `json:"heap_goal_bytes"`
	GCCycles           int64   `json:"gc_cycles"`
	MaxGCPauseSeconds  float64 `json:"max_gc_pause_seconds"`
	MaxSchedLatSeconds float64 `json:"max_sched_lat_seconds"`
	AllocBytes         int64   `json:"alloc_bytes"`

	HotStages        *Attribution `json:"hot_stages,omitempty"`
	AttributionError string       `json:"attribution_error,omitempty"`
}

// Sampler streams runtime/metrics into the trace/registry plumbing.
// Create with NewSampler, then Start; Stop takes one final synchronous
// sample before returning, so the last reading is never dropped even
// when the run ends between ticks.
type Sampler struct {
	cfg   SamplerConfig
	batch []metrics.Sample
	idx   map[string]int // metric name -> index in batch, present only if supported

	stop chan struct{}
	done chan struct{}

	mu        sync.Mutex
	started   bool
	stopped   bool
	sum       Summary
	prevPause []uint64 // previous /gc/pauses counts
	prevLat   []uint64 // previous /sched/latencies counts
	baseAlloc int64    // /gc/heap/allocs at first sample
	baseGC    int64    // /gc/cycles/total at first sample
	haveBase  bool
}

// NewSampler builds a sampler; it reads nothing until Start.
func NewSampler(cfg SamplerConfig) *Sampler {
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultInterval
	}
	supported := map[string]bool{}
	for _, d := range metrics.All() {
		supported[d.Name] = true
	}
	s := &Sampler{
		cfg:  cfg,
		idx:  map[string]int{},
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	for _, name := range []string{
		metGoroutines, metHeapLive, metHeapInuse, metHeapGoal,
		metGCCycles, metHeapAllocs, metGCPauses, metSchedLat,
	} {
		if supported[name] {
			s.idx[name] = len(s.batch)
			s.batch = append(s.batch, metrics.Sample{Name: name})
		}
	}
	s.sum.IntervalSeconds = cfg.Interval.Seconds()
	if cfg.Registry != nil {
		cfg.Registry.DeclareHistogram(RegGCPause, gcPauseBuckets)
		cfg.Registry.DeclareHistogram(RegSchedLat, gcPauseBuckets)
	}
	return s
}

// Start launches the sampling goroutine. Idempotent.
func (s *Sampler) Start() {
	s.mu.Lock()
	if s.started || s.stopped {
		s.mu.Unlock()
		return
	}
	s.started = true
	s.mu.Unlock()
	go func() {
		defer close(s.done)
		t := time.NewTicker(s.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-s.stop:
				return
			case <-t.C:
				s.sampleOnce()
			}
		}
	}()
}

// Stop halts the sampling goroutine, then takes one final synchronous
// sample so the trace carries the end-of-run runtime state. Safe to call
// more than once; only the first call samples.
func (s *Sampler) Stop() {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return
	}
	s.stopped = true
	started := s.started
	s.mu.Unlock()
	if started {
		close(s.stop)
		<-s.done
	}
	s.sampleOnce()
}

// Summary returns the run-level digest accumulated so far (a copy).
func (s *Sampler) Summary() Summary {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sum
}

// sampleOnce reads the metric batch and publishes one sample. Called
// from the ticker goroutine and once more from Stop after it has joined,
// so publications are never concurrent with each other.
func (s *Sampler) sampleOnce() {
	if len(s.batch) == 0 {
		return
	}
	metrics.Read(s.batch)

	s.mu.Lock()
	goroutines := s.uint64At(metGoroutines)
	heapLive := s.uint64At(metHeapLive)
	heapInuse := s.uint64At(metHeapInuse)
	heapGoal := s.uint64At(metHeapGoal)
	gcTotal := s.uint64At(metGCCycles)
	allocs := s.uint64At(metHeapAllocs)
	pauseMax, pauseObs := s.histDelta(metGCPauses, &s.prevPause)
	latMax, _ := s.histDelta(metSchedLat, &s.prevLat)

	if !s.haveBase {
		s.haveBase = true
		s.baseAlloc = allocs
		s.baseGC = gcTotal
	}
	gcCycles := gcTotal - s.baseGC
	allocDelta := allocs - s.baseAlloc

	s.sum.Samples++
	s.sum.PeakGoroutines = max64(s.sum.PeakGoroutines, goroutines)
	s.sum.PeakHeapLiveBytes = max64(s.sum.PeakHeapLiveBytes, heapLive)
	s.sum.PeakHeapInuseBytes = max64(s.sum.PeakHeapInuseBytes, heapInuse)
	s.sum.HeapGoalBytes = heapGoal
	s.sum.GCCycles = gcCycles
	if pauseMax > s.sum.MaxGCPauseSeconds {
		s.sum.MaxGCPauseSeconds = pauseMax
	}
	if latMax > s.sum.MaxSchedLatSeconds {
		s.sum.MaxSchedLatSeconds = latMax
	}
	s.sum.AllocBytes = allocDelta
	s.mu.Unlock()

	if r := s.cfg.Registry; r != nil {
		r.SetGauge(RegGoroutines, float64(goroutines))
		r.SetGauge(RegHeapLive, float64(heapLive))
		r.SetGauge(RegHeapInuse, float64(heapInuse))
		r.SetGauge(RegHeapGoal, float64(heapGoal))
		r.SetGauge(RegGCCycles, float64(gcCycles))
		for _, p := range pauseObs {
			r.Observe(RegGCPause, p)
		}
		if latMax > 0 {
			r.Observe(RegSchedLat, latMax)
		}
	}

	if tr := s.cfg.Tracer; tr != nil && tr.Enabled() {
		ts := tr.Now()
		tr.Instant(trace.RuntimeTrack, trace.CatRuntime, SampleEventName, ts,
			trace.Arg{Key: ArgGoroutines, Val: float64(goroutines)},
			trace.Arg{Key: ArgHeapLive, Val: float64(heapLive)},
			trace.Arg{Key: ArgHeapInuse, Val: float64(heapInuse)},
			trace.Arg{Key: ArgHeapGoal, Val: float64(heapGoal)},
			trace.Arg{Key: ArgGCCycles, Val: float64(gcCycles)},
			trace.Arg{Key: ArgGCPause, Val: pauseMax},
			trace.Arg{Key: ArgSchedLat, Val: latMax})
		tr.Counter(trace.RuntimeTrack, RegGoroutines, ts, float64(goroutines))
		tr.Counter(trace.RuntimeTrack, RegHeapInuse, ts, float64(heapInuse))
		tr.Counter(trace.RuntimeTrack, RegGCCycles, ts, float64(gcCycles))
	}
}

// uint64At reads one scalar metric from the batch; callers hold s.mu.
func (s *Sampler) uint64At(name string) int64 {
	i, ok := s.idx[name]
	if !ok {
		return 0
	}
	switch v := s.batch[i].Value; v.Kind() {
	case metrics.KindUint64:
		return int64(v.Uint64())
	case metrics.KindFloat64:
		return int64(v.Float64())
	}
	return 0
}

// histDelta diffs a float64-histogram metric against its previous counts,
// returning the largest bucket edge that gained samples this tick and up
// to a handful of representative observations (one per grown bucket, at
// the bucket's upper edge) for the registry histogram. Callers hold s.mu.
func (s *Sampler) histDelta(name string, prev *[]uint64) (maxEdge float64, obs []float64) {
	i, ok := s.idx[name]
	if !ok {
		return 0, nil
	}
	v := s.batch[i].Value
	if v.Kind() != metrics.KindFloat64Histogram {
		return 0, nil
	}
	h := v.Float64Histogram()
	if h == nil {
		return 0, nil
	}
	counts, edges := h.Counts, h.Buckets // len(edges) == len(counts)+1
	if len(*prev) != len(counts) {
		*prev = make([]uint64, len(counts))
		copy(*prev, counts)
		return 0, nil
	}
	for b := range counts {
		if counts[b] <= (*prev)[b] {
			continue
		}
		// Represent the bucket by a finite edge: the upper edge normally,
		// the lower one for the +Inf tail bucket.
		edge := edges[b+1]
		if edge > 1e18 || edge != edge {
			edge = edges[b]
		}
		if edge < 0 {
			edge = 0
		}
		if edge > maxEdge {
			maxEdge = edge
		}
		obs = append(obs, edge)
	}
	copy(*prev, counts)
	return maxEdge, obs
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
