// Baseline process stats — the dependency-free equivalent of Prometheus'
// GoCollector/ProcessCollector pair. CollectBaseline refreshes a fixed
// set of go/* and process/* gauges on the run registry; the session wires
// it both as the /metrics scrape hook (so every scrape carries current
// values even when the periodic sampler is off) and once at Finish (so
// the archived counters.json always has a final reading).

package runtimeobs

import (
	"os"
	"runtime"
	"strconv"
	"strings"

	"senkf/internal/trace"
)

// Registry names of the baseline gauges.
const (
	RegGoGoroutines  = "go/goroutines"
	RegGoThreads     = "go/threads"
	RegGoHeapAlloc   = "go/heap_alloc_bytes"
	RegGoHeapInuse   = "go/heap_inuse_bytes"
	RegGoTotalAlloc  = "go/alloc_bytes_total"
	RegGoGCCycles    = "go/gc_cycles_total"
	RegGoGCPauseTot  = "go/gc_pause_seconds_total"
	RegProcCPU       = "process/cpu_seconds_total"
	RegProcRSS       = "process/resident_memory_bytes"
	RegProcVSize     = "process/virtual_memory_bytes"
)

// CollectBaseline refreshes the baseline runtime gauges on reg. Nil-safe.
// The go/* gauges always update; the process/* gauges update only when
// /proc/self/stat is readable and parses (Linux), so non-procfs platforms
// simply omit them.
func CollectBaseline(reg *trace.Registry) {
	if reg == nil {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	reg.SetGauge(RegGoGoroutines, float64(runtime.NumGoroutine()))
	nThreads, _ := runtime.ThreadCreateProfile(nil)
	reg.SetGauge(RegGoThreads, float64(nThreads))
	reg.SetGauge(RegGoHeapAlloc, float64(ms.HeapAlloc))
	reg.SetGauge(RegGoHeapInuse, float64(ms.HeapInuse))
	reg.SetGauge(RegGoTotalAlloc, float64(ms.TotalAlloc))
	reg.SetGauge(RegGoGCCycles, float64(ms.NumGC))
	reg.SetGauge(RegGoGCPauseTot, float64(ms.PauseTotalNs)/1e9)

	if cpu, rss, vsize, ok := procSelfStat(); ok {
		reg.SetGauge(RegProcCPU, cpu)
		reg.SetGauge(RegProcRSS, rss)
		reg.SetGauge(RegProcVSize, vsize)
	}
}

// procSelfStat parses /proc/self/stat for utime+stime (USER_HZ ticks),
// vsize (bytes) and rss (pages). Returns ok=false anywhere it cannot.
func procSelfStat() (cpuSeconds, rssBytes, vsizeBytes float64, ok bool) {
	data, err := os.ReadFile("/proc/self/stat")
	if err != nil {
		return 0, 0, 0, false
	}
	// Field 2 (comm) may contain spaces; everything after its closing
	// paren is space-separated. utime/stime are fields 14/15, vsize 23,
	// rss 24 (1-based), i.e. indices 11/12/20/21 after the paren.
	s := string(data)
	i := strings.LastIndexByte(s, ')')
	if i < 0 {
		return 0, 0, 0, false
	}
	fields := strings.Fields(s[i+1:])
	if len(fields) < 22 {
		return 0, 0, 0, false
	}
	utime, err1 := strconv.ParseFloat(fields[11], 64)
	stime, err2 := strconv.ParseFloat(fields[12], 64)
	vsize, err3 := strconv.ParseFloat(fields[20], 64)
	rss, err4 := strconv.ParseFloat(fields[21], 64)
	if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
		return 0, 0, 0, false
	}
	const userHZ = 100 // Linux fixes USER_HZ at 100 for userspace ABI
	return (utime + stime) / userHZ, rss * float64(os.Getpagesize()), vsize, true
}
