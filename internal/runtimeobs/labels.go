// Package runtimeobs is the runtime observability layer under the logical
// one: where internal/trace and internal/monitor see the *schedule* (spans,
// releases, budgets), this package sees the *substrate cost* of executing
// it — CPU self-time, allocation pressure, GC pauses and scheduler health —
// and ties both views together through a shared coordinate system.
//
// Three pieces:
//
//   - pprof label propagation (this file): every goroutine executing plan
//     work — real ranks in core.ExecutePlan, simulated processes in
//     internal/sim, the cycle loop — runs under pprof.Do with labels
//     {run_id, algo, substrate, proc, stage} derived from the same stable
//     proc names the plan layer mints, so CPU profiles slice by plan
//     coordinates (`go tool pprof -tagfocus stage=3`);
//   - a runtime-metrics sampler (sampler.go): runtime/metrics readings
//     streamed into the trace event stream (CatRuntime instants + counter
//     series) and the counter registry on a configurable cadence;
//   - hot-stage attribution (attr.go + pprofproto.go): labeled CPU
//     profiles parsed back into per-(class, stage) self-time and
//     cross-checked against trace busy time.
//
// The package sits below the plan layer: it imports only the standard
// library and internal/trace, never a substrate or an upper layer, so
// plan, monitor, report and runlog can all build on it. CI enforces the
// layering (scripts/check-layering.sh).
//
// Known limitation: Go records pprof labels on CPU (and goroutine)
// profiles only — heap profiles carry no labels, so heap attribution
// comes from the sampler's time series, not from per-stage heap slices.
package runtimeobs

import (
	"context"
	"runtime/pprof"
	"strconv"
	"strings"
)

// Label keys of the plan-coordinate taxonomy. LabelRunID/LabelAlgo/
// LabelSubstrate identify the run, LabelProc the plan-minted processor
// name ("io/g0/r1", "comp/x0y1", "cycle", an OST, ...), LabelStage the
// plan stage index the goroutine is executing.
const (
	LabelRunID     = "run_id"
	LabelAlgo      = "algo"
	LabelSubstrate = "substrate"
	LabelProc      = "proc"
	LabelStage     = "stage"
)

// LabelSet carries one run's base pprof labels. A nil *LabelSet is the
// disabled fast path: every method is a nil-receiver no-op that runs the
// given function unlabeled, so unprofiled runs pay only a pointer check.
type LabelSet struct {
	base context.Context
}

// Labels builds the run's label set: {run_id, algo, substrate}.
func Labels(runID, algo, substrate string) *LabelSet {
	return &LabelSet{base: pprof.WithLabels(context.Background(),
		pprof.Labels(LabelRunID, runID, LabelAlgo, algo, LabelSubstrate, substrate))}
}

// Scope returns the per-processor label scope: the run labels plus
// {proc}. Nil-safe; a nil LabelSet yields a nil (no-op) Scope.
func (l *LabelSet) Scope(proc string) *Scope {
	if l == nil {
		return nil
	}
	return &Scope{ctx: pprof.WithLabels(l.base, pprof.Labels(LabelProc, proc))}
}

// SpawnWrapper adapts the label set to the simulated substrate's process
// spawn hook (sim.Env.SetSpawnWrapper): every simulated process body runs
// under its proc-name scope, and goroutines it spawns inherit the labels.
// Returns nil on a nil LabelSet, which the spawn hook treats as disabled.
func (l *LabelSet) SpawnWrapper() func(name string, fn func()) func() {
	if l == nil {
		return nil
	}
	return func(name string, fn func()) func() {
		sc := l.Scope(name)
		return func() { _ = sc.Do(func() error { fn(); return nil }) }
	}
}

// Scope is one processor's label context. Nil is the disabled no-op.
type Scope struct {
	ctx context.Context
}

// Do runs fn with the scope's labels set on the current goroutine (and
// inherited by goroutines fn spawns), returning fn's error.
func (s *Scope) Do(fn func() error) error {
	if s == nil {
		return fn()
	}
	var err error
	pprof.Do(s.ctx, pprof.Labels(), func(context.Context) { err = fn() })
	return err
}

// Stage runs fn with the scope's labels plus {stage: <stage>}. A negative
// stage (unstaged work) runs under the scope labels alone.
func (s *Scope) Stage(stage int, fn func() error) error {
	if s == nil {
		return fn()
	}
	if stage < 0 {
		return s.Do(fn)
	}
	var err error
	pprof.Do(s.ctx, pprof.Labels(LabelStage, strconv.Itoa(stage)), func(context.Context) { err = fn() })
	return err
}

// ClassOf reduces a proc name to its class: the prefix before the first
// "/" ("io", "comp", "ost", "cycle", ...). The attribution tables group
// by class so 12,000 procs collapse to a handful of rows.
func ClassOf(proc string) string {
	if i := strings.IndexByte(proc, '/'); i >= 0 {
		return proc[:i]
	}
	return proc
}
