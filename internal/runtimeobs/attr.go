// Hot-stage attribution: join the two cost views of one run. The labeled
// CPU profile says where the process burned cycles, keyed by the
// {proc, stage} pprof labels; the trace says where the schedule spent
// wall-clock busy time, keyed by track and the "stage" span arg. Grouping
// both by (proc class, stage) and comparing the shares cross-checks the
// instrumentation: a stage whose CPU share is far from its busy share is
// either I/O-bound (busy ≫ CPU — waiting on the file system inside a
// "read" span) or hiding unattributed work (CPU ≫ busy — cycles burned
// outside any plan span).

package runtimeobs

import (
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"

	"senkf/internal/trace"
)

// StageCost is one (processor class, stage) row of the attribution:
// profile CPU self-time next to trace busy time, each with its share of
// the run's labeled/busy total. Stage -1 collects unstaged work (the
// single-stage schedules, span setup, per-proc bookkeeping).
type StageCost struct {
	Class       string  `json:"class"`
	Stage       int     `json:"stage"`
	CPUSeconds  float64 `json:"cpu_seconds"`
	CPUShare    float64 `json:"cpu_share"`
	BusySeconds float64 `json:"busy_seconds"`
	BusyShare   float64 `json:"busy_share"`
}

// Attribution is the merged ranking. MaxShareError is the largest
// |CPUShare - BusyShare| across rows that carry both views — the
// quantity the acceptance test bounds on a deterministic CPU-heavy
// workload.
type Attribution struct {
	TotalCPUSeconds   float64     `json:"total_cpu_seconds"`
	LabeledCPUSeconds float64     `json:"labeled_cpu_seconds"`
	TotalBusySeconds  float64     `json:"total_busy_seconds"`
	Stages            []StageCost `json:"stages"`
	MaxShareError     float64     `json:"max_share_error"`
}

// LabeledFraction is the share of profile CPU time carrying a proc label
// — how much of the process the plan coordinates explain.
func (a *Attribution) LabeledFraction() float64 {
	if a.TotalCPUSeconds <= 0 {
		return 0
	}
	return a.LabeledCPUSeconds / a.TotalCPUSeconds
}

// WriteTable renders the ranked hot-stage table: per-{class, stage} CPU
// self-time next to trace busy time, the unlabeled remainder, and the
// labeled-fraction / max-share-error footer. Both the run report and
// senkf-report hotspots print this shape.
func (a *Attribution) WriteTable(w io.Writer) error {
	p := func(format string, args ...any) error {
		_, err := fmt.Fprintf(w, format, args...)
		return err
	}
	if err := p("hot stages (CPU profile self-time vs trace busy time):\n"); err != nil {
		return err
	}
	if err := p("  %-8s %-5s %10s %7s %10s %7s\n",
		"class", "stage", "cpu", "share", "busy", "share"); err != nil {
		return err
	}
	for _, s := range a.Stages {
		stage := strconv.Itoa(s.Stage)
		if s.Stage < 0 {
			stage = "-"
		}
		if err := p("  %-8s %-5s %9.4gs %6.1f%% %9.4gs %6.1f%%\n",
			s.Class, stage, s.CPUSeconds, 100*s.CPUShare, s.BusySeconds, 100*s.BusyShare); err != nil {
			return err
		}
	}
	if a.TotalCPUSeconds > 0 {
		unlabeled := a.TotalCPUSeconds - a.LabeledCPUSeconds
		if err := p("  %-8s %-5s %9.4gs %6.1f%%\n",
			"(other)", "-", unlabeled, 100*unlabeled/a.TotalCPUSeconds); err != nil {
			return err
		}
	}
	return p("  labeled fraction %.1f%% of %.4gs CPU; max share error vs trace %.1f%%\n",
		100*a.LabeledFraction(), a.TotalCPUSeconds, 100*a.MaxShareError)
}

type stageKey struct {
	class string
	stage int
}

// Attribute merges a parsed CPU profile with a run's trace events into
// the ranked hot-stage table. The profile must carry a cpu/nanoseconds
// column (or samples/count with a known period); events may be empty, in
// which case only the CPU side is populated.
func Attribute(p *Profile, events []trace.Event) (*Attribution, error) {
	cpuIdx := p.ValueIndex("cpu")
	sampIdx := p.ValueIndex("samples")
	if cpuIdx < 0 && (sampIdx < 0 || p.PeriodNanos <= 0) {
		return nil, errors.New("runtimeobs: profile has no cpu time column")
	}
	cpuOf := func(s Sample) float64 {
		if cpuIdx >= 0 && cpuIdx < len(s.Values) {
			return float64(s.Values[cpuIdx]) / 1e9
		}
		if sampIdx >= 0 && sampIdx < len(s.Values) {
			return float64(s.Values[sampIdx]) * float64(p.PeriodNanos) / 1e9
		}
		return 0
	}

	attr := &Attribution{}
	rows := map[stageKey]*StageCost{}
	row := func(k stageKey) *StageCost {
		r := rows[k]
		if r == nil {
			r = &StageCost{Class: k.class, Stage: k.stage}
			rows[k] = r
		}
		return r
	}

	for _, s := range p.Samples {
		cpu := cpuOf(s)
		attr.TotalCPUSeconds += cpu
		proc, ok := s.Labels[LabelProc]
		if !ok || cpu == 0 {
			continue
		}
		attr.LabeledCPUSeconds += cpu
		stage := -1
		if sl, ok := s.Labels[LabelStage]; ok {
			if v, err := strconv.Atoi(sl); err == nil {
				stage = v
			}
		}
		row(stageKey{class: ClassOf(proc), stage: stage}).CPUSeconds += cpu
	}

	for _, ev := range events {
		if ev.Ph != trace.PhaseSpan || ev.Cat != trace.CatPhase || ev.Dur <= 0 {
			continue
		}
		if ev.Name == "wait" { // waiting is not busy time
			continue
		}
		stage := -1
		if v, ok := ev.ArgValue(trace.ArgStage); ok {
			stage = int(v)
		}
		r := row(stageKey{class: ClassOf(ev.Track), stage: stage})
		r.BusySeconds += ev.Dur
		attr.TotalBusySeconds += ev.Dur
	}

	for _, r := range rows {
		if attr.LabeledCPUSeconds > 0 {
			r.CPUShare = r.CPUSeconds / attr.LabeledCPUSeconds
		}
		if attr.TotalBusySeconds > 0 {
			r.BusyShare = r.BusySeconds / attr.TotalBusySeconds
		}
		if r.CPUSeconds > 0 && r.BusySeconds > 0 {
			if d := math.Abs(r.CPUShare - r.BusyShare); d > attr.MaxShareError {
				attr.MaxShareError = d
			}
		}
		attr.Stages = append(attr.Stages, *r)
	}
	sort.Slice(attr.Stages, func(i, j int) bool {
		a, b := attr.Stages[i], attr.Stages[j]
		if a.CPUSeconds != b.CPUSeconds {
			return a.CPUSeconds > b.CPUSeconds
		}
		if a.BusySeconds != b.BusySeconds {
			return a.BusySeconds > b.BusySeconds
		}
		if a.Class != b.Class {
			return a.Class < b.Class
		}
		return a.Stage < b.Stage
	})
	return attr, nil
}

// ProfileStages returns the sorted distinct stage indices the profile's
// labeled samples carry — what the CI smoke job asserts covers every
// plan stage kind.
func ProfileStages(p *Profile) []int {
	seen := map[int]bool{}
	for _, s := range p.Samples {
		sl, ok := s.Labels[LabelStage]
		if !ok {
			continue
		}
		if v, err := strconv.Atoi(sl); err == nil {
			seen[v] = true
		}
	}
	out := make([]int, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

func sortedKeys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
