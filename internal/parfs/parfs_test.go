package parfs

import (
	"fmt"
	"math"
	"testing"

	"senkf/internal/sim"
	"senkf/internal/trace"
)

func simpleConfig() Config {
	return Config{
		OSTs:              4,
		ConcurrencyPerOST: 1,
		SeekTime:          0.001,
		ByteTime:          1e-6,
		BackboneStreams:   0,
	}
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{OSTs: 0, ConcurrencyPerOST: 1}).Validate(); err == nil {
		t.Error("expected OST error")
	}
	if err := (Config{OSTs: 1, ConcurrencyPerOST: 0}).Validate(); err == nil {
		t.Error("expected concurrency error")
	}
	if err := (Config{OSTs: 1, ConcurrencyPerOST: 1, SeekTime: -1}).Validate(); err == nil {
		t.Error("expected seek-time error")
	}
	if err := (Config{OSTs: 1, ConcurrencyPerOST: 1, BackboneStreams: -1}).Validate(); err == nil {
		t.Error("expected backbone error")
	}
	if err := DefaultConfig.Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func TestSingleReadServiceTime(t *testing.T) {
	env := sim.NewEnv()
	fs, err := New(env, simpleConfig())
	if err != nil {
		t.Fatal(err)
	}
	var took float64
	env.Go("r", func(p *sim.Proc) {
		took = fs.Read(p, 0, 3, 1000)
	})
	if _, err := env.Run(); err != nil {
		t.Fatal(err)
	}
	want := 3*0.001 + 1000*1e-6
	if math.Abs(took-want) > 1e-12 {
		t.Errorf("read took %g, want %g", took, want)
	}
	s := fs.Stats()
	if s.Requests != 1 || s.Seeks != 3 || s.BytesRead != 1000 {
		t.Errorf("stats %+v", s)
	}
	if s.WaitTime != 0 {
		t.Errorf("uncontended read waited %g", s.WaitTime)
	}
}

func TestSameOSTSerializes(t *testing.T) {
	env := sim.NewEnv()
	fs, err := New(env, simpleConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Two readers of the same file (same OST, concurrency 1) serialize.
	for i := 0; i < 2; i++ {
		env.Go("r", func(p *sim.Proc) {
			fs.Read(p, 0, 0, 1000)
		})
	}
	end, err := env.Run()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(end-2e-3) > 1e-12 {
		t.Errorf("two serialized reads ended at %g, want 0.002", end)
	}
	if fs.Stats().WaitTime <= 0 {
		t.Error("expected queueing wait time")
	}
}

func TestDifferentOSTsRunInParallel(t *testing.T) {
	env := sim.NewEnv()
	fs, err := New(env, simpleConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Files 0 and 1 live on different OSTs; reads overlap fully.
	for i := 0; i < 2; i++ {
		file := i
		env.Go("r", func(p *sim.Proc) {
			fs.Read(p, file, 0, 1000)
		})
	}
	end, err := env.Run()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(end-1e-3) > 1e-12 {
		t.Errorf("parallel reads ended at %g, want 0.001", end)
	}
}

func TestOSTPlacementRoundRobin(t *testing.T) {
	env := sim.NewEnv()
	fs, err := New(env, simpleConfig())
	if err != nil {
		t.Fatal(err)
	}
	if fs.OSTOf(0) != 0 || fs.OSTOf(1) != 1 || fs.OSTOf(4) != 0 || fs.OSTOf(7) != 3 {
		t.Error("round-robin placement wrong")
	}
	if fs.OSTOf(-3) != 3 {
		t.Error("negative file ids should still map")
	}
}

func TestBackboneCapsAggregateParallelism(t *testing.T) {
	cfg := simpleConfig()
	cfg.OSTs = 8
	cfg.BackboneStreams = 2
	env := sim.NewEnv()
	fs, err := New(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 8 reads on 8 distinct OSTs, but the backbone only sustains 2 at a
	// time: 8 unit reads take 4 units.
	for i := 0; i < 8; i++ {
		file := i
		env.Go("r", func(p *sim.Proc) {
			fs.Read(p, file, 0, 1000)
		})
	}
	end, err := env.Run()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(end-4e-3) > 1e-12 {
		t.Errorf("backbone-limited reads ended at %g, want 0.004", end)
	}
}

func TestPerOSTConcurrency(t *testing.T) {
	cfg := simpleConfig()
	cfg.ConcurrencyPerOST = 3
	env := sim.NewEnv()
	fs, err := New(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 6 readers of one OST at concurrency 3: two waves.
	for i := 0; i < 6; i++ {
		env.Go("r", func(p *sim.Proc) {
			fs.Read(p, 4, 0, 1000) // file 4 -> OST 0
		})
	}
	end, err := env.Run()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(end-2e-3) > 1e-12 {
		t.Errorf("ended at %g, want 0.002", end)
	}
}

func TestSeekDominatedBlockReadVsBarRead(t *testing.T) {
	// The §4.1 asymmetry at file-system level: a block read with one seek
	// per row is far slower than a bar read moving the same bytes.
	cfg := simpleConfig()
	env := sim.NewEnv()
	fs, err := New(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var blockTime, barTime float64
	env.Go("block", func(p *sim.Proc) {
		blockTime = fs.Read(p, 0, 180, 1e4) // 180 row seeks
	})
	env.Go("bar", func(p *sim.Proc) {
		barTime = fs.Read(p, 1, 1, 1e4) // single seek
	})
	if _, err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if !(blockTime > 5*barTime) {
		t.Errorf("block read %g not much slower than bar read %g", blockTime, barTime)
	}
}

func TestInvalidReadPanics(t *testing.T) {
	env := sim.NewEnv()
	fs, err := New(env, simpleConfig())
	if err != nil {
		t.Fatal(err)
	}
	env.Go("bad", func(p *sim.Proc) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for negative seeks")
			}
		}()
		fs.Read(p, 0, -1, 10)
	})
	if _, err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	env := sim.NewEnv()
	if _, err := New(env, Config{}); err == nil {
		t.Error("expected config error")
	}
}

func TestPerOSTStatsSumToTotals(t *testing.T) {
	env := sim.NewEnv()
	fs, err := New(env, simpleConfig())
	if err != nil {
		t.Fatal(err)
	}
	for f := 0; f < 10; f++ {
		file := f
		env.Go(fmt.Sprintf("r%d", f), func(p *sim.Proc) {
			fs.Read(p, file, 2, 1000)
		})
	}
	if _, err := env.Run(); err != nil {
		t.Fatal(err)
	}
	per := fs.OSTStats()
	if len(per) != fs.Config().OSTs {
		t.Fatalf("OSTStats has %d entries, want %d", len(per), fs.Config().OSTs)
	}
	var reqs, seeks int
	var bytes float64
	for _, o := range per {
		reqs += o.Requests
		seeks += o.Seeks
		bytes += o.BytesRead
	}
	tot := fs.Stats()
	if reqs != tot.Requests || seeks != tot.Seeks || bytes != tot.BytesRead {
		t.Errorf("per-OST sums (%d,%d,%g) != totals (%d,%d,%g)",
			reqs, seeks, bytes, tot.Requests, tot.Seeks, tot.BytesRead)
	}
	// Round-robin placement: file f lands on OST f%4, so 10 files spread
	// 3/3/2/2.
	if per[0].Requests != 3 || per[2].Requests != 2 {
		t.Errorf("placement off: %+v", per)
	}
}

func TestReadEmitsServiceSpans(t *testing.T) {
	env := sim.NewEnv()
	buf := trace.NewBuffer()
	tr := trace.New(env.Now, buf)
	tr.SetCounters(trace.NewRegistry())
	env.SetTracer(tr)
	cfg := simpleConfig()
	cfg.ConcurrencyPerOST = 1
	fs, err := New(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Two readers of the same file serialize on the single-slot OST.
	for i := 0; i < 2; i++ {
		env.Go(fmt.Sprintf("r%d", i), func(p *sim.Proc) {
			fs.Read(p, 0, 1, 100)
		})
	}
	if _, err := env.Run(); err != nil {
		t.Fatal(err)
	}
	events := buf.Events()
	var services int
	var queued bool
	for _, ev := range events {
		if ev.Cat == trace.CatOST && ev.Name == "service" && ev.Track == "ost0" {
			services++
			if v, ok := ev.ArgValue("seeks"); !ok || v != 1 {
				t.Errorf("service span seeks = %v, want 1", v)
			}
		}
		if ev.Cat == trace.CatOST && ev.Name == "queued" {
			queued = true
		}
	}
	if services != 2 {
		t.Errorf("service spans = %d, want 2", services)
	}
	if !queued {
		t.Error("second reader queued but no queued instant emitted")
	}
	// The single-slot OST must never service two requests at once.
	mc := trace.MaxConcurrent(events, "ost", trace.CatOST, "service")
	if mc["ost0"] != 1 {
		t.Errorf("ost0 concurrency = %d, want 1", mc["ost0"])
	}
	reg := tr.Counters()
	if got := reg.CounterValue("parfs.seeks"); got != 2 {
		t.Errorf("parfs.seeks = %v, want 2", got)
	}
	if got := reg.CounterValue("parfs.bytes"); got != 200 {
		t.Errorf("parfs.bytes = %v, want 200", got)
	}
}
