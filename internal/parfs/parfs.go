// Package parfs models a Lustre-like parallel file system (the paper runs
// against Tianhe-2's H2FS) on top of the discrete-event engine. It captures
// exactly the mechanisms behind the paper's I/O observations:
//
//   - every file lives on one object storage target (OST); different files
//     land on different OSTs with high probability (§4.1.3), modelled by
//     round-robin placement;
//   - an OST serves a bounded number of requests concurrently; excess
//     readers queue ("processors lining up for disk resources", §3.1);
//   - a request costs one seek per disk-addressing operation plus the
//     transfer time θ per byte (Table 1);
//   - the backbone between storage and compute nodes supports a bounded
//     number of full-rate streams, so total I/O bandwidth saturates once
//     enough concurrent groups are active — the flattening of Figure 10.
package parfs

import (
	"fmt"

	"senkf/internal/faults"
	"senkf/internal/sim"
	"senkf/internal/trace"
)

// Config describes the file system geometry and service times.
type Config struct {
	OSTs              int     // number of object storage targets
	ConcurrencyPerOST int     // concurrent requests an OST serves at full rate
	SeekTime          float64 // seconds per disk-addressing operation
	ByteTime          float64 // θ: seconds per byte streamed from one OST
	BackboneStreams   int     // full-rate streams the backbone sustains (0 = unlimited)
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.OSTs <= 0 {
		return fmt.Errorf("parfs: OSTs must be positive, got %d", c.OSTs)
	}
	if c.ConcurrencyPerOST <= 0 {
		return fmt.Errorf("parfs: per-OST concurrency must be positive, got %d", c.ConcurrencyPerOST)
	}
	if c.SeekTime < 0 || c.ByteTime < 0 {
		return fmt.Errorf("parfs: negative service times (seek %g, byte %g)", c.SeekTime, c.ByteTime)
	}
	if c.BackboneStreams < 0 {
		return fmt.Errorf("parfs: negative backbone streams %d", c.BackboneStreams)
	}
	return nil
}

// DefaultConfig is calibrated so the simulated experiments reproduce the
// paper's qualitative I/O behaviour: 8 OSTs at 2 GB/s each, 2 concurrent
// requests per OST at full rate (one file lives on one OST, so a single
// reading group cannot exhaust the system — the premise of the concurrent
// access approach), 30 µs addressing operations, and a backbone that
// sustains 12 full-rate streams (Figure 10 flattens at n_cg ≈ 4–6).
var DefaultConfig = Config{
	OSTs:              8,
	ConcurrencyPerOST: 2,
	SeekTime:          3e-5,
	ByteTime:          0.5e-9,
	BackboneStreams:   12,
}

// Stats accumulates file-system-wide accounting.
type Stats struct {
	Requests    int
	Seeks       int
	BytesRead   float64
	WaitTime    float64 // time spent queueing for OST or backbone capacity
	ServiceTime float64 // time spent actually seeking and streaming
	// Fault accounting (zero without an injected fault plan):
	OutageStalls  int     // reads that hit an OST outage window
	OutageTime    float64 // time spent stalled in outage windows
	DegradedReads int     // reads served at degraded bandwidth
}

// OSTStats is the per-storage-target slice of the accounting.
type OSTStats struct {
	Requests  int
	Seeks     int
	BytesRead float64
}

// ReadObserver receives one callback per completed read, attributing it to
// its storage target: the OST index, the payload bytes, the read's start
// time on the simulated clock, the time spent waiting (OST queue + backbone
// throttle + outage stalls), the service time actually spent seeking and
// streaming, and whether a degraded-bandwidth or outage fault window was
// hit. The wire-telemetry collector (internal/wire) implements this shape;
// parfs declares its own interface so the plan layer never depends on a
// substrate package.
type ReadObserver interface {
	OnRead(ost int, bytes float64, start, wait, service float64, degraded, outage bool)
}

// FS is a simulated parallel file system.
type FS struct {
	cfg      Config
	env      *sim.Env
	osts     []*sim.Resource
	backbone *sim.Resource
	stats    Stats
	perOST   []OSTStats
	faults   *faults.Plan
	readObs  ReadObserver
}

// New creates a file system inside env.
func New(env *sim.Env, cfg Config) (*FS, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	fs := &FS{cfg: cfg, env: env, perOST: make([]OSTStats, cfg.OSTs)}
	fs.osts = make([]*sim.Resource, cfg.OSTs)
	for i := range fs.osts {
		fs.osts[i] = sim.NewResource(env, fmt.Sprintf("ost%d", i), cfg.ConcurrencyPerOST)
	}
	if cfg.BackboneStreams > 0 {
		fs.backbone = sim.NewResource(env, "backbone", cfg.BackboneStreams)
	}
	return fs, nil
}

// Config returns the file system configuration.
func (fs *FS) Config() Config { return fs.cfg }

// SetReadObserver installs the per-read OST-attribution observer. A nil
// observer (the default) changes nothing.
func (fs *FS) SetReadObserver(obs ReadObserver) { fs.readObs = obs }

// SetFaults installs a fault plan: reads hitting an OST inside an outage
// window stall (holding their OST slot — requests pile up server-side, as
// on a real file system) until the window closes; reads inside a degraded
// window have their service time multiplied by the window factor. A nil
// plan (the default) changes nothing.
func (fs *FS) SetFaults(pl *faults.Plan) { fs.faults = pl }

// OSTOf returns the storage target holding the given file, mirroring the
// paper's observation that distinct files are likely on distinct disks.
func (fs *FS) OSTOf(file int) int {
	if file < 0 {
		file = -file
	}
	return file % fs.cfg.OSTs
}

// Read performs a read of the given file consisting of `seeks` addressing
// operations and `bytes` payload bytes, blocking the calling process for
// queueing plus service time. It returns the total time spent.
func (fs *FS) Read(p *sim.Proc, file, seeks int, bytes float64) float64 {
	if seeks < 0 || bytes < 0 {
		panic(fmt.Sprintf("parfs: invalid read (seeks=%d bytes=%g)", seeks, bytes))
	}
	start := p.Now()
	// Queue at the storage target first; a reader waiting for a busy OST
	// must not hold a backbone stream (head-of-line blocking would collapse
	// aggregate bandwidth, which real parallel file systems avoid by
	// queueing requests server-side).
	osti := fs.OSTOf(file)
	ost := fs.osts[osti]
	ost.Acquire(p)
	tr := fs.env.Tracer()
	if tr.Enabled() && p.Now() > start {
		// The reader queued for OST capacity before service began.
		tr.Instant(ost.Name, trace.CatOST, "queued", start,
			trace.Arg{Key: "wait", Val: p.Now() - start})
	}
	if fs.backbone != nil {
		tb := p.Now()
		fs.backbone.Acquire(p)
		if tr.Enabled() && p.Now() > tb {
			// Backbone saturation: aggregate bandwidth is the limiter, not
			// the OST — the throttling regime of Figure 10.
			tr.Instant("backbone", trace.CatOST, "throttled", tb,
				trace.Arg{Key: "wait", Val: p.Now() - tb})
		}
	}
	waited := p.Now() - start
	service := float64(seeks)*fs.cfg.SeekTime + bytes*fs.cfg.ByteTime
	var stalled float64
	var degraded, outage bool
	// Fault windows: stall through outages (re-checking, since windows may
	// abut), then apply any degraded-bandwidth factor active at service time.
	for {
		w, ok := fs.faults.WindowAt(osti, p.Now())
		if !ok {
			break
		}
		if w.Factor == 0 {
			stall := w.End - p.Now()
			if tr.Enabled() {
				tr.Instant(ost.Name, trace.CatFault, "outage", p.Now(),
					trace.Arg{Key: "stall", Val: stall})
			}
			if reg := tr.Counters(); reg != nil {
				reg.Inc("faults.ost.outages")
			}
			fs.stats.OutageStalls++
			fs.stats.OutageTime += stall
			outage = true
			stalled += stall
			p.Sleep(stall)
			continue
		}
		if tr.Enabled() {
			tr.Instant(ost.Name, trace.CatFault, "degraded", p.Now(),
				trace.Arg{Key: "factor", Val: w.Factor})
		}
		if reg := tr.Counters(); reg != nil {
			reg.Inc("faults.ost.degraded")
		}
		fs.stats.DegradedReads++
		degraded = true
		service *= w.Factor
		break
	}
	tServ := p.Now()
	p.Sleep(service)
	if tr.Enabled() {
		tr.Span(ost.Name, trace.CatOST, "service", tServ, p.Now(),
			trace.Arg{Key: "seeks", Val: float64(seeks)},
			trace.Arg{Key: "bytes", Val: bytes})
	}
	if fs.backbone != nil {
		fs.backbone.Release()
	}
	ost.Release()
	fs.stats.Requests++
	fs.stats.Seeks += seeks
	fs.stats.BytesRead += bytes
	fs.stats.WaitTime += waited
	fs.stats.ServiceTime += service
	fs.perOST[osti].Requests++
	fs.perOST[osti].Seeks += seeks
	fs.perOST[osti].BytesRead += bytes
	if reg := tr.Counters(); reg != nil {
		reg.Inc("parfs.requests")
		reg.Add("parfs.seeks", float64(seeks))
		reg.Add("parfs.bytes", bytes)
		reg.Observe("parfs.wait", waited)
		reg.Observe("parfs.service", service)
	}
	if fs.readObs != nil {
		fs.readObs.OnRead(osti, bytes, start, waited+stalled, service, degraded, outage)
	}
	return p.Now() - start
}

// Stats returns the accumulated accounting.
func (fs *FS) Stats() Stats { return fs.stats }

// OSTStats returns a copy of the per-storage-target accounting, indexed by
// OST number. Summed over OSTs it equals the request/seek/byte totals of
// Stats.
func (fs *FS) OSTStats() []OSTStats {
	return append([]OSTStats(nil), fs.perOST...)
}
