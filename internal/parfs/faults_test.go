package parfs

import (
	"math"
	"testing"

	"senkf/internal/faults"
	"senkf/internal/sim"
)

func faultFSConfig() Config {
	return Config{OSTs: 4, ConcurrencyPerOST: 2, SeekTime: 0.01, ByteTime: 1e-6}
}

func TestOutageWindowStallsReads(t *testing.T) {
	env := sim.NewEnv()
	fs, err := New(env, faultFSConfig())
	if err != nil {
		t.Fatal(err)
	}
	fs.SetFaults(&faults.Plan{OSTWindows: []faults.OSTWindow{
		{OST: 1, Start: 0, End: 2, Factor: 0},
	}})
	var hitDur, cleanDur float64
	env.Go("reader-hit", func(p *sim.Proc) {
		hitDur = fs.Read(p, 1, 1, 0) // file 1 -> OST 1: stalled until t=2
	})
	env.Go("reader-clean", func(p *sim.Proc) {
		cleanDur = fs.Read(p, 2, 1, 0) // file 2 -> OST 2: unaffected
	})
	if _, err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if want := 2 + 0.01; math.Abs(hitDur-want) > 1e-12 {
		t.Errorf("outage read took %g, want %g", hitDur, want)
	}
	if want := 0.01; math.Abs(cleanDur-want) > 1e-12 {
		t.Errorf("clean read took %g, want %g", cleanDur, want)
	}
	st := fs.Stats()
	if st.OutageStalls != 1 || st.OutageTime <= 0 {
		t.Errorf("outage accounting: %+v", st)
	}
}

func TestDegradedWindowMultipliesService(t *testing.T) {
	env := sim.NewEnv()
	fs, err := New(env, faultFSConfig())
	if err != nil {
		t.Fatal(err)
	}
	fs.SetFaults(&faults.Plan{OSTWindows: []faults.OSTWindow{
		{OST: 0, Start: 0, End: 100, Factor: 4},
	}})
	var dur float64
	env.Go("reader", func(p *sim.Proc) {
		dur = fs.Read(p, 0, 1, 0)
	})
	if _, err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if want := 4 * 0.01; math.Abs(dur-want) > 1e-12 {
		t.Errorf("degraded read took %g, want %g", dur, want)
	}
	if fs.Stats().DegradedReads != 1 {
		t.Errorf("degraded accounting: %+v", fs.Stats())
	}
}

func TestReadAfterWindowUnaffected(t *testing.T) {
	env := sim.NewEnv()
	fs, err := New(env, faultFSConfig())
	if err != nil {
		t.Fatal(err)
	}
	fs.SetFaults(&faults.Plan{OSTWindows: []faults.OSTWindow{
		{OST: 0, Start: 0, End: 1, Factor: 0},
	}})
	var dur float64
	env.Go("reader", func(p *sim.Proc) {
		p.Sleep(5) // window long gone
		dur = fs.Read(p, 0, 1, 0)
	})
	if _, err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if want := 0.01; math.Abs(dur-want) > 1e-12 {
		t.Errorf("post-window read took %g, want %g", dur, want)
	}
	if st := fs.Stats(); st.OutageStalls != 0 || st.DegradedReads != 0 {
		t.Errorf("post-window fault accounting: %+v", st)
	}
}
