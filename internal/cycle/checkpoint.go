package cycle

import (
	"encoding/json"
	"fmt"
	"sync"

	"senkf/internal/ckpt"
	"senkf/internal/grid"
)

// Checkpointer cuts crash-consistent checkpoints of a cycled experiment
// through the per-cycle Hook. Every cycle's post-analysis state is held as
// the pending snapshot; every Every cycles (default 1) it is written to Dir
// via ckpt.Write and old checkpoints are pruned to the newest Keep (0 keeps
// all). Flush writes the pending snapshot immediately — the graceful-
// shutdown path, so an interrupted run loses at most the in-flight cycle.
type Checkpointer struct {
	Dir      string
	Every    int
	Keep     int
	Seed     uint64
	Config   map[string]string
	PlanHash string
	RunID    string

	mu      sync.Mutex
	mesh    grid.Mesh
	pending *ckpt.State
	written bool
	last    int // cycle of the last written checkpoint
}

// snapshot deep-copies st into a checkpoint state: the run loop keeps
// mutating the live slices, and Flush may fire from a signal handler.
func (cp *Checkpointer) snapshot(st State) (*ckpt.State, error) {
	hist, err := json.Marshal(st.History)
	if err != nil {
		return nil, fmt.Errorf("cycle: marshal history: %w", err)
	}
	s := &ckpt.State{
		Cycle:    st.NextCycle - 1,
		Truth:    append([]float64(nil), st.Truth...),
		Ensemble: make([][]float64, len(st.Ensemble)),
		Free:     make([][]float64, len(st.Free)),
		History:  hist,
		Seed:     cp.Seed,
		Config:   cp.Config,
		PlanHash: cp.PlanHash,
		RunID:    cp.RunID,
	}
	for k := range st.Ensemble {
		s.Ensemble[k] = append([]float64(nil), st.Ensemble[k]...)
	}
	for k := range st.Free {
		s.Free[k] = append([]float64(nil), st.Free[k]...)
	}
	return s, nil
}

// Hook returns the per-cycle hook that drives this checkpointer.
func (cp *Checkpointer) Hook(c Config) Hook {
	cp.mu.Lock()
	cp.mesh = c.Enkf.Mesh
	cp.mu.Unlock()
	return func(st State) error {
		snap, err := cp.snapshot(st)
		if err != nil {
			return err
		}
		cp.mu.Lock()
		defer cp.mu.Unlock()
		cp.pending = snap
		every := cp.Every
		if every <= 0 {
			every = 1
		}
		if st.NextCycle%every != 0 {
			return nil
		}
		return cp.writeLocked()
	}
}

// Flush writes the pending snapshot if it is newer than the last checkpoint
// on disk. Safe to call from a signal handler concurrently with the run.
func (cp *Checkpointer) Flush() error {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	return cp.writeLocked()
}

// LastCycle returns the cycle of the most recent checkpoint written, or −1.
func (cp *Checkpointer) LastCycle() int {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	if !cp.written {
		return -1
	}
	return cp.last
}

func (cp *Checkpointer) writeLocked() error {
	if cp.pending == nil || (cp.written && cp.pending.Cycle == cp.last) {
		return nil
	}
	if _, err := ckpt.Write(cp.Dir, cp.mesh, *cp.pending); err != nil {
		return err
	}
	cp.written, cp.last = true, cp.pending.Cycle
	if cp.Keep > 0 {
		if err := ckpt.Prune(cp.Dir, cp.Keep); err != nil {
			return err
		}
	}
	return nil
}

// Restore converts a loaded checkpoint back into a resumable run state.
// The returned state resumes at the cycle after the checkpointed one.
func Restore(l *ckpt.Loaded) (State, error) {
	var history []Stats
	if len(l.State.History) > 0 {
		if err := json.Unmarshal(l.State.History, &history); err != nil {
			return State{}, fmt.Errorf("cycle: checkpoint history: %w", err)
		}
	}
	return State{
		NextCycle: l.State.Cycle + 1,
		Truth:     l.State.Truth,
		Ensemble:  l.State.Ensemble,
		Free:      l.State.Free,
		History:   history,
	}, nil
}
