// Package cycle implements sequential data assimilation: the
// forecast–analysis loop in which an ensemble of model states is integrated
// forward in time ("utilizes ensemble integrations to predict the error
// statistics forward in time", §1), observations of the evolving truth are
// assimilated, and the updated ensemble seeds the next forecast. Every
// cycle can run the analysis through any of the implementations — the
// serial reference, or the real parallel S-EnKF/P-EnKF paths via member
// files on disk, exactly as an operational system would between model runs.
package cycle

import (
	"fmt"
	"math"

	"senkf/internal/baseline"
	"senkf/internal/core"
	"senkf/internal/enkf"
	"senkf/internal/ensio"
	"senkf/internal/grid"
	"senkf/internal/metrics"
	"senkf/internal/model"
	"senkf/internal/obs"
	"senkf/internal/runtimeobs"
	"senkf/internal/trace"
	"senkf/internal/workload"
)

// Analyzer turns a background ensemble and an observation network into an
// analysis ensemble under the given configuration.
type Analyzer func(cfg enkf.Config, background [][]float64, net *obs.Network) ([][]float64, error)

// Config drives a cycled experiment.
type Config struct {
	Enkf  enkf.Config
	Model *model.AdvectionDiffusion
	// StepsPerCycle is the number of model steps between analyses.
	StepsPerCycle int
	// Observation network geometry, regenerated from the evolving truth
	// each cycle.
	ObsStrideX, ObsStrideY int
	ObsVar                 float64
	// ModelErrorSD, when positive, adds independent Gaussian noise of this
	// standard deviation to every ensemble member after each forecast —
	// stochastic model error. The truth trajectory is not perturbed, so
	// the ensemble's model is imperfect, as in any real system; without
	// it a perfect deterministic model lets the filter converge below the
	// observation floor and the cycling becomes trivial.
	ModelErrorSD float64
	// Seed derives per-cycle observation noise, perturbation streams and
	// model-error realizations.
	Seed uint64
	// Prof, when non-nil, runs the cycle loop under pprof labels
	// {proc: "cycle", stage: <cycle index>}, so CPU profiles separate
	// forecast/observation overhead from the analysis ranks (which label
	// themselves through the template problem's own Prof). Nil disables
	// labeling.
	Prof *runtimeobs.LabelSet
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if err := c.Enkf.Validate(); err != nil {
		return err
	}
	if c.Model == nil {
		return fmt.Errorf("cycle: nil model")
	}
	if c.Model.Mesh != c.Enkf.Mesh {
		return fmt.Errorf("cycle: model mesh %v differs from assimilation mesh %v", c.Model.Mesh, c.Enkf.Mesh)
	}
	if c.StepsPerCycle <= 0 {
		return fmt.Errorf("cycle: steps per cycle must be positive, got %d", c.StepsPerCycle)
	}
	if c.ObsStrideX <= 0 || c.ObsStrideY <= 0 {
		return fmt.Errorf("cycle: observation strides must be positive")
	}
	if c.ObsVar <= 0 {
		return fmt.Errorf("cycle: observation variance must be positive, got %g", c.ObsVar)
	}
	if c.ModelErrorSD < 0 {
		return fmt.Errorf("cycle: negative model error %g", c.ModelErrorSD)
	}
	return nil
}

// cycleSeed derives an independent seed for cycle i.
func (c Config) cycleSeed(i int) uint64 {
	return c.Seed + 0x9E3779B97F4A7C15*uint64(i+1)
}

// Stats records one cycle's outcome.
type Stats struct {
	Cycle          int
	BackgroundRMSE float64 // forecast ensemble mean vs truth, before analysis
	AnalysisRMSE   float64 // analysis ensemble mean vs truth
	FreeRMSE       float64 // no-assimilation control ensemble mean vs truth
	Spread         float64 // mean ensemble standard deviation after analysis
}

// spread returns the mean point-wise ensemble standard deviation.
func spread(fields [][]float64) float64 {
	if len(fields) < 2 {
		return 0
	}
	n := len(fields)
	pts := len(fields[0])
	var total float64
	for i := 0; i < pts; i++ {
		var mean float64
		for k := 0; k < n; k++ {
			mean += fields[k][i]
		}
		mean /= float64(n)
		var v float64
		for k := 0; k < n; k++ {
			d := fields[k][i] - mean
			v += d * d
		}
		total += math.Sqrt(v / float64(n-1))
	}
	return total / float64(pts)
}

// State is the complete between-cycles state of a cycled experiment: with
// the Config it determines every remaining cycle exactly (all per-cycle
// randomness is keyed by Config.Seed and the cycle index), so persisting a
// State and resuming from it reproduces the uninterrupted run bit for bit.
type State struct {
	// NextCycle is the index of the first cycle still to run.
	NextCycle int
	Truth     []float64
	Ensemble  [][]float64
	// Free is the no-assimilation control ensemble; nil means "start a
	// fresh control as a copy of Ensemble" (the cycle-0 convention).
	Free    [][]float64
	History []Stats
}

// Hook observes the state after each completed cycle — the checkpoint
// cut-point. The State's slices are live; the hook must not mutate them. A
// non-nil error aborts the run (so tests can simulate a crash at an exact
// cycle boundary).
type Hook func(State) error

// Run performs the given number of forecast–analysis cycles starting from
// truth0 and ensemble0, and returns per-cycle statistics. A free-running
// copy of the ensemble (never assimilating) is propagated alongside as the
// control experiment.
func Run(c Config, truth0 []float64, ensemble0 [][]float64, cycles int, analyze Analyzer) ([]Stats, error) {
	return RunObserved(c, truth0, ensemble0, cycles, analyze, nil)
}

// RunObserved is Run with a per-cycle callback: onCycle (may be nil) fires
// after each cycle's statistics are recorded, so a live monitor can
// publish per-cycle series while the experiment is still running.
func RunObserved(c Config, truth0 []float64, ensemble0 [][]float64, cycles int, analyze Analyzer, onCycle func(Stats)) ([]Stats, error) {
	st := State{Truth: truth0, Ensemble: ensemble0}
	return RunFrom(c, st, cycles, analyze, onCycle, nil)
}

// RunFrom continues a cycled experiment from st until totalCycles cycles
// have completed (totalCycles counts from the experiment's origin, not from
// the resume point). The input state is never mutated. hook (may be nil)
// fires after each cycle with the post-analysis state.
func RunFrom(c Config, st State, totalCycles int, analyze Analyzer, onCycle func(Stats), hook Hook) ([]Stats, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if totalCycles <= 0 {
		return nil, fmt.Errorf("cycle: cycle count must be positive, got %d", totalCycles)
	}
	if analyze == nil {
		return nil, fmt.Errorf("cycle: nil analyzer")
	}
	if st.NextCycle < 0 || st.NextCycle >= totalCycles {
		return nil, fmt.Errorf("cycle: resume cycle %d outside [0,%d)", st.NextCycle, totalCycles)
	}
	if len(st.Ensemble) != c.Enkf.N {
		return nil, fmt.Errorf("cycle: ensemble has %d members, config says %d", len(st.Ensemble), c.Enkf.N)
	}
	if st.Free != nil && len(st.Free) != len(st.Ensemble) {
		return nil, fmt.Errorf("cycle: control ensemble has %d members, assimilating has %d", len(st.Free), len(st.Ensemble))
	}
	truth := append([]float64(nil), st.Truth...)
	ensemble := make([][]float64, len(st.Ensemble))
	free := make([][]float64, len(st.Ensemble))
	for k := range st.Ensemble {
		ensemble[k] = append([]float64(nil), st.Ensemble[k]...)
		src := st.Ensemble[k]
		if st.Free != nil {
			src = st.Free[k]
		}
		free[k] = append([]float64(nil), src...)
	}

	history := append([]Stats(nil), st.History...)
	sc := c.Prof.Scope("cycle")
	for i := st.NextCycle; i < totalCycles; i++ {
		i := i
		err := sc.Stage(i, func() error {
			// Forecast: truth, assimilating ensemble, and the free control.
			var err error
			truth, err = c.Model.Run(truth, c.StepsPerCycle)
			if err != nil {
				return fmt.Errorf("cycle %d: truth forecast: %w", i, err)
			}
			ensemble, err = c.Model.RunEnsemble(ensemble, c.StepsPerCycle)
			if err != nil {
				return fmt.Errorf("cycle %d: ensemble forecast: %w", i, err)
			}
			free, err = c.Model.RunEnsemble(free, c.StepsPerCycle)
			if err != nil {
				return fmt.Errorf("cycle %d: control forecast: %w", i, err)
			}
			if c.ModelErrorSD > 0 {
				addModelError(c.Enkf.Mesh, ensemble, c.ModelErrorSD, c.Seed, i, 0)
				addModelError(c.Enkf.Mesh, free, c.ModelErrorSD, c.Seed, i, 1)
			}

			// Observe the current truth.
			seed := c.cycleSeed(i)
			net, err := obs.StridedNetwork(c.Enkf.Mesh, truth, c.ObsStrideX, c.ObsStrideY, c.ObsVar, seed)
			if err != nil {
				return fmt.Errorf("cycle %d: observations: %w", i, err)
			}

			// Analysis with cycle-specific perturbation seed.
			cfg := c.Enkf
			cfg.Seed = seed
			st := Stats{
				Cycle:          i,
				BackgroundRMSE: enkf.RMSE(enkf.EnsembleMean(ensemble), truth),
				FreeRMSE:       enkf.RMSE(enkf.EnsembleMean(free), truth),
			}
			ensemble, err = analyze(cfg, ensemble, net)
			if err != nil {
				return fmt.Errorf("cycle %d: analysis: %w", i, err)
			}
			st.AnalysisRMSE = enkf.RMSE(enkf.EnsembleMean(ensemble), truth)
			st.Spread = spread(ensemble)
			history = append(history, st)
			if onCycle != nil {
				onCycle(st)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		if hook != nil {
			if err := hook(State{NextCycle: i + 1, Truth: truth, Ensemble: ensemble, Free: free, History: history}); err != nil {
				return history, fmt.Errorf("cycle %d: hook: %w", i, err)
			}
		}
	}
	return history, nil
}

// addModelError perturbs every member with a deterministic realization of
// spatially correlated (smooth) stochastic model error, keyed by
// (seed, cycle, ensemble id, member). Smoothness matters: only correlated
// background errors can be corrected at unobserved points.
func addModelError(m grid.Mesh, fields [][]float64, sd float64, seed uint64, cycleIdx, which int) {
	for k := range fields {
		noise := workload.SmoothNoise(m, sd, seed, 0x30DE1, cycleIdx, which, k)
		for i := range fields[k] {
			fields[k][i] += noise[i]
		}
	}
}

// SerialAnalyzer runs the serial reference analysis.
func SerialAnalyzer() Analyzer {
	return func(cfg enkf.Config, background [][]float64, net *obs.Network) ([][]float64, error) {
		return enkf.SerialReference(cfg, background, net)
	}
}

// SEnKFAnalyzer writes each cycle's background ensemble into dir (as an
// operational system would, between the model run and the assimilation) and
// runs the real parallel S-EnKF over the files.
func SEnKFAnalyzer(dir string, dec grid.Decomposition, layers, ncg int) Analyzer {
	return SEnKFAnalyzerObserved(dir, dec, layers, ncg, nil, nil)
}

// SEnKFAnalyzerObserved is SEnKFAnalyzer with observability attached: every
// cycle's parallel run records phase intervals into rec and emits trace
// events through tr (either may be nil).
func SEnKFAnalyzerObserved(dir string, dec grid.Decomposition, layers, ncg int, rec *metrics.Recorder, tr *trace.Tracer) Analyzer {
	return SEnKFAnalyzerHooked(dir, dec, layers, ncg, core.Problem{Rec: rec, Tr: tr})
}

// SEnKFAnalyzerHooked is SEnKFAnalyzerObserved with the full hook set: the
// template problem's Rec, Tr, Obs and Faults are carried into every
// cycle's parallel run (so a monitor sees BeginRun/EndRun per cycle, and
// injected faults recur each cycle); Cfg, Dir and Net are filled per cycle.
func SEnKFAnalyzerHooked(dir string, dec grid.Decomposition, layers, ncg int, tpl core.Problem) Analyzer {
	return func(cfg enkf.Config, background [][]float64, net *obs.Network) ([][]float64, error) {
		if _, err := ensio.WriteEnsemble(dir, cfg.Mesh, background); err != nil {
			return nil, err
		}
		p := tpl
		p.Cfg, p.Dir, p.Net = cfg, dir, net
		return core.RunSEnKF(p, core.Plan{Dec: dec, L: layers, NCg: ncg})
	}
}

// PEnKFAnalyzer writes each cycle's background ensemble into dir and runs
// the block-reading baseline over the files.
func PEnKFAnalyzer(dir string, dec grid.Decomposition) Analyzer {
	return PEnKFAnalyzerObserved(dir, dec, nil, nil)
}

// PEnKFAnalyzerObserved is PEnKFAnalyzer with observability attached.
func PEnKFAnalyzerObserved(dir string, dec grid.Decomposition, rec *metrics.Recorder, tr *trace.Tracer) Analyzer {
	return func(cfg enkf.Config, background [][]float64, net *obs.Network) ([][]float64, error) {
		if _, err := ensio.WriteEnsemble(dir, cfg.Mesh, background); err != nil {
			return nil, err
		}
		return baseline.RunPEnKF(baseline.Problem{Cfg: cfg, Dir: dir, Net: net, Rec: rec, Tr: tr}, dec)
	}
}
