package cycle

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"senkf/internal/ckpt"
	"senkf/internal/core"
	"senkf/internal/grid"
	"senkf/internal/monitor"
	"senkf/internal/trace"
)

var errSimulatedCrash = errors.New("simulated crash")

// crashAfter composes a checkpoint hook with a crash at the boundary after
// cycle k — the checkpoint lands, then the process "dies".
func crashAfter(inner Hook, k int) Hook {
	return func(st State) error {
		if err := inner(st); err != nil {
			return err
		}
		if st.NextCycle-1 == k {
			return errSimulatedCrash
		}
		return nil
	}
}

func checkpointer(dir string) *Checkpointer {
	return &Checkpointer{
		Dir:  dir,
		Seed: 20190216,
		Config: map[string]string{
			"nx": "24", "ny": "12",
		},
		PlanHash: "sha256:test",
		RunID:    "test-run",
	}
}

// runKillResumeMatrix crashes an experiment after every cycle boundary in
// turn, resumes each from its latest checkpoint, and demands the stitched
// history be bit-identical to the uninterrupted run — the core resilience
// guarantee: a crash plus resume is invisible in the results.
func runKillResumeMatrix(t *testing.T, cycles int, mkAnalyzer func(t *testing.T) Analyzer) {
	t.Helper()
	cfg, truth, ens := testSetup(t)
	baseline, err := Run(cfg, truth, ens, cycles, mkAnalyzer(t))
	if err != nil {
		t.Fatal(err)
	}

	for k := 0; k < cycles-1; k++ {
		dir := t.TempDir()
		cp := checkpointer(dir)
		_, err := RunFrom(cfg, State{Truth: truth, Ensemble: ens}, cycles,
			mkAnalyzer(t), nil, crashAfter(cp.Hook(cfg), k))
		if !errors.Is(err, errSimulatedCrash) {
			t.Fatalf("kill after cycle %d: err = %v, want simulated crash", k, err)
		}

		l, skipped, err := ckpt.Latest(dir)
		if err != nil {
			t.Fatal(err)
		}
		if len(skipped) != 0 {
			t.Fatalf("kill after cycle %d: skipped %v", k, skipped)
		}
		if l == nil || l.State.Cycle != k {
			t.Fatalf("kill after cycle %d: latest checkpoint is %+v", k, l)
		}
		st, err := Restore(l)
		if err != nil {
			t.Fatal(err)
		}
		if st.NextCycle != k+1 {
			t.Fatalf("kill after cycle %d: resume at %d", k, st.NextCycle)
		}
		resumed, err := RunFrom(cfg, st, cycles, mkAnalyzer(t), nil, nil)
		if err != nil {
			t.Fatalf("kill after cycle %d: resume: %v", k, err)
		}
		if len(resumed) != len(baseline) {
			t.Fatalf("kill after cycle %d: %d cycles after resume, want %d", k, len(resumed), len(baseline))
		}
		for i := range baseline {
			if resumed[i] != baseline[i] {
				t.Fatalf("kill after cycle %d: cycle %d diverged: %+v vs %+v", k, i, resumed[i], baseline[i])
			}
		}
	}
}

func TestKillResumeMatrixSerial(t *testing.T) {
	runKillResumeMatrix(t, 5, func(t *testing.T) Analyzer { return SerialAnalyzer() })
}

func TestKillResumeMatrixSEnKF(t *testing.T) {
	cfg, _, _ := testSetup(t)
	dec, err := grid.NewDecomposition(cfg.Enkf.Mesh, 4, 2, cfg.Enkf.Radius)
	if err != nil {
		t.Fatal(err)
	}
	runKillResumeMatrix(t, 3, func(t *testing.T) Analyzer {
		return SEnKFAnalyzer(t.TempDir(), dec, 3, 2)
	})
}

// TestResumePastCorruptedCheckpoint corrupts the newest checkpoint after a
// crash: resume must fall back to the previous one and still reproduce the
// uninterrupted history exactly.
func TestResumePastCorruptedCheckpoint(t *testing.T) {
	const cycles = 4
	cfg, truth, ens := testSetup(t)
	baseline, err := Run(cfg, truth, ens, cycles, SerialAnalyzer())
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	cp := checkpointer(dir)
	_, err = RunFrom(cfg, State{Truth: truth, Ensemble: ens}, cycles,
		SerialAnalyzer(), nil, crashAfter(cp.Hook(cfg), 2))
	if !errors.Is(err, errSimulatedCrash) {
		t.Fatalf("err = %v", err)
	}

	// Tear the newest checkpoint's manifest, as a crash mid-write would.
	man := filepath.Join(dir, ckpt.DirName(2), ckpt.ManifestFile)
	data, err := os.ReadFile(man)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(man, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	l, skipped, err := ckpt.Latest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped) != 1 || l == nil || l.State.Cycle != 1 {
		t.Fatalf("latest = %+v, skipped = %v; want cycle 1 with one skip", l, skipped)
	}
	st, err := Restore(l)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := RunFrom(cfg, st, cycles, SerialAnalyzer(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range baseline {
		if resumed[i] != baseline[i] {
			t.Fatalf("cycle %d diverged after fallback resume", i)
		}
	}
}

// TestCheckpointEveryAndKeep checks the cadence and retention knobs.
func TestCheckpointEveryAndKeep(t *testing.T) {
	cfg, truth, ens := testSetup(t)
	dir := t.TempDir()
	cp := checkpointer(dir)
	cp.Every = 2
	cp.Keep = 2
	if _, err := RunFrom(cfg, State{Truth: truth, Ensemble: ens}, 6,
		SerialAnalyzer(), nil, cp.Hook(cfg)); err != nil {
		t.Fatal(err)
	}
	// Cycles 1, 3, 5 hit the cadence; Keep=2 retains 3 and 5.
	got, err := ckpt.List(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 5 || got[1] != 3 {
		t.Fatalf("checkpoints on disk: %v, want [5 3]", got)
	}
	if cp.LastCycle() != 5 {
		t.Fatalf("LastCycle = %d", cp.LastCycle())
	}

	// Flush with nothing pending past the last write is a no-op...
	if err := cp.Flush(); err != nil {
		t.Fatal(err)
	}
	// ...but after an off-cadence cycle it cuts the pending snapshot — the
	// graceful-interrupt path.
	cp2 := checkpointer(t.TempDir())
	cp2.Every = 10
	if _, err := RunFrom(cfg, State{Truth: truth, Ensemble: ens}, 3,
		SerialAnalyzer(), nil, cp2.Hook(cfg)); err != nil {
		t.Fatal(err)
	}
	if cp2.LastCycle() != -1 {
		t.Fatalf("cadence-10 run wrote checkpoint at cycle %d", cp2.LastCycle())
	}
	if err := cp2.Flush(); err != nil {
		t.Fatal(err)
	}
	if cp2.LastCycle() != 2 {
		t.Fatalf("Flush cut cycle %d, want 2", cp2.LastCycle())
	}
}

// TestResizedResumeConformance resumes a crashed S-EnKF experiment with a
// grown ensemble: the plan recompiles for the new member count and the live
// conformance monitor must see zero divergences against the new DAG.
func TestResizedResumeConformance(t *testing.T) {
	cfg, truth, ens := testSetup(t)
	dec, err := grid.NewDecomposition(cfg.Enkf.Mesh, 4, 2, cfg.Enkf.Radius)
	if err != nil {
		t.Fatal(err)
	}

	const cycles = 3
	dir := t.TempDir()
	cp := checkpointer(dir)
	_, err = RunFrom(cfg, State{Truth: truth, Ensemble: ens}, cycles,
		SEnKFAnalyzer(t.TempDir(), dec, 3, 2), nil, crashAfter(cp.Hook(cfg), 0))
	if !errors.Is(err, errSimulatedCrash) {
		t.Fatalf("err = %v", err)
	}

	l, _, err := ckpt.Latest(dir)
	if err != nil || l == nil {
		t.Fatalf("latest: %v %v", l, err)
	}
	st, err := Restore(l)
	if err != nil {
		t.Fatal(err)
	}

	// Elastic growth: 20 → 26 members, ensemble and control alike.
	newN := cfg.Enkf.N + 6
	st.Ensemble, err = ckpt.ResizeEnsemble(cfg.Enkf.Mesh, st.Ensemble, newN, 7)
	if err != nil {
		t.Fatal(err)
	}
	st.Free, err = ckpt.ResizeEnsemble(cfg.Enkf.Mesh, st.Free, newN, 8)
	if err != nil {
		t.Fatal(err)
	}
	grown := cfg
	grown.Enkf.N = newN

	mon := monitor.New(monitor.Options{})
	defer mon.Close()
	tr := trace.New(nil, mon.Tee(nil))
	analyzer := SEnKFAnalyzerHooked(t.TempDir(), dec, 3, 2, core.Problem{Tr: tr, Obs: mon})
	resumed, err := RunFrom(grown, st, cycles, analyzer, nil, nil)
	if err != nil {
		t.Fatalf("resized resume: %v", err)
	}
	if len(resumed) != cycles {
		t.Fatalf("resumed history has %d cycles, want %d", len(resumed), cycles)
	}
	status := mon.Status()
	if status.Conformance.DivergenceCount != 0 {
		t.Fatalf("resized resume diverged from the recompiled plan: %v", status.Conformance.Divergences)
	}
	if status.Conformance.MatchedSpans == 0 {
		t.Fatal("monitor matched no spans — conformance never engaged")
	}
}
