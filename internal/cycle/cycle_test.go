package cycle

import (
	"testing"

	"senkf/internal/enkf"
	"senkf/internal/grid"
	"senkf/internal/model"
	"senkf/internal/workload"
)

func testSetup(t *testing.T) (Config, []float64, [][]float64) {
	t.Helper()
	ps := workload.TestScale
	m, err := ps.Mesh()
	if err != nil {
		t.Fatal(err)
	}
	adv, err := model.New(m, 0.4, 0.2, 0.02, 1)
	if err != nil {
		t.Fatal(err)
	}
	truth := workload.Truth(m, workload.DefaultFieldSpec, ps.Seed)
	ensemble, err := workload.Ensemble(m, truth, ps.Members, ps.Spread, ps.Seed)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Enkf: enkf.Config{
			Mesh: m, Radius: ps.Radius(), N: ps.Members,
			Inflation: 1.1,
		},
		Model:         adv,
		StepsPerCycle: 3,
		ObsStrideX:    2, ObsStrideY: 2,
		ObsVar:       1e-4,
		ModelErrorSD: 0.2,
		Seed:         ps.Seed,
	}
	return cfg, truth, ensemble
}

func TestValidation(t *testing.T) {
	cfg, truth, ens := testSetup(t)
	bad := cfg
	bad.Model = nil
	if _, err := Run(bad, truth, ens, 2, SerialAnalyzer()); err == nil {
		t.Error("nil model accepted")
	}
	bad = cfg
	bad.StepsPerCycle = 0
	if _, err := Run(bad, truth, ens, 2, SerialAnalyzer()); err == nil {
		t.Error("zero steps accepted")
	}
	bad = cfg
	bad.ObsVar = 0
	if _, err := Run(bad, truth, ens, 2, SerialAnalyzer()); err == nil {
		t.Error("zero obs variance accepted")
	}
	bad = cfg
	bad.ObsStrideX = 0
	if _, err := Run(bad, truth, ens, 2, SerialAnalyzer()); err == nil {
		t.Error("zero stride accepted")
	}
	bad = cfg
	bad.ModelErrorSD = -1
	if _, err := Run(bad, truth, ens, 2, SerialAnalyzer()); err == nil {
		t.Error("negative model error accepted")
	}
	if _, err := Run(cfg, truth, ens, 0, SerialAnalyzer()); err == nil {
		t.Error("zero cycles accepted")
	}
	if _, err := Run(cfg, truth, ens, 2, nil); err == nil {
		t.Error("nil analyzer accepted")
	}
	if _, err := Run(cfg, truth, ens[:3], 2, SerialAnalyzer()); err == nil {
		t.Error("wrong member count accepted")
	}
	otherMesh, _ := grid.NewMesh(8, 8)
	bad = cfg
	bad.Model, _ = model.New(otherMesh, 0.1, 0.1, 0.01, 1)
	if _, err := Run(bad, truth, ens, 2, SerialAnalyzer()); err == nil {
		t.Error("mesh mismatch accepted")
	}
}

func TestAssimilationBeatsFreeRun(t *testing.T) {
	cfg, truth, ens := testSetup(t)
	const cycles = 6
	hist, err := Run(cfg, truth, ens, cycles, SerialAnalyzer())
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != cycles {
		t.Fatalf("got %d cycles", len(hist))
	}
	last := hist[cycles-1]
	if !(last.AnalysisRMSE < last.FreeRMSE) {
		t.Errorf("assimilation (%g) not better than free run (%g) after %d cycles",
			last.AnalysisRMSE, last.FreeRMSE, cycles)
	}
	// Every cycle's analysis improves on its own background.
	improved := 0
	for _, st := range hist {
		if st.AnalysisRMSE < st.BackgroundRMSE {
			improved++
		}
	}
	if improved < cycles-1 {
		t.Errorf("analysis improved the background in only %d of %d cycles", improved, cycles)
	}
	t.Logf("cycle %d: background %.4f analysis %.4f free %.4f spread %.4f",
		last.Cycle, last.BackgroundRMSE, last.AnalysisRMSE, last.FreeRMSE, last.Spread)
}

func TestCycledRMSEBounded(t *testing.T) {
	// The hallmark of working cycled DA: the analysis error stays bounded
	// (here: the late-cycle mean does not exceed the first analysis error)
	// while the free run drifts.
	cfg, truth, ens := testSetup(t)
	hist, err := Run(cfg, truth, ens, 8, SerialAnalyzer())
	if err != nil {
		t.Fatal(err)
	}
	var lateMean float64
	for _, st := range hist[4:] {
		lateMean += st.AnalysisRMSE
	}
	lateMean /= float64(len(hist) - 4)
	if lateMean > hist[0].AnalysisRMSE*1.5 {
		t.Errorf("cycled analysis error grew: first %g, late mean %g", hist[0].AnalysisRMSE, lateMean)
	}
}

func TestDeterministic(t *testing.T) {
	cfg, truth, ens := testSetup(t)
	a, err := Run(cfg, truth, ens, 3, SerialAnalyzer())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, truth, ens, 3, SerialAnalyzer())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("cycle %d not deterministic: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestSEnKFAnalyzerMatchesSerial(t *testing.T) {
	// Cycling through the real parallel S-EnKF (files + goroutine ranks)
	// must produce the exact same history as the serial reference.
	cfg, truth, ens := testSetup(t)
	serial, err := Run(cfg, truth, ens, 3, SerialAnalyzer())
	if err != nil {
		t.Fatal(err)
	}
	dec, err := grid.NewDecomposition(cfg.Enkf.Mesh, 4, 2, cfg.Enkf.Radius)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(cfg, truth, ens, 3, SEnKFAnalyzer(t.TempDir(), dec, 3, 2))
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("cycle %d: serial %+v vs S-EnKF %+v", i, serial[i], parallel[i])
		}
	}
}

func TestPEnKFAnalyzerMatchesSerial(t *testing.T) {
	cfg, truth, ens := testSetup(t)
	serial, err := Run(cfg, truth, ens, 2, SerialAnalyzer())
	if err != nil {
		t.Fatal(err)
	}
	dec, err := grid.NewDecomposition(cfg.Enkf.Mesh, 2, 2, cfg.Enkf.Radius)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(cfg, truth, ens, 2, PEnKFAnalyzer(t.TempDir(), dec))
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("cycle %d: serial %+v vs P-EnKF %+v", i, serial[i], parallel[i])
		}
	}
}

func TestCycleSeedsDiffer(t *testing.T) {
	cfg, _, _ := testSetup(t)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		s := cfg.cycleSeed(i)
		if seen[s] {
			t.Fatalf("seed collision at cycle %d", i)
		}
		seen[s] = true
	}
}

func TestSpreadHelper(t *testing.T) {
	if spread([][]float64{{1, 2}}) != 0 {
		t.Error("single-member spread should be 0")
	}
	got := spread([][]float64{{0, 0}, {2, 2}})
	// std of {0,2} with n-1 normalization = sqrt(2)
	if got < 1.41 || got > 1.42 {
		t.Errorf("spread = %g", got)
	}
}
