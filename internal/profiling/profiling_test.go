package profiling

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestServeExposesPprof(t *testing.T) {
	srv, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client := &http.Client{Timeout: 5 * time.Second}
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/goroutine?debug=1", "/debug/metrics"} {
		resp, err := client.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
		if len(body) == 0 {
			t.Fatalf("%s: empty body", path)
		}
	}
}

func TestSnapshotAndTable(t *testing.T) {
	samples := Snapshot()
	if len(samples) == 0 {
		t.Fatal("empty runtime/metrics snapshot")
	}
	seen := false
	for _, s := range samples {
		if strings.HasPrefix(s.Name, "/memory/classes/heap") {
			seen = true
		}
	}
	if !seen {
		t.Fatalf("no heap metrics among %d samples", len(samples))
	}
	var sb strings.Builder
	if err := WriteMetricsTable(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "/sched/goroutines:goroutines") {
		t.Fatalf("table missing goroutine count:\n%.500s", sb.String())
	}
}
