// Package profiling wires the standard pprof endpoints and runtime/metrics
// into the senkf binaries. Every command grows a -profile flag that starts
// an HTTP server exposing /debug/pprof/ (CPU, heap, goroutine, block,
// mutex profiles) on a private mux — the binaries never touch
// http.DefaultServeMux, so importing this package has no side effects.
// WriteMetricsTable dumps a one-shot runtime/metrics snapshot (GC pauses,
// heap size, goroutine count, scheduler latencies) for runs where
// attaching an HTTP client is inconvenient.
package profiling

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime/metrics"
	"sort"
	"time"
)

// Server is a running pprof endpoint.
type Server struct {
	ln  net.Listener
	srv *http.Server
	mux *http.ServeMux
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the endpoint down.
func (s *Server) Close() error {
	return s.srv.Close()
}

// Handle mounts an extra handler on the server's mux — the monitor uses
// this to expose /metrics and /status next to the pprof endpoints.
func (s *Server) Handle(pattern string, h http.Handler) {
	s.mux.Handle(pattern, h)
}

// Serve starts the pprof HTTP endpoint on addr (e.g. "localhost:6060").
// The handlers live on a private mux under the standard /debug/pprof/
// paths, so `go tool pprof http://<addr>/debug/pprof/profile` works as
// usual.
func Serve(addr string) (*Server, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		WriteMetricsTable(w)
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("profiling: %w", err)
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}, mux: mux}
	go s.srv.Serve(ln)
	return s, nil
}

// Sample is one runtime/metrics reading flattened to a float.
type Sample struct {
	Name  string
	Value float64
	// Cumulative marks monotonically accumulating metrics.
	Cumulative bool
}

// Snapshot reads every float64- and uint64-valued runtime metric.
// Histogram-valued metrics are reported as their count-weighted mean
// (suffix ":mean") so latency distributions still show up in the table.
func Snapshot() []Sample {
	descs := metrics.All()
	samples := make([]metrics.Sample, len(descs))
	for i, d := range descs {
		samples[i].Name = d.Name
	}
	metrics.Read(samples)
	out := make([]Sample, 0, len(samples))
	for i, s := range samples {
		switch s.Value.Kind() {
		case metrics.KindUint64:
			out = append(out, Sample{Name: s.Name, Value: float64(s.Value.Uint64()), Cumulative: descs[i].Cumulative})
		case metrics.KindFloat64:
			out = append(out, Sample{Name: s.Name, Value: s.Value.Float64(), Cumulative: descs[i].Cumulative})
		case metrics.KindFloat64Histogram:
			h := s.Value.Float64Histogram()
			var n uint64
			var sum float64
			for b, c := range h.Counts {
				n += c
				// Bucket b spans [Buckets[b], Buckets[b+1]); use the
				// midpoint, clamping the open-ended edge buckets.
				lo, hi := h.Buckets[b], h.Buckets[b+1]
				mid := lo
				if lo > -1e308 && hi < 1e308 {
					mid = (lo + hi) / 2
				} else if lo <= -1e308 {
					mid = hi
				}
				sum += float64(c) * mid
			}
			if n > 0 {
				out = append(out, Sample{Name: s.Name + ":mean", Value: sum / float64(n), Cumulative: descs[i].Cumulative})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// WriteMetricsTable writes the current runtime/metrics snapshot as an
// aligned name/value table.
func WriteMetricsTable(w io.Writer) error {
	for _, s := range Snapshot() {
		if _, err := fmt.Fprintf(w, "%-60s %g\n", s.Name, s.Value); err != nil {
			return err
		}
	}
	return nil
}
