// One-shot in-process profile capture: the run ledger attaches pprof
// snapshots to a run's archive record when the monitor's flight recorder
// trips, so anomalies come with profiles even when nobody had a pprof
// client attached at the time.

package profiling

import (
	"bytes"
	"fmt"
	"runtime"
	"runtime/pprof"
	"time"
)

// CaptureHeapProfile returns the current heap profile in pprof format
// (after a GC, so the live set is accurate).
func CaptureHeapProfile() ([]byte, error) {
	runtime.GC()
	var buf bytes.Buffer
	if err := pprof.Lookup("heap").WriteTo(&buf, 0); err != nil {
		return nil, fmt.Errorf("profiling: heap profile: %w", err)
	}
	return buf.Bytes(), nil
}

// CaptureCPUProfile samples the CPU for d (default 500ms) and returns the
// profile in pprof format. Errors if CPU profiling is already running —
// e.g. a concurrent /debug/pprof/profile request.
func CaptureCPUProfile(d time.Duration) ([]byte, error) {
	if d <= 0 {
		d = 500 * time.Millisecond
	}
	var buf bytes.Buffer
	if err := pprof.StartCPUProfile(&buf); err != nil {
		return nil, fmt.Errorf("profiling: cpu profile: %w", err)
	}
	time.Sleep(d)
	pprof.StopCPUProfile()
	return buf.Bytes(), nil
}

// StartCPUCapture begins a whole-run CPU capture and returns the stop
// function, which ends profiling and returns the accumulated profile.
// The run ledger uses this (under -capture-profile) so an archived run
// carries one labeled CPU profile spanning the entire execution — the
// input hot-stage attribution slices by {proc, stage}. Errors if CPU
// profiling is already running; the stop function is idempotent.
func StartCPUCapture() (stop func() []byte, err error) {
	var buf bytes.Buffer
	if err := pprof.StartCPUProfile(&buf); err != nil {
		return nil, fmt.Errorf("profiling: cpu capture: %w", err)
	}
	stopped := false
	return func() []byte {
		if stopped {
			return buf.Bytes()
		}
		stopped = true
		pprof.StopCPUProfile()
		return buf.Bytes()
	}, nil
}
