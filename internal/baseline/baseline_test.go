package baseline

import (
	"testing"

	"senkf/internal/enkf"
	"senkf/internal/ensio"
	"senkf/internal/grid"
	"senkf/internal/metrics"
	"senkf/internal/obs"
	"senkf/internal/workload"
)

func setup(t *testing.T) (Problem, grid.Decomposition, [][]float64) {
	t.Helper()
	ps := workload.TestScale
	m, err := ps.Mesh()
	if err != nil {
		t.Fatal(err)
	}
	truth := workload.Truth(m, workload.DefaultFieldSpec, ps.Seed)
	bg, err := workload.Ensemble(m, truth, ps.Members, ps.Spread, ps.Seed)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, err := ensio.WriteEnsemble(dir, m, bg); err != nil {
		t.Fatal(err)
	}
	net, err := obs.StridedNetwork(m, truth, ps.ObsStride, ps.ObsStride, ps.ObsVar, ps.Seed)
	if err != nil {
		t.Fatal(err)
	}
	cfg := enkf.Config{Mesh: m, Radius: ps.Radius(), N: ps.Members, Seed: ps.Seed}
	dec, err := grid.NewDecomposition(m, 4, 2, cfg.Radius)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := enkf.SerialReference(cfg, bg, net)
	if err != nil {
		t.Fatal(err)
	}
	return Problem{Cfg: cfg, Dir: dir, Net: net}, dec, ref
}

func TestPEnKFMatchesReferenceAcrossDecompositions(t *testing.T) {
	p, _, ref := setup(t)
	for _, d := range [][2]int{{1, 1}, {2, 1}, {4, 2}, {6, 3}, {12, 4}} {
		dec, err := grid.NewDecomposition(p.Cfg.Mesh, d[0], d[1], p.Cfg.Radius)
		if err != nil {
			t.Fatalf("%v: %v", d, err)
		}
		got, err := RunPEnKF(p, dec)
		if err != nil {
			t.Fatalf("%v: %v", d, err)
		}
		if diff := enkf.MaxAbsDiffFields(got, ref); diff != 0 {
			t.Errorf("decomposition %v: differs from reference by %g", d, diff)
		}
	}
}

func TestLEnKFMatchesReferenceAcrossDecompositions(t *testing.T) {
	p, _, ref := setup(t)
	for _, d := range [][2]int{{1, 1}, {3, 2}, {4, 4}} {
		dec, err := grid.NewDecomposition(p.Cfg.Mesh, d[0], d[1], p.Cfg.Radius)
		if err != nil {
			t.Fatalf("%v: %v", d, err)
		}
		got, err := RunLEnKF(p, dec)
		if err != nil {
			t.Fatalf("%v: %v", d, err)
		}
		if diff := enkf.MaxAbsDiffFields(got, ref); diff != 0 {
			t.Errorf("decomposition %v: differs from reference by %g", d, diff)
		}
	}
}

func TestPEnKFRecordsReadAndCompute(t *testing.T) {
	p, dec, _ := setup(t)
	rec := metrics.NewRecorder()
	p.Rec = rec
	if _, err := RunPEnKF(p, dec); err != nil {
		t.Fatal(err)
	}
	b := rec.Breakdown(metrics.ComputePrefix)
	if b.Read <= 0 || b.Compute <= 0 {
		t.Errorf("breakdown %+v", b)
	}
	if b.Comm != 0 {
		t.Error("P-EnKF should not communicate during acquisition")
	}
	if got := len(rec.Procs(metrics.ComputePrefix)); got != dec.SubDomains() {
		t.Errorf("recorded %d procs, want %d", got, dec.SubDomains())
	}
}

func TestLEnKFRecordsReaderPhases(t *testing.T) {
	p, dec, _ := setup(t)
	rec := metrics.NewRecorder()
	p.Rec = rec
	if _, err := RunLEnKF(p, dec); err != nil {
		t.Fatal(err)
	}
	reader := rec.Breakdown(metrics.IOName(0, 0))
	if reader.Read <= 0 || reader.Comm <= 0 {
		t.Errorf("reader breakdown %+v", reader)
	}
	// Compute ranks wait for the scattered blocks, never read.
	other := rec.Breakdown(metrics.ComputeName(1, 0))
	if other.Read != 0 || other.Wait <= 0 {
		t.Errorf("non-reader breakdown %+v", other)
	}
}

func TestProblemValidation(t *testing.T) {
	p, dec, _ := setup(t)
	bad := p
	bad.Net = nil
	if _, err := RunPEnKF(bad, dec); err == nil {
		t.Error("nil network accepted")
	}
	bad = p
	bad.Dir = ""
	if _, err := RunLEnKF(bad, dec); err == nil {
		t.Error("empty dir accepted")
	}
	otherMesh, _ := grid.NewMesh(12, 12)
	otherDec, _ := grid.NewDecomposition(otherMesh, 2, 2, p.Cfg.Radius)
	if _, err := RunPEnKF(p, otherDec); err == nil {
		t.Error("mesh mismatch accepted")
	}
}

func TestMissingFilesFailCleanly(t *testing.T) {
	p, dec, _ := setup(t)
	p.Dir = t.TempDir()
	if _, err := RunPEnKF(p, dec); err == nil {
		t.Error("P-EnKF with missing files should fail")
	}
	if _, err := RunLEnKF(p, dec); err == nil {
		t.Error("L-EnKF with missing files should fail")
	}
}
