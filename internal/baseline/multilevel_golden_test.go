package baseline

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
	"testing"

	"senkf/internal/core"
	"senkf/internal/enkf"
	"senkf/internal/ensio"
	"senkf/internal/grid"
	"senkf/internal/obs"
	"senkf/internal/workload"
)

// The golden hashes pin the multilevel analysis output bit for bit across
// the level-aware engine refactor: they were recorded from the pre-refactor
// bespoke loops (runIOML/runComputeML and the baseline's own rank loop) on
// the fixed problem below, and the unified engine must reproduce them
// exactly. The problem is self-contained — independent of workload presets —
// so the pin survives unrelated test-scale changes.
const (
	goldenSEnKFML = "c7d0cf0de2bf4f433ea1598b38554aebba1f2c8a11faba245467db8a7c2f66af"
	goldenPEnKFML = "c7d0cf0de2bf4f433ea1598b38554aebba1f2c8a11faba245467db8a7c2f66af"
)

// goldenMLProblem builds the fixed seeded multilevel problem behind the
// golden hashes. Any change to these constants invalidates the pin.
func goldenMLProblem(t *testing.T) (MultiLevelProblem, grid.Decomposition) {
	t.Helper()
	const (
		levels  = 3
		members = 8
		seed    = 12345
	)
	m, err := grid.NewMesh(48, 24)
	if err != nil {
		t.Fatal(err)
	}
	truths, err := workload.TruthLevels(m, workload.DefaultFieldSpec, levels, seed)
	if err != nil {
		t.Fatal(err)
	}
	ens, err := workload.EnsembleLevels(m, truths, members, 1.5, seed)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, err := ensio.WriteEnsembleLevels(dir, m, ens); err != nil {
		t.Fatal(err)
	}
	nets := make([]*obs.Network, levels)
	for l := range nets {
		nets[l], err = obs.StridedNetwork(m, truths[l], 3, 3, 0.01, seed+uint64(l))
		if err != nil {
			t.Fatal(err)
		}
	}
	cfg := enkf.Config{Mesh: m, Radius: grid.Radius{Xi: 3, Eta: 2}, N: members, Seed: seed}
	dec, err := grid.NewDecomposition(m, 4, 2, cfg.Radius)
	if err != nil {
		t.Fatal(err)
	}
	return MultiLevelProblem{Cfg: cfg, Dir: dir, Nets: nets}, dec
}

// hashFields canonicalises a [level][member][]float64 analysis as the
// little-endian IEEE-754 bit stream in (level, member, point) order and
// returns its SHA-256.
func hashFields(t *testing.T, fields [][][]float64) string {
	t.Helper()
	h := sha256.New()
	var buf [8]byte
	for _, lvl := range fields {
		for _, member := range lvl {
			for _, v := range member {
				binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
				h.Write(buf[:])
			}
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

func TestMultiLevelGoldenSEnKF(t *testing.T) {
	p, dec := goldenMLProblem(t)
	out, err := core.RunSEnKFMultiLevel(p, core.Plan{Dec: dec, L: 2, NCg: 2})
	if err != nil {
		t.Fatal(err)
	}
	got := hashFields(t, out)
	if got != goldenSEnKFML {
		t.Fatalf("S-EnKF multilevel analysis hash %s, golden %s", got, goldenSEnKFML)
	}
}

func TestMultiLevelGoldenPEnKF(t *testing.T) {
	p, dec := goldenMLProblem(t)
	out, err := RunPEnKFMultiLevel(p, dec)
	if err != nil {
		t.Fatal(err)
	}
	got := hashFields(t, out)
	if got != goldenPEnKFML {
		t.Fatalf("P-EnKF multilevel analysis hash %s, golden %s", got, goldenPEnKFML)
	}
}
