package baseline

import (
	"fmt"

	"senkf/internal/core"
	"senkf/internal/grid"
	"senkf/internal/plan"
)

// MultiLevelProblem is the shared multi-level problem type, declared in
// internal/plan.
type MultiLevelProblem = plan.MultiLevelProblem

// RunPEnKFMultiLevel executes the block-reading baseline over a multi-level
// ensemble: every rank block-reads its expansion *of every level* from
// every member file — paying the per-row addressing penalty on rows that
// are now levels × heavier — and assimilates level by level. The analysis
// is returned as [level][member][]field. Like the single-level baselines,
// it is a thin spec wrapper over the shared engine.
func RunPEnKFMultiLevel(p MultiLevelProblem, dec grid.Decomposition) ([][][]float64, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if dec.Mesh != p.Cfg.Mesh {
		return nil, fmt.Errorf("baseline: decomposition mesh %v differs from config mesh %v", dec.Mesh, p.Cfg.Mesh)
	}
	c, err := plan.Compile(plan.PEnKF(dec, p.Cfg.N).WithLevels(p.Levels()))
	if err != nil {
		return nil, err
	}
	return core.ExecutePlanLevels(p.Problem(), c)
}
