package baseline

import (
	"fmt"
	"time"

	"senkf/internal/enkf"
	"senkf/internal/ensio"
	"senkf/internal/grid"
	"senkf/internal/metrics"
	"senkf/internal/mpi"
	"senkf/internal/plan"
	"senkf/internal/trace"
)

// MultiLevelProblem is the shared multi-level problem type, declared in
// internal/plan.
type MultiLevelProblem = plan.MultiLevelProblem

const resultTag = 1 << 20

// observe logs a wall-clock interval relative to t0 in the recorder (if
// set) and as a trace span (if tracing).
func observe(p MultiLevelProblem, proc string, ph metrics.Phase, t0 time.Time, from, to time.Time) {
	f, t := from.Sub(t0).Seconds(), to.Sub(t0).Seconds()
	if p.Rec != nil {
		p.Rec.Record(proc, ph, f, t)
	}
	if p.Tr.Enabled() {
		p.Tr.Span(proc, trace.CatPhase, ph.String(), f, t)
	}
}

// addIOStats feeds one member file's addressing counters into the tracer's
// registry, mirroring the engine's accounting.
func addIOStats(tr *trace.Tracer, st ensio.IOStats) {
	if reg := tr.Counters(); reg != nil {
		reg.Add("ensio.seeks", float64(st.Seeks))
		reg.Add("ensio.bytes", float64(st.BytesRead))
		reg.Add("ensio.reads", float64(st.Reads))
	}
}

// flattenBlock serializes a block's members into one slice.
func flattenBlock(b *enkf.Block) []float64 {
	pts := b.Box.Points()
	out := make([]float64, len(b.Data)*pts)
	for k, d := range b.Data {
		copy(out[k*pts:(k+1)*pts], d)
	}
	return out
}

// unflattenBlock inverts flattenBlock.
func unflattenBlock(box grid.Box, n int, data []float64) (*enkf.Block, error) {
	pts := box.Points()
	if len(data) != n*pts {
		return nil, fmt.Errorf("baseline: block payload has %d values, want %d", len(data), n*pts)
	}
	b := enkf.NewBlock(box, n)
	for k := 0; k < n; k++ {
		copy(b.Data[k], data[k*pts:(k+1)*pts])
	}
	return b, nil
}

// RunPEnKFMultiLevel executes the block-reading baseline over a multi-level
// ensemble: every rank block-reads its expansion *of every level* from
// every member file — paying the per-row addressing penalty on rows that
// are now levels × heavier — and assimilates level by level. The analysis
// is returned as [level][member][]field.
func RunPEnKFMultiLevel(p MultiLevelProblem, dec grid.Decomposition) ([][][]float64, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if dec.Mesh != p.Cfg.Mesh {
		return nil, fmt.Errorf("baseline: decomposition mesh %v differs from config mesh %v", dec.Mesh, p.Cfg.Mesh)
	}
	levels := len(p.Nets)
	np := dec.SubDomains()
	w, err := mpi.NewWorld(np)
	if err != nil {
		return nil, err
	}
	w.SetTracer(p.Tr)
	var fields [][][]float64
	t0 := time.Now()
	err = w.Run(func(c *mpi.Comm) error {
		i, j := dec.CoordsOf(c.Rank())
		name := metrics.ComputeName(i, j)
		exp := dec.Expansion(i, j)
		blks := make([]*enkf.Block, levels)
		for lvl := range blks {
			blks[lvl] = enkf.NewBlock(exp, p.Cfg.N)
		}

		readStart := time.Now()
		for k := 0; k < p.Cfg.N; k++ {
			mf, err := ensio.OpenMember(ensio.MemberPath(p.Dir, k))
			if err != nil {
				return err
			}
			if mf.Header.LevelCount() != levels {
				mf.Close()
				return fmt.Errorf("baseline: member %d has %d levels, problem has %d", k, mf.Header.LevelCount(), levels)
			}
			data, err := mf.ReadBlockLevels(exp)
			addIOStats(p.Tr, mf.Stats())
			mf.Close()
			if err != nil {
				return err
			}
			for lvl := 0; lvl < levels; lvl++ {
				blks[lvl].Data[k] = data[lvl]
			}
		}
		observe(p, name, metrics.PhaseRead, t0, readStart, time.Now())

		compStart := time.Now()
		results := make([]*enkf.Block, levels)
		for lvl := 0; lvl < levels; lvl++ {
			out, err := p.Cfg.AnalyzeBox(blks[lvl], p.Nets[lvl].InBox(exp), dec.SubDomain(i, j))
			if err != nil {
				return err
			}
			results[lvl] = out
		}
		observe(p, name, metrics.PhaseCompute, t0, compStart, time.Now())

		// Gather per level at rank 0.
		if c.Rank() != 0 {
			for lvl, res := range results {
				meta := []int{lvl, res.Box.X0, res.Box.X1, res.Box.Y0, res.Box.Y1}
				if err := c.Send(0, resultTag+lvl, meta, flattenBlock(res)); err != nil {
					return err
				}
			}
			return nil
		}
		out := make([][][]float64, levels)
		for lvl := 0; lvl < levels; lvl++ {
			blocks := []*enkf.Block{results[lvl]}
			for r := 1; r < np; r++ {
				m, err := c.Recv(mpi.AnySource, resultTag+lvl)
				if err != nil {
					return err
				}
				box := grid.Box{X0: m.Meta[1], X1: m.Meta[2], Y0: m.Meta[3], Y1: m.Meta[4]}
				blk, err := unflattenBlock(box, p.Cfg.N, m.Data)
				if err != nil {
					return err
				}
				blocks = append(blocks, blk)
			}
			f, err := enkf.Assemble(p.Cfg.Mesh, p.Cfg.N, blocks)
			if err != nil {
				return err
			}
			out[lvl] = f
		}
		fields = out
		return nil
	})
	if err != nil {
		return nil, err
	}
	return fields, nil
}
