// Package baseline contains the entry points for the two prior-art EnKF
// implementations the paper compares against:
//
//   - L-EnKF (§3.1, refs [13, 33]): a single dedicated reader reads every
//     background ensemble member in full and scatters expansion blocks to
//     the compute ranks, which then run the local analysis.
//   - P-EnKF (§2.3, refs [23, 24], Figure 3): every processor block-reads
//     its own expansion from every member file (one addressing operation
//     per latitude row), with no inter-processor communication, and then
//     runs the local analysis.
//
// Both are declared as reader strategies in internal/plan and executed by
// the same real-substrate engine as S-EnKF (core.ExecutePlan): goroutine
// message passing against real member files, numerically exact. They must
// reproduce the serial reference bit-for-bit — the integration tests
// assert this. Wall-clock phase timings can be recorded for the real-file
// ablation benches.
package baseline

import (
	"senkf/internal/core"
	"senkf/internal/grid"
	"senkf/internal/plan"
)

// Problem is the shared real-run problem type, declared in internal/plan.
type Problem = plan.Problem

// RunPEnKF compiles the block-reading plan over dec and executes it on
// dec.NSdx × dec.NSdy ranks, returning the analysis ensemble.
func RunPEnKF(p Problem, dec grid.Decomposition) ([][]float64, error) {
	c, err := plan.Compile(plan.PEnKF(dec, p.Cfg.N))
	if err != nil {
		return nil, err
	}
	return core.ExecutePlan(p, c)
}

// RunLEnKF compiles the single-reader plan over dec and executes it: one
// dedicated reader rank reads every member file in full and scatters
// expansion blocks; the compute ranks run the local analysis.
func RunLEnKF(p Problem, dec grid.Decomposition) ([][]float64, error) {
	c, err := plan.Compile(plan.LEnKF(dec, p.Cfg.N))
	if err != nil {
		return nil, err
	}
	return core.ExecutePlan(p, c)
}
