// Package baseline contains real (numerically exact) parallel executions of
// the two prior-art EnKF implementations the paper compares against:
//
//   - L-EnKF (§3.1, refs [13, 33]): a single reader processor reads every
//     background ensemble member in full and scatters expansion blocks to
//     the other processors, which then run the local analysis.
//   - P-EnKF (§2.3, refs [23, 24], Figure 3): every processor block-reads
//     its own expansion from every member file (one addressing operation
//     per latitude row), with no inter-processor communication, and then
//     runs the local analysis.
//
// Both run on the goroutine message-passing runtime (internal/mpi) against
// real member files (internal/ensio) and must reproduce the serial
// reference bit-for-bit — the integration tests assert this. Wall-clock
// phase timings can be recorded for the real-file ablation benches.
package baseline

import (
	"fmt"
	"time"

	"senkf/internal/enkf"
	"senkf/internal/ensio"
	"senkf/internal/grid"
	"senkf/internal/metrics"
	"senkf/internal/mpi"
	"senkf/internal/obs"
	"senkf/internal/trace"
)

// Problem bundles everything a parallel run needs.
type Problem struct {
	Cfg enkf.Config
	Dec grid.Decomposition
	Dir string       // directory containing the member files
	Net *obs.Network // full observation network (small; read by everyone)
	// Rec, when non-nil, receives wall-clock phase intervals.
	Rec *metrics.Recorder
	// Tr, when non-nil and enabled, receives phase spans per rank.
	Tr *trace.Tracer
}

// Validate checks the problem's internal consistency.
func (p Problem) Validate() error {
	if err := p.Cfg.Validate(); err != nil {
		return err
	}
	if p.Dec.Mesh != p.Cfg.Mesh {
		return fmt.Errorf("baseline: decomposition mesh %v differs from config mesh %v", p.Dec.Mesh, p.Cfg.Mesh)
	}
	if p.Net == nil {
		return fmt.Errorf("baseline: nil observation network")
	}
	if p.Dir == "" {
		return fmt.Errorf("baseline: empty member directory")
	}
	return nil
}

const (
	// tag space: member distribution uses tags [0, N); results use this.
	resultTag = 1 << 20
)

// obs logs a wall-clock interval relative to t0 in the recorder (if set)
// and as a trace span (if tracing), keeping both derivations comparable.
func (p Problem) obs(proc string, ph metrics.Phase, t0 time.Time, from, to time.Time) {
	f, t := from.Sub(t0).Seconds(), to.Sub(t0).Seconds()
	if p.Rec != nil {
		p.Rec.Record(proc, ph, f, t)
	}
	if p.Tr.Enabled() {
		p.Tr.Span(proc, trace.CatPhase, ph.String(), f, t)
	}
}

// addIOStats feeds one member file's addressing counters into the tracer's
// registry, mirroring the S-EnKF I/O ranks' accounting.
func addIOStats(tr *trace.Tracer, st ensio.IOStats) {
	if reg := tr.Counters(); reg != nil {
		reg.Add("ensio.seeks", float64(st.Seeks))
		reg.Add("ensio.bytes", float64(st.BytesRead))
		reg.Add("ensio.reads", float64(st.Reads))
	}
}

// flattenBlock serializes a block's members into one slice.
func flattenBlock(b *enkf.Block) []float64 {
	pts := b.Box.Points()
	out := make([]float64, len(b.Data)*pts)
	for k, d := range b.Data {
		copy(out[k*pts:(k+1)*pts], d)
	}
	return out
}

// unflattenBlock inverts flattenBlock.
func unflattenBlock(box grid.Box, n int, data []float64) (*enkf.Block, error) {
	pts := box.Points()
	if len(data) != n*pts {
		return nil, fmt.Errorf("baseline: block payload has %d values, want %d", len(data), n*pts)
	}
	b := enkf.NewBlock(box, n)
	for k := 0; k < n; k++ {
		copy(b.Data[k], data[k*pts:(k+1)*pts])
	}
	return b, nil
}

// gatherResults sends each rank's analysis block to rank 0 and assembles
// the full fields there. Non-zero ranks return nil fields.
func gatherResults(c *mpi.Comm, p Problem, mine *enkf.Block, contributors int) ([][]float64, error) {
	if c.Rank() != 0 {
		meta := []int{mine.Box.X0, mine.Box.X1, mine.Box.Y0, mine.Box.Y1}
		return nil, c.Send(0, resultTag, meta, flattenBlock(mine))
	}
	blocks := []*enkf.Block{mine}
	for i := 1; i < contributors; i++ {
		m, err := c.Recv(mpi.AnySource, resultTag)
		if err != nil {
			return nil, err
		}
		box := grid.Box{X0: m.Meta[0], X1: m.Meta[1], Y0: m.Meta[2], Y1: m.Meta[3]}
		blk, err := unflattenBlock(box, p.Cfg.N, m.Data)
		if err != nil {
			return nil, err
		}
		blocks = append(blocks, blk)
	}
	return enkf.Assemble(p.Cfg.Mesh, p.Cfg.N, blocks)
}

// RunPEnKF executes the block-reading baseline on
// Dec.NSdx × Dec.NSdy goroutine ranks and returns the analysis ensemble.
func RunPEnKF(p Problem) ([][]float64, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	np := p.Dec.SubDomains()
	w, err := mpi.NewWorld(np)
	if err != nil {
		return nil, err
	}
	w.SetTracer(p.Tr)
	var fields [][]float64
	t0 := time.Now()
	err = w.Run(func(c *mpi.Comm) error {
		i, j := p.Dec.CoordsOf(c.Rank())
		name := metrics.ComputeName(i, j)
		exp := p.Dec.Expansion(i, j)
		blk := enkf.NewBlock(exp, p.Cfg.N)

		// Phase 1: block-read the expansion from every member file.
		readStart := time.Now()
		for k := 0; k < p.Cfg.N; k++ {
			mf, err := ensio.OpenMember(ensio.MemberPath(p.Dir, k))
			if err != nil {
				return err
			}
			if err := mf.CheckGeometry(p.Cfg.Mesh.NX, p.Cfg.Mesh.NY, 1, k); err != nil {
				mf.Close()
				return err
			}
			data, err := mf.ReadBlock(exp)
			addIOStats(p.Tr, mf.Stats())
			mf.Close()
			if err != nil {
				return err
			}
			blk.Data[k] = data
		}
		p.obs(name, metrics.PhaseRead, t0, readStart, time.Now())

		// Phase 2: local analysis on the sub-domain.
		compStart := time.Now()
		out, err := p.Cfg.AnalyzeBox(blk, p.Net.InBox(exp), p.Dec.SubDomain(i, j))
		if err != nil {
			return err
		}
		p.obs(name, metrics.PhaseCompute, t0, compStart, time.Now())

		f, err := gatherResults(c, p, out, np)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			fields = f
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return fields, nil
}

// RunLEnKF executes the single-reader baseline: rank 0 reads every member
// file in full and scatters expansion blocks; all ranks (including 0) then
// run the local analysis.
func RunLEnKF(p Problem) ([][]float64, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	np := p.Dec.SubDomains()
	w, err := mpi.NewWorld(np)
	if err != nil {
		return nil, err
	}
	w.SetTracer(p.Tr)
	var fields [][]float64
	t0 := time.Now()
	err = w.Run(func(c *mpi.Comm) error {
		i, j := p.Dec.CoordsOf(c.Rank())
		name := metrics.ComputeName(i, j)
		// Rank 0 plays the reader role: its reading and distribution are
		// recorded under the I/O name so phase breakdowns group by class.
		reader := metrics.IOName(0, 0)
		exp := p.Dec.Expansion(i, j)
		blk := enkf.NewBlock(exp, p.Cfg.N)

		if c.Rank() == 0 {
			// The single reader: read each member in full, cut out each
			// rank's expansion, and distribute serially.
			for k := 0; k < p.Cfg.N; k++ {
				readStart := time.Now()
				mf, err := ensio.OpenMember(ensio.MemberPath(p.Dir, k))
				if err != nil {
					return err
				}
				if err := mf.CheckGeometry(p.Cfg.Mesh.NX, p.Cfg.Mesh.NY, 1, k); err != nil {
					mf.Close()
					return err
				}
				field, err := mf.ReadAll()
				addIOStats(p.Tr, mf.Stats())
				mf.Close()
				if err != nil {
					return err
				}
				p.obs(reader, metrics.PhaseRead, t0, readStart, time.Now())
				commStart := time.Now()
				full := &enkf.Block{
					Box:  grid.Box{X0: 0, X1: p.Cfg.Mesh.NX, Y0: 0, Y1: p.Cfg.Mesh.NY},
					Data: [][]float64{field},
				}
				for r := 0; r < np; r++ {
					ri, rj := p.Dec.CoordsOf(r)
					rexp := p.Dec.Expansion(ri, rj)
					sub, err := full.SubBlock(rexp)
					if err != nil {
						return err
					}
					if r == 0 {
						blk.Data[k] = sub.Data[0]
						continue
					}
					if err := c.Send(r, k, nil, sub.Data[0]); err != nil {
						return err
					}
				}
				p.obs(reader, metrics.PhaseComm, t0, commStart, time.Now())
			}
		} else {
			waitStart := time.Now()
			for k := 0; k < p.Cfg.N; k++ {
				m, err := c.Recv(0, k)
				if err != nil {
					return err
				}
				if len(m.Data) != exp.Points() {
					return fmt.Errorf("baseline: member %d block has %d points, want %d", k, len(m.Data), exp.Points())
				}
				blk.Data[k] = m.Data
			}
			p.obs(name, metrics.PhaseWait, t0, waitStart, time.Now())
		}

		compStart := time.Now()
		out, err := p.Cfg.AnalyzeBox(blk, p.Net.InBox(exp), p.Dec.SubDomain(i, j))
		if err != nil {
			return err
		}
		p.obs(name, metrics.PhaseCompute, t0, compStart, time.Now())

		f, err := gatherResults(c, p, out, np)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			fields = f
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return fields, nil
}
